/**
 * @file
 * Property-based round-trip tests for src/tensor/quantize.cc: across
 * randomized magnitudes, shapes and seeds, symmetric per-tensor, per-column
 * and per-group INT8 quantization must satisfy the half-step error bound,
 * and the degenerate inputs the calibration layer can produce (all-zero,
 * negative-only, constant, extreme-range tensors) must round-trip safely.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "src/tensor/ops.h"
#include "src/tensor/quantize.h"
#include "src/util/rng.h"
#include "tests/support/random.h"

namespace llmnpu {
namespace {

/** Fills a tensor with Uniform(lo, hi) entries. */
Tensor
UniformTensor(Rng& rng, std::vector<int64_t> shape, double lo, double hi)
{
    Tensor t(std::move(shape), DType::kF32);
    float* p = t.Data<float>();
    for (int64_t i = 0; i < t.NumElements(); ++i) {
        p[i] = static_cast<float>(rng.Uniform(lo, hi));
    }
    return t;
}

// ------------------------------------------------------ per-tensor round trip

/** (seed, magnitude exponent): tensors with entries ~ Normal(0, 10^e). */
class PerTensorRoundTrip
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>>
{};

TEST_P(PerTensorRoundTrip, ErrorBoundedByHalfStep)
{
    const auto [seed, exponent] = GetParam();
    Rng rng(seed);
    const double magnitude = std::pow(10.0, exponent);
    Tensor x = RandomTensor(rng, {9, 23}, magnitude);
    const QuantParams params = ComputeSymmetricScale(x);
    Tensor round_trip = Dequantize(QuantizeSymmetric(x, params), params);
    // Round-to-nearest: every surviving value is within half a step; the
    // absmax element maps to +-127 exactly.
    EXPECT_LE(MaxAbsDiff(x, round_trip),
              params.scale * 0.5f * (1.0f + 1e-5f));
}

TEST_P(PerTensorRoundTrip, QuantizedValuesStayInSymmetricRange)
{
    const auto [seed, exponent] = GetParam();
    Rng rng(seed + 101);
    Tensor x = RandomTensor(rng, {5, 17}, std::pow(10.0, exponent));
    Tensor q = QuantizeSymmetric(x, ComputeSymmetricScale(x));
    const int8_t* p = q.Data<int8_t>();
    for (int64_t i = 0; i < q.NumElements(); ++i) {
        EXPECT_GE(p[i], -127);  // -128 is never produced (symmetric grid)
        EXPECT_LE(p[i], 127);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndMagnitudes, PerTensorRoundTrip,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(-20, -3, 0, 3, 20)));

TEST(PerTensorEdgeCases, AllZeroTensorRoundTripsExactly)
{
    Tensor x = Tensor::Zeros({4, 4});
    const QuantParams params = ComputeSymmetricScale(x);
    EXPECT_EQ(params.scale, 1.0f);  // absmax 0 falls back to a unit scale
    Tensor round_trip = Dequantize(QuantizeSymmetric(x, params), params);
    EXPECT_EQ(MaxAbsDiff(x, round_trip), 0.0);
}

TEST(PerTensorEdgeCases, NegativeOnlyTensorKeepsSignAndBound)
{
    Rng rng(7);
    Tensor x({6, 11}, DType::kF32);
    float* p = x.Data<float>();
    for (int64_t i = 0; i < x.NumElements(); ++i) {
        p[i] = static_cast<float>(-std::abs(rng.Normal(0.0, 3.0)) - 0.125);
    }
    const QuantParams params = ComputeSymmetricScale(x);
    Tensor q = QuantizeSymmetric(x, params);
    const int8_t* qi = q.Data<int8_t>();
    for (int64_t i = 0; i < q.NumElements(); ++i) EXPECT_LE(qi[i], 0);
    EXPECT_LE(MaxAbsDiff(x, Dequantize(q, params)),
              params.scale * 0.5f * (1.0f + 1e-5f));
}

TEST(PerTensorEdgeCases, ConstantTensorMapsToFullScaleCode)
{
    // A constant tensor's absmax lands on code +-127, so the round trip is
    // exact up to the scale's own float rounding (one ulp of |v|).
    for (float v : {0.0078125f, 42.0f, -1e6f}) {
        Tensor x = Tensor::Full({3, 5}, v);
        const QuantParams params = ComputeSymmetricScale(x);
        Tensor q = QuantizeSymmetric(x, params);
        EXPECT_EQ(q.Data<int8_t>()[0], v < 0.0f ? -127 : 127) << "v=" << v;
        Tensor round_trip = Dequantize(q, params);
        EXPECT_LE(MaxAbsDiff(x, round_trip), std::abs(v) * 1e-5)
            << "v=" << v;
    }
}

TEST(PerTensorEdgeCases, ExtremeRangesSurviveWithoutNanOrInf)
{
    // Near-denormal and near-float-max magnitudes must not overflow the
    // scale arithmetic.
    for (double magnitude : {1e-37, 1e37}) {
        Rng rng(11);
        Tensor x = UniformTensor(rng, {4, 8}, -magnitude, magnitude);
        const QuantParams params = ComputeSymmetricScale(x);
        ASSERT_GT(params.scale, 0.0f);
        ASSERT_TRUE(std::isfinite(params.scale));
        Tensor round_trip = Dequantize(QuantizeSymmetric(x, params), params);
        const float* p = round_trip.Data<float>();
        for (int64_t i = 0; i < round_trip.NumElements(); ++i) {
            EXPECT_TRUE(std::isfinite(p[i])) << "magnitude=" << magnitude;
        }
        EXPECT_LE(MaxAbsDiff(x, round_trip),
                  static_cast<double>(params.scale) * 0.5 * (1.0 + 1e-5));
    }
}

// ------------------------------------------------------ per-group round trip

/** (seed, group size) over a [64 x 12] weight matrix. */
class PerGroupRoundTrip
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>>
{};

TEST_P(PerGroupRoundTrip, EveryGroupHonorsItsOwnHalfStepBound)
{
    const auto [seed, group_size] = GetParam();
    Rng rng(seed);
    // Rows span wildly different magnitudes so the per-group scales differ.
    Tensor w({64, 12}, DType::kF32);
    for (int64_t r = 0; r < 64; ++r) {
        const double row_scale = std::pow(10.0, (r % 7) - 3);
        for (int64_t c = 0; c < 12; ++c) {
            w.At(r, c) = static_cast<float>(rng.Normal(0.0, row_scale));
        }
    }
    PerGroupWeights pg = QuantizePerGroup(w, group_size);
    ASSERT_EQ(pg.num_groups, 64 / group_size);
    ASSERT_EQ(pg.scales.size(),
              static_cast<size_t>(pg.num_groups) * 12u);
    Tensor deq = DequantizePerGroup(pg);
    // The bound holds per (group, column) block with that block's scale —
    // strictly stronger than a global max-scale bound.
    for (int g = 0; g < pg.num_groups; ++g) {
        for (int64_t c = 0; c < 12; ++c) {
            const float bound =
                pg.GroupScale(g, c) * 0.5f * (1.0f + 1e-5f);
            for (int64_t r = static_cast<int64_t>(g) * group_size;
                 r < static_cast<int64_t>(g + 1) * group_size; ++r) {
                EXPECT_LE(std::abs(w.At(r, c) - deq.At(r, c)), bound)
                    << "group=" << g << " r=" << r << " c=" << c;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndGroups, PerGroupRoundTrip,
                         ::testing::Combine(::testing::Values(21u, 22u, 23u),
                                            ::testing::Values(8, 16, 32, 64)));

TEST(PerGroupEdgeCases, ZeroGroupGetsUnitScaleAndExactZeros)
{
    Rng rng(31);
    Tensor w = RandomTensor(rng, {32, 4});
    // Zero out the second group entirely.
    for (int64_t r = 8; r < 16; ++r) {
        for (int64_t c = 0; c < 4; ++c) w.At(r, c) = 0.0f;
    }
    PerGroupWeights pg = QuantizePerGroup(w, 8);
    for (int64_t c = 0; c < 4; ++c) {
        EXPECT_EQ(pg.GroupScale(1, c), 1.0f);
    }
    Tensor deq = DequantizePerGroup(pg);
    for (int64_t r = 8; r < 16; ++r) {
        for (int64_t c = 0; c < 4; ++c) EXPECT_EQ(deq.At(r, c), 0.0f);
    }
}

TEST(PerGroupEdgeCases, GroupsAreIsolated)
{
    // Amplifying one group's rows must not change any other group's codes
    // or scales — the locality property that makes per-group quantization
    // robust to row outliers (Figure 3(b)).
    Rng rng(32);
    Tensor w = RandomTensor(rng, {48, 6});
    PerGroupWeights before = QuantizePerGroup(w, 16);
    for (int64_t r = 16; r < 32; ++r) {
        for (int64_t c = 0; c < 6; ++c) w.At(r, c) *= 1000.0f;
    }
    PerGroupWeights after = QuantizePerGroup(w, 16);
    for (int g : {0, 2}) {
        for (int64_t c = 0; c < 6; ++c) {
            EXPECT_EQ(before.GroupScale(g, c), after.GroupScale(g, c));
        }
        for (int64_t r = static_cast<int64_t>(g) * 16;
             r < static_cast<int64_t>(g + 1) * 16; ++r) {
            for (int64_t c = 0; c < 6; ++c) {
                EXPECT_EQ(before.q.Data<int8_t>()[r * 6 + c],
                          after.q.Data<int8_t>()[r * 6 + c])
                    << "g=" << g << " r=" << r << " c=" << c;
            }
        }
    }
}

TEST(PerGroupEdgeCases, SingleGroupMatchesWholeColumnQuantization)
{
    // group_size == K degenerates per-group to per-column.
    Rng rng(33);
    Tensor w = RandomTensor(rng, {24, 5});
    PerGroupWeights pg = QuantizePerGroup(w, 24);
    PerColumnWeights pc = QuantizePerColumn(w);
    ASSERT_EQ(pg.num_groups, 1);
    for (int64_t c = 0; c < 5; ++c) {
        EXPECT_EQ(pg.GroupScale(0, c), pc.scales[static_cast<size_t>(c)]);
    }
    EXPECT_TRUE(pg.q.BitEquals(pc.q));
}

TEST(PerGroupEdgeCases, NegativeOnlyWeightsRoundTrip)
{
    Rng rng(34);
    Tensor w({16, 3}, DType::kF32);
    for (int64_t r = 0; r < 16; ++r) {
        for (int64_t c = 0; c < 3; ++c) {
            w.At(r, c) = static_cast<float>(-std::abs(rng.Normal()) - 0.01);
        }
    }
    PerGroupWeights pg = QuantizePerGroup(w, 4);
    Tensor deq = DequantizePerGroup(pg);
    float max_scale = 0.0f;
    for (float s : pg.scales) max_scale = std::max(max_scale, s);
    EXPECT_LE(MaxAbsDiff(w, deq), max_scale * 0.5f * (1.0f + 1e-5f));
    const float* p = deq.Data<float>();
    for (int64_t i = 0; i < deq.NumElements(); ++i) EXPECT_LE(p[i], 0.0f);
}

}  // namespace
}  // namespace llmnpu
