/**
 * @file
 * Unit and property tests for the tensor substrate: storage semantics,
 * matmul kernels (fp32, W8A8 per-tensor/vector-wise/per-group, row-subset),
 * and quantization primitives.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/matmul.h"
#include "src/tensor/ops.h"
#include "src/tensor/quantize.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"
#include "tests/support/random.h"

namespace llmnpu {
namespace {

TEST(TensorTest, ZerosShapeAndContent)
{
    Tensor t = Tensor::Zeros({2, 3});
    EXPECT_EQ(t.Rank(), 2);
    EXPECT_EQ(t.NumElements(), 6);
    EXPECT_EQ(t.SizeBytes(), 24u);
    for (int64_t r = 0; r < 2; ++r) {
        for (int64_t c = 0; c < 3; ++c) EXPECT_EQ(t.At(r, c), 0.0f);
    }
}

TEST(TensorTest, FullAndFromValues)
{
    Tensor f = Tensor::Full({2, 2}, 1.5f);
    EXPECT_EQ(f.At(1, 1), 1.5f);
    Tensor v = Tensor::FromValues({2, 2}, {1, 2, 3, 4});
    EXPECT_EQ(v.At(0, 1), 2.0f);
    EXPECT_EQ(v.At(1, 0), 3.0f);
}

TEST(TensorTest, NegativeDimIndexing)
{
    Tensor t = Tensor::Zeros({4, 7});
    EXPECT_EQ(t.Dim(-1), 7);
    EXPECT_EQ(t.Dim(-2), 4);
}

TEST(TensorTest, CopyRowsExtractsExactRows)
{
    Tensor t = Tensor::FromValues({3, 2}, {1, 2, 3, 4, 5, 6});
    Tensor mid = t.CopyRows(1, 2);
    EXPECT_EQ(mid.Rows(), 2);
    EXPECT_EQ(mid.At(0, 0), 3.0f);
    EXPECT_EQ(mid.At(1, 1), 6.0f);
}

TEST(TensorTest, ReshapePreservesBytes)
{
    Tensor t = Tensor::FromValues({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor r = t.Reshape({3, 2});
    EXPECT_EQ(r.At(2, 1), 6.0f);
    EXPECT_TRUE(t.Reshape({6, 1}).BitEquals(r.Reshape({6, 1})));
}

TEST(TensorTest, MaxAbsDiffAndMse)
{
    Tensor a = Tensor::FromValues({1, 3}, {1, 2, 3});
    Tensor b = Tensor::FromValues({1, 3}, {1, 2.5, 1});
    EXPECT_DOUBLE_EQ(MaxAbsDiff(a, b), 2.0);
    EXPECT_NEAR(MeanSquaredError(a, b), (0.25 + 4.0) / 3.0, 1e-6);
}

TEST(MatMulTest, F32KnownResult)
{
    Tensor a = Tensor::FromValues({2, 2}, {1, 2, 3, 4});
    Tensor b = Tensor::FromValues({2, 2}, {5, 6, 7, 8});
    Tensor c = MatMulF32(a, b);
    EXPECT_FLOAT_EQ(c.At(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(c.At(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(c.At(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(c.At(1, 1), 50.0f);
}

TEST(MatMulTest, F32IdentityIsNoOp)
{
    Rng rng(11);
    Tensor a = RandomTensor(rng, {3, 4});
    Tensor eye = Tensor::Zeros({4, 4});
    for (int64_t i = 0; i < 4; ++i) eye.At(i, i) = 1.0f;
    Tensor c = MatMulF32(a, eye);
    EXPECT_LT(MaxAbsDiff(a, c), 1e-6);
}

TEST(QuantizeTest, SymmetricRoundTripSmallError)
{
    Rng rng(12);
    Tensor x = RandomTensor(rng, {8, 16});
    const QuantParams params = ComputeSymmetricScale(x);
    Tensor x_q = QuantizeSymmetric(x, params);
    Tensor x_deq = Dequantize(x_q, params);
    // Round-trip error bounded by half a quantization step.
    EXPECT_LE(MaxAbsDiff(x, x_deq), params.scale * 0.5 + 1e-7);
}

TEST(QuantizeTest, ScaleMapsAbsMaxTo127)
{
    Tensor x = Tensor::FromValues({1, 3}, {-2.54f, 1.0f, 0.5f});
    const QuantParams params = ComputeSymmetricScale(x);
    EXPECT_NEAR(params.scale, 2.54f / 127.0f, 1e-6);
    Tensor q = QuantizeSymmetric(x, params);
    EXPECT_EQ(q.Data<int8_t>()[0], -127);
}

TEST(QuantizeTest, OutlierSaturatesWithForeignScale)
{
    // A value far beyond the scale clamps to 127 — the clipped tail that
    // Equation 1's shadow path recovers.
    Tensor x = Tensor::FromValues({1, 2}, {100.0f, 0.5f});
    QuantParams params{1.0f / 127.0f};
    Tensor q = QuantizeSymmetric(x, params);
    EXPECT_EQ(q.Data<int8_t>()[0], 127);
}

TEST(QuantizeTest, PerColumnScalesIsolateColumns)
{
    // Column 1 is 100x larger; per-column quantization keeps column 0 at
    // full resolution.
    Tensor w = Tensor::FromValues({2, 2}, {1.0f, 100.0f, -1.0f, -100.0f});
    PerColumnWeights pc = QuantizePerColumn(w);
    EXPECT_NEAR(pc.scales[0], 1.0f / 127.0f, 1e-6);
    EXPECT_NEAR(pc.scales[1], 100.0f / 127.0f, 1e-4);
    Tensor deq = DequantizePerColumn(pc);
    EXPECT_LT(MaxAbsDiff(w, deq), 0.5f);
    EXPECT_NEAR(deq.At(0, 0), 1.0f, 0.01);
}

TEST(QuantizeTest, PerGroupMatchesGroupCount)
{
    Rng rng(13);
    Tensor w = RandomTensor(rng, {64, 8});
    PerGroupWeights pg = QuantizePerGroup(w, 16);
    EXPECT_EQ(pg.num_groups, 4);
    EXPECT_EQ(pg.scales.size(), 4u * 8u);
    Tensor deq = DequantizePerGroup(pg);
    // Per-group error is bounded by half a step of each group's scale.
    float max_scale = 0.0f;
    for (float s : pg.scales) max_scale = std::max(max_scale, s);
    EXPECT_LE(MaxAbsDiff(w, deq), max_scale * 0.5 + 1e-7);
}

TEST(QuantizeTest, PerGroupBeatsPerTensorUnderRowOutliers)
{
    // One huge row (input channel) wrecks a whole-tensor scale but only
    // one group's scale.
    Rng rng(14);
    Tensor w = RandomTensor(rng, {64, 8});
    for (int64_t c = 0; c < 8; ++c) w.At(0, c) *= 200.0f;

    const QuantParams pt = ComputeSymmetricScale(w);
    Tensor pt_deq = Dequantize(QuantizeSymmetric(w, pt), pt);
    PerGroupWeights pg = QuantizePerGroup(w, 16);
    Tensor pg_deq = DequantizePerGroup(pg);

    // Compare error on the non-outlier region.
    double pt_err = 0.0, pg_err = 0.0;
    for (int64_t r = 16; r < 64; ++r) {
        for (int64_t c = 0; c < 8; ++c) {
            pt_err += std::abs(w.At(r, c) - pt_deq.At(r, c));
            pg_err += std::abs(w.At(r, c) - pg_deq.At(r, c));
        }
    }
    EXPECT_LT(pg_err * 10.0, pt_err);
}

TEST(MatMulTest, W8A8PerTensorMatchesDequantizedFloat)
{
    Rng rng(15);
    Tensor a = RandomTensor(rng, {4, 32});
    Tensor w = RandomTensor(rng, {32, 8});
    const QuantParams a_params = ComputeSymmetricScale(a);
    PerColumnWeights wq = QuantizePerColumn(w);

    Tensor a_q = QuantizeSymmetric(a, a_params);
    Tensor y_int = MatMulW8A8PerTensor(a_q, a_params.scale, wq.q, wq.scales);
    Tensor y_ref = MatMulF32(Dequantize(a_q, a_params),
                             DequantizePerColumn(wq));
    // INT32 accumulation then dequantize == float matmul of dequantized
    // operands (up to float rounding).
    EXPECT_LT(MaxAbsDiff(y_int, y_ref), 1e-3);
}

TEST(MatMulTest, W8A8UniformScaleOverloadAgrees)
{
    Rng rng(16);
    Tensor a = RandomTensor(rng, {2, 16});
    Tensor w = RandomTensor(rng, {16, 4});
    const QuantParams a_params = ComputeSymmetricScale(a);
    const QuantParams w_params = ComputeSymmetricScale(w);
    Tensor a_q = QuantizeSymmetric(a, a_params);
    Tensor w_q = QuantizeSymmetric(w, w_params);
    Tensor y1 = MatMulW8A8PerTensor(a_q, a_params.scale, w_q,
                                    {w_params.scale});
    Tensor y2 = MatMulW8A8PerTensor(
        a_q, a_params.scale, w_q,
        std::vector<float>(4, w_params.scale));
    EXPECT_LT(MaxAbsDiff(y1, y2), 1e-6);
}

TEST(MatMulTest, W8A8RowColMatchesReference)
{
    Rng rng(17);
    Tensor a = RandomTensor(rng, {3, 16});
    Tensor w = RandomTensor(rng, {16, 5});
    // Per-row activation quantization.
    std::vector<float> row_scales;
    Tensor a_q(a.shape(), DType::kI8);
    for (int64_t r = 0; r < 3; ++r) {
        Tensor row = a.CopyRows(r, 1);
        const QuantParams p = ComputeSymmetricScale(row);
        row_scales.push_back(p.scale);
        Tensor row_q = QuantizeSymmetric(row, p);
        for (int64_t c = 0; c < 16; ++c) {
            a_q.Data<int8_t>()[r * 16 + c] = row_q.Data<int8_t>()[c];
        }
    }
    PerColumnWeights wq = QuantizePerColumn(w);
    Tensor y = MatMulW8A8RowCol(a_q, row_scales, wq.q, wq.scales);
    Tensor y_ref = MatMulF32(a, w);
    // Quantization error only: bounded well below signal magnitude.
    EXPECT_LT(MaxAbsDiff(y, y_ref), 0.2);
}

TEST(MatMulTest, PerGroupCloseToFloatReference)
{
    Rng rng(18);
    Tensor a = RandomTensor(rng, {4, 64});
    Tensor w = RandomTensor(rng, {64, 8});
    PerGroupWeights pg = QuantizePerGroup(w, 16);
    Tensor y = MatMulPerGroup(a, pg);
    Tensor y_ref = MatMulF32(a, w);
    EXPECT_LT(MaxAbsDiff(y, y_ref), 0.25);
}

TEST(MatMulTest, PerGroupHandlesActivationOutliers)
{
    // A single outlier channel only corrupts its own group.
    Rng rng(19);
    Tensor a = RandomTensor(rng, {2, 64});
    a.At(0, 3) = 500.0f;
    Tensor w = RandomTensor(rng, {64, 8});
    PerGroupWeights pg = QuantizePerGroup(w, 16);
    Tensor y = MatMulPerGroup(a, pg);
    Tensor y_ref = MatMulF32(a, w);
    EXPECT_LT(MaxAbsDiff(y, y_ref) / AbsMax(y_ref), 0.05);
}

TEST(MatMulTest, RowSubsetEqualsMaskedMatMul)
{
    Rng rng(20);
    Tensor a = RandomTensor(rng, {3, 10});
    Tensor w = RandomTensor(rng, {10, 6});
    const std::vector<int> rows = {2, 5, 7};
    // Compact activation = the selected columns of a.
    Tensor a_sub({3, 3}, DType::kF32);
    for (int64_t r = 0; r < 3; ++r) {
        for (size_t i = 0; i < rows.size(); ++i) {
            a_sub.At(r, static_cast<int64_t>(i)) = a.At(r, rows[i]);
        }
    }
    Tensor y = MatMulRowSubset(a_sub, w, rows);
    // Reference: zero out all other channels.
    Tensor a_masked = Tensor::Zeros({3, 10});
    for (int64_t r = 0; r < 3; ++r) {
        for (int row : rows) a_masked.At(r, row) = a.At(r, row);
    }
    Tensor y_ref = MatMulF32(a_masked, w);
    EXPECT_LT(MaxAbsDiff(y, y_ref), 1e-5);
}

/** Property sweep: W8A8 per-tensor error scales with the activation range. */
class QuantErrorSweep : public ::testing::TestWithParam<int64_t>
{};

TEST_P(QuantErrorSweep, RelativeErrorBounded)
{
    const int64_t k = GetParam();
    Rng rng(static_cast<uint64_t>(k) * 31 + 7);
    Tensor a = RandomTensor(rng, {4, k});
    Tensor w = RandomTensor(rng, {k, 16}, 1.0 / std::sqrt(
                                              static_cast<double>(k)));
    const QuantParams ap = ComputeSymmetricScale(a);
    PerColumnWeights wq = QuantizePerColumn(w);
    Tensor y = MatMulW8A8PerTensor(QuantizeSymmetric(a, ap), ap.scale, wq.q,
                                   wq.scales);
    Tensor y_ref = MatMulF32(a, w);
    const double rel = MaxAbsDiff(y, y_ref) /
                       std::max(1e-9f, AbsMax(y_ref));
    EXPECT_LT(rel, 0.08) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantErrorSweep,
                         ::testing::Values(16, 32, 64, 128, 256, 512));

}  // namespace
}  // namespace llmnpu
