/**
 * @file
 * Simulator tests: the processor latency model reproduces the paper's
 * published microbenchmarks (Table 3, Figure 2), and the discrete-event
 * timeline honors dependencies and Equation 4.
 */
#include <gtest/gtest.h>

#include "src/sim/calibration.h"
#include "src/sim/npu_runtime.h"
#include "src/sim/processor.h"
#include "src/sim/soc.h"
#include "src/sim/timeline.h"
#include "tests/support/timeline_asserts.h"

namespace llmnpu {
namespace {

/** One Table 3 row: shape + measured latencies (ms). */
struct Table3Row {
    MatMulShape shape;
    double npu_int8_ms;
    double cpu_int8_ms;
    double gpu_fp16_ms;
    double npu_fp16_ms;
};

const Table3Row kTable3[] = {
    {{64, 2048, 2048}, 0.9, 4.2, 1.7, 252.0},
    {{64, 2048, 8192}, 1.5, 6.8, 4.8, 986.0},
    {{64, 2048, 11008}, 2.0, 11.6, 6.9, 1207.0},
    {{32, 4096, 4096}, 1.7, 7.5, 3.1, 1054.0},
    {{32, 4096, 8192}, 2.9, 13.1, 7.7, 2009.0},
    {{32, 4096, 11008}, 4.1, 19.6, 10.4, 3112.0},
};

class Table3Test : public ::testing::TestWithParam<Table3Row>
{
  protected:
    SocSpec soc_ = SocSpec::RedmiK70Pro();
};

TEST_P(Table3Test, NpuInt8WithinBand)
{
    const auto& row = GetParam();
    const double ms = soc_.Processor(Unit::kNpu).MatMulMs(
        row.shape, ExecFormat::kInt8PerTensor, 0, /*square_optimized=*/false);
    EXPECT_GT(ms, row.npu_int8_ms * 0.5);
    EXPECT_LT(ms, row.npu_int8_ms * 2.0);
}

TEST_P(Table3Test, CpuInt8WithinBand)
{
    const auto& row = GetParam();
    const double ms = soc_.Processor(Unit::kCpu).MatMulMs(
        row.shape, ExecFormat::kInt8PerTensor, 0, false);
    EXPECT_GT(ms, row.cpu_int8_ms * 0.4);
    EXPECT_LT(ms, row.cpu_int8_ms * 2.5);
}

TEST_P(Table3Test, GpuFp16WithinBand)
{
    const auto& row = GetParam();
    const double ms = soc_.Processor(Unit::kGpu).MatMulMs(
        row.shape, ExecFormat::kFp16, 0, false);
    EXPECT_GT(ms, row.gpu_fp16_ms * 0.4);
    EXPECT_LT(ms, row.gpu_fp16_ms * 2.5);
}

TEST_P(Table3Test, NpuFp16WithinBand)
{
    const auto& row = GetParam();
    const double ms = soc_.Processor(Unit::kNpu).MatMulMs(
        row.shape, ExecFormat::kFp16, 0, false);
    EXPECT_GT(ms, row.npu_fp16_ms * 0.5);
    EXPECT_LT(ms, row.npu_fp16_ms * 2.0);
}

TEST_P(Table3Test, OrderingNpuFastestFp16NpuSlowest)
{
    // The qualitative claim of §2.2: NPU INT8 beats CPU INT8 beats nothing;
    // NPU FP16 is catastrophically slow.
    const auto& row = GetParam();
    const auto& npu = soc_.Processor(Unit::kNpu);
    const auto& cpu = soc_.Processor(Unit::kCpu);
    const auto& gpu = soc_.Processor(Unit::kGpu);
    const double npu_i8 =
        npu.MatMulMs(row.shape, ExecFormat::kInt8PerTensor, 0, false);
    const double cpu_i8 =
        cpu.MatMulMs(row.shape, ExecFormat::kInt8PerTensor, 0, false);
    const double gpu_f16 = gpu.MatMulMs(row.shape, ExecFormat::kFp16, 0,
                                        false);
    const double npu_f16 = npu.MatMulMs(row.shape, ExecFormat::kFp16, 0,
                                        false);
    EXPECT_LT(npu_i8, cpu_i8);
    EXPECT_LT(npu_i8, gpu_f16);
    EXPECT_GT(npu_f16, 50.0 * npu_i8);
}

INSTANTIATE_TEST_SUITE_P(AllShapes, Table3Test, ::testing::ValuesIn(kTable3));

TEST(ProcessorTest, PerGroupPenaltyInPaperRange)
{
    // Figure 4: per-group MatMul costs 8.1-10.7x over per-tensor on NPU
    // for LLM-sized operators; we accept a wider 3-14x band across sizes.
    const SocSpec soc = SocSpec::RedmiK70Pro();
    const auto& npu = soc.Processor(Unit::kNpu);
    for (const MatMulShape shape :
         {MatMulShape{256, 2048, 2048}, MatMulShape{256, 2048, 5504},
          MatMulShape{256, 4096, 11008}}) {
        const double pt =
            npu.MatMulMs(shape, ExecFormat::kInt8PerTensor, 0, true);
        const double pg = npu.MatMulMs(shape, ExecFormat::kInt8PerGroup,
                                       cal::kPerGroupSize, true);
        EXPECT_GT(pg / pt, 3.0);
        EXPECT_LT(pg / pt, 14.0);
    }
}

TEST(ProcessorTest, PerGroupPenaltySmallOnCpu)
{
    // llama.cpp runs per-group INT8 with only mild overhead on CPU.
    const SocSpec soc = SocSpec::RedmiK70Pro();
    const auto& cpu = soc.Processor(Unit::kCpu);
    const MatMulShape shape{512, 2048, 5504};
    const double pt = cpu.MatMulMs(shape, ExecFormat::kInt8PerTensor, 0,
                                   false);
    const double pg = cpu.MatMulMs(shape, ExecFormat::kInt8PerGroup,
                                   cal::kPerGroupSize, false);
    EXPECT_LT(pg / pt, 1.6);
}

TEST(ProcessorTest, SquareOptimizationSpeedsUpLargeM)
{
    // §4 optimization (1): ~1.62x for reshaped large-M inputs.
    const SocSpec soc = SocSpec::RedmiK70Pro();
    const auto& npu = soc.Processor(Unit::kNpu);
    const MatMulShape shape{1024, 2048, 2048};
    const double flat =
        npu.MatMulMs(shape, ExecFormat::kInt8PerTensor, 0, false);
    const double square =
        npu.MatMulMs(shape, ExecFormat::kInt8PerTensor, 0, true);
    EXPECT_NEAR(flat / square, cal::kNpuSquareSpeedup, 0.35);
}

TEST(ProcessorTest, ThroughputGrowsWithM)
{
    const SocSpec soc = SocSpec::RedmiK70Pro();
    const auto& npu = soc.Processor(Unit::kNpu);
    const double t64 = npu.Int8Tops({64, 2048, 2048}, true);
    const double t256 = npu.Int8Tops({256, 2048, 2048}, true);
    EXPECT_GT(t256, 1.5 * t64);
}

TEST(ProcessorTest, Gen2SlowerThanGen3)
{
    const SocSpec gen3 = SocSpec::RedmiK70Pro();
    const SocSpec gen2 = SocSpec::RedmiK60Pro();
    const MatMulShape shape{256, 2048, 5504};
    EXPECT_GT(gen2.Processor(Unit::kNpu).MatMulMs(
                  shape, ExecFormat::kInt8PerTensor, 0, true),
              gen3.Processor(Unit::kNpu).MatMulMs(
                  shape, ExecFormat::kInt8PerTensor, 0, true));
}

TEST(NpuRuntimeTest, Figure2LifecycleCostsForQwen)
{
    // Qwen1.5-1.8B full graph: build ~450 ms, optimize ~3.30 s, free ~149 ms.
    NpuGraphDesc desc;
    desc.name = "qwen.full";
    desc.num_ops = 24 * 13;
    desc.const_bytes = 1'212'000'000LL + 311'000'000LL;  // blocks + embedding
    const NpuGraphCosts costs = NpuRuntime::CostsFor(desc);
    EXPECT_NEAR(costs.build_ms, 450.0, 120.0);
    EXPECT_NEAR(costs.optimize_ms, 3300.0, 900.0);
    EXPECT_NEAR(costs.free_ms, 149.0, 50.0);
}

TEST(NpuRuntimeTest, Figure2LifecycleCostsForGemma)
{
    // Gemma-2B: build ~360 ms, optimize ~11.54 s, free ~108 ms.
    NpuGraphDesc desc;
    desc.name = "gemma.full";
    desc.num_ops = 18 * 13;
    desc.const_bytes = 1'907'000'000LL + 524'000'000LL;
    const NpuGraphCosts costs = NpuRuntime::CostsFor(desc);
    EXPECT_NEAR(costs.build_ms, 360.0, 120.0);
    EXPECT_NEAR(costs.optimize_ms, 11540.0, 3500.0);
    EXPECT_NEAR(costs.free_ms, 108.0, 40.0);
}

TEST(NpuRuntimeTest, CachingSkipsRebuild)
{
    NpuRuntime runtime;
    NpuGraphDesc desc;
    desc.name = "g";
    desc.num_ops = 10;
    desc.const_bytes = 1024;
    desc.input_shape = {256, 2048};
    const double first = runtime.EnsureBuilt(desc);
    EXPECT_GT(first, cal::kNpuEnvSetupMs);  // env + build + optimize
    EXPECT_EQ(runtime.EnsureBuilt(desc), 0.0);
    EXPECT_EQ(runtime.NumBuilt(), 1);
}

TEST(NpuRuntimeTest, DifferentShapeRequiresNewGraph)
{
    // The static-shape constraint (§2.3 gap 1).
    NpuRuntime runtime;
    NpuGraphDesc a;
    a.name = "g";
    a.num_ops = 5;
    a.input_shape = {256, 2048};
    NpuGraphDesc b = a;
    b.input_shape = {512, 2048};
    runtime.EnsureBuilt(a);
    EXPECT_FALSE(runtime.IsBuilt(b));
    EXPECT_GT(runtime.EnsureBuilt(b), 0.0);
    EXPECT_EQ(runtime.NumBuilt(), 2);
}

TEST(NpuRuntimeTest, MemoryRegionTracked)
{
    NpuRuntime runtime;
    NpuGraphDesc desc;
    desc.name = "big";
    desc.num_ops = 1;
    desc.const_bytes = 3ll * 1024 * 1024 * 1024;
    EXPECT_TRUE(runtime.FitsMemory(desc.const_bytes));
    runtime.EnsureBuilt(desc);
    EXPECT_EQ(runtime.ResidentBytes(), desc.const_bytes);
    // A second 3 GB graph exceeds the ~4 GB Hexagon region.
    EXPECT_FALSE(runtime.FitsMemory(desc.const_bytes));
}

TEST(NpuRuntimeTest, FreeReleasesMemory)
{
    NpuRuntime runtime;
    NpuGraphDesc desc;
    desc.name = "g";
    desc.num_ops = 20;
    desc.const_bytes = 1000;
    runtime.EnsureBuilt(desc);
    const double free_ms = runtime.Free(desc);
    EXPECT_NEAR(free_ms, 20 * cal::kNpuFreePerOpMs, 1e-9);
    EXPECT_EQ(runtime.ResidentBytes(), 0);
    EXPECT_EQ(runtime.NumBuilt(), 0);
}

// ---------------------------------------------------------------- timeline

TEST(TimelineTest, SequentialChainOnOneUnit)
{
    std::vector<SimTask> tasks(3);
    for (int i = 0; i < 3; ++i) {
        tasks[static_cast<size_t>(i)].unit = Unit::kNpu;
        tasks[static_cast<size_t>(i)].duration_ms = 10.0;
        if (i > 0) tasks[static_cast<size_t>(i)].deps = {i - 1};
    }
    const TimelineResult result = RunTimeline(tasks);
    EXPECT_DOUBLE_EQ(result.makespan_ms, 30.0);
    EXPECT_DOUBLE_EQ(result.busy_ms[static_cast<size_t>(Unit::kNpu)], 30.0);
    EXPECT_DOUBLE_EQ(result.BubbleRate(Unit::kNpu), 0.0);
}

TEST(TimelineTest, IndependentTasksOverlapAcrossUnits)
{
    std::vector<SimTask> tasks(2);
    tasks[0].unit = Unit::kCpu;
    tasks[0].duration_ms = 10.0;
    tasks[1].unit = Unit::kNpu;
    tasks[1].duration_ms = 8.0;
    const TimelineResult result = RunTimeline(tasks);
    EXPECT_DOUBLE_EQ(result.makespan_ms, 10.0);
}

TEST(TimelineTest, DependencyDelaysConsumer)
{
    std::vector<SimTask> tasks(2);
    tasks[0].unit = Unit::kCpu;
    tasks[0].duration_ms = 5.0;
    tasks[1].unit = Unit::kNpu;
    tasks[1].duration_ms = 7.0;
    tasks[1].deps = {0};
    const TimelineResult result = RunTimeline(tasks);
    EXPECT_DOUBLE_EQ(result.makespan_ms, 12.0);
    EXPECT_DOUBLE_EQ(result.records[1].start_ms, 5.0);
}

TEST(TimelineTest, OneTaskPerUnitAtATime)
{
    // Equation 4: two ready NPU tasks serialize.
    std::vector<SimTask> tasks(2);
    for (auto& task : tasks) {
        task.unit = Unit::kNpu;
        task.duration_ms = 4.0;
    }
    const TimelineResult result = RunTimeline(tasks);
    EXPECT_DOUBLE_EQ(result.makespan_ms, 8.0);
    EXPECT_TRUE(NoIntraUnitOverlap(tasks, result));
}

TEST(TimelineTest, BubbleRateReflectsIdleGaps)
{
    // NPU: 2ms task, waits for 8ms CPU task, then 2ms task.
    std::vector<SimTask> tasks(3);
    tasks[0].unit = Unit::kNpu;
    tasks[0].duration_ms = 2.0;
    tasks[1].unit = Unit::kCpu;
    tasks[1].duration_ms = 8.0;
    tasks[1].deps = {0};
    tasks[2].unit = Unit::kNpu;
    tasks[2].duration_ms = 2.0;
    tasks[2].deps = {1};
    const TimelineResult result = RunTimeline(tasks);
    // NPU span 0..12, busy 4 => bubble rate 8/12.
    EXPECT_NEAR(result.BubbleRate(Unit::kNpu), 8.0 / 12.0, 1e-9);
}

TEST(TimelineTest, PickerControlsOrder)
{
    // A LIFO picker should run the later-queued task first.
    std::vector<SimTask> tasks(2);
    tasks[0].unit = Unit::kCpu;
    tasks[0].duration_ms = 1.0;
    tasks[0].label = "first";
    tasks[1].unit = Unit::kCpu;
    tasks[1].duration_ms = 1.0;
    tasks[1].label = "second";
    const TimelineResult result = RunTimeline(
        tasks, [](Unit, const std::vector<int>& ready, const SchedContext&) {
            return ready.back();
        });
    EXPECT_GT(result.records[0].start_ms, result.records[1].start_ms);
}

TEST(TimelineTest, EmptyTaskListIsZero)
{
    const TimelineResult result = RunTimeline({});
    EXPECT_DOUBLE_EQ(result.makespan_ms, 0.0);
}

TEST(TimelineDeathTest, CycleIsFatal)
{
    std::vector<SimTask> tasks(2);
    tasks[0].unit = Unit::kCpu;
    tasks[0].duration_ms = 1.0;
    tasks[0].deps = {1};
    tasks[1].unit = Unit::kCpu;
    tasks[1].duration_ms = 1.0;
    tasks[1].deps = {0};
    EXPECT_EXIT(RunTimeline(tasks), ::testing::ExitedWithCode(1),
                "deadlock");
}

// ------------------------------------------------------------------ energy

TEST(SocTest, EnergyIntegratesBusyAndBasePower)
{
    const SocSpec soc = SocSpec::RedmiK60Pro();
    std::array<double, kNumUnits> busy{};
    busy[static_cast<size_t>(Unit::kCpu)] = 1000.0;  // 1 s CPU-busy
    const double mj = soc.EnergyMj(busy, 1000.0);
    EXPECT_NEAR(mj, 1000.0 * (cal::kCpuBusyPowerW + cal::kSocBasePowerW),
                1e-6);
}

TEST(SocTest, NpuMoreEfficientThanCpuForSameWork)
{
    // §2.2: NPUs are the most energy-efficient processors.
    EXPECT_LT(cal::kNpuBusyPowerW, cal::kGpuBusyPowerW);
    EXPECT_LT(cal::kGpuBusyPowerW, cal::kCpuBusyPowerW);
}

TEST(SocTest, DeviceNames)
{
    EXPECT_EQ(SocSpec::RedmiK70Pro().soc_name(), "Snapdragon 8gen3");
    EXPECT_EQ(SocSpec::RedmiK60Pro().soc_name(), "Snapdragon 8gen2");
}

}  // namespace
}  // namespace llmnpu
