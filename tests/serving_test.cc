/**
 * @file
 * Serving-layer tests: scheduling policy orderings, conservation invariants
 * of the discrete-event simulator (every admitted request completes, time
 * stamps are ordered, the executed trace is a valid schedule), zero-load
 * equivalence with single-shot engine latency, and the SLO story (EDF
 * goodput >= FCFS under overload).
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/llmnpu_engine.h"
#include "src/engines/baselines.h"
#include "src/serving/simulator.h"
#include "tests/support/timeline_asserts.h"
#include "tests/support/tiny_model.h"

namespace llmnpu {
namespace {

// ----------------------------------------------------------- policy picks

QueueEntry
Entry(int id, double arrival, double deadline, double remaining,
      double decode = 0.0)
{
    QueueEntry entry;
    entry.request_id = id;
    entry.arrival_ms = arrival;
    entry.deadline_ms = deadline;
    entry.remaining_prefill_ms = remaining;
    entry.remaining_total_ms = remaining + decode;
    return entry;
}

TEST(PolicyTest, FcfsPicksEarliestArrival)
{
    const std::vector<QueueEntry> queue = {Entry(0, 50.0, 1e9, 10.0),
                                           Entry(1, 10.0, 1e9, 99.0),
                                           Entry(2, 30.0, 1e9, 1.0)};
    EXPECT_EQ(PickNext(SchedPolicy::kFcfs, queue, 100.0), 1u);
}

TEST(PolicyTest, SpfPicksShortestRemainingPrefill)
{
    const std::vector<QueueEntry> queue = {Entry(0, 50.0, 1e9, 10.0),
                                           Entry(1, 10.0, 1e9, 99.0),
                                           Entry(2, 30.0, 1e9, 1.0)};
    EXPECT_EQ(PickNext(SchedPolicy::kShortestPromptFirst, queue, 100.0), 2u);
}

TEST(PolicyTest, SloEdfPrefersFeasibleEarliestDeadline)
{
    // Request 0's deadline already passed; 2 has the earliest deadline that
    // is still achievable given its remaining work.
    const std::vector<QueueEntry> queue = {Entry(0, 0.0, 90.0, 10.0),
                                           Entry(1, 10.0, 500.0, 50.0),
                                           Entry(2, 20.0, 300.0, 50.0)};
    EXPECT_EQ(PickNext(SchedPolicy::kSloEdf, queue, 100.0), 2u);
}

TEST(PolicyTest, SloEdfPricesDecodeIntoFeasibility)
{
    // Deadlines are end-to-end: request 0 could finish its *prefill* by
    // its deadline but not its 500 ms of decode, so it is a lost cause
    // and must yield to the later-deadline but achievable request 1.
    const std::vector<QueueEntry> queue = {
        Entry(0, 0.0, 200.0, 10.0, 500.0),
        Entry(1, 10.0, 400.0, 50.0, 100.0)};
    EXPECT_EQ(PickNext(SchedPolicy::kSloEdf, queue, 100.0), 1u);
}

TEST(PolicyTest, SloEdfFallsBackToFcfsWhenAllExpired)
{
    const std::vector<QueueEntry> queue = {Entry(0, 40.0, 10.0, 50.0),
                                           Entry(1, 5.0, 20.0, 50.0)};
    EXPECT_EQ(PickNext(SchedPolicy::kSloEdf, queue, 1000.0), 1u);
}

TEST(PolicyTest, NamesAreStable)
{
    EXPECT_EQ(PolicyName(SchedPolicy::kFcfs), "fcfs");
    EXPECT_EQ(PolicyName(SchedPolicy::kShortestPromptFirst), "spf");
    EXPECT_EQ(PolicyName(SchedPolicy::kSloEdf), "slo-edf");
}

// ------------------------------------------------- cost decompositions

class ServingFixture : public PaperDeviceTest
{
  protected:
    std::vector<DatasetProfile> mix_ = PaperDatasets();
};

TEST_F(ServingFixture, LlmNpuDecompositionMatchesSingleShotRun)
{
    LlmNpuEngine engine;
    const InferenceRequest request{1024, 8};
    const EngineResult run = engine.Run(qwen_, soc_, request);
    const ServingCostProfile profile =
        engine.ServingCosts(qwen_, soc_, request);

    EXPECT_EQ(profile.chunk_ms.size(), 4u);  // 1024 / 256-token chunks
    EXPECT_NEAR(profile.PrefillMs(), run.prefill_ms,
                run.prefill_ms * 1e-9);
    EXPECT_NEAR(profile.decode_token_ms * request.output_len, run.decode_ms,
                run.decode_ms * 1e-9);
    EXPECT_GT(profile.float_decode_interference, 0.0);
    EXPECT_LE(profile.float_decode_interference, 0.95);
    // The NPU factor is the chunk's accelerator busy fraction — higher
    // than the float share it leaves the CPU (the NPU is the bottleneck).
    EXPECT_GT(profile.npu_decode_interference,
              profile.float_decode_interference);
    EXPECT_LE(profile.npu_decode_interference, 0.95);
    // Default placement is the paper's: decode on the float processor.
    EXPECT_EQ(profile.decode_placement, DecodePlacement::kCpuFloat);
    EXPECT_DOUBLE_EQ(profile.DecodeInterference(),
                     profile.float_decode_interference);
    EXPECT_LT(profile.decode_batch_marginal, 0.0);  // no engine override
    // Later chunks attend to longer kv: occupancy never shrinks.
    for (size_t c = 1; c < profile.chunk_ms.size(); ++c) {
        EXPECT_GE(profile.chunk_ms[c], profile.chunk_ms[c - 1]);
    }
}

TEST_F(ServingFixture, BaselineDefaultDecompositionIsMonolithic)
{
    LlamaCppEngine engine;
    const InferenceRequest request{512, 4};
    const EngineResult run = engine.Run(qwen_, soc_, request);
    const ServingCostProfile profile =
        engine.ServingCosts(qwen_, soc_, request);
    ASSERT_EQ(profile.chunk_ms.size(), 1u);
    EXPECT_DOUBLE_EQ(profile.chunk_ms[0], run.prefill_ms);
    // Single-processor: both placement factors fully blocked.
    EXPECT_DOUBLE_EQ(profile.float_decode_interference, 1.0);
    EXPECT_DOUBLE_EQ(profile.npu_decode_interference, 1.0);
    EXPECT_DOUBLE_EQ(profile.DecodeInterference(), 1.0);
    EXPECT_NEAR(profile.decode_token_ms * request.output_len, run.decode_ms,
                run.decode_ms * 1e-9);
}

TEST_F(ServingFixture, CostModelCachesPerShape)
{
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    const ServingCostProfile& a = costs.Costs({512, 4});
    const ServingCostProfile& b = costs.Costs({512, 4});
    EXPECT_EQ(&a, &b);  // memoized: same object
    EXPECT_NE(&a, &costs.Costs({768, 4}));
}

// ------------------------------------------------- simulator invariants

ServingResult
RunSim(ServingCostModel& costs, const std::vector<DatasetProfile>& mix,
       SchedPolicy policy, double rate_rps, int num_requests,
       uint64_t seed = 7)
{
    ServingOptions options;
    options.policy = policy;
    options.rate_rps = rate_rps;
    options.num_requests = num_requests;
    options.seed = seed;
    return ServingSimulator(costs, mix, options).Run();
}

TEST_F(ServingFixture, ZeroLoadReproducesSingleShotLatency)
{
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    // One request: no queueing, no batching, no contention.
    ServingOptions options;
    options.rate_rps = 0.001;
    options.num_requests = 1;
    options.seed = 3;
    const ServingResult result =
        ServingSimulator(costs, mix_, options).Run();
    ASSERT_EQ(result.records.size(), 1u);
    const RequestRecord& record = result.records[0];
    ASSERT_TRUE(record.Completed());
    EXPECT_DOUBLE_EQ(record.QueueingMs(), 0.0);
    const double isolated =
        costs.IsolatedE2eMs(record.request.AsInference());
    EXPECT_NEAR(record.E2eMs(), isolated, isolated * 1e-9);
    const ServingCostProfile& profile =
        costs.Costs(record.request.AsInference());
    EXPECT_NEAR(record.TtftMs(),
                profile.PrefillMs() + profile.decode_token_ms,
                isolated * 1e-9);
}

TEST_F(ServingFixture, AllAdmittedRequestsCompleteWithOrderedTimestamps)
{
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    const ServingResult result =
        RunSim(costs, mix_, SchedPolicy::kFcfs, 1.0, 40);
    ASSERT_EQ(result.records.size(), 40u);
    for (const RequestRecord& record : result.records) {
        ASSERT_TRUE(record.Completed()) << "req " << record.request.id;
        EXPECT_EQ(record.tokens_out, record.request.output_len);
        EXPECT_LE(record.request.arrival_ms, record.first_dispatch_ms);
        EXPECT_LT(record.first_dispatch_ms, record.prefill_done_ms);
        EXPECT_LT(record.prefill_done_ms, record.first_token_ms);
        EXPECT_LE(record.first_token_ms, record.finish_ms);
        EXPECT_GE(record.QueueingMs(), 0.0);
        EXPECT_GT(record.TtftMs(), 0.0);
        EXPECT_GE(record.TpotMs(), 0.0);  // 0 when output_len == 1
        EXPECT_LE(record.finish_ms, result.makespan_ms);
    }
}

TEST_F(ServingFixture, ExecutedTraceIsAValidSchedule)
{
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    const ServingResult result =
        RunSim(costs, mix_, SchedPolicy::kSloEdf, 1.2, 30);
    // The executed quanta form a dependency-free DAG; the shared checks
    // then assert Equation 4 (one task per unit at a time) and busy-time
    // conservation on the serving schedule exactly as on prefill DAGs.
    EXPECT_TRUE(ScheduleIsValid(result.trace_tasks, result.trace));
    EXPECT_NEAR(result.trace.busy_ms[static_cast<size_t>(Unit::kNpu)],
                result.npu_busy_ms, 1e-6);
    EXPECT_NEAR(result.trace.busy_ms[static_cast<size_t>(Unit::kCpu)],
                result.decode_busy_ms, 1e-6);
    EXPECT_LE(result.npu_busy_ms, result.makespan_ms + 1e-9);
}

TEST_F(ServingFixture, FcfsServesPrefillInArrivalOrder)
{
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    const ServingResult result =
        RunSim(costs, mix_, SchedPolicy::kFcfs, 1.5, 30);
    // Arrival order == id order by construction; FCFS must finish prefill
    // in that order too.
    double prev = -1.0;
    for (const RequestRecord& record : result.records) {
        EXPECT_GT(record.prefill_done_ms, prev) << record.request.id;
        prev = record.prefill_done_ms;
    }
}

TEST_F(ServingFixture, ShortestPromptFirstCanReorder)
{
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    const ServingResult result =
        RunSim(costs, mix_, SchedPolicy::kShortestPromptFirst, 1.5, 30);
    bool reordered = false;
    double prev = -1.0;
    for (const RequestRecord& record : result.records) {
        if (record.prefill_done_ms < prev) reordered = true;
        prev = std::max(prev, record.prefill_done_ms);
    }
    EXPECT_TRUE(reordered);  // the mixture has 3x spread in prompt length
}

TEST_F(ServingFixture, DeterministicForSameSeed)
{
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    const ServingResult a =
        RunSim(costs, mix_, SchedPolicy::kSloEdf, 1.0, 25, 11);
    const ServingResult b =
        RunSim(costs, mix_, SchedPolicy::kSloEdf, 1.0, 25, 11);
    ASSERT_EQ(a.records.size(), b.records.size());
    EXPECT_DOUBLE_EQ(a.makespan_ms, b.makespan_ms);
    for (size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.records[i].finish_ms, b.records[i].finish_ms);
    }
    const ServingResult c =
        RunSim(costs, mix_, SchedPolicy::kSloEdf, 1.0, 25, 12);
    EXPECT_NE(a.makespan_ms, c.makespan_ms);
}

TEST_F(ServingFixture, SloEdfGoodputAtLeastFcfsUnderOverload)
{
    // The acceptance bar of the serving subsystem: at ~2x the NPU's
    // saturation rate, deadline-aware scheduling must not lose to FCFS on
    // goodput (it wins by a wide margin: FCFS head-of-line blocking drags
    // every request past its deadline).
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    const ServingReport fcfs =
        RunSim(costs, mix_, SchedPolicy::kFcfs, 2.0, 60).Report();
    const ServingReport edf =
        RunSim(costs, mix_, SchedPolicy::kSloEdf, 2.0, 60).Report();
    EXPECT_EQ(fcfs.completed, 60);
    EXPECT_EQ(edf.completed, 60);
    EXPECT_GE(edf.goodput_rps, fcfs.goodput_rps);
    EXPECT_GE(edf.slo_attainment, fcfs.slo_attainment);
}

TEST_F(ServingFixture, PrefillPreemptsDecodeBandwidth)
{
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    const ServingResult result =
        RunSim(costs, mix_, SchedPolicy::kFcfs, 1.0, 30);
    // With prefill and decode overlapping at this load, some decode steps
    // must have been slowed by incoming chunks, and per-request counts sum
    // to at least the global count (a step can slow several requests).
    EXPECT_GT(result.preemptions, 0);
    int per_request = 0;
    for (const RequestRecord& record : result.records) {
        per_request += record.preemptions;
    }
    EXPECT_GE(per_request, result.preemptions);
}

TEST_F(ServingFixture, UtilizationAndThroughputGrowWithOfferedLoad)
{
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    const ServingReport low =
        RunSim(costs, mix_, SchedPolicy::kFcfs, 0.3, 40).Report();
    const ServingReport high =
        RunSim(costs, mix_, SchedPolicy::kFcfs, 1.5, 40).Report();
    EXPECT_GT(high.npu_utilization, low.npu_utilization);
    EXPECT_GT(high.throughput_rps, low.throughput_rps);
    EXPECT_GT(high.e2e_p99_ms, low.e2e_p99_ms);  // queueing shows in tails
}

TEST_F(ServingFixture, ClosedLoopNeverExceedsClientPopulation)
{
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    ServingOptions options;
    options.closed_loop = true;
    options.num_clients = 3;
    options.think_time_ms = 100.0;
    options.num_requests = 20;
    options.seed = 5;
    const ServingResult result =
        ServingSimulator(costs, mix_, options).Run();
    ASSERT_EQ(result.records.size(), 20u);
    // At any completion instant, in-flight requests (arrived, unfinished)
    // cannot exceed the client population.
    for (const RequestRecord& probe : result.records) {
        ASSERT_TRUE(probe.Completed());
        int in_flight = 0;
        for (const RequestRecord& other : result.records) {
            if (other.request.arrival_ms < probe.finish_ms &&
                other.finish_ms >= probe.finish_ms) {
                ++in_flight;
            }
        }
        EXPECT_LE(in_flight, options.num_clients);
    }
}

TEST_F(ServingFixture, ReportAggregatesMatchRecords)
{
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    const ServingResult result =
        RunSim(costs, mix_, SchedPolicy::kFcfs, 0.8, 30);
    const ServingReport report = result.Report();
    EXPECT_EQ(report.admitted, 30);
    EXPECT_EQ(report.completed, 30);
    EXPECT_GT(report.throughput_rps, 0.0);
    EXPECT_GE(report.goodput_rps, 0.0);
    EXPECT_LE(report.goodput_rps, report.throughput_rps + 1e-12);
    EXPECT_LE(report.ttft_p50_ms, report.ttft_p95_ms);
    EXPECT_LE(report.ttft_p95_ms, report.ttft_p99_ms);
    EXPECT_LE(report.e2e_p50_ms, report.e2e_p99_ms);
    EXPECT_GE(report.npu_utilization, 0.0);
    EXPECT_LE(report.npu_utilization, 1.0 + 1e-9);
    EXPECT_EQ(report.preemptions, result.preemptions);
    EXPECT_FALSE(report.Summary().empty());
}

TEST_F(ServingFixture, ServingWorksOverBaselineEnginesToo)
{
    // The serving layer is engine-agnostic: a single-processor baseline
    // serves through its default monolithic decomposition (decode fully
    // blocked by prefill, so makespans stretch, but conservation holds).
    LlamaCppEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    const ServingResult result =
        RunSim(costs, mix_, SchedPolicy::kFcfs, 0.05, 6);
    for (const RequestRecord& record : result.records) {
        EXPECT_TRUE(record.Completed());
    }
    EXPECT_TRUE(ScheduleIsValid(result.trace_tasks, result.trace));
}

}  // namespace
}  // namespace llmnpu
