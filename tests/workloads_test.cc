/**
 * @file
 * Tests for the workload layer: corpus determinism, dataset profile ranges
 * (Table 5), and the accuracy harness.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "src/model/transformer.h"
#include "src/workloads/accuracy.h"
#include "src/workloads/arrivals.h"
#include "src/workloads/corpus.h"
#include "src/workloads/datasets.h"

namespace llmnpu {
namespace {

TEST(CorpusTest, DeterministicForSameSeed)
{
    CorpusOptions options;
    EXPECT_EQ(MakeCorpus(options), MakeCorpus(options));
}

TEST(CorpusTest, DifferentSeedsDiffer)
{
    CorpusOptions a, b;
    b.seed = a.seed + 1;
    EXPECT_NE(MakeCorpus(a), MakeCorpus(b));
}

TEST(CorpusTest, RespectsLengthAndVocabBounds)
{
    CorpusOptions options;
    options.vocab_size = 100;
    options.num_sequences = 20;
    options.min_len = 5;
    options.max_len = 9;
    const auto corpus = MakeCorpus(options);
    ASSERT_EQ(corpus.size(), 20u);
    for (const auto& seq : corpus) {
        EXPECT_GE(seq.size(), 5u);
        EXPECT_LE(seq.size(), 9u);
        for (int t : seq) {
            EXPECT_GE(t, 0);
            EXPECT_LT(t, 100);
        }
    }
}

TEST(CorpusTest, ZipfMakesLowIdsCommon)
{
    CorpusOptions options;
    options.vocab_size = 1000;
    options.num_sequences = 50;
    options.min_len = 64;
    options.max_len = 64;
    const auto corpus = MakeCorpus(options);
    int low = 0, total = 0;
    for (const auto& seq : corpus) {
        for (int t : seq) {
            low += t < 50 ? 1 : 0;
            ++total;
        }
    }
    EXPECT_GT(static_cast<double>(low) / total, 0.5);
}

TEST(DatasetTest, PaperProfilesMatchTable5Ranges)
{
    const auto datasets = PaperDatasets();
    ASSERT_EQ(datasets.size(), 5u);
    EXPECT_EQ(datasets[0].prompt_min, 1451);
    EXPECT_EQ(datasets[0].prompt_max, 1672);
    EXPECT_EQ(datasets[1].output_max, 11);
    EXPECT_EQ(datasets[4].name, "Persona-Chat");
    EXPECT_EQ(datasets[4].output_min, 35);
}

TEST(DatasetTest, SamplesWithinRanges)
{
    Rng rng(5);
    for (const auto& dataset : PaperDatasets()) {
        for (int i = 0; i < 50; ++i) {
            const InferenceRequest req = dataset.Sample(rng);
            EXPECT_GE(req.prompt_len, dataset.prompt_min) << dataset.name;
            EXPECT_LE(req.prompt_len, dataset.prompt_max) << dataset.name;
            EXPECT_GE(req.output_len, dataset.output_min) << dataset.name;
            EXPECT_LE(req.output_len, dataset.output_max) << dataset.name;
        }
    }
}

TEST(DatasetTest, TypicalIsMidpoint)
{
    const DatasetProfile profile = PersonaChatProfile();
    const InferenceRequest req = profile.Typical();
    EXPECT_EQ(req.prompt_len, (488 + 584) / 2);
    EXPECT_EQ(req.output_len, (35 + 57) / 2);
}

TEST(DatasetTest, TypicalWithinRangesForAllProfiles)
{
    for (const auto& dataset : PaperDatasets()) {
        const InferenceRequest req = dataset.Typical();
        EXPECT_GE(req.prompt_len, dataset.prompt_min) << dataset.name;
        EXPECT_LE(req.prompt_len, dataset.prompt_max) << dataset.name;
        EXPECT_GE(req.output_len, dataset.output_min) << dataset.name;
        EXPECT_LE(req.output_len, dataset.output_max) << dataset.name;
    }
}

TEST(DatasetTest, SampleIsSeedDeterministic)
{
    for (const auto& dataset : PaperDatasets()) {
        Rng a(99), b(99), c(100);
        bool any_differs = false;
        for (int i = 0; i < 32; ++i) {
            const InferenceRequest from_a = dataset.Sample(a);
            const InferenceRequest from_b = dataset.Sample(b);
            EXPECT_EQ(from_a.prompt_len, from_b.prompt_len) << dataset.name;
            EXPECT_EQ(from_a.output_len, from_b.output_len) << dataset.name;
            const InferenceRequest from_c = dataset.Sample(c);
            any_differs |= from_a.prompt_len != from_c.prompt_len;
        }
        EXPECT_TRUE(any_differs) << dataset.name;  // seeds matter
    }
}

// -------------------------------------------------------- arrival processes

TEST(ArrivalTest, PoissonArrivalsSortedDeterministicAndInRange)
{
    const auto mix = PaperDatasets();
    const auto arrivals = GeneratePoissonArrivals(mix, 2.0, 200, 17);
    ASSERT_EQ(arrivals.size(), 200u);
    double prev = 0.0;
    for (const ArrivalEvent& event : arrivals) {
        EXPECT_GT(event.arrival_ms, prev);
        prev = event.arrival_ms;
        ASSERT_GE(event.profile_index, 0);
        ASSERT_LT(event.profile_index, static_cast<int>(mix.size()));
        const DatasetProfile& profile =
            mix[static_cast<size_t>(event.profile_index)];
        EXPECT_GE(event.request.prompt_len, profile.prompt_min);
        EXPECT_LE(event.request.prompt_len, profile.prompt_max);
        EXPECT_GE(event.request.output_len, profile.output_min);
        EXPECT_LE(event.request.output_len, profile.output_max);
    }
    const auto again = GeneratePoissonArrivals(mix, 2.0, 200, 17);
    for (size_t i = 0; i < arrivals.size(); ++i) {
        EXPECT_DOUBLE_EQ(arrivals[i].arrival_ms, again[i].arrival_ms);
        EXPECT_EQ(arrivals[i].request.prompt_len,
                  again[i].request.prompt_len);
    }
}

TEST(ArrivalTest, PoissonGapsMatchRateAndAreExponential)
{
    // Statistical sanity: at 5 req/s the mean gap is 200 ms, and an
    // exponential distribution has coefficient of variation 1.
    const auto arrivals =
        GeneratePoissonArrivals(PaperDatasets(), 5.0, 4000, 23);
    double prev = 0.0, sum = 0.0, sum_sq = 0.0;
    for (const ArrivalEvent& event : arrivals) {
        const double gap = event.arrival_ms - prev;
        prev = event.arrival_ms;
        sum += gap;
        sum_sq += gap * gap;
    }
    const double n = static_cast<double>(arrivals.size());
    const double mean = sum / n;
    const double stddev = std::sqrt(sum_sq / n - mean * mean);
    EXPECT_NEAR(mean, 200.0, 200.0 * 0.05);
    EXPECT_NEAR(stddev / mean, 1.0, 0.10);
}

TEST(ArrivalTest, SamplerUniformMixtureCoversAllProfiles)
{
    const auto mix = PaperDatasets();
    RequestSampler sampler(mix, 31);
    std::vector<int> counts(mix.size(), 0);
    for (int i = 0; i < 500; ++i) {
        ++counts[static_cast<size_t>(sampler.Sample().profile_index)];
    }
    for (size_t p = 0; p < mix.size(); ++p) {
        // Uniform mixture: expect ~100 each; demand at least presence.
        EXPECT_GT(counts[p], 50) << mix[p].name;
    }
}

TEST(ArrivalTest, SamplerRespectsWeights)
{
    const auto mix = PaperDatasets();
    RequestSampler sampler(mix, 31, {0.0, 0.0, 1.0, 0.0, 0.0});
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(sampler.Sample().profile_index, 2);
    }
}

TEST(EvalSetTest, FiveBenchmarksWithDistinctContent)
{
    const auto sets = MakeBenchmarkEvalSets(256, 6);
    ASSERT_EQ(sets.size(), 5u);
    EXPECT_EQ(sets[0].name, "LAMBADA");
    EXPECT_EQ(sets[4].name, "MMLU");
    EXPECT_NE(sets[0].contexts, sets[1].contexts);
    for (const auto& set : sets) {
        EXPECT_EQ(set.contexts.size(), 6u);
    }
}

TEST(AccuracyTest, ReferenceAgreesPerfectlyWithItself)
{
    const ModelConfig config = TinyTestConfig();
    ModelWeights weights = GenerateSyntheticWeights(config);
    Transformer model(weights);
    Fp32LinearExecutor fp32(weights);
    CorpusOptions options;
    options.vocab_size = config.vocab_size;
    options.num_sequences = 5;
    options.min_len = 16;
    options.max_len = 24;
    const AccuracyResult result =
        EvaluateAgreement(model, fp32, MakeCorpus(options));
    EXPECT_EQ(result.contexts, 5);
    EXPECT_DOUBLE_EQ(result.top1_agreement, 1.0);
    EXPECT_LT(result.logit_mse, 1e-9);
}

}  // namespace
}  // namespace llmnpu
