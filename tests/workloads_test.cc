/**
 * @file
 * Tests for the workload layer: corpus determinism, dataset profile ranges
 * (Table 5), and the accuracy harness.
 */
#include <gtest/gtest.h>

#include "src/model/transformer.h"
#include "src/workloads/accuracy.h"
#include "src/workloads/corpus.h"
#include "src/workloads/datasets.h"

namespace llmnpu {
namespace {

TEST(CorpusTest, DeterministicForSameSeed)
{
    CorpusOptions options;
    EXPECT_EQ(MakeCorpus(options), MakeCorpus(options));
}

TEST(CorpusTest, DifferentSeedsDiffer)
{
    CorpusOptions a, b;
    b.seed = a.seed + 1;
    EXPECT_NE(MakeCorpus(a), MakeCorpus(b));
}

TEST(CorpusTest, RespectsLengthAndVocabBounds)
{
    CorpusOptions options;
    options.vocab_size = 100;
    options.num_sequences = 20;
    options.min_len = 5;
    options.max_len = 9;
    const auto corpus = MakeCorpus(options);
    ASSERT_EQ(corpus.size(), 20u);
    for (const auto& seq : corpus) {
        EXPECT_GE(seq.size(), 5u);
        EXPECT_LE(seq.size(), 9u);
        for (int t : seq) {
            EXPECT_GE(t, 0);
            EXPECT_LT(t, 100);
        }
    }
}

TEST(CorpusTest, ZipfMakesLowIdsCommon)
{
    CorpusOptions options;
    options.vocab_size = 1000;
    options.num_sequences = 50;
    options.min_len = 64;
    options.max_len = 64;
    const auto corpus = MakeCorpus(options);
    int low = 0, total = 0;
    for (const auto& seq : corpus) {
        for (int t : seq) {
            low += t < 50 ? 1 : 0;
            ++total;
        }
    }
    EXPECT_GT(static_cast<double>(low) / total, 0.5);
}

TEST(DatasetTest, PaperProfilesMatchTable5Ranges)
{
    const auto datasets = PaperDatasets();
    ASSERT_EQ(datasets.size(), 5u);
    EXPECT_EQ(datasets[0].prompt_min, 1451);
    EXPECT_EQ(datasets[0].prompt_max, 1672);
    EXPECT_EQ(datasets[1].output_max, 11);
    EXPECT_EQ(datasets[4].name, "Persona-Chat");
    EXPECT_EQ(datasets[4].output_min, 35);
}

TEST(DatasetTest, SamplesWithinRanges)
{
    Rng rng(5);
    for (const auto& dataset : PaperDatasets()) {
        for (int i = 0; i < 50; ++i) {
            const InferenceRequest req = dataset.Sample(rng);
            EXPECT_GE(req.prompt_len, dataset.prompt_min) << dataset.name;
            EXPECT_LE(req.prompt_len, dataset.prompt_max) << dataset.name;
            EXPECT_GE(req.output_len, dataset.output_min) << dataset.name;
            EXPECT_LE(req.output_len, dataset.output_max) << dataset.name;
        }
    }
}

TEST(DatasetTest, TypicalIsMidpoint)
{
    const DatasetProfile profile = PersonaChatProfile();
    const InferenceRequest req = profile.Typical();
    EXPECT_EQ(req.prompt_len, (488 + 584) / 2);
    EXPECT_EQ(req.output_len, (35 + 57) / 2);
}

TEST(EvalSetTest, FiveBenchmarksWithDistinctContent)
{
    const auto sets = MakeBenchmarkEvalSets(256, 6);
    ASSERT_EQ(sets.size(), 5u);
    EXPECT_EQ(sets[0].name, "LAMBADA");
    EXPECT_EQ(sets[4].name, "MMLU");
    EXPECT_NE(sets[0].contexts, sets[1].contexts);
    for (const auto& set : sets) {
        EXPECT_EQ(set.contexts.size(), 6u);
    }
}

TEST(AccuracyTest, ReferenceAgreesPerfectlyWithItself)
{
    const ModelConfig config = TinyTestConfig();
    ModelWeights weights = GenerateSyntheticWeights(config);
    Transformer model(weights);
    Fp32LinearExecutor fp32(weights);
    CorpusOptions options;
    options.vocab_size = config.vocab_size;
    options.num_sequences = 5;
    options.min_len = 16;
    options.max_len = 24;
    const AccuracyResult result =
        EvaluateAgreement(model, fp32, MakeCorpus(options));
    EXPECT_EQ(result.contexts, 5);
    EXPECT_DOUBLE_EQ(result.top1_agreement, 1.0);
    EXPECT_LT(result.logit_mse, 1e-9);
}

}  // namespace
}  // namespace llmnpu
