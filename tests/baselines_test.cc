/**
 * @file
 * Engine-specific tests for the five baselines: each engine's defining
 * characteristic (TFLite's padding buckets, MLC's batch-independent
 * throughput, PowerInfer-V2's pipeline, the naive engine's per-inference
 * rebuild, llama.cpp vs MNN kernel gap) must show up in its results.
 */
#include <gtest/gtest.h>

#include "src/engines/baselines.h"
#include "src/sim/calibration.h"
#include "src/sim/npu_runtime.h"
#include "tests/support/tiny_model.h"

namespace llmnpu {
namespace {

class BaselineFixture : public PaperDeviceTest
{
  protected:
    ModelConfig gemma_ = Gemma2B();
};

// ------------------------------------------------------------- llama.cpp

TEST_F(BaselineFixture, LlamaCppMatchesPaperOrderOfMagnitude)
{
    // Table 5: ~26.4 s prefill for ~1550 tokens on Qwen1.5-1.8B.
    LlamaCppEngine engine;
    const EngineResult result = engine.Run(qwen_, soc_, {1550, 1});
    EXPECT_GT(result.prefill_ms, 26.4e3 * 0.5);
    EXPECT_LT(result.prefill_ms, 26.4e3 * 2.0);
}

TEST_F(BaselineFixture, LlamaCppDecodeNearPaperRate)
{
    // Table 5: ~80 ms/token decode on Qwen1.5-1.8B.
    LlamaCppEngine engine;
    const EngineResult result = engine.Run(qwen_, soc_, {1024, 10});
    const double per_token = result.decode_ms / 10.0;
    EXPECT_GT(per_token, 40.0);
    EXPECT_LT(per_token, 200.0);
}

TEST_F(BaselineFixture, LlamaCppSupportsAllModels)
{
    LlamaCppEngine engine;
    for (const auto& config : PaperModels()) {
        EXPECT_TRUE(engine.SupportsModel(config)) << config.name;
    }
}

// ------------------------------------------------------------------- MNN

TEST_F(BaselineFixture, MnnFasterThanLlamaCpp)
{
    // Table 5: MNN ~2.6x faster than llama.cpp on Qwen prefill.
    MnnCpuEngine mnn;
    LlamaCppEngine lcpp;
    const double ratio = lcpp.Run(qwen_, soc_, {1024, 1}).prefill_ms /
                         mnn.Run(qwen_, soc_, {1024, 1}).prefill_ms;
    EXPECT_GT(ratio, 1.5);
    EXPECT_LT(ratio, 4.0);
}

// ----------------------------------------------------------------- TFLite

TEST_F(BaselineFixture, TflitePadsToBuckets)
{
    EXPECT_EQ(TfliteEngine::PaddedPromptLen(1), 64);
    EXPECT_EQ(TfliteEngine::PaddedPromptLen(64), 64);
    EXPECT_EQ(TfliteEngine::PaddedPromptLen(65), 128);
    EXPECT_EQ(TfliteEngine::PaddedPromptLen(1000), 1024);
    EXPECT_EQ(TfliteEngine::PaddedPromptLen(2048), 2048);
    EXPECT_EQ(TfliteEngine::PaddedPromptLen(3000), 3000);
}

TEST_F(BaselineFixture, TflitePaddingWastesComputeOnShortPrompts)
{
    // Prompts 65 and 128 both execute the 128-bucket graph.
    TfliteEngine engine(Unit::kGpu);
    const double t65 = engine.Run(gemma_, soc_, {65, 1}).prefill_ms;
    const double t128 = engine.Run(gemma_, soc_, {128, 1}).prefill_ms;
    EXPECT_DOUBLE_EQ(t65, t128);
}

TEST_F(BaselineFixture, TfliteCpuSlowerThanGpu)
{
    TfliteEngine gpu(Unit::kGpu);
    TfliteEngine cpu(Unit::kCpu);
    EXPECT_GT(cpu.Run(gemma_, soc_, {512, 1}).prefill_ms,
              gpu.Run(gemma_, soc_, {512, 1}).prefill_ms);
}

TEST_F(BaselineFixture, TfliteGpuPrefillNearPaper)
{
    // Table 5: ~2.4 s for ~1550 tokens on Gemma-2B.
    TfliteEngine engine(Unit::kGpu);
    const EngineResult result = engine.Run(gemma_, soc_, {1550, 1});
    EXPECT_GT(result.prefill_ms, 2.4e3 * 0.5);
    EXPECT_LT(result.prefill_ms, 2.4e3 * 2.0);
}

// -------------------------------------------------------------------- MLC

TEST_F(BaselineFixture, MlcThroughputDoesNotScaleWithBatch)
{
    // The defining weakness: effective TFLOPS are flat, so latency is
    // ~linear in prompt length even at large M.
    MlcGpuEngine engine;
    const double t256 = engine.Run(qwen_, soc_, {256, 1}).prefill_ms;
    const double t1024 = engine.Run(qwen_, soc_, {1024, 1}).prefill_ms;
    EXPECT_NEAR(t1024 / t256, 4.0, 1.0);
}

TEST_F(BaselineFixture, MlcSlowerThanLlamaCppOnQwen)
{
    // Table 5's surprise: MLC-GPU (45.4 s) is slower than llama.cpp-CPU
    // (26.4 s) on Qwen1.5-1.8B long prompts.
    MlcGpuEngine mlc;
    LlamaCppEngine lcpp;
    EXPECT_GT(mlc.Run(qwen_, soc_, {1550, 1}).prefill_ms,
              lcpp.Run(qwen_, soc_, {1550, 1}).prefill_ms);
}

// ----------------------------------------------------------- PowerInfer-V2

TEST_F(BaselineFixture, PowerInferUsesNpuAndBeatsCpu)
{
    PowerInferV2Engine pi2;
    LlamaCppEngine lcpp;
    const ModelConfig llama = Llama2_7B();
    const EngineResult pi2_result = pi2.Run(llama, soc_, {1024, 1});
    const EngineResult cpu_result = lcpp.Run(llama, soc_, {1024, 1});
    // NPU does the heavy lifting...
    EXPECT_GT(pi2_result.prefill_busy_ms[static_cast<size_t>(Unit::kNpu)],
              pi2_result.prefill_busy_ms[static_cast<size_t>(Unit::kCpu)] *
                  0.5);
    // ...and it is far faster than the CPU baseline (Table 5: 19.0 s vs
    // 145.3 s prefill on LlaMA-2-7B).
    EXPECT_GT(cpu_result.prefill_ms / pi2_result.prefill_ms, 3.0);
}

TEST_F(BaselineFixture, PowerInferPrefillNearPaper)
{
    // Table 5: ~19.0 s prefill for ~1550 tokens on LlaMA-2-7B.
    PowerInferV2Engine engine;
    const EngineResult result = engine.Run(Llama2_7B(), soc_, {1550, 1});
    EXPECT_GT(result.prefill_ms, 19.0e3 * 0.4);
    EXPECT_LT(result.prefill_ms, 19.0e3 * 2.5);
}

// -------------------------------------------------------------- naive NPU

TEST_F(BaselineFixture, NaiveNpuPaysGraphPreparationEveryInference)
{
    // The same request twice costs the same: nothing is cached across
    // inferences because the prompt length keys the graph (§2.3).
    NaiveNpuEngine engine;
    const double first = engine.Run(qwen_, soc_, {512, 1}).prefill_ms;
    const double second = engine.Run(qwen_, soc_, {512, 1}).prefill_ms;
    EXPECT_DOUBLE_EQ(first, second);
    // And preparation dominates: prefill exceeds the optimize cost alone.
    NpuGraphDesc desc;
    desc.num_ops = qwen_.num_layers * 13;
    desc.const_bytes =
        qwen_.MatMulParams() + qwen_.vocab_size * qwen_.hidden_size;
    EXPECT_GT(first, NpuRuntime::CostsFor(desc).optimize_ms);
}

TEST_F(BaselineFixture, NaiveNpuPrepShareLargerForGemma)
{
    // Gemma's graph optimization is ~3.5x Qwen's (Figure 2), so graph
    // preparation eats a larger share of naive-NPU prefill for Gemma —
    // which is why its Figure 19 "+chunk" step is the largest (5.09x).
    NaiveNpuEngine naive;
    auto prep_share = [&](const ModelConfig& config) {
        NpuGraphDesc desc;
        desc.num_ops = config.num_layers * 13;
        desc.const_bytes = config.MatMulParams() +
                           config.vocab_size * config.hidden_size;
        const double prep = NpuRuntime::CostsFor(desc).TotalPrepareMs();
        return prep / naive.Run(config, soc_, {512, 1}).prefill_ms;
    };
    EXPECT_GT(prep_share(gemma_), prep_share(qwen_));
}

// ----------------------------------------------------------- cross-engine

TEST_F(BaselineFixture, PaperBaselineFactoryIsComplete)
{
    const auto engines = MakePaperBaselines();
    ASSERT_EQ(engines.size(), 5u);
    EXPECT_EQ(engines[0]->Name(), "llama.cpp-CPU");
    EXPECT_EQ(engines[1]->Name(), "MNN-CPU");
    EXPECT_EQ(engines[2]->Name(), "TFLite-GPU");
    EXPECT_EQ(engines[3]->Name(), "MLC-GPU");
    EXPECT_EQ(engines[4]->Name(), "PowerInfer-V2-NPU");
}

TEST_F(BaselineFixture, EnergyFollowsProcessorEfficiency)
{
    // For comparable latencies, NPU-heavy engines burn less power than
    // CPU-heavy ones (§2.2). Compare energy per unit time.
    LlamaCppEngine lcpp;
    PowerInferV2Engine pi2;
    const EngineResult cpu_result = lcpp.Run(Llama2_7B(), soc_, {1024, 1});
    const EngineResult npu_result = pi2.Run(Llama2_7B(), soc_, {1024, 1});
    const double cpu_watts =
        cpu_result.prefill_energy_mj / cpu_result.prefill_ms;
    const double npu_watts =
        npu_result.prefill_energy_mj / npu_result.prefill_ms;
    EXPECT_LT(npu_watts, cpu_watts);
}

TEST_F(BaselineFixture, MemoryDominatedByWeights)
{
    for (auto& engine : MakePaperBaselines()) {
        for (const auto& config : PaperModels()) {
            if (!engine->SupportsModel(config)) continue;
            const EngineResult result = engine->Run(config, soc_, {512, 1});
            EXPECT_GT(result.memory_bytes, config.MatMulParams())
                << engine->Name() << " " << config.name;
            EXPECT_LT(result.memory_bytes, 4 * config.TotalParams())
                << engine->Name() << " " << config.name;
        }
    }
}

}  // namespace
}  // namespace llmnpu
