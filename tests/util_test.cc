/**
 * @file
 * Unit tests for the utility layer: RNG determinism and distributions,
 * streaming statistics, table rendering, formatting helpers.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/util/format.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace llmnpu {
namespace {

TEST(SplitMix64Test, DeterministicSequence)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer)
{
    SplitMix64 a(1), b(2);
    EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(7), b(7);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.Uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.Uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(RngTest, UniformIntInclusiveBounds)
{
    Rng rng(3);
    std::set<int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.UniformInt(static_cast<int64_t>(2), 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);  // all four values appear
}

TEST(RngTest, NormalMomentsApproximatelyStandard)
{
    Rng rng(4);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i) stat.Add(rng.Normal());
    EXPECT_NEAR(stat.mean(), 0.0, 0.03);
    EXPECT_NEAR(stat.StdDev(), 1.0, 0.03);
}

TEST(RngTest, NormalScaledMoments)
{
    Rng rng(5);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i) stat.Add(rng.Normal(10.0, 2.0));
    EXPECT_NEAR(stat.mean(), 10.0, 0.1);
    EXPECT_NEAR(stat.StdDev(), 2.0, 0.1);
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(6);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ZipfStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        EXPECT_LT(rng.Zipf(100, 1.1), 100u);
    }
}

TEST(RngTest, ZipfIsSkewedTowardSmallValues)
{
    Rng rng(8);
    int small = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        if (rng.Zipf(1000, 1.2) < 10) ++small;
    }
    // Zipf(1.2): the first ten of a thousand values carry ~half the mass.
    EXPECT_GT(small, n * 2 / 5);
}

TEST(RunningStatTest, BasicMoments)
{
    RunningStat stat;
    for (double v : {1.0, 2.0, 3.0, 4.0}) stat.Add(v);
    EXPECT_EQ(stat.count(), 4u);
    EXPECT_DOUBLE_EQ(stat.mean(), 2.5);
    EXPECT_DOUBLE_EQ(stat.min(), 1.0);
    EXPECT_DOUBLE_EQ(stat.max(), 4.0);
    EXPECT_DOUBLE_EQ(stat.sum(), 10.0);
    EXPECT_NEAR(stat.Variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStatTest, EmptyIsZero)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.mean(), 0.0);
    EXPECT_EQ(stat.Variance(), 0.0);
}

TEST(StatsTest, GeoMeanOfEqualValues)
{
    EXPECT_NEAR(GeoMean({3.0, 3.0, 3.0}), 3.0, 1e-12);
}

TEST(StatsTest, GeoMeanKnownValue)
{
    EXPECT_NEAR(GeoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(GeoMean({2.0, 8.0, 32.0}), 8.0, 1e-9);
}

TEST(StatsTest, PercentileEndpointsAndMedian)
{
    std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 3.0);
}

TEST(StatsTest, PercentileInterpolates)
{
    std::vector<double> xs = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(Percentile(xs, 25.0), 2.5);
}

TEST(TableTest, RendersAlignedColumns)
{
    Table table({"name", "value"});
    table.AddRow({"a", "1"});
    table.AddRow({"longer", "2.5"});
    const std::string out = table.ToString();
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 2.5   |"), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision)
{
    EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::Num(2.0, 0), "2");
}

TEST(TableTest, WithPaperIncludesBothNumbers)
{
    const std::string s = Table::WithPaper(1.5, 2.0, 1);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("paper: 2.0"), std::string::npos);
}

TEST(FormatTest, HumanBytes)
{
    EXPECT_EQ(HumanBytes(512), "512 B");
    EXPECT_EQ(HumanBytes(2048), "2.0 KB");
    EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MB");
    EXPECT_EQ(HumanBytes(1536ull * 1024 * 1024), "1.50 GB");
}

TEST(FormatTest, HumanMs)
{
    EXPECT_EQ(HumanMs(1500.0), "1.50 s");
    EXPECT_EQ(HumanMs(12.3), "12.3 ms");
    EXPECT_EQ(HumanMs(0.5), "500.0 us");
}

TEST(FormatTest, StrFormatBasics)
{
    EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

}  // namespace
}  // namespace llmnpu
