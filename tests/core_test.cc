/**
 * @file
 * Tests for the llm.npu core: chunk-sharing graphs (§3.2), shadow outlier
 * execution and Equation 1 (§3.3), and the out-of-order scheduler (§3.4).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/chunk_graph.h"
#include "src/core/outlier_profile.h"
#include "src/core/scheduler.h"
#include "src/core/shadow_executor.h"
#include "src/tensor/matmul.h"
#include "src/workloads/accuracy.h"
#include "src/workloads/corpus.h"
#include "tests/support/chunk_timings.h"
#include "tests/support/timeline_asserts.h"
#include "tests/support/tiny_model.h"

namespace llmnpu {
namespace {

// ------------------------------------------------------------- chunk graph

TEST(ChunkGraphTest, QwenSubgraphCountsMatchPaper)
{
    // §3.2: "120 out of 144 subgraphs can be shared in Qwen1.5-1.8B".
    ChunkGraphPlan plan(Qwen15_1_8B(), 256, /*share_static=*/true);
    EXPECT_EQ(plan.NumSubgraphs(), 144);
    EXPECT_EQ(plan.NumSharedSubgraphs(), 120);
}

TEST(ChunkGraphTest, NumChunksCeils)
{
    ChunkGraphPlan plan(Qwen15_1_8B(), 256, true);
    EXPECT_EQ(plan.NumChunks(1), 1);
    EXPECT_EQ(plan.NumChunks(256), 1);
    EXPECT_EQ(plan.NumChunks(257), 2);
    EXPECT_EQ(plan.NumChunks(1024), 4);
}

TEST(ChunkGraphTest, StageClassification)
{
    EXPECT_TRUE(StageOnNpu(StageKind::kQkvLinear));
    EXPECT_TRUE(StageOnNpu(StageKind::kOProj));
    EXPECT_TRUE(StageOnNpu(StageKind::kFfn));
    EXPECT_FALSE(StageOnNpu(StageKind::kAttention));
    EXPECT_FALSE(StageOnNpu(StageKind::kAttnNorm));
    // Only attention is dynamic (depends on the chunk's position).
    for (int s = 0; s < kStagesPerLayer; ++s) {
        const auto stage = static_cast<StageKind>(s);
        EXPECT_EQ(StageIsDynamic(stage), stage == StageKind::kAttention);
    }
}

TEST(ChunkGraphTest, SharingSavesMostGraphMemory)
{
    // §3.2: sharing reduces graph memory by up to ~75% at 1024/256.
    const ModelConfig qwen = Qwen15_1_8B();
    ChunkGraphPlan shared(qwen, 256, true);
    ChunkGraphPlan unshared(qwen, 256, false);
    const int64_t shared_bytes = shared.GraphMemoryBytes(4);
    const int64_t unshared_bytes = unshared.GraphMemoryBytes(4);
    const double saving =
        1.0 - static_cast<double>(shared_bytes) /
                  static_cast<double>(unshared_bytes);
    EXPECT_GT(saving, 0.60);
    EXPECT_LT(saving, 0.80);
}

TEST(ChunkGraphTest, UnsharedMemoryIsMultipleOfWeights)
{
    // §3.2: naive chunk graphs cost 2-4x more than the LLM weights.
    const ModelConfig qwen = Qwen15_1_8B();
    ChunkGraphPlan unshared(qwen, 256, false);
    const double ratio =
        static_cast<double>(unshared.GraphMemoryBytes(4)) /
        static_cast<double>(qwen.MatMulParams());
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 8.0);
}

TEST(ChunkGraphTest, WeightBytesMatchConfig)
{
    const ModelConfig qwen = Qwen15_1_8B();
    ChunkGraphPlan plan(qwen, 256, true);
    int64_t per_layer = plan.StageWeightBytes(StageKind::kQkvLinear) +
                        plan.StageWeightBytes(StageKind::kOProj) +
                        plan.StageWeightBytes(StageKind::kFfn);
    EXPECT_EQ(per_layer * qwen.num_layers, qwen.MatMulParams());
}

TEST(ChunkGraphTest, PreparationGraphCounts)
{
    const ModelConfig qwen = Qwen15_1_8B();
    ChunkGraphPlan shared(qwen, 256, true);
    ChunkGraphPlan unshared(qwen, 256, false);
    EXPECT_EQ(shared.PreparationGraphs(4).size(),
              static_cast<size_t>(qwen.num_layers) * 3);
    EXPECT_EQ(unshared.PreparationGraphs(4).size(),
              static_cast<size_t>(qwen.num_layers) * 3 * 4);
}

TEST(ChunkGraphTest, AttentionBuffersGrowWithKvLen)
{
    ChunkGraphPlan plan(Qwen15_1_8B(), 256, true);
    EXPECT_GT(plan.StageActivationBytes(StageKind::kAttention, 1024),
              plan.StageActivationBytes(StageKind::kAttention, 256));
}

// --------------------------------------------------- outlier profile + Eq 1

class ShadowFixture : public TinyModelTest
{
  protected:
    const ModelConfig* config_ = &tiny_.config;
    const ModelWeights* weights_ = &tiny_.weights;
    const Transformer* model_ = &tiny_.model;
    const std::vector<std::vector<int>>* corpus_ = &tiny_.calib_corpus;
    const OutlierProfile* profile_ = &tiny_.profile;
};

TEST_F(ShadowFixture, OutliersAreSparse)
{
    // Figure 10: outlier channels are 0.1-0.3% on real models; our tiny
    // proxy injects ~3% hot channels, so per-token outliers stay below ~10%.
    const auto& stats = profile_->Stats(0, LinearKind::kWq);
    EXPECT_GT(stats.mean_outliers_per_token, 0.0);
    EXPECT_LT(stats.mean_outlier_fraction, 0.10);
}

TEST_F(ShadowFixture, HotChannelsCoverMostOutliers)
{
    // Figure 11: a small channel set carries >80% of outliers.
    const auto& stats = profile_->Stats(0, LinearKind::kWq);
    ASSERT_FALSE(stats.hot_channels.empty());
    EXPECT_GE(stats.hot_coverage_achieved, 0.80);
    EXPECT_LT(static_cast<double>(stats.hot_channels.size()),
              0.3 * static_cast<double>(config_->hidden_size));
}

TEST_F(ShadowFixture, HotChannelsMatchInjectedOnes)
{
    const auto& stats = profile_->Stats(0, LinearKind::kWq);
    int matched = 0;
    for (int c : stats.hot_channels) {
        if (std::find(weights_->hot_channels.begin(),
                      weights_->hot_channels.end(),
                      c) != weights_->hot_channels.end()) {
            ++matched;
        }
    }
    // Most detected hot channels are genuinely injected ones.
    EXPECT_GE(matched * 2, static_cast<int>(stats.hot_channels.size()));
}

TEST_F(ShadowFixture, ImportanceRanksAreAPermutation)
{
    std::vector<bool> seen(static_cast<size_t>(profile_->NumLinears()),
                           false);
    for (int l = 0; l < config_->num_layers; ++l) {
        for (const auto& spec : config_->LayerLinears()) {
            const int rank = profile_->ImportanceRank(l, spec.kind);
            ASSERT_GE(rank, 0);
            ASSERT_LT(rank, profile_->NumLinears());
            EXPECT_FALSE(seen[static_cast<size_t>(rank)]);
            seen[static_cast<size_t>(rank)] = true;
        }
    }
}

TEST_F(ShadowFixture, PruningRateControlsEnabledCount)
{
    int enabled_none = 0, enabled_85 = 0, enabled_all = 0;
    for (int l = 0; l < config_->num_layers; ++l) {
        for (const auto& spec : config_->LayerLinears()) {
            enabled_none += profile_->ShadowEnabled(l, spec.kind, 0.0);
            enabled_85 += profile_->ShadowEnabled(l, spec.kind, 0.85);
            enabled_all += profile_->ShadowEnabled(l, spec.kind, 1.0);
        }
    }
    EXPECT_EQ(enabled_none, profile_->NumLinears());
    EXPECT_EQ(enabled_all, 0);
    EXPECT_NEAR(enabled_85, static_cast<int>(0.15 * profile_->NumLinears()),
                2);
}

TEST_F(ShadowFixture, Equation1RecoversOutliers)
{
    // Craft an activation with a huge outlier in one channel. With the
    // shadow path the result must match the dequantized-weight float
    // reference closely; without it the clip destroys the outlier term.
    const LinearKind kind = LinearKind::kWq;
    const auto& op = profile_->Stats(0, kind);
    Tensor x = Tensor::Zeros({2, config_->hidden_size});
    for (int64_t c = 0; c < config_->hidden_size; ++c) {
        x.At(0, c) = 0.01f * static_cast<float>(c % 7);
        x.At(1, c) = -0.02f * static_cast<float>(c % 5);
    }
    const int outlier_channel = weights_->hot_channels.front();
    x.At(0, outlier_channel) = op.ClipValue() * 20.0f;

    PerColumnWeights wq = QuantizePerColumn(weights_->Linear(0, kind));
    Tensor w_deq = DequantizePerColumn(wq);
    Tensor y_ref = MatMulF32(x, w_deq);

    NpuShadowExecutor with_shadow(*weights_, *profile_, /*pruning_rate=*/0.0);
    NpuShadowExecutor no_shadow(*weights_, *profile_, /*pruning_rate=*/1.0);
    Tensor y_shadow = with_shadow.Forward(0, kind, x);
    Tensor y_clipped = no_shadow.Forward(0, kind, x);

    const double err_shadow = MaxAbsDiff(y_shadow, y_ref);
    const double err_clipped = MaxAbsDiff(y_clipped, y_ref);
    EXPECT_LT(err_shadow * 10.0, err_clipped);
    // The shadow result is within quantization noise of the reference.
    EXPECT_LT(err_shadow, op.clip_scale * static_cast<double>(
                               config_->hidden_size));
}

TEST_F(ShadowFixture, RuntimeStatsTrackExtractions)
{
    NpuShadowExecutor executor(*weights_, *profile_, 0.0);
    KvCache cache = model_->MakeCache();
    model_->Forward((*corpus_)[0], cache, executor);
    const auto& stats = executor.stats();
    EXPECT_GT(stats.linear_calls, 0);
    EXPECT_GT(stats.shadow_calls, 0);
    EXPECT_GT(stats.extracted_channels, 0);
    EXPECT_EQ(stats.hot_hits + stats.cold_misses, stats.extracted_channels);
    // Hot channels dominate extractions (the Figure 11 skew).
    EXPECT_GT(stats.hot_hits, stats.cold_misses);
}

TEST_F(ShadowFixture, FullyPrunedExecutorRunsNoShadow)
{
    NpuShadowExecutor executor(*weights_, *profile_, 1.0);
    KvCache cache = model_->MakeCache();
    model_->Forward((*corpus_)[0], cache, executor);
    EXPECT_EQ(executor.stats().shadow_calls, 0);
    EXPECT_EQ(executor.ResidentShadowWeightBytes(), 0);
}

TEST_F(ShadowFixture, AccuracyDegradesMonotonicallyWithPruning)
{
    // Figure 16: more pruning => faster but less accurate.
    CorpusOptions eval_options;
    eval_options.vocab_size = config_->vocab_size;
    eval_options.num_sequences = 10;
    eval_options.min_len = 24;
    eval_options.max_len = 40;
    eval_options.seed = 0xacc;
    const auto eval_set = MakeCorpus(eval_options);

    NpuShadowExecutor none(*weights_, *profile_, 0.0);
    NpuShadowExecutor all(*weights_, *profile_, 1.0);
    const double agree_full =
        EvaluateAgreement(*model_, none, eval_set).top1_agreement;
    const double agree_pruned =
        EvaluateAgreement(*model_, all, eval_set).top1_agreement;
    EXPECT_GE(agree_full, agree_pruned);
    EXPECT_GE(agree_full, 0.8);  // Table 6: ours ~ FP16
}

TEST_F(ShadowFixture, ResidentShadowBytesShrinkWithPruning)
{
    NpuShadowExecutor none(*weights_, *profile_, 0.0);
    NpuShadowExecutor most(*weights_, *profile_, 0.85);
    EXPECT_GT(none.ResidentShadowWeightBytes(),
              most.ResidentShadowWeightBytes());
}

// ---------------------------------------------------------------- scheduler

TEST(SchedulerTest, DagSizeAndDependencies)
{
    const auto timings = MakeSyntheticChunkTimings(3, 2, 1.0, 0.5);
    const auto tasks = BuildPrefillDag(timings, 2);
    EXPECT_EQ(tasks.size(), 3u * 2u * kStagesPerLayer);
    // First stage of every chunk has no deps (chunks start independently).
    for (const auto& task : tasks) {
        if (task.stage == 0) {
            EXPECT_TRUE(task.deps.empty());
        }
    }
}

TEST(SchedulerTest, AttentionHasCrossChunkDeps)
{
    const auto timings = MakeSyntheticChunkTimings(3, 1, 1.0, 0.5);
    const auto tasks = BuildPrefillDag(timings, 1);
    // Attention is stage index 2; chunk 2's attention depends on 3 tasks:
    // its own QKV plus chunks 0 and 1's QKV (Equation 2).
    for (const auto& task : tasks) {
        if (task.stage == static_cast<int>(StageKind::kAttention)) {
            EXPECT_EQ(task.deps.size(), static_cast<size_t>(task.chunk) + 1)
                << "chunk " << task.chunk;
        }
    }
}

TEST(SchedulerTest, ShadowTasksAddOneNodePerNpuStage)
{
    const auto plain = BuildPrefillDag(
        MakeSyntheticChunkTimings(1, 1, 1.0, 0.5, 0.0), 1);
    const auto shadowed = BuildPrefillDag(
        MakeSyntheticChunkTimings(1, 1, 1.0, 0.5, 0.3), 1);
    // 3 NPU stages per layer, each adds one parallel shadow task whose
    // completion gates the consumers (the reduced-sum merge).
    EXPECT_EQ(shadowed.size(), plain.size() + 3);
    // The stage after a shadowed NPU stage depends on both halves.
    int two_dep_tasks = 0;
    for (const auto& task : shadowed) {
        if (task.deps.size() == 2u) ++two_dep_tasks;
    }
    // attention (after shadowed qkv) and ffn_norm (after shadowed o_proj);
    // the final ffn stage has no consumer inside a single-layer chunk.
    EXPECT_GE(two_dep_tasks, 2);
}

TEST(SchedulerTest, ScheduleRespectsDependencies)
{
    const auto timings = MakeSyntheticChunkTimings(4, 2, 1.0, 0.7);
    const auto tasks = BuildPrefillDag(timings, 2);
    const TimelineResult result = RunTimeline(tasks, OooPicker());
    EXPECT_TRUE(ScheduleRespectsDeps(tasks, result));
}

TEST(SchedulerTest, OooNotSlowerThanFifoAndReducesBubbles)
{
    // An NPU-heavy chunked workload (the paper's regime: NPU time ~2x CPU).
    const auto timings = MakeSyntheticChunkTimings(4, 4, 2.0, 1.0);
    const auto tasks = BuildPrefillDag(timings, 4);
    const TimelineResult fifo = RunTimeline(tasks, FifoPicker());
    const TimelineResult ooo = RunTimeline(tasks, OooPicker());
    EXPECT_LE(ooo.makespan_ms, fifo.makespan_ms + 1e-9);
    EXPECT_LE(ooo.BubbleRate(Unit::kNpu), fifo.BubbleRate(Unit::kNpu) + 1e-9);
}

TEST(SchedulerTest, OooKeepsNpuBubblesLow)
{
    // Figure 13: out-of-order execution nearly eliminates NPU bubbles when
    // CPU work fits under NPU work.
    const auto timings = MakeSyntheticChunkTimings(6, 4, 2.0, 0.6);
    const auto tasks = BuildPrefillDag(timings, 4);
    const TimelineResult ooo = RunTimeline(tasks, OooPicker());
    EXPECT_LT(ooo.BubbleRate(Unit::kNpu), 0.12);
}

TEST(SchedulerTest, SingleChunkHasNoCrossDeps)
{
    const auto timings = MakeSyntheticChunkTimings(1, 2, 1.0, 0.5);
    const auto tasks = BuildPrefillDag(timings, 2);
    for (const auto& task : tasks) {
        EXPECT_LE(task.deps.size(), 1u);
    }
}

}  // namespace
}  // namespace llmnpu
