/**
 * @file
 * Kernel-equivalence and thread-pool tests (CTest label: kernels).
 *
 * The tiled/threaded kernels in src/tensor/kernels.cc are checked against
 * the naive reference kernels in src/tensor/matmul.cc across shapes that
 * exercise every remainder path (row blocks, panel tails, tiny K), and for
 * determinism across thread counts: the INT8 kernels must be bitwise
 * identical at 1/2/4 threads.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/tensor/matmul.h"
#include "src/tensor/quantize.h"
#include "src/util/rng.h"
#include "src/util/threadpool.h"
#include "tests/support/random.h"

namespace llmnpu {
namespace {

Tensor
RandomI8(Rng& rng, std::vector<int64_t> shape)
{
    Tensor t(std::move(shape), DType::kI8);
    int8_t* p = t.Data<int8_t>();
    for (int64_t i = 0; i < t.NumElements(); ++i) {
        p[i] = static_cast<int8_t>(static_cast<int>(rng.UniformInt(255)) -
                                   127);
    }
    return t;
}

/** Shapes covering the MR remainder paths (m % 4), panel tails (n % 16),
 *  odd K, matvec (m=1), and degenerate empty dimensions. */
const std::vector<std::vector<int64_t>> kShapes = {
    {1, 100, 130}, {4, 32, 48},  {3, 7, 200}, {5, 64, 96},
    {2, 1, 1},     {7, 33, 17},  {16, 128, 64}, {6, 256, 16},
    {0, 16, 16},   {3, 0, 8},    {2, 8, 0},
};

// ------------------------------------------------------------------- f32

TEST(KernelEquivalenceTest, F32MatchesNaiveAcrossShapes)
{
    Rng rng(101);
    for (const auto& s : kShapes) {
        Tensor a = RandomTensor(rng, {s[0], s[1]});
        Tensor b = RandomTensor(rng, {s[1], s[2]});
        Tensor tiled = MatMulF32(a, b);
        Tensor naive = MatMulF32Naive(a, b);
        ASSERT_EQ(tiled.shape(), naive.shape());
        EXPECT_LT(MaxAbsDiff(tiled, naive), 1e-3)
            << "m=" << s[0] << " k=" << s[1] << " n=" << s[2];
    }
}

TEST(KernelEquivalenceTest, F32PackedMatchesUnpacked)
{
    Rng rng(102);
    Tensor a = RandomTensor(rng, {9, 75});
    Tensor b = RandomTensor(rng, {75, 130});
    Tensor via_pack = MatMulF32Packed(a, PackWeightsF32(b));
    EXPECT_LT(MaxAbsDiff(via_pack, MatMulF32Naive(a, b)), 1e-3);
}

TEST(KernelEquivalenceTest, TransposedPackMatchesMaterializedTranspose)
{
    Rng rng(103);
    Tensor a = RandomTensor(rng, {5, 48});
    Tensor wt = RandomTensor(rng, {100, 48});  // use as W^T: [n x k]
    Tensor w({48, 100}, DType::kF32);
    for (int64_t r = 0; r < 48; ++r) {
        for (int64_t c = 0; c < 100; ++c) w.At(r, c) = wt.At(c, r);
    }
    Tensor via_transposed_pack =
        MatMulF32Packed(a, PackWeightsF32Transposed(wt));
    EXPECT_LT(MaxAbsDiff(via_transposed_pack, MatMulF32Naive(a, w)), 1e-3);
}

TEST(KernelEquivalenceTest, F32ThreadCountsAgree)
{
    Rng rng(104);
    Tensor a = RandomTensor(rng, {17, 128});
    Tensor b = RandomTensor(rng, {128, 130});
    Tensor ref;
    {
        ScopedNumThreads one(1);
        ref = MatMulF32(a, b);
    }
    for (int threads : {2, 4}) {
        ScopedNumThreads t(threads);
        EXPECT_LT(MaxAbsDiff(MatMulF32(a, b), ref), 1e-4)
            << threads << " threads";
    }
}

// ------------------------------------------------------------------ int8

TEST(KernelEquivalenceTest, W8A8PerTensorBitwiseMatchesNaive)
{
    Rng rng(105);
    for (const auto& s : kShapes) {
        Tensor a_q = RandomI8(rng, {s[0], s[1]});
        Tensor w_q = RandomI8(rng, {s[1], s[2]});
        std::vector<float> per_col;
        for (int64_t j = 0; j < s[2]; ++j) {
            per_col.push_back(0.01f + 0.001f * static_cast<float>(j));
        }
        // Per-column scales.
        Tensor tiled = MatMulW8A8PerTensor(a_q, 0.02f, w_q, per_col);
        EXPECT_TRUE(tiled.BitEquals(
            MatMulW8A8PerTensorNaive(a_q, 0.02f, w_q, per_col)))
            << "per-col m=" << s[0] << " k=" << s[1] << " n=" << s[2];
        // Uniform scale.
        const std::vector<float> uniform = {0.05f};
        Tensor tiled_u = MatMulW8A8PerTensor(a_q, 0.02f, w_q, uniform);
        EXPECT_TRUE(tiled_u.BitEquals(
            MatMulW8A8PerTensorNaive(a_q, 0.02f, w_q, uniform)))
            << "uniform m=" << s[0] << " k=" << s[1] << " n=" << s[2];
    }
}

TEST(KernelEquivalenceTest, W8A8RowColBitwiseMatchesNaive)
{
    Rng rng(106);
    for (const auto& s : {std::vector<int64_t>{1, 100, 130},
                          std::vector<int64_t>{5, 64, 96},
                          std::vector<int64_t>{7, 33, 17}}) {
        Tensor a_q = RandomI8(rng, {s[0], s[1]});
        Tensor w_q = RandomI8(rng, {s[1], s[2]});
        std::vector<float> a_scales, w_scales;
        for (int64_t i = 0; i < s[0]; ++i) {
            a_scales.push_back(0.01f + 0.002f * static_cast<float>(i));
        }
        for (int64_t j = 0; j < s[2]; ++j) {
            w_scales.push_back(0.03f + 0.001f * static_cast<float>(j));
        }
        Tensor tiled = MatMulW8A8RowCol(a_q, a_scales, w_q, w_scales);
        EXPECT_TRUE(tiled.BitEquals(
            MatMulW8A8RowColNaive(a_q, a_scales, w_q, w_scales)))
            << "m=" << s[0] << " k=" << s[1] << " n=" << s[2];
    }
}

TEST(KernelEquivalenceTest, PerGroupMatchesNaiveAcrossShapes)
{
    Rng rng(107);
    for (const auto& s : {std::vector<int64_t>{1, 96, 130},
                          std::vector<int64_t>{4, 64, 48},
                          std::vector<int64_t>{7, 128, 17},
                          std::vector<int64_t>{0, 64, 8}}) {
        Tensor a = RandomTensor(rng, {s[0], s[1]});
        Tensor w = RandomTensor(rng, {s[1], s[2]});
        PerGroupWeights pg = QuantizePerGroup(w, 32);
        Tensor tiled = MatMulPerGroup(a, pg);
        Tensor naive = MatMulPerGroupNaive(a, pg);
        ASSERT_EQ(tiled.shape(), naive.shape());
        const double scale = std::max(1.0, static_cast<double>(AbsMax(naive)));
        EXPECT_LT(MaxAbsDiff(tiled, naive) / scale, 1e-5)
            << "m=" << s[0] << " k=" << s[1] << " n=" << s[2];
    }
}

TEST(KernelEquivalenceTest, RowSubsetMatchesMaskedNaive)
{
    Rng rng(108);
    Tensor a = RandomTensor(rng, {6, 40});
    Tensor w = RandomTensor(rng, {40, 33});
    const std::vector<int> rows = {0, 3, 17, 39};
    Tensor a_sub({6, 4}, DType::kF32);
    Tensor a_masked = Tensor::Zeros({6, 40});
    for (int64_t r = 0; r < 6; ++r) {
        for (size_t i = 0; i < rows.size(); ++i) {
            a_sub.At(r, static_cast<int64_t>(i)) = a.At(r, rows[i]);
            a_masked.At(r, rows[i]) = a.At(r, rows[i]);
        }
    }
    EXPECT_LT(MaxAbsDiff(MatMulRowSubset(a_sub, w, rows),
                         MatMulF32Naive(a_masked, w)),
              1e-4);
}

// --------------------------------------------------------- determinism

TEST(KernelDeterminismTest, W8A8BitwiseAcrossThreadCounts)
{
    Rng rng(109);
    // Big enough that the parallel path actually engages.
    Tensor a_q = RandomI8(rng, {16, 128});
    Tensor w_q = RandomI8(rng, {128, 130});
    std::vector<float> w_scales;
    for (int64_t j = 0; j < 130; ++j) {
        w_scales.push_back(0.01f + 0.0005f * static_cast<float>(j));
    }
    Tensor ref;
    {
        ScopedNumThreads one(1);
        ref = MatMulW8A8PerTensor(a_q, 0.015f, w_q, w_scales);
    }
    for (int threads : {2, 4}) {
        ScopedNumThreads t(threads);
        EXPECT_TRUE(
            MatMulW8A8PerTensor(a_q, 0.015f, w_q, w_scales).BitEquals(ref))
            << threads << " threads";
    }
}

TEST(KernelDeterminismTest, PerGroupBitwiseAcrossThreadCounts)
{
    Rng rng(110);
    Tensor a = RandomTensor(rng, {16, 128});
    Tensor w = RandomTensor(rng, {128, 130});
    PerGroupWeights pg = QuantizePerGroup(w, 32);
    Tensor ref;
    {
        ScopedNumThreads one(1);
        ref = MatMulPerGroup(a, pg);
    }
    for (int threads : {2, 4}) {
        ScopedNumThreads t(threads);
        EXPECT_TRUE(MatMulPerGroup(a, pg).BitEquals(ref))
            << threads << " threads";
    }
}

// ---------------------------------------------------------- thread pool

TEST(ThreadPoolTest, CoversRangeExactlyOnce)
{
    ScopedNumThreads four(4);
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> blocks;
    ThreadPool::Global().ParallelFor(1000, 1, [&](int64_t b, int64_t e) {
        std::lock_guard<std::mutex> lock(mu);
        blocks.emplace_back(b, e);
    });
    std::vector<int> hits(1000, 0);
    for (const auto& [b, e] : blocks) {
        ASSERT_LE(0, b);
        ASSERT_LE(b, e);
        ASSERT_LE(e, 1000);
        for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
    }
    for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, SmallRangeRunsInline)
{
    ScopedNumThreads four(4);
    int calls = 0;
    // 5 items at grain 4 -> one block -> must run inline on the caller.
    ThreadPool::Global().ParallelFor(5, 4, [&](int64_t b, int64_t e) {
        ++calls;
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 5);
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, EmptyRangeNeverCalls)
{
    std::atomic<int> calls{0};
    ThreadPool::Global().ParallelFor(0, 1, [&](int64_t, int64_t) {
        ++calls;
    });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline)
{
    ScopedNumThreads four(4);
    std::atomic<int64_t> total{0};
    ThreadPool::Global().ParallelFor(64, 1, [&](int64_t b, int64_t e) {
        // The nested region must execute inline (no deadlock, full range).
        ThreadPool::Global().ParallelFor(e - b, 1,
                                         [&](int64_t ib, int64_t ie) {
                                             total += ie - ib;
                                         });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, RequestedThreadsHonorsEnv)
{
    {
        ScopedNumThreads two(2);
        EXPECT_EQ(ThreadPool::RequestedThreads(), 2);
    }
    {
        ScopedNumThreads huge(9999);
        EXPECT_EQ(ThreadPool::RequestedThreads(), ThreadPool::kMaxThreads);
    }
}

TEST(ThreadPoolTest, ConsecutiveJobsReuseWorkers)
{
    ScopedNumThreads four(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int64_t> total{0};
        ThreadPool::Global().ParallelFor(128, 1, [&](int64_t b, int64_t e) {
            total += e - b;
        });
        ASSERT_EQ(total.load(), 128);
    }
    EXPECT_LE(ThreadPool::Global().NumWorkers(), ThreadPool::kMaxThreads);
}

}  // namespace
}  // namespace llmnpu
