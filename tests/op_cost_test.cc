/**
 * @file
 * Tests for the shared operator cost helpers (src/engines/op_cost) — the
 * pricing layer every sequential baseline is built on.
 */
#include <gtest/gtest.h>

#include "src/engines/op_cost.h"
#include "src/sim/calibration.h"
#include "tests/support/tiny_model.h"

namespace llmnpu {
namespace {

class OpCostFixture : public PaperDeviceTest
{};

TEST_F(OpCostFixture, BlockLinearsSumAllLinears)
{
    ExecPolicy policy;
    const auto& cpu = soc_.Processor(Unit::kCpu);
    const double block_ms = BlockLinearsMs(qwen_, cpu, 256, policy);
    // Lower bound: a single fused matmul over all the block's parameters.
    const double single = cpu.MatMulMs(
        {256, qwen_.hidden_size,
         qwen_.LayerLinearParams() / qwen_.hidden_size},
        policy.linear_format, policy.group_size, false);
    EXPECT_GE(block_ms, single * 0.8);
    EXPECT_GT(block_ms, 0.0);
}

TEST_F(OpCostFixture, SpeedMultiplierScalesLatency)
{
    ExecPolicy slow, fast;
    fast.linear_speed_mult = 2.0;
    const auto& cpu = soc_.Processor(Unit::kCpu);
    const double slow_ms = BlockLinearsMs(qwen_, cpu, 512, slow);
    const double fast_ms = BlockLinearsMs(qwen_, cpu, 512, fast);
    EXPECT_NEAR(slow_ms / fast_ms, 2.0, 0.15);
}

TEST_F(OpCostFixture, ThroughputCapBindsLargeBatches)
{
    // A tight cap dominates at large M where the native model is fast.
    ExecPolicy capped;
    capped.linear_format = ExecFormat::kFp16;
    capped.linear_tops_cap = 0.05;
    ExecPolicy uncapped = capped;
    uncapped.linear_tops_cap = 0.0;
    const auto& gpu = soc_.Processor(Unit::kGpu);
    const double capped_ms = BlockLinearsMs(qwen_, gpu, 1024, capped);
    const double uncapped_ms = BlockLinearsMs(qwen_, gpu, 1024, uncapped);
    EXPECT_GT(capped_ms, 3.0 * uncapped_ms);
}

TEST_F(OpCostFixture, SequentialPrefillSuperlinearInPromptLength)
{
    // Attention is quadratic in prompt length, so doubling the prompt more
    // than doubles prefill latency.
    ExecPolicy policy;
    const auto& cpu = soc_.Processor(Unit::kCpu);
    const double t512 = SequentialPrefillMs(qwen_, cpu, 512, policy);
    const double t1024 = SequentialPrefillMs(qwen_, cpu, 1024, policy);
    // Linears are linear in M; only the (CPU-cheap) attention is quadratic,
    // so the growth sits just above 2x and well below the 4x all-attention
    // bound.
    EXPECT_GT(t1024, 1.95 * t512);
    EXPECT_LT(t1024, 4.0 * t512);
}

TEST_F(OpCostFixture, DecodeTokenIsBandwidthBoundOnCpu)
{
    // Table 5: Qwen1.5-1.8B decodes at ~80 ms/token on the CPU backend —
    // weight streaming (1.2 GB INT8 / 22 GB/s ~ 55 ms) plus overheads.
    ExecPolicy policy;
    const auto& cpu = soc_.Processor(Unit::kCpu);
    const double ms = DecodeTokenMs(qwen_, cpu, 1024, policy);
    EXPECT_GT(ms, 50.0);
    EXPECT_LT(ms, 130.0);
}

TEST_F(OpCostFixture, DecodeSlowerWithLongerContext)
{
    ExecPolicy policy;
    const auto& cpu = soc_.Processor(Unit::kCpu);
    EXPECT_GT(DecodeTokenMs(qwen_, cpu, 4096, policy),
              DecodeTokenMs(qwen_, cpu, 128, policy));
}

TEST_F(OpCostFixture, DecodeMsAccumulatesTokens)
{
    ExecPolicy policy;
    const auto& cpu = soc_.Processor(Unit::kCpu);
    const double one = DecodeMs(qwen_, cpu, 512, 1, policy);
    const double ten = DecodeMs(qwen_, cpu, 512, 10, policy);
    EXPECT_NEAR(ten / one, 10.0, 0.5);
}

TEST_F(OpCostFixture, GpuDecodeFasterThanCpuDecode)
{
    // Figure 18's mechanism: the GPU streams weights faster (30 GB/s).
    ExecPolicy policy;
    const double cpu_ms =
        DecodeTokenMs(qwen_, soc_.Processor(Unit::kCpu), 512, policy);
    const double gpu_ms =
        DecodeTokenMs(qwen_, soc_.Processor(Unit::kGpu), 512, policy);
    EXPECT_LT(gpu_ms, cpu_ms);
}

TEST_F(OpCostFixture, ActivationBytesScaleWithRowsAndWidth)
{
    EXPECT_GT(ActivationBytes(qwen_, 512), ActivationBytes(qwen_, 256));
    EXPECT_GT(ActivationBytes(Llama2_7B(), 256),
              ActivationBytes(qwen_, 256));
}

TEST_F(OpCostFixture, KvCacheBytesMatchFormula)
{
    const int64_t kv_dim =
        static_cast<int64_t>(qwen_.num_kv_heads) * qwen_.head_dim;
    EXPECT_EQ(KvCacheBytes(qwen_, 100),
              4 * 2 * 100 * kv_dim * qwen_.num_layers);
}

TEST_F(OpCostFixture, MqaShrinksKvCache)
{
    // Gemma's MQA (1 KV head) stores far less than Qwen's MHA per token,
    // despite similar hidden size.
    EXPECT_LT(KvCacheBytes(Gemma2B(), 1024),
              KvCacheBytes(qwen_, 1024) / 4);
}

TEST_F(OpCostFixture, PerGroupCostsMoreThanPerTensorEverywhere)
{
    ExecPolicy per_tensor, per_group;
    per_group.linear_format = ExecFormat::kInt8PerGroup;
    for (Unit unit : {Unit::kCpu, Unit::kNpu}) {
        const auto& proc = soc_.Processor(unit);
        EXPECT_GE(BlockLinearsMs(qwen_, proc, 256, per_group),
                  BlockLinearsMs(qwen_, proc, 256, per_tensor))
            << UnitName(unit);
    }
}

}  // namespace
}  // namespace llmnpu
