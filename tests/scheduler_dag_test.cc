/**
 * @file
 * Structural invariants of BuildPrefillDag (§3.4) across randomized
 * chunk/layer grids: acyclicity, the Equation 2 (cross-chunk attention) and
 * Equation 3 (intra-chunk pipeline) dependencies, shadow-task gating, and
 * the strict-chunk-order DAG being a strict superset of the relaxed DAG.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "src/core/scheduler.h"
#include "src/sim/timeline.h"
#include "src/util/format.h"
#include "src/util/rng.h"
#include "tests/support/chunk_timings.h"
#include "tests/support/golden.h"
#include "tests/support/timeline_asserts.h"

namespace llmnpu {
namespace {

/** A randomized timing grid: random durations, random shadow coverage. */
std::vector<std::vector<StageTiming>>
RandomTimings(uint64_t seed, int num_chunks, int num_layers)
{
    Rng rng(seed);
    std::vector<std::vector<StageTiming>> timings(
        static_cast<size_t>(num_chunks));
    for (auto& chunk : timings) {
        chunk.resize(static_cast<size_t>(num_layers) * kStagesPerLayer);
        for (int l = 0; l < num_layers; ++l) {
            for (int s = 0; s < kStagesPerLayer; ++s) {
                const auto stage = static_cast<StageKind>(s);
                StageTiming t;
                t.unit = StageOnNpu(stage) ? Unit::kNpu : Unit::kCpu;
                t.duration_ms = rng.Uniform(0.1, 4.0);
                if (StageOnNpu(stage) && rng.Bernoulli(0.5)) {
                    t.shadow_ms = rng.Uniform(0.05, 1.0);
                }
                chunk[static_cast<size_t>(l * kStagesPerLayer + s)] = t;
            }
        }
    }
    return timings;
}

/**
 * Independent reconstruction of the expected DAG structure: task ids in
 * creation order and the producer sets per (chunk, stage) — stage task plus
 * its shadow task when the timing grid requests one.
 */
struct ExpectedDag {
    // producer task ids per [chunk][stage]
    std::vector<std::vector<std::vector<int>>> producers;
    std::set<std::pair<int, int>> edges;  // (consumer, dep)
    int num_tasks = 0;
};

ExpectedDag
BuildExpected(const std::vector<std::vector<StageTiming>>& timings,
              int num_layers, bool strict_chunk_order)
{
    const int num_chunks = static_cast<int>(timings.size());
    const int stages = num_layers * kStagesPerLayer;
    ExpectedDag expected;
    expected.producers.assign(
        static_cast<size_t>(num_chunks),
        std::vector<std::vector<int>>(static_cast<size_t>(stages)));

    int next_id = 0;
    for (int c = 0; c < num_chunks; ++c) {
        for (int s = 0; s < stages; ++s) {
            const auto stage = static_cast<StageKind>(s % kStagesPerLayer);
            std::vector<int> deps;
            // Equation 3: the previous stage of the same chunk.
            if (s > 0) {
                for (int id : expected.producers[static_cast<size_t>(c)]
                                                [static_cast<size_t>(s - 1)]) {
                    deps.push_back(id);
                }
            }
            // Equation 2: attention additionally needs every earlier
            // chunk's K/V producer for this layer.
            if (StageIsDynamic(stage) && s > 0) {
                for (int prev = 0; prev < c; ++prev) {
                    for (int id :
                         expected.producers[static_cast<size_t>(prev)]
                                           [static_cast<size_t>(s - 1)]) {
                        deps.push_back(id);
                    }
                }
            }
            // Naive overlap: chunks strictly follow the prompt order.
            if (strict_chunk_order && c > 0 && s == 0) {
                for (int id : expected.producers[static_cast<size_t>(c - 1)]
                                                [static_cast<size_t>(
                                                    stages - 1)]) {
                    deps.push_back(id);
                }
            }

            const int stage_id = next_id++;
            for (int dep : deps) expected.edges.emplace(stage_id, dep);
            auto& producers = expected.producers[static_cast<size_t>(c)]
                                                [static_cast<size_t>(s)];
            producers.push_back(stage_id);
            if (timings[static_cast<size_t>(c)][static_cast<size_t>(s)]
                    .shadow_ms > 0.0) {
                const int shadow_id = next_id++;
                for (int dep : deps) expected.edges.emplace(shadow_id, dep);
                producers.push_back(shadow_id);
            }
        }
    }
    expected.num_tasks = next_id;
    return expected;
}

class DagGridTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, int>>
{};

TEST_P(DagGridTest, AcyclicWithExactEq2Eq3EdgeSet)
{
    const auto [seed, num_chunks, num_layers] = GetParam();
    const auto timings = RandomTimings(seed, num_chunks, num_layers);
    const auto tasks = BuildPrefillDag(timings, num_layers);

    EXPECT_TRUE(DagIsAcyclic(tasks));

    // The edge set is exactly the union of Equation 2, Equation 3 and
    // shadow-gating edges — nothing missing, nothing extra.
    const ExpectedDag expected = BuildExpected(timings, num_layers, false);
    ASSERT_EQ(static_cast<int>(tasks.size()), expected.num_tasks);
    EXPECT_EQ(DagEdges(tasks), expected.edges);
}

TEST_P(DagGridTest, AttentionDependsOnEveryEarlierChunksKv)
{
    // Equation 2 spelled out: attention of chunk c waits for the QKV
    // producers (stage + shadow) of chunks 0..c of the same layer.
    const auto [seed, num_chunks, num_layers] = GetParam();
    const auto timings = RandomTimings(seed, num_chunks, num_layers);
    const auto tasks = BuildPrefillDag(timings, num_layers);
    const ExpectedDag expected = BuildExpected(timings, num_layers, false);
    const auto edges = DagEdges(tasks);

    for (int c = 0; c < num_chunks; ++c) {
        for (int l = 0; l < num_layers; ++l) {
            const int s = l * kStagesPerLayer +
                          static_cast<int>(StageKind::kAttention);
            ASSERT_GT(s, 0);
            const int attn_id = expected.producers[static_cast<size_t>(c)]
                                                  [static_cast<size_t>(s)]
                                    .front();
            for (int prev = 0; prev <= c; ++prev) {
                for (int dep : expected.producers[static_cast<size_t>(prev)]
                                                 [static_cast<size_t>(s - 1)]) {
                    EXPECT_TRUE(edges.count({attn_id, dep}))
                        << "attention c" << c << ".l" << l
                        << " missing dep on chunk " << prev;
                }
            }
        }
    }
}

TEST_P(DagGridTest, StrictChunkOrderIsStrictEdgeSuperset)
{
    const auto [seed, num_chunks, num_layers] = GetParam();
    const auto timings = RandomTimings(seed, num_chunks, num_layers);
    const auto relaxed = BuildPrefillDag(timings, num_layers, false);
    const auto strict = BuildPrefillDag(timings, num_layers, true);

    // Same tasks (ids, units, durations) — only edges differ.
    ASSERT_EQ(relaxed.size(), strict.size());
    for (size_t i = 0; i < relaxed.size(); ++i) {
        EXPECT_EQ(relaxed[i].label, strict[i].label);
        EXPECT_EQ(relaxed[i].unit, strict[i].unit);
        EXPECT_EQ(relaxed[i].duration_ms, strict[i].duration_ms);
    }

    const auto relaxed_edges = DagEdges(relaxed);
    const auto strict_edges = DagEdges(strict);
    EXPECT_TRUE(std::includes(strict_edges.begin(), strict_edges.end(),
                              relaxed_edges.begin(), relaxed_edges.end()));
    // The extra edges are exactly the chunk-serialization constraints:
    // chunk c's first stage (and its shadow) on chunk c-1's last producers.
    std::set<std::pair<int, int>> extra;
    std::set_difference(strict_edges.begin(), strict_edges.end(),
                        relaxed_edges.begin(), relaxed_edges.end(),
                        std::inserter(extra, extra.begin()));
    const ExpectedDag strict_expected =
        BuildExpected(timings, num_layers, true);
    const ExpectedDag relaxed_expected =
        BuildExpected(timings, num_layers, false);
    std::set<std::pair<int, int>> expected_extra;
    std::set_difference(strict_expected.edges.begin(),
                        strict_expected.edges.end(),
                        relaxed_expected.edges.begin(),
                        relaxed_expected.edges.end(),
                        std::inserter(expected_extra,
                                      expected_extra.begin()));
    EXPECT_EQ(extra, expected_extra);
    if (num_chunks > 1) {
        EXPECT_FALSE(extra.empty())
            << "strict order must add edges when there is more than one "
           "chunk";
    }

    // Both DAGs schedule validly under both pickers.
    for (const TaskPicker& picker : {FifoPicker(), OooPicker()}) {
        EXPECT_TRUE(ScheduleIsValid(relaxed, RunTimeline(relaxed, picker)));
        EXPECT_TRUE(ScheduleIsValid(strict, RunTimeline(strict, picker)));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, DagGridTest,
    ::testing::Combine(::testing::Values(101u, 202u, 303u),
                       ::testing::Values(1, 2, 4, 7),
                       ::testing::Values(1, 3)));

TEST(DagShapeTest, ShadowTasksSitNextToTheirStageAndShareDeps)
{
    const auto timings = MakeSyntheticChunkTimings(2, 2, 1.0, 0.5, 0.25);
    const auto tasks = BuildPrefillDag(timings, 2);
    for (size_t i = 0; i + 1 < tasks.size(); ++i) {
        if (tasks[i + 1].label == tasks[i].label + ".shadow") {
            EXPECT_EQ(tasks[i + 1].deps, tasks[i].deps) << tasks[i].label;
            EXPECT_EQ(tasks[i + 1].chunk, tasks[i].chunk);
            EXPECT_EQ(tasks[i + 1].stage, tasks[i].stage);
            EXPECT_NE(tasks[i + 1].unit, Unit::kNpu) << tasks[i].label;
        }
    }
}

TEST(DagGoldenTest, TwoChunkOneLayerStructureIsStable)
{
    // Full structural dump of a small shadowed DAG; regenerating requires
    // LLMNPU_UPDATE_GOLDEN=1, which makes accidental scheduler-semantics
    // changes visible in review as a golden diff.
    const auto timings = MakeSyntheticChunkTimings(2, 1, 2.0, 1.0, 0.5);
    const auto tasks = BuildPrefillDag(timings, 1);
    std::string dump;
    for (size_t i = 0; i < tasks.size(); ++i) {
        dump += StrFormat("%02zu %-16s %-4s %4.1fms deps=[", i,
                          tasks[i].label.c_str(),
                          UnitName(tasks[i].unit).c_str(),
                          tasks[i].duration_ms);
        for (size_t d = 0; d < tasks[i].deps.size(); ++d) {
            dump += StrFormat("%s%d", d == 0 ? "" : ",", tasks[i].deps[d]);
        }
        dump += "]\n";
    }
    EXPECT_TRUE(MatchesGolden("prefill_dag_2x1.txt", dump));
}

}  // namespace
}  // namespace llmnpu
