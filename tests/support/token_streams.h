/**
 * @file
 * Shared teacher-forced token-stream helpers for the batched and
 * decode-npu suites: both must feed identical per-sequence streams so
 * their batched-vs-sequential scripts exercise the same inputs.
 */
#ifndef LLMNPU_TESTS_SUPPORT_TOKEN_STREAMS_H
#define LLMNPU_TESTS_SUPPORT_TOKEN_STREAMS_H

#include <vector>

#include "src/tensor/tensor.h"

namespace llmnpu {

/** Deterministic per-sequence token stream (teacher-forced). */
inline int
TestTokenAt(int seq, int index, int vocab)
{
    return ((seq + 1) * 131 + index * 37 + 11) % vocab;
}

/** Appends every row of `t` (f32) to `dst`. */
inline void
AppendTensorRows(std::vector<float>& dst, const Tensor& t)
{
    const float* p = t.Data<float>();
    dst.insert(dst.end(), p, p + t.NumElements());
}

}  // namespace llmnpu

#endif  // LLMNPU_TESTS_SUPPORT_TOKEN_STREAMS_H
