#include "tests/support/timeline_asserts.h"

#include <array>
#include <cstddef>

namespace llmnpu {
namespace {

constexpr double kEpsMs = 1e-9;

const char*
Label(const std::vector<SimTask>& tasks, size_t id)
{
    return tasks[id].label.empty() ? "<unnamed>" : tasks[id].label.c_str();
}

}  // namespace

std::set<std::pair<int, int>>
DagEdges(const std::vector<SimTask>& tasks)
{
    std::set<std::pair<int, int>> edges;
    for (size_t i = 0; i < tasks.size(); ++i) {
        for (int dep : tasks[i].deps) {
            edges.emplace(static_cast<int>(i), dep);
        }
    }
    return edges;
}

::testing::AssertionResult
DagIsAcyclic(const std::vector<SimTask>& tasks)
{
    // Dependencies must reference earlier-declared tasks for the id-ordered
    // walk below to be a topological order; BuildPrefillDag guarantees this
    // and it implies acyclicity, so check it directly for a crisp message.
    for (size_t i = 0; i < tasks.size(); ++i) {
        for (int dep : tasks[i].deps) {
            if (dep < 0 || static_cast<size_t>(dep) >= tasks.size()) {
                return ::testing::AssertionFailure()
                       << "task " << Label(tasks, i) << " (id " << i
                       << ") has out-of-range dep " << dep;
            }
            if (static_cast<size_t>(dep) >= i) {
                return ::testing::AssertionFailure()
                       << "task " << Label(tasks, i) << " (id " << i
                       << ") depends on itself or a later task (id " << dep
                       << " " << Label(tasks, static_cast<size_t>(dep))
                       << "): no topological order by id";
            }
        }
    }
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
ScheduleRespectsDeps(const std::vector<SimTask>& tasks,
                     const TimelineResult& result)
{
    for (size_t i = 0; i < tasks.size(); ++i) {
        for (int dep : tasks[i].deps) {
            const auto& producer = result.records[static_cast<size_t>(dep)];
            const auto& consumer = result.records[i];
            if (producer.end_ms > consumer.start_ms + kEpsMs) {
                return ::testing::AssertionFailure()
                       << Label(tasks, i) << " started at "
                       << consumer.start_ms << " ms before its dependency "
                       << Label(tasks, static_cast<size_t>(dep))
                       << " finished at " << producer.end_ms << " ms";
            }
        }
    }
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
NoIntraUnitOverlap(const std::vector<SimTask>& tasks,
                   const TimelineResult& result)
{
    for (size_t a = 0; a < tasks.size(); ++a) {
        for (size_t b = a + 1; b < tasks.size(); ++b) {
            if (tasks[a].unit != tasks[b].unit) continue;
            const auto& ra = result.records[a];
            const auto& rb = result.records[b];
            if (!(ra.end_ms <= rb.start_ms + kEpsMs ||
                  rb.end_ms <= ra.start_ms + kEpsMs)) {
                return ::testing::AssertionFailure()
                       << Label(tasks, a) << " [" << ra.start_ms << ", "
                       << ra.end_ms << "] overlaps " << Label(tasks, b)
                       << " [" << rb.start_ms << ", " << rb.end_ms
                       << "] on " << UnitName(tasks[a].unit);
            }
        }
    }
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
BusyTimeConserved(const std::vector<SimTask>& tasks,
                  const TimelineResult& result)
{
    std::array<double, kNumUnits> expected{};
    for (const auto& task : tasks) {
        expected[static_cast<size_t>(task.unit)] += task.duration_ms;
    }
    for (int u = 0; u < kNumUnits; ++u) {
        const double busy = result.busy_ms[static_cast<size_t>(u)];
        const double want = expected[static_cast<size_t>(u)];
        if (busy < want - kEpsMs || busy > want + kEpsMs) {
            return ::testing::AssertionFailure()
                   << UnitName(static_cast<Unit>(u)) << " busy time " << busy
                   << " ms != sum of task durations " << want << " ms";
        }
    }
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
ScheduleIsValid(const std::vector<SimTask>& tasks,
                const TimelineResult& result)
{
    if (auto deps = ScheduleRespectsDeps(tasks, result); !deps) return deps;
    if (auto overlap = NoIntraUnitOverlap(tasks, result); !overlap) {
        return overlap;
    }
    return BusyTimeConserved(tasks, result);
}

}  // namespace llmnpu
