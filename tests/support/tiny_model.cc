#include "tests/support/tiny_model.h"

namespace llmnpu {

CorpusOptions
TinyCalibCorpusOptions(const ModelConfig& config)
{
    CorpusOptions options;
    options.vocab_size = config.vocab_size;
    options.num_sequences = 6;
    options.min_len = 24;
    options.max_len = 48;
    return options;
}

CorpusOptions
TinyEvalCorpusOptions(const ModelConfig& config)
{
    CorpusOptions options = TinyCalibCorpusOptions(config);
    options.seed = 0xfeed;
    options.num_sequences = 10;
    return options;
}

TinyModelContext::TinyModelContext()
    : config(TinyTestConfig()),
      weights(GenerateSyntheticWeights(config)),
      model(weights),
      calib_corpus(MakeCorpus(TinyCalibCorpusOptions(config))),
      calib(CalibrationData::Collect(model, calib_corpus)),
      eval_corpus(MakeCorpus(TinyEvalCorpusOptions(config))),
      profile(OutlierProfile::Collect(model, calib, calib_corpus))
{}

const TinyModelContext&
SharedTinyModel()
{
    static const TinyModelContext* context = new TinyModelContext();
    return *context;
}

}  // namespace llmnpu
