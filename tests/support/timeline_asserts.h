/**
 * @file
 * Assertion helpers for task DAGs and timeline schedules.
 *
 * The scheduler invariants (dependencies respected, Equation 4's
 * one-task-per-unit rule, busy-time conservation, acyclicity) were
 * re-implemented inline in several suites; these helpers centralize them as
 * gtest AssertionResults so failures carry the offending task labels.
 */
#ifndef LLMNPU_TESTS_SUPPORT_TIMELINE_ASSERTS_H
#define LLMNPU_TESTS_SUPPORT_TIMELINE_ASSERTS_H

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "src/sim/timeline.h"

namespace llmnpu {

/** All (consumer, dependency) edges of a task DAG. */
std::set<std::pair<int, int>> DagEdges(const std::vector<SimTask>& tasks);

/** Passes when the DAG has no dependency cycle (topological order exists)
 *  and every dependency id is a valid earlier-declared task. */
::testing::AssertionResult DagIsAcyclic(const std::vector<SimTask>& tasks);

/** Passes when every dependency finishes before its consumer starts. */
::testing::AssertionResult ScheduleRespectsDeps(
    const std::vector<SimTask>& tasks, const TimelineResult& result);

/** Passes when no two tasks overlap on the same unit (Equation 4). */
::testing::AssertionResult NoIntraUnitOverlap(
    const std::vector<SimTask>& tasks, const TimelineResult& result);

/** Passes when per-unit busy time equals the sum of task durations —
 *  nothing dropped, nothing preempted, nothing run twice. */
::testing::AssertionResult BusyTimeConserved(
    const std::vector<SimTask>& tasks, const TimelineResult& result);

/** Runs all schedule checks above against one result. */
::testing::AssertionResult ScheduleIsValid(const std::vector<SimTask>& tasks,
                                           const TimelineResult& result);

}  // namespace llmnpu

#endif  // LLMNPU_TESTS_SUPPORT_TIMELINE_ASSERTS_H
