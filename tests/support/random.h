/**
 * @file
 * Random test-data generators (previously copy-pasted per suite).
 */
#ifndef LLMNPU_TESTS_SUPPORT_RANDOM_H
#define LLMNPU_TESTS_SUPPORT_RANDOM_H

#include <utility>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace llmnpu {

/** An f32 tensor with i.i.d. Normal(0, scale) entries. */
inline Tensor
RandomTensor(Rng& rng, std::vector<int64_t> shape, double scale = 1.0)
{
    Tensor t(std::move(shape), DType::kF32);
    float* p = t.Data<float>();
    for (int64_t i = 0; i < t.NumElements(); ++i) {
        p[i] = static_cast<float>(rng.Normal(0.0, scale));
    }
    return t;
}

}  // namespace llmnpu

#endif  // LLMNPU_TESTS_SUPPORT_RANDOM_H
