/**
 * @file
 * Tolerance and golden-file utilities.
 *
 * Golden files live in tests/golden/ (LLMNPU_GOLDEN_DIR is injected by the
 * build). Run a test binary with LLMNPU_UPDATE_GOLDEN=1 to regenerate the
 * expectations instead of failing on mismatch.
 */
#ifndef LLMNPU_TESTS_SUPPORT_GOLDEN_H
#define LLMNPU_TESTS_SUPPORT_GOLDEN_H

#include <gtest/gtest.h>

#include <string>

namespace llmnpu {

/** |actual - expected| / max(|expected|, floor). */
double RelErr(double actual, double expected, double floor = 1e-12);

/** Passes when `actual` is within `rel_tol` relative error of `expected`. */
::testing::AssertionResult NearRel(double actual, double expected,
                                   double rel_tol);

/** Absolute path of a golden file by name (e.g. "prefill_dag_2x1.txt"). */
std::string GoldenPath(const std::string& name);

/**
 * Compares `actual` against the named golden file.
 *
 * With LLMNPU_UPDATE_GOLDEN set in the environment, rewrites the golden
 * file and passes; otherwise a mismatch fails with a unified preview of
 * the first differing line.
 */
::testing::AssertionResult MatchesGolden(const std::string& name,
                                         const std::string& actual);

}  // namespace llmnpu

#endif  // LLMNPU_TESTS_SUPPORT_GOLDEN_H
