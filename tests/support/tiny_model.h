/**
 * @file
 * Shared tiny-model fixture for the test suites.
 *
 * Several suites (quant, core, model, workloads) need the same expensive
 * setup: the TinyTestConfig model with synthetic outlier-bearing weights, a
 * calibration corpus, calibration statistics, an evaluation corpus, and the
 * offline outlier profile. Building it takes seconds, so it is constructed
 * once per process and shared read-only; tests create their own executors
 * and KV caches on top.
 */
#ifndef LLMNPU_TESTS_SUPPORT_TINY_MODEL_H
#define LLMNPU_TESTS_SUPPORT_TINY_MODEL_H

#include <gtest/gtest.h>

#include <vector>

#include "src/core/outlier_profile.h"
#include "src/model/transformer.h"
#include "src/model/weights.h"
#include "src/quant/calibration.h"
#include "src/sim/soc.h"
#include "src/workloads/corpus.h"

namespace llmnpu {

/** Everything derived from the tiny test model, built once per process. */
struct TinyModelContext {
    ModelConfig config;
    ModelWeights weights;
    Transformer model;  ///< references `weights`; context is immovable
    std::vector<std::vector<int>> calib_corpus;
    CalibrationData calib;
    std::vector<std::vector<int>> eval_corpus;
    OutlierProfile profile;

    TinyModelContext();
    TinyModelContext(const TinyModelContext&) = delete;
    TinyModelContext& operator=(const TinyModelContext&) = delete;
};

/** Corpus options used for the shared calibration corpus (6 x 24..48). */
CorpusOptions TinyCalibCorpusOptions(const ModelConfig& config);

/** Corpus options used for the shared evaluation corpus (10 x 24..48). */
CorpusOptions TinyEvalCorpusOptions(const ModelConfig& config);

/** The process-wide shared context (lazily built on first use). */
const TinyModelContext& SharedTinyModel();

/** Base fixture exposing the shared context as `tiny_`. */
class TinyModelTest : public ::testing::Test
{
  protected:
    const TinyModelContext& tiny_ = SharedTinyModel();
};

/** Base fixture for suites running engines on the paper's primary device. */
class PaperDeviceTest : public ::testing::Test
{
  protected:
    SocSpec soc_ = SocSpec::RedmiK70Pro();
    ModelConfig qwen_ = Qwen15_1_8B();
};

}  // namespace llmnpu

#endif  // LLMNPU_TESTS_SUPPORT_TINY_MODEL_H
