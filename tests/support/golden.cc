#include "tests/support/golden.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace llmnpu {

double
RelErr(double actual, double expected, double floor)
{
    return std::abs(actual - expected) /
           std::max(std::abs(expected), floor);
}

::testing::AssertionResult
NearRel(double actual, double expected, double rel_tol)
{
    const double err = RelErr(actual, expected);
    if (err <= rel_tol) return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << actual << " differs from " << expected << " by "
           << err * 100.0 << "% (tolerance " << rel_tol * 100.0 << "%)";
}

std::string
GoldenPath(const std::string& name)
{
    return std::string(LLMNPU_GOLDEN_DIR) + "/" + name;
}

::testing::AssertionResult
MatchesGolden(const std::string& name, const std::string& actual)
{
    const std::string path = GoldenPath(name);
    if (std::getenv("LLMNPU_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::trunc);
        if (!out) {
            return ::testing::AssertionFailure()
                   << "cannot write golden file " << path;
        }
        out << actual;
        return ::testing::AssertionSuccess();
    }

    std::ifstream in(path);
    if (!in) {
        return ::testing::AssertionFailure()
               << "missing golden file " << path
               << " (run with LLMNPU_UPDATE_GOLDEN=1 to create it)";
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string expected = buffer.str();
    if (expected == actual) return ::testing::AssertionSuccess();

    // Report the first differing line for a readable failure.
    std::istringstream want(expected), got(actual);
    std::string want_line, got_line;
    int line = 1;
    while (true) {
        const bool want_ok = static_cast<bool>(std::getline(want, want_line));
        const bool got_ok = static_cast<bool>(std::getline(got, got_line));
        if (!want_ok && !got_ok) break;
        if (!want_ok || !got_ok || want_line != got_line) {
            return ::testing::AssertionFailure()
                   << "golden mismatch in " << name << " at line " << line
                   << "\n  expected: "
                   << (want_ok ? want_line : std::string("<eof>"))
                   << "\n  actual:   "
                   << (got_ok ? got_line : std::string("<eof>"))
                   << "\n(set LLMNPU_UPDATE_GOLDEN=1 to regenerate)";
        }
        ++line;
    }
    return ::testing::AssertionFailure()
           << "golden mismatch in " << name << " (whitespace-only diff)";
}

}  // namespace llmnpu
