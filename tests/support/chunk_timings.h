/**
 * @file
 * Synthetic per-stage timing grids for scheduler tests: every NPU stage
 * costs `npu_ms`, every float stage `cpu_ms`, with an optional overlapped
 * shadow task per NPU stage (§3.3).
 */
#ifndef LLMNPU_TESTS_SUPPORT_CHUNK_TIMINGS_H
#define LLMNPU_TESTS_SUPPORT_CHUNK_TIMINGS_H

#include <vector>

#include "src/core/scheduler.h"

namespace llmnpu {

inline std::vector<std::vector<StageTiming>>
MakeSyntheticChunkTimings(int num_chunks, int num_layers, double npu_ms,
                          double cpu_ms, double shadow_ms = 0.0)
{
    std::vector<std::vector<StageTiming>> timings(
        static_cast<size_t>(num_chunks));
    for (auto& chunk : timings) {
        chunk.resize(static_cast<size_t>(num_layers) * kStagesPerLayer);
        for (int l = 0; l < num_layers; ++l) {
            for (int s = 0; s < kStagesPerLayer; ++s) {
                const auto stage = static_cast<StageKind>(s);
                StageTiming t;
                t.unit = StageOnNpu(stage) ? Unit::kNpu : Unit::kCpu;
                t.duration_ms = StageOnNpu(stage) ? npu_ms : cpu_ms;
                if (StageOnNpu(stage)) t.shadow_ms = shadow_ms;
                chunk[static_cast<size_t>(l * kStagesPerLayer + s)] = t;
            }
        }
    }
    return timings;
}

}  // namespace llmnpu

#endif  // LLMNPU_TESTS_SUPPORT_CHUNK_TIMINGS_H
