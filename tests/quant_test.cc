/**
 * @file
 * Tests for the baseline quantization algorithms: calibration statistics,
 * per-algorithm numerics, and the Table 6 accuracy ordering on a model with
 * injected activation outliers.
 */
#include <gtest/gtest.h>

#include "src/model/transformer.h"
#include "src/quant/baselines.h"
#include "src/quant/calibration.h"
#include "src/workloads/accuracy.h"
#include "src/workloads/corpus.h"
#include "tests/support/tiny_model.h"

namespace llmnpu {
namespace {

/** Shared fixture: a tiny outlier-bearing model plus calibration data. */
class QuantFixture : public TinyModelTest
{
  protected:
    double
    Agreement(LinearExecutor& executor)
    {
        return EvaluateAgreement(*model_, executor, *eval_corpus_)
            .top1_agreement;
    }

    const ModelConfig* config_ = &tiny_.config;
    const ModelWeights* weights_ = &tiny_.weights;
    const Transformer* model_ = &tiny_.model;
    const CalibrationData* calib_ = &tiny_.calib;
    const std::vector<std::vector<int>>* eval_corpus_ = &tiny_.eval_corpus;
};

TEST_F(QuantFixture, CalibrationSeesEveryLinear)
{
    for (int l = 0; l < config_->num_layers; ++l) {
        for (const auto& spec : config_->LayerLinears()) {
            const auto& stats = calib_->Stats(l, spec.kind);
            EXPECT_GT(stats.rows_seen, 0) << LinearKindName(spec.kind);
            EXPECT_EQ(stats.channel_absmax.size(),
                      static_cast<size_t>(spec.k));
            EXPECT_GT(stats.tensor_absmax, 0.0f);
        }
    }
}

TEST_F(QuantFixture, CalibrationDetectsInjectedHotChannels)
{
    // The hot channels must dominate the qkv-input absmax profile.
    const auto& stats = calib_->Stats(0, LinearKind::kWq);
    const float q90 = stats.ChannelAbsmaxQuantile(0.90);
    int detected = 0;
    for (int hot : weights_->hot_channels) {
        if (stats.channel_absmax[static_cast<size_t>(hot)] > q90) ++detected;
    }
    EXPECT_GE(detected, static_cast<int>(weights_->hot_channels.size()) - 1);
}

TEST_F(QuantFixture, ChannelQuantileMonotone)
{
    const auto& stats = calib_->Stats(1, LinearKind::kFfnUp);
    EXPECT_LE(stats.ChannelAbsmaxQuantile(0.5),
              stats.ChannelAbsmaxQuantile(0.9));
    EXPECT_LE(stats.ChannelAbsmaxQuantile(0.9),
              stats.ChannelAbsmaxQuantile(1.0));
    EXPECT_NEAR(stats.ChannelAbsmaxQuantile(1.0), stats.tensor_absmax,
                stats.tensor_absmax * 0.25 + 1e-3);
}

TEST_F(QuantFixture, Fp32ReferenceAgreesWithItself)
{
    Fp32LinearExecutor fp32(*weights_);
    EXPECT_DOUBLE_EQ(Agreement(fp32), 1.0);
}

TEST_F(QuantFixture, PerGroupAccurateUnderOutliers)
{
    KQuantExecutor kquant(*weights_, 32);
    EXPECT_GE(Agreement(kquant), 0.8);
}

TEST_F(QuantFixture, AwqAccurate)
{
    AwqExecutor awq(*weights_, *calib_);
    EXPECT_GE(Agreement(awq), 0.8);
}

TEST_F(QuantFixture, LlmInt8Accurate)
{
    LlmInt8Executor int8(*weights_, *calib_);
    EXPECT_GE(Agreement(int8), 0.8);
}

TEST_F(QuantFixture, LlmInt8FindsOutlierColumns)
{
    LlmInt8Executor int8(*weights_, *calib_);
    // qkv input: the injected hot channels should be escalated to fp16.
    EXPECT_GE(int8.NumOutlierChannels(0, LinearKind::kWq), 1u);
    // And the split must stay sparse.
    EXPECT_LE(int8.NumOutlierChannels(0, LinearKind::kWq),
              static_cast<size_t>(config_->hidden_size / 4));
}

TEST_F(QuantFixture, NaivePerTensorDegradesUnderOutliers)
{
    // The §3.3 motivation: plain per-tensor activation quantization is
    // wrecked by outliers (they inflate the scale and crush normal values).
    PerTensorExecutor naive(*weights_);
    KQuantExecutor kquant(*weights_, 32);
    EXPECT_LE(Agreement(naive), Agreement(kquant));
}

TEST_F(QuantFixture, SmoothQuantWorstOfTheAccurateFamily)
{
    // Table 6: SmoothQuant (static per-tensor) trails K-Quant/LLM.Int8().
    SmoothQuantExecutor smooth(*weights_, *calib_);
    LlmInt8Executor int8(*weights_, *calib_);
    EXPECT_LE(Agreement(smooth), Agreement(int8) + 1e-9);
}

TEST_F(QuantFixture, ExecutorOutputShapes)
{
    Tensor x = Tensor::Zeros({3, config_->hidden_size});
    x.At(0, 0) = 1.0f;
    PerTensorExecutor naive(*weights_);
    KQuantExecutor kquant(*weights_, 32);
    SmoothQuantExecutor smooth(*weights_, *calib_);
    LlmInt8Executor int8(*weights_, *calib_);
    AwqExecutor awq(*weights_, *calib_);
    for (LinearExecutor* executor :
         std::initializer_list<LinearExecutor*>{&naive, &kquant, &smooth,
                                                &int8, &awq}) {
        Tensor y = executor->Forward(0, LinearKind::kFfnUp, x);
        EXPECT_EQ(y.Rows(), 3) << executor->Name();
        EXPECT_EQ(y.Cols(), config_->ffn_hidden) << executor->Name();
    }
}

TEST_F(QuantFixture, ExecutorNames)
{
    PerTensorExecutor naive(*weights_);
    EXPECT_EQ(naive.Name(), "PerTensor-W8A8");
    KQuantExecutor kquant(*weights_, 32);
    EXPECT_EQ(kquant.Name(), "K-Quant");
    SmoothQuantExecutor smooth(*weights_, *calib_);
    EXPECT_EQ(smooth.Name(), "SmoothQuant");
    LlmInt8Executor int8(*weights_, *calib_);
    EXPECT_EQ(int8.Name(), "LLM.Int8()");
    AwqExecutor awq(*weights_, *calib_);
    EXPECT_EQ(awq.Name(), "AWQ");
}

TEST_F(QuantFixture, KQuantGroupSizeRespected)
{
    KQuantExecutor kquant(*weights_, 16);
    EXPECT_EQ(kquant.group_size(), 16);
}

}  // namespace
}  // namespace llmnpu
