/**
 * @file
 * Predictor + control-plane suite (label `predict`): the learned latency
 * model (fit recovery, monotone predictions, serialization round-trip,
 * training-set extraction from bench JSON and traces), the pluggable
 * policy interfaces' conformance contracts (determinism, no admission of
 * whole-demand KV misfits, registry instantiation), the calibrated and
 * fitted CPU/NPU decode crossover, legacy equivalence of explicit default
 * policies, and bitwise tiny-model replay of a dynamically placed
 * schedule with mid-run flips.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "src/core/llmnpu_engine.h"
#include "src/core/shadow_executor.h"
#include "src/model/decode_backend.h"
#include "src/predict/latency_model.h"
#include "src/predict/step_cost.h"
#include "src/predict/training_data.h"
#include "src/serving/policy.h"
#include "src/serving/replay.h"
#include "src/serving/simulator.h"
#include "tests/support/tiny_model.h"

namespace llmnpu {
namespace {

using predict::Features;
using predict::LatencyModel;
using predict::OpClass;
using predict::OpSample;

// ----------------------------------------------------------- model fitting

/** Samples of a known non-negative linear law over the step-feature grid. */
std::vector<OpSample>
StepLawSamples(OpClass op, double c0, double c1, double c2, double c3)
{
    std::vector<OpSample> samples;
    for (int batch : {1, 2, 4, 8, 16, 32}) {
        for (int64_t ctx : {128, 256, 512, 1024}) {
            OpSample s;
            s.op = op;
            s.features = predict::StepFeatures(batch, ctx);
            s.measured_ms = c0 * s.features[0] + c1 * s.features[1] +
                            c2 * s.features[2] + c3 * s.features[3];
            samples.push_back(s);
        }
    }
    return samples;
}

TEST(LatencyModelTest, FitRecoversLinearLaw)
{
    const std::vector<OpSample> samples =
        StepLawSamples(OpClass::kDecodeStepCpu, 12.0, 3.5, 0.8, 0.05);
    LatencyModel model;
    model.Fit(samples);
    ASSERT_TRUE(model.Fitted(OpClass::kDecodeStepCpu));
    EXPECT_EQ(model.SampleCount(OpClass::kDecodeStepCpu),
              static_cast<int>(samples.size()));
    for (const OpSample& s : samples) {
        const double predicted =
            model.PredictMs(OpClass::kDecodeStepCpu, s.features);
        EXPECT_NEAR(predicted, s.measured_ms, 1e-6 + 1e-4 * s.measured_ms);
    }
    // Classes with no samples stay unfitted.
    EXPECT_FALSE(model.Fitted(OpClass::kMatMulNpu));
}

TEST(LatencyModelTest, FitIsDeterministic)
{
    const std::vector<OpSample> samples =
        StepLawSamples(OpClass::kDecodeStepNpu, 90.0, 2.0, 1.5, 0.1);
    LatencyModel a;
    LatencyModel b;
    a.Fit(samples);
    b.Fit(samples);
    EXPECT_EQ(a.Serialize(), b.Serialize());
}

TEST(LatencyModelTest, MatMulPredictionsAreMonotone)
{
    // Non-negative coefficients over features nondecreasing in every size
    // dimension: predicted cost never drops when m, k or n grows.
    std::vector<OpSample> samples;
    for (int64_t m : {1, 8, 64}) {
        for (int64_t k : {256, 1024}) {
            for (int64_t n : {256, 1024}) {
                OpSample s;
                s.op = OpClass::kMatMulCpu;
                s.features = predict::MatMulFeatures(m, k, n);
                s.measured_ms = 0.01 + 2.0 * static_cast<double>(m * k * n) /
                                           40.0e6;  // ~40 GFLOP/s surface
                samples.push_back(s);
            }
        }
    }
    LatencyModel model;
    model.Fit(samples);
    ASSERT_TRUE(model.Fitted(OpClass::kMatMulCpu));

    const std::vector<int64_t> sizes = {1, 4, 16, 64, 256, 1024};
    auto predict = [&](int64_t m, int64_t k, int64_t n) {
        return model.PredictMs(OpClass::kMatMulCpu,
                               predict::MatMulFeatures(m, k, n));
    };
    for (size_t i = 0; i + 1 < sizes.size(); ++i) {
        EXPECT_LE(predict(sizes[i], 512, 512), predict(sizes[i + 1], 512, 512));
        EXPECT_LE(predict(8, sizes[i], 512), predict(8, sizes[i + 1], 512));
        EXPECT_LE(predict(8, 512, sizes[i]), predict(8, 512, sizes[i + 1]));
        EXPECT_GE(predict(sizes[i], 512, 512), 0.0);
    }
}

TEST(LatencyModelTest, SerializeParseRoundTripsBitwise)
{
    LatencyModel model;
    std::vector<OpSample> samples =
        StepLawSamples(OpClass::kDecodeStepCpu, 12.0, 3.5, 0.8, 0.05);
    const std::vector<OpSample> npu =
        StepLawSamples(OpClass::kDecodeStepNpu, 90.0, 2.0, 1.5, 0.1);
    samples.insert(samples.end(), npu.begin(), npu.end());
    model.Fit(samples);

    const std::string text = model.Serialize();
    LatencyModel reloaded;
    std::string error;
    ASSERT_TRUE(LatencyModel::Parse(text, &reloaded, &error)) << error;
    EXPECT_EQ(reloaded.Serialize(), text);  // bitwise round-trip
    for (const OpSample& s : samples) {
        EXPECT_EQ(model.PredictMs(s.op, s.features),
                  reloaded.PredictMs(s.op, s.features));
    }
    EXPECT_FALSE(reloaded.Fitted(OpClass::kHandoff));
}

TEST(LatencyModelTest, ParseRejectsMalformed)
{
    LatencyModel out;
    std::string error;
    EXPECT_FALSE(LatencyModel::Parse("not a model", &out, &error));
    EXPECT_FALSE(error.empty());
    error.clear();
    EXPECT_FALSE(LatencyModel::Parse(
        "llmnpu-latency-model-v1\nbogus_class 1 1 2 3 4\nend\n", &out,
        &error));
    EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------ training extraction

TEST(TrainingDataTest, ExtractsKernelAndDecodeStepRows)
{
    const std::string json = R"({
      "benches": [
        {"name": "bench_kernels", "metrics": [
          {"kernel": "matmul_f32", "variant": "tiled_packed",
           "m": 8, "k": 512, "n": 512, "threads": 1, "gflops": 40.0},
          {"kernel": "matmul_f32", "variant": "tiled_packed",
           "m": 8, "k": 512, "n": 512, "threads": 4, "gflops": 120.0},
          {"kernel": "matmul_w8a8_per_tensor", "variant": "tiled_packed",
           "m": 8, "k": 512, "n": 512, "threads": 1, "gflops": 80.0},
          {"kernel": "paged_attention", "variant": "fused",
           "m": 4, "k": 256, "n": 64, "threads": 1, "gflops": 10.0},
          {"kernel": "softmax", "variant": "scalar",
           "m": 8, "k": 512, "n": 1, "threads": 1, "gflops": 1.0}
        ]},
        {"name": "bench_serving", "metrics": [
          {"mode": "decode_step", "batch": 8, "ctx": 512,
           "cpu_tpot_ms": 18.49, "npu_tpot_ms": 22.14},
          {"mode": "policy_sweep", "goodput_rps": 0.4}
        ]}
      ]})";
    std::vector<OpSample> samples;
    std::string error;
    predict::ExtractionStats stats;
    ASSERT_TRUE(predict::SamplesFromBenchResults(json, &samples, &error,
                                                 &stats))
        << error;
    // matmul_cpu + matmul_npu + attention + decode cpu/npu; the threaded
    // row and the unknown kernel are skipped, the policy_sweep row is not
    // a decode_step row at all.
    ASSERT_EQ(samples.size(), 5u);
    EXPECT_EQ(stats.samples, 5);
    EXPECT_EQ(stats.skipped, 2);
    EXPECT_EQ(samples[0].op, OpClass::kMatMulCpu);
    // ms recovered from GFLOP/s: 2*m*k*n / (gflops * 1e6).
    EXPECT_NEAR(samples[0].measured_ms, 2.0 * 8 * 512 * 512 / 40.0e6, 1e-9);
    EXPECT_EQ(samples[1].op, OpClass::kMatMulNpu);
    EXPECT_EQ(samples[2].op, OpClass::kAttention);
    EXPECT_EQ(samples[3].op, OpClass::kDecodeStepCpu);
    EXPECT_NEAR(samples[3].measured_ms, 18.49 * 8, 1e-9);
    EXPECT_EQ(samples[4].op, OpClass::kDecodeStepNpu);

    std::vector<OpSample> bad;
    EXPECT_FALSE(predict::SamplesFromBenchResults("{]", &bad, &error));
}

TEST(TrainingDataTest, ExtractsTraceSpans)
{
    const std::string trace = R"({"traceEvents": [
      {"ph": "X", "name": "handoff.npu_linear", "cat": "handoff",
       "pid": 1, "tid": 1, "ts": 0, "dur": 1500, "args": {"rows": 8}},
      {"ph": "X", "name": "replay.prefill", "cat": "replay",
       "pid": 1, "tid": 1, "ts": 2000, "dur": 4000, "args": {"rows": 16}},
      {"ph": "X", "name": "handoff.npu_run", "cat": "handoff",
       "pid": 1, "tid": 1, "ts": 7000, "dur": 900, "args": {}},
      {"ph": "X", "name": "replay.decode", "cat": "replay",
       "pid": 1, "tid": 1, "ts": 9000, "dur": 800, "args": {"batch": 4}}
    ]})";
    std::vector<OpSample> samples;
    std::string error;
    predict::ExtractionStats stats;
    ASSERT_TRUE(predict::SamplesFromTrace(trace, &samples, &error, &stats))
        << error;
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_EQ(stats.skipped, 1);  // the rows-less handoff span
    EXPECT_EQ(samples[0].op, OpClass::kHandoff);
    EXPECT_NEAR(samples[0].measured_ms, 1.5, 1e-12);  // 1500 us
    EXPECT_EQ(samples[1].op, OpClass::kChunkDispatch);
    EXPECT_NEAR(samples[1].measured_ms, 4.0, 1e-12);
}

// -------------------------------------------------------- policy contracts

class PolicyConformanceTest : public PaperDeviceTest
{
  protected:
    LlmNpuEngine engine_;
    ServingCostModel costs_{engine_, qwen_, soc_};
};

TEST_F(PolicyConformanceTest, CalibratedCrossoverMatchesPaperShape)
{
    // The §2.1 deployment shape the control plane must reproduce: CPU
    // decode is cheaper per token at small batch, the NPU wins at depth.
    const int64_t ctx = 512;
    EXPECT_LT(costs_.StepTokenMs(DecodePlacement::kCpuFloat, ctx, 1),
              costs_.StepTokenMs(DecodePlacement::kNpuQuant, ctx, 1));
    EXPECT_GT(costs_.StepTokenMs(DecodePlacement::kCpuFloat, ctx, 32),
              costs_.StepTokenMs(DecodePlacement::kNpuQuant, ctx, 32));
}

TEST_F(PolicyConformanceTest, RegisteredPlacementPoliciesAreDeterministic)
{
    const InferenceRequest request{96, 160};
    const ServingCostProfile profile = engine_.ServingCosts(qwen_, soc_,
                                                            request);
    RequestRecord record;
    record.request.prompt_len = request.prompt_len;
    record.request.output_len = request.output_len;
    for (const PlacementPolicySpec& spec : PlacementPolicyRegistry()) {
        const std::shared_ptr<PlacementPolicy> policy =
            MakePlacementPolicy(spec.name, spec.dynamic ? &costs_ : nullptr);
        ASSERT_NE(policy, nullptr) << spec.name;
        EXPECT_EQ(policy->Name(), spec.name);
        EXPECT_EQ(policy->IsDynamic(), spec.dynamic) << spec.name;
        for (int batch : {1, 8, 32}) {
            PlacementQuery query;
            query.record = &record;
            query.profile = &profile;
            query.context_len = 256;
            query.batch_depth = batch;
            // Pure function of the query: ask twice, same answer.
            EXPECT_EQ(policy->Place(query), policy->Place(query))
                << spec.name << " batch " << batch;
        }
    }
}

TEST_F(PolicyConformanceTest, PredictedPlacementReproducesCrossover)
{
    const PredictedPlacement policy(costs_);
    const InferenceRequest request{96, 160};
    const ServingCostProfile profile = engine_.ServingCosts(qwen_, soc_,
                                                            request);
    RequestRecord record;
    record.request.prompt_len = request.prompt_len;
    record.request.output_len = request.output_len;
    PlacementQuery query;
    query.record = &record;
    query.profile = &profile;
    query.context_len = 512;

    query.batch_depth = 1;
    EXPECT_EQ(policy.Place(query), DecodePlacement::kCpuFloat);
    query.batch_depth = 32;
    EXPECT_EQ(policy.Place(query), DecodePlacement::kNpuQuant);

    // Degradation backoff: a throttled NPU (thermal service scale) makes
    // the CPU the predicted-cheaper side even at depth.
    query.signals.npu_service_scale = 10.0;
    EXPECT_EQ(policy.Place(query), DecodePlacement::kCpuFloat);
    query.signals.npu_service_scale = 1.0;

    // Circuit-breaker failover is permanent: the policy never places a
    // failed-over member back on the NPU.
    record.failed_over = true;
    EXPECT_EQ(policy.Place(query), DecodePlacement::kCpuFloat);
}

TEST(PolicyTest, NoAdmissionPolicyAdmitsWholeDemandMisfit)
{
    // A request whose whole-demand KV footprint exceeds the live budget
    // can never hold its pages simultaneously; every conforming policy
    // must turn it away.
    for (const std::string& name : AdmissionPolicyRegistry()) {
        const std::shared_ptr<AdmissionPolicy> policy =
            MakeAdmissionPolicy(name);
        ASSERT_NE(policy, nullptr) << name;
        EXPECT_EQ(policy->Name(), name);
        AdmissionQuery query;
        query.kv_demand_pages = 100;
        query.kv_live_budget = 50;
        EXPECT_FALSE(policy->Admit(query)) << name;
        query.kv_demand_pages = 40;
        EXPECT_TRUE(policy->Admit(query)) << name;  // fits, no SLO set
    }
}

TEST(PolicyTest, PredictedSloAdmissionGatesOnPredictedFinish)
{
    const PredictedSloAdmission policy;
    ServingRequest request;
    request.arrival_ms = 0.0;
    request.deadline_ms = 1000.0;
    AdmissionQuery query;
    query.request = &request;
    query.isolated_e2e_ms = 400.0;
    query.signals.now_ms = 100.0;

    // Feasible with an idle machine.
    EXPECT_TRUE(policy.Admit(query));
    // An in-flight prefill backlog pushes the predicted finish past the
    // deadline.
    query.queued_prefill_ms = 600.0;
    EXPECT_FALSE(policy.Admit(query));
    query.queued_prefill_ms = 0.0;
    // Decode congestion alone does too: each resident stream adds one
    // batch-marginal share to every step the arrival would join.
    query.decode_batch_marginal = 0.15;
    query.signals.decode_pool_depth = 30;
    EXPECT_FALSE(policy.Admit(query));
    query.signals.decode_pool_depth = 0;
    // No SLO: nothing to be infeasible against.
    request.deadline_ms = 1e300;
    query.queued_prefill_ms = 1e6;
    EXPECT_TRUE(policy.Admit(query));
}

TEST(PolicyTest, FittedOracleDrivesSamePlacementAsCalibrated)
{
    // Fit the decode-step classes from the calibrated oracle's own grid,
    // then check the learned model reproduces the crossover the dynamic
    // policy decides with — the offline/online halves agree.
    const SocSpec soc = SocSpec::RedmiK70Pro();
    const ModelConfig qwen = Qwen15_1_8B();
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen, soc);
    std::vector<OpSample> samples;
    for (int batch : {1, 2, 4, 8, 16, 32}) {
        for (int64_t ctx : {128, 256, 512, 1024}) {
            OpSample cpu;
            cpu.op = OpClass::kDecodeStepCpu;
            cpu.features = predict::StepFeatures(batch, ctx);
            cpu.measured_ms =
                costs.StepMs(DecodePlacement::kCpuFloat, ctx, batch);
            samples.push_back(cpu);
            OpSample npu;
            npu.op = OpClass::kDecodeStepNpu;
            npu.features = predict::StepFeatures(batch, ctx);
            npu.measured_ms =
                costs.StepMs(DecodePlacement::kNpuQuant, ctx, batch);
            samples.push_back(npu);
        }
    }
    LatencyModel model;
    model.Fit(samples);
    const predict::PredictedStepCosts fitted(model);
    for (int64_t ctx : {256, 512}) {
        EXPECT_LT(fitted.StepTokenMs(DecodePlacement::kCpuFloat, ctx, 1),
                  fitted.StepTokenMs(DecodePlacement::kNpuQuant, ctx, 1));
        EXPECT_GT(fitted.StepTokenMs(DecodePlacement::kCpuFloat, ctx, 32),
                  fitted.StepTokenMs(DecodePlacement::kNpuQuant, ctx, 32));
    }
}

// ------------------------------------------------- simulator + replay

/** The policy-sweep workload shape: decode-heavy, so the decode pool
 *  actually deepens past the CPU/NPU crossover under load. */
std::vector<DatasetProfile>
DecodeHeavyMix()
{
    DatasetProfile profile;
    profile.name = "decode-heavy";
    profile.application = "policy sweep";
    profile.prompt_min = 48;
    profile.prompt_max = 96;
    profile.output_min = 160;
    profile.output_max = 256;
    return {profile};
}

class SimulatorPolicyTest : public PaperDeviceTest
{
  protected:
    LlmNpuEngine engine_;
    ServingCostModel costs_{engine_, qwen_, soc_};

    ServingResult RunWith(const ServingOptions& options)
    {
        return ServingSimulator(costs_, DecodeHeavyMix(), options).Run();
    }
};

TEST_F(SimulatorPolicyTest, ExplicitDefaultPoliciesAreBitIdentical)
{
    ServingOptions base;
    base.policy = SchedPolicy::kSloEdf;
    base.num_requests = 16;
    base.rate_rps = 0.25;
    base.seed = 11;
    const ServingResult legacy = RunWith(base);

    ServingOptions explicit_options = base;
    explicit_options.queue_policy = MakeQueuePolicy(SchedPolicy::kSloEdf);
    explicit_options.placement_policy = std::make_shared<StaticPlacement>();
    explicit_options.admission_policy =
        std::make_shared<ThresholdAdmission>();
    const ServingResult with_policies = RunWith(explicit_options);

    EXPECT_EQ(legacy.makespan_ms, with_policies.makespan_ms);
    EXPECT_EQ(legacy.npu_busy_ms, with_policies.npu_busy_ms);
    EXPECT_EQ(legacy.decode_busy_ms, with_policies.decode_busy_ms);
    EXPECT_EQ(legacy.preemptions, with_policies.preemptions);
    ASSERT_EQ(legacy.records.size(), with_policies.records.size());
    for (size_t i = 0; i < legacy.records.size(); ++i) {
        EXPECT_EQ(legacy.records[i].finish_ms,
                  with_policies.records[i].finish_ms)
            << "request " << i;
        EXPECT_EQ(legacy.records[i].first_token_ms,
                  with_policies.records[i].first_token_ms)
            << "request " << i;
    }
    ASSERT_EQ(legacy.replay_steps.size(), with_policies.replay_steps.size());
    for (size_t i = 0; i < legacy.replay_steps.size(); ++i) {
        EXPECT_EQ(legacy.replay_steps[i].is_prefill,
                  with_policies.replay_steps[i].is_prefill);
        EXPECT_EQ(legacy.replay_steps[i].request_ids,
                  with_policies.replay_steps[i].request_ids);
        EXPECT_EQ(legacy.replay_steps[i].placements,
                  with_policies.replay_steps[i].placements);
    }
}

class DynamicPlacementReplayTest : public TinyModelTest
{
  protected:
    SocSpec soc_ = SocSpec::RedmiK70Pro();
    ModelConfig qwen_ = Qwen15_1_8B();
    LlmNpuEngine engine_;
    ServingCostModel costs_{engine_, qwen_, soc_};
};

TEST_F(DynamicPlacementReplayTest, DynamicScheduleFlipsAndReplaysBitwise)
{
    // Overload the decode-heavy mix so the pool crosses the CPU/NPU
    // crossover mid-run: the dynamic policy must flip members at step
    // boundaries, record every executed placement, and the recorded
    // schedule must still replay bitwise on real tensors.
    ServingOptions options;
    options.policy = SchedPolicy::kFcfs;
    options.num_requests = 24;
    options.rate_rps = 0.5;
    options.seed = 13;
    options.max_decode_batch = 32;
    options.placement_policy = std::make_shared<PredictedPlacement>(costs_);
    const ServingResult result =
        ServingSimulator(costs_, DecodeHeavyMix(), options).Run();

    std::set<DecodePlacement> seen;
    int flips = 0;
    std::map<int, DecodePlacement> last;
    for (const ReplayStep& step : result.replay_steps) {
        if (step.is_prefill) continue;
        // Dynamic runs record the executed placement of every member.
        ASSERT_EQ(step.placements.size(), step.request_ids.size());
        for (size_t mi = 0; mi < step.placements.size(); ++mi) {
            seen.insert(step.placements[mi]);
            const int id = step.request_ids[mi];
            const auto it = last.find(id);
            if (it != last.end() && it->second != step.placements[mi]) {
                ++flips;
            }
            last[id] = step.placements[mi];
        }
    }
    // Both placements executed and at least one member switched mid-run.
    EXPECT_EQ(seen.size(), 2u);
    EXPECT_GT(flips, 0);

    Fp32LinearExecutor fp32(tiny_.weights);
    NpuShadowExecutor shadow(tiny_.weights, tiny_.profile, 0.5);
    DecodeBackend backend(fp32, shadow);
    ReplayOptions replay_options;
    replay_options.max_output_tokens = 48;
    ReplayPlacement placement;  // per-step recorded placements win
    placement.prefill = DecodePlacement::kNpuQuant;
    replay_options.placement = placement;
    const ReplayOutcome outcome =
        ReplayServingTrace(result.replay_steps, result.records, tiny_.model,
                           backend, replay_options);
    EXPECT_TRUE(outcome.bitwise_match) << outcome.first_mismatch;
    EXPECT_GT(outcome.decode_steps, 0);
    // Both sides of the handoff actually executed under the flips.
    EXPECT_GT(backend.stats().npu_linear_calls, 0);
}

}  // namespace
}  // namespace llmnpu
