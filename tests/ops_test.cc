/**
 * @file
 * Tests for the float operators (Figure 5's "orange" ops) — including the
 * load-bearing property of §3.2: chunked causal attention with a KV cache is
 * exactly equivalent to full-prompt attention.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/ops.h"
#include "src/util/rng.h"
#include "tests/support/random.h"

namespace llmnpu {
namespace {

TEST(SoftmaxTest, RowsSumToOne)
{
    Rng rng(1);
    Tensor x = RandomTensor(rng, {5, 9});
    SoftmaxRowsInPlace(x);
    for (int64_t r = 0; r < 5; ++r) {
        double sum = 0.0;
        for (int64_t c = 0; c < 9; ++c) {
            EXPECT_GT(x.At(r, c), 0.0f);
            sum += x.At(r, c);
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(SoftmaxTest, StableUnderLargeInputs)
{
    Tensor x = Tensor::FromValues({1, 3}, {1000.0f, 1000.0f, 999.0f});
    SoftmaxRowsInPlace(x);
    EXPECT_FALSE(std::isnan(x.At(0, 0)));
    EXPECT_NEAR(x.At(0, 0), x.At(0, 1), 1e-6);
    EXPECT_LT(x.At(0, 2), x.At(0, 0));
}

TEST(LayerNormTest, ProducesZeroMeanUnitVar)
{
    Rng rng(2);
    Tensor x = RandomTensor(rng, {4, 64});
    Tensor gamma = Tensor::Full({1, 64}, 1.0f);
    Tensor beta = Tensor::Zeros({1, 64});
    Tensor y = LayerNorm(x, gamma, beta);
    for (int64_t r = 0; r < 4; ++r) {
        double mean = 0.0, var = 0.0;
        for (int64_t c = 0; c < 64; ++c) mean += y.At(r, c);
        mean /= 64.0;
        for (int64_t c = 0; c < 64; ++c) {
            var += (y.At(r, c) - mean) * (y.At(r, c) - mean);
        }
        var /= 64.0;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST(LayerNormTest, GammaBetaApplied)
{
    Tensor x = Tensor::FromValues({1, 2}, {-1.0f, 1.0f});
    Tensor gamma = Tensor::FromValues({1, 2}, {2.0f, 2.0f});
    Tensor beta = Tensor::FromValues({1, 2}, {5.0f, 5.0f});
    Tensor y = LayerNorm(x, gamma, beta);
    EXPECT_NEAR(y.At(0, 0), 5.0f - 2.0f, 1e-3);
    EXPECT_NEAR(y.At(0, 1), 5.0f + 2.0f, 1e-3);
}

TEST(RmsNormTest, UnitRmsAfterNorm)
{
    Rng rng(3);
    Tensor x = RandomTensor(rng, {3, 128});
    Tensor gamma = Tensor::Full({1, 128}, 1.0f);
    Tensor y = RMSNorm(x, gamma);
    for (int64_t r = 0; r < 3; ++r) {
        double ms = 0.0;
        for (int64_t c = 0; c < 128; ++c) ms += y.At(r, c) * y.At(r, c);
        EXPECT_NEAR(std::sqrt(ms / 128.0), 1.0, 1e-3);
    }
}

TEST(RmsNormTest, AmplifiedGainCreatesChannelOutliers)
{
    // The mechanism the synthetic weights use to inject activation
    // outliers: norms are float, so a large gain survives quantization-free.
    Rng rng(4);
    Tensor x = RandomTensor(rng, {8, 64});
    Tensor gamma = Tensor::Full({1, 64}, 1.0f);
    gamma.Data<float>()[7] = 30.0f;
    Tensor y = RMSNorm(x, gamma);
    double hot = 0.0, cold = 0.0;
    for (int64_t r = 0; r < 8; ++r) {
        hot += std::abs(y.At(r, 7));
        for (int64_t c = 0; c < 64; ++c) {
            if (c != 7) cold += std::abs(y.At(r, c)) / 63.0;
        }
    }
    EXPECT_GT(hot, 10.0 * cold);
}

TEST(ActivationTest, SiluKnownValues)
{
    Tensor x = Tensor::FromValues({1, 3}, {0.0f, 10.0f, -10.0f});
    SiluInPlace(x);
    EXPECT_NEAR(x.At(0, 0), 0.0f, 1e-6);
    EXPECT_NEAR(x.At(0, 1), 10.0f, 1e-3);   // ~identity for large +
    EXPECT_NEAR(x.At(0, 2), 0.0f, 1e-3);    // ~0 for large -
}

TEST(ActivationTest, GeluKnownValues)
{
    Tensor x = Tensor::FromValues({1, 3}, {0.0f, 5.0f, -5.0f});
    GeluInPlace(x);
    EXPECT_NEAR(x.At(0, 0), 0.0f, 1e-6);
    EXPECT_NEAR(x.At(0, 1), 5.0f, 1e-3);
    EXPECT_NEAR(x.At(0, 2), 0.0f, 1e-3);
}

TEST(ElementwiseTest, AddMulAndInPlace)
{
    Tensor a = Tensor::FromValues({1, 2}, {1, 2});
    Tensor b = Tensor::FromValues({1, 2}, {3, 4});
    EXPECT_EQ(Add(a, b).At(0, 1), 6.0f);
    EXPECT_EQ(Mul(a, b).At(0, 1), 8.0f);
    AddInPlace(a, b);
    EXPECT_EQ(a.At(0, 0), 4.0f);
}

TEST(RopeTest, PreservesNorm)
{
    Rng rng(5);
    Tensor q = RandomTensor(rng, {4, 32});  // 2 heads x 16
    double before = 0.0;
    for (int64_t i = 0; i < q.NumElements(); ++i) {
        before += q.Data<float>()[i] * q.Data<float>()[i];
    }
    ApplyRope(q, 2, 16, 3);
    double after = 0.0;
    for (int64_t i = 0; i < q.NumElements(); ++i) {
        after += q.Data<float>()[i] * q.Data<float>()[i];
    }
    EXPECT_NEAR(before, after, before * 1e-5);
}

TEST(RopeTest, PositionZeroIsIdentity)
{
    Rng rng(6);
    Tensor q = RandomTensor(rng, {1, 16});
    Tensor orig = q;
    ApplyRope(q, 1, 16, 0);
    EXPECT_LT(MaxAbsDiff(q, orig), 1e-6);
}

TEST(RopeTest, OffsetMatchesInSequencePosition)
{
    // Row r with offset p must equal row (r+p) of the same content placed
    // at offset 0 — the property chunked prefill relies on.
    Rng rng(7);
    Tensor base = RandomTensor(rng, {6, 16});
    Tensor full = base;
    ApplyRope(full, 1, 16, 0);
    Tensor tail = base.CopyRows(4, 2);
    ApplyRope(tail, 1, 16, 4);
    EXPECT_LT(MaxAbsDiff(tail, full.CopyRows(4, 2)), 1e-5);
}

TEST(AttentionTest, SingleTokenAttendsToItself)
{
    Rng rng(8);
    Tensor q = RandomTensor(rng, {1, 8});
    Tensor k = q;
    Tensor v = RandomTensor(rng, {1, 8});
    Tensor out = CausalAttention(q, k, v, 1, 1, 0);
    EXPECT_LT(MaxAbsDiff(out, v), 1e-5);
}

TEST(AttentionTest, CausalMaskBlocksFuture)
{
    // Token 0 must not see token 1: its output is exactly v[0].
    Rng rng(9);
    Tensor q = RandomTensor(rng, {2, 8});
    Tensor k = RandomTensor(rng, {2, 8});
    Tensor v = RandomTensor(rng, {2, 8});
    Tensor out = CausalAttention(q, k, v, 1, 1, 0);
    EXPECT_LT(MaxAbsDiff(out.CopyRows(0, 1), v.CopyRows(0, 1)), 1e-5);
}

TEST(AttentionTest, GqaSharesKvHeads)
{
    // With 2 q-heads per kv-head, duplicated q-head content yields
    // identical per-head outputs.
    Rng rng(10);
    Tensor q({1, 16}, DType::kF32);
    Tensor head = RandomTensor(rng, {1, 8});
    for (int64_t d = 0; d < 8; ++d) {
        q.At(0, d) = head.At(0, d);
        q.At(0, 8 + d) = head.At(0, d);
    }
    Tensor k = RandomTensor(rng, {1, 8});
    Tensor v = RandomTensor(rng, {1, 8});
    Tensor out = CausalAttention(q, k, v, 2, 1, 0);
    EXPECT_LT(MaxAbsDiff(out.CopyRows(0, 1).Reshape({2, 8}).CopyRows(0, 1),
                         out.CopyRows(0, 1).Reshape({2, 8}).CopyRows(1, 1)),
              1e-5);
}

/** The §3.2 exactness property, parameterized over chunk lengths. */
class ChunkedAttentionTest : public ::testing::TestWithParam<int>
{};

TEST_P(ChunkedAttentionTest, ChunkedEqualsFull)
{
    const int chunk = GetParam();
    const int seq = 12, heads = 2, kv_heads = 1, head_dim = 8;
    Rng rng(42);
    Tensor q = RandomTensor(rng, {seq, heads * head_dim});
    Tensor k = RandomTensor(rng, {seq, kv_heads * head_dim});
    Tensor v = RandomTensor(rng, {seq, kv_heads * head_dim});

    Tensor full = CausalAttention(q, k, v, heads, kv_heads, 0);

    for (int start = 0; start < seq; start += chunk) {
        const int len = std::min(chunk, seq - start);
        Tensor q_chunk = q.CopyRows(start, len);
        // K/V visible so far: positions [0, start+len).
        Tensor k_part = k.CopyRows(0, start + len);
        Tensor v_part = v.CopyRows(0, start + len);
        Tensor out = CausalAttention(q_chunk, k_part, v_part, heads,
                                     kv_heads, start);
        EXPECT_LT(MaxAbsDiff(out, full.CopyRows(start, len)), 1e-4)
            << "chunk=" << chunk << " start=" << start;
    }
}

INSTANTIATE_TEST_SUITE_P(ChunkLens, ChunkedAttentionTest,
                         ::testing::Values(1, 2, 3, 4, 6, 12));

}  // namespace
}  // namespace llmnpu
