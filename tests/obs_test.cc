/**
 * @file
 * Observability plane: tracer ring semantics (wrap, drop accounting,
 * multi-threaded emission), Chrome trace-event export validated by the
 * in-tree JSON reader, the metrics registry under concurrency, the one
 * shared quantile implementation (golden values matching util_test), and
 * the compile-time disabled path.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/obs/histogram.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/trace_reader.h"
#include "src/util/stats.h"
#include "src/util/threadpool.h"

namespace llmnpu {
namespace obs_test {
int EmitThroughDisabledMacros();  // tests/obs_trace_disabled.cc
}

namespace {

using obs::Tracer;

/** Fresh tracer state for one test (each discovered test is its own
 *  process, but be explicit anyway). */
void
FreshTracer(size_t capacity = Tracer::kDefaultCapacity)
{
    Tracer::Global().Disable();
    Tracer::Global().Enable(capacity);
    Tracer::Global().Reset();
}

// ---------------------------------------------------------------- quantiles

// Golden values mirror tests/util_test.cc exactly: Percentile() in
// util/stats.h is a thin alias of obs::SamplePercentile, and this pins
// that the migration kept the math bit-identical.
TEST(SamplePercentileTest, MatchesUtilStatsGoldens)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(obs::SamplePercentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(obs::SamplePercentile(xs, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(obs::SamplePercentile(xs, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(obs::SamplePercentile({0.0, 10.0}, 25.0), 2.5);
    EXPECT_DOUBLE_EQ(obs::SamplePercentile({}, 50.0), 0.0);
    // The util-layer alias routes here.
    EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), obs::SamplePercentile(xs, 50.0));
}

TEST(SamplePercentileTest, UnsortedInputIsSorted)
{
    EXPECT_DOUBLE_EQ(obs::SamplePercentile({5.0, 1.0, 3.0, 2.0, 4.0}, 50.0),
                     3.0);
}

// --------------------------------------------------------------- histogram

TEST(HistogramTest, CountSumMeanMinMax)
{
    obs::Histogram h({1.0, 10.0, 100.0});
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    h.Add(0.5);
    h.Add(5.0);
    h.Add(50.0);
    h.Add(500.0);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 555.5);
    EXPECT_DOUBLE_EQ(h.mean(), 555.5 / 4.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
    EXPECT_DOUBLE_EQ(h.max(), 500.0);
    // One sample per bucket: (-inf,1), [1,10), [10,100), [100,+inf).
    const std::vector<int64_t> buckets = h.BucketCounts();
    ASSERT_EQ(buckets.size(), 4u);
    for (int64_t c : buckets) EXPECT_EQ(c, 1);
}

TEST(HistogramTest, PercentileUsesExactSamples)
{
    obs::Histogram h(obs::DefaultLatencyBucketsMs());
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Add(x);
    EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.Percentile(50.0), 3.0);
    EXPECT_DOUBLE_EQ(h.Percentile(100.0), 5.0);
}

TEST(HistogramTest, ResetClearsEverything)
{
    obs::Histogram h({1.0});
    h.Add(2.0);
    h.Reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
    for (int64_t c : h.BucketCounts()) EXPECT_EQ(c, 0);
}

TEST(HistogramTest, DefaultLatencyBucketsAscend)
{
    const std::vector<double> bounds = obs::DefaultLatencyBucketsMs();
    ASSERT_GT(bounds.size(), 4u);
    for (size_t i = 1; i < bounds.size(); ++i) {
        EXPECT_LT(bounds[i - 1], bounds[i]);
    }
}

// ---------------------------------------------------------------- registry

TEST(MetricsRegistryTest, StableAddressesAndKinds)
{
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    obs::Counter& c1 = reg.GetCounter("obs_test.stable");
    obs::Counter& c2 = reg.GetCounter("obs_test.stable");
    EXPECT_EQ(&c1, &c2);
    obs::Gauge& g1 = reg.GetGauge("obs_test.gauge");
    EXPECT_EQ(&g1, &reg.GetGauge("obs_test.gauge"));
    obs::Histogram& h1 =
        reg.GetHistogram("obs_test.hist", obs::DefaultLatencyBucketsMs());
    EXPECT_EQ(&h1, &reg.GetHistogram("obs_test.hist"));
}

TEST(MetricsRegistryTest, GaugePeakWatermark)
{
    obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge("obs_test.peak");
    g.Reset();
    g.Set(3.0);
    g.Set(7.0);
    g.Set(2.0);
    EXPECT_DOUBLE_EQ(g.value(), 2.0);
    EXPECT_DOUBLE_EQ(g.peak(), 7.0);
    g.ResetPeak();
    EXPECT_DOUBLE_EQ(g.peak(), 2.0);
}

TEST(MetricsRegistryTest, CounterExactUnderParallelFor)
{
    obs::Counter& c =
        obs::MetricsRegistry::Global().GetCounter("obs_test.concurrent");
    c.Reset();
    ScopedNumThreads threads(4);
    const int64_t n = 100000;
    ThreadPool::Global().ParallelFor(n, 1, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) c.Add(1);
    });
    EXPECT_EQ(c.value(), n);
}

TEST(MetricsRegistryTest, DumpJsonParses)
{
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("obs_test.dump_counter").Add(3);
    reg.GetGauge("obs_test.dump_gauge").Set(1.5);
    reg.GetHistogram("obs_test.dump_hist", obs::DefaultLatencyBucketsMs())
        .Add(2.0);
    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::ParseJson(reg.DumpJson(), &doc, &error)) << error;
    ASSERT_EQ(doc.type, obs::JsonValue::Type::kObject);
    EXPECT_DOUBLE_EQ(
        doc.At("counters").At("obs_test.dump_counter").number, 3.0);
    EXPECT_DOUBLE_EQ(
        doc.At("gauges").At("obs_test.dump_gauge").At("value").number, 1.5);
    EXPECT_DOUBLE_EQ(
        doc.At("histograms").At("obs_test.dump_hist").At("count").number,
        1.0);
}

// ------------------------------------------------------------- tracer rings

TEST(TracerTest, OffByDefaultMacrosRecordNothing)
{
    Tracer::Global().Disable();
    Tracer::Global().Reset();
    const uint64_t before = Tracer::Global().TotalRecorded();
    LLMNPU_TRACE_INSTANT("obs_test.noop", "test");
    { LLMNPU_TRACE_SPAN("obs_test.noop_span", "test"); }
    LLMNPU_TRACE_COUNTER("obs_test.noop_counter", 1.0);
    EXPECT_EQ(Tracer::Global().TotalRecorded(), before);
}

TEST(TracerTest, RingWrapKeepsNewestAndCountsDropped)
{
    FreshTracer(/*capacity=*/8);
    for (int i = 0; i < 20; ++i) {
        obs::EmitInstant("obs_test.wrap", "test", /*req=*/i);
    }
    EXPECT_EQ(Tracer::Global().TotalRecorded(), 20u);
    EXPECT_EQ(Tracer::Global().TotalDropped(), 12u);
    EXPECT_EQ(Tracer::Global().TotalStored(), 8u);
    const std::vector<obs::TraceEvent> events =
        Tracer::Global().StoredEvents();
    ASSERT_EQ(events.size(), 8u);
    // Flight recorder: the newest 8 events survive, oldest first.
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].req, static_cast<int32_t>(12 + i));
    }
}

// The remaining tracer tests record through the LLMNPU_TRACE_* macros,
// which are no-ops in a -DLLMNPU_TRACE=OFF build — there the no-op
// contract itself is still covered by OffByDefaultMacrosRecordNothing
// and TraceDisabledTest below.
#if LLMNPU_TRACE_ENABLED

TEST(TracerTest, ScopedSpanRecordsOrderedTimestamps)
{
    FreshTracer();
    {
        LLMNPU_TRACE_SPAN_TILE("obs_test.span", "test", 7, 3, 2, "head",
                               5);
        volatile double sink = 0.0;
        for (int i = 0; i < 1000; ++i) sink += i;
        (void)sink;
    }
    const std::vector<obs::TraceEvent> events =
        Tracer::Global().StoredEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "obs_test.span");
    EXPECT_EQ(events[0].phase, obs::TracePhase::kSpan);
    EXPECT_GE(events[0].t1_ns, events[0].t0_ns);
    EXPECT_EQ(events[0].req, 7);
    EXPECT_EQ(events[0].seq, 3);
    EXPECT_EQ(events[0].layer, 2);
    EXPECT_EQ(events[0].extra, 5);
}

TEST(TracerTest, MultiThreadedEmissionUnderParallelFor)
{
    FreshTracer();
    ScopedNumThreads threads(4);
    const int64_t n = 256;
    ThreadPool::Global().ParallelFor(n, 1, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
            LLMNPU_TRACE_SPAN_TILE("obs_test.tile", "test", -1, -1, -1,
                                   "i", static_cast<int>(i));
        }
    });
    // ParallelFor is synchronous, so the pool is quiescent here and the
    // introspection below is race-free (the TSan CI job runs this test).
    EXPECT_GE(Tracer::Global().TotalRecorded(), static_cast<uint64_t>(n));
    EXPECT_GE(Tracer::Global().NumThreadBuffers(), 1u);
    int tiles = 0;
    for (const obs::TraceEvent& e : Tracer::Global().StoredEvents()) {
        if (std::string(e.name) == "obs_test.tile") ++tiles;
    }
    EXPECT_EQ(tiles, static_cast<int>(n));
}

#endif  // LLMNPU_TRACE_ENABLED

TEST(TracerTest, CurrentWorkerIdStableAndBounded)
{
    EXPECT_EQ(ThreadPool::CurrentWorkerId(), 0);  // caller is not a worker
    ScopedNumThreads threads(4);
    std::vector<int> seen(ThreadPool::kMaxThreads + 1, 0);
    std::mutex mu;
    ThreadPool::Global().ParallelFor(64, 1, [&](int64_t, int64_t) {
        const int id = ThreadPool::CurrentWorkerId();
        std::lock_guard<std::mutex> lock(mu);
        ASSERT_GE(id, 0);
        ASSERT_LE(id, ThreadPool::kMaxThreads);
        seen[static_cast<size_t>(id)] = 1;
    });
    EXPECT_EQ(ThreadPool::CurrentWorkerId(), 0);
}

// ----------------------------------------------------------------- export

// The export tests populate the trace through the macros, so they also
// only exist when tracing is compiled in.
#if LLMNPU_TRACE_ENABLED

TEST(TraceExportTest, SchemaValidatesWithInTreeReader)
{
    FreshTracer();
    {
        LLMNPU_TRACE_SPAN_ID("obs_test.export_span", "test", 11, 2, 1);
    }
    LLMNPU_TRACE_INSTANT("obs_test.export_instant", "test");
    LLMNPU_TRACE_COUNTER("obs_test.export_counter", 4.5);

    obs::SimEvent chunk;
    chunk.name = "req11.chunk0";
    chunk.phase = obs::TracePhase::kSpan;
    chunk.lane = obs::SimLane::kNpu;
    chunk.t0_ms = 1.0;
    chunk.t1_ms = 2.5;
    chunk.req = 11;
    chunk.args_json = "\"chunk\": 0";
    Tracer::Global().RecordSim(chunk);

    obs::SimEvent evict;
    evict.name = "sim.evict";
    evict.t0_ms = 3.0;
    evict.req = 11;
    Tracer::Global().RecordSim(evict);

    const std::string json = Tracer::Global().ChromeTraceJson();
    obs::ReadTrace trace;
    std::string error;
    ASSERT_TRUE(obs::ReadChromeTrace(json, &trace, &error)) << error;

    // Both planes present, with process names.
    EXPECT_EQ(trace.process_names.count(1), 1u);
    EXPECT_EQ(trace.process_names.count(2), 1u);

    const obs::ReadEvent* span = nullptr;
    const obs::ReadEvent* counter = nullptr;
    const obs::ReadEvent* sim_chunk = nullptr;
    const obs::ReadEvent* sim_evict = nullptr;
    for (const obs::ReadEvent& e : trace.events) {
        if (e.name == "obs_test.export_span") span = &e;
        if (e.name == "obs_test.export_counter") counter = &e;
        if (e.name == "req11.chunk0") sim_chunk = &e;
        if (e.name == "sim.evict") sim_evict = &e;
    }
    ASSERT_NE(span, nullptr);
    EXPECT_EQ(span->ph, "X");
    EXPECT_EQ(span->pid, 1);
    EXPECT_DOUBLE_EQ(span->args.at("req").number, 11.0);
    EXPECT_DOUBLE_EQ(span->args.at("seq").number, 2.0);
    EXPECT_DOUBLE_EQ(span->args.at("layer").number, 1.0);

    ASSERT_NE(counter, nullptr);
    EXPECT_EQ(counter->ph, "C");
    EXPECT_DOUBLE_EQ(counter->args.at("value").number, 4.5);

    ASSERT_NE(sim_chunk, nullptr);
    EXPECT_EQ(sim_chunk->ph, "X");
    EXPECT_EQ(sim_chunk->pid, 2);
    EXPECT_EQ(sim_chunk->tid, static_cast<int>(obs::SimLane::kNpu));
    // Virtual ms exported as microsecond ts units (ms * 1000).
    EXPECT_DOUBLE_EQ(sim_chunk->ts_us, 1000.0);
    EXPECT_DOUBLE_EQ(sim_chunk->dur_us, 1500.0);
    EXPECT_DOUBLE_EQ(sim_chunk->args.at("req").number, 11.0);
    EXPECT_DOUBLE_EQ(sim_chunk->args.at("chunk").number, 0.0);

    ASSERT_NE(sim_evict, nullptr);
    EXPECT_EQ(sim_evict->ph, "i");

    // otherData carries tracer totals and a metrics snapshot.
    EXPECT_TRUE(trace.other_data.Has("recorded"));
    EXPECT_TRUE(trace.other_data.Has("dropped"));
    EXPECT_TRUE(trace.other_data.Has("metrics"));
}

TEST(TraceExportTest, ThreadNamesExported)
{
    FreshTracer();
    ScopedNumThreads threads(4);
    // The "main" fallback name goes to the first registered buffer
    // (tid 0); record once before the fan-out so the calling thread
    // claims it regardless of worker scheduling.
    LLMNPU_TRACE_INSTANT("obs_test.named", "test");
    ThreadPool::Global().ParallelFor(64, 1, [&](int64_t, int64_t) {
        LLMNPU_TRACE_INSTANT("obs_test.named", "test");
    });
    obs::ReadTrace trace;
    std::string error;
    ASSERT_TRUE(obs::ReadChromeTrace(Tracer::Global().ChromeTraceJson(),
                                     &trace, &error))
        << error;
    std::set<std::string> names;
    for (const auto& [key, name] : trace.thread_names) {
        if (key.first == 1) names.insert(name);
    }
    // The caller's buffer is named "main"; any pool worker that recorded
    // is named "pool-worker-<id>".
    EXPECT_EQ(names.count("main"), 1u);
    for (const std::string& name : names) {
        EXPECT_TRUE(name == "main" ||
                    name.rfind("pool-worker-", 0) == 0)
            << name;
    }
}

TEST(TraceExportTest, JsonEscapingSurvivesRoundTrip)
{
    FreshTracer();
    LLMNPU_TRACE_INSTANT("obs_test.\"quoted\"\\name", "test");
    obs::ReadTrace trace;
    std::string error;
    ASSERT_TRUE(obs::ReadChromeTrace(Tracer::Global().ChromeTraceJson(),
                                     &trace, &error))
        << error;
    bool found = false;
    for (const obs::ReadEvent& e : trace.events) {
        if (e.name == "obs_test.\"quoted\"\\name") found = true;
    }
    EXPECT_TRUE(found);
}

#endif  // LLMNPU_TRACE_ENABLED

// ------------------------------------------------------------- JSON parser

TEST(JsonParserTest, RejectsMalformedDocuments)
{
    obs::JsonValue doc;
    std::string error;
    EXPECT_FALSE(obs::ParseJson("", &doc, &error));
    EXPECT_FALSE(obs::ParseJson("{", &doc, &error));
    EXPECT_FALSE(obs::ParseJson("{} trailing", &doc, &error));
    EXPECT_FALSE(obs::ParseJson("{\"a\": nul}", &doc, &error));
    EXPECT_FALSE(obs::ParseJson("[1, 2,]", &doc, &error));
    EXPECT_FALSE(obs::ParseJson("\"bad \\q escape\"", &doc, &error));
    EXPECT_FALSE(obs::ParseJson("01", &doc, &error));
}

TEST(JsonParserTest, ParsesNestedStructures)
{
    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::ParseJson(
        "{\"a\": [1, 2.5, true, null, \"x\\n\"], \"b\": {\"c\": -3}}",
        &doc, &error))
        << error;
    EXPECT_EQ(doc.At("a").array.size(), 5u);
    EXPECT_DOUBLE_EQ(doc.At("a").array[1].number, 2.5);
    EXPECT_TRUE(doc.At("a").array[2].boolean);
    EXPECT_EQ(doc.At("a").array[4].str, "x\n");
    EXPECT_DOUBLE_EQ(doc.At("b").At("c").number, -3.0);
}

// -------------------------------------------------------- compile-time gate

TEST(TraceDisabledTest, DisabledTuRecordsNothingAndNeverEvaluatesArgs)
{
    FreshTracer();
    const uint64_t before = Tracer::Global().TotalRecorded();
    // The TU below is compiled with LLMNPU_TRACE_DISABLED=1: even with the
    // runtime flag on, its macros are no-ops and must not evaluate args.
    const int evaluations = llmnpu::obs_test::EmitThroughDisabledMacros();
    EXPECT_EQ(evaluations, 0);
    EXPECT_EQ(Tracer::Global().TotalRecorded(), before);
}

}  // namespace
}  // namespace llmnpu
