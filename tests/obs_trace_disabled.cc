/**
 * @file
 * Compiled with LLMNPU_TRACE_DISABLED=1 (per-source definition in
 * CMakeLists) while the rest of the obs_test binary has tracing compiled
 * in. Proves the disabled macro variants (a) compile warning-clean, (b)
 * never evaluate their arguments, and (c) record nothing even when the
 * runtime flag is on — the compile-time gate wins.
 */
#include "src/obs/trace.h"

#if LLMNPU_TRACE_ENABLED
#error "this translation unit must be built with LLMNPU_TRACE_DISABLED"
#endif

namespace llmnpu {
namespace obs_test {

namespace {

int g_evaluations = 0;

const char*
CountingName()
{
    ++g_evaluations;
    return "disabled.should_not_appear";
}

}  // namespace

/** Invokes every disabled macro variant; returns how many times the
 *  argument expressions were evaluated (must be zero). */
int
EmitThroughDisabledMacros()
{
    g_evaluations = 0;
    LLMNPU_TRACE_SPAN(CountingName(), "test");
    LLMNPU_TRACE_SPAN_ID(CountingName(), "test", 1, 2, 3);
    LLMNPU_TRACE_SPAN_TILE(CountingName(), "test", 1, 2, 3, "extra", 4);
    LLMNPU_TRACE_INSTANT(CountingName(), "test");
    LLMNPU_TRACE_INSTANT_ID(CountingName(), "test", 1, 2, 3);
    LLMNPU_TRACE_COUNTER(CountingName(), 42.0);
    return g_evaluations;
}

}  // namespace obs_test
}  // namespace llmnpu
