/**
 * @file
 * Batched numeric plane tests (CTest label `batched`).
 *
 * The core property: Transformer::ForwardBatch produces bitwise-identical
 * per-sequence hidden states and logits to sequential single-sequence
 * Forward, for every LinearExecutor, across ragged batch shapes — B=1..4,
 * mixed prefill/decode steps, chunked prefill inside a batch. Plus the
 * KvCache layer-lockstep invariant, BatchedKvCache accounting, and the
 * serving→numeric trace replay bridge end-to-end.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/llmnpu_engine.h"
#include "src/core/shadow_executor.h"
#include "src/model/decode_backend.h"
#include "src/quant/baselines.h"
#include "src/serving/replay.h"
#include "src/serving/simulator.h"
#include "src/util/rng.h"
#include "src/util/threadpool.h"
#include "src/workloads/arrivals.h"
#include "tests/support/tiny_model.h"
#include "tests/support/token_streams.h"

namespace llmnpu {
namespace {

// ------------------------------------------------------------ BatchedKvCache

TEST(BatchedKvCacheTest, SlotsAreIndependent)
{
    BatchedKvCache cache(2, 8, 2, PagedKvOptions{/*page_size=*/4});
    ASSERT_EQ(cache.num_sequences(), 2);
    Tensor k = Tensor::Full({3, 8}, 1.0f);
    Tensor v = Tensor::Full({3, 8}, 2.0f);
    cache.Append(0, 0, k, v);
    cache.Append(0, 1, k, v);
    EXPECT_EQ(cache.SeqLen(0), 3);
    EXPECT_EQ(cache.SeqLen(1), 0);
    // 3 positions at page_size 4 is one page: k + v, both layers, 4 rows
    // of kv_dim 8 floats each (page-granular accounting, not row-exact).
    EXPECT_EQ(cache.SizeBytes(), 2 * 2 * 4 * 8 * 4);
    EXPECT_EQ(cache.AddSequence(), 2);
    EXPECT_EQ(cache.num_sequences(), 3);
}

// ----------------------------------------------------- KvCache layer lockstep

TEST(KvCacheLockstepTest, InOrderChunksPass)
{
    KvCache cache(3, 4);
    for (int chunk : {2, 5, 1}) {  // chunk sizes may vary across chunks
        Tensor k = Tensor::Full({chunk, 4}, 1.0f);
        Tensor v = Tensor::Full({chunk, 4}, 2.0f);
        for (int l = 0; l < 3; ++l) cache.Append(l, k, v);
    }
    EXPECT_EQ(cache.SeqLen(), 8);
}

TEST(KvCacheLockstepDeathTest, SecondChunkBeforeOtherLayersPanics)
{
    KvCache cache(2, 4);
    Tensor k = Tensor::Full({3, 4}, 1.0f);
    Tensor v = Tensor::Full({3, 4}, 2.0f);
    cache.Append(0, k, v);  // layer 1 now lags by the in-flight chunk: fine
    EXPECT_DEATH(cache.Append(0, k, v), "CHECK failed");
}

TEST(KvCacheLockstepDeathTest, OversizedLaterChunkPanics)
{
    KvCache cache(2, 4);
    Tensor k3 = Tensor::Full({3, 4}, 1.0f);
    Tensor v3 = Tensor::Full({3, 4}, 2.0f);
    cache.Append(0, k3, v3);
    Tensor k5 = Tensor::Full({5, 4}, 1.0f);
    Tensor v5 = Tensor::Full({5, 4}, 2.0f);
    EXPECT_DEATH(cache.Append(1, k5, v5), "CHECK failed");
}

// ----------------------------------------- batched vs sequential, bitwise

/** One batched step: (sequence, token count) pairs, ragged by design. */
using ScriptStep = std::vector<std::pair<int, int>>;

/**
 * Runs `script` through ForwardBatch, then re-runs every sequence alone
 * with the same per-step token groups through Forward, and asserts the
 * per-sequence hidden states and logits are bitwise identical.
 */
void
RunScriptBitwise(const Transformer& model, LinearExecutor& linears,
                 const std::vector<ScriptStep>& script)
{
    const int vocab = model.config().vocab_size;

    // Batched pass.
    std::map<int, int> slots;                       // seq -> cache slot
    std::map<int, int> cursor;                      // seq -> tokens fed
    std::map<int, std::vector<float>> hidden_rows;  // per seq, batched
    std::map<int, std::vector<float>> logit_rows;
    std::map<int, std::vector<std::vector<int>>> groups;  // per-step tokens
    BatchedKvCache cache = model.MakeBatchedCache();
    for (const ScriptStep& step : script) {
        std::vector<BatchSeq> batch;
        for (const auto& [seq, count] : step) {
            if (!slots.count(seq)) slots[seq] = cache.AddSequence();
            std::vector<int> tokens;
            for (int i = 0; i < count; ++i) {
                tokens.push_back(TestTokenAt(seq, cursor[seq]++, vocab));
            }
            groups[seq].push_back(tokens);
            batch.push_back({slots[seq], std::move(tokens)});
        }
        Tensor hidden = model.ForwardBatch(batch, cache, linears);
        Tensor logits = model.Logits(hidden);
        int64_t row = 0;
        for (size_t i = 0; i < batch.size(); ++i) {
            const int64_t rows =
                static_cast<int64_t>(batch[i].tokens.size());
            const Tensor h = hidden.CopyRows(row, rows);
            const Tensor lg = logits.CopyRows(row, rows);
            auto& hr = hidden_rows[step[i].first];
            auto& lr = logit_rows[step[i].first];
            hr.insert(hr.end(), h.Data<float>(),
                      h.Data<float>() + h.NumElements());
            lr.insert(lr.end(), lg.Data<float>(),
                      lg.Data<float>() + lg.NumElements());
            row += rows;
        }
    }

    // Sequential reference: same token groups, one sequence at a time.
    for (const auto& [seq, seq_groups] : groups) {
        KvCache solo = model.MakeCache();
        std::vector<float> ref_hidden, ref_logits;
        for (const std::vector<int>& tokens : seq_groups) {
            Tensor h = model.Forward(tokens, solo, linears);
            Tensor lg = model.Logits(h);
            ref_hidden.insert(ref_hidden.end(), h.Data<float>(),
                              h.Data<float>() + h.NumElements());
            ref_logits.insert(ref_logits.end(), lg.Data<float>(),
                              lg.Data<float>() + lg.NumElements());
        }
        ASSERT_EQ(ref_hidden.size(), hidden_rows[seq].size()) << "seq " << seq;
        EXPECT_EQ(std::memcmp(ref_hidden.data(), hidden_rows[seq].data(),
                              ref_hidden.size() * sizeof(float)),
                  0)
            << linears.Name() << ": hidden states of seq " << seq
            << " differ between batched and sequential execution";
        ASSERT_EQ(ref_logits.size(), logit_rows[seq].size()) << "seq " << seq;
        EXPECT_EQ(std::memcmp(ref_logits.data(), logit_rows[seq].data(),
                              ref_logits.size() * sizeof(float)),
                  0)
            << linears.Name() << ": logits of seq " << seq
            << " differ between batched and sequential execution";
    }
}

/** The ragged shapes of the acceptance criteria. */
std::vector<std::vector<ScriptStep>>
Scripts()
{
    return {
        // B=1: a single-sequence batch is just Forward.
        {{{0, 5}}, {{0, 1}}, {{0, 1}}},
        // B=2, ragged prefill then batched decode.
        {{{0, 4}, {1, 7}}, {{0, 1}, {1, 1}}, {{0, 1}, {1, 1}}},
        // B=3 with chunked prefill inside the batch: seq 2's prompt arrives
        // as chunks of 3+2 while the others advance.
        {{{0, 5}, {2, 3}},
         {{1, 6}, {2, 2}},
         {{0, 1}, {1, 1}, {2, 1}},
         {{0, 1}, {1, 1}, {2, 1}}},
        // B=4 batched decode (the m=B matmul) after ragged prefills, with a
        // mixed prefill/decode step in the middle (seq 3 prefills while
        // 0..2 decode).
        {{{0, 3}, {1, 1}, {2, 6}},
         {{0, 1}, {1, 1}, {2, 1}, {3, 5}},
         {{0, 1}, {1, 1}, {2, 1}, {3, 1}},
         {{3, 1}, {2, 1}, {1, 1}, {0, 1}}},
    };
}

class BatchedExecutorTest
    : public TinyModelTest,
      public ::testing::WithParamInterface<const char*>
{
  protected:
    std::unique_ptr<LinearExecutor>
    MakeExecutor() const
    {
        const std::string name = GetParam();
        if (name == "fp32") {
            return std::make_unique<Fp32LinearExecutor>(tiny_.weights);
        }
        if (name == "per_tensor") {
            return std::make_unique<PerTensorExecutor>(tiny_.weights);
        }
        if (name == "kquant") {
            return std::make_unique<KQuantExecutor>(tiny_.weights);
        }
        if (name == "awq") {
            return std::make_unique<AwqExecutor>(tiny_.weights, tiny_.calib);
        }
        if (name == "smoothquant") {
            return std::make_unique<SmoothQuantExecutor>(tiny_.weights,
                                                         tiny_.calib);
        }
        if (name == "llmint8") {
            return std::make_unique<LlmInt8Executor>(tiny_.weights,
                                                     tiny_.calib);
        }
        if (name == "shadow") {
            return std::make_unique<NpuShadowExecutor>(
                tiny_.weights, tiny_.profile, /*pruning_rate=*/0.5);
        }
        ADD_FAILURE() << "unknown executor " << name;
        return nullptr;
    }
};

TEST_P(BatchedExecutorTest, BatchedEqualsSequentialBitwise)
{
    auto executor = MakeExecutor();
    ASSERT_NE(executor, nullptr);
    for (const auto& script : Scripts()) {
        RunScriptBitwise(tiny_.model, *executor, script);
    }
}

TEST_P(BatchedExecutorTest, BatchedEqualsSequentialAcrossThreadCounts)
{
    // The stacked matmuls run over the shared ThreadPool; the bitwise
    // contract must hold at any thread count (row partitions change, the
    // per-row accumulation order does not).
    auto executor = MakeExecutor();
    ASSERT_NE(executor, nullptr);
    for (int threads : {1, 4}) {
        ScopedNumThreads scoped(threads);
        RunScriptBitwise(tiny_.model, *executor,
                         {{{0, 4}, {1, 9}, {2, 1}},
                          {{0, 1}, {1, 1}, {2, 1}}});
    }
}

INSTANTIATE_TEST_SUITE_P(AllExecutors, BatchedExecutorTest,
                         ::testing::Values("fp32", "per_tensor", "kquant",
                                           "awq", "smoothquant", "llmint8",
                                           "shadow"),
                         [](const auto& info) {
                             std::string name = info.param;
                             for (char& c : name) {
                                 if (c == '-') c = '_';
                             }
                             return name;
                         });

class BatchedExecutorShapeTest : public TinyModelTest
{};

TEST_F(BatchedExecutorShapeTest, StackedShapeAndCacheGrowth)
{
    Fp32LinearExecutor fp32(tiny_.weights);
    BatchedKvCache cache = tiny_.model.MakeBatchedCache(2);
    Tensor hidden = tiny_.model.ForwardBatch(
        {{0, {1, 2, 3}}, {1, {4, 5}}}, cache, fp32);
    EXPECT_EQ(hidden.Rows(), 5);
    EXPECT_EQ(hidden.Cols(), tiny_.config.hidden_size);
    EXPECT_EQ(cache.SeqLen(0), 3);
    EXPECT_EQ(cache.SeqLen(1), 2);
}

TEST_F(BatchedExecutorShapeTest, DuplicateSequenceInBatchPanics)
{
    Fp32LinearExecutor fp32(tiny_.weights);
    BatchedKvCache cache = tiny_.model.MakeBatchedCache(1);
    EXPECT_DEATH(tiny_.model.ForwardBatch({{0, {1}}, {0, {2}}}, cache, fp32),
                 "CHECK failed");
}

// The shadow executor's runtime stats must advance under batching exactly
// as they would under B sequential calls (the Figure 10 counters feed the
// timing plane).
TEST_F(BatchedExecutorShapeTest, ShadowStatsMatchSequential)
{
    NpuShadowExecutor batched(tiny_.weights, tiny_.profile, 0.5);
    NpuShadowExecutor sequential(tiny_.weights, tiny_.profile, 0.5);
    const std::vector<ScriptStep> script = {{{0, 6}, {1, 3}},
                                            {{0, 1}, {1, 1}}};

    BatchedKvCache cache = tiny_.model.MakeBatchedCache(2);
    std::vector<int> cursor(2, 0);
    std::vector<KvCache> solo;
    solo.push_back(tiny_.model.MakeCache());
    solo.push_back(tiny_.model.MakeCache());
    const int vocab = tiny_.config.vocab_size;
    for (const ScriptStep& step : script) {
        std::vector<BatchSeq> batch;
        std::vector<std::vector<int>> tokens(step.size());
        for (size_t i = 0; i < step.size(); ++i) {
            const auto [seq, count] = step[i];
            for (int t = 0; t < count; ++t) {
                tokens[i].push_back(TestTokenAt(seq, cursor[seq]++ , vocab));
            }
            batch.push_back({seq, tokens[i]});
        }
        tiny_.model.ForwardBatch(batch, cache, batched);
        for (size_t i = 0; i < step.size(); ++i) {
            tiny_.model.Forward(tokens[i], solo[step[i].first], sequential);
        }
    }
    EXPECT_EQ(batched.stats().linear_calls, sequential.stats().linear_calls);
    EXPECT_EQ(batched.stats().shadow_calls, sequential.stats().shadow_calls);
    EXPECT_EQ(batched.stats().extracted_channels,
              sequential.stats().extracted_channels);
    EXPECT_EQ(batched.stats().hot_hits, sequential.stats().hot_hits);
    EXPECT_EQ(batched.stats().cold_misses, sequential.stats().cold_misses);
}

// --------------------------------------------- serving-trace replay, e2e

class TraceReplayTest : public TinyModelTest
{
  protected:
    /** A small served schedule from the real simulator over the paper's
     *  primary device, exported as replay steps. */
    ServingResult
    SimulateTrace(int num_requests)
    {
        LlmNpuEngine engine;
        ServingCostModel costs(engine, Qwen15_1_8B(),
                               SocSpec::RedmiK70Pro());
        ServingOptions options;
        options.policy = SchedPolicy::kFcfs;
        options.num_requests = num_requests;
        options.rate_rps = 100.0;  // overlapping requests => real batches
        options.seed = 7;
        return ServingSimulator(costs, PaperDatasets(), options).Run();
    }
};

TEST_F(TraceReplayTest, ExportedStepsCoverEveryQuantum)
{
    const ServingResult result = SimulateTrace(5);
    ASSERT_EQ(result.replay_steps.size(), result.trace_tasks.size());
    std::vector<int> chunks_seen(result.records.size(), 0);
    std::vector<int> tokens_seen(result.records.size(), 0);
    for (const ReplayStep& step : result.replay_steps) {
        if (step.is_prefill) {
            ASSERT_EQ(step.request_ids.size(), 1u);
            const int id = step.request_ids.front();
            EXPECT_EQ(step.chunk_index, chunks_seen[id]++);
            EXPECT_GT(step.num_chunks, 0);
        } else {
            EXPECT_GE(step.request_ids.size(), 1u);
            for (int id : step.request_ids) ++tokens_seen[id];
        }
    }
    for (size_t id = 0; id < result.records.size(); ++id) {
        EXPECT_EQ(tokens_seen[id], result.records[id].request.output_len)
            << "request " << id;
        EXPECT_GT(chunks_seen[id], 0) << "request " << id;
    }
}

TEST_F(TraceReplayTest, ReplayedTraceIsBitwiseExactForEveryExecutor)
{
    const ServingResult result = SimulateTrace(6);

    Fp32LinearExecutor fp32(tiny_.weights);
    NpuShadowExecutor shadow(tiny_.weights, tiny_.profile, 0.5);
    PerTensorExecutor per_tensor(tiny_.weights);
    LinearExecutor* executors[] = {&fp32, &shadow, &per_tensor};
    ReplayOptions options;
    options.max_output_tokens = 64;  // replay every decode membership
    for (LinearExecutor* linears : executors) {
        const ReplayOutcome outcome =
            ReplayServingTrace(result.replay_steps, result.records,
                               tiny_.model, *linears, options);
        EXPECT_TRUE(outcome.bitwise_match)
            << linears->Name() << ": " << outcome.first_mismatch;
        EXPECT_EQ(outcome.sequences, 6);
        EXPECT_GT(outcome.prefill_steps, 0);
        EXPECT_GT(outcome.decode_steps, 0);
        EXPECT_GT(outcome.max_decode_batch, 1)
            << "trace never batched decode — raise rate_rps so requests "
               "overlap";
        EXPECT_EQ(outcome.truncated_memberships, 0);
    }
}

TEST_F(TraceReplayTest, RandomizedDecodePlacementsReplayBitwise)
{
    // Property: for ANY per-request decode placement assignment (CPU or
    // NPU), replaying the served schedule through the DecodeBackend
    // reproduces each sequence's streams bitwise vs the solo run with the
    // same placement — even when one batched decode step mixes NPU-
    // quantized and CPU-float members and must split into placement runs.
    const ServingResult result = SimulateTrace(6);
    ReplayOptions options;
    options.max_output_tokens = 64;

    for (uint64_t seed : {1u, 2u, 3u, 4u}) {
        Rng rng(seed);
        ReplayPlacement placement;
        placement.prefill = rng.UniformInt(2) == 0
                                ? DecodePlacement::kCpuFloat
                                : DecodePlacement::kNpuQuant;
        for (size_t id = 0; id < result.records.size(); ++id) {
            placement.decode.push_back(rng.UniformInt(2) == 0
                                           ? DecodePlacement::kCpuFloat
                                           : DecodePlacement::kNpuQuant);
        }
        Fp32LinearExecutor fp32(tiny_.weights);
        NpuShadowExecutor shadow(tiny_.weights, tiny_.profile, 0.5);
        DecodeBackend backend(fp32, shadow);
        const ReplayOutcome outcome =
            ReplayServingTrace(result.replay_steps, result.records,
                               tiny_.model, backend, placement, options);
        EXPECT_TRUE(outcome.bitwise_match)
            << "seed " << seed << ": " << outcome.first_mismatch;
        EXPECT_EQ(outcome.sequences, 6) << "seed " << seed;
        EXPECT_GT(outcome.decode_steps, 0) << "seed " << seed;
    }
}

TEST_F(TraceReplayTest, ReplayHonorsOutputCap)
{
    const ServingResult result = SimulateTrace(3);
    Fp32LinearExecutor fp32(tiny_.weights);
    ReplayOptions options;
    options.max_output_tokens = 2;
    const ReplayOutcome outcome = ReplayServingTrace(
        result.replay_steps, result.records, tiny_.model, fp32, options);
    EXPECT_TRUE(outcome.bitwise_match) << outcome.first_mismatch;
    EXPECT_GT(outcome.truncated_memberships, 0);
}

}  // namespace
}  // namespace llmnpu
