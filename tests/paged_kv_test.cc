/**
 * @file
 * Paged KV subsystem tests (CTest label `paged-kv`).
 *
 * Covers the KvPagePool allocator (free-list reuse, bounded exhaustion,
 * refcounted prefix sharing, unbounded-headroom sentinel), the paged
 * BatchedKvCache (page-table reuse after retirement, CanAppend
 * backpressure — including pending copy-on-write clones — retired-slot
 * access, CoW fork-write divergence and randomized refcount accounting),
 * the shared-system-prompt serving scenario (once-counted admission,
 * eviction with a resident prefix, nested fraction marking, bitwise
 * replay through CoW forks), the
 * fused PagedCausalAttention kernel (bitwise equality to the per-sequence
 * reference and 1/2/4-thread determinism), B=64 ragged batched forward vs
 * sequential, the serving layer's KV admission/eviction model (including
 * eviction-then-readmit bitwise replay), and the empty-input guards of the
 * metrics path (Percentile, all-rejected reports, config validation).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <vector>

#include "src/core/llmnpu_engine.h"
#include "src/model/batched_kv_cache.h"
#include "src/model/kv_page_pool.h"
#include "src/model/paged_attention.h"
#include "src/model/weights.h"
#include "src/serving/replay.h"
#include "src/serving/simulator.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/threadpool.h"
#include "src/workloads/datasets.h"
#include "tests/support/tiny_model.h"
#include "tests/support/token_streams.h"

namespace llmnpu {
namespace {

Tensor
RandomTensor(Rng& rng, int64_t rows, int64_t cols)
{
    Tensor t({rows, cols}, DType::kF32);
    float* p = t.Data<float>();
    for (int64_t i = 0; i < t.NumElements(); ++i) {
        p[i] = static_cast<float>(rng.Normal(0.0, 1.0));
    }
    return t;
}

bool
BitwiseEqual(const Tensor& a, const Tensor& b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.Data<float>(), b.Data<float>(),
                       static_cast<size_t>(a.NumElements()) *
                           sizeof(float)) == 0;
}

// ------------------------------------------------------------- KvPagePool

TEST(KvPagePoolTest, FreeListRecyclesReleasedPagesLifo)
{
    KvPagePool pool(2, 8, PagedKvOptions{/*page_size=*/4});
    const int64_t a = pool.AllocPage();
    const int64_t b = pool.AllocPage();
    const int64_t c = pool.AllocPage();
    EXPECT_EQ(pool.used_pages(), 3);
    EXPECT_EQ(pool.allocated_pages(), 3);

    pool.Release(a);
    pool.Release(c);
    EXPECT_EQ(pool.used_pages(), 1);
    // Unbounded pools grow on demand, so their headroom is unbounded —
    // the sentinel, not the current free-list length (which once made
    // CanAppend refuse appends an unbounded pool would have served).
    EXPECT_EQ(pool.free_pages(), kUnboundedFreePages);
    // LIFO: the most recently released page comes back first, and no new
    // physical storage is allocated while the free list can serve.
    EXPECT_EQ(pool.AllocPage(), c);
    EXPECT_EQ(pool.AllocPage(), a);
    EXPECT_EQ(pool.allocated_pages(), 3);
    pool.Release(a);
    pool.Release(b);
    pool.Release(c);
    EXPECT_EQ(pool.used_pages(), 0);
    EXPECT_EQ(pool.SizeBytes(), 0);
    EXPECT_EQ(pool.CapacityBytes(), 3 * pool.PageBytes());
}

TEST(KvPagePoolTest, BoundedPoolExhaustsInsteadOfGrowing)
{
    KvPagePool pool(1, 4, PagedKvOptions{/*page_size=*/2, /*max_pages=*/2});
    EXPECT_EQ(pool.free_pages(), 2);
    const int64_t a = pool.AllocPage();
    const int64_t b = pool.AllocPage();
    ASSERT_GE(a, 0);
    ASSERT_GE(b, 0);
    EXPECT_EQ(pool.free_pages(), 0);
    EXPECT_EQ(pool.AllocPage(), -1);  // exhausted, never silent growth
    pool.Release(a);
    EXPECT_EQ(pool.free_pages(), 1);
    EXPECT_EQ(pool.AllocPage(), a);
}

TEST(KvPagePoolTest, RefcountedSharingKeepsPagesAlive)
{
    KvPagePool pool(1, 4, PagedKvOptions{/*page_size=*/2});
    const int64_t page = pool.AllocPage();
    pool.AddRef(page);
    EXPECT_EQ(pool.RefCount(page), 2);
    pool.Release(page);
    EXPECT_EQ(pool.RefCount(page), 1);  // still held by the other owner
    EXPECT_EQ(pool.used_pages(), 1);
    pool.Release(page);
    EXPECT_EQ(pool.used_pages(), 0);
}

// --------------------------------------------------- paged BatchedKvCache

TEST(PagedKvCacheTest, PageTableReuseAfterRetirement)
{
    BatchedKvCache cache(2, 8, 0, PagedKvOptions{/*page_size=*/4});
    const int a = cache.AddSequence();
    Tensor k = Tensor::Full({6, 8}, 1.0f);  // 6 positions -> 2 pages
    Tensor v = Tensor::Full({6, 8}, 2.0f);
    for (int l = 0; l < 2; ++l) cache.Append(a, l, k, v);
    const std::vector<int64_t> a_pages = cache.PageTable(a);
    ASSERT_EQ(a_pages.size(), 2u);
    EXPECT_EQ(cache.pool().used_pages(), 2);

    cache.RetireSequence(a);
    EXPECT_TRUE(cache.IsRetired(a));
    EXPECT_EQ(cache.live_sequences(), 0);
    EXPECT_EQ(cache.pool().used_pages(), 0);

    // A new sequence recycles the retired sequence's physical pages (LIFO
    // free list), with no new storage allocated.
    const int b = cache.AddSequence();
    EXPECT_NE(b, a);  // slot indices are never reused
    Tensor k2 = Tensor::Full({8, 8}, 3.0f);
    Tensor v2 = Tensor::Full({8, 8}, 4.0f);
    for (int l = 0; l < 2; ++l) cache.Append(b, l, k2, v2);
    const std::vector<int64_t>& b_pages = cache.PageTable(b);
    ASSERT_EQ(b_pages.size(), 2u);
    EXPECT_EQ(b_pages[0], a_pages[1]);
    EXPECT_EQ(b_pages[1], a_pages[0]);
    EXPECT_EQ(cache.pool().allocated_pages(), 2);

    // The recycled pages hold the new sequence's data, not the old.
    Tensor keys = cache.Keys(b, 0);
    for (int64_t i = 0; i < keys.NumElements(); ++i) {
        ASSERT_EQ(keys.Data<float>()[i], 3.0f);
    }
}

TEST(PagedKvCacheTest, PrefixSharingSharesWholePagesRefcounted)
{
    BatchedKvCache cache(1, 4, 0, PagedKvOptions{/*page_size=*/4});
    const int src = cache.AddSequence();
    Rng rng(11);
    Tensor k = RandomTensor(rng, 10, 4);  // 10 positions -> 3 pages
    Tensor v = RandomTensor(rng, 10, 4);
    cache.Append(src, 0, k, v);

    // Fork sharing the first 8 positions (= 2 whole pages).
    const int fork = cache.AddSequenceSharingPrefix(src, 8);
    EXPECT_EQ(cache.SeqLen(fork), 8);
    EXPECT_EQ(cache.PageTable(fork)[0], cache.PageTable(src)[0]);
    EXPECT_EQ(cache.PageTable(fork)[1], cache.PageTable(src)[1]);
    EXPECT_EQ(cache.pool().RefCount(cache.PageTable(src)[0]), 2);
    EXPECT_EQ(cache.pool().used_pages(), 3);  // shared pages counted once

    // The fork's continuation lands in its own fresh page; the source's
    // view of the shared prefix is untouched.
    Tensor k2 = RandomTensor(rng, 1, 4);
    Tensor v2 = RandomTensor(rng, 1, 4);
    cache.Append(fork, 0, k2, v2);
    EXPECT_EQ(cache.SeqLen(fork), 9);
    EXPECT_NE(cache.PageTable(fork)[2], cache.PageTable(src)[2]);
    Tensor src_keys = cache.Keys(src, 0);
    EXPECT_TRUE(BitwiseEqual(src_keys, k));

    // Retiring the source keeps the shared pages alive for the fork.
    cache.RetireSequence(src);
    EXPECT_EQ(cache.pool().RefCount(cache.PageTable(fork)[0]), 1);
    Tensor fork_keys = cache.Keys(fork, 0);
    EXPECT_EQ(fork_keys.Rows(), 9);
    EXPECT_EQ(std::memcmp(fork_keys.Data<float>(), k.Data<float>(),
                          8 * 4 * sizeof(float)),
              0);
}

TEST(PagedKvCacheTest, CanAppendReflectsPoolBudget)
{
    BatchedKvCache cache(1, 4, 0,
                         PagedKvOptions{/*page_size=*/4, /*max_pages=*/2});
    const int seq = cache.AddSequence();
    EXPECT_TRUE(cache.CanAppend(seq, 8));    // exactly the budget
    EXPECT_FALSE(cache.CanAppend(seq, 9));   // would need a third page
    Tensor k = Tensor::Full({5, 4}, 1.0f);
    Tensor v = Tensor::Full({5, 4}, 2.0f);
    cache.Append(seq, 0, k, v);
    EXPECT_TRUE(cache.CanAppend(seq, 3));    // fits the mapped pages
    EXPECT_FALSE(cache.CanAppend(seq, 4));   // spills past the budget
}

TEST(PagedKvCacheTest, CowForkWriteDivergenceIsBitwiseIsolated)
{
    // Non-aligned fork: the partially filled frontier page is shared too,
    // and the first write into it — from either side — copies the page
    // instead of dying on the old write-locked CHECK.
    BatchedKvCache cache(1, 4, 0, PagedKvOptions{/*page_size=*/4});
    const int src = cache.AddSequence();
    Rng rng(17);
    Tensor k = RandomTensor(rng, 10, 4);  // 10 positions -> 3 pages
    Tensor v = RandomTensor(rng, 10, 4);
    cache.Append(src, 0, k, v);

    const int fork = cache.AddSequenceSharingPrefix(src, 10);
    EXPECT_EQ(cache.SeqLen(fork), 10);
    EXPECT_EQ(cache.PageTable(fork)[2], cache.PageTable(src)[2]);
    EXPECT_EQ(cache.pool().used_pages(), 3);  // partial page shared once

    // Source writes first: it clones the frontier page, the fork keeps
    // the original.
    Tensor sk = RandomTensor(rng, 2, 4);
    Tensor sv = RandomTensor(rng, 2, 4);
    cache.Append(src, 0, sk, sv);
    EXPECT_EQ(cache.pool().cow_clones(), 1);
    EXPECT_NE(cache.PageTable(src)[2], cache.PageTable(fork)[2]);
    EXPECT_EQ(cache.pool().RefCount(cache.PageTable(fork)[2]), 1);

    // The fork now owns its frontier page alone — its write is in place.
    Tensor fk = RandomTensor(rng, 3, 4);
    Tensor fv = RandomTensor(rng, 3, 4);
    cache.Append(fork, 0, fk, fv);
    EXPECT_EQ(cache.pool().cow_clones(), 1);

    // A second fork off the grown source CoWs again on its first write.
    const int fork2 = cache.AddSequenceSharingPrefix(src, 10);
    Tensor gk = RandomTensor(rng, 1, 4);
    Tensor gv = RandomTensor(rng, 1, 4);
    cache.Append(fork2, 0, gk, gv);
    EXPECT_EQ(cache.pool().cow_clones(), 2);

    // Every view is bitwise what an independent sequence would hold.
    Tensor src_expect({12, 4}, DType::kF32);
    src_expect.PasteRows(k, 0);
    src_expect.PasteRows(sk, 10);
    EXPECT_TRUE(BitwiseEqual(cache.Keys(src, 0), src_expect));
    Tensor fork_expect({13, 4}, DType::kF32);
    fork_expect.PasteRows(k, 0);
    fork_expect.PasteRows(fk, 10);
    EXPECT_TRUE(BitwiseEqual(cache.Keys(fork, 0), fork_expect));
    Tensor fork2_expect({11, 4}, DType::kF32);
    fork2_expect.PasteRows(k, 0);
    fork2_expect.PasteRows(gk, 10);
    EXPECT_TRUE(BitwiseEqual(cache.Keys(fork2, 0), fork2_expect));
}

TEST(PagedKvCacheTest, CanAppendChargesPendingCowClones)
{
    BatchedKvCache cache(1, 4, 0,
                         PagedKvOptions{/*page_size=*/4, /*max_pages=*/3});
    const int src = cache.AddSequence();
    Tensor k = Tensor::Full({6, 4}, 1.0f);  // page 0 full, page 1 half
    Tensor v = Tensor::Full({6, 4}, 2.0f);
    cache.Append(src, 0, k, v);
    const int fork = cache.AddSequenceSharingPrefix(src, 6);
    // One free page left. A short append writes only the shared frontier
    // page — no new mapping, but the CoW copy takes the free page.
    EXPECT_TRUE(cache.CanAppend(fork, 1));
    EXPECT_TRUE(cache.CanAppend(fork, 2));
    // Three positions also map a fresh page past the frontier: clone +
    // new page = 2 > 1 free.
    EXPECT_FALSE(cache.CanAppend(fork, 3));
}

TEST(PagedKvCacheTest, RandomizedForkAppendRetireKeepsRefcountsExact)
{
    // Model check of the sharing accounting: after every operation, the
    // pool's used-page count equals the number of distinct pages mapped by
    // live sequences and each page's refcount equals the number of live
    // sequences mapping it. Slot storage starts empty so the run also
    // reallocates the internal sequence vector many times.
    const int64_t kv_dim = 4;
    BatchedKvCache cache(1, kv_dim, 0, PagedKvOptions{/*page_size=*/4});
    Rng rng(123);
    std::vector<int> live;
    std::map<int, std::vector<float>> mirror;  // slot -> expected key rows
    auto append_rows = [&](int seq, int rows) {
        Tensor k = RandomTensor(rng, rows, kv_dim);
        Tensor v = RandomTensor(rng, rows, kv_dim);
        cache.Append(seq, 0, k, v);
        const float* p = k.Data<float>();
        std::vector<float>& m = mirror[seq];
        m.insert(m.end(), p, p + k.NumElements());
    };
    for (int op = 0; op < 300; ++op) {
        const int kind = static_cast<int>(rng.Next() % 4);
        if (live.empty() || kind == 0) {
            const int s = cache.AddSequence();
            live.push_back(s);
            append_rows(s, 1 + static_cast<int>(rng.Next() % 6));
        } else if (kind == 1) {
            const int src =
                live[static_cast<size_t>(rng.Next() % live.size())];
            const int64_t len = cache.SeqLen(src);
            const int64_t keep = static_cast<int64_t>(
                rng.Next() % static_cast<uint64_t>(len + 1));
            const int fork = cache.AddSequenceSharingPrefix(src, keep);
            live.push_back(fork);
            const std::vector<float>& sm = mirror[src];
            mirror[fork].assign(sm.begin(), sm.begin() + keep * kv_dim);
        } else if (kind == 2) {
            const int s =
                live[static_cast<size_t>(rng.Next() % live.size())];
            append_rows(s, 1 + static_cast<int>(rng.Next() % 5));
        } else {
            const size_t i =
                static_cast<size_t>(rng.Next() % live.size());
            cache.RetireSequence(live[i]);
            mirror.erase(live[i]);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        }
        std::map<int64_t, int> refs;
        for (int s : live) {
            for (int64_t p : cache.PageTable(s)) ++refs[p];
        }
        ASSERT_EQ(cache.pool().used_pages(),
                  static_cast<int64_t>(refs.size()));
        for (const auto& [page, count] : refs) {
            ASSERT_EQ(cache.pool().RefCount(page), count);
        }
    }
    // Values: every live sequence reads back exactly its own stream —
    // no CoW ever leaked a write into a sibling's pages.
    for (int s : live) {
        const std::vector<float>& m = mirror[s];
        if (m.empty()) continue;
        Tensor keys = cache.Keys(s, 0);
        ASSERT_EQ(static_cast<size_t>(keys.NumElements()), m.size());
        ASSERT_EQ(std::memcmp(keys.Data<float>(), m.data(),
                              m.size() * sizeof(float)),
                  0);
    }
}

TEST(PagedKvCacheDeathTest, RetiredSlotAccessPanics)
{
    BatchedKvCache cache(1, 4, 1, PagedKvOptions{/*page_size=*/4});
    Tensor k = Tensor::Full({1, 4}, 1.0f);
    Tensor v = Tensor::Full({1, 4}, 2.0f);
    cache.Append(0, 0, k, v);
    cache.RetireSequence(0);
    EXPECT_DEATH(cache.Append(0, 0, k, v), "CHECK failed");
    EXPECT_DEATH(cache.SeqLen(0), "CHECK failed");
}

TEST(PagedKvCacheDeathTest, BoundedExhaustionOnAppendPanics)
{
    BatchedKvCache cache(1, 4, 1,
                         PagedKvOptions{/*page_size=*/2, /*max_pages=*/1});
    Tensor k = Tensor::Full({3, 4}, 1.0f);
    Tensor v = Tensor::Full({3, 4}, 2.0f);
    ASSERT_FALSE(cache.CanAppend(0, 3));
    EXPECT_DEATH(cache.Append(0, 0, k, v), "CHECK failed");
}

TEST(PagedKvCacheDeathTest, CowOnExhaustedBoundedPoolPanics)
{
    // Budget fully consumed by the shared pages: the append maps no new
    // page, but the CoW copy it needs has nowhere to go.
    BatchedKvCache cache(1, 4, 0,
                         PagedKvOptions{/*page_size=*/4, /*max_pages=*/2});
    const int src = cache.AddSequence();
    Tensor k = Tensor::Full({6, 4}, 1.0f);
    Tensor v = Tensor::Full({6, 4}, 2.0f);
    cache.Append(src, 0, k, v);
    const int fork = cache.AddSequenceSharingPrefix(src, 6);
    Tensor k1 = Tensor::Full({1, 4}, 3.0f);
    Tensor v1 = Tensor::Full({1, 4}, 4.0f);
    ASSERT_FALSE(cache.CanAppend(fork, 1));
    EXPECT_DEATH(cache.Append(fork, 0, k1, v1), "CHECK failed");
}

// ------------------------------------------------- fused paged attention

/** Builds a ragged multi-sequence paged cache plus stacked q for layer 0,
 *  returning everything PagedCausalAttention needs. */
struct AttentionScenario {
    BatchedKvCache cache;
    Tensor q;
    std::vector<int64_t> segments;
    std::vector<int> seqs;
    std::vector<int64_t> pos_offsets;
    int num_heads;
    int num_kv_heads;

    AttentionScenario(int num_heads_in, int num_kv_heads_in, int head_dim,
                      const std::vector<std::pair<int64_t, int64_t>>&
                          history_and_step,
                      uint64_t seed)
        : cache(1, static_cast<int64_t>(num_kv_heads_in) * head_dim, 0,
                PagedKvOptions{/*page_size=*/4}),
          num_heads(num_heads_in),
          num_kv_heads(num_kv_heads_in)
    {
        Rng rng(seed);
        const int64_t kv_dim =
            static_cast<int64_t>(num_kv_heads) * head_dim;
        segments.push_back(0);
        for (const auto& [history, step_rows] : history_and_step) {
            const int seq = cache.AddSequence();
            if (history > 0) {
                cache.Append(seq, 0, RandomTensor(rng, history, kv_dim),
                             RandomTensor(rng, history, kv_dim));
            }
            cache.Append(seq, 0, RandomTensor(rng, step_rows, kv_dim),
                         RandomTensor(rng, step_rows, kv_dim));
            seqs.push_back(seq);
            pos_offsets.push_back(history);
            segments.push_back(segments.back() + step_rows);
        }
        q = RandomTensor(rng, segments.back(),
                         static_cast<int64_t>(num_heads) * head_dim);
    }

    Tensor Run() const
    {
        return PagedCausalAttention(q, segments, seqs, pos_offsets, cache,
                                    /*layer=*/0, num_heads, num_kv_heads);
    }

    /** The old per-sequence path: dense K/V materialization + the
     *  reference CausalAttention, pasted back segment by segment. */
    Tensor RunReference() const
    {
        Tensor out({q.Rows(), q.Cols()}, DType::kF32);
        for (size_t i = 0; i + 1 < segments.size(); ++i) {
            const int64_t r0 = segments[i];
            const int64_t rows = segments[i + 1] - r0;
            Tensor attn = CausalAttention(
                q.CopyRows(r0, rows), cache.Keys(seqs[i], 0),
                cache.Values(seqs[i], 0), num_heads, num_kv_heads,
                pos_offsets[i]);
            out.PasteRows(attn, r0);
        }
        return out;
    }
};

TEST(PagedAttentionTest, MatchesPerSequenceReferenceBitwise)
{
    // Ragged mix of fresh prefill, chunked prefill and decode, with GQA
    // (4 heads over 2 KV heads) and histories crossing page boundaries.
    AttentionScenario scenario(
        /*num_heads=*/4, /*num_kv_heads=*/2, /*head_dim=*/16,
        {{0, 5}, {7, 3}, {12, 1}, {3, 1}}, /*seed=*/23);
    EXPECT_TRUE(BitwiseEqual(scenario.Run(), scenario.RunReference()));
}

TEST(PagedAttentionTest, MhaAndMqaLayoutsMatchReference)
{
    AttentionScenario mha(/*num_heads=*/4, /*num_kv_heads=*/4,
                          /*head_dim=*/8, {{9, 2}, {0, 6}}, /*seed=*/31);
    EXPECT_TRUE(BitwiseEqual(mha.Run(), mha.RunReference()));
    AttentionScenario mqa(/*num_heads=*/4, /*num_kv_heads=*/1,
                          /*head_dim=*/8, {{4, 4}, {17, 1}}, /*seed=*/37);
    EXPECT_TRUE(BitwiseEqual(mqa.Run(), mqa.RunReference()));
}

TEST(PagedAttentionTest, BitwiseDeterministicAcrossThreadCounts)
{
    AttentionScenario scenario(
        /*num_heads=*/8, /*num_kv_heads=*/4, /*head_dim=*/16,
        {{0, 12}, {21, 1}, {5, 7}, {33, 1}, {2, 2}}, /*seed=*/41);
    Tensor at1, at2, at4;
    {
        ScopedNumThreads threads(1);
        at1 = scenario.Run();
    }
    {
        ScopedNumThreads threads(2);
        at2 = scenario.Run();
    }
    {
        ScopedNumThreads threads(4);
        at4 = scenario.Run();
    }
    EXPECT_TRUE(BitwiseEqual(at1, at2));
    EXPECT_TRUE(BitwiseEqual(at1, at4));
    EXPECT_TRUE(BitwiseEqual(at1, scenario.RunReference()));
}

// ----------------------------------------- B=64 ragged batch, end to end

class PagedForwardTest : public TinyModelTest
{};

TEST_F(PagedForwardTest, B64RaggedBatchMatchesSequentialBitwise)
{
    const int kBatch = 64;
    const int vocab = tiny_.config.vocab_size;
    Fp32LinearExecutor linears(tiny_.weights);

    // Ragged prefill (1..4 tokens per sequence) then two full-width decode
    // steps: the m=64 stacked matmul plus 64*heads attention tiles.
    std::vector<std::vector<std::vector<int>>> groups(kBatch);
    std::vector<int> cursor(kBatch, 0);
    BatchedKvCache cache = tiny_.model.MakeBatchedCache();
    std::vector<std::vector<float>> batched_rows(kBatch);
    for (int step = 0; step < 3; ++step) {
        std::vector<BatchSeq> batch;
        for (int s = 0; s < kBatch; ++s) {
            const int count = step == 0 ? 1 + s % 4 : 1;
            std::vector<int> tokens;
            for (int i = 0; i < count; ++i) {
                tokens.push_back(TestTokenAt(s, cursor[s]++, vocab));
            }
            groups[s].push_back(tokens);
            if (step == 0) {
                batch.push_back({cache.AddSequence(), std::move(tokens)});
            } else {
                batch.push_back({s, std::move(tokens)});
            }
        }
        Tensor hidden = tiny_.model.ForwardBatch(batch, cache, linears);
        int64_t row = 0;
        for (int s = 0; s < kBatch; ++s) {
            const int64_t rows =
                static_cast<int64_t>(batch[static_cast<size_t>(s)]
                                         .tokens.size());
            Tensor h = hidden.CopyRows(row, rows);
            batched_rows[static_cast<size_t>(s)].insert(
                batched_rows[static_cast<size_t>(s)].end(),
                h.Data<float>(), h.Data<float>() + h.NumElements());
            row += rows;
        }
    }

    for (int s = 0; s < kBatch; ++s) {
        KvCache solo = tiny_.model.MakeCache();
        std::vector<float> ref;
        for (const std::vector<int>& tokens :
             groups[static_cast<size_t>(s)]) {
            Tensor h = tiny_.model.Forward(tokens, solo, linears);
            ref.insert(ref.end(), h.Data<float>(),
                       h.Data<float>() + h.NumElements());
        }
        ASSERT_EQ(ref.size(), batched_rows[static_cast<size_t>(s)].size());
        ASSERT_EQ(std::memcmp(ref.data(),
                              batched_rows[static_cast<size_t>(s)].data(),
                              ref.size() * sizeof(float)),
                  0)
            << "sequence " << s
            << ": B=64 batched hidden states differ from sequential";
    }
}

// ------------------------------------- serving: KV admission and eviction

class PagedServingTest : public PaperDeviceTest
{
  protected:
    ServingResult
    RunBounded(int64_t pool_pages, int num_requests, double rate_rps,
               std::vector<DatasetProfile> mix = {PersonaChatProfile()})
    {
        LlmNpuEngine engine;
        ServingCostModel costs(engine, qwen_, soc_);
        ServingOptions options;
        options.policy = SchedPolicy::kFcfs;
        options.num_requests = num_requests;
        options.rate_rps = rate_rps;
        options.seed = 9;
        options.kv_pool_pages = pool_pages;
        options.kv_page_size = 16;
        return ServingSimulator(costs, std::move(mix), options).Run();
    }
};

TEST_F(PagedServingTest, BoundedPoolNeverExceedsBudgetAndCompletes)
{
    const ServingResult result = RunBounded(/*pool_pages=*/90,
                                            /*num_requests=*/12,
                                            /*rate_rps=*/50.0);
    EXPECT_EQ(result.rejected, 0);  // PersonaChat demand fits 90 pages
    EXPECT_LE(result.kv_pages_peak, 90);
    EXPECT_GT(result.kv_pages_peak, 0);
    EXPECT_GT(result.kv_pages_mean, 0.0);
    EXPECT_LE(result.kv_pages_mean,
              static_cast<double>(result.kv_pages_peak));
    for (const RequestRecord& record : result.records) {
        EXPECT_TRUE(record.Completed()) << "request " << record.request.id;
    }
}

TEST_F(PagedServingTest, EvictionThenReadmitReplaysBitwise)
{
    // Shrink the pool until decode growth forces evictions (deterministic
    // per seed, so the chosen size is stable once found).
    ServingResult result;
    bool found = false;
    for (int64_t pool : {70, 60, 50, 45, 42}) {
        result = RunBounded(pool, /*num_requests=*/10, /*rate_rps=*/100.0);
        if (result.evictions > 0) {
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found) << "no pool size under test produced an eviction";
    for (const RequestRecord& record : result.records) {
        if (!record.rejected) {
            EXPECT_TRUE(record.Completed());
        }
    }

    // The eviction's recompute must be invisible to the numeric plane: the
    // replayed trace (pages released, prefill re-run from chunk 0) is
    // bitwise identical to the uninterrupted solo run of every sequence.
    const TinyModelContext& tiny = SharedTinyModel();
    Fp32LinearExecutor linears(tiny.weights);
    const ReplayOutcome outcome = ReplayServingTrace(
        result.replay_steps, result.records, tiny.model, linears);
    EXPECT_TRUE(outcome.bitwise_match) << outcome.first_mismatch;
    EXPECT_GT(outcome.prefill_steps, 0);
}

TEST_F(PagedServingTest, OversizedRequestsAreRejectedNotStarved)
{
    // 10 pages * 16 positions = 160 positions: every PersonaChat request
    // (prompt >= 488) is rejected at arrival; the run still terminates and
    // reports well-defined (finite, non-NaN) aggregates.
    const ServingResult result = RunBounded(/*pool_pages=*/10,
                                            /*num_requests=*/6,
                                            /*rate_rps=*/20.0);
    EXPECT_EQ(result.rejected, 6);
    EXPECT_EQ(result.kv_pages_peak, 0);

    const ServingReport report = result.Report();
    EXPECT_EQ(report.admitted, 0);
    EXPECT_EQ(report.rejected, 6);
    EXPECT_EQ(report.completed, 0);
    const double fields[] = {
        report.throughput_rps, report.goodput_rps,  report.slo_attainment,
        report.ttft_p50_ms,    report.ttft_p95_ms,  report.ttft_p99_ms,
        report.e2e_p50_ms,     report.e2e_p95_ms,   report.e2e_p99_ms,
        report.tpot_mean_ms,   report.queueing_mean_ms,
        report.npu_utilization, report.decode_utilization,
        report.decode_tokens_per_sec, report.kv_pages_mean,
    };
    for (double f : fields) {
        EXPECT_TRUE(std::isfinite(f)) << report.Summary();
        EXPECT_EQ(f, 0.0);
    }
    EXPECT_FALSE(report.Summary().empty());
}

TEST_F(PagedServingTest, ClosedLoopAllRejectedStillTerminates)
{
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    ServingOptions options;
    options.closed_loop = true;
    options.num_clients = 3;
    options.think_time_ms = 5.0;
    options.num_requests = 9;
    options.seed = 5;
    options.kv_pool_pages = 4;  // nothing fits
    options.kv_page_size = 16;
    const ServingResult result =
        ServingSimulator(costs, {PersonaChatProfile()}, options).Run();
    EXPECT_EQ(result.rejected, 9);  // every client retried to the cap
    EXPECT_EQ(static_cast<int>(result.records.size()), 9);
}

// ------------------------------------ serving: shared-system-prompt plane

/** Fixed-shape profile so the page arithmetic below is exact. */
DatasetProfile
FixedProfile(int prompt, int output)
{
    DatasetProfile profile;
    profile.name = "fixed";
    profile.application = "test";
    profile.prompt_min = prompt;
    profile.prompt_max = prompt;
    profile.output_min = output;
    profile.output_max = output;
    return profile;
}

TEST_F(PagedServingTest, SharedPrefixChargedOnceAcrossConcurrentSharers)
{
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    ServingOptions options;
    options.num_requests = 6;
    options.rate_rps = 200.0;
    options.seed = 9;
    // prefix 48 tokens = 3 pages; private side = pages(32 + 8) = 3 pages.
    // 9 pages hold the prefix plus TWO full private sides only because
    // the prefix is charged once — double-charging would need 12.
    options.kv_pool_pages = 9;
    options.kv_page_size = 16;
    options.shared_prefix.prefix_len = 48;
    options.shared_prefix.share_fraction = 1.0;
    const ServingResult result =
        ServingSimulator(costs, {FixedProfile(80, 8)}, options).Run();
    EXPECT_EQ(result.rejected, 0);  // whole once-counted demand 6 <= 9
    EXPECT_EQ(result.shared_requests, 6);
    EXPECT_EQ(result.shared_prefix_pages, 3);
    EXPECT_LE(result.kv_pages_peak, 9);
    EXPECT_GE(result.shared_prefix_refs_peak, 2);  // concurrent sharers
    EXPECT_GE(result.shared_prefix_materializations, 1);
    EXPECT_EQ(result.shared_prefix_materializations,
              result.shared_prefix_drops);  // fully released at the end
    for (const RequestRecord& record : result.records) {
        EXPECT_TRUE(record.Completed()) << "request " << record.request.id;
    }
}

TEST_F(PagedServingTest, EvictionWithResidentPrefixStaysWithinBudget)
{
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    ServingOptions options;
    options.num_requests = 8;
    options.rate_rps = 300.0;
    options.seed = 9;
    options.kv_page_size = 16;
    options.shared_prefix.prefix_len = 48;
    options.shared_prefix.share_fraction = 1.0;
    // Shrink until decode growth forces evictions while sharers hold the
    // prefix; eviction must pick private-page victims first and the pool
    // must never overshoot (a double-free of shared pages would let it).
    ServingResult result;
    bool found = false;
    for (int64_t pool : {9, 8, 7, 6}) {
        options.kv_pool_pages = pool;
        result = ServingSimulator(costs, {FixedProfile(80, 8)}, options)
                     .Run();
        EXPECT_LE(result.kv_pages_peak, pool);
        EXPECT_EQ(result.shared_prefix_materializations,
                  result.shared_prefix_drops);
        if (result.evictions > 0) {
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found) << "no pool size under test produced an eviction";
    EXPECT_GT(result.shared_requests, 0);
    for (const RequestRecord& record : result.records) {
        if (!record.rejected && !record.shed) {
            EXPECT_TRUE(record.Completed())
                << "request " << record.request.id;
        }
    }
}

TEST(SharedPrefixWorkloadTest, FractionSweepsMarkNestedArrivalSets)
{
    const std::vector<DatasetProfile> mix = {PersonaChatProfile()};
    const auto lo = GeneratePoissonArrivals(
        mix, 5.0, 40, 7, SharedPrefixOptions{/*prefix_len=*/16, 0.3});
    const auto hi = GeneratePoissonArrivals(
        mix, 5.0, 40, 7, SharedPrefixOptions{/*prefix_len=*/16, 0.8});
    ASSERT_EQ(lo.size(), hi.size());
    int lo_marked = 0;
    int hi_marked = 0;
    for (size_t i = 0; i < lo.size(); ++i) {
        // The share draw never perturbs the stream itself...
        EXPECT_EQ(lo[i].arrival_ms, hi[i].arrival_ms);
        EXPECT_EQ(lo[i].request.prompt_len, hi[i].request.prompt_len);
        EXPECT_EQ(lo[i].request.output_len, hi[i].request.output_len);
        // ...and marks nested sets: every 0.3-marked arrival is 0.8-marked.
        if (lo[i].shared_prefix_len > 0) {
            ++lo_marked;
            EXPECT_EQ(hi[i].shared_prefix_len, 16);
        }
        if (hi[i].shared_prefix_len > 0) ++hi_marked;
    }
    EXPECT_GT(lo_marked, 0);
    EXPECT_GT(hi_marked, lo_marked);
    // prefix_len == 0 draws nothing: bit-identical to the legacy stream.
    const auto legacy = GeneratePoissonArrivals(mix, 5.0, 40, 7);
    const auto off = GeneratePoissonArrivals(
        mix, 5.0, 40, 7, SharedPrefixOptions{/*prefix_len=*/0, 0.5});
    ASSERT_EQ(off.size(), legacy.size());
    for (size_t i = 0; i < legacy.size(); ++i) {
        EXPECT_EQ(off[i].arrival_ms, legacy[i].arrival_ms);
        EXPECT_EQ(off[i].request.prompt_len, legacy[i].request.prompt_len);
        EXPECT_EQ(off[i].shared_prefix_len, 0);
    }
}

TEST_F(PagedServingTest, SharedPrefixScheduleReplaysBitwiseThroughCow)
{
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen_, soc_);
    ServingOptions options;
    options.num_requests = 8;
    options.rate_rps = 100.0;
    options.seed = 21;
    options.kv_pool_pages = 16;
    options.kv_page_size = 16;
    options.shared_prefix.prefix_len = 16;
    options.shared_prefix.share_fraction = 0.75;
    const ServingResult result =
        ServingSimulator(costs, {FixedProfile(56, 6)}, options).Run();
    ASSERT_GT(result.shared_requests, 0);

    const TinyModelContext& tiny = SharedTinyModel();
    Fp32LinearExecutor linears(tiny.weights);
    ReplayOptions ropts;
    // Replayed prefix = min(16, 10) = 10 tokens: NOT page-aligned, so
    // every fork shares the template's partial frontier page and the
    // first suffix write copy-on-writes it mid-stream.
    ropts.max_prompt_tokens = 10;
    const ReplayOutcome outcome = ReplayServingTrace(
        result.replay_steps, result.records, tiny.model, linears, ropts);
    EXPECT_TRUE(outcome.bitwise_match) << outcome.first_mismatch;
    EXPECT_GT(outcome.shared_prefix_forks, 0);
    EXPECT_GT(outcome.cow_page_clones, 0);
    EXPECT_GT(outcome.prefill_steps, 0);
}

// ----------------------------------------------- empty-input bug guards

TEST(StatsTest, PercentileOfEmptySampleIsZeroNotNan)
{
    EXPECT_EQ(Percentile({}, 50.0), 0.0);
    EXPECT_EQ(Percentile({}, 99.0), 0.0);
    EXPECT_EQ(Percentile({7.0}, 50.0), 7.0);
}

TEST(StatsTest, EmptyRecordSetBuildsAllZeroReport)
{
    const ServingReport report = BuildReport({}, 0.0, 0.0, 0.0, 0);
    EXPECT_EQ(report.admitted, 0);
    EXPECT_EQ(report.completed, 0);
    EXPECT_TRUE(std::isfinite(report.ttft_p99_ms));
    EXPECT_EQ(report.throughput_rps, 0.0);
    EXPECT_EQ(report.slo_attainment, 0.0);
}

TEST(ConfigValidateDeathTest, TruncatingHeadDimFailsLoudly)
{
    ModelConfig bad = TinyTestConfig();
    bad.hidden_size = 100;
    bad.num_heads = 3;  // 100 / 3 truncates: head_dim can't be exact
    EXPECT_DEATH(GenerateSyntheticWeights(bad), "CHECK failed");
}

TEST(ConfigValidateDeathTest, MismatchedHeadDimFailsLoudly)
{
    ModelConfig bad = TinyTestConfig();
    bad.head_dim = 8;  // hidden 64 / 4 heads = 16, not 8
    EXPECT_DEATH(GenerateSyntheticWeights(bad), "CHECK failed");
}

TEST(ConfigValidateDeathTest, RaggedGqaGroupsFailLoudly)
{
    ModelConfig bad = TinyTestConfig();
    bad.num_kv_heads = 3;  // 4 heads % 3 kv heads != 0
    EXPECT_DEATH(GenerateSyntheticWeights(bad), "CHECK failed");
}

TEST(ConfigValidateTest, PaperModelsAllValidate)
{
    for (const ModelConfig& config : PaperModels()) {
        config.Validate();  // must not panic
    }
    TinyTestConfig().Validate();
}

}  // namespace
}  // namespace llmnpu
