/**
 * @file
 * Decode-on-NPU tests (CTest label `decode-npu`).
 *
 * Covers the numeric-plane decode offload path end to end: DecodeBackend
 * routing (uniform and per-sequence mixed placements, handoff-boundary
 * stats), batched-vs-sequential bitwise equality of NPU decode for ragged
 * B=1..4 batches, bitwise determinism across thread counts, NPU-decode vs
 * fp32-decode logit divergence bands against committed golden expectations,
 * and the NPU-decode serving-trace replay acceptance criterion.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/core/llmnpu_engine.h"
#include "src/core/shadow_executor.h"
#include "src/model/decode_backend.h"
#include "src/serving/replay.h"
#include "src/serving/simulator.h"
#include "src/util/format.h"
#include "src/util/threadpool.h"
#include "src/workloads/arrivals.h"
#include "tests/support/golden.h"
#include "tests/support/tiny_model.h"
#include "tests/support/token_streams.h"

namespace llmnpu {
namespace {

/** One batched step: (sequence, token count) pairs, ragged by design. */
using ScriptStep = std::vector<std::pair<int, int>>;

// ------------------------------------------------- DecodeBackend routing

class DecodeBackendTest : public TinyModelTest
{
  protected:
    const int vocab_ = tiny_.config.vocab_size;
};

TEST_F(DecodeBackendTest, UniformNpuPlacementMatchesShadowExecutorBitwise)
{
    // A step routed to the NPU must be the shadow executor's result bit
    // for bit — the backend adds routing, never arithmetic.
    Fp32LinearExecutor fp32(tiny_.weights);
    NpuShadowExecutor shadow_direct(tiny_.weights, tiny_.profile, 0.5);
    NpuShadowExecutor shadow_routed(tiny_.weights, tiny_.profile, 0.5);
    DecodeBackend backend(fp32, shadow_routed);
    backend.SetUniformPlacement(DecodePlacement::kNpuQuant);

    const std::vector<int> tokens = {3, 77, 150, 201};
    KvCache cache_a = tiny_.model.MakeCache();
    KvCache cache_b = tiny_.model.MakeCache();
    Tensor via_backend = tiny_.model.Forward(tokens, cache_a, backend);
    Tensor direct = tiny_.model.Forward(tokens, cache_b, shadow_direct);
    EXPECT_TRUE(via_backend.BitEquals(direct));
}

TEST_F(DecodeBackendTest, UniformCpuPlacementMatchesFp32Bitwise)
{
    Fp32LinearExecutor fp32_direct(tiny_.weights);
    Fp32LinearExecutor fp32_routed(tiny_.weights);
    NpuShadowExecutor shadow(tiny_.weights, tiny_.profile, 0.5);
    DecodeBackend backend(fp32_routed, shadow);
    backend.SetUniformPlacement(DecodePlacement::kCpuFloat);

    const std::vector<int> tokens = {9, 18, 27};
    KvCache cache_a = tiny_.model.MakeCache();
    KvCache cache_b = tiny_.model.MakeCache();
    Tensor via_backend = tiny_.model.Forward(tokens, cache_a, backend);
    Tensor direct = tiny_.model.Forward(tokens, cache_b, fp32_direct);
    EXPECT_TRUE(via_backend.BitEquals(direct));
}

TEST_F(DecodeBackendTest, HandoffStatsCountBoundaryCrossings)
{
    Fp32LinearExecutor fp32(tiny_.weights);
    NpuShadowExecutor shadow(tiny_.weights, tiny_.profile, 0.5);
    DecodeBackend backend(fp32, shadow);
    const int64_t linears_per_forward =
        static_cast<int64_t>(tiny_.config.LayerLinears().size()) *
        tiny_.config.num_layers;

    // CPU-placed step: no boundary crossings.
    backend.SetUniformPlacement(DecodePlacement::kCpuFloat);
    KvCache cache = tiny_.model.MakeCache();
    tiny_.model.Forward({1, 2}, cache, backend);
    EXPECT_EQ(backend.stats().cpu_linear_calls, linears_per_forward);
    EXPECT_EQ(backend.stats().npu_linear_calls, 0);
    EXPECT_EQ(backend.stats().handoffs, 0);
    EXPECT_EQ(backend.stats().quantized_elems, 0);

    // NPU-placed decode step: every linear crosses the boundary — one f32
    // row quantized in, one accumulator row dequantized out, per linear.
    backend.ResetStats();
    backend.SetUniformPlacement(DecodePlacement::kNpuQuant);
    tiny_.model.Forward({3}, cache, backend);
    EXPECT_EQ(backend.stats().npu_linear_calls, linears_per_forward);
    EXPECT_EQ(backend.stats().cpu_linear_calls, 0);
    EXPECT_EQ(backend.stats().handoffs, linears_per_forward);
    int64_t expected_quantized = 0;
    int64_t expected_dequantized = 0;
    for (const auto& spec : tiny_.config.LayerLinears()) {
        expected_quantized += spec.k;   // one activation row in
        expected_dequantized += spec.n; // one output row back
    }
    expected_quantized *= tiny_.config.num_layers;
    expected_dequantized *= tiny_.config.num_layers;
    EXPECT_EQ(backend.stats().quantized_elems, expected_quantized);
    EXPECT_EQ(backend.stats().dequantized_elems, expected_dequantized);
}

TEST_F(DecodeBackendTest, PlacementSizeMismatchPanics)
{
    Fp32LinearExecutor fp32(tiny_.weights);
    NpuShadowExecutor shadow(tiny_.weights, tiny_.profile, 0.5);
    DecodeBackend backend(fp32, shadow);
    BatchedKvCache cache = tiny_.model.MakeBatchedCache(2);
    EXPECT_DEATH(tiny_.model.ForwardBatchPlaced(
                     {{0, {1}}, {1, {2}}}, {DecodePlacement::kNpuQuant},
                     cache, backend),
                 "CHECK failed");
}

// ------------------------- batched vs sequential NPU decode, bitwise

/**
 * Runs `script` through ForwardBatchPlaced with each sequence pinned to
 * `placement_of(seq)`, then re-runs every sequence alone with the same
 * placement through Forward, asserting bitwise-identical hidden states and
 * logits — the ForwardBatch contract extended with placement routing.
 */
void
RunPlacedScriptBitwise(const TinyModelContext& tiny,
                       const std::vector<ScriptStep>& script,
                       const std::map<int, DecodePlacement>& placement_of)
{
    const int vocab = tiny.config.vocab_size;
    Fp32LinearExecutor fp32(tiny.weights);
    NpuShadowExecutor shadow(tiny.weights, tiny.profile, 0.5);
    DecodeBackend backend(fp32, shadow);

    // Batched pass with per-member placements.
    std::map<int, int> slots;
    std::map<int, int> cursor;
    std::map<int, std::vector<float>> hidden_rows, logit_rows;
    std::map<int, std::vector<std::vector<int>>> groups;
    BatchedKvCache cache = tiny.model.MakeBatchedCache();
    for (const ScriptStep& step : script) {
        std::vector<BatchSeq> batch;
        std::vector<DecodePlacement> placements;
        for (const auto& [seq, count] : step) {
            if (!slots.count(seq)) slots[seq] = cache.AddSequence();
            std::vector<int> tokens;
            for (int i = 0; i < count; ++i) {
                tokens.push_back(TestTokenAt(seq, cursor[seq]++, vocab));
            }
            groups[seq].push_back(tokens);
            batch.push_back({slots[seq], std::move(tokens)});
            placements.push_back(placement_of.at(seq));
        }
        Tensor hidden = tiny.model.ForwardBatchPlaced(batch, placements,
                                                      cache, backend);
        Tensor logits = tiny.model.Logits(hidden);
        int64_t row = 0;
        for (size_t i = 0; i < batch.size(); ++i) {
            const int64_t rows =
                static_cast<int64_t>(batch[i].tokens.size());
            AppendTensorRows(hidden_rows[step[i].first],
                       hidden.CopyRows(row, rows));
            AppendTensorRows(logit_rows[step[i].first],
                       logits.CopyRows(row, rows));
            row += rows;
        }
    }

    // Sequential reference: same token groups, same placement, alone.
    for (const auto& [seq, seq_groups] : groups) {
        backend.SetUniformPlacement(placement_of.at(seq));
        KvCache solo = tiny.model.MakeCache();
        std::vector<float> ref_hidden, ref_logits;
        for (const std::vector<int>& tokens : seq_groups) {
            Tensor h = tiny.model.Forward(tokens, solo, backend);
            AppendTensorRows(ref_hidden, h);
            AppendTensorRows(ref_logits, tiny.model.Logits(h));
        }
        ASSERT_EQ(ref_hidden.size(), hidden_rows[seq].size()) << "seq "
                                                              << seq;
        EXPECT_EQ(std::memcmp(ref_hidden.data(), hidden_rows[seq].data(),
                              ref_hidden.size() * sizeof(float)),
                  0)
            << "hidden states of seq " << seq << " ("
            << DecodePlacementName(placement_of.at(seq))
            << ") differ between placed-batched and sequential execution";
        ASSERT_EQ(ref_logits.size(), logit_rows[seq].size()) << "seq "
                                                             << seq;
        EXPECT_EQ(std::memcmp(ref_logits.data(), logit_rows[seq].data(),
                              ref_logits.size() * sizeof(float)),
                  0)
            << "logits of seq " << seq << " differ between placed-batched "
            << "and sequential execution";
    }
}

/** Ragged prefill-then-decode scripts for B=1..4 (decode = m=1 rows). */
std::vector<std::vector<ScriptStep>>
DecodeScripts()
{
    return {
        // B=1.
        {{{0, 5}}, {{0, 1}}, {{0, 1}}},
        // B=2, ragged prefill then two batched decode steps.
        {{{0, 4}, {1, 7}}, {{0, 1}, {1, 1}}, {{0, 1}, {1, 1}}},
        // B=3 with chunked prefill inside the batch.
        {{{0, 5}, {2, 3}},
         {{1, 6}, {2, 2}},
         {{0, 1}, {1, 1}, {2, 1}},
         {{0, 1}, {1, 1}, {2, 1}}},
        // B=4 batched decode after ragged prefills, with a mixed
        // prefill/decode step in the middle.
        {{{0, 3}, {1, 1}, {2, 6}},
         {{0, 1}, {1, 1}, {2, 1}, {3, 5}},
         {{0, 1}, {1, 1}, {2, 1}, {3, 1}},
         {{3, 1}, {2, 1}, {1, 1}, {0, 1}}},
    };
}

class NpuDecodeBatchedTest : public TinyModelTest
{};

TEST_F(NpuDecodeBatchedTest, BatchedEqualsSequentialAllNpu)
{
    for (const auto& script : DecodeScripts()) {
        std::map<int, DecodePlacement> all_npu;
        for (int seq = 0; seq < 4; ++seq) {
            all_npu[seq] = DecodePlacement::kNpuQuant;
        }
        RunPlacedScriptBitwise(tiny_, script, all_npu);
    }
}

TEST_F(NpuDecodeBatchedTest, BatchedEqualsSequentialMixedPlacements)
{
    // Alternating and blocked placements exercise both the run-splitting
    // path (cpu|npu|cpu|npu) and contiguous same-placement runs.
    const std::vector<std::map<int, DecodePlacement>> assignments = {
        {{0, DecodePlacement::kNpuQuant},
         {1, DecodePlacement::kCpuFloat},
         {2, DecodePlacement::kNpuQuant},
         {3, DecodePlacement::kCpuFloat}},
        {{0, DecodePlacement::kCpuFloat},
         {1, DecodePlacement::kCpuFloat},
         {2, DecodePlacement::kNpuQuant},
         {3, DecodePlacement::kNpuQuant}},
    };
    for (const auto& placement_of : assignments) {
        for (const auto& script : DecodeScripts()) {
            RunPlacedScriptBitwise(tiny_, script, placement_of);
        }
    }
}

TEST_F(NpuDecodeBatchedTest, BitwiseDeterministicAcrossThreadCounts)
{
    // The NPU decode path runs over the shared ThreadPool (packed W8A8 +
    // compact shadow matmuls); its logits must be bitwise identical at any
    // thread count.
    std::vector<std::vector<float>> per_thread_logits;
    for (int threads : {1, 2, 4}) {
        ScopedNumThreads scoped(threads);
        Fp32LinearExecutor fp32(tiny_.weights);
        NpuShadowExecutor shadow(tiny_.weights, tiny_.profile, 0.5);
        DecodeBackend backend(fp32, shadow);

        KvCache cache = tiny_.model.MakeCache();
        backend.SetUniformPlacement(DecodePlacement::kCpuFloat);
        tiny_.model.Forward({5, 10, 15, 20, 25}, cache, backend);
        backend.SetUniformPlacement(DecodePlacement::kNpuQuant);
        std::vector<float> logits;
        for (int t = 0; t < 6; ++t) {
            Tensor h = tiny_.model.Forward(
                {TestTokenAt(0, t, tiny_.config.vocab_size)}, cache, backend);
            AppendTensorRows(logits, tiny_.model.Logits(h));
        }
        per_thread_logits.push_back(std::move(logits));
    }
    for (size_t i = 1; i < per_thread_logits.size(); ++i) {
        ASSERT_EQ(per_thread_logits[i].size(), per_thread_logits[0].size());
        EXPECT_EQ(std::memcmp(per_thread_logits[i].data(),
                              per_thread_logits[0].data(),
                              per_thread_logits[0].size() * sizeof(float)),
                  0)
            << "NPU-decode logits differ between 1 thread and thread "
            << "count variant " << i;
    }
}

// --------------------------------- NPU vs fp32 decode divergence bands

/** Committed accuracy bands for NPU decode on the tiny-model fixture.
 *  W8A8 with shadow outliers tracks fp32 closely but not exactly; these
 *  bands pin the divergence so a quantization regression (dropped shadow
 *  term, broken clip scale) fails loudly. */
constexpr double kMinTop1Agreement = 0.85;
constexpr double kMaxLogitRmse = 0.8;
constexpr double kMaxLogitAbsDiff = 8.0;

class NpuDecodeDivergenceTest : public TinyModelTest
{};

TEST_F(NpuDecodeDivergenceTest, DivergenceVsFp32WithinGoldenBands)
{
    // Both runs prefill in fp32 from the shared eval corpus, then decode
    // teacher-forced tokens — one on the fp32 path, one on the NPU W8A8 +
    // shadow path — and the final-row logits are compared per step.
    constexpr int kDecodeSteps = 4;
    Fp32LinearExecutor fp32(tiny_.weights);
    Fp32LinearExecutor backend_fp32(tiny_.weights);
    NpuShadowExecutor shadow(tiny_.weights, tiny_.profile, 0.5);
    DecodeBackend backend(backend_fp32, shadow);

    int steps = 0;
    int agree = 0;
    double sq_err = 0.0;
    int64_t logit_count = 0;
    double max_abs = 0.0;
    for (size_t c = 0; c < tiny_.eval_corpus.size(); ++c) {
        const std::vector<int>& prompt = tiny_.eval_corpus[c];
        KvCache ref_cache = tiny_.model.MakeCache();
        KvCache npu_cache = tiny_.model.MakeCache();
        tiny_.model.Forward(prompt, ref_cache, fp32);
        backend.SetUniformPlacement(DecodePlacement::kCpuFloat);
        tiny_.model.Forward(prompt, npu_cache, backend);

        backend.SetUniformPlacement(DecodePlacement::kNpuQuant);
        for (int t = 0; t < kDecodeSteps; ++t) {
            const int token =
                TestTokenAt(static_cast<int>(c), t, tiny_.config.vocab_size);
            Tensor ref_logits = tiny_.model.Logits(
                tiny_.model.Forward({token}, ref_cache, fp32));
            Tensor npu_logits = tiny_.model.Logits(
                tiny_.model.Forward({token}, npu_cache, backend));
            ASSERT_EQ(ref_logits.NumElements(), npu_logits.NumElements());
            const float* pr = ref_logits.Data<float>();
            const float* pn = npu_logits.Data<float>();
            const int64_t n = ref_logits.NumElements();
            int64_t ref_best = 0, npu_best = 0;
            for (int64_t i = 0; i < n; ++i) {
                const double diff = static_cast<double>(pr[i]) - pn[i];
                sq_err += diff * diff;
                max_abs = std::max(max_abs, std::abs(diff));
                if (pr[i] > pr[ref_best]) ref_best = i;
                if (pn[i] > pn[npu_best]) npu_best = i;
            }
            logit_count += n;
            ++steps;
            agree += ref_best == npu_best ? 1 : 0;
        }
    }
    const double top1 = static_cast<double>(agree) / steps;
    const double rmse = std::sqrt(sq_err / static_cast<double>(logit_count));

    EXPECT_GE(top1, kMinTop1Agreement);
    EXPECT_LE(rmse, kMaxLogitRmse);
    EXPECT_LE(max_abs, kMaxLogitAbsDiff);
    // NPU decode must actually diverge from fp32 (it quantizes): a zero
    // divergence means the backend silently routed decode to the CPU.
    EXPECT_GT(rmse, 0.0);

    // Golden band summary: verdicts only (not raw measurements, which may
    // shift in the last bits between FMA and non-FMA builds).
    std::string summary = StrFormat(
        "decode-npu divergence vs fp32 (tiny model, %d contexts x %d "
        "decode steps)\n",
        static_cast<int>(tiny_.eval_corpus.size()), kDecodeSteps);
    summary += StrFormat("top1_agreement >= %.2f: %s\n", kMinTop1Agreement,
                         top1 >= kMinTop1Agreement ? "within" : "OUTSIDE");
    summary += StrFormat("logit_rmse <= %.2f: %s\n", kMaxLogitRmse,
                         rmse <= kMaxLogitRmse ? "within" : "OUTSIDE");
    summary += StrFormat("logit_max_abs <= %.2f: %s\n", kMaxLogitAbsDiff,
                         max_abs <= kMaxLogitAbsDiff ? "within" : "OUTSIDE");
    summary += StrFormat("nonzero_divergence: %s\n",
                         rmse > 0.0 ? "yes" : "NO");
    EXPECT_TRUE(MatchesGolden("decode_npu_divergence.txt", summary));
}

// ------------------------------------- NPU-decode trace replay, e2e

class NpuDecodeReplayTest : public TinyModelTest
{
  protected:
    /** A served schedule from the real simulator with decode priced on
     *  the NPU (decode placement changes step composition: different
     *  token times and batching marginals reshape the trace). */
    ServingResult
    SimulateNpuDecodeTrace(int num_requests)
    {
        LlmNpuOptions options;
        options.decode_placement = DecodePlacement::kNpuQuant;
        LlmNpuEngine engine(options);
        ServingCostModel costs(engine, Qwen15_1_8B(),
                               SocSpec::RedmiK70Pro());
        ServingOptions serving;
        serving.policy = SchedPolicy::kFcfs;
        serving.num_requests = num_requests;
        serving.rate_rps = 100.0;  // overlapping requests => real batches
        serving.seed = 11;
        return ServingSimulator(costs, PaperDatasets(), serving).Run();
    }
};

TEST_F(NpuDecodeReplayTest, NpuDecodeScheduleReplaysBitwise)
{
    // The acceptance criterion: replaying an NPU-decode schedule on real
    // tensors reproduces per-sequence logits bitwise vs running each
    // sequence solo with the same placement.
    const ServingResult result = SimulateNpuDecodeTrace(5);

    Fp32LinearExecutor fp32(tiny_.weights);
    NpuShadowExecutor shadow(tiny_.weights, tiny_.profile, 0.5);
    DecodeBackend backend(fp32, shadow);
    ReplayPlacement placement;
    placement.prefill = DecodePlacement::kNpuQuant;
    placement.default_decode = DecodePlacement::kNpuQuant;
    ReplayOptions options;
    options.max_output_tokens = 64;  // replay every decode membership
    const ReplayOutcome outcome =
        ReplayServingTrace(result.replay_steps, result.records, tiny_.model,
                           backend, placement, options);
    EXPECT_TRUE(outcome.bitwise_match) << outcome.first_mismatch;
    EXPECT_EQ(outcome.sequences, 5);
    EXPECT_GT(outcome.prefill_steps, 0);
    EXPECT_GT(outcome.decode_steps, 0);
    EXPECT_EQ(outcome.truncated_memberships, 0);
    // Every decode linear crossed the handoff boundary.
    EXPECT_GT(backend.stats().npu_linear_calls, 0);
    EXPECT_GT(backend.stats().quantized_elems, 0);
}

TEST_F(NpuDecodeReplayTest, NpuDecodeProfileReshapesTheSchedule)
{
    // Sanity on the cost plane feeding the replayed schedule: the NPU
    // placement flows into the profile, with the engine-provided batching
    // marginal far below the serving default (one weight stream per step).
    LlmNpuOptions options;
    options.decode_placement = DecodePlacement::kNpuQuant;
    LlmNpuEngine engine(options);
    const ServingCostProfile profile = engine.ServingCosts(
        Qwen15_1_8B(), SocSpec::RedmiK70Pro(), {512, 16});
    EXPECT_EQ(profile.decode_placement, DecodePlacement::kNpuQuant);
    EXPECT_GE(profile.decode_batch_marginal, 0.0);
    EXPECT_LT(profile.decode_batch_marginal, 0.15);
    EXPECT_DOUBLE_EQ(profile.DecodeInterference(),
                     profile.npu_decode_interference);
    // NPU decode at B=1 pays the slower accelerator weight stream: a
    // single-token step costs more than the CPU-resident decode token.
    LlmNpuEngine cpu_engine;
    const ServingCostProfile cpu_profile = cpu_engine.ServingCosts(
        Qwen15_1_8B(), SocSpec::RedmiK70Pro(), {512, 16});
    EXPECT_GT(profile.decode_token_ms, cpu_profile.decode_token_ms);
    // Run()'s decode invariant holds for the NPU placement too.
    const EngineResult run = engine.Run(Qwen15_1_8B(),
                                        SocSpec::RedmiK70Pro(), {512, 16});
    EXPECT_NEAR(profile.decode_token_ms * 16, run.decode_ms,
                run.decode_ms * 1e-9);
}

}  // namespace
}  // namespace llmnpu
