/**
 * @file
 * Tests for the model layer: configs match the public model cards, synthetic
 * weights carry the injected outlier structure, and — the core §3.2
 * property — chunked prefill is exactly equivalent to one-shot prefill.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "src/model/config.h"
#include "src/model/transformer.h"
#include "src/model/weights.h"
#include "src/tensor/ops.h"

namespace llmnpu {
namespace {

TEST(ConfigTest, PaperModelsPresent)
{
    const auto models = PaperModels();
    ASSERT_EQ(models.size(), 5u);
    EXPECT_EQ(models[0].name, "Qwen1.5-1.8B");
    EXPECT_EQ(models[4].name, "Mistral-7B");
}

TEST(ConfigTest, QwenParameterCountNearNominal)
{
    const ModelConfig qwen = Qwen15_1_8B();
    const double billions =
        static_cast<double>(qwen.TotalParams()) / 1e9;
    EXPECT_GT(billions, 1.4);
    EXPECT_LT(billions, 2.1);
}

TEST(ConfigTest, Llama7BParameterCountNearNominal)
{
    const double billions =
        static_cast<double>(Llama2_7B().TotalParams()) / 1e9;
    EXPECT_GT(billions, 6.2);
    EXPECT_LT(billions, 7.2);
}

TEST(ConfigTest, GemmaUsesMqa)
{
    const ModelConfig gemma = Gemma2B();
    EXPECT_EQ(gemma.num_kv_heads, 1);
    EXPECT_EQ(gemma.num_heads * gemma.head_dim, 2048);
}

TEST(ConfigTest, MistralUsesGqa)
{
    const ModelConfig mistral = Mistral7B();
    EXPECT_EQ(mistral.num_heads / mistral.num_kv_heads, 4);
}

TEST(ConfigTest, LayerLinearsShapesChain)
{
    for (const auto& config : PaperModels()) {
        const auto specs = config.LayerLinears();
        // Gated models have 7 linears; non-gated 6.
        EXPECT_EQ(specs.size(), config.gated_ffn ? 7u : 6u) << config.name;
        for (const auto& spec : specs) {
            EXPECT_GT(spec.k, 0) << config.name;
            EXPECT_GT(spec.n, 0) << config.name;
        }
    }
}

TEST(ConfigTest, MaxContextMatchesTable1)
{
    EXPECT_EQ(Qwen15_1_8B().max_context, 32768);  // Table 1: 32K
    EXPECT_EQ(Gemma2B().max_context, 8192);       // Table 1: 8K
    EXPECT_EQ(Phi2_2_7B().max_context, 2048);     // Table 1: 2K
}

TEST(ConfigTest, ModelByNameRoundTrips)
{
    for (const auto& config : PaperModels()) {
        EXPECT_EQ(ModelByName(config.name).hidden_size, config.hidden_size);
    }
}

TEST(ConfigTest, ScaledProxyPreservesStructure)
{
    for (const auto& base : PaperModels()) {
        const ModelConfig proxy = ScaledProxy(base, 256, 4, 512);
        EXPECT_EQ(proxy.num_layers, 4);
        EXPECT_EQ(proxy.hidden_size, 256);
        EXPECT_EQ(proxy.gated_ffn, base.gated_ffn);
        EXPECT_EQ(proxy.norm == NormKind::kRMSNorm,
                  base.norm == NormKind::kRMSNorm);
        EXPECT_EQ(proxy.num_heads / proxy.num_kv_heads,
                  base.num_heads / base.num_kv_heads)
            << base.name;
        // FFN expansion ratio approximately preserved.
        const double base_ratio = static_cast<double>(base.ffn_hidden) /
                                  static_cast<double>(base.hidden_size);
        const double proxy_ratio = static_cast<double>(proxy.ffn_hidden) /
                                   static_cast<double>(proxy.hidden_size);
        EXPECT_NEAR(proxy_ratio, base_ratio, 0.2) << base.name;
    }
}

TEST(WeightsTest, DeterministicGeneration)
{
    const ModelConfig config = TinyTestConfig();
    ModelWeights a = GenerateSyntheticWeights(config);
    ModelWeights b = GenerateSyntheticWeights(config);
    EXPECT_TRUE(a.embedding.BitEquals(b.embedding));
    EXPECT_TRUE(a.layers[0].wq.BitEquals(b.layers[0].wq));
    EXPECT_EQ(a.hot_channels, b.hot_channels);
}

TEST(WeightsTest, DifferentSeedsDiffer)
{
    const ModelConfig config = TinyTestConfig();
    SyntheticWeightsOptions opts;
    opts.seed = 99;
    ModelWeights a = GenerateSyntheticWeights(config);
    ModelWeights b = GenerateSyntheticWeights(config, opts);
    EXPECT_FALSE(a.embedding.BitEquals(b.embedding));
}

TEST(WeightsTest, HotChannelsHaveAmplifiedNormGains)
{
    const ModelConfig config = TinyTestConfig();
    ModelWeights mw = GenerateSyntheticWeights(config);
    ASSERT_FALSE(mw.hot_channels.empty());
    const float* gamma = mw.layers[0].attn_norm_gamma.Data<float>();
    double hot_mean = 0.0, cold_mean = 0.0;
    int cold_count = 0;
    for (int64_t c = 0; c < config.hidden_size; ++c) {
        const bool hot = std::find(mw.hot_channels.begin(),
                                   mw.hot_channels.end(),
                                   static_cast<int>(c)) !=
                         mw.hot_channels.end();
        if (hot) {
            hot_mean += std::abs(gamma[c]) /
                        static_cast<double>(mw.hot_channels.size());
        } else {
            cold_mean += std::abs(gamma[c]);
            ++cold_count;
        }
    }
    cold_mean /= cold_count;
    EXPECT_GT(hot_mean, 4.0 * cold_mean);
}

TEST(WeightsTest, LinearAccessorCoversAllKinds)
{
    const ModelConfig config = TinyTestConfig();
    ModelWeights mw = GenerateSyntheticWeights(config);
    for (const auto& spec : config.LayerLinears()) {
        const Tensor& w = mw.Linear(0, spec.kind);
        EXPECT_EQ(w.Rows(), spec.k) << LinearKindName(spec.kind);
        EXPECT_EQ(w.Cols(), spec.n) << LinearKindName(spec.kind);
    }
}

TEST(KvCacheTest, AppendAndReadBack)
{
    // Chunks go to every layer in turn (Append enforces layer lockstep).
    KvCache cache(2, 8);
    Tensor k = Tensor::Full({3, 8}, 1.0f);
    Tensor v = Tensor::Full({3, 8}, 2.0f);
    cache.Append(0, k, v);
    EXPECT_EQ(cache.SeqLen(0), 3);
    EXPECT_EQ(cache.SeqLen(1), 0);
    EXPECT_EQ(cache.Keys(0).At(2, 7), 1.0f);
    EXPECT_EQ(cache.Values(0).At(0, 0), 2.0f);
    cache.Append(1, k, v);
    cache.Append(0, k, v);
    cache.Append(1, k, v);
    EXPECT_EQ(cache.SeqLen(0), 6);
    EXPECT_EQ(cache.SeqLen(1), 6);
    EXPECT_EQ(cache.SizeBytes(), 2 * 2 * 6 * 8 * 4);
}

class TransformerChunkTest : public ::testing::TestWithParam<int>
{};

TEST_P(TransformerChunkTest, ChunkedPrefillEqualsOneShot)
{
    // The enabling insight of §3.2: decoder-only models make chunked
    // prefill exact. Verified end-to-end through all blocks here.
    const int chunk = GetParam();
    const ModelConfig config = TinyTestConfig();
    ModelWeights mw = GenerateSyntheticWeights(config);
    Transformer model(mw);
    Fp32LinearExecutor fp32(mw);

    std::vector<int> tokens;
    for (int i = 0; i < 13; ++i) tokens.push_back((i * 37) % 256);

    KvCache full_cache = model.MakeCache();
    Tensor full = model.Forward(tokens, full_cache, fp32);

    KvCache chunk_cache = model.MakeCache();
    std::vector<Tensor> parts;
    for (size_t start = 0; start < tokens.size();
         start += static_cast<size_t>(chunk)) {
        const size_t len =
            std::min(static_cast<size_t>(chunk), tokens.size() - start);
        std::vector<int> part(tokens.begin() + static_cast<long>(start),
                              tokens.begin() + static_cast<long>(start + len));
        parts.push_back(model.Forward(part, chunk_cache, fp32));
    }

    int64_t row = 0;
    for (const Tensor& part : parts) {
        for (int64_t r = 0; r < part.Rows(); ++r, ++row) {
            EXPECT_LT(MaxAbsDiff(part.CopyRows(r, 1), full.CopyRows(row, 1)),
                      2e-3)
                << "chunk=" << chunk << " row=" << row;
        }
    }
    EXPECT_EQ(chunk_cache.SeqLen(), full_cache.SeqLen());
}

INSTANTIATE_TEST_SUITE_P(ChunkLens, TransformerChunkTest,
                         ::testing::Values(1, 2, 4, 5, 13));

TEST(TransformerTest, GenerateIsDeterministic)
{
    const ModelConfig config = TinyTestConfig();
    ModelWeights mw = GenerateSyntheticWeights(config);
    Transformer model(mw);
    Fp32LinearExecutor fp32(mw);
    const std::vector<int> prompt = {1, 2, 3, 4, 5};
    const auto a = model.Generate(prompt, 4, fp32);
    const auto b = model.Generate(prompt, 4, fp32);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 4u);
    for (int t : a) {
        EXPECT_GE(t, 0);
        EXPECT_LT(t, config.vocab_size);
    }
}

TEST(TransformerTest, LogitsShape)
{
    const ModelConfig config = TinyTestConfig();
    ModelWeights mw = GenerateSyntheticWeights(config);
    Transformer model(mw);
    Fp32LinearExecutor fp32(mw);
    KvCache cache = model.MakeCache();
    Tensor hidden = model.Forward({1, 2, 3}, cache, fp32);
    Tensor logits = model.Logits(hidden);
    EXPECT_EQ(logits.Rows(), 3);
    EXPECT_EQ(logits.Cols(), config.vocab_size);
}

TEST(TransformerTest, ActivationOutliersAppearAtHotChannels)
{
    // End-to-end check of the synthetic outlier mechanism: post-norm
    // activations (the quantizer inputs) spike at the injected channels.
    const ModelConfig config = TinyTestConfig();
    ModelWeights mw = GenerateSyntheticWeights(config);
    Transformer model(mw);

    std::vector<int> tokens;
    for (int i = 0; i < 24; ++i) tokens.push_back((i * 13 + 5) % 256);
    Tensor x = model.Embed(tokens);
    Tensor normed = RMSNorm(x, mw.layers[0].attn_norm_gamma);

    double hot_absmax = 0.0, cold_absmax = 0.0;
    for (int64_t r = 0; r < normed.Rows(); ++r) {
        for (int64_t c = 0; c < normed.Cols(); ++c) {
            const bool hot = std::find(mw.hot_channels.begin(),
                                       mw.hot_channels.end(),
                                       static_cast<int>(c)) !=
                             mw.hot_channels.end();
            const double a = std::abs(normed.At(r, c));
            if (hot) {
                hot_absmax = std::max(hot_absmax, a);
            } else {
                cold_absmax = std::max(cold_absmax, a);
            }
        }
    }
    EXPECT_GT(hot_absmax, 3.0 * cold_absmax);
}

}  // namespace
}  // namespace llmnpu
