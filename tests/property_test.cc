/**
 * @file
 * Property-based tests: invariants that must hold across randomized inputs
 * and parameter sweeps — timeline conservation laws on random DAGs, engine
 * monotonicity across prompt lengths and models, quantization invariants
 * across scales, and chunk-graph memory laws.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/core/chunk_graph.h"
#include "src/core/llmnpu_engine.h"
#include "src/engines/baselines.h"
#include "src/sim/timeline.h"
#include "src/tensor/matmul.h"
#include "src/tensor/quantize.h"
#include "src/util/rng.h"
#include "tests/support/timeline_asserts.h"

namespace llmnpu {
namespace {

// -------------------------------------------------- timeline conservation

/** Random DAG generator: edges only from lower to higher ids (acyclic). */
std::vector<SimTask>
RandomDag(uint64_t seed, int n)
{
    Rng rng(seed);
    std::vector<SimTask> tasks(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto& task = tasks[static_cast<size_t>(i)];
        task.unit = static_cast<Unit>(rng.UniformInt(3));
        task.duration_ms = rng.Uniform(0.1, 5.0);
        const int max_deps = std::min(i, 3);
        const int num_deps =
            static_cast<int>(rng.UniformInt(static_cast<uint64_t>(
                max_deps + 1)));
        for (int d = 0; d < num_deps; ++d) {
            task.deps.push_back(static_cast<int>(rng.UniformInt(
                static_cast<uint64_t>(i))));
        }
    }
    return tasks;
}

class TimelinePropertyTest : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(TimelinePropertyTest, ConservationLawsOnRandomDags)
{
    const auto tasks = RandomDag(GetParam(), 40);
    for (const TaskPicker& picker : {FifoPicker(), OooPicker()}) {
        const TimelineResult result = RunTimeline(tasks, picker);

        // Dependencies respected, one task per unit (Eq. 4), busy-time
        // conservation — the shared schedule-validity checks.
        EXPECT_TRUE(ScheduleIsValid(tasks, result));

        // Makespan bounds: at least the busiest unit, at most the sum of
        // all durations.
        std::array<double, kNumUnits> expected{};
        for (const auto& task : tasks) {
            expected[static_cast<size_t>(task.unit)] += task.duration_ms;
        }
        const double total = expected[0] + expected[1] + expected[2];
        const double busiest =
            std::max({expected[0], expected[1], expected[2]});
        EXPECT_GE(result.makespan_ms, busiest - 1e-9);
        EXPECT_LE(result.makespan_ms, total + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelinePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --------------------------------------------------- engine monotonicity

class EngineMonotonicityTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(EngineMonotonicityTest, PrefillGrowsWithPromptLength)
{
    const auto [engine_idx, model_idx] = GetParam();
    const SocSpec soc = SocSpec::RedmiK70Pro();
    const ModelConfig config = PaperModels()[static_cast<size_t>(model_idx)];
    auto baselines = MakePaperBaselines();
    LlmNpuEngine ours;
    InferenceEngine* engine =
        engine_idx == 0 ? static_cast<InferenceEngine*>(&ours)
                        : baselines[static_cast<size_t>(engine_idx - 1)].get();
    // Exactly 5 of the 30 grid points skip, by design, matching the §4.1
    // support matrix: each baseline framework only ships converters and
    // kernels for the model families its authors ported (MNN lacks
    // Gemma/Mistral, TFLite only serves its Google-family ports
    // Gemma/Phi-2). The paper's Table 5 reports these cells as "-" too, so
    // the right behaviour is to skip, not to fake a number. The pinned
    // matrix itself is asserted by EngineFixture.SupportMatrixMatchesPaper
    // and BaselineSupportMatrixPinsSkipCount below.
    //
    // Revisited when the serving layer landed: its ServingCosts() hook
    // gives every baseline a serving-cost decomposition (the default
    // monolithic one), but a cost hook cannot conjure the missing model
    // converters/kernels, so SupportsModel() was unchanged then (7 skips).
    //
    // Revisited again when decode-on-NPU landed: the per-group INT8 NPU
    // decode-graph converters cover dense-activation models without a
    // sparsity predictor, which is exactly what PowerInfer-V2 lacked for
    // Gemma-2B and Phi-2-2.7B — those two grid points now run (as
    // beyond-paper coverage; Table 5 leaves them "-"). MNN's and TFLite's
    // gaps are CPU/GPU converter gaps an NPU decode path cannot fill, so
    // their 5 skips remain.
    if (!engine->SupportsModel(config)) {
        GTEST_SKIP() << engine->Name() << " does not support " << config.name
                     << " (see §4.1 support matrix)";
    }

    double prev = 0.0;
    for (int prompt_len : {128, 512, 1536}) {
        const EngineResult result = engine->Run(config, soc, {prompt_len, 1});
        EXPECT_GT(result.prefill_ms, prev * 0.999)
            << engine->Name() << " " << config.name << " @" << prompt_len;
        EXPECT_GT(result.prefill_energy_mj, 0.0);
        EXPECT_GT(result.memory_bytes, 0);
        prev = result.prefill_ms;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineMonotonicityTest,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Range(0, 5)));

TEST(EnginePropertyTest, BaselineSupportMatrixPinsSkipCount)
{
    // Guards the 5 documented skips of the monotonicity grid above: if a
    // baseline gains or loses model support, this fails so the skip
    // documentation gets revisited rather than silently drifting.
    auto baselines = MakePaperBaselines();
    LlmNpuEngine ours;
    std::vector<InferenceEngine*> engines = {&ours};
    for (auto& baseline : baselines) engines.push_back(baseline.get());

    std::vector<std::string> unsupported;
    for (InferenceEngine* engine : engines) {
        for (const auto& config : PaperModels()) {
            if (!engine->SupportsModel(config)) {
                unsupported.push_back(engine->Name() + "/" + config.name);
            }
        }
    }
    const std::vector<std::string> expected = {
        "MNN-CPU/Gemma-2B",
        "MNN-CPU/Mistral-7B",
        "TFLite-GPU/Qwen1.5-1.8B",
        "TFLite-GPU/LlaMA-2-7B",
        "TFLite-GPU/Mistral-7B",
    };
    EXPECT_EQ(unsupported, expected);
}

TEST(EnginePropertyTest, DecodeGrowsWithOutputLength)
{
    const SocSpec soc = SocSpec::RedmiK70Pro();
    LlmNpuEngine ours;
    double prev = 0.0;
    for (int out : {1, 8, 32}) {
        const EngineResult result =
            ours.Run(Qwen15_1_8B(), soc, {256, out});
        EXPECT_GT(result.decode_ms, prev);
        prev = result.decode_ms;
    }
}

TEST(EnginePropertyTest, NpuDecodeTpotMonotoneInBatchSize)
{
    // The M=B decode matmul streams each weight panel once per step, so
    // growing the batch amortizes the stream: step latency is monotone
    // non-decreasing in B while per-token TPOT is monotone non-increasing.
    const SocSpec soc = SocSpec::RedmiK70Pro();
    LlmNpuOptions options;
    options.decode_placement = DecodePlacement::kNpuQuant;
    LlmNpuEngine engine(options);
    for (const ModelConfig& config :
         {Qwen15_1_8B(), Gemma2B(), Llama2_7B()}) {
        double prev_step = 0.0;
        double prev_tpot = 1e300;
        for (int batch : {1, 2, 4, 8}) {
            const auto step = engine.NpuDecodeStep(config, soc, 1024, batch);
            EXPECT_GT(step.npu_matvec_ms, 0.0) << config.name;
            EXPECT_GT(step.float_ms, 0.0) << config.name;
            EXPECT_GE(step.TotalMs(), prev_step) << config.name << " B="
                                                 << batch;
            const double tpot = step.TotalMs() / batch;
            EXPECT_LE(tpot, prev_tpot + 1e-12)
                << config.name << " B=" << batch;
            prev_step = step.TotalMs();
            prev_tpot = tpot;
        }
    }
}

TEST(EnginePropertyTest, BiggerModelsAreSlower)
{
    const SocSpec soc = SocSpec::RedmiK70Pro();
    LlmNpuEngine ours;
    const double small =
        ours.Run(Qwen15_1_8B(), soc, {1024, 1}).prefill_ms;
    const double large = ours.Run(Llama2_7B(), soc, {1024, 1}).prefill_ms;
    EXPECT_GT(large, small);
}

TEST(EnginePropertyTest, EnergyScalesWithLatencyAcrossPromptLens)
{
    // Energy and latency must move together for a single-processor engine.
    const SocSpec soc = SocSpec::RedmiK60Pro();
    LlamaCppEngine lcpp;
    const EngineResult a = lcpp.Run(Qwen15_1_8B(), soc, {256, 1});
    const EngineResult b = lcpp.Run(Qwen15_1_8B(), soc, {1024, 1});
    const double latency_ratio = b.prefill_ms / a.prefill_ms;
    const double energy_ratio = b.prefill_energy_mj / a.prefill_energy_mj;
    EXPECT_NEAR(latency_ratio, energy_ratio, latency_ratio * 0.01);
}

// ------------------------------------------------- quantization invariants

class QuantScaleSweep : public ::testing::TestWithParam<double>
{};

TEST_P(QuantScaleSweep, RoundTripErrorBoundedByHalfStep)
{
    const double magnitude = GetParam();
    Rng rng(static_cast<uint64_t>(magnitude * 1000));
    Tensor x({16, 32}, DType::kF32);
    float* p = x.Data<float>();
    for (int64_t i = 0; i < x.NumElements(); ++i) {
        p[i] = static_cast<float>(rng.Normal(0.0, magnitude));
    }
    const QuantParams params = ComputeSymmetricScale(x);
    Tensor round_trip = Dequantize(QuantizeSymmetric(x, params), params);
    EXPECT_LE(MaxAbsDiff(x, round_trip), params.scale * 0.5 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, QuantScaleSweep,
                         ::testing::Values(1e-3, 0.1, 1.0, 10.0, 1e3));

TEST(QuantInvariantTest, QuantizationIsScaleEquivariant)
{
    // Quantizing c*x with scale c*s gives identical int8 codes.
    Rng rng(77);
    Tensor x({4, 16}, DType::kF32);
    float* p = x.Data<float>();
    for (int64_t i = 0; i < x.NumElements(); ++i) {
        p[i] = static_cast<float>(rng.Normal());
    }
    Tensor x2 = x;
    float* p2 = x2.Data<float>();
    for (int64_t i = 0; i < x2.NumElements(); ++i) p2[i] *= 8.0f;

    const QuantParams s1 = ComputeSymmetricScale(x);
    const QuantParams s2 = ComputeSymmetricScale(x2);
    EXPECT_NEAR(s2.scale, s1.scale * 8.0f, s1.scale * 1e-3);
    EXPECT_TRUE(QuantizeSymmetric(x, s1).BitEquals(
        QuantizeSymmetric(x2, s2)));
}

// --------------------------------------------------- chunk graph memory laws

class ChunkMemoryLawTest : public ::testing::TestWithParam<int>
{};

TEST_P(ChunkMemoryLawTest, SharedMemoryGrowsSublinearlyInChunks)
{
    const int chunk_len = GetParam();
    for (const ModelConfig& config : PaperModels()) {
        ChunkGraphPlan shared(config, chunk_len, true);
        ChunkGraphPlan unshared(config, chunk_len, false);
        const int64_t shared_2 = shared.GraphMemoryBytes(2);
        const int64_t shared_8 = shared.GraphMemoryBytes(8);
        const int64_t unshared_2 = unshared.GraphMemoryBytes(2);
        const int64_t unshared_8 = unshared.GraphMemoryBytes(8);
        // Unshared replicates static graphs linearly; shared growth (only
        // the per-chunk attention buffers) is strictly slower.
        EXPECT_GE(unshared_8, 3 * unshared_2 / 2) << config.name;
        EXPECT_LT(static_cast<double>(shared_8) /
                      static_cast<double>(shared_2),
                  static_cast<double>(unshared_8) /
                      static_cast<double>(unshared_2))
            << config.name;
        // Sharing never uses more memory.
        EXPECT_LE(shared_8, unshared_8) << config.name;
    }
}

INSTANTIATE_TEST_SUITE_P(ChunkLens, ChunkMemoryLawTest,
                         ::testing::Values(64, 128, 256, 512));

// ----------------------------------------------------- failure injection

TEST(FailureInjectionDeathTest, NpuRegionExhaustionIsFatal)
{
    NpuRuntime runtime;
    NpuGraphDesc big;
    big.name = "big";
    big.num_ops = 1;
    big.const_bytes = 5ll * 1024 * 1024 * 1024;  // > 4 GB region
    EXPECT_EXIT(runtime.EnsureBuilt(big), ::testing::ExitedWithCode(1),
                "NPU memory region exhausted");
}

TEST(FailureInjectionDeathTest, MismatchedTimingsAreRejected)
{
    std::vector<std::vector<StageTiming>> bad(1);
    bad[0].resize(3);  // not num_layers * kStagesPerLayer
    EXPECT_DEATH(BuildPrefillDag(bad, 2), "CHECK failed");
}

TEST(FailureInjectionDeathTest, TensorTypePunningIsRejected)
{
    Tensor t = Tensor::Zeros({2, 2}, DType::kI8);
    EXPECT_DEATH(t.Data<float>(), "CHECK failed");
}

TEST(FailureInjectionDeathTest, UnknownModelIsFatal)
{
    EXPECT_EXIT(ModelByName("GPT-17"), ::testing::ExitedWithCode(1),
                "unknown model");
}

TEST(FailureInjectionDeathTest, MatMulShapeMismatchIsRejected)
{
    Tensor a = Tensor::Zeros({2, 3});
    Tensor b = Tensor::Zeros({4, 2});
    EXPECT_DEATH(MatMulF32(a, b), "CHECK failed");
}

}  // namespace
}  // namespace llmnpu
