/**
 * @file
 * Integration tests across engines: llm.npu's headline performance claims
 * (§4.2-§4.7) hold in shape on the simulated SoC — speedups over every
 * baseline, >1000 tok/s prefill, ablation monotonicity, energy savings,
 * bounded memory overhead, and GPU-NPU coordination behaviour.
 */
#include <gtest/gtest.h>

#include "src/core/llmnpu_engine.h"
#include "src/engines/baselines.h"
#include "src/workloads/datasets.h"
#include "tests/support/tiny_model.h"

namespace llmnpu {
namespace {

class EngineFixture : public PaperDeviceTest
{
  protected:
    InferenceRequest req1024_{1024, 1};
};

TEST(EngineResultTest, PrefillTokensPerSecGuardsZeroPrefill)
{
    // Regression: an empty/instant prefill (prefill_ms == 0, e.g. a
    // zero-length prompt priced by a degenerate engine) used to divide by
    // zero and return inf; throughput of nothing is defined as 0.
    EngineResult result;
    EXPECT_EQ(result.PrefillTokensPerSec(0), 0.0);
    EXPECT_EQ(result.PrefillTokensPerSec(128), 0.0);
    EXPECT_EQ(result.DecodeTokensPerSec(8), 0.0);
    result.prefill_ms = 500.0;
    EXPECT_DOUBLE_EQ(result.PrefillTokensPerSec(1000), 2000.0);
}

TEST(EngineResultTest, ThroughputHelpersMatchDefinitions)
{
    EngineResult result;
    result.prefill_ms = 250.0;
    result.decode_ms = 400.0;
    EXPECT_DOUBLE_EQ(result.DecodeTokensPerSec(8), 20.0);
    // TTFT: prefill plus one decode step.
    EXPECT_DOUBLE_EQ(result.TimeToFirstTokenMs(8), 300.0);
    EXPECT_DOUBLE_EQ(result.TimeToFirstTokenMs(0), 250.0);
    EXPECT_LT(result.TimeToFirstTokenMs(8), result.EndToEndMs());
}

TEST_F(EngineFixture, ResultHelpersConsistentOnRealEngine)
{
    // The serving layer and the benches share these helper definitions;
    // they must agree with the raw latency fields on a real run.
    LlmNpuEngine ours;
    const InferenceRequest req{1024, 16};
    const EngineResult result = ours.Run(qwen_, soc_, req);
    EXPECT_NEAR(result.DecodeTokensPerSec(req.output_len),
                req.output_len / (result.decode_ms / 1e3), 1e-6);
    EXPECT_GT(result.TimeToFirstTokenMs(req.output_len),
              result.prefill_ms);
    EXPECT_LT(result.TimeToFirstTokenMs(req.output_len),
              result.EndToEndMs());
}

TEST_F(EngineFixture, HeadlineQwenPrefillOver1000TokensPerSec)
{
    // §4.2: ">1000 tokens/sec prefilling for a billion-sized model".
    LlmNpuEngine ours;
    const EngineResult result = ours.Run(qwen_, soc_, req1024_);
    EXPECT_GT(result.PrefillTokensPerSec(1024), 1000.0);
}

TEST_F(EngineFixture, BeatsLlamaCppByPaperMagnitude)
{
    // Figure 14 @1024: 18.2-38.4x over llama.cpp-CPU; accept 10-60x.
    LlmNpuEngine ours;
    LlamaCppEngine lcpp;
    const double speedup = lcpp.Run(qwen_, soc_, req1024_).prefill_ms /
                           ours.Run(qwen_, soc_, req1024_).prefill_ms;
    EXPECT_GT(speedup, 10.0);
    EXPECT_LT(speedup, 60.0);
}

TEST_F(EngineFixture, BeatsMnnModerately)
{
    // Figure 14 @1024: ~7.3x over MNN-CPU; accept 3-20x.
    LlmNpuEngine ours;
    MnnCpuEngine mnn;
    const double speedup = mnn.Run(qwen_, soc_, req1024_).prefill_ms /
                           ours.Run(qwen_, soc_, req1024_).prefill_ms;
    EXPECT_GT(speedup, 3.0);
    EXPECT_LT(speedup, 20.0);
}

TEST_F(EngineFixture, BeatsMlcHeavily)
{
    // Figure 14 @1024: 32.5-43.6x over MLC-GPU; accept 15-80x.
    LlmNpuEngine ours;
    MlcGpuEngine mlc;
    const double speedup = mlc.Run(qwen_, soc_, req1024_).prefill_ms /
                           ours.Run(qwen_, soc_, req1024_).prefill_ms;
    EXPECT_GT(speedup, 15.0);
    EXPECT_LT(speedup, 80.0);
}

TEST_F(EngineFixture, BeatsTfliteGpuModestly)
{
    // Figure 14 @1024 (Gemma-2B): 1.27-2.34x over TFLite-GPU.
    LlmNpuEngine ours;
    TfliteEngine tflite(Unit::kGpu);
    const ModelConfig gemma = Gemma2B();
    const double speedup = tflite.Run(gemma, soc_, req1024_).prefill_ms /
                           ours.Run(gemma, soc_, req1024_).prefill_ms;
    EXPECT_GT(speedup, 1.05);
    EXPECT_LT(speedup, 4.0);
}

TEST_F(EngineFixture, BeatsPowerInferV2)
{
    // Figure 14 @1024: 3.28-5.32x over PowerInfer-V2; accept 2-8x.
    LlmNpuEngine ours;
    PowerInferV2Engine pi2;
    const ModelConfig llama = Llama2_7B();
    const double speedup = pi2.Run(llama, soc_, req1024_).prefill_ms /
                           ours.Run(llama, soc_, req1024_).prefill_ms;
    EXPECT_GT(speedup, 2.0);
    EXPECT_LT(speedup, 8.0);
}

TEST_F(EngineFixture, ShortPromptsBenefitLess)
{
    // §4.2: speedups at 64 tokens are smaller than at 1024 (padding +
    // reduced OoO headroom).
    LlmNpuEngine ours;
    LlamaCppEngine lcpp;
    const InferenceRequest req64{64, 1};
    const double speedup_64 = lcpp.Run(qwen_, soc_, req64).prefill_ms /
                              ours.Run(qwen_, soc_, req64).prefill_ms;
    const double speedup_1024 = lcpp.Run(qwen_, soc_, req1024_).prefill_ms /
                                ours.Run(qwen_, soc_, req1024_).prefill_ms;
    EXPECT_LT(speedup_64, speedup_1024);
    EXPECT_GT(speedup_64, 1.0);
}

TEST_F(EngineFixture, NaiveNpuSlowerThanCpu)
{
    // Figure 19: direct NPU offload is 2.55-2.68x *slower* than CPU.
    NaiveNpuEngine naive;
    LlamaCppEngine lcpp;
    const InferenceRequest req{512, 1};
    const double ratio = naive.Run(qwen_, soc_, req).prefill_ms /
                         lcpp.Run(qwen_, soc_, req).prefill_ms;
    EXPECT_GT(ratio, 1.3);
    EXPECT_LT(ratio, 5.0);
}

TEST_F(EngineFixture, AblationLadderIsMonotone)
{
    // Figure 19: each technique improves prefill speed.
    const InferenceRequest req{512, 1};

    LlmNpuOptions chunk_only;
    chunk_only.enable_shadow = false;
    chunk_only.enable_ooo = false;
    LlmNpuOptions chunk_outlier = chunk_only;
    chunk_outlier.enable_shadow = true;
    LlmNpuOptions full = chunk_outlier;
    full.enable_ooo = true;

    NaiveNpuEngine naive;
    LlmNpuEngine e_chunk(chunk_only);
    LlmNpuEngine e_outlier(chunk_outlier);
    LlmNpuEngine e_full(full);

    const double t_naive = naive.Run(qwen_, soc_, req).prefill_ms;
    const double t_chunk = e_chunk.Run(qwen_, soc_, req).prefill_ms;
    const double t_outlier = e_outlier.Run(qwen_, soc_, req).prefill_ms;
    const double t_full = e_full.Run(qwen_, soc_, req).prefill_ms;

    EXPECT_LT(t_chunk, t_naive);
    EXPECT_LT(t_outlier, t_chunk);
    EXPECT_LT(t_full, t_outlier);
    // Shadow-outlier (per-tensor) is the biggest single step (§4.7:
    // 3.91-8.68x), OoO contributes 18-44%.
    EXPECT_GT(t_chunk / t_outlier, 2.0);
    const double ooo_gain = t_outlier / t_full;
    EXPECT_GT(ooo_gain, 1.10);
    EXPECT_LT(ooo_gain, 1.80);
}

TEST_F(EngineFixture, OooReducesBubbleRate)
{
    // Figure 13: 37% bubble rate naive vs ~0.7% with OoO (we accept wider
    // bands: FIFO > 15%, OoO < 8%).
    LlmNpuOptions fifo_options;
    fifo_options.enable_ooo = false;
    LlmNpuEngine fifo_engine(fifo_options);
    LlmNpuEngine ooo_engine;
    const double fifo_bubble =
        fifo_engine.Run(qwen_, soc_, req1024_).npu_bubble_rate;
    const double ooo_bubble =
        ooo_engine.Run(qwen_, soc_, req1024_).npu_bubble_rate;
    EXPECT_GT(fifo_bubble, 0.15);
    EXPECT_LT(ooo_bubble, 0.08);
    EXPECT_LT(ooo_bubble, fifo_bubble);
}

TEST_F(EngineFixture, EnergySavingsVsCpuInPaperBand)
{
    // Figure 15 @1024: 35.6-59.5x vs llama.cpp-CPU; accept 15-90x.
    const SocSpec k60 = SocSpec::RedmiK60Pro();
    LlmNpuEngine ours;
    LlamaCppEngine lcpp;
    const double ratio = lcpp.Run(qwen_, k60, req1024_).prefill_energy_mj /
                         ours.Run(qwen_, k60, req1024_).prefill_energy_mj;
    EXPECT_GT(ratio, 15.0);
    EXPECT_LT(ratio, 90.0);
}

TEST_F(EngineFixture, EnergySavingsVsGpuInPaperBand)
{
    // Figure 15 @1024 (Gemma): 1.85-4.32x vs TFLite-GPU; accept 1.2-8x.
    const SocSpec k60 = SocSpec::RedmiK60Pro();
    LlmNpuEngine ours;
    TfliteEngine tflite(Unit::kGpu);
    const ModelConfig gemma = Gemma2B();
    const double ratio = tflite.Run(gemma, k60, req1024_).prefill_energy_mj /
                         ours.Run(gemma, k60, req1024_).prefill_energy_mj;
    EXPECT_GT(ratio, 1.2);
    EXPECT_LT(ratio, 8.0);
}

TEST_F(EngineFixture, MemoryOverheadBounded)
{
    // Figure 17: ours consumes up to ~1.32x llama.cpp's memory.
    LlmNpuEngine ours;
    LlamaCppEngine lcpp;
    const ModelConfig gemma = Gemma2B();
    const InferenceRequest req{512, 1};
    const double ratio =
        static_cast<double>(ours.Run(gemma, soc_, req).memory_bytes) /
        static_cast<double>(lcpp.Run(gemma, soc_, req).memory_bytes);
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 1.6);
}

TEST_F(EngineFixture, GpuNpuCoordinationMatchesPrefillButCutsE2e)
{
    // Figure 18: GPU-NPU prefill ~= CPU-NPU prefill; end-to-end drops
    // thanks to faster decode.
    LlmNpuOptions gpu_options;
    gpu_options.use_gpu_float = true;
    LlmNpuEngine cpu_npu;
    LlmNpuEngine gpu_npu(gpu_options);
    const ModelConfig gemma = Gemma2B();
    const InferenceRequest req{1024, 8};
    const EngineResult with_cpu = cpu_npu.Run(gemma, soc_, req);
    const EngineResult with_gpu = gpu_npu.Run(gemma, soc_, req);
    EXPECT_NEAR(with_gpu.prefill_ms / with_cpu.prefill_ms, 1.0, 0.10);
    EXPECT_LT(with_gpu.decode_ms, with_cpu.decode_ms);
    EXPECT_LT(with_gpu.EndToEndMs(), with_cpu.EndToEndMs());
}

TEST_F(EngineFixture, PrefillDominatesE2eOnLongPrompts)
{
    // Figure 1: prefill is 88-99% of end-to-end latency on CPU engines for
    // long-prompt/short-output workloads.
    LlamaCppEngine lcpp;
    const InferenceRequest req = Longbench2WikiProfile().Typical();
    const EngineResult result = lcpp.Run(qwen_, soc_, req);
    const double share = result.prefill_ms / result.EndToEndMs();
    EXPECT_GT(share, 0.88);
}

TEST_F(EngineFixture, DecodeShareGrowsWithOutputLength)
{
    LlamaCppEngine lcpp;
    const InferenceRequest chat = PersonaChatProfile().Typical();
    const EngineResult result = lcpp.Run(qwen_, soc_, chat);
    const double prefill_share = result.prefill_ms / result.EndToEndMs();
    EXPECT_LT(prefill_share, 0.88);  // chat summary: decode matters
}

TEST_F(EngineFixture, PreparationAmortizedOnlyWhenChunked)
{
    LlmNpuEngine chunked;
    LlmNpuOptions naive_options;
    naive_options.enable_chunking = false;
    LlmNpuEngine unchunked(naive_options);
    const EngineResult a = chunked.Run(qwen_, soc_, req1024_);
    const EngineResult b = unchunked.Run(qwen_, soc_, req1024_);
    // Chunked: preparation is offline; prefill excludes it.
    EXPECT_LT(a.prefill_ms, a.prepare_ms + a.prefill_ms);
    // Unchunked: the rebuild lands inside prefill, dominating it.
    EXPECT_GT(b.prefill_ms, b.prepare_ms * 0.9);
    EXPECT_GT(b.prefill_ms, a.prefill_ms * 2.0);
}

TEST_F(EngineFixture, SevenBModelsStillFasterThanCpu)
{
    // The 4 GB NPU region forces graph swapping on LlaMA-2-7B, but llm.npu
    // must stay far ahead of CPU baselines (Table 5).
    LlmNpuEngine ours;
    LlamaCppEngine lcpp;
    const ModelConfig llama = Llama2_7B();
    const double speedup = lcpp.Run(llama, soc_, req1024_).prefill_ms /
                           ours.Run(llama, soc_, req1024_).prefill_ms;
    EXPECT_GT(speedup, 8.0);
}

TEST_F(EngineFixture, AllPaperModelsRunEndToEnd)
{
    LlmNpuEngine ours;
    for (const auto& config : PaperModels()) {
        const EngineResult result = ours.Run(config, soc_, {256, 4});
        EXPECT_GT(result.prefill_ms, 0.0) << config.name;
        EXPECT_GT(result.decode_ms, 0.0) << config.name;
        EXPECT_GT(result.prefill_energy_mj, 0.0) << config.name;
        EXPECT_GT(result.memory_bytes, config.MatMulParams()) << config.name;
    }
}

TEST_F(EngineFixture, Gen2DeviceSlowerThanGen3)
{
    LlmNpuEngine ours;
    const SocSpec k60 = SocSpec::RedmiK60Pro();
    EXPECT_GT(ours.Run(qwen_, k60, req1024_).prefill_ms,
              ours.Run(qwen_, soc_, req1024_).prefill_ms);
}

TEST_F(EngineFixture, SupportMatrixMatchesPaper)
{
    MnnCpuEngine mnn;
    TfliteEngine tflite(Unit::kGpu);
    PowerInferV2Engine pi2;
    EXPECT_TRUE(mnn.SupportsModel(Qwen15_1_8B()));
    EXPECT_FALSE(mnn.SupportsModel(Gemma2B()));
    EXPECT_TRUE(tflite.SupportsModel(Gemma2B()));
    EXPECT_FALSE(tflite.SupportsModel(Llama2_7B()));
    EXPECT_TRUE(pi2.SupportsModel(Llama2_7B()));
    // Covered since the decode-on-NPU converters landed: dense-activation
    // models no longer need PowerInfer's sparsity predictor (beyond-paper
    // coverage; Table 5 leaves the cell "-").
    EXPECT_TRUE(pi2.SupportsModel(Gemma2B()));
}

TEST_F(EngineFixture, ChunkLen256NearOptimal)
{
    // Figure 8: 256 is the sweet spot for the evaluated models/devices.
    auto prefill_with_chunk = [&](int chunk_len) {
        LlmNpuOptions options;
        options.chunk_len = chunk_len;
        LlmNpuEngine engine(options);
        return engine.Run(qwen_, soc_, req1024_).prefill_ms;
    };
    const double t32 = prefill_with_chunk(32);
    const double t256 = prefill_with_chunk(256);
    EXPECT_LT(t256, t32);
}

}  // namespace
}  // namespace llmnpu
