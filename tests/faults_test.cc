/**
 * @file
 * Fault-plane tests: deterministic counter-based injection (same
 * coordinates -> same draw, order-independent), the thermal model's
 * heat/cool/ramp arithmetic, option validation death tests, and the
 * degraded-mode serving scenarios end to end — zero-rate bit-identity with
 * the legacy simulator, retry/shed termination under fault storms, the
 * NPU->CPU circuit-breaker failover replaying bitwise on real tensors,
 * mid-run pool shrink staying within the shrunk budget, brownout shedding,
 * and deadline expiry while queued.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/core/llmnpu_engine.h"
#include "src/core/shadow_executor.h"
#include "src/model/decode_backend.h"
#include "src/serving/faults.h"
#include "src/serving/replay.h"
#include "src/serving/simulator.h"
#include "src/sim/thermal.h"
#include "tests/support/timeline_asserts.h"
#include "tests/support/tiny_model.h"

namespace llmnpu {
namespace {

// ------------------------------------------------ fault oracle determinism

TEST(FaultPlaneTest, DrawsArePureFunctionsOfCoordinates)
{
    FaultOptions options;
    options.chunk_failure_prob = 0.3;
    options.chunk_stall_prob = 0.2;
    options.decode_failure_prob = 0.25;
    const FaultPlane a(options);
    const FaultPlane b(options);
    // Query b in scrambled order and interleaved with unrelated draws: the
    // oracle is stateless, so history cannot change any answer.
    for (int request = 7; request >= 0; --request) {
        b.DecodeFaults(request + 100, 0, 0);
        b.ChunkFailFraction(request, request, request);
    }
    for (int request = 0; request < 8; ++request) {
        for (int chunk = 0; chunk < 4; ++chunk) {
            for (int attempt = 0; attempt < 3; ++attempt) {
                EXPECT_EQ(a.Chunk(request, chunk, attempt),
                          b.Chunk(request, chunk, attempt));
                EXPECT_DOUBLE_EQ(
                    a.ChunkFailFraction(request, chunk, attempt),
                    b.ChunkFailFraction(request, chunk, attempt));
                EXPECT_EQ(a.DecodeFaults(request, chunk, attempt),
                          b.DecodeFaults(request, chunk, attempt));
            }
        }
    }
}

TEST(FaultPlaneTest, SeedSelectsAnIndependentFaultPattern)
{
    FaultOptions options;
    options.chunk_failure_prob = 0.3;
    const FaultPlane a(options);
    options.seed = options.seed ^ 0x5eedULL;
    const FaultPlane b(options);
    int differs = 0;
    for (int request = 0; request < 64; ++request) {
        if (a.Chunk(request, 0, 0) != b.Chunk(request, 0, 0)) ++differs;
    }
    EXPECT_GT(differs, 0);
}

TEST(FaultPlaneTest, EmpiricalRatesTrackConfiguredProbabilities)
{
    FaultOptions options;
    options.chunk_failure_prob = 0.3;
    options.chunk_stall_prob = 0.1;
    options.decode_failure_prob = 0.2;
    const FaultPlane plane(options);
    int fails = 0, stalls = 0, decode_faults = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const FaultPlane::ChunkFate fate = plane.Chunk(i, i % 7, 0);
        fails += fate == FaultPlane::ChunkFate::kFail;
        stalls += fate == FaultPlane::ChunkFate::kStall;
        decode_faults += plane.DecodeFaults(i, i % 13, 0);
    }
    EXPECT_NEAR(static_cast<double>(fails) / n, 0.3, 0.03);
    // Stall is drawn only when the failure draw passed (~0.7 of attempts).
    EXPECT_NEAR(static_cast<double>(stalls) / n, 0.7 * 0.1, 0.02);
    EXPECT_NEAR(static_cast<double>(decode_faults) / n, 0.2, 0.03);
}

TEST(FaultPlaneTest, ZeroRatesNeverFault)
{
    const FaultPlane plane{FaultOptions{}};
    for (int i = 0; i < 256; ++i) {
        EXPECT_EQ(plane.Chunk(i, i, i), FaultPlane::ChunkFate::kOk);
        EXPECT_FALSE(plane.DecodeFaults(i, i, i));
    }
}

TEST(FaultPlaneTest, BackoffIsCappedExponential)
{
    FaultOptions options;
    options.retry_backoff_ms = 2.0;
    options.retry_backoff_cap_ms = 64.0;
    const FaultPlane plane(options);
    EXPECT_DOUBLE_EQ(plane.BackoffMs(1), 2.0);
    EXPECT_DOUBLE_EQ(plane.BackoffMs(2), 4.0);
    EXPECT_DOUBLE_EQ(plane.BackoffMs(3), 8.0);
    EXPECT_DOUBLE_EQ(plane.BackoffMs(6), 64.0);
    EXPECT_DOUBLE_EQ(plane.BackoffMs(7), 64.0);   // capped
    EXPECT_DOUBLE_EQ(plane.BackoffMs(500), 64.0); // no overflow blowup
}

TEST(FaultPlaneTest, FailFractionStaysInsideTheChunk)
{
    FaultOptions options;
    options.chunk_failure_prob = 0.5;
    const FaultPlane plane(options);
    for (int i = 0; i < 512; ++i) {
        const double f = plane.ChunkFailFraction(i, i % 5, i % 3);
        EXPECT_GE(f, 0.05);
        EXPECT_LE(f, 0.95);
    }
}

// ------------------------------------------------------- thermal model

TEST(ThermalModelTest, DisabledModelIsInert)
{
    ThermalModel model{ThermalOptions{}};
    const double t0 = model.temperature_c();
    model.Advance(1e6, /*npu_busy=*/true);
    EXPECT_DOUBLE_EQ(model.temperature_c(), t0);
    EXPECT_DOUBLE_EQ(model.ServiceScale(), 1.0);
    EXPECT_FALSE(model.Throttled());
}

TEST(ThermalModelTest, BusyHeatsIdleCoolsTowardAmbient)
{
    ThermalOptions options;
    options.enabled = true;
    options.heat_c_per_busy_ms = 0.05;
    options.cool_tau_ms = 1000.0;
    ThermalModel model(options);
    model.Advance(500.0, /*npu_busy=*/true);
    const double hot = model.temperature_c();
    EXPECT_GT(hot, options.start_c);
    model.Advance(200.0, /*npu_busy=*/false);
    const double cooler = model.temperature_c();
    EXPECT_LT(cooler, hot);
    EXPECT_GT(cooler, options.ambient_c);
    // Long idle converges to ambient (exponentially, never below).
    for (int i = 0; i < 100; ++i) model.Advance(1000.0, false);
    EXPECT_NEAR(model.temperature_c(), options.ambient_c, 1e-6);
}

TEST(ThermalModelTest, ThrottleRampIsLinearAndClamped)
{
    ThermalOptions options;
    options.enabled = true;
    options.throttle_start_c = 70.0;
    options.throttle_full_c = 90.0;
    options.max_slowdown = 3.0;
    options.cool_tau_ms = 1e12;  // effectively no cooling: exact heating
    options.heat_c_per_busy_ms = 1.0;
    ThermalModel model(options);
    EXPECT_DOUBLE_EQ(model.ServiceScale(), 1.0);
    EXPECT_FALSE(model.Throttled());

    model.Advance(55.0, true);  // 25 + 55 = 80 C: ramp midpoint
    EXPECT_NEAR(model.temperature_c(), 80.0, 1e-9);
    EXPECT_TRUE(model.Throttled());
    EXPECT_NEAR(model.ServiceScale(), 2.0, 1e-9);

    model.Advance(100.0, true);  // far past throttle_full_c
    EXPECT_DOUBLE_EQ(model.ServiceScale(), 3.0);  // clamped
}

// ------------------------------------------------- validation death tests

using FaultValidationDeathTest = ::testing::Test;

TEST(FaultValidationDeathTest, RejectsOutOfRangeProbabilities)
{
    FaultOptions options;
    options.chunk_failure_prob = 1.5;
    EXPECT_DEATH(options.Validate(), "fatal");
    options = FaultOptions{};
    options.decode_failure_prob = -0.1;
    EXPECT_DEATH(options.Validate(), "fatal");
    options = FaultOptions{};
    options.chunk_failure_prob = 0.6;
    options.chunk_stall_prob = 0.5;  // sum >= 1: every attempt would die
    EXPECT_DEATH(options.Validate(), "fatal");
}

TEST(FaultValidationDeathTest, RejectsNonsensicalDefenses)
{
    FaultOptions options;
    options.timeout_factor = 1.0;  // watchdog at exactly the service time
    EXPECT_DEATH(options.Validate(), "fatal");
    options = FaultOptions{};
    options.retry_backoff_cap_ms = 0.5;  // cap below the base
    EXPECT_DEATH(options.Validate(), "fatal");
    options = FaultOptions{};
    options.max_attempts = 0;
    EXPECT_DEATH(options.Validate(), "fatal");
}

TEST(FaultValidationDeathTest, RejectsBadShrinkAndThermal)
{
    FaultOptions options;
    options.pool_shrink_at_ms = 100.0;
    options.pool_shrink_to = 0.0;  // would shrink the pool to nothing
    EXPECT_DEATH(options.Validate(), "fatal");
    options = FaultOptions{};
    options.thermal.enabled = true;
    options.thermal.throttle_full_c = options.thermal.throttle_start_c;
    EXPECT_DEATH(options.Validate(), "fatal");
    options = FaultOptions{};
    options.thermal.enabled = true;
    options.thermal.max_slowdown = 0.5;  // a speedup is not a throttle
    EXPECT_DEATH(options.Validate(), "fatal");
}

TEST(FaultValidationDeathTest, ServingOptionsValidateIsLoud)
{
    ServingOptions options;
    options.num_requests = 0;
    EXPECT_DEATH(options.Validate(), "fatal");
    options = ServingOptions{};
    options.rate_rps = 0.0;
    EXPECT_DEATH(options.Validate(), "fatal");
    options = ServingOptions{};
    options.kv_pool_pages = -4;
    EXPECT_DEATH(options.Validate(), "fatal");
    options = ServingOptions{};
    options.kv_page_size = 0;
    EXPECT_DEATH(options.Validate(), "fatal");
    options = ServingOptions{};
    options.max_decode_batch = 0;
    EXPECT_DEATH(options.Validate(), "fatal");
    options = ServingOptions{};
    options.closed_loop = true;
    options.num_clients = 0;
    EXPECT_DEATH(options.Validate(), "fatal");
    options = ServingOptions{};
    options.shed_expired_queued = true;
    options.slo_factor = 0.0;  // expiry shedding needs deadlines
    EXPECT_DEATH(options.Validate(), "fatal");
    options = ServingOptions{};
    options.faults.chunk_failure_prob = 2.0;  // forwarded to faults
    EXPECT_DEATH(options.Validate(), "fatal");
}

// --------------------------------------------- degraded-mode serving runs

class FaultServingTest : public PaperDeviceTest
{
  protected:
    ServingResult
    Run(const ServingOptions& options,
        DecodePlacement decode_placement = DecodePlacement::kCpuFloat)
    {
        LlmNpuOptions engine_options;
        engine_options.decode_placement = decode_placement;
        LlmNpuEngine engine(engine_options);
        ServingCostModel costs(engine, qwen_, soc_);
        return ServingSimulator(costs, PaperDatasets(), options).Run();
    }

    /** Options for a modest overlapping-load run. */
    static ServingOptions
    BaseOptions(int num_requests = 10, double rate_rps = 20.0)
    {
        ServingOptions options;
        options.policy = SchedPolicy::kFcfs;
        options.num_requests = num_requests;
        options.rate_rps = rate_rps;
        options.seed = 17;
        return options;
    }

    /** Asserts two runs produced bit-identical schedules and timings. */
    static void
    ExpectBitIdentical(const ServingResult& a, const ServingResult& b)
    {
        EXPECT_EQ(a.makespan_ms, b.makespan_ms);
        EXPECT_EQ(a.npu_busy_ms, b.npu_busy_ms);
        EXPECT_EQ(a.decode_busy_ms, b.decode_busy_ms);
        ASSERT_EQ(a.records.size(), b.records.size());
        for (size_t i = 0; i < a.records.size(); ++i) {
            EXPECT_EQ(a.records[i].first_dispatch_ms,
                      b.records[i].first_dispatch_ms);
            EXPECT_EQ(a.records[i].prefill_done_ms,
                      b.records[i].prefill_done_ms);
            EXPECT_EQ(a.records[i].first_token_ms,
                      b.records[i].first_token_ms);
            EXPECT_EQ(a.records[i].finish_ms, b.records[i].finish_ms);
            EXPECT_EQ(a.records[i].tokens_out, b.records[i].tokens_out);
        }
        ASSERT_EQ(a.replay_steps.size(), b.replay_steps.size());
        for (size_t i = 0; i < a.replay_steps.size(); ++i) {
            EXPECT_EQ(a.replay_steps[i].is_prefill,
                      b.replay_steps[i].is_prefill);
            EXPECT_EQ(a.replay_steps[i].request_ids,
                      b.replay_steps[i].request_ids);
            EXPECT_EQ(a.replay_steps[i].chunk_index,
                      b.replay_steps[i].chunk_index);
        }
        EXPECT_EQ(a.trace_tasks.size(), b.trace_tasks.size());
    }

    /** Every admitted request reached a terminal state: completed, or shed
     *  with its accounting stamped. */
    static void
    ExpectAllTerminated(const ServingResult& result)
    {
        for (const RequestRecord& record : result.records) {
            if (record.rejected) continue;
            if (record.shed) {
                EXPECT_FALSE(record.Completed())
                    << "request " << record.request.id;
                EXPECT_GE(record.shed_ms, record.request.arrival_ms);
                EXPECT_FALSE(record.MetSlo());
            } else {
                EXPECT_TRUE(record.Completed())
                    << "request " << record.request.id;
                EXPECT_EQ(record.tokens_out, record.request.output_len);
            }
        }
    }
};

TEST_F(FaultServingTest, ZeroRateFaultPlaneIsBitIdenticalToLegacy)
{
    // Every defense parameter changed, every injection rate zero: the
    // fault plane must be invisible — the run is bit-identical to one with
    // a default-constructed (fully disabled) FaultOptions.
    const ServingOptions legacy = BaseOptions();
    ServingOptions armed = legacy;
    armed.faults.seed = 0xdeadULL;
    armed.faults.timeout_factor = 16.0;
    armed.faults.retry_backoff_ms = 0.5;
    armed.faults.retry_backoff_cap_ms = 128.0;
    armed.faults.max_attempts = 2;
    armed.faults.circuit_breaker_k = 1;
    const ServingResult a = Run(legacy);
    const ServingResult b = Run(armed);
    EXPECT_EQ(a.faults, 0);
    EXPECT_EQ(b.faults, 0);
    EXPECT_EQ(b.shed, 0);
    EXPECT_EQ(b.npu_faulted_ms, 0.0);
    ExpectBitIdentical(a, b);
    // Zero-rate runs record no per-step placements: the replay bridge sees
    // exactly the legacy trace shape.
    for (const ReplayStep& step : b.replay_steps) {
        EXPECT_TRUE(step.placements.empty());
    }
}

TEST_F(FaultServingTest, TransientChunkFaultsRetryAndStillComplete)
{
    ServingOptions options = BaseOptions();
    options.faults.chunk_failure_prob = 0.2;
    options.faults.chunk_stall_prob = 0.1;
    const ServingResult result = Run(options);

    EXPECT_GT(result.faults, 0);
    EXPECT_GT(result.retries, 0);
    // Faulted occupancy is discarded work, accounted separately from the
    // honest busy time.
    EXPECT_GT(result.npu_faulted_ms, 0.0);
    EXPECT_LE(result.npu_busy_ms, result.makespan_ms + 1e-9);
    ExpectAllTerminated(result);
    // The executed trace is still a valid schedule (one task per unit at a
    // time), and faulted attempts never produced replay steps: the
    // serving->numeric bridge stays parallel.
    EXPECT_TRUE(ScheduleIsValid(result.trace_tasks, result.trace));
    ASSERT_EQ(result.replay_steps.size(), result.trace_tasks.size());
    // Retries delayed completions: makespan must not beat the clean run.
    const ServingResult clean = Run(BaseOptions());
    EXPECT_GT(result.makespan_ms, clean.makespan_ms);
}

TEST_F(FaultServingTest, SameSeedSameStorm)
{
    ServingOptions options = BaseOptions();
    options.faults.chunk_failure_prob = 0.3;
    options.faults.chunk_stall_prob = 0.15;
    const ServingResult a = Run(options);
    const ServingResult b = Run(options);
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.npu_faulted_ms, b.npu_faulted_ms);
    ExpectBitIdentical(a, b);
}

TEST_F(FaultServingTest, FaultStormTerminatesWithinTheShrunkBudget)
{
    // The acceptance stress: heavy chunk failures + stalls + NPU decode
    // faults + a mid-run pool shrink to 25%. The run must terminate with
    // every admitted request completed or shed, and after the shrink the
    // pool never exceeds the live budget.
    ServingOptions options = BaseOptions(/*num_requests=*/12,
                                         /*rate_rps=*/50.0);
    options.kv_pool_pages = 88;
    options.faults.chunk_failure_prob = 0.5;
    options.faults.chunk_stall_prob = 0.2;
    options.faults.decode_failure_prob = 0.5;
    options.faults.max_attempts = 4;
    options.faults.pool_shrink_at_ms = 400.0;
    options.faults.pool_shrink_to = 0.25;
    const ServingResult result = Run(options, DecodePlacement::kNpuQuant);

    EXPECT_GT(result.faults, 0);
    ExpectAllTerminated(result);
    EXPECT_EQ(result.kv_pool_pages_live, 22);  // 88 * 0.25
    EXPECT_LE(result.kv_pages_peak_post_shrink, result.kv_pool_pages_live);
    EXPECT_LE(result.kv_pages_peak, result.kv_pool_pages);
    EXPECT_TRUE(ScheduleIsValid(result.trace_tasks, result.trace));
}

TEST_F(FaultServingTest, PoolShrinkAloneEvictsOrShedsAndTerminates)
{
    // Memory pressure without transient faults: the shrink routes through
    // the termination-safe eviction order, so the run still completes and
    // the post-shrink peak respects the live budget.
    ServingOptions options = BaseOptions(/*num_requests=*/10,
                                         /*rate_rps=*/50.0);
    options.kv_pool_pages = 90;
    options.faults.pool_shrink_at_ms = 300.0;
    options.faults.pool_shrink_to = 0.3;
    const ServingResult result = Run(options);

    EXPECT_EQ(result.faults, 0);
    EXPECT_EQ(result.kv_pool_pages_live, 27);
    EXPECT_LE(result.kv_pages_peak_post_shrink, result.kv_pool_pages_live);
    // The shrink had to take pages back from someone.
    EXPECT_GT(result.evictions + result.shed, 0);
    ExpectAllTerminated(result);
}

TEST_F(FaultServingTest, ThermalThrottlingStretchesTheRun)
{
    ServingOptions options = BaseOptions();
    options.faults.thermal.enabled = true;
    options.faults.thermal.heat_c_per_busy_ms = 0.5;
    options.faults.thermal.cool_tau_ms = 5000.0;
    options.faults.thermal.throttle_start_c = 40.0;
    options.faults.thermal.throttle_full_c = 60.0;
    options.faults.thermal.max_slowdown = 2.5;
    const ServingResult hot = Run(options);
    const ServingResult cool = Run(BaseOptions());

    EXPECT_GT(hot.peak_temp_c, 40.0);
    EXPECT_GT(hot.npu_throttled_frac, 0.0);
    EXPECT_LE(hot.npu_throttled_frac, 1.0);
    EXPECT_GT(hot.makespan_ms, cool.makespan_ms);
    ExpectAllTerminated(hot);
}

TEST_F(FaultServingTest, BrownoutShedsInfeasibleQueuedWork)
{
    // Aggressive heating + a tight SLO + overload: once throttled, queued
    // requests whose deadlines are no longer feasible are shed instead of
    // burning hot cycles on lost causes.
    ServingOptions options = BaseOptions(/*num_requests=*/14,
                                         /*rate_rps=*/50.0);
    options.slo_factor = 1.5;
    options.faults.thermal.enabled = true;
    options.faults.thermal.heat_c_per_busy_ms = 0.5;
    options.faults.thermal.cool_tau_ms = 5000.0;
    options.faults.thermal.throttle_start_c = 35.0;
    options.faults.thermal.throttle_full_c = 55.0;
    options.faults.thermal.max_slowdown = 3.0;
    options.faults.brownout_shedding = true;
    const ServingResult result = Run(options);

    EXPECT_GT(result.npu_throttled_frac, 0.0);
    EXPECT_GT(result.shed, 0);
    ExpectAllTerminated(result);
    // Shed requests are SLO misses, never goodput: the report's completed
    // count excludes every one of them.
    const ServingReport report = result.Report();
    EXPECT_EQ(report.shed, result.shed);
    EXPECT_EQ(report.completed + report.shed, report.admitted);
}

TEST_F(FaultServingTest, QueuedDeadlineExpiryShedsAndReleasesPages)
{
    // Overload with tight deadlines and expiry shedding on: requests whose
    // deadline passes while still queued are shed at the deadline (an SLO
    // miss, never goodput) and their reserved pages return to the pool.
    ServingOptions options = BaseOptions(/*num_requests=*/16,
                                         /*rate_rps=*/100.0);
    options.slo_factor = 1.2;
    options.kv_pool_pages = 88;
    options.shed_expired_queued = true;
    const ServingResult result = Run(options);

    EXPECT_GT(result.shed, 0);
    ExpectAllTerminated(result);
    int queued_sheds = 0;
    for (const RequestRecord& record : result.records) {
        if (!record.shed) continue;
        // Shed at (not before) the deadline, never after completing.
        EXPECT_GE(record.shed_ms, record.request.deadline_ms);
        EXPECT_FALSE(record.Completed());
        if (record.first_dispatch_ms < 0.0) {
            ++queued_sheds;
            EXPECT_EQ(record.tokens_out, 0);
        }
    }
    EXPECT_GT(queued_sheds, 0) << "no request expired while queued";
    // Pages released at shed time kept the pool inside its budget and let
    // the survivors finish.
    EXPECT_LE(result.kv_pages_peak, result.kv_pool_pages);
    // Without expiry shedding the same overload completes everything
    // (late), so shedding is strictly the configured policy, not a crutch.
    ServingOptions lenient = options;
    lenient.shed_expired_queued = false;
    const ServingResult slow = Run(lenient);
    EXPECT_EQ(slow.shed, 0);
    for (const RequestRecord& record : slow.records) {
        if (!record.rejected) {
            EXPECT_TRUE(record.Completed());
        }
    }
}

// --------------------------- circuit breaker + bitwise failover replay

class FailoverReplayTest : public TinyModelTest
{
  protected:
    /** A served schedule with decode priced on the NPU and NPU decode
     *  dispatch faults hot enough to trip the circuit breaker. */
    ServingResult
    SimulateFailoverTrace(int num_requests, double decode_failure_prob)
    {
        LlmNpuOptions engine_options;
        engine_options.decode_placement = DecodePlacement::kNpuQuant;
        LlmNpuEngine engine(engine_options);
        ServingCostModel costs(engine, Qwen15_1_8B(),
                               SocSpec::RedmiK70Pro());
        ServingOptions options;
        options.policy = SchedPolicy::kFcfs;
        options.num_requests = num_requests;
        options.rate_rps = 100.0;  // overlapping requests => real batches
        options.seed = 11;
        options.faults.decode_failure_prob = decode_failure_prob;
        options.faults.circuit_breaker_k = 2;
        return ServingSimulator(costs, PaperDatasets(), options).Run();
    }
};

TEST_F(FailoverReplayTest, CircuitBreakerFailsOverMidStream)
{
    const ServingResult result = SimulateFailoverTrace(5, 0.45);
    EXPECT_GT(result.faults, 0);
    ASSERT_GT(result.failovers, 0);
    int failed_over = 0;
    for (const RequestRecord& record : result.records) {
        if (!record.failed_over) continue;
        ++failed_over;
        EXPECT_GE(record.failover_ms, record.request.arrival_ms);
        if (!record.shed) {
            EXPECT_TRUE(record.Completed());
        }
    }
    EXPECT_EQ(failed_over, result.failovers);

    // The executed per-member placements are recorded on every decode
    // step, and at least one step ran a failed-over member on the CPU.
    bool saw_cpu_member = false;
    for (const ReplayStep& step : result.replay_steps) {
        if (step.is_prefill) continue;
        ASSERT_EQ(step.placements.size(), step.request_ids.size());
        saw_cpu_member |=
            std::find(step.placements.begin(), step.placements.end(),
                      DecodePlacement::kCpuFloat) != step.placements.end();
    }
    EXPECT_TRUE(saw_cpu_member);
}

TEST_F(FailoverReplayTest, MidStreamFailoverReplaysBitwise)
{
    // The acceptance criterion: a schedule where the breaker switched
    // requests NPU->CPU mid-stream replays bitwise on real tensors — each
    // sequence's batched rows equal its solo run with the *same* per-token
    // placements, including the switch point.
    const ServingResult result = SimulateFailoverTrace(5, 0.45);
    ASSERT_GT(result.failovers, 0);

    Fp32LinearExecutor fp32(tiny_.weights);
    NpuShadowExecutor shadow(tiny_.weights, tiny_.profile, 0.5);
    DecodeBackend backend(fp32, shadow);
    ReplayPlacement placement;
    placement.prefill = DecodePlacement::kNpuQuant;
    placement.default_decode = DecodePlacement::kNpuQuant;
    ReplayOptions options;
    options.max_output_tokens = 64;  // replay every decode membership
    const ReplayOutcome outcome =
        ReplayServingTrace(result.replay_steps, result.records, tiny_.model,
                           backend, placement, options);
    EXPECT_TRUE(outcome.bitwise_match) << outcome.first_mismatch;
    EXPECT_GT(outcome.decode_steps, 0);
    EXPECT_EQ(outcome.truncated_memberships, 0);
    // Both sides of the handoff actually executed.
    EXPECT_GT(backend.stats().npu_linear_calls, 0);
}

}  // namespace
}  // namespace llmnpu
