/**
 * @file
 * Verifies §3.4's claim that the online C-value scheduling decision costs
 * microseconds: times one full out-of-order schedule of a realistic prefill
 * DAG and divides by the number of decisions.
 */
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

#include "src/core/llmnpu_engine.h"
#include "src/core/scheduler.h"

namespace llmnpu {
namespace {

std::vector<SimTask>
MakeDag(int num_chunks)
{
    const SocSpec soc = SocSpec::RedmiK70Pro();
    const ModelConfig qwen = Qwen15_1_8B();
    LlmNpuEngine probe;
    std::vector<std::vector<StageTiming>> timings;
    for (int c = 0; c < num_chunks; ++c) {
        timings.push_back(probe.ChunkStageTimings(
            qwen, soc, 256, static_cast<int64_t>(c + 1) * 256, 0.0));
    }
    return BuildPrefillDag(timings, qwen.num_layers, false);
}

void
BM_OooSchedule(benchmark::State& state)
{
    const auto dag = MakeDag(static_cast<int>(state.range(0)));
    const TaskPicker picker = OooPicker();
    for (auto _ : state) {
        benchmark::DoNotOptimize(RunTimeline(dag, picker));
    }
    // Each task is one scheduling decision.
    state.counters["us_per_decision"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(dag.size()),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
    state.SetLabel("paper: microsecond-level decisions");
}
BENCHMARK(BM_OooSchedule)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void
BM_Eq5Schedule(benchmark::State& state)
{
    const auto dag = MakeDag(static_cast<int>(state.range(0)));
    const TaskPicker picker = PaperEq5Picker();
    for (auto _ : state) {
        benchmark::DoNotOptimize(RunTimeline(dag, picker));
    }
}
BENCHMARK(BM_Eq5Schedule)->Arg(4)->Unit(benchmark::kMillisecond);

void
BM_DagConstruction(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(MakeDag(static_cast<int>(state.range(0))));
    }
}
BENCHMARK(BM_DagConstruction)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace llmnpu

int
main(int argc, char** argv)
{
    // In run_all --quick (CI smoke) runs, cap the per-benchmark measuring
    // time instead of google-benchmark's ~0.5 s default.
    std::vector<char*> args(argv, argv + argc);
    char quick_min_time[] = "--benchmark_min_time=0.01";
    if (std::getenv("LLMNPU_BENCH_QUICK") != nullptr) {
        args.push_back(quick_min_time);
    }
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
