/**
 * @file
 * Reproduces Table 6: inference accuracy of llm.npu's quantization vs FP16,
 * SmoothQuant, LLM.Int8() and K-Quant across five benchmark proxies.
 *
 * Substitution (DESIGN.md §2): absolute benchmark accuracy needs trained
 * checkpoints; the proxy metric is top-1 agreement with the FP16 reference
 * on outlier-bearing synthetic models — the prediction flips quantization
 * causes, which is what orders Table 6.
 */
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/core/outlier_profile.h"
#include "src/core/shadow_executor.h"
#include "src/quant/baselines.h"
#include "src/util/stats.h"
#include "src/workloads/accuracy.h"
#include "src/workloads/corpus.h"

namespace llmnpu {
namespace {

void
Run()
{
    BenchHeader("Table 6: quantization accuracy (proxy: top-1 agreement "
                "with FP16)",
                "Ours averages ~1% below FP16 and matches LLM.Int8() while "
                "beating K-Quant and SmoothQuant (SmoothQuant worst)");

    // Aggregates across models for the paper's "Avg. Degrad." row.
    RunningStat ours_stat, ours_full_stat, int8_stat, kquant_stat,
        smooth_stat, naive_stat;

    // run_all --quick: two models and fewer eval contexts keep CI fast;
    // the full sweep covers all five paper models.
    const bool quick = std::getenv("LLMNPU_BENCH_QUICK") != nullptr;
    std::vector<ModelConfig> models = PaperModels();
    if (quick) models.resize(2);
    const int eval_contexts = quick ? 3 : 8;

    for (const ModelConfig& base : models) {
        const ModelConfig proxy = ScaledProxy(base, 192, 4, 512);
        SyntheticWeightsOptions weight_options;
        weight_options.seed =
            0x11f ^ std::hash<std::string>{}(base.name);
        ModelWeights weights =
            GenerateSyntheticWeights(proxy, weight_options);
        Transformer model(weights);

        CorpusOptions corpus_options;
        corpus_options.vocab_size = proxy.vocab_size;
        corpus_options.num_sequences = 6;
        corpus_options.min_len = 24;
        corpus_options.max_len = 48;
        const auto calib_corpus = MakeCorpus(corpus_options);
        const CalibrationData calib =
            CalibrationData::Collect(model, calib_corpus);
        const OutlierProfile profile =
            OutlierProfile::Collect(model, calib, calib_corpus);

        SmoothQuantExecutor smooth(weights, calib);
        LlmInt8Executor llm_int8(weights, calib);
        KQuantExecutor kquant(weights, 32);
        PerTensorExecutor naive(weights);
        // Both pruning settings: the paper's default 0.85 (calibrated for
        // 24-32-layer models; on a 4-layer proxy it keeps only ~5 linears,
        // so it reads as a lower bound) and the unpruned upper bound.
        NpuShadowExecutor ours(weights, profile, /*pruning_rate=*/0.85);
        NpuShadowExecutor ours_full(weights, profile, /*pruning_rate=*/0.0);

        std::printf("\n-- %s proxy --\n", base.name.c_str());
        Table table({"Benchmark proxy", "FP16", "SQ", "Int8()", "K-Quant",
                     "PerTensor", "Ours p=.85", "Ours p=0"});
        for (const EvalSet& eval :
             MakeBenchmarkEvalSets(proxy.vocab_size, eval_contexts)) {
            auto agree = [&](LinearExecutor& executor) {
                return EvaluateAgreement(model, executor, eval.contexts)
                           .top1_agreement *
                       100.0;
            };
            const double a_smooth = agree(smooth);
            const double a_int8 = agree(llm_int8);
            const double a_kquant = agree(kquant);
            const double a_naive = agree(naive);
            const double a_ours = agree(ours);
            const double a_ours_full = agree(ours_full);
            table.AddRow({eval.name, "100.0%",
                          Table::Num(a_smooth, 1) + "%",
                          Table::Num(a_int8, 1) + "%",
                          Table::Num(a_kquant, 1) + "%",
                          Table::Num(a_naive, 1) + "%",
                          Table::Num(a_ours, 1) + "%",
                          Table::Num(a_ours_full, 1) + "%"});
            smooth_stat.Add(a_smooth - 100.0);
            int8_stat.Add(a_int8 - 100.0);
            kquant_stat.Add(a_kquant - 100.0);
            naive_stat.Add(a_naive - 100.0);
            ours_stat.Add(a_ours - 100.0);
            ours_full_stat.Add(a_ours_full - 100.0);
        }
        table.Print();
    }

    std::printf("\nAverage degradation vs FP16 (paper in parentheses):\n");
    std::printf("  SmoothQuant  %+6.1f%%  (paper: -5.1%%..-14.9%%)\n",
                smooth_stat.mean());
    std::printf("  LLM.Int8()   %+6.1f%%  (paper: ~-0.1%%)\n",
                int8_stat.mean());
    std::printf("  K-Quant      %+6.1f%%  (paper: -0.7%%..-31.3%%)\n",
                kquant_stat.mean());
    std::printf("  PerTensor    %+6.1f%%  (naive, not in paper table)\n",
                naive_stat.mean());
    std::printf("  Ours p=.85   %+6.1f%%  (paper: ~-1%%; shallow-proxy "
                "lower bound)\n", ours_stat.mean());
    std::printf("  Ours p=0     %+6.1f%%  (upper bound, no pruning)\n",
                ours_full_stat.mean());
    const bool ordering = ours_full_stat.mean() > kquant_stat.mean() &&
                          ours_full_stat.mean() > smooth_stat.mean() &&
                          int8_stat.mean() > smooth_stat.mean() &&
                          kquant_stat.mean() > smooth_stat.mean() &&
                          smooth_stat.mean() > naive_stat.mean();
    std::printf("\nOrdering check (Int8()/Ours > K-Quant > SmoothQuant > "
                "naive per-tensor): %s\n", ordering ? "HOLDS" : "VIOLATED");
    std::printf("Note: the 85%% pruning rate is tuned for 24-32-layer "
                "models; on 4-layer proxies it keeps only ~5 linears, so "
                "'Ours p=.85' under-reads the paper's <1%% claim while "
                "'Ours p=0' bounds it from above.\n");
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
