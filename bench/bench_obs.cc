/**
 * @file
 * Tracer overhead microbenchmark: what does an instrumented hot site cost?
 *
 * The obs plane promises "pay only when you look": a span macro at a site
 * that is not being traced must cost one relaxed atomic load and a
 * predictable branch. This bench measures a small fixed work loop (a few
 * dozen ns of arithmetic per iteration, roughly one packed-matmul row
 * strip) in four configurations:
 *
 *   baseline      the loop with no macro at all
 *   disabled      LLMNPU_TRACE_SPAN present, tracing runtime-disabled
 *   enabled_idle  the *uninstrumented* loop while tracing is enabled
 *                 elsewhere (enabling the tracer must not slow code that
 *                 carries no spans)
 *   enabled_hot   the instrumented loop actually recording one span per
 *                 iteration (two clock reads + a ring write)
 *
 * Each row reports median ns/iteration over repeated trials plus its
 * ratio to baseline. CI (cmake/check_bench_metrics.cmake) asserts the
 * `disabled` ratio stays ~1: instrumentation that is not being observed
 * must be free. `enabled_hot` is informational — it is the price of
 * looking, dominated by the two steady_clock reads.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/trace.h"

namespace llmnpu {
namespace {

/** Fixed per-iteration work: enough arithmetic that the loop body is a
 *  realistic "site" (~tens of ns), little enough that macro overhead is
 *  visible. volatile sink keeps the compiler honest. */
inline double
WorkBody(double x)
{
    for (int i = 0; i < 16; ++i) {
        x = x * 1.000000119 + 0.25;
    }
    return x;
}

double
LoopPlain(size_t iters)
{
    double acc = 1.0;
    for (size_t i = 0; i < iters; ++i) {
        acc = WorkBody(acc);
    }
    return acc;
}

double
LoopTraced(size_t iters)
{
    double acc = 1.0;
    for (size_t i = 0; i < iters; ++i) {
        LLMNPU_TRACE_SPAN_TILE("obs_bench.site", "bench", -1, -1, -1,
                               "iter", static_cast<int>(i & 0xff));
        acc = WorkBody(acc);
    }
    return acc;
}

volatile double g_sink = 0.0;

/** Median ns/iteration of `fn(iters)` over `trials` runs. */
template <typename Fn>
double
MedianNsPerIter(Fn fn, size_t iters, int trials)
{
    std::vector<double> ns;
    ns.reserve(static_cast<size_t>(trials));
    for (int t = 0; t < trials; ++t) {
        const auto start = std::chrono::steady_clock::now();
        g_sink = g_sink + fn(iters);
        const auto end = std::chrono::steady_clock::now();
        ns.push_back(
            std::chrono::duration<double, std::nano>(end - start).count() /
            static_cast<double>(iters));
    }
    std::sort(ns.begin(), ns.end());
    return ns[ns.size() / 2];
}

void
EmitRow(const char* mode, double ns_per_site, double baseline_ns)
{
    std::printf("  %-14s %8.2f ns/site   %.3fx baseline\n", mode,
                ns_per_site, ns_per_site / baseline_ns);
    std::printf("METRIC {\"bench\": \"obs\", \"mode\": \"%s\", "
                "\"ns_per_site\": %.3f, \"overhead_ratio\": %.4f}\n",
                mode, ns_per_site, ns_per_site / baseline_ns);
}

void
Run()
{
    BenchHeader("Tracer overhead: span macro cost per hot-path site",
                "observability must not tax the numeric plane "
                "(disabled site == one relaxed atomic load)");

    const bool quick = std::getenv("LLMNPU_BENCH_QUICK") != nullptr ||
                       std::getenv("LLMNPU_SERVING_SMOKE") != nullptr;
    const size_t iters = quick ? (1u << 16) : (1u << 20);
    const int trials = quick ? 5 : 9;

    obs::Tracer& tracer = obs::Tracer::Global();
    tracer.Disable();

    // Warm both code paths once so lazy init / page faults stay out of
    // the measured trials.
    g_sink = g_sink + LoopPlain(iters / 4) + LoopTraced(iters / 4);

    const double baseline = MedianNsPerIter(LoopPlain, iters, trials);
    const double disabled = MedianNsPerIter(LoopTraced, iters, trials);

    tracer.Enable();
    tracer.Reset();
    const double enabled_idle = MedianNsPerIter(LoopPlain, iters, trials);
    const double enabled_hot = MedianNsPerIter(LoopTraced, iters, trials);
    const uint64_t recorded = tracer.TotalRecorded();
    const uint64_t dropped = tracer.TotalDropped();
    tracer.Disable();

    std::printf("\n  %zu iterations/trial, median of %d trials\n\n", iters,
                trials);
    EmitRow("baseline", baseline, baseline);
    EmitRow("disabled", disabled, baseline);
    EmitRow("enabled_idle", enabled_idle, baseline);
    EmitRow("enabled_hot", enabled_hot, baseline);

    std::printf("\n  enabled_hot recorded %llu spans (%llu dropped by the "
                "flight-recorder ring, by design)\n",
                static_cast<unsigned long long>(recorded),
                static_cast<unsigned long long>(dropped));
    std::printf("  disabled-site cost above baseline: %+.2f ns "
                "(the runtime gate)\n",
                disabled - baseline);
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
