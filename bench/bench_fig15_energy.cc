/**
 * @file
 * Reproduces Figure 15: prefill energy consumption on the Redmi K60 Pro
 * (the rootable device) across prompt lengths, llm.npu vs the baselines
 * the paper measures (llama.cpp-CPU, MLC-GPU, TFLite-GPU).
 */
#include "bench/bench_util.h"
#include "src/core/llmnpu_engine.h"
#include "src/engines/baselines.h"

namespace llmnpu {
namespace {

void
Run()
{
    BenchHeader("Figure 15: prefill energy on Redmi K60 Pro",
                "@1024 llm.npu saves 35.6-59.5x vs llama.cpp-CPU, "
                "35.2-59.3x vs MLC-GPU, 1.85-4.32x vs TFLite-GPU");
    const SocSpec soc = SocSpec::RedmiK60Pro();
    LlmNpuEngine ours;
    LlamaCppEngine lcpp;
    MlcGpuEngine mlc;
    TfliteEngine tflite(Unit::kGpu);

    for (int prompt_len : {64, 256, 1024}) {
        std::printf("\n-- prompt length %d --\n", prompt_len);
        Table table({"Model", "Ours (mJ)", "llama.cpp-CPU", "MLC-GPU",
                     "TFLite-GPU"});
        for (const ModelConfig& config : PaperModels()) {
            const InferenceRequest req{prompt_len, 1};
            const double our_mj =
                ours.Run(config, soc, req).prefill_energy_mj;
            std::vector<std::string> row = {config.name,
                                            Table::Num(our_mj, 0)};
            for (InferenceEngine* engine :
                 std::initializer_list<InferenceEngine*>{&lcpp, &mlc,
                                                         &tflite}) {
                if (!engine->SupportsModel(config)) {
                    row.push_back("-");
                    continue;
                }
                const double mj =
                    engine->Run(config, soc, req).prefill_energy_mj;
                row.push_back(
                    StrFormat("%.0f mJ (%.1fx)", mj, mj / our_mj));
            }
            table.AddRow(std::move(row));
        }
        table.Print();
    }

    const double ours_mj =
        ours.Run(Qwen15_1_8B(), soc, {1024, 1}).prefill_energy_mj;
    const double lcpp_mj =
        lcpp.Run(Qwen15_1_8B(), soc, {1024, 1}).prefill_energy_mj;
    Verdict("Qwen1.5-1.8B @1024 energy saving vs llama.cpp-CPU",
            lcpp_mj / ours_mj, 35.6, 59.5);
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
