/**
 * @file
 * Latency-predictor benchmark: fits the per-op model from the repo's own
 * committed measurements and reports held-in prediction error per class.
 *
 * This is the offline half of the serving control plane. The committed
 * BENCH_results.json is an *input* here, not a report: kernel GFLOP/s rows
 * and decode-step TPOT rows are inverted back to milliseconds and fitted
 * per op class, while the host-plane handoff / chunk-dispatch classes are
 * fitted from a freshly traced tiny-model replay (the same
 * ReplayServingTrace path production schedules go through, with
 * ReplayOptions::trace_sink capturing the spans).
 *
 * Emitted METRIC rows (folded into BENCH_results.json by run_all):
 *  - fit_error: per-class sample count + median/mean/max relative error.
 *    Classes sourced from the committed bench JSON are banded in CI
 *    (median relative error <= 25%); wall-clock trace classes are
 *    informational (host timing noise is not a regression).
 *  - roundtrip: Serialize -> Parse fidelity (bitwise text, prediction
 *    deltas) of the fitted model.
 *  - crossover: the fitted decode-step model's CPU-vs-NPU per-token cost
 *    at each batch depth — the paper's CPU-wins-small-batch /
 *    NPU-wins-large-batch crossover, reproduced from fitted data alone.
 */
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/llmnpu_engine.h"
#include "src/core/outlier_profile.h"
#include "src/core/shadow_executor.h"
#include "src/model/decode_backend.h"
#include "src/model/transformer.h"
#include "src/predict/latency_model.h"
#include "src/predict/step_cost.h"
#include "src/predict/training_data.h"
#include "src/quant/calibration.h"
#include "src/serving/cost_model.h"
#include "src/serving/replay.h"
#include "src/serving/simulator.h"
#include "src/workloads/corpus.h"

#ifndef LLMNPU_BASELINE_JSON
#define LLMNPU_BASELINE_JSON ""
#endif

namespace llmnpu {
namespace {

using predict::ExtractionStats;
using predict::LatencyModel;
using predict::OpClass;
using predict::OpClassName;
using predict::OpErrorStats;
using predict::OpSample;

std::string
ReadFileOrEmpty(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) return "";
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** The committed baseline to train from: env override, else the path the
 *  build baked in (the source tree's BENCH_results.json). */
std::string
BaselinePath()
{
    const char* env = std::getenv("LLMNPU_BASELINE_JSON");
    if (env != nullptr && env[0] != '\0') return env;
    return LLMNPU_BASELINE_JSON;
}

/** Runs a small served schedule through the tiny real model with tracing
 *  on, NPU-placed so the CPU<->NPU handoff boundary actually fires, and
 *  returns the Chrome trace text (the handoff / chunk-dispatch training
 *  source). */
std::string
TraceTinyReplay(const char* sink_path)
{
    // The serving schedule prices against the calibrated Qwen cost model;
    // the replay executes it on the tiny model (same split bench_serving's
    // traced scenario uses — the replay only consumes steps and records).
    const SocSpec soc = SocSpec::RedmiK70Pro();
    const ModelConfig qwen = Qwen15_1_8B();
    LlmNpuEngine engine;
    ServingCostModel costs(engine, qwen, soc);

    ServingOptions options;
    options.policy = SchedPolicy::kFcfs;
    options.num_requests = 6;
    options.rate_rps = 50.0;
    options.seed = 7;
    const ServingResult served =
        ServingSimulator(costs, PaperDatasets(), options).Run();

    const ModelConfig tiny = TinyTestConfig();
    const ModelWeights weights = GenerateSyntheticWeights(tiny);
    const Transformer model(weights);

    CorpusOptions calib_options;
    calib_options.vocab_size = tiny.vocab_size;
    calib_options.num_sequences = 4;
    calib_options.min_len = 16;
    calib_options.max_len = 32;
    const std::vector<std::vector<int>> calib_corpus =
        MakeCorpus(calib_options);
    const CalibrationData calib =
        CalibrationData::Collect(model, calib_corpus);
    const OutlierProfile profile =
        OutlierProfile::Collect(model, calib, calib_corpus);

    Fp32LinearExecutor fp32(weights);
    NpuShadowExecutor shadow(weights, profile, 0.5);
    DecodeBackend backend(fp32, shadow);

    ReplayOptions replay_options;
    replay_options.max_prompt_tokens = 16;
    replay_options.max_output_tokens = 8;
    replay_options.check_bitwise = false;
    ReplayPlacement placement;
    placement.prefill = DecodePlacement::kNpuQuant;
    placement.default_decode = DecodePlacement::kNpuQuant;
    replay_options.placement = placement;
    replay_options.trace_sink = sink_path;
    ReplayServingTrace(served.replay_steps, served.records, model, backend,
                       replay_options);
    return ReadFileOrEmpty(sink_path);
}

void
Run()
{
    BenchHeader(
        "Latency predictor: per-op model fitted from committed measurements",
        "control-plane direction (PAPERS.md): predicted step costs drive "
        "dynamic CPU/NPU placement instead of hand-calibrated constants");

    // ------------------------------------------------ training extraction
    std::vector<OpSample> samples;
    std::string error;

    const std::string baseline_path = BaselinePath();
    const std::string baseline = ReadFileOrEmpty(baseline_path);
    ExtractionStats bench_stats;
    if (baseline.empty()) {
        std::printf("WARNING: no baseline JSON at '%s' — file-sourced "
                    "classes will be unfitted\n",
                    baseline_path.c_str());
    } else if (!predict::SamplesFromBenchResults(baseline, &samples, &error,
                                                 &bench_stats)) {
        std::printf("WARNING: baseline parse failed: %s\n", error.c_str());
    }
    std::printf("bench JSON:  %d samples (%d rows skipped) from %s\n",
                bench_stats.samples, bench_stats.skipped,
                baseline_path.c_str());

    // Named so run_all's bench_* binary discovery glob never picks it up.
    const std::string trace = TraceTinyReplay("predict_replay_trace.json");
    ExtractionStats trace_stats;
    if (trace.empty()) {
        std::printf("WARNING: traced replay produced no trace\n");
    } else if (!predict::SamplesFromTrace(trace, &samples, &error,
                                          &trace_stats)) {
        std::printf("WARNING: trace parse failed: %s\n", error.c_str());
    }
    std::printf("replay trace: %d samples (%d spans skipped)\n\n",
                trace_stats.samples, trace_stats.skipped);

    // --------------------------------------------------------------- fit
    LatencyModel model;
    model.Fit(samples);

    // Per-class held-in error: the tracked prediction-quality METRIC.
    // Classes trained from the committed bench JSON carry a CI band
    // (median relative error <= 25%, cmake/check_bench_metrics.cmake);
    // wall-clock trace classes report but do not gate.
    const struct {
        OpClass op;
        const char* source;
        bool banded;
    } kClasses[] = {
        {OpClass::kMatMulCpu, "bench_json", true},
        {OpClass::kMatMulNpu, "bench_json", true},
        {OpClass::kAttention, "bench_json", true},
        {OpClass::kDecodeStepCpu, "bench_json", true},
        {OpClass::kDecodeStepNpu, "bench_json", true},
        {OpClass::kHandoff, "trace", false},
        {OpClass::kChunkDispatch, "trace", false},
    };

    Table err_table({"op class", "source", "samples", "median err",
                     "mean err", "max err"});
    for (const auto& cls : kClasses) {
        if (!model.Fitted(cls.op)) {
            std::printf("  (op class %s unfitted — no samples)\n",
                        OpClassName(cls.op));
            continue;
        }
        const OpErrorStats stats = model.Evaluate(cls.op, samples);
        err_table.AddRow({OpClassName(cls.op), cls.source,
                          std::to_string(stats.samples),
                          Table::Num(stats.median_rel_err * 100.0, 1) + "%",
                          Table::Num(stats.mean_rel_err * 100.0, 1) + "%",
                          Table::Num(stats.max_rel_err * 100.0, 1) + "%"});
        std::printf("METRIC {\"bench\": \"predict\", \"mode\": "
                    "\"fit_error\", \"op\": \"%s\", \"source\": \"%s\", "
                    "\"banded\": %s, \"samples\": %d, "
                    "\"median_rel_err\": %.4f, \"mean_rel_err\": %.4f, "
                    "\"max_rel_err\": %.4f}\n",
                    OpClassName(cls.op), cls.source,
                    cls.banded ? "true" : "false", stats.samples,
                    stats.median_rel_err, stats.mean_rel_err,
                    stats.max_rel_err);
    }
    std::printf("\nPrediction error by op class (held-in):\n");
    err_table.Print();

    // --------------------------------------------------------- roundtrip
    const std::string text = model.Serialize();
    LatencyModel reloaded;
    const bool parsed = LatencyModel::Parse(text, &reloaded, &error);
    bool bitwise = parsed && reloaded.Serialize() == text;
    double max_delta = 0.0;
    if (parsed) {
        for (const auto& cls : kClasses) {
            if (!model.Fitted(cls.op)) continue;
            for (const OpSample& s : samples) {
                if (s.op != cls.op) continue;
                const double d =
                    std::fabs(model.PredictMs(cls.op, s.features) -
                              reloaded.PredictMs(cls.op, s.features));
                if (d > max_delta) max_delta = d;
            }
        }
    }
    std::printf("\nSerialization: %zu bytes, %s round-trip "
                "(max prediction delta %.3g ms)\n",
                text.size(), bitwise ? "bitwise" : "LOSSY", max_delta);
    std::printf("METRIC {\"bench\": \"predict\", \"mode\": \"roundtrip\", "
                "\"bytes\": %zu, \"bitwise\": %s, "
                "\"max_pred_delta_ms\": %.3g}\n",
                text.size(), bitwise ? "true" : "false", max_delta);

    // --------------------------------------------------------- crossover
    // The payoff: the fitted decode-step classes alone reproduce the
    // paper-calibrated CPU/NPU batching crossover. This is the exact
    // oracle PredictedPlacement consults online.
    if (model.Fitted(OpClass::kDecodeStepCpu) &&
        model.Fitted(OpClass::kDecodeStepNpu)) {
        const predict::PredictedStepCosts fitted(model);
        const int64_t ctx = 512;
        std::printf("\nPredicted decode crossover (ctx %lld, per-token "
                    "ms from the fitted model):\n",
                    static_cast<long long>(ctx));
        Table cross({"batch", "CPU tpot", "NPU tpot", "winner"});
        for (int batch : {1, 2, 4, 8, 16, 32}) {
            const double cpu = fitted.StepTokenMs(
                DecodePlacement::kCpuFloat, ctx, batch);
            const double npu = fitted.StepTokenMs(
                DecodePlacement::kNpuQuant, ctx, batch);
            const char* winner = npu < cpu ? "npu" : "cpu";
            cross.AddRow({std::to_string(batch), Table::Num(cpu),
                          Table::Num(npu), winner});
            std::printf("METRIC {\"bench\": \"predict\", \"mode\": "
                        "\"crossover\", \"batch\": %d, \"ctx\": %lld, "
                        "\"cpu_tpot_ms\": %.3f, \"npu_tpot_ms\": %.3f, "
                        "\"winner\": \"%s\"}\n",
                        batch, static_cast<long long>(ctx), cpu, npu,
                        winner);
        }
        cross.Print();
    } else {
        std::printf("\n(decode-step classes unfitted — crossover table "
                    "skipped)\n");
    }
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
