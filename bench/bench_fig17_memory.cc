/**
 * @file
 * Reproduces Figure 17: memory consumption of llm.npu vs INT8-weight
 * baselines at a 512-token prompt, including the shadow-outlier overhead
 * (0.6-1% of total) and the §3.2 chunk-sharing memory analysis.
 */
#include "bench/bench_util.h"
#include "src/core/chunk_graph.h"
#include "src/core/llmnpu_engine.h"
#include "src/engines/baselines.h"

namespace llmnpu {
namespace {

void
Run()
{
    BenchHeader("Figure 17: memory consumption (512-token prompt)",
                "llm.npu consumes up to 1.32x llama.cpp/TFLite (MLLM/QNN "
                "per-operator buffers); shadow outlier weights add only "
                "0.6-1% of total");
    const SocSpec soc = SocSpec::RedmiK70Pro();
    const InferenceRequest req{512, 1};

    LlamaCppEngine lcpp;
    TfliteEngine tflite_gpu(Unit::kGpu);
    TfliteEngine tflite_cpu(Unit::kCpu);
    LlmNpuEngine ours;

    Table table({"Model", "llama.cpp-CPU", "TFLite-GPU", "TFLite-CPU",
                 "Ours", "Ours/llama.cpp", "shadow weights"});
    for (const ModelConfig& config : {Gemma2B(), Phi2_2_7B()}) {
        const int64_t lcpp_bytes = lcpp.Run(config, soc, req).memory_bytes;
        const int64_t tf_gpu_bytes =
            tflite_gpu.SupportsModel(config)
                ? tflite_gpu.Run(config, soc, req).memory_bytes
                : 0;
        const int64_t tf_cpu_bytes =
            tflite_cpu.SupportsModel(config)
                ? tflite_cpu.Run(config, soc, req).memory_bytes
                : 0;
        const EngineResult our_result = ours.Run(config, soc, req);
        const double kept = 1.0 - ours.options().pruning_rate;
        const int64_t shadow_bytes = static_cast<int64_t>(
            kept * ours.options().hot_channel_frac *
            static_cast<double>(config.MatMulParams()) * 4.0);
        table.AddRow(
            {config.name, HumanBytes(static_cast<uint64_t>(lcpp_bytes)),
             tf_gpu_bytes ? HumanBytes(static_cast<uint64_t>(tf_gpu_bytes))
                          : "-",
             tf_cpu_bytes ? HumanBytes(static_cast<uint64_t>(tf_cpu_bytes))
                          : "-",
             HumanBytes(static_cast<uint64_t>(our_result.memory_bytes)),
             StrFormat("%.2fx (paper: <=1.32x)",
                       static_cast<double>(our_result.memory_bytes) /
                           static_cast<double>(lcpp_bytes)),
             StrFormat("%s (%.2f%%)",
                       HumanBytes(static_cast<uint64_t>(shadow_bytes))
                           .c_str(),
                       100.0 * static_cast<double>(shadow_bytes) /
                           static_cast<double>(our_result.memory_bytes))});
    }
    table.Print();

    // §3.2 claim: chunk sharing cuts graph memory by up to 75% (7.2 GB).
    std::printf("\nChunk-sharing graph memory (Qwen1.5-1.8B, prompt 1024, "
                "chunk 256):\n");
    const ModelConfig qwen = Qwen15_1_8B();
    ChunkGraphPlan shared(qwen, 256, true);
    ChunkGraphPlan unshared(qwen, 256, false);
    const int64_t shared_bytes = shared.GraphMemoryBytes(4);
    const int64_t unshared_bytes = unshared.GraphMemoryBytes(4);
    std::printf("  without sharing: %s   with sharing: %s   saved: %s "
                "(%.0f%%; paper: up to 75%% / 7.2 GB)\n",
                HumanBytes(static_cast<uint64_t>(unshared_bytes)).c_str(),
                HumanBytes(static_cast<uint64_t>(shared_bytes)).c_str(),
                HumanBytes(static_cast<uint64_t>(unshared_bytes -
                                                 shared_bytes)).c_str(),
                100.0 * (1.0 - static_cast<double>(shared_bytes) /
                                   static_cast<double>(unshared_bytes)));
    std::printf("  shareable subgraphs: %d of %d (paper: 120 of 144)\n",
                shared.NumSharedSubgraphs(), shared.NumSubgraphs());
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
