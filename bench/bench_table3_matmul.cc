/**
 * @file
 * Reproduces Table 3: execution latency (ms) for LLM-sized INT8/FP16
 * matmuls across the NPU, CPU and GPU on the Redmi K70 Pro.
 */
#include "bench/bench_util.h"
#include "src/sim/processor.h"
#include "src/sim/soc.h"

namespace llmnpu {
namespace {

struct Row {
    MatMulShape shape;
    double paper_npu_i8, paper_cpu_i8, paper_gpu_f16, paper_npu_f16;
};

const Row kRows[] = {
    {{64, 2048, 2048}, 0.9, 4.2, 1.7, 252.0},
    {{64, 2048, 8192}, 1.5, 6.8, 4.8, 986.0},
    {{64, 2048, 11008}, 2.0, 11.6, 6.9, 1207.0},
    {{32, 4096, 4096}, 1.7, 7.5, 3.1, 1054.0},
    {{32, 4096, 8192}, 2.9, 13.1, 7.7, 2009.0},
    {{32, 4096, 11008}, 4.1, 19.6, 10.4, 3112.0},
};

void
Run()
{
    BenchHeader("Table 3: INT8 MatMul latency on Redmi K70 Pro",
                "NPU INT8 is 4.5-5.8x CPU INT8 and 1.8-3.5x GPU FP16; "
                "NPU FP16 is up to ~600x slower than NPU INT8");
    const SocSpec soc = SocSpec::RedmiK70Pro();
    Table table({"Matrix A", "Matrix B", "NPU INT8", "CPU INT8", "GPU FP16",
                 "NPU FP16"});
    for (const Row& row : kRows) {
        const double npu_i8 = soc.Processor(Unit::kNpu).MatMulMs(
            row.shape, ExecFormat::kInt8PerTensor, 0, false);
        const double cpu_i8 = soc.Processor(Unit::kCpu).MatMulMs(
            row.shape, ExecFormat::kInt8PerTensor, 0, false);
        const double gpu_f16 = soc.Processor(Unit::kGpu).MatMulMs(
            row.shape, ExecFormat::kFp16, 0, false);
        const double npu_f16 = soc.Processor(Unit::kNpu).MatMulMs(
            row.shape, ExecFormat::kFp16, 0, false);
        table.AddRow({StrFormat("%ldx%ld", row.shape.m, row.shape.k),
                      StrFormat("%ldx%ld", row.shape.k, row.shape.n),
                      Table::WithPaper(npu_i8, row.paper_npu_i8),
                      Table::WithPaper(cpu_i8, row.paper_cpu_i8),
                      Table::WithPaper(gpu_f16, row.paper_gpu_f16),
                      Table::WithPaper(npu_f16, row.paper_npu_f16, 0)});
    }
    table.Print();

    // Aggregate ratios as the paper reports them.
    double cpu_ratio_min = 1e9, cpu_ratio_max = 0.0;
    double gpu_ratio_min = 1e9, gpu_ratio_max = 0.0;
    for (const Row& row : kRows) {
        const double npu = soc.Processor(Unit::kNpu).MatMulMs(
            row.shape, ExecFormat::kInt8PerTensor, 0, false);
        const double cpu = soc.Processor(Unit::kCpu).MatMulMs(
            row.shape, ExecFormat::kInt8PerTensor, 0, false);
        const double gpu = soc.Processor(Unit::kGpu).MatMulMs(
            row.shape, ExecFormat::kFp16, 0, false);
        cpu_ratio_min = std::min(cpu_ratio_min, cpu / npu);
        cpu_ratio_max = std::max(cpu_ratio_max, cpu / npu);
        gpu_ratio_min = std::min(gpu_ratio_min, gpu / npu);
        gpu_ratio_max = std::max(gpu_ratio_max, gpu / npu);
    }
    Verdict("NPU INT8 speedup over CPU INT8 (min)", cpu_ratio_min, 4.4, 4.4);
    Verdict("NPU INT8 speedup over CPU INT8 (max)", cpu_ratio_max, 5.8, 5.8);
    Verdict("NPU INT8 speedup over GPU FP16 (min)", gpu_ratio_min, 1.8, 1.8);
    Verdict("NPU INT8 speedup over GPU FP16 (max)", gpu_ratio_max, 3.5, 3.5);
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
