/**
 * @file
 * Reproduces Figure 18: GPU-NPU vs CPU-NPU coordination — identical prefill
 * speed (the float processor is hidden behind the NPU either way) but lower
 * end-to-end latency thanks to faster GPU decoding.
 */
#include "bench/bench_util.h"
#include "src/core/llmnpu_engine.h"
#include "src/workloads/datasets.h"

namespace llmnpu {
namespace {

void
Run()
{
    BenchHeader("Figure 18: GPU-NPU vs CPU-NPU coordination (Gemma-2B)",
                "prefill speed equal (148/322/604 tok/s at 64/256/1024); "
                "GPU-NPU cuts end-to-end latency by 80-90 ms via decode");
    const SocSpec soc = SocSpec::RedmiK70Pro();
    const ModelConfig gemma = Gemma2B();
    LlmNpuEngine cpu_npu;
    LlmNpuOptions gpu_options;
    gpu_options.use_gpu_float = true;
    gpu_options.label = "llm.npu (GPU-NPU)";
    LlmNpuEngine gpu_npu(gpu_options);

    // Panel (a): prefill speed across prompt lengths.
    Table panel_a({"Prompt length", "CPU-NPU (tok/s)", "GPU-NPU (tok/s)",
                   "paper (both)"});
    const double paper_speed[] = {148, 322, 604};
    int i = 0;
    for (int prompt_len : {64, 256, 1024}) {
        const double cpu_speed =
            cpu_npu.Run(gemma, soc, {prompt_len, 1})
                .PrefillTokensPerSec(prompt_len);
        const double gpu_speed =
            gpu_npu.Run(gemma, soc, {prompt_len, 1})
                .PrefillTokensPerSec(prompt_len);
        panel_a.AddRow({StrFormat("%d", prompt_len),
                        Table::Num(cpu_speed, 0), Table::Num(gpu_speed, 0),
                        Table::Num(paper_speed[i++], 0)});
    }
    panel_a.Print();

    // Panel (b): end-to-end latency on the LongBench datasets.
    std::printf("\nPanel (b): end-to-end latency on LongBench:\n");
    Table panel_b({"Dataset", "CPU-NPU e2e (s)", "GPU-NPU e2e (s)",
                   "saving (ms)"});
    for (const DatasetProfile& dataset :
         {Longbench2WikiProfile(), LongbenchTriviaQaProfile()}) {
        const InferenceRequest req = dataset.Typical();
        const EngineResult cpu_result = cpu_npu.Run(gemma, soc, req);
        const EngineResult gpu_result = gpu_npu.Run(gemma, soc, req);
        panel_b.AddRow(
            {dataset.name, Table::Num(cpu_result.EndToEndMs() / 1e3, 2),
             Table::Num(gpu_result.EndToEndMs() / 1e3, 2),
             StrFormat("%.0f (paper: 80-90)",
                       cpu_result.EndToEndMs() - gpu_result.EndToEndMs())});
    }
    panel_b.Print();
    std::printf("\nShape check: coordination does not change prefill (the "
                "float unit is hidden by the NPU) but reduces end-to-end "
                "latency via decode.\n");
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
