/**
 * @file
 * Reproduces Figures 10-11: per-layer outlier channel counts/fractions and
 * the hot-channel skew (a small channel set carries most outliers), on a
 * scaled Qwen proxy with real numerics.
 */
#include <numeric>

#include "bench/bench_util.h"
#include "src/core/outlier_profile.h"
#include "src/workloads/corpus.h"

namespace llmnpu {
namespace {

void
Run()
{
    BenchHeader("Figures 10-11: activation outlier statistics",
                "<=0.3% of channels are outliers per inference (5-15 "
                "channels/layer); <3% of channels carry >80% of outliers");
    const ModelConfig proxy = ScaledProxy(Qwen15_1_8B(), 256, 6, 512);
    ModelWeights weights = GenerateSyntheticWeights(proxy);
    Transformer model(weights);

    CorpusOptions corpus_options;
    corpus_options.vocab_size = proxy.vocab_size;
    corpus_options.num_sequences = 8;
    corpus_options.min_len = 48;
    corpus_options.max_len = 96;
    const auto corpus = MakeCorpus(corpus_options);
    const CalibrationData calib = CalibrationData::Collect(model, corpus);
    const OutlierProfile profile =
        OutlierProfile::Collect(model, calib, corpus);

    // Figure 10: per-layer outlier counts for the four operators the paper
    // plots.
    const LinearKind kinds[] = {LinearKind::kWq, LinearKind::kWo,
                                LinearKind::kFfnUp, LinearKind::kFfnDown};
    Table fig10({"Layer", "q_proj #", "o_proj #", "up_proj #", "down_proj #",
                 "max fraction"});
    for (int l = 0; l < proxy.num_layers; ++l) {
        double max_fraction = 0.0;
        std::vector<std::string> row = {StrFormat("%d", l)};
        for (LinearKind kind : kinds) {
            const auto& stats = profile.Stats(l, kind);
            row.push_back(Table::Num(stats.mean_outliers_per_token, 1));
            max_fraction = std::max(max_fraction,
                                    stats.mean_outlier_fraction);
        }
        row.push_back(Table::Num(max_fraction * 100.0, 2) + "%");
        fig10.AddRow(std::move(row));
    }
    fig10.Print();

    // Figure 11: channel skew.
    std::printf("\nFigure 11 (hot-channel skew), q_proj inputs:\n");
    Table fig11({"Layer", "hot channels", "% of channels", "coverage"});
    for (int l = 0; l < proxy.num_layers; ++l) {
        const auto& stats = profile.Stats(l, LinearKind::kWq);
        fig11.AddRow(
            {StrFormat("%d", l),
             StrFormat("%zu", stats.hot_channels.size()),
             Table::Num(100.0 * static_cast<double>(
                                    stats.hot_channels.size()) /
                            static_cast<double>(proxy.hidden_size), 1) + "%",
             Table::Num(stats.hot_coverage_achieved * 100.0, 1) + "%"});
    }
    fig11.Print();
    std::printf("\nShape check: outliers are sparse per token and "
                "concentrated in a small hot-channel set (paper: <3%% of "
                "channels cover >80%%).\nNote: the proxy injects ~3%% hot "
                "channels into a 256-wide model, so absolute fractions sit "
                "above the paper's 2048-wide 0.1-0.3%%; the skew shape is "
                "what transfers.\n");
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
