/**
 * @file
 * Serving-layer benchmark: throughput-vs-load curves for llm.npu under
 * multi-request traffic drawn from the Table 5 dataset mixture.
 *
 * Not a paper reproduction — the paper evaluates one request at a time —
 * but the deployment its §2.1 workloads imply: a shared on-device NPU
 * serving several apps at once. Sweeps a Poisson arrival rate across the
 * scheduling policies and reports throughput, TTFT, tail latency, and
 * goodput under per-request SLOs.
 *
 * Machine-readable rows are emitted as "METRIC {json}" lines, which
 * bench/run_all.cc folds into BENCH_results.json (schema llmnpu-bench-v2).
 * LLMNPU_SERVING_SMOKE=1 shrinks the sweep for CI smoke runs.
 *
 * `--trace [PATH]` (or LLMNPU_TRACE_FILE=PATH, exported by
 * `run_all --trace`) additionally runs one dedicated traced scenario —
 * a small fcfs sim whose schedule is replayed on a tiny real model, so
 * both tracer planes are populated — and writes the Chrome trace-event
 * JSON to PATH (default serving_trace.json). The sweeps above stay
 * untraced: their numbers feed the perf trajectory and must not carry
 * tracer ring writes.
 */
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/llmnpu_engine.h"
#include "src/obs/trace.h"
#include "src/predict/latency_model.h"
#include "src/predict/step_cost.h"
#include "src/serving/replay.h"
#include "src/serving/simulator.h"
#include "src/workloads/corpus.h"

namespace llmnpu {
namespace {

/** One METRIC row; `decode_placement` and `max_decode_batch` must be the
 *  values the run actually used (engine placement / options batch cap). */
void
EmitMetric(const char* mode, SchedPolicy policy, double load_rps,
           double offered_ratio, const ServingReport& report,
           const std::string& decode_placement, int max_decode_batch)
{
    std::printf(
        "METRIC {\"bench\": \"serving\", \"mode\": \"%s\", "
        "\"policy\": \"%s\", \"decode_placement\": \"%s\", "
        "\"max_decode_batch\": %d, \"load_rps\": %.3f, "
        "\"offered_ratio\": %.2f, \"throughput_rps\": %.3f, "
        "\"goodput_rps\": %.3f, \"slo_attainment\": %.3f, "
        "\"decode_tokens_per_sec\": %.3f, \"tpot_mean_ms\": %.2f, "
        "\"ttft_p50_ms\": %.1f, \"ttft_p99_ms\": %.1f, "
        "\"e2e_p99_ms\": %.1f, \"npu_utilization\": %.3f, "
        "\"preemptions\": %d}\n",
        mode, PolicyName(policy).c_str(), decode_placement.c_str(),
        max_decode_batch, load_rps,
        offered_ratio, report.throughput_rps, report.goodput_rps,
        report.slo_attainment, report.decode_tokens_per_sec,
        report.tpot_mean_ms, report.ttft_p50_ms, report.ttft_p99_ms,
        report.e2e_p99_ms, report.npu_utilization, report.preemptions);
}

/** The `--trace` scenario: a small fcfs run traced end to end (simulator
 *  virtual-time plane + tiny-model replay wall-clock plane, connected by
 *  request ids) and exported as Perfetto-loadable JSON. */
void
RunTracedScenario(const char* path, ServingCostModel& costs,
                  const std::vector<DatasetProfile>& mix)
{
    std::printf("\nTraced scenario: fcfs sim + tiny-model replay -> %s\n",
                path);
    obs::Tracer& tracer = obs::Tracer::Global();
    tracer.Enable();
    tracer.Reset();

    ServingOptions options;
    options.policy = SchedPolicy::kFcfs;
    options.num_requests = 6;
    options.rate_rps = 50.0;
    options.seed = 7;
    const ServingResult served =
        ServingSimulator(costs, mix, options).Run();

    const ModelConfig tiny = TinyTestConfig();
    const ModelWeights weights = GenerateSyntheticWeights(tiny);
    const Transformer transformer(weights);
    Fp32LinearExecutor fp32(weights);
    ReplayOptions replay_options;
    replay_options.max_output_tokens = 8;
    replay_options.max_prompt_tokens = 16;
    replay_options.check_bitwise = false;
    ReplayServingTrace(served.replay_steps, served.records, transformer,
                       fp32, replay_options);

    const bool ok = tracer.WriteChromeTrace(path);
    const unsigned long long recorded = tracer.TotalRecorded();
    const unsigned long long dropped = tracer.TotalDropped();
    tracer.Disable();
    std::printf("  %s %s (recorded %llu events, dropped %llu)\n",
                ok ? "wrote" : "FAILED to write", path, recorded, dropped);
    std::printf("METRIC {\"bench\": \"serving\", \"mode\": \"trace\", "
                "\"recorded\": %llu, \"dropped\": %llu, "
                "\"write_ok\": %s}\n",
                recorded, dropped, ok ? "true" : "false");
}

void
Run(const char* trace_path, uint64_t seed)
{
    const bool smoke = std::getenv("LLMNPU_SERVING_SMOKE") != nullptr;
    BenchHeader(
        "Serving: continuous batching + SLO-aware scheduling under load",
        "beyond-paper experiment: the Table 5 workloads as concurrent "
        "traffic on one shared NPU instead of one request at a time");

    const SocSpec soc = SocSpec::RedmiK70Pro();
    const ModelConfig config = Qwen15_1_8B();
    LlmNpuEngine engine;
    ServingCostModel costs(engine, config, soc);
    const std::vector<DatasetProfile> mix = PaperDatasets();

    // Offered load is expressed relative to the NPU's saturation rate for
    // the mixture: 1 / mean isolated prefill occupancy.
    double mean_prefill_ms = 0.0;
    for (const DatasetProfile& profile : mix) {
        mean_prefill_ms +=
            costs.Costs(profile.Typical()).PrefillMs() /
            static_cast<double>(mix.size());
    }
    const double capacity_rps = 1e3 / mean_prefill_ms;
    std::printf("\nMixture mean prefill occupancy %.1f ms -> NPU "
                "saturation ~%.2f req/s  (seed %llu)\n\n",
                mean_prefill_ms, capacity_rps,
                static_cast<unsigned long long>(seed));

    const std::vector<double> load_ratios =
        smoke ? std::vector<double>{0.5, 1.5}
              : std::vector<double>{0.4, 0.8, 1.2, 2.0};
    const std::vector<SchedPolicy> policies =
        smoke ? std::vector<SchedPolicy>{SchedPolicy::kFcfs,
                                         SchedPolicy::kSloEdf}
              : std::vector<SchedPolicy>{SchedPolicy::kFcfs,
                                         SchedPolicy::kShortestPromptFirst,
                                         SchedPolicy::kSloEdf};
    const int num_requests = smoke ? 16 : 80;

    Table table({"policy", "load/cap", "req/s", "goodput", "SLO%",
                 "ttft p50", "ttft p99", "e2e p99", "NPU util", "preempt"});
    for (double ratio : load_ratios) {
        const double rate = ratio * capacity_rps;
        for (SchedPolicy policy : policies) {
            ServingOptions options;
            options.policy = policy;
            options.rate_rps = rate;
            options.num_requests = num_requests;
            options.seed = seed;
            ServingSimulator sim(costs, mix, options);
            const ServingReport report = sim.Run().Report();
            table.AddRow({PolicyName(policy), StrFormat("%.1f", ratio),
                          StrFormat("%.2f", report.throughput_rps),
                          StrFormat("%.2f", report.goodput_rps),
                          StrFormat("%.0f%%", report.slo_attainment * 100),
                          HumanMs(report.ttft_p50_ms),
                          HumanMs(report.ttft_p99_ms),
                          HumanMs(report.e2e_p99_ms),
                          StrFormat("%.0f%%", report.npu_utilization * 100),
                          StrFormat("%d", report.preemptions)});
            EmitMetric("open", policy, rate, ratio, report,
                       DecodePlacementName(
                           engine.options().decode_placement),
                       options.max_decode_batch);
        }
    }
    table.Print();

    // Step-level decode economics: per-token cost of one continuously
    // batched decode step at depth B, CPU float path vs NPU decode graph.
    // NPU decode pays a slower weight stream (~11.3 vs ~22 GB/s) but an
    // engine-derived near-zero batching marginal (one stream serves all B
    // rows), so the CPU wins at shallow batches and the NPU wins once the
    // batch is deep enough — the crossover this table locates.
    {
        std::printf("\nDecode step cost per token (Qwen1.5-1.8B, context "
                    "512):\n");
        LlmNpuOptions npu_options;
        npu_options.decode_placement = DecodePlacement::kNpuQuant;
        LlmNpuEngine npu_engine(npu_options);
        const double cpu_token_ms =
            costs.Costs({512, 1}).decode_token_ms;
        const double cpu_marginal = ServingOptions().decode_batch_marginal;
        Table step_table({"batch", "cpu ms/tok", "npu ms/tok", "winner"});
        for (int batch : {1, 2, 4, 8, 16, 32}) {
            const double cpu_tpot =
                cpu_token_ms *
                (1.0 + (batch - 1) * cpu_marginal) / batch;
            const double npu_tpot =
                npu_engine.NpuDecodeStep(config, soc, 512, batch)
                    .TotalMs() /
                batch;
            step_table.AddRow({StrFormat("%d", batch),
                               StrFormat("%.1f", cpu_tpot),
                               StrFormat("%.1f", npu_tpot),
                               cpu_tpot <= npu_tpot ? "cpu" : "npu"});
            std::printf("METRIC {\"bench\": \"serving\", "
                        "\"mode\": \"decode_step\", \"batch\": %d, "
                        "\"cpu_tpot_ms\": %.2f, \"npu_tpot_ms\": %.2f}\n",
                        batch, cpu_tpot, npu_tpot);
        }
        step_table.Print();
    }

    // Decode placement x batch depth inside the full serving loop, one row
    // set per *registered placement policy* (src/serving/policy.h): the
    // static rows pin that the placement knob composes with the serving
    // loop (at these prefill-bound loads the decode pool stays shallow and
    // the CPU placement wins end-to-end), and the dynamic row runs the
    // predicted-cost policy deciding per step through the calibrated
    // oracle. A new policy registered there appears here with no bench
    // change.
    std::printf("\nPlacement policy x batch depth (fcfs, load %.1fx "
                "capacity):\n",
                smoke ? 1.5 : 1.2);
    Table placement_table({"policy", "max B", "req/s", "tok/s", "tpot mean",
                           "ttft p99", "e2e p99", "preempt"});
    const std::vector<int> batch_depths =
        smoke ? std::vector<int>{8, 32} : std::vector<int>{4, 8, 32};
    for (const PlacementPolicySpec& spec : PlacementPolicyRegistry()) {
        LlmNpuOptions engine_options;
        engine_options.decode_placement = spec.profile_placement;
        LlmNpuEngine placed_engine(engine_options);
        ServingCostModel placed_costs(placed_engine, config, soc);
        // Static specs run the legacy null-policy path (bit-identical to
        // the pre-policy simulator); the dynamic spec decides through the
        // calibrated step-cost oracle.
        const std::shared_ptr<PlacementPolicy> policy_object =
            spec.dynamic ? MakePlacementPolicy(spec.name, &placed_costs)
                         : nullptr;
        for (int depth : batch_depths) {
            ServingOptions options;
            options.policy = SchedPolicy::kFcfs;
            options.placement_policy = policy_object;
            options.rate_rps = (smoke ? 1.5 : 1.2) * capacity_rps;
            options.num_requests = num_requests;
            options.seed = seed;
            options.max_decode_batch = depth;
            ServingSimulator sim(placed_costs, mix, options);
            const ServingReport report = sim.Run().Report();
            const std::string row_name =
                spec.dynamic ? spec.name
                             : DecodePlacementName(spec.profile_placement);
            placement_table.AddRow(
                {row_name, StrFormat("%d", depth),
                 StrFormat("%.2f", report.throughput_rps),
                 StrFormat("%.1f", report.decode_tokens_per_sec),
                 HumanMs(report.tpot_mean_ms), HumanMs(report.ttft_p99_ms),
                 HumanMs(report.e2e_p99_ms),
                 StrFormat("%d", report.preemptions)});
            EmitMetric("decode_placement", options.policy, options.rate_rps,
                       smoke ? 1.5 : 1.2, report, row_name,
                       options.max_decode_batch);
        }
    }
    placement_table.Print();

    // Dynamic-placement load sweep on a decode-heavy workload. Short
    // prompts with long outputs deepen the decode pool with load, walking
    // the machine across the CPU/NPU decode crossover (step-cost table
    // above): shallow pools favor CPU decode, deep ones the NPU's shared
    // weight stream. A static placement is stuck on one side; the dynamic
    // policy — a PredictedPlacement deciding through the *fitted* latency
    // predictor, the full offline-fit -> online-decision pipeline — flips
    // members at step boundaries and should match the best static at every
    // load (CI bands dynamic >= 0.95x best static per load). The scenario
    // is pinned identically in smoke and full runs so CI values match the
    // committed baseline.
    {
        const std::vector<DatasetProfile> decode_heavy{
            {"decode-heavy", "policy sweep", 48, 96, 160, 256}};
        double isolated_ms = 0.0;
        for (const DatasetProfile& profile : decode_heavy) {
            isolated_ms += costs.IsolatedE2eMs(profile.Typical()) /
                           static_cast<double>(decode_heavy.size());
        }
        const double sweep_capacity_rps = 1e3 / isolated_ms;
        std::printf("\nPlacement policy x load, decode-heavy mix "
                    "(isolated e2e %.0f ms -> capacity ~%.2f req/s):\n",
                    isolated_ms, sweep_capacity_rps);

        // The fitted predictor: decode-step samples from the calibrated
        // oracle over a (batch, context) grid, fitted per op class —
        // offline fitting, standing in for BENCH_results.json rows (the
        // bench_predict binary fits from the committed file itself).
        std::vector<predict::OpSample> step_samples;
        for (int64_t ctx : {128, 256, 512, 1024}) {
            for (int batch : {1, 2, 4, 8, 16, 32}) {
                step_samples.push_back(
                    {predict::OpClass::kDecodeStepCpu,
                     predict::StepFeatures(batch, ctx),
                     costs.StepMs(DecodePlacement::kCpuFloat, ctx, batch)});
                step_samples.push_back(
                    {predict::OpClass::kDecodeStepNpu,
                     predict::StepFeatures(batch, ctx),
                     costs.StepMs(DecodePlacement::kNpuQuant, ctx, batch)});
            }
        }
        predict::LatencyModel step_model;
        step_model.Fit(step_samples);
        predict::PredictedStepCosts fitted(step_model);

        // Ratios are against the *isolated* completion rate, so they run
        // well past 1: continuous batching multiplies decode capacity, and
        // only the deep end (~8x) saturates the CPU path's batch budget.
        const std::vector<double> sweep_ratios{1.0, 4.0, 8.0};
        const int sweep_requests = 32;  // pinned across smoke/full for CI
        Table sweep_table({"policy", "load/cap", "req/s", "goodput",
                           "SLO%", "tok/s", "flips"});
        for (double ratio : sweep_ratios) {
            for (const PlacementPolicySpec& spec :
                 PlacementPolicyRegistry()) {
                LlmNpuOptions engine_options;
                engine_options.decode_placement = spec.profile_placement;
                LlmNpuEngine placed_engine(engine_options);
                ServingCostModel placed_costs(placed_engine, config, soc);
                ServingOptions options;
                options.policy = SchedPolicy::kFcfs;
                options.rate_rps = ratio * sweep_capacity_rps;
                options.num_requests = sweep_requests;
                options.seed = seed;
                options.max_decode_batch = 32;
                if (spec.dynamic) {
                    options.placement_policy =
                        std::make_shared<PredictedPlacement>(fitted,
                                                             spec.name);
                }
                ServingSimulator sim(placed_costs, decode_heavy, options);
                const ServingResult result = sim.Run();
                const ServingReport report = result.Report();
                // Mid-run placement flips: per-request transitions across
                // the recorded decode-step placements (dynamic runs only;
                // static schedules record none and count zero).
                int flips = 0;
                {
                    std::map<int, DecodePlacement> last;
                    for (const ReplayStep& step : result.replay_steps) {
                        if (step.is_prefill || step.placements.empty()) {
                            continue;
                        }
                        for (size_t mi = 0; mi < step.request_ids.size();
                             ++mi) {
                            const int id = step.request_ids[mi];
                            const DecodePlacement place =
                                step.placements[mi];
                            auto it = last.find(id);
                            if (it != last.end() && it->second != place) {
                                ++flips;
                            }
                            last[id] = place;
                        }
                    }
                }
                sweep_table.AddRow(
                    {spec.name, StrFormat("%.1f", ratio),
                     StrFormat("%.2f", report.throughput_rps),
                     StrFormat("%.2f", report.goodput_rps),
                     StrFormat("%.0f%%", report.slo_attainment * 100),
                     StrFormat("%.1f", report.decode_tokens_per_sec),
                     StrFormat("%d", flips)});
                std::printf(
                    "METRIC {\"bench\": \"serving\", "
                    "\"mode\": \"policy_sweep\", "
                    "\"placement_policy\": \"%s\", "
                    "\"admission_policy\": \"threshold\", "
                    "\"offered_ratio\": %.2f, \"load_rps\": %.3f, "
                    "\"throughput_rps\": %.3f, \"goodput_rps\": %.3f, "
                    "\"slo_attainment\": %.3f, "
                    "\"decode_tokens_per_sec\": %.3f, "
                    "\"placement_flips\": %d}\n",
                    spec.name.c_str(), ratio, options.rate_rps,
                    report.throughput_rps, report.goodput_rps,
                    report.slo_attainment, report.decode_tokens_per_sec,
                    flips);
            }
        }
        sweep_table.Print();

        // Overload admission: at the deepest load under a *tight* SLO
        // (2x isolated — decode congestion alone can blow it), gate
        // arrivals on predicted SLO feasibility (queue backlog + isolated
        // service inflated by live congestion vs deadline). Turning
        // infeasible work away at the door keeps the admitted pool
        // shallow enough to meet its deadlines instead of letting every
        // request drag every other past theirs.
        {
            const double ratio = sweep_ratios.back();
            Table admit_table(
                {"admission", "req/s", "goodput", "SLO%", "rejected"});
            for (const std::string& admission_name :
                 AdmissionPolicyRegistry()) {
                ServingOptions options;
                options.policy = SchedPolicy::kFcfs;
                options.rate_rps = ratio * sweep_capacity_rps;
                options.num_requests = sweep_requests;
                options.seed = seed;
                options.max_decode_batch = 32;
                options.slo_factor = 2.0;
                options.placement_policy =
                    std::make_shared<PredictedPlacement>(fitted);
                options.admission_policy =
                    MakeAdmissionPolicy(admission_name);
                ServingSimulator sim(costs, decode_heavy, options);
                const ServingReport report = sim.Run().Report();
                admit_table.AddRow(
                    {admission_name,
                     StrFormat("%.2f", report.throughput_rps),
                     StrFormat("%.2f", report.goodput_rps),
                     StrFormat("%.0f%%", report.slo_attainment * 100),
                     StrFormat("%d", report.rejected)});
                std::printf(
                    "METRIC {\"bench\": \"serving\", "
                    "\"mode\": \"policy_sweep\", "
                    "\"placement_policy\": \"predicted\", "
                    "\"admission_policy\": \"%s\", "
                    "\"offered_ratio\": %.2f, \"load_rps\": %.3f, "
                    "\"throughput_rps\": %.3f, \"goodput_rps\": %.3f, "
                    "\"slo_attainment\": %.3f, "
                    "\"decode_tokens_per_sec\": %.3f, "
                    "\"placement_flips\": -1}\n",
                    admission_name.c_str(), ratio, options.rate_rps,
                    report.throughput_rps, report.goodput_rps,
                    report.slo_attainment, report.decode_tokens_per_sec);
            }
            std::printf("\nAdmission policy under overload (%.1fx "
                        "capacity, predicted placement):\n",
                        ratio);
            admit_table.Print();
        }
    }

    // KV-memory-bounded serving: sweep the page-pool budget from starved
    // to ample. Table 5 prompts span 488-1787 tokens (31-113 pages at 16
    // positions/page), so small pools reject the LongBench share outright
    // (admission control), mid pools admit everything but evict under
    // decode growth (preemption by recompute), and large pools never
    // touch either mechanism — the row set pins all three regimes plus
    // the occupancy accounting (peak <= budget, time-mean <= peak).
    {
        // The sweep's workload is pinned identically in smoke and full
        // modes (smoke only trims the pool list): CI band-checks the
        // smoke run's deterministic occupancy means against the committed
        // full-run baseline, so values at matching pool keys must agree.
        const double kv_ratio = 1.2;
        const int kv_requests = 40;
        std::printf("\nPaged-KV pool sweep (fcfs, load %.1fx capacity, "
                    "page size 16):\n",
                    kv_ratio);
        Table kv_table({"pool pages", "req/s", "SLO%", "rejected",
                        "evictions", "peak", "mean occ"});
        const std::vector<int64_t> pool_sizes =
            smoke ? std::vector<int64_t>{64, 512}
                  : std::vector<int64_t>{64, 128, 256, 512};
        for (int64_t pool : pool_sizes) {
            ServingOptions options;
            options.policy = SchedPolicy::kFcfs;
            options.rate_rps = kv_ratio * capacity_rps;
            options.num_requests = kv_requests;
            options.seed = seed;
            options.kv_pool_pages = pool;
            options.kv_page_size = 16;
            ServingSimulator sim(costs, mix, options);
            const ServingReport report = sim.Run().Report();
            kv_table.AddRow(
                {StrFormat("%lld", static_cast<long long>(pool)),
                 StrFormat("%.2f", report.throughput_rps),
                 StrFormat("%.0f%%", report.slo_attainment * 100),
                 StrFormat("%d", report.rejected),
                 StrFormat("%d", report.evictions),
                 StrFormat("%lld",
                           static_cast<long long>(report.kv_pages_peak)),
                 StrFormat("%.1f", report.kv_pages_mean)});
            std::printf(
                "METRIC {\"bench\": \"serving\", \"mode\": \"paged_kv\", "
                "\"kv_pool_pages\": %lld, \"kv_page_size\": 16, "
                "\"load_rps\": %.3f, \"throughput_rps\": %.3f, "
                "\"slo_attainment\": %.3f, \"rejected\": %d, "
                "\"evictions\": %d, \"kv_pages_peak\": %lld, "
                "\"kv_pages_mean\": %.3f}\n",
                static_cast<long long>(pool), options.rate_rps,
                report.throughput_rps, report.slo_attainment,
                report.rejected, report.evictions,
                static_cast<long long>(report.kv_pages_peak),
                report.kv_pages_mean);
        }
        kv_table.Print();
    }

    // Shared-system-prompt capacity sweep: share fraction x pool budget.
    // One 256-token system prompt (16 pages) is carried by a growing
    // fraction of arrivals; its KV pages are charged once across all
    // referencing requests and sharers prefill only their private suffix.
    // Under overload with queue expiry, the once-counted prefix converts
    // directly into concurrency — requests served per page of budget
    // (served_per_100_pages) must rise with the share fraction at every
    // pool size, the capacity-win curve CI band-checks. The fraction axis
    // is pinned across smoke/full (the share draws nest at a fixed seed,
    // so runs compare like against like); smoke trims only the pool list.
    {
        const DatasetProfile shared_mix{"shared-prompt", "assistant apps",
                                        320, 448, 24, 48};
        const double isolated_ms =
            costs.IsolatedE2eMs(shared_mix.Typical());
        const double shared_capacity_rps = 1e3 / isolated_ms;
        const int prefix_len = 256;  // 16 pages at 16 positions/page
        const std::vector<int64_t> shared_pools =
            smoke ? std::vector<int64_t>{64}
                  : std::vector<int64_t>{48, 64, 96};
        const std::vector<double> fractions{0.0, 0.25, 0.5, 0.75, 1.0};
        std::printf("\nShared system prompt: capacity vs share fraction "
                    "(fcfs, %d-token prefix, overload 3.0x, queue "
                    "expiry on):\n",
                    prefix_len);
        Table shared_table({"pool", "share", "admitted", "completed",
                            "shed", "evict", "peak", "served/100pg"});
        for (int64_t pool : shared_pools) {
            for (double fraction : fractions) {
                ServingOptions options;
                options.policy = SchedPolicy::kFcfs;
                options.rate_rps = 3.0 * shared_capacity_rps;
                options.num_requests = 48;  // pinned across smoke/full
                options.seed = seed;
                options.kv_pool_pages = pool;
                options.kv_page_size = 16;
                options.shared_prefix.prefix_len = prefix_len;
                options.shared_prefix.share_fraction = fraction;
                options.shed_expired_queued = true;
                ServingSimulator sim(costs, {shared_mix}, options);
                const ServingResult result = sim.Run();
                const ServingReport report = result.Report();
                const double served_per_100 =
                    100.0 * report.completed / static_cast<double>(pool);
                shared_table.AddRow(
                    {StrFormat("%lld", static_cast<long long>(pool)),
                     StrFormat("%.2f", fraction),
                     StrFormat("%d", report.admitted),
                     StrFormat("%d", report.completed),
                     StrFormat("%d", report.shed),
                     StrFormat("%d", report.evictions),
                     StrFormat("%lld", static_cast<long long>(
                                           result.kv_pages_peak)),
                     StrFormat("%.1f", served_per_100)});
                std::printf(
                    "METRIC {\"bench\": \"serving\", "
                    "\"mode\": \"shared_prefix\", "
                    "\"kv_pool_pages\": %lld, \"kv_page_size\": 16, "
                    "\"prefix_len\": %d, \"share_fraction\": %.2f, "
                    "\"load_rps\": %.3f, \"admitted\": %d, "
                    "\"completed\": %d, \"shed\": %d, \"rejected\": %d, "
                    "\"evictions\": %d, \"shared_requests\": %d, "
                    "\"prefix_materializations\": %d, "
                    "\"prefix_drops\": %d, \"kv_pages_peak\": %lld, "
                    "\"kv_pages_mean\": %.3f, "
                    "\"served_per_100_pages\": %.3f}\n",
                    static_cast<long long>(pool), prefix_len, fraction,
                    options.rate_rps, report.admitted, report.completed,
                    report.shed, report.rejected, report.evictions,
                    result.shared_requests,
                    result.shared_prefix_materializations,
                    result.shared_prefix_drops,
                    static_cast<long long>(result.kv_pages_peak),
                    result.kv_pages_mean, served_per_100);
            }
        }
        shared_table.Print();
    }

    // Closed loop: a fixed population of chatty clients (think time 500ms),
    // the latency-vs-concurrency view of the same machine.
    std::printf("\nClosed loop (%d clients, 500 ms think time):\n",
                smoke ? 2 : 6);
    ServingOptions closed;
    closed.closed_loop = true;
    closed.num_clients = smoke ? 2 : 6;
    closed.think_time_ms = 500.0;
    closed.num_requests = num_requests;
    closed.seed = seed;
    closed.policy = SchedPolicy::kFcfs;
    ServingSimulator closed_sim(costs, mix, closed);
    const ServingReport closed_report = closed_sim.Run().Report();
    std::printf("  %s\n", closed_report.Summary().c_str());
    EmitMetric("closed", closed.policy, 0.0, 0.0, closed_report,
               DecodePlacementName(engine.options().decode_placement),
               closed.max_decode_batch);

    // Degraded-mode sweep: NPU fault rate x failover policy. Decode is
    // placed on the NPU so chunk *and* decode dispatch faults bite; with
    // the circuit breaker off ("none") requests retry until the budget
    // sheds them, with it on ("breaker") their decode fails over to the
    // packed-fp32 CPU path mid-stream. The rate-0 row is bit-identical to
    // a fault-free run and is band-checked against the committed baseline.
    {
        std::printf("\nFault storm x failover policy (fcfs, NPU decode, "
                    "load 0.8x capacity):\n");
        LlmNpuOptions npu_options;
        npu_options.decode_placement = DecodePlacement::kNpuQuant;
        LlmNpuEngine npu_engine(npu_options);
        ServingCostModel npu_costs(npu_engine, config, soc);
        const int fault_requests = 24;  // pinned across smoke/full for CI
        const std::vector<double> fault_rates =
            smoke ? std::vector<double>{0.0, 0.5}
                  : std::vector<double>{0.0, 0.1, 0.3, 0.5};
        Table fault_table({"fault rate", "failover", "goodput", "faults",
                           "retries", "shed", "failovers", "e2e p99"});
        for (double rate : fault_rates) {
            for (bool breaker : {false, true}) {
                ServingOptions options;
                options.policy = SchedPolicy::kFcfs;
                options.rate_rps = 0.8 * capacity_rps;
                options.num_requests = fault_requests;
                options.seed = seed;
                options.faults.seed = seed;
                options.faults.chunk_failure_prob = rate * 0.6;
                options.faults.chunk_stall_prob = rate * 0.3;
                options.faults.decode_failure_prob = rate;
                options.faults.circuit_breaker_k = breaker ? 3 : 0;
                ServingSimulator sim(npu_costs, mix, options);
                const ServingResult result = sim.Run();
                const ServingReport report = result.Report();
                const char* failover = breaker ? "breaker" : "none";
                fault_table.AddRow(
                    {StrFormat("%.1f", rate), failover,
                     StrFormat("%.2f", report.goodput_rps),
                     StrFormat("%d", report.faults),
                     StrFormat("%d", report.retries),
                     StrFormat("%d", report.shed),
                     StrFormat("%d", report.failovers),
                     HumanMs(report.e2e_p99_ms)});
                std::printf(
                    "METRIC {\"bench\": \"serving\", \"mode\": \"faults\", "
                    "\"fault_rate\": %.2f, \"failover\": \"%s\", "
                    "\"throughput_rps\": %.3f, \"goodput_rps\": %.3f, "
                    "\"slo_attainment\": %.3f, \"faults\": %d, "
                    "\"retries\": %d, \"shed\": %d, \"failovers\": %d, "
                    "\"npu_faulted_frac\": %.3f, \"e2e_p99_ms\": %.1f}\n",
                    rate, failover, report.throughput_rps,
                    report.goodput_rps, report.slo_attainment,
                    report.faults, report.retries, report.shed,
                    report.failovers,
                    result.makespan_ms > 0.0
                        ? result.npu_faulted_ms / result.makespan_ms
                        : 0.0,
                    report.e2e_p99_ms);
            }
        }
        fault_table.Print();
    }

    // Memory-pressure scenario: the live KV budget shrinks to 25% mid-run.
    // The defense routes through the termination-safe eviction order, so
    // the run completes and the post-shrink peak respects the live budget
    // (the invariant CI asserts on this row).
    {
        std::printf("\nMid-run KV pool shrink (fcfs, 256 -> 64 pages):\n");
        ServingOptions options;
        options.policy = SchedPolicy::kFcfs;
        // Arrivals burst in well ahead of the shrink so the pressure hits
        // admitted, in-flight work (evictions + backpressure), not the
        // admission check.
        options.rate_rps = 10.0 * capacity_rps;
        options.num_requests = 24;  // pinned across smoke/full for CI
        options.seed = seed;
        options.kv_pool_pages = 256;
        options.kv_page_size = 16;
        options.faults.seed = seed;
        options.faults.pool_shrink_at_ms = 2000.0;
        options.faults.pool_shrink_to = 0.25;
        ServingSimulator sim(costs, mix, options);
        const ServingResult result = sim.Run();
        const ServingReport report = result.Report();
        std::printf("  %s\n", report.Summary().c_str());
        std::printf(
            "METRIC {\"bench\": \"serving\", \"mode\": \"fault_shrink\", "
            "\"kv_pool_pages\": %lld, \"kv_pool_pages_live\": %lld, "
            "\"kv_pages_peak\": %lld, \"kv_pages_peak_post_shrink\": %lld, "
            "\"evictions\": %d, \"shed\": %d, \"throughput_rps\": %.3f}\n",
            static_cast<long long>(result.kv_pool_pages),
            static_cast<long long>(result.kv_pool_pages_live),
            static_cast<long long>(result.kv_pages_peak),
            static_cast<long long>(result.kv_pages_peak_post_shrink),
            report.evictions, report.shed, report.throughput_rps);
    }

    if (trace_path != nullptr) RunTracedScenario(trace_path, costs, mix);
}

}  // namespace
}  // namespace llmnpu

int
main(int argc, char** argv)
{
    const char* trace_path = std::getenv("LLMNPU_TRACE_FILE");
    // Arrival + fault-injection seed: --seed beats LLMNPU_SEED (exported
    // by `run_all --seed`) beats the committed-baseline default.
    unsigned long long seed = 2026;
    if (const char* env_seed = std::getenv("LLMNPU_SEED")) {
        seed = std::strtoull(env_seed, nullptr, 10);
    }
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0) {
            trace_path = "serving_trace.json";
            if (i + 1 < argc && argv[i + 1][0] != '-') {
                trace_path = argv[++i];
            }
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(
                stderr,
                "usage: bench_serving [--trace [PATH]] [--seed N]\n");
            return 2;
        }
    }
    llmnpu::Run(trace_path, seed);
    return 0;
}
