/**
 * @file
 * Reproduces Table 5: end-to-end latency — "total (prefill, decode)" — on
 * real mobile-application workloads (LongBench, DroidTask, Persona-Chat)
 * across the five models on the Redmi K70 Pro.
 */
#include "bench/bench_util.h"
#include "src/core/llmnpu_engine.h"
#include "src/engines/baselines.h"
#include "src/util/stats.h"
#include "src/workloads/datasets.h"

namespace llmnpu {
namespace {

std::string
Cell(const EngineResult& result)
{
    return StrFormat("%.1f (%.2f, %.2f)", result.EndToEndMs() / 1e3,
                     result.prefill_ms / 1e3, result.decode_ms / 1e3);
}

/** Decode-placement METRIC row: where llm.npu decodes and how fast. The
 *  values are simulator outputs (host-independent), so CI band-checks them
 *  against the committed baseline (cmake/check_bench_metrics.cmake). */
void
EmitDecodePlacementMetric(const std::string& dataset,
                          const std::string& model, const char* placement,
                          const InferenceRequest& req,
                          const EngineResult& result)
{
    std::printf(
        "METRIC {\"bench\": \"table5_e2e\", \"dataset\": \"%s\", "
        "\"model\": \"%s\", \"decode_placement\": \"%s\", "
        "\"decode_tokens_per_sec\": %.3f, \"prefill_ms\": %.2f, "
        "\"decode_ms\": %.2f, \"e2e_ms\": %.2f}\n",
        dataset.c_str(), model.c_str(), placement,
        result.DecodeTokensPerSec(req.output_len), result.prefill_ms,
        result.decode_ms, result.EndToEndMs());
}

void
Run()
{
    BenchHeader("Table 5: end-to-end latency on real mobile applications",
                "llm.npu has the lowest latency on every dataset; geo-mean "
                "speedups 1.1-34.7x depending on baseline and dataset");
    const SocSpec soc = SocSpec::RedmiK70Pro();
    auto baselines = MakePaperBaselines();
    LlmNpuEngine ours;
    LlmNpuOptions npu_decode_options;
    npu_decode_options.decode_placement = DecodePlacement::kNpuQuant;
    npu_decode_options.label = "llm.npu (NPU decode)";
    LlmNpuEngine ours_npu_decode(npu_decode_options);

    for (const DatasetProfile& dataset : PaperDatasets()) {
        std::printf("\n-- %s (%s; prompt %d-%d, output %d-%d) --\n",
                    dataset.name.c_str(), dataset.application.c_str(),
                    dataset.prompt_min, dataset.prompt_max,
                    dataset.output_min, dataset.output_max);
        Table table({"Model", "MLC", "llama.cpp", "MNN", "PowerInfer-V2",
                     "TFLite", "Ours", "best speedup"});
        std::vector<std::vector<double>> speedups(baselines.size());
        for (const ModelConfig& config : PaperModels()) {
            const InferenceRequest req = dataset.Typical();
            const EngineResult our_result = ours.Run(config, soc, req);
            EmitDecodePlacementMetric(dataset.name, config.name, "cpu", req,
                                      our_result);
            EmitDecodePlacementMetric(
                dataset.name, config.name, "npu", req,
                ours_npu_decode.Run(config, soc, req));
            std::vector<std::string> row = {config.name};
            // Paper column order: MLC, LCPP, MNN, PI, TFLite.
            const size_t order[] = {3, 0, 1, 4, 2};
            double best = 0.0;
            for (size_t idx : order) {
                auto& engine = baselines[idx];
                if (!engine->SupportsModel(config)) {
                    row.push_back("-");
                    continue;
                }
                const EngineResult result = engine->Run(config, soc, req);
                row.push_back(Cell(result));
                const double speedup =
                    result.EndToEndMs() / our_result.EndToEndMs();
                speedups[idx].push_back(speedup);
                best = std::max(best, speedup);
            }
            row.push_back(Cell(our_result));
            row.push_back(StrFormat("%.1fx", best));
            table.AddRow(std::move(row));
        }
        table.Print();
        std::printf("Geo-mean speedup of llm.npu: ");
        for (size_t i = 0; i < baselines.size(); ++i) {
            if (speedups[i].empty()) continue;
            std::printf("%s %.1fx  ", baselines[i]->Name().c_str(),
                        GeoMean(speedups[i]));
        }
        std::printf("\n");
    }
    std::printf("\nUnits: seconds, formatted 'total (prefill, decode)' as "
                "in the paper.\n");
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
