/**
 * @file
 * Reproduces Figure 14: prefill speed (tokens/s) for the five models on two
 * devices at prompt lengths 64/256/1024, llm.npu vs all baselines.
 */
#include "bench/bench_util.h"
#include "src/core/llmnpu_engine.h"
#include "src/engines/baselines.h"

namespace llmnpu {
namespace {

void
RunDevice(const SocSpec& soc)
{
    std::printf("\n================ %s (%s) ================\n",
                soc.name().c_str(), soc.soc_name().c_str());
    auto baselines = MakePaperBaselines();
    LlmNpuEngine ours;

    for (int prompt_len : {64, 256, 1024}) {
        std::printf("\n-- prompt length %d --\n", prompt_len);
        Table table({"Model", "llm.npu (Ours)", "llama.cpp-CPU", "MNN-CPU",
                     "TFLite-GPU", "MLC-GPU", "PowerInfer-V2-NPU"});
        for (const ModelConfig& config : PaperModels()) {
            const InferenceRequest req{prompt_len, 1};
            std::vector<std::string> row = {config.name};
            const EngineResult our_result = ours.Run(config, soc, req);
            row.push_back(StrFormat(
                "%.0f tok/s", our_result.PrefillTokensPerSec(prompt_len)));
            for (auto& engine : baselines) {
                if (!engine->SupportsModel(config)) {
                    row.push_back("-");
                    continue;
                }
                const EngineResult result = engine->Run(config, soc, req);
                row.push_back(StrFormat(
                    "%.0f tok/s (%.1fx)",
                    result.PrefillTokensPerSec(prompt_len),
                    result.prefill_ms / our_result.prefill_ms));
            }
            table.AddRow(std::move(row));
        }
        table.Print();
    }
}

void
Run()
{
    BenchHeader(
        "Figure 14: prefill speed under different prompt lengths",
        "@1024 on Redmi K70 Pro llm.npu is 18.2-38.4x over llama.cpp-CPU, "
        "7.3x over MNN-CPU, 32.5-43.6x over MLC-GPU, 1.27-2.34x over "
        "TFLite-GPU, 3.28-5.32x over PowerInfer-V2; first >1000 tok/s "
        "billion-sized prefill on COTS phones");
    RunDevice(SocSpec::RedmiK70Pro());
    RunDevice(SocSpec::RedmiK60Pro());

    const SocSpec k70 = SocSpec::RedmiK70Pro();
    LlmNpuEngine ours;
    const EngineResult qwen =
        ours.Run(Qwen15_1_8B(), k70, {1024, 1});
    std::printf("\nHeadline: Qwen1.5-1.8B @1024 = %.0f tok/s "
                "(paper: >1000 tok/s)\n",
                qwen.PrefillTokensPerSec(1024));
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
