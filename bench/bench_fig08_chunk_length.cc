/**
 * @file
 * Reproduces Figure 8: per-token latency of the QKV Linear and FFN
 * subgraphs across chunk lengths on Xiaomi-14-class hardware; the paper
 * picks 256 as the sweet spot.
 */
#include "bench/bench_util.h"
#include "src/sim/processor.h"
#include "src/model/config.h"
#include "src/sim/soc.h"

namespace llmnpu {
namespace {

double
PerTokenMs(const ProcessorModel& npu, int chunk, int64_t k, int64_t n)
{
    const double ms =
        npu.MatMulMs({chunk, k, n}, ExecFormat::kInt8PerTensor, 0, true) +
        npu.DispatchMs();
    return ms / chunk;
}

void
Run()
{
    BenchHeader("Figure 8: per-token QKV/FFN latency vs chunk length",
                "latency falls steeply to a minimum near chunk length 256, "
                "then rises mildly (llm.npu picks 256)");
    const SocSpec soc = SocSpec::RedmiK70Pro();
    const auto& npu = soc.Processor(Unit::kNpu);
    const ModelConfig qwen = Qwen15_1_8B();
    const ModelConfig gemma = Gemma2B();

    Table table({"Chunk length", "QKV Qwen1.5-1.8B (ms/token)",
                 "FFN Qwen1.5-1.8B", "QKV Gemma-2B", "FFN Gemma-2B"});
    double best_chunk = 0, best_latency = 1e18;
    for (int chunk : {32, 64, 128, 192, 256, 384, 512, 768, 1024}) {
        const double qkv_qwen = PerTokenMs(npu, chunk, qwen.hidden_size,
                                           3 * qwen.hidden_size);
        const double ffn_qwen =
            PerTokenMs(npu, chunk, qwen.hidden_size, 2 * qwen.ffn_hidden) +
            PerTokenMs(npu, chunk, qwen.ffn_hidden, qwen.hidden_size);
        const double qkv_gemma = PerTokenMs(
            npu, chunk, gemma.hidden_size,
            static_cast<int64_t>(gemma.num_heads) * gemma.head_dim +
                2 * gemma.num_kv_heads * gemma.head_dim);
        const double ffn_gemma =
            PerTokenMs(npu, chunk, gemma.hidden_size, 2 * gemma.ffn_hidden) +
            PerTokenMs(npu, chunk, gemma.ffn_hidden, gemma.hidden_size);
        table.AddRow({StrFormat("%d", chunk), Table::Num(qkv_qwen, 4),
                      Table::Num(ffn_qwen, 4), Table::Num(qkv_gemma, 4),
                      Table::Num(ffn_gemma, 4)});
        const double combined = qkv_qwen + ffn_qwen + qkv_gemma + ffn_gemma;
        if (combined < best_latency) {
            best_latency = combined;
            best_chunk = chunk;
        }
    }
    table.Print();
    std::printf("\nMeasured optimum chunk length: %.0f (paper: 256)\n",
                best_chunk);
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
