/**
 * @file
 * Reproduces Figure 12: per-linear outlier importance (largest outlier over
 * the quantization scale) and the accuracy-vs-pruned-layers curve.
 */
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/core/outlier_profile.h"
#include "src/core/shadow_executor.h"
#include "src/workloads/accuracy.h"
#include "src/workloads/corpus.h"

namespace llmnpu {
namespace {

void
Run()
{
    BenchHeader("Figure 12: outlier importance and pruning impact",
                "importance varies widely across linears; pruning the "
                "least-important ~85% keeps accuracy within ~1%, pruning "
                "everything collapses it");
    const ModelConfig proxy = ScaledProxy(Qwen15_1_8B(), 192, 6, 512);
    ModelWeights weights = GenerateSyntheticWeights(proxy);
    Transformer model(weights);

    CorpusOptions corpus_options;
    corpus_options.vocab_size = proxy.vocab_size;
    corpus_options.num_sequences = 6;
    corpus_options.min_len = 32;
    corpus_options.max_len = 64;
    const auto corpus = MakeCorpus(corpus_options);
    const CalibrationData calib = CalibrationData::Collect(model, corpus);
    const OutlierProfile profile =
        OutlierProfile::Collect(model, calib, corpus);

    // Left panel: importance per linear, in layer order.
    Table left({"Linear index", "layer", "kind", "importance", "rank"});
    int index = 0;
    for (int l = 0; l < proxy.num_layers; ++l) {
        for (const auto& spec : proxy.LayerLinears()) {
            const auto& stats = profile.Stats(l, spec.kind);
            left.AddRow({StrFormat("%d", index++), StrFormat("%d", l),
                         LinearKindName(spec.kind),
                         Table::Num(stats.importance, 2),
                         StrFormat("%d",
                                   profile.ImportanceRank(l, spec.kind))});
        }
    }
    left.Print();

    // Right panel: accuracy vs pruning rate.
    // run_all --quick: fewer eval sequences and only the key rates.
    const bool quick = std::getenv("LLMNPU_BENCH_QUICK") != nullptr;
    corpus_options.seed = 0xe;
    corpus_options.num_sequences = quick ? 6 : 12;
    const auto eval = MakeCorpus(corpus_options);
    std::printf("\nAccuracy (top-1 agreement with FP16) vs pruned "
                "fraction:\n");
    Table right({"Pruning rate", "agreement", "resident shadow weights"});
    const std::vector<double> rates =
        quick ? std::vector<double>{0.0, 0.85, 1.0}
              : std::vector<double>{0.0, 0.25, 0.5, 0.75, 0.85, 0.95, 1.0};
    for (double rate : rates) {
        NpuShadowExecutor executor(weights, profile, rate);
        const AccuracyResult result =
            EvaluateAgreement(model, executor, eval);
        right.AddRow({Table::Num(rate * 100.0, 0) + "%",
                      Table::Num(result.top1_agreement * 100.0, 1) + "%",
                      HumanBytes(static_cast<uint64_t>(
                          executor.ResidentShadowWeightBytes()))});
    }
    right.Print();
    std::printf("\nShape check: accuracy holds while pruning the "
                "unimportant tail and collapses as the important linears "
                "lose their shadow path (paper Figure 12 right).\n");
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
