/**
 * @file
 * Bench driver: runs every figure/table reproduction binary and writes a
 * machine-readable summary so each commit leaves a perf-trajectory sample.
 *
 * Usage: run_all [--bench-dir DIR] [--out FILE] [--filter PREFIX] [--quiet]
 *                [--quick] [--trace FILE] [--seed N]
 *   --bench-dir  directory scanned for bench_* binaries
 *                (default: the directory run_all itself lives in)
 *   --out        output JSON path (default: BENCH_results.json in the CWD)
 *   --filter     only run benches whose name starts with PREFIX
 *   --quiet      don't echo bench output (stdout is still piped through
 *                run_all to collect METRIC lines; stderr is discarded)
 *   --quick      exports LLMNPU_BENCH_QUICK=1 and LLMNPU_SERVING_SMOKE=1 to
 *                the benches: smaller sweeps and iteration caps for CI
 *                smoke runs (the full sweep keeps the real sizes). The JSON
 *                records "quick": true so trajectory tooling never compares
 *                quick numbers against full runs.
 *   --trace      exports LLMNPU_TRACE_FILE=FILE: benches that know how to
 *                trace themselves (bench_serving) run one extra traced
 *                scenario and write Chrome trace-event JSON there
 *                (Perfetto-loadable; see examples/trace_dump).
 *   --seed       exports LLMNPU_SEED=N: seeded benches (bench_serving's
 *                arrival generation and fault injection) derive every
 *                stochastic choice from it, so a degraded-mode run is
 *                reproducible from the command line. Omitted = each
 *                bench's committed-baseline default.
 *
 * The JSON schema ("llmnpu-bench-v2") is one record per bench with its exit
 * status and wall time; downstream tooling diffs these files across commits
 * to track the simulator's own speed and catch benches that start failing.
 *
 * v2: benches may print lines of the form "METRIC {json-object}"; run_all
 * collects them verbatim into the bench's "metrics" array, so curve data
 * (e.g. bench_serving's throughput-vs-load rows) lands in the JSON without
 * any per-bench parsing here.
 */
#include <dirent.h>
#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

struct BenchOutcome {
    std::string name;
    int exit_code = -1;
    double wall_ms = 0.0;
    /** JSON objects from the bench's "METRIC {...}" stdout lines. */
    std::vector<std::string> metrics;
};

std::string
DirName(const std::string& path)
{
    const size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
}

/** Single-quotes a path for the shell. */
std::string
ShellQuote(const std::string& path)
{
    std::string quoted = "'";
    for (char c : path) {
        if (c == '\'') {
            quoted += "'\\''";
        } else {
            quoted += c;
        }
    }
    quoted += "'";
    return quoted;
}

/** All bench_* binaries in `dir`, sorted by name — the build is the single
 *  source of truth for what counts as a bench (no list to keep in sync). */
std::vector<std::string>
DiscoverBenches(const std::string& dir)
{
    std::vector<std::string> names;
    DIR* handle = opendir(dir.c_str());
    if (handle == nullptr) return names;
    while (const dirent* entry = readdir(handle)) {
        if (std::strncmp(entry->d_name, "bench_", 6) == 0) {
            names.emplace_back(entry->d_name);
        }
    }
    closedir(handle);
    std::sort(names.begin(), names.end());
    return names;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string bench_dir = DirName(argv[0]);
    std::string out_path = "BENCH_results.json";
    std::string filter;
    bool quiet = false;
    bool quick = false;
    std::string trace_file;
    std::string seed;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--bench-dir") == 0 && i + 1 < argc) {
            bench_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
            filter = argv[++i];
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_file = argv[++i];
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: run_all [--bench-dir DIR] [--out FILE] "
                         "[--filter PREFIX] [--quiet] [--quick] "
                         "[--trace FILE] [--seed N]\n");
            return 2;
        }
    }
    if (quick) {
        // Benches that know a smaller configuration pick it up from the
        // environment (popen children inherit it).
        setenv("LLMNPU_BENCH_QUICK", "1", 1);
        setenv("LLMNPU_SERVING_SMOKE", "1", 1);
    }
    if (!trace_file.empty()) {
        setenv("LLMNPU_TRACE_FILE", trace_file.c_str(), 1);
    }
    if (!seed.empty()) {
        setenv("LLMNPU_SEED", seed.c_str(), 1);
    }

    std::vector<std::string> benches = DiscoverBenches(bench_dir);
    if (!filter.empty()) {
        benches.erase(
            std::remove_if(benches.begin(), benches.end(),
                           [&](const std::string& name) {
                               return name.compare(0, filter.size(),
                                                   filter) != 0;
                           }),
            benches.end());
    }
    if (benches.empty()) {
        std::fprintf(stderr, "run_all: no bench_* binaries in %s%s\n",
                     bench_dir.c_str(),
                     filter.empty() ? ""
                                    : (" matching " + filter).c_str());
        return 2;
    }

    std::vector<BenchOutcome> outcomes;
    int failures = 0;
    double total_ms = 0.0;
    for (const std::string& name : benches) {
        BenchOutcome outcome;
        outcome.name = name;
        // Read the bench's stdout through a pipe so METRIC lines can be
        // captured whether or not the run is quiet.
        const std::string cmd = ShellQuote(bench_dir + "/" + name) +
                                (quiet ? " 2> /dev/null" : "");
        if (!quiet) std::printf("\n### %s\n", name.c_str());
        std::fflush(stdout);
        const auto start = std::chrono::steady_clock::now();
        std::FILE* pipe = popen(cmd.c_str(), "r");
        int status = -1;
        if (pipe != nullptr) {
            // fgets returns fixed-size chunks; reassemble full lines so a
            // METRIC row longer than the buffer is never split (a torn
            // fragment would corrupt the JSON emitted below).
            char chunk[4096];
            std::string line;
            auto flush_line = [&]() {
                if (line.compare(0, 7, "METRIC ") == 0) {
                    std::string metric = line.substr(7);
                    while (!metric.empty() &&
                           (metric.back() == '\n' || metric.back() == '\r')) {
                        metric.pop_back();
                    }
                    outcome.metrics.push_back(metric);
                } else if (!quiet) {
                    std::fputs(line.c_str(), stdout);
                }
                line.clear();
            };
            while (std::fgets(chunk, sizeof(chunk), pipe) != nullptr) {
                line += chunk;
                if (!line.empty() && line.back() == '\n') flush_line();
            }
            if (!line.empty()) {
                line += '\n';  // bench ended without a trailing newline
                flush_line();
            }
            status = pclose(pipe);
        }
        const auto end = std::chrono::steady_clock::now();
        outcome.wall_ms =
            std::chrono::duration<double, std::milli>(end - start).count();
        outcome.exit_code =
            status < 0 ? status : (WIFEXITED(status) ? WEXITSTATUS(status)
                                                     : 128);
        total_ms += outcome.wall_ms;
        failures += outcome.exit_code == 0 ? 0 : 1;
        outcomes.push_back(outcome);
    }

    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "run_all: cannot write %s\n", out_path.c_str());
        return 2;
    }
    std::fprintf(out, "{\n  \"schema\": \"llmnpu-bench-v2\",\n");
    std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(out, "  \"bench_count\": %zu,\n", outcomes.size());
    std::fprintf(out, "  \"failures\": %d,\n", failures);
    std::fprintf(out, "  \"total_wall_ms\": %.1f,\n", total_ms);
    std::fprintf(out, "  \"benches\": [\n");
    for (size_t i = 0; i < outcomes.size(); ++i) {
        const BenchOutcome& outcome = outcomes[i];
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"status\": \"%s\", "
                     "\"exit_code\": %d, \"wall_ms\": %.1f",
                     outcome.name.c_str(),
                     outcome.exit_code == 0 ? "ok" : "failed",
                     outcome.exit_code, outcome.wall_ms);
        if (!outcome.metrics.empty()) {
            std::fprintf(out, ",\n     \"metrics\": [\n");
            for (size_t m = 0; m < outcome.metrics.size(); ++m) {
                std::fprintf(out, "       %s%s\n",
                             outcome.metrics[m].c_str(),
                             m + 1 < outcome.metrics.size() ? "," : "");
            }
            std::fprintf(out, "     ]");
        }
        std::fprintf(out, "}%s\n", i + 1 < outcomes.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);

    std::printf("\nrun_all: %zu benches, %d failed, %.1f s total -> %s\n",
                outcomes.size(), failures, total_ms / 1000.0,
                out_path.c_str());
    return failures == 0 ? 0 : 1;
}
