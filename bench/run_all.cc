/**
 * @file
 * Bench driver: runs every figure/table reproduction binary and writes a
 * machine-readable summary so each commit leaves a perf-trajectory sample.
 *
 * Usage: run_all [--bench-dir DIR] [--out FILE] [--quiet]
 *   --bench-dir  directory scanned for bench_* binaries
 *                (default: the directory run_all itself lives in)
 *   --out        output JSON path (default: BENCH_results.json in the CWD)
 *   --quiet      discard bench stdout instead of echoing it
 *
 * The JSON schema ("llmnpu-bench-v1") is one record per bench with its exit
 * status and wall time; downstream tooling diffs these files across commits
 * to track the simulator's own speed and catch benches that start failing.
 */
#include <dirent.h>
#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

struct BenchOutcome {
    std::string name;
    int exit_code = -1;
    double wall_ms = 0.0;
};

std::string
DirName(const std::string& path)
{
    const size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
}

/** Single-quotes a path for the shell. */
std::string
ShellQuote(const std::string& path)
{
    std::string quoted = "'";
    for (char c : path) {
        if (c == '\'') {
            quoted += "'\\''";
        } else {
            quoted += c;
        }
    }
    quoted += "'";
    return quoted;
}

/** All bench_* binaries in `dir`, sorted by name — the build is the single
 *  source of truth for what counts as a bench (no list to keep in sync). */
std::vector<std::string>
DiscoverBenches(const std::string& dir)
{
    std::vector<std::string> names;
    DIR* handle = opendir(dir.c_str());
    if (handle == nullptr) return names;
    while (const dirent* entry = readdir(handle)) {
        if (std::strncmp(entry->d_name, "bench_", 6) == 0) {
            names.emplace_back(entry->d_name);
        }
    }
    closedir(handle);
    std::sort(names.begin(), names.end());
    return names;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string bench_dir = DirName(argv[0]);
    std::string out_path = "BENCH_results.json";
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--bench-dir") == 0 && i + 1 < argc) {
            bench_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            std::fprintf(stderr,
                         "usage: run_all [--bench-dir DIR] [--out FILE] "
                         "[--quiet]\n");
            return 2;
        }
    }

    const std::vector<std::string> benches = DiscoverBenches(bench_dir);
    if (benches.empty()) {
        std::fprintf(stderr, "run_all: no bench_* binaries in %s\n",
                     bench_dir.c_str());
        return 2;
    }

    std::vector<BenchOutcome> outcomes;
    int failures = 0;
    double total_ms = 0.0;
    for (const std::string& name : benches) {
        BenchOutcome outcome;
        outcome.name = name;
        const std::string cmd = ShellQuote(bench_dir + "/" + name) +
                                (quiet ? " > /dev/null 2>&1" : "");
        if (!quiet) std::printf("\n### %s\n", name.c_str());
        std::fflush(stdout);
        const auto start = std::chrono::steady_clock::now();
        const int status = std::system(cmd.c_str());
        const auto end = std::chrono::steady_clock::now();
        outcome.wall_ms =
            std::chrono::duration<double, std::milli>(end - start).count();
        outcome.exit_code =
            status < 0 ? status : (WIFEXITED(status) ? WEXITSTATUS(status)
                                                     : 128);
        total_ms += outcome.wall_ms;
        failures += outcome.exit_code == 0 ? 0 : 1;
        outcomes.push_back(outcome);
    }

    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "run_all: cannot write %s\n", out_path.c_str());
        return 2;
    }
    std::fprintf(out, "{\n  \"schema\": \"llmnpu-bench-v1\",\n");
    std::fprintf(out, "  \"bench_count\": %zu,\n", outcomes.size());
    std::fprintf(out, "  \"failures\": %d,\n", failures);
    std::fprintf(out, "  \"total_wall_ms\": %.1f,\n", total_ms);
    std::fprintf(out, "  \"benches\": [\n");
    for (size_t i = 0; i < outcomes.size(); ++i) {
        const BenchOutcome& outcome = outcomes[i];
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"status\": \"%s\", "
                     "\"exit_code\": %d, \"wall_ms\": %.1f}%s\n",
                     outcome.name.c_str(),
                     outcome.exit_code == 0 ? "ok" : "failed",
                     outcome.exit_code, outcome.wall_ms,
                     i + 1 < outcomes.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);

    std::printf("\nrun_all: %zu benches, %d failed, %.1f s total -> %s\n",
                outcomes.size(), failures, total_ms / 1000.0,
                out_path.c_str());
    return failures == 0 ? 0 : 1;
}
