/**
 * @file
 * google-benchmark microbenchmarks of the numeric kernels: fp32 vs W8A8
 * per-tensor vs per-group matmul, outlier extraction, and chunked
 * attention. These measure *this host's* kernel throughput (the numeric
 * plane), not the simulated phone.
 */
#include <benchmark/benchmark.h>

#include "src/core/outlier_profile.h"
#include "src/core/shadow_executor.h"
#include "src/tensor/matmul.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace llmnpu {
namespace {

Tensor
RandomTensor(Rng& rng, std::vector<int64_t> shape)
{
    Tensor t(std::move(shape), DType::kF32);
    float* p = t.Data<float>();
    for (int64_t i = 0; i < t.NumElements(); ++i) {
        p[i] = static_cast<float>(rng.Normal());
    }
    return t;
}

void
BM_MatMulF32(benchmark::State& state)
{
    const int64_t n = state.range(0);
    Rng rng(1);
    Tensor a = RandomTensor(rng, {32, n});
    Tensor w = RandomTensor(rng, {n, n});
    for (auto _ : state) {
        benchmark::DoNotOptimize(MatMulF32(a, w));
    }
    state.SetItemsProcessed(state.iterations() * 2 * 32 * n * n);
}
BENCHMARK(BM_MatMulF32)->Arg(128)->Arg(256)->Arg(512);

void
BM_MatMulW8A8PerTensor(benchmark::State& state)
{
    const int64_t n = state.range(0);
    Rng rng(2);
    Tensor a = RandomTensor(rng, {32, n});
    Tensor w = RandomTensor(rng, {n, n});
    const QuantParams params = ComputeSymmetricScale(a);
    Tensor a_q = QuantizeSymmetric(a, params);
    PerColumnWeights wq = QuantizePerColumn(w);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            MatMulW8A8PerTensor(a_q, params.scale, wq.q, wq.scales));
    }
    state.SetItemsProcessed(state.iterations() * 2 * 32 * n * n);
}
BENCHMARK(BM_MatMulW8A8PerTensor)->Arg(128)->Arg(256)->Arg(512);

void
BM_MatMulPerGroup(benchmark::State& state)
{
    const int64_t n = state.range(0);
    Rng rng(3);
    Tensor a = RandomTensor(rng, {32, n});
    Tensor w = RandomTensor(rng, {n, n});
    PerGroupWeights pg = QuantizePerGroup(w, 32);
    for (auto _ : state) {
        benchmark::DoNotOptimize(MatMulPerGroup(a, pg));
    }
    state.SetItemsProcessed(state.iterations() * 2 * 32 * n * n);
}
BENCHMARK(BM_MatMulPerGroup)->Arg(128)->Arg(256)->Arg(512);

void
BM_CausalAttention(benchmark::State& state)
{
    const int64_t kv = state.range(0);
    Rng rng(4);
    Tensor q = RandomTensor(rng, {32, 256});
    Tensor k = RandomTensor(rng, {kv, 256});
    Tensor v = RandomTensor(rng, {kv, 256});
    for (auto _ : state) {
        benchmark::DoNotOptimize(CausalAttention(q, k, v, 4, 4, kv - 32));
    }
}
BENCHMARK(BM_CausalAttention)->Arg(64)->Arg(256)->Arg(512);

void
BM_QuantizeSymmetric(benchmark::State& state)
{
    Rng rng(5);
    Tensor x = RandomTensor(rng, {256, state.range(0)});
    const QuantParams params = ComputeSymmetricScale(x);
    for (auto _ : state) {
        benchmark::DoNotOptimize(QuantizeSymmetric(x, params));
    }
    state.SetItemsProcessed(state.iterations() * x.NumElements());
}
BENCHMARK(BM_QuantizeSymmetric)->Arg(512)->Arg(2048);

}  // namespace
}  // namespace llmnpu

BENCHMARK_MAIN();
