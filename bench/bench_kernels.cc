/**
 * @file
 * Microbenchmarks of the numeric-plane kernels. These measure *this host's*
 * kernel throughput (the numeric plane), not the simulated phone.
 *
 * Two layers:
 *
 *  1. A hand-rolled sweep that prints "METRIC {json}" rows — GFLOP/s per
 *     kernel x size x thread count, plus the speedup of each tiled kernel
 *     over its naive reference — which bench/run_all captures into
 *     BENCH_results.json so kernel perf is tracked per commit.
 *  2. The google-benchmark suites (kept for interactive use: perf deltas,
 *     --benchmark_filter, counters).
 *
 * LLMNPU_BENCH_QUICK=1 (set by `run_all --quick`) shrinks the sweep to one
 * size and skips the google-benchmark pass so CI smoke runs stay fast.
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "src/core/outlier_profile.h"
#include "src/core/shadow_executor.h"
#include "src/model/batched_kv_cache.h"
#include "src/model/paged_attention.h"
#include "src/tensor/matmul.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"
#include "src/util/threadpool.h"

namespace llmnpu {
namespace {

Tensor
RandomTensor(Rng& rng, std::vector<int64_t> shape)
{
    Tensor t(std::move(shape), DType::kF32);
    float* p = t.Data<float>();
    for (int64_t i = 0; i < t.NumElements(); ++i) {
        p[i] = static_cast<float>(rng.Normal());
    }
    return t;
}

bool
QuickMode()
{
    return std::getenv("LLMNPU_BENCH_QUICK") != nullptr;
}

/** Best-of-3 throughput in GFLOP/s (2*m*k*n flops per call). */
double
MeasureGFlops(int64_t m, int64_t k, int64_t n,
              const std::function<void()>& fn)
{
    const double min_seconds = QuickMode() ? 0.02 : 0.12;
    fn();  // warm-up (touch packed panels, grow the thread pool)
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        int iters = 0;
        double elapsed = 0.0;
        const auto start = std::chrono::steady_clock::now();
        do {
            fn();
            ++iters;
            elapsed = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        } while (elapsed < min_seconds);
        const double gflops = 2.0 * static_cast<double>(m) *
                              static_cast<double>(k) *
                              static_cast<double>(n) * iters / elapsed /
                              1e9;
        if (gflops > best) best = gflops;
    }
    return best;
}

void
PrintMetric(const char* kernel, const char* variant, int64_t m, int64_t k,
            int64_t n, int threads, double gflops, double speedup)
{
    std::printf("METRIC {\"bench\": \"kernels\", \"kernel\": \"%s\", "
                "\"variant\": \"%s\", \"m\": %lld, \"k\": %lld, "
                "\"n\": %lld, \"threads\": %d, \"gflops\": %.2f, "
                "\"speedup_vs_naive\": %.2f}\n",
                kernel, variant, static_cast<long long>(m),
                static_cast<long long>(k), static_cast<long long>(n),
                threads, gflops, speedup);
}

/**
 * The METRIC sweep: naive vs tiled (and pre-packed) kernels, m=32 prefill
 * chunks, square K=N weights, thread counts 1/2/4.
 */
void
EmitKernelMetrics()
{
    const std::vector<int64_t> sizes =
        QuickMode() ? std::vector<int64_t>{256}
                    : std::vector<int64_t>{128, 256, 512};
    const std::vector<int> thread_counts =
        QuickMode() ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4};
    constexpr int64_t kM = 32;

    for (int64_t n : sizes) {
        Rng rng(0xbe7c + static_cast<uint64_t>(n));
        Tensor a = RandomTensor(rng, {kM, n});
        Tensor w = RandomTensor(rng, {n, n});

        // --- f32: naive vs tiled vs pre-packed tiled. ---
        const double f32_naive = MeasureGFlops(kM, n, n, [&] {
            benchmark::DoNotOptimize(MatMulF32Naive(a, w));
        });
        PrintMetric("matmul_f32", "naive", kM, n, n, 1, f32_naive, 1.0);
        const PackedWeightsF32 packed = PackWeightsF32(w);
        for (int threads : thread_counts) {
            ScopedNumThreads scoped(threads);
            const double tiled = MeasureGFlops(kM, n, n, [&] {
                benchmark::DoNotOptimize(MatMulF32(a, w));
            });
            PrintMetric("matmul_f32", "tiled", kM, n, n, threads, tiled,
                        tiled / f32_naive);
            const double tiled_packed = MeasureGFlops(kM, n, n, [&] {
                benchmark::DoNotOptimize(MatMulF32Packed(a, packed));
            });
            PrintMetric("matmul_f32", "tiled_packed", kM, n, n, threads,
                        tiled_packed, tiled_packed / f32_naive);
        }

        // --- W8A8 per-tensor: naive vs pre-packed tiled. ---
        const QuantParams params = ComputeSymmetricScale(a);
        Tensor a_q = QuantizeSymmetric(a, params);
        PerColumnWeights wq = QuantizePerColumn(w);
        const double i8_naive = MeasureGFlops(kM, n, n, [&] {
            benchmark::DoNotOptimize(
                MatMulW8A8PerTensorNaive(a_q, params.scale, wq.q,
                                         wq.scales));
        });
        PrintMetric("matmul_w8a8_per_tensor", "naive", kM, n, n, 1,
                    i8_naive, 1.0);
        const PackedWeightsI8 packed_q = PackWeightsI8(wq.q, wq.scales);
        for (int threads : thread_counts) {
            ScopedNumThreads scoped(threads);
            const double tiled = MeasureGFlops(kM, n, n, [&] {
                benchmark::DoNotOptimize(
                    MatMulW8A8PerTensorPacked(a_q, params.scale, packed_q));
            });
            PrintMetric("matmul_w8a8_per_tensor", "tiled_packed", kM, n, n,
                        threads, tiled, tiled / i8_naive);
        }

        // --- Per-group W8A8 (the NPU-hostile form): naive vs tiled. ---
        PerGroupWeights pg = QuantizePerGroup(w, 32);
        const double pg_naive = MeasureGFlops(kM, n, n, [&] {
            benchmark::DoNotOptimize(MatMulPerGroupNaive(a, pg));
        });
        PrintMetric("matmul_per_group", "naive", kM, n, n, 1, pg_naive,
                    1.0);
        for (int threads : thread_counts) {
            ScopedNumThreads scoped(threads);
            const double tiled = MeasureGFlops(kM, n, n, [&] {
                benchmark::DoNotOptimize(MatMulPerGroup(a, pg));
            });
            PrintMetric("matmul_per_group", "tiled", kM, n, n, threads,
                        tiled, tiled / pg_naive);
        }
    }
}

/**
 * Fused paged attention vs the per-sequence path it replaced: a B=16
 * batched decode step (one query row per sequence) over paged KV at
 * several context lengths. The reference materializes each sequence's
 * dense K/V and runs CausalAttention per sequence — exactly what
 * ForwardBatch did before the fused kernel — so the speedup row prices
 * the fusion itself (tile-parallel, page-direct reads, no dense copies).
 * Attention does 4*kv*head_dim flops per (seq, head) query row, which
 * MeasureGFlops' 2*m*k*n form matches as m=B*heads, k=2*kv, n=head_dim.
 */
void
EmitPagedAttentionMetrics()
{
    const std::vector<int64_t> contexts =
        QuickMode() ? std::vector<int64_t>{256}
                    : std::vector<int64_t>{128, 256, 512};
    const std::vector<int> thread_counts =
        QuickMode() ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4};
    constexpr int kBatch = 16;
    constexpr int kHeads = 8;
    constexpr int kHeadDim = 32;
    const int64_t model_dim = static_cast<int64_t>(kHeads) * kHeadDim;

    for (int64_t kv : contexts) {
        Rng rng(0x9a6ed + static_cast<uint64_t>(kv));
        BatchedKvCache cache(1, model_dim, 0, PagedKvOptions{});
        std::vector<int> seqs;
        std::vector<int64_t> segments{0};
        std::vector<int64_t> pos_offsets;
        for (int b = 0; b < kBatch; ++b) {
            const int seq = cache.AddSequence();
            cache.Append(seq, 0, RandomTensor(rng, {kv, model_dim}),
                         RandomTensor(rng, {kv, model_dim}));
            seqs.push_back(seq);
            // Decode semantics: the step's K/V row is already appended, so
            // the query sits at the last cached position.
            pos_offsets.push_back(kv - 1);
            segments.push_back(segments.back() + 1);
        }
        Tensor q = RandomTensor(rng, {kBatch, model_dim});

        const int64_t flop_m = static_cast<int64_t>(kBatch) * kHeads;
        const double per_seq = MeasureGFlops(flop_m, 2 * kv, kHeadDim, [&] {
            for (int seq : seqs) {
                benchmark::DoNotOptimize(CausalAttention(
                    q.CopyRows(seq, 1), cache.Keys(seq, 0),
                    cache.Values(seq, 0), kHeads, kHeads, kv - 1));
            }
        });
        PrintMetric("paged_attention", "per_seq_dense", kBatch, kv,
                    model_dim, 1, per_seq, 1.0);
        for (int threads : thread_counts) {
            ScopedNumThreads scoped(threads);
            const double fused =
                MeasureGFlops(flop_m, 2 * kv, kHeadDim, [&] {
                    benchmark::DoNotOptimize(PagedCausalAttention(
                        q, segments, seqs, pos_offsets, cache, 0, kHeads,
                        kHeads));
                });
            PrintMetric("paged_attention", "fused", kBatch, kv, model_dim,
                        threads, fused, fused / per_seq);
        }
    }
}

// ----------------------------------------------------- google-benchmark

void
BM_MatMulF32Naive(benchmark::State& state)
{
    const int64_t n = state.range(0);
    Rng rng(1);
    Tensor a = RandomTensor(rng, {32, n});
    Tensor w = RandomTensor(rng, {n, n});
    for (auto _ : state) {
        benchmark::DoNotOptimize(MatMulF32Naive(a, w));
    }
    state.SetItemsProcessed(state.iterations() * 2 * 32 * n * n);
}
BENCHMARK(BM_MatMulF32Naive)->Arg(128)->Arg(256)->Arg(512);

void
BM_MatMulF32(benchmark::State& state)
{
    const int64_t n = state.range(0);
    Rng rng(1);
    Tensor a = RandomTensor(rng, {32, n});
    Tensor w = RandomTensor(rng, {n, n});
    for (auto _ : state) {
        benchmark::DoNotOptimize(MatMulF32(a, w));
    }
    state.SetItemsProcessed(state.iterations() * 2 * 32 * n * n);
}
BENCHMARK(BM_MatMulF32)->Arg(128)->Arg(256)->Arg(512);

void
BM_MatMulF32Packed(benchmark::State& state)
{
    const int64_t n = state.range(0);
    Rng rng(1);
    Tensor a = RandomTensor(rng, {32, n});
    PackedWeightsF32 w = PackWeightsF32(RandomTensor(rng, {n, n}));
    for (auto _ : state) {
        benchmark::DoNotOptimize(MatMulF32Packed(a, w));
    }
    state.SetItemsProcessed(state.iterations() * 2 * 32 * n * n);
}
BENCHMARK(BM_MatMulF32Packed)->Arg(128)->Arg(256)->Arg(512);

void
BM_MatMulW8A8PerTensor(benchmark::State& state)
{
    const int64_t n = state.range(0);
    Rng rng(2);
    Tensor a = RandomTensor(rng, {32, n});
    Tensor w = RandomTensor(rng, {n, n});
    const QuantParams params = ComputeSymmetricScale(a);
    Tensor a_q = QuantizeSymmetric(a, params);
    PerColumnWeights wq = QuantizePerColumn(w);
    PackedWeightsI8 packed = PackWeightsI8(wq.q, wq.scales);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            MatMulW8A8PerTensorPacked(a_q, params.scale, packed));
    }
    state.SetItemsProcessed(state.iterations() * 2 * 32 * n * n);
}
BENCHMARK(BM_MatMulW8A8PerTensor)->Arg(128)->Arg(256)->Arg(512);

void
BM_MatMulPerGroup(benchmark::State& state)
{
    const int64_t n = state.range(0);
    Rng rng(3);
    Tensor a = RandomTensor(rng, {32, n});
    Tensor w = RandomTensor(rng, {n, n});
    PerGroupWeights pg = QuantizePerGroup(w, 32);
    for (auto _ : state) {
        benchmark::DoNotOptimize(MatMulPerGroup(a, pg));
    }
    state.SetItemsProcessed(state.iterations() * 2 * 32 * n * n);
}
BENCHMARK(BM_MatMulPerGroup)->Arg(128)->Arg(256)->Arg(512);

void
BM_CausalAttention(benchmark::State& state)
{
    const int64_t kv = state.range(0);
    Rng rng(4);
    Tensor q = RandomTensor(rng, {32, 256});
    Tensor k = RandomTensor(rng, {kv, 256});
    Tensor v = RandomTensor(rng, {kv, 256});
    for (auto _ : state) {
        benchmark::DoNotOptimize(CausalAttention(q, k, v, 4, 4, kv - 32));
    }
}
BENCHMARK(BM_CausalAttention)->Arg(64)->Arg(256)->Arg(512);

void
BM_QuantizeSymmetric(benchmark::State& state)
{
    Rng rng(5);
    Tensor x = RandomTensor(rng, {256, state.range(0)});
    const QuantParams params = ComputeSymmetricScale(x);
    for (auto _ : state) {
        benchmark::DoNotOptimize(QuantizeSymmetric(x, params));
    }
    state.SetItemsProcessed(state.iterations() * x.NumElements());
}
BENCHMARK(BM_QuantizeSymmetric)->Arg(512)->Arg(2048);

}  // namespace
}  // namespace llmnpu

int
main(int argc, char** argv)
{
    // Parse flags first so a mistyped flag (or an interactive
    // --benchmark_filter run) fails fast instead of paying for the full
    // METRIC sweep.
    const bool plain_run = argc == 1;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    // The METRIC sweep is the per-commit record (captured by run_all);
    // the google-benchmark pass is for interactive use — with benchmark
    // flags given, run only that pass, and skip it in quick (CI smoke)
    // runs.
    if (plain_run) {
        llmnpu::EmitKernelMetrics();
        llmnpu::EmitPagedAttentionMetrics();
    }
    if (!plain_run || !llmnpu::QuickMode()) {
        benchmark::RunSpecifiedBenchmarks();
    }
    benchmark::Shutdown();
    return 0;
}
