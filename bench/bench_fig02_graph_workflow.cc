/**
 * @file
 * Reproduces Figure 2: the QNN graph lifecycle costs (setup, build,
 * optimize, free) for whole-model graphs of Qwen1.5-1.8B and Gemma-2B, and
 * contrasts them with llm.npu's amortized chunk-sharing preparation.
 */
#include "bench/bench_util.h"
#include "src/core/chunk_graph.h"
#include "src/sim/calibration.h"
#include "src/sim/npu_runtime.h"

namespace llmnpu {
namespace {

NpuGraphDesc
FullGraph(const ModelConfig& config, int prompt_len)
{
    NpuGraphDesc desc;
    desc.name = config.name + ".full";
    desc.num_ops = config.num_layers * 13;
    desc.const_bytes =
        config.MatMulParams() + config.vocab_size * config.hidden_size;
    desc.input_shape = {prompt_len, config.hidden_size};
    return desc;
}

void
Run()
{
    BenchHeader("Figure 2: DNN execution workflow costs on mobile NPUs",
                "setup 500 ms; build 450/360 ms, optimize 3.30/11.54 s, "
                "free 149/108 ms for Qwen1.5-1.8B / Gemma-2B");
    struct PaperRow {
        ModelConfig config;
        double build_ms, optimize_ms, free_ms;
    };
    const PaperRow rows[] = {{Qwen15_1_8B(), 450.0, 3300.0, 149.0},
                             {Gemma2B(), 360.0, 11540.0, 108.0}};
    Table table({"Model", "Setup env", "Build graph", "Optimize graph",
                 "Free graph"});
    for (const PaperRow& row : rows) {
        const NpuGraphCosts costs =
            NpuRuntime::CostsFor(FullGraph(row.config, 1024));
        table.AddRow({row.config.name,
                      Table::WithPaper(cal::kNpuEnvSetupMs, 500.0, 0),
                      Table::WithPaper(costs.build_ms, row.build_ms, 0),
                      Table::WithPaper(costs.optimize_ms, row.optimize_ms, 0),
                      Table::WithPaper(costs.free_ms, row.free_ms, 0)});
    }
    table.Print();

    // The consequence (§2.3): per-prompt-length rebuilds vs llm.npu's
    // one-time chunk-sharing preparation.
    std::printf("\nPer-inference rebuild (naive) vs one-time chunk-sharing "
                "preparation:\n");
    for (const PaperRow& row : rows) {
        const NpuGraphCosts naive =
            NpuRuntime::CostsFor(FullGraph(row.config, 1024));
        ChunkGraphPlan plan(row.config, 256, /*share_static=*/true);
        NpuRuntime runtime;
        double prep_ms = runtime.EnvSetupMs();
        for (const auto& graph : plan.PreparationGraphs(4)) {
            prep_ms += NpuRuntime::CostsFor(graph).TotalPrepareMs();
        }
        std::printf("  %-14s naive per-inference: %8.0f ms   "
                    "chunk-sharing one-time: %8.0f ms\n",
                    row.config.name.c_str(), naive.TotalPrepareMs(), prep_ms);
    }
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
