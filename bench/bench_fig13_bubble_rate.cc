/**
 * @file
 * Reproduces Figure 13: NPU bubble rate under naive (chunk-sequential)
 * overlapping vs out-of-order subgraph execution, plus a comparison of the
 * literal Equation 5 picker.
 */
#include "bench/bench_util.h"
#include "src/core/llmnpu_engine.h"
#include "src/core/scheduler.h"

namespace llmnpu {
namespace {

void
Run()
{
    BenchHeader("Figure 13: out-of-order subgraph execution",
                "naive overlapping leaves a 37% NPU bubble rate; "
                "out-of-order execution reduces it to 0.7%");
    const SocSpec soc = SocSpec::RedmiK70Pro();
    const ModelConfig qwen = Qwen15_1_8B();
    LlmNpuEngine probe;

    std::vector<std::vector<StageTiming>> timings;
    for (int c = 0; c < 4; ++c) {
        timings.push_back(probe.ChunkStageTimings(
            qwen, soc, 256, static_cast<int64_t>(c + 1) * 256, 0.0));
    }

    const auto naive_dag = BuildPrefillDag(timings, qwen.num_layers,
                                           /*strict_chunk_order=*/true);
    const auto ooo_dag = BuildPrefillDag(timings, qwen.num_layers, false);

    const TimelineResult naive = RunTimeline(naive_dag, FifoPicker());
    const TimelineResult ooo = RunTimeline(ooo_dag, OooPicker());
    const TimelineResult eq5 = RunTimeline(ooo_dag, PaperEq5Picker());
    const TimelineResult fifo_dag = RunTimeline(ooo_dag, FifoPicker());

    Table table({"Scheduler", "Makespan (ms)", "NPU bubble rate",
                 "Paper bubble"});
    table.AddRow({"Naive overlapping (chunk-sequential)",
                  Table::Num(naive.makespan_ms, 0),
                  Table::Num(naive.BubbleRate(Unit::kNpu) * 100.0, 1) + "%",
                  "37%"});
    table.AddRow({"Out-of-order (llm.npu)", Table::Num(ooo.makespan_ms, 0),
                  Table::Num(ooo.BubbleRate(Unit::kNpu) * 100.0, 1) + "%",
                  "0.7%"});
    table.AddRow({"Out-of-order DAG + FIFO picker",
                  Table::Num(fifo_dag.makespan_ms, 0),
                  Table::Num(fifo_dag.BubbleRate(Unit::kNpu) * 100.0, 1) +
                      "%",
                  "-"});
    table.AddRow({"Equation 5 literal (both sides)",
                  Table::Num(eq5.makespan_ms, 0),
                  Table::Num(eq5.BubbleRate(Unit::kNpu) * 100.0, 1) + "%",
                  "-"});
    table.Print();
    Verdict("naive-to-OoO makespan improvement",
            naive.makespan_ms / ooo.makespan_ms, 1.18, 1.44);
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
