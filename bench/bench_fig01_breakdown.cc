/**
 * @file
 * Reproduces Figure 1: prefill vs decode share of end-to-end latency for
 * UI automation, context-aware QA and chat summary, on CPU (llama.cpp) and
 * GPU (TFLite) engines.
 */
#include "bench/bench_util.h"
#include "src/engines/baselines.h"
#include "src/workloads/datasets.h"

namespace llmnpu {
namespace {

void
RunOne(InferenceEngine& engine, const ModelConfig& config,
       const std::array<double, 3>& paper_prefill_share)
{
    const SocSpec soc = SocSpec::RedmiK70Pro();
    const DatasetProfile profiles[] = {DroidTaskAppsProfile(),
                                       Longbench2WikiProfile(),
                                       PersonaChatProfile()};
    const char* names[] = {"UI Automation", "Context-aware QA",
                           "Chat-Summary"};
    Table table({"Workload", "prefill %", "decode %", "paper prefill %"});
    for (int i = 0; i < 3; ++i) {
        const EngineResult result =
            engine.Run(config, soc, profiles[i].Typical());
        const double share = result.prefill_ms / result.EndToEndMs() * 100.0;
        table.AddRow({names[i], Table::Num(share, 1),
                      Table::Num(100.0 - share, 1),
                      Table::Num(paper_prefill_share[static_cast<size_t>(i)],
                                 1)});
    }
    std::printf("\n-- %s on %s --\n", engine.Name().c_str(),
                config.name.c_str());
    table.Print();
}

void
Run()
{
    BenchHeader("Figure 1: prefill/decode breakdown of end-to-end latency",
                "prefill is 88.3-98.8% on CPU and 54.2-91.7% on GPU for "
                "UI automation / context-aware QA / chat summary");
    LlamaCppEngine cpu_engine;
    RunOne(cpu_engine, Qwen15_1_8B(), {98.8, 94.4, 88.3});
    TfliteEngine gpu_engine(Unit::kGpu);
    RunOne(gpu_engine, Gemma2B(), {91.7, 81.0, 54.2});
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
