/**
 * @file
 * Reproduces Figure 16: generation speed vs accuracy across outlier pruning
 * rates — accuracy from real numerics on proxies, speed from the timing
 * plane at the matching pruning rate.
 */
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/core/llmnpu_engine.h"
#include "src/core/outlier_profile.h"
#include "src/core/shadow_executor.h"
#include "src/workloads/accuracy.h"
#include "src/workloads/corpus.h"

namespace llmnpu {
namespace {

void
RunModel(const ModelConfig& base)
{
    const SocSpec soc = SocSpec::RedmiK70Pro();
    const ModelConfig proxy = ScaledProxy(base, 192, 4, 512);
    SyntheticWeightsOptions weight_options;
        weight_options.seed =
            0x11f ^ std::hash<std::string>{}(base.name);
        ModelWeights weights =
            GenerateSyntheticWeights(proxy, weight_options);
    Transformer model(weights);

    CorpusOptions corpus_options;
    corpus_options.vocab_size = proxy.vocab_size;
    corpus_options.num_sequences = 6;
    corpus_options.min_len = 24;
    corpus_options.max_len = 48;
    const auto calib_corpus = MakeCorpus(corpus_options);
    const CalibrationData calib =
        CalibrationData::Collect(model, calib_corpus);
    const OutlierProfile profile =
        OutlierProfile::Collect(model, calib, calib_corpus);
    corpus_options.seed = 0x16;
    corpus_options.num_sequences = 12;
    const auto eval = MakeCorpus(corpus_options);

    std::printf("\n-- %s --\n", base.name.c_str());
    Table table({"Pruning rate", "agreement (accuracy proxy)",
                 "prefill speed (tok/s)"});
    // run_all --quick: just the endpoints and the paper's default rate.
    const bool quick = std::getenv("LLMNPU_BENCH_QUICK") != nullptr;
    const std::vector<double> rates =
        quick ? std::vector<double>{0.0, 0.85, 1.0}
              : std::vector<double>{0.0, 0.25, 0.5, 0.75, 0.85, 1.0};
    for (double rate : rates) {
        NpuShadowExecutor executor(weights, profile, rate);
        const double agreement =
            EvaluateAgreement(model, executor, eval).top1_agreement * 100.0;

        LlmNpuOptions options;
        options.pruning_rate = rate;
        LlmNpuEngine engine(options);
        const EngineResult result = engine.Run(base, soc, {1024, 1});
        table.AddRow({Table::Num(rate * 100.0, 0) + "%",
                      Table::Num(agreement, 1) + "%",
                      Table::Num(result.PrefillTokensPerSec(1024), 0)});
    }
    table.Print();
}

void
Run()
{
    BenchHeader("Figure 16: speed-accuracy tradeoff vs outlier pruning rate",
                "0% pruning: highest accuracy, slowest (156/102 tok/s "
                "decode-inclusive); 100% pruning: fastest but accuracy "
                "collapses (8.1%/41.9%)");
    RunModel(Qwen15_1_8B());
    if (std::getenv("LLMNPU_BENCH_QUICK") == nullptr) {
        RunModel(Gemma2B());
    }
    std::printf("\nShape check: speed rises and agreement falls "
                "monotonically with the pruning rate; the knee sits around "
                "the paper's default 85%%.\n");
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
