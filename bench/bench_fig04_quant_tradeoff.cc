/**
 * @file
 * Reproduces Figure 4: prefill latency and accuracy of quantization
 * algorithms on the NPU — per-group methods (K-Quant/AWQ) pay 8.1-10.7x
 * latency; per-tensor SmoothQuant is fast but loses accuracy.
 *
 * Latency comes from the timing plane (per-group vs per-tensor NPU matmul
 * over a full prefill); accuracy from real numerics on scaled proxies.
 */
#include "bench/bench_util.h"
#include "src/engines/op_cost.h"
#include "src/quant/baselines.h"
#include "src/sim/calibration.h"
#include "src/workloads/accuracy.h"
#include "src/workloads/corpus.h"

namespace llmnpu {
namespace {

double
NpuPrefillMs(const ModelConfig& config, ExecFormat format)
{
    const SocSpec soc = SocSpec::RedmiK70Pro();
    ExecPolicy policy;
    policy.linear_format = format;
    policy.group_size = cal::kPerGroupSize;
    policy.square_optimized = false;
    double ms = 0.0;
    for (int l = 0; l < config.num_layers; ++l) {
        ms += BlockLinearsMs(config, soc.Processor(Unit::kNpu), 512, policy);
    }
    return ms;
}

void
Run()
{
    BenchHeader("Figure 4: quantization algorithm latency/accuracy on NPU",
                "per-group (K-Quant/AWQ) costs 8.1-10.7x vs per-tensor; "
                "SmoothQuant per-tensor is fast but drops 3.9%/8.4% accuracy");

    Table latency({"Model", "per-tensor (ms)", "per-group (ms)", "penalty"});
    for (const ModelConfig& config : {Llama2_7B(), Qwen15_1_8B()}) {
        const double pt = NpuPrefillMs(config, ExecFormat::kInt8PerTensor);
        const double pg = NpuPrefillMs(config, ExecFormat::kInt8PerGroup);
        latency.AddRow({config.name, Table::Num(pt, 0), Table::Num(pg, 0),
                        StrFormat("%.1fx (paper: 8.1-10.7x)", pg / pt)});
    }
    latency.Print();

    // Accuracy side: top-1 agreement with FP16 on outlier-bearing proxies.
    std::printf("\nAccuracy proxy (top-1 agreement with FP16, scaled "
                "proxies):\n");
    Table accuracy({"Model proxy", "K-Quant", "AWQ", "SmoothQuant"});
    for (const ModelConfig& base : {Llama2_7B(), Qwen15_1_8B()}) {
        const ModelConfig proxy = ScaledProxy(base, 192, 4, 512);
        SyntheticWeightsOptions weight_options;
        weight_options.seed =
            0x11f ^ std::hash<std::string>{}(base.name);
        ModelWeights weights =
            GenerateSyntheticWeights(proxy, weight_options);
        Transformer model(weights);
        CorpusOptions corpus_options;
        corpus_options.vocab_size = proxy.vocab_size;
        corpus_options.num_sequences = 6;
        corpus_options.min_len = 24;
        corpus_options.max_len = 48;
        const auto calib_corpus = MakeCorpus(corpus_options);
        const CalibrationData calib =
            CalibrationData::Collect(model, calib_corpus);
        corpus_options.seed = 0xe;
        corpus_options.num_sequences = 12;
        const auto eval = MakeCorpus(corpus_options);

        KQuantExecutor kquant(weights, 32);
        AwqExecutor awq(weights, calib);
        SmoothQuantExecutor smooth(weights, calib);
        accuracy.AddRow(
            {proxy.name,
             Table::Num(EvaluateAgreement(model, kquant, eval).top1_agreement *
                            100.0, 1) + "%",
             Table::Num(EvaluateAgreement(model, awq, eval).top1_agreement *
                            100.0, 1) + "%",
             Table::Num(EvaluateAgreement(model, smooth, eval)
                                .top1_agreement * 100.0, 1) + "%"});
    }
    accuracy.Print();
    std::printf("\nShape check: per-group accurate but slow on NPU; "
                "SmoothQuant fast but least accurate.\n");
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
