/**
 * @file
 * Shared helpers for the per-table/per-figure reproduction benchmarks.
 *
 * Every binary prints the paper's reported numbers next to the values
 * measured on this simulator; absolute agreement is not the goal (the
 * substrate is a calibrated simulator, not the authors' phones) — the
 * *shape* is: who wins, by roughly what factor, where crossovers fall.
 */
#ifndef LLMNPU_BENCH_BENCH_UTIL_H
#define LLMNPU_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

#include "src/util/format.h"
#include "src/util/table.h"

namespace llmnpu {

/** Prints the standard benchmark banner. */
inline void
BenchHeader(const std::string& experiment, const std::string& paper_claim)
{
    std::printf("==========================================================\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("Paper: %s\n", paper_claim.c_str());
    std::printf("==========================================================\n");
}

/** Prints a one-line verdict comparing a measured ratio to a paper band. */
inline void
Verdict(const std::string& what, double measured, double paper_lo,
        double paper_hi)
{
    const bool in_band = measured >= paper_lo * 0.5 &&
                         measured <= paper_hi * 2.0;
    std::printf("  %-46s measured %7.2fx   paper %.2f-%.2fx   [%s]\n",
                what.c_str(), measured, paper_lo, paper_hi,
                in_band ? "shape holds" : "OUT OF BAND");
}

}  // namespace llmnpu

#endif  // LLMNPU_BENCH_BENCH_UTIL_H
