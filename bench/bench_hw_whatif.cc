/**
 * @file
 * §5 "Future hardware design implications" — what-if analysis of the three
 * NPU improvements the paper calls for, priced with the same calibrated
 * models:
 *
 *  (1) dynamic shape-aware optimization  -> no per-shape rebuild cost;
 *  (2) increased data cache              -> weight streaming at DRAM rate;
 *  (3) mixed-precision operands          -> attention/norms run on the NPU
 *                                           at useful FP16 rates, removing
 *                                           the CPU from the critical path.
 */
#include "bench/bench_util.h"
#include "src/core/llmnpu_engine.h"
#include "src/core/scheduler.h"
#include "src/sim/calibration.h"
#include "src/sim/npu_runtime.h"

namespace llmnpu {
namespace {

/** Today's llm.npu prefill (ms) at the given prompt. */
double
Baseline(const ModelConfig& config, const SocSpec& soc, int prompt_len)
{
    LlmNpuEngine engine;
    return engine.SimulatePrefill(config, soc, prompt_len).prefill_ms;
}

/** What-if (2): weights stream at full DRAM bandwidth instead of the NPU's
 *  11.3 GB/s — recompute each NPU stage with the memory term scaled. */
double
BiggerCache(const ModelConfig& config, const SocSpec& soc, int prompt_len)
{
    LlmNpuEngine engine;
    ChunkGraphPlan plan(config, 256, true);
    const int chunks = plan.NumChunks(prompt_len);
    const double bw_gain = 24.0 / cal::kNpuWeightBwGBs;  // DRAM-rate fetch
    std::vector<std::vector<StageTiming>> timings;
    for (int c = 0; c < chunks; ++c) {
        auto stages = engine.ChunkStageTimings(
            config, soc, 256, static_cast<int64_t>(c + 1) * 256, 0.0);
        for (size_t s = 0; s < stages.size(); ++s) {
            const auto kind = static_cast<StageKind>(s % kStagesPerLayer);
            if (!StageOnNpu(kind)) continue;
            // Bandwidth-bound stages shrink toward the compute bound; a
            // conservative model: scale the whole stage by the fraction
            // that weight streaming represents at today's bandwidth.
            const int layer = static_cast<int>(s) / kStagesPerLayer;
            const int64_t bytes =
                plan.StageWeightBytes(kind) > 0
                    ? plan.StageWeightBytes(kind)
                    : 0;
            (void)layer;
            const double stream_ms = static_cast<double>(bytes) /
                                     (cal::kNpuWeightBwGBs * 1e9) * 1e3;
            const double saved = stream_ms * (1.0 - 1.0 / bw_gain);
            stages[s].duration_ms =
                std::max(stages[s].duration_ms - saved,
                         stages[s].duration_ms / bw_gain);
        }
        timings.push_back(std::move(stages));
    }
    const auto dag = BuildPrefillDag(timings, config.num_layers, false);
    return RunTimeline(dag, OooPicker()).makespan_ms;
}

/** What-if (3): mixed-precision operands let attention/norms run on the
 *  NPU at 25x today's FP16 rate — the CPU leaves the pipeline. */
double
MixedPrecision(const ModelConfig& config, const SocSpec& soc, int prompt_len)
{
    LlmNpuEngine engine;
    ChunkGraphPlan plan(config, 256, true);
    const int chunks = plan.NumChunks(prompt_len);
    const auto& npu = soc.Processor(Unit::kNpu);
    std::vector<std::vector<StageTiming>> timings;
    for (int c = 0; c < chunks; ++c) {
        const int64_t kv = static_cast<int64_t>(c + 1) * 256;
        auto stages = engine.ChunkStageTimings(config, soc, 256, kv, 0.0);
        for (size_t s = 0; s < stages.size(); ++s) {
            const auto kind = static_cast<StageKind>(s % kStagesPerLayer);
            if (StageOnNpu(kind)) continue;
            // Float stage moves to the NPU at an FP16 rate competitive
            // with its INT8 units (the paper's mixed-precision ask:
            // half the INT8 throughput, as FP16 operands are twice wide).
            const double improved_gflops =
                0.5 * npu.Int8Tops({256, 2048, 2048}, true) * 1e3;
            double flops;
            if (kind == StageKind::kAttention) {
                flops = 4.0 * 256.0 * static_cast<double>(kv) *
                        config.num_heads * config.head_dim;
            } else {
                flops = 12.0 * 256.0 *
                        static_cast<double>(config.hidden_size);
            }
            stages[s].unit = Unit::kNpu;
            stages[s].duration_ms =
                flops / (improved_gflops * 1e9) * 1e3 + cal::kNpuDispatchMs;
            stages[s].shadow_ms = 0.0;  // no cross-processor sync either
        }
        timings.push_back(std::move(stages));
    }
    const auto dag = BuildPrefillDag(timings, config.num_layers, false);
    return RunTimeline(dag, OooPicker()).makespan_ms;
}

void
Run()
{
    BenchHeader("§5 what-if: the paper's future hardware asks",
                "dynamic shapes remove rebuilds; bigger caches remove the "
                "weight-streaming bound; mixed-precision operands remove "
                "the CPU from the pipeline");
    const SocSpec soc = SocSpec::RedmiK70Pro();
    constexpr int kPrompt = 1024;

    Table table({"Model", "llm.npu today", "(1) dynamic shapes",
                 "(2) 24 GB/s cache", "(3) mixed precision"});
    for (const ModelConfig& config :
         {Qwen15_1_8B(), Gemma2B(), Llama2_7B()}) {
        const double today = Baseline(config, soc, kPrompt);
        // (1) Dynamic-shape hardware removes the *preparation* stage
        // entirely (llm.npu already amortizes it; the naive path gains
        // most). Report the amortized engine: unchanged execution.
        const double dynamic_shapes = today;  // prep is already off-path
        const double cache = BiggerCache(config, soc, kPrompt);
        const double mixed = MixedPrecision(config, soc, kPrompt);
        table.AddRow(
            {config.name,
             StrFormat("%.0f tok/s", kPrompt / today * 1e3),
             StrFormat("%.0f tok/s (prep: offline only)",
                       kPrompt / dynamic_shapes * 1e3),
             StrFormat("%.0f tok/s (%.2fx)", kPrompt / cache * 1e3,
                       today / cache),
             StrFormat("%.0f tok/s (%.2fx)", kPrompt / mixed * 1e3,
                       today / mixed)});
    }
    table.Print();
    std::printf("\nReading: (1) mostly benefits engines without chunk-"
                "sharing (llm.npu already pays preparation offline); "
                "(2) helps bandwidth-bound FFN stages (1.2-1.5x). "
                "(3) is a negative result worth reporting: migrating every "
                "float subgraph onto the NPU serializes the pipeline — even "
                "at half-INT8-rate FP16, losing CPU-NPU parallelism offsets "
                "the sync savings. Mixed-precision operands pay off only "
                "together with higher total NPU throughput, not as a "
                "drop-in migration.\n");
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
