/**
 * @file
 * Reproduces Figure 19: the ablation ladder — CPU baseline, naive NPU
 * offload, then +chunk-sharing, +shadow outlier, +out-of-order execution —
 * at a 512-token prompt.
 */
#include "bench/bench_util.h"
#include "src/core/llmnpu_engine.h"
#include "src/engines/baselines.h"

namespace llmnpu {
namespace {

struct PaperBar {
    const char* model;
    double cpu, naive, chunk, outlier, ooe;  // tokens/s from Figure 19
};

void
Run()
{
    BenchHeader("Figure 19: ablation study (prompt length 512)",
                "naive NPU is 2.55-2.68x slower than CPU; chunk +1.46-5.09x; "
                "shadow outlier +3.91-8.68x; out-of-order +18-44%");
    const SocSpec soc = SocSpec::RedmiK70Pro();
    const InferenceRequest req{512, 1};
    const PaperBar paper_bars[] = {
        {"Gemma-2B", 46, 18, 91, 355, 420},
        {"Qwen1.5-1.8B", 65, 25, 37, 395, 569},
        {"LlaMA-2-7B", 13, 5, 15, 133, 186},
    };

    LlamaCppEngine cpu_engine;
    NaiveNpuEngine naive_engine;
    LlmNpuOptions chunk_options;
    chunk_options.enable_shadow = false;
    chunk_options.enable_ooo = false;
    chunk_options.label = "Naive + Chunk";
    LlmNpuOptions outlier_options = chunk_options;
    outlier_options.enable_shadow = true;
    outlier_options.label = "Naive + Chunk + Outlier";
    LlmNpuOptions full_options = outlier_options;
    full_options.enable_ooo = true;
    full_options.label = "+ OOE (llm.npu)";
    LlmNpuEngine chunk_engine(chunk_options);
    LlmNpuEngine outlier_engine(outlier_options);
    LlmNpuEngine full_engine(full_options);

    for (const PaperBar& bar : paper_bars) {
        const ModelConfig config = ModelByName(bar.model);
        auto speed = [&](InferenceEngine& engine) {
            return 512.0 * 1e3 / engine.Run(config, soc, req).prefill_ms;
        };
        const double v_cpu = speed(cpu_engine);
        const double v_naive = speed(naive_engine);
        const double v_chunk = speed(chunk_engine);
        const double v_outlier = speed(outlier_engine);
        const double v_full = speed(full_engine);

        std::printf("\n-- %s --\n", bar.model);
        Table table({"Configuration", "tokens/s", "paper tokens/s"});
        table.AddRow({"CPU (llama.cpp)", Table::Num(v_cpu, 0),
                      Table::Num(bar.cpu, 0)});
        table.AddRow({"Naive NPU offload", Table::Num(v_naive, 0),
                      Table::Num(bar.naive, 0)});
        table.AddRow({"Naive + Chunk", Table::Num(v_chunk, 0),
                      Table::Num(bar.chunk, 0)});
        table.AddRow({"Naive + Chunk + Outlier", Table::Num(v_outlier, 0),
                      Table::Num(bar.outlier, 0)});
        table.AddRow({"Naive + Chunk + Outlier + OOE",
                      Table::Num(v_full, 0), Table::Num(bar.ooe, 0)});
        table.Print();
        Verdict("shadow-outlier step gain", v_outlier / v_chunk, 3.91, 8.68);
        Verdict("out-of-order step gain", v_full / v_outlier, 1.18, 1.44);
    }
}

}  // namespace
}  // namespace llmnpu

int
main()
{
    llmnpu::Run();
    return 0;
}
