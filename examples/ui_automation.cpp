/**
 * @file
 * UI task automation scenario (§1, §2.1): an agent ingests the screen view
 * hierarchy (~600-800 tokens of XML) and emits one UI action per step; a
 * task takes ~5 steps. On mobile CPUs each step costs ~8 s — llm.npu makes
 * the whole task interactive.
 *
 * Run: ./build/examples/ui_automation
 */
#include <cstdio>

#include "src/core/llmnpu_engine.h"
#include "src/engines/baselines.h"
#include "src/util/format.h"
#include "src/util/rng.h"
#include "src/workloads/datasets.h"

int
main()
{
    using namespace llmnpu;
    const SocSpec phone = SocSpec::RedmiK70Pro();
    const ModelConfig model = Qwen15_1_8B();
    const DatasetProfile droidtask = DroidTaskAppsProfile();
    constexpr int kSteps = 5;

    LlmNpuEngine ours;
    LlamaCppEngine llamacpp;
    MnnCpuEngine mnn;

    std::printf("UI automation task: %d steps, prompts of %d-%d tokens "
                "(DroidTask profile), model %s\n\n",
                kSteps, droidtask.prompt_min, droidtask.prompt_max,
                model.name.c_str());

    struct Candidate {
        InferenceEngine* engine;
    };
    for (InferenceEngine* engine :
         std::initializer_list<InferenceEngine*>{&ours, &llamacpp, &mnn}) {
        Rng rng(7);  // same step sequence for every engine
        double total_ms = 0.0;
        double total_mj = 0.0;
        std::printf("%-18s", engine->Name().c_str());
        for (int step = 0; step < kSteps; ++step) {
            const InferenceRequest request = droidtask.Sample(rng);
            const EngineResult result = engine->Run(model, phone, request);
            total_ms += result.EndToEndMs();
            total_mj += result.prefill_energy_mj + result.decode_energy_mj;
            std::printf(" step%d=%s", step + 1,
                        HumanMs(result.EndToEndMs()).c_str());
        }
        std::printf("\n%-18s total %s, %.1f J\n\n", "",
                    HumanMs(total_ms).c_str(), total_mj / 1e3);
    }
    std::printf("Paper anchor: one Qwen1.5-1.8B step takes 8.1 s on a "
                "mobile CPU => >40 s per 5-step task (§1); llm.npu brings "
                "the task to interactive latency.\n");
    return 0;
}
