/**
 * @file
 * Chat summary scenario (§2.1, Persona-Chat profile): balanced prompt and
 * output lengths, so decode matters — the case where GPU-NPU coordination
 * (§4.6 / Figure 18) pays off end-to-end.
 *
 * Run: ./build/examples/chat_summary
 */
#include <cstdio>

#include "src/core/llmnpu_engine.h"
#include "src/engines/baselines.h"
#include "src/util/format.h"
#include "src/workloads/datasets.h"

int
main()
{
    using namespace llmnpu;
    const SocSpec phone = SocSpec::RedmiK70Pro();
    const ModelConfig model = Gemma2B();
    const InferenceRequest request = PersonaChatProfile().Typical();

    std::printf("Chat summary: prompt %d tokens, output %d tokens "
                "(Persona-Chat), model %s\n\n", request.prompt_len,
                request.output_len, model.name.c_str());

    LlmNpuEngine cpu_npu;  // default: CPU handles float ops and decode
    LlmNpuOptions gpu_options;
    gpu_options.use_gpu_float = true;  // §4.6 GPU-NPU coordination
    gpu_options.label = "llm.npu GPU-NPU";
    LlmNpuEngine gpu_npu(gpu_options);
    TfliteEngine tflite(Unit::kGpu);
    LlamaCppEngine llamacpp;

    std::printf("%-18s %12s %12s %12s %10s\n", "Engine", "prefill",
                "decode", "end-to-end", "energy");
    for (InferenceEngine* engine :
         std::initializer_list<InferenceEngine*>{&cpu_npu, &gpu_npu, &tflite,
                                                 &llamacpp}) {
        if (!engine->SupportsModel(model)) continue;
        const EngineResult result = engine->Run(model, phone, request);
        std::printf("%-18s %12s %12s %12s %8.1f J\n",
                    engine->Name().c_str(),
                    HumanMs(result.prefill_ms).c_str(),
                    HumanMs(result.decode_ms).c_str(),
                    HumanMs(result.EndToEndMs()).c_str(),
                    (result.prefill_energy_mj + result.decode_energy_mj) /
                        1e3);
    }
    std::printf("\nObservation (Figure 18): GPU-NPU coordination leaves "
                "prefill unchanged (the float unit hides behind the NPU) "
                "but accelerates decode, which matters for this decode-"
                "heavy workload.\n");
    return 0;
}
