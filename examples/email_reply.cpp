/**
 * @file
 * Automated email reply scenario (§1, §2.1): the model mimics the user's
 * tone from historical emails — prompts of ~1500 tokens (LongBench
 * profile), short outputs. Prefill utterly dominates; this is llm.npu's
 * sweet spot. Also demonstrates the chunk-length option and model sweep.
 *
 * Run: ./build/examples/email_reply
 */
#include <cstdio>

#include "src/core/llmnpu_engine.h"
#include "src/engines/baselines.h"
#include "src/util/format.h"
#include "src/workloads/datasets.h"

int
main()
{
    using namespace llmnpu;
    const SocSpec phone = SocSpec::RedmiK70Pro();
    const DatasetProfile longbench = Longbench2WikiProfile();
    const InferenceRequest request = longbench.Typical();

    std::printf("Automated email reply: prompt %d tokens, output %d tokens "
                "(%s)\n\n", request.prompt_len, request.output_len,
                longbench.name.c_str());

    // Model sweep at the paper's default configuration.
    LlmNpuEngine ours;
    LlamaCppEngine llamacpp;
    std::printf("%-14s %14s %14s %10s %12s\n", "Model", "llm.npu e2e",
                "llama.cpp e2e", "speedup", "prefill shr");
    for (const ModelConfig& model : PaperModels()) {
        const EngineResult a = ours.Run(model, phone, request);
        const EngineResult b = llamacpp.Run(model, phone, request);
        std::printf("%-14s %14s %14s %9.1fx %11.1f%%\n", model.name.c_str(),
                    HumanMs(a.EndToEndMs()).c_str(),
                    HumanMs(b.EndToEndMs()).c_str(),
                    b.EndToEndMs() / a.EndToEndMs(),
                    100.0 * b.prefill_ms / b.EndToEndMs());
    }

    // Chunk-length sensitivity for this workload (Figure 8's tradeoff).
    std::printf("\nChunk-length sensitivity (Gemma-2B):\n");
    for (int chunk_len : {64, 128, 256, 512}) {
        LlmNpuOptions options;
        options.chunk_len = chunk_len;
        LlmNpuEngine engine(options);
        const EngineResult result = engine.Run(Gemma2B(), phone, request);
        std::printf("  chunk %4d: prefill %s (%.0f tok/s)\n", chunk_len,
                    HumanMs(result.prefill_ms).c_str(),
                    result.PrefillTokensPerSec(request.prompt_len));
    }
    return 0;
}
