/**
 * @file
 * Serving→numeric bridge walkthrough: simulate a multi-request serving
 * schedule, export its per-step batch composition, and replay it on real
 * tensors through the batched forward path.
 *
 *  1. Timing plane — the discrete-event simulator serves Poisson arrivals
 *     over the Table 5 dataset mixture with llm.npu's chunked prefill and
 *     continuously batched decode, recording every executed quantum.
 *  2. Numeric plane — the recorded schedule replays on a (tiny) real
 *     transformer via Transformer::ForwardBatch: each prefill chunk and
 *     each decode batch runs as one stacked matmul, and every sequence's
 *     hidden states are checked bitwise against running it alone.
 *
 * Build: cmake -B build && cmake --build build
 * Run:   ./build/examples/trace_replay
 */
#include <cstdio>

#include "src/core/llmnpu_engine.h"
#include "src/core/outlier_profile.h"
#include "src/core/shadow_executor.h"
#include "src/serving/replay.h"
#include "src/workloads/corpus.h"

int
main()
{
    using namespace llmnpu;

    // ------------------------------------------------------- serve (timing)
    LlmNpuEngine engine;
    ServingCostModel costs(engine, Qwen15_1_8B(), SocSpec::RedmiK70Pro());
    ServingOptions options;
    options.policy = SchedPolicy::kFcfs;
    options.num_requests = 6;
    options.rate_rps = 100.0;  // heavy load so decode actually batches
    options.seed = 7;
    const ServingResult served =
        ServingSimulator(costs, PaperDatasets(), options).Run();

    int decode_steps = 0, prefill_steps = 0;
    size_t max_batch = 1;
    for (const ReplayStep& step : served.replay_steps) {
        if (step.is_prefill) {
            ++prefill_steps;
        } else {
            ++decode_steps;
            max_batch = std::max(max_batch, step.request_ids.size());
        }
    }
    std::printf("== served schedule (%s on %s) ==\n",
                Qwen15_1_8B().name.c_str(),
                SocSpec::RedmiK70Pro().name().c_str());
    std::printf("%d requests -> %d prefill chunks + %d decode steps, "
                "largest decode batch B=%zu\n\n",
                options.num_requests, prefill_steps, decode_steps, max_batch);

    // ----------------------------------------------------- replay (numeric)
    const ModelConfig tiny = TinyTestConfig();
    const ModelWeights weights = GenerateSyntheticWeights(tiny);
    const Transformer transformer(weights);

    CorpusOptions corpus_options;
    corpus_options.vocab_size = tiny.vocab_size;
    const auto calib_corpus = MakeCorpus(corpus_options);
    const CalibrationData calib =
        CalibrationData::Collect(transformer, calib_corpus);
    const OutlierProfile profile =
        OutlierProfile::Collect(transformer, calib, calib_corpus);

    Fp32LinearExecutor fp32(weights);
    NpuShadowExecutor quantized(weights, profile, /*pruning_rate=*/0.5);

    ReplayOptions replay_options;
    replay_options.max_output_tokens = 64;
    for (LinearExecutor* linears : {static_cast<LinearExecutor*>(&fp32),
                                    static_cast<LinearExecutor*>(&quantized)}) {
        const ReplayOutcome outcome =
            ReplayServingTrace(served.replay_steps, served.records,
                               transformer, *linears, replay_options);
        std::printf("replay [%-7s]: %d steps (%d prefill, %d decode, "
                    "max B=%d), %lld stacked rows -> %s\n",
                    linears->Name().c_str(), outcome.steps_executed,
                    outcome.prefill_steps, outcome.decode_steps,
                    outcome.max_decode_batch,
                    static_cast<long long>(outcome.stacked_rows),
                    outcome.bitwise_match
                        ? "bitwise identical to sequential"
                        : outcome.first_mismatch.c_str());
    }
    return 0;
}
