/**
 * @file
 * Trace walkthrough: turn an exported Chrome trace-event JSON (from
 * `run_all --trace`, `bench_serving --trace`, or any
 * Tracer::WriteChromeTrace call) into a readable per-request span tree
 * and a per-plane time breakdown — the terminal view of what Perfetto
 * shows graphically.
 *
 * With no argument the example generates its own demo trace first: a
 * small serving-simulator run (virtual-time plane) whose schedule is then
 * replayed on a tiny real transformer (wall-clock plane), so both planes
 * are populated and connected by request ids.
 *
 * Build: cmake -B build && cmake --build build
 * Run:   ./build/examples/trace_dump [trace.json]
 */
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/llmnpu_engine.h"
#include "src/obs/trace.h"
#include "src/obs/trace_reader.h"
#include "src/serving/replay.h"
#include "src/workloads/corpus.h"

namespace {

using namespace llmnpu;

/** Runs sim + tiny-model replay under the tracer and returns the JSON. */
std::string
GenerateDemoTrace()
{
    obs::Tracer::Global().Enable();
    obs::Tracer::Global().Reset();

    LlmNpuEngine engine;
    ServingCostModel costs(engine, Qwen15_1_8B(), SocSpec::RedmiK70Pro());
    ServingOptions options;
    options.policy = SchedPolicy::kFcfs;
    options.num_requests = 4;
    options.rate_rps = 100.0;
    options.seed = 7;
    const ServingResult served =
        ServingSimulator(costs, PaperDatasets(), options).Run();

    const ModelConfig tiny = TinyTestConfig();
    const ModelWeights weights = GenerateSyntheticWeights(tiny);
    const Transformer transformer(weights);
    Fp32LinearExecutor fp32(weights);
    ReplayOptions replay_options;
    replay_options.max_output_tokens = 8;
    replay_options.max_prompt_tokens = 16;
    replay_options.check_bitwise = false;
    ReplayServingTrace(served.replay_steps, served.records, transformer,
                       fp32, replay_options);

    const std::string json = obs::Tracer::Global().ChromeTraceJson();
    obs::Tracer::Global().Disable();
    return json;
}

std::string
ReadFileOrDie(const char* path)
{
    FILE* f = std::fopen(path, "rb");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", path);
        std::exit(1);
    }
    std::string text;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        text.append(buf, n);
    }
    std::fclose(f);
    return text;
}

int
ReqOf(const obs::ReadEvent& event)
{
    auto it = event.args.find("req");
    if (it == event.args.end()) return -1;
    return static_cast<int>(it->second.number);
}

/** Per-plane breakdown: wall plane by category, sim plane by lane. */
void
PrintPlaneBreakdown(const obs::ReadTrace& trace)
{
    std::map<std::string, double> wall_cat_us;
    std::map<std::string, int> wall_cat_count;
    std::map<int, double> sim_lane_us;
    std::map<int, int> sim_lane_count;
    for (const obs::ReadEvent& e : trace.events) {
        if (e.ph != "X") continue;
        if (e.pid == 1) {
            wall_cat_us[e.cat] += e.dur_us;
            ++wall_cat_count[e.cat];
        } else if (e.pid == 2) {
            sim_lane_us[e.tid] += e.dur_us;
            ++sim_lane_count[e.tid];
        }
    }

    std::printf("== per-plane time breakdown ==\n");
    auto plane_name = [&](int pid) {
        auto it = trace.process_names.find(pid);
        return it == trace.process_names.end() ? std::string("?")
                                               : it->second;
    };
    std::printf("[pid 1] %s\n", plane_name(1).c_str());
    for (const auto& [cat, us] : wall_cat_us) {
        std::printf("  %-12s %8.3f ms  (%d spans)\n", cat.c_str(),
                    us / 1e3, wall_cat_count[cat]);
    }
    if (wall_cat_us.empty()) std::printf("  (no wall-clock spans)\n");
    std::printf("[pid 2] %s\n", plane_name(2).c_str());
    for (const auto& [lane, us] : sim_lane_us) {
        auto it = trace.thread_names.find({2, lane});
        std::printf("  %-22s %8.3f virtual ms  (%d tasks)\n",
                    it == trace.thread_names.end() ? "?"
                                                   : it->second.c_str(),
                    us / 1e3, sim_lane_count[lane]);
    }
    if (sim_lane_us.empty()) std::printf("  (no simulator tasks)\n");
    std::printf("\n");
}

/** Chronological, containment-indented span tree for one request. */
void
PrintRequestTree(const obs::ReadTrace& trace, int req)
{
    // Sim-plane rows first (virtual time), then wall-plane rows.
    struct Row {
        double t0 = 0.0;
        double t1 = 0.0;
        const obs::ReadEvent* event = nullptr;
    };
    std::vector<Row> sim, wall;
    for (const obs::ReadEvent& e : trace.events) {
        if (ReqOf(e) != req || (e.ph != "X" && e.ph != "i")) continue;
        Row row{e.ts_us, e.ts_us + e.dur_us, &e};
        (e.pid == 2 ? sim : wall).push_back(row);
    }
    auto by_time = [](const Row& a, const Row& b) {
        if (a.t0 != b.t0) return a.t0 < b.t0;
        return a.t1 > b.t1;  // longer span first = parent before child
    };
    std::sort(sim.begin(), sim.end(), by_time);
    std::sort(wall.begin(), wall.end(), by_time);

    std::printf("request %d\n", req);
    std::printf(" serving plane (virtual ms):\n");
    for (const Row& row : sim) {
        if (row.event->ph == "X") {
            std::printf("  %9.3f  %-24s %.3f ms\n", row.t0 / 1e3,
                        row.event->name.c_str(),
                        (row.t1 - row.t0) / 1e3);
        } else {
            std::printf("  %9.3f  %s\n", row.t0 / 1e3,
                        row.event->name.c_str());
        }
    }
    if (sim.empty()) std::printf("  (none)\n");

    std::printf(" numeric plane (wall-clock ms):\n");
    std::vector<double> open_ends;  // enclosing span end times = indent
    for (const Row& row : wall) {
        while (!open_ends.empty() && row.t0 >= open_ends.back()) {
            open_ends.pop_back();
        }
        std::printf("  %9.3f  %*s%-24s", row.t0 / 1e3,
                    static_cast<int>(2 * open_ends.size()), "",
                    row.event->name.c_str());
        if (row.event->ph == "X") {
            std::printf(" %.3f ms", (row.t1 - row.t0) / 1e3);
            open_ends.push_back(row.t1);
        }
        auto seq = row.event->args.find("seq");
        if (seq != row.event->args.end()) {
            std::printf("  [seq %d]",
                        static_cast<int>(seq->second.number));
        }
        std::printf("\n");
    }
    if (wall.empty()) std::printf("  (none)\n");
    std::printf("\n");
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string json;
    if (argc > 1) {
        json = ReadFileOrDie(argv[1]);
    } else {
        std::printf("no trace given; generating a demo trace "
                    "(sim + tiny-model replay)...\n\n");
        json = GenerateDemoTrace();
    }

    obs::ReadTrace trace;
    std::string error;
    if (!obs::ReadChromeTrace(json, &trace, &error)) {
        std::fprintf(stderr, "not a valid Chrome trace: %s\n",
                     error.c_str());
        return 1;
    }

    std::printf("== trace ==\n%zu events", trace.events.size());
    if (trace.other_data.Has("recorded")) {
        std::printf("  (tracer recorded %.0f, dropped %.0f)",
                    trace.other_data.At("recorded").number,
                    trace.other_data.At("dropped").number);
    }
    std::printf("\n\n");

    PrintPlaneBreakdown(trace);

    std::set<int> requests;
    for (const obs::ReadEvent& e : trace.events) {
        const int req = ReqOf(e);
        if (req >= 0) requests.insert(req);
    }
    std::printf("== per-request span trees (%zu requests) ==\n",
                requests.size());
    for (int req : requests) PrintRequestTree(trace, req);
    if (requests.empty()) {
        std::printf("(no events carry request ids)\n");
    }
    return 0;
}
