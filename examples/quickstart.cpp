/**
 * @file
 * Quickstart: the two planes of the llmnpu library in ~80 lines.
 *
 *  1. Timing plane — simulate llm.npu prefill/decode for Qwen1.5-1.8B on a
 *     Redmi K70 Pro and compare against llama.cpp-CPU.
 *  2. Numeric plane — run a real (tiny) transformer through llm.npu's
 *     shadow-outlier quantized executor and check it against FP32.
 *
 * Build: cmake -B build -G Ninja && cmake --build build
 * Run:   ./build/examples/quickstart
 */
#include <cstdio>

#include "src/core/llmnpu_engine.h"
#include "src/core/outlier_profile.h"
#include "src/core/shadow_executor.h"
#include "src/engines/baselines.h"
#include "src/util/format.h"
#include "src/workloads/corpus.h"

int
main()
{
    using namespace llmnpu;

    // ---------------------------------------------------------- timing plane
    const SocSpec phone = SocSpec::RedmiK70Pro();
    const ModelConfig model = Qwen15_1_8B();
    const InferenceRequest request{/*prompt_len=*/1024, /*output_len=*/16};

    LlmNpuEngine llmnpu_engine;  // chunk 256, shadow outliers, OoO scheduling
    LlamaCppEngine cpu_engine;

    const EngineResult ours = llmnpu_engine.Run(model, phone, request);
    const EngineResult cpu = cpu_engine.Run(model, phone, request);

    std::printf("== %s on %s, %d-token prompt ==\n", model.name.c_str(),
                phone.name().c_str(), request.prompt_len);
    std::printf("llm.npu   : prefill %s (%.0f tok/s), decode %s, "
                "energy %.1f J, prep (offline) %s\n",
                HumanMs(ours.prefill_ms).c_str(),
                ours.PrefillTokensPerSec(request.prompt_len),
                HumanMs(ours.decode_ms).c_str(),
                ours.prefill_energy_mj / 1e3,
                HumanMs(ours.prepare_ms).c_str());
    std::printf("llama.cpp : prefill %s (%.0f tok/s), decode %s, "
                "energy %.1f J\n",
                HumanMs(cpu.prefill_ms).c_str(),
                cpu.PrefillTokensPerSec(request.prompt_len),
                HumanMs(cpu.decode_ms).c_str(),
                cpu.prefill_energy_mj / 1e3);
    std::printf("speedup   : %.1fx prefill, %.1fx energy\n\n",
                cpu.prefill_ms / ours.prefill_ms,
                cpu.prefill_energy_mj / ours.prefill_energy_mj);

    // --------------------------------------------------------- numeric plane
    const ModelConfig tiny = TinyTestConfig();
    const ModelWeights weights = GenerateSyntheticWeights(tiny);
    const Transformer transformer(weights);

    // Offline preparation (Figure 6): calibrate, derive outlier profile.
    CorpusOptions corpus_options;
    corpus_options.vocab_size = tiny.vocab_size;
    const auto calib_corpus = MakeCorpus(corpus_options);
    const CalibrationData calib =
        CalibrationData::Collect(transformer, calib_corpus);
    const OutlierProfile profile =
        OutlierProfile::Collect(transformer, calib, calib_corpus);

    // Execute: per-tensor INT8 on the "NPU" + shadow outliers on the "CPU".
    // The paper's 0.85 pruning rate is calibrated for 24+-layer models;
    // this 2-layer toy keeps more of its (proportionally fewer) linears.
    NpuShadowExecutor quantized(weights, profile, /*pruning_rate=*/0.5);
    Fp32LinearExecutor reference(weights);

    const std::vector<int> prompt = {11, 42, 7, 99, 3, 250, 17, 64};
    const auto generated_q = transformer.Generate(prompt, 8, quantized);
    const auto generated_f = transformer.Generate(prompt, 8, reference);

    std::printf("== tiny model generation (quantized vs FP32) ==\n");
    std::printf("quantized:");
    for (int token : generated_q) std::printf(" %d", token);
    std::printf("\nfp32     :");
    for (int token : generated_f) std::printf(" %d", token);
    int matches = 0;
    for (size_t i = 0; i < generated_q.size(); ++i) {
        matches += generated_q[i] == generated_f[i];
    }
    std::printf("\nagreement: %d/%zu tokens; shadow extractions: %lld "
                "channels over %lld linear calls\n",
                matches, generated_q.size(),
                static_cast<long long>(quantized.stats().extracted_channels),
                static_cast<long long>(quantized.stats().linear_calls));
    return 0;
}
