# Validates the kernel GFLOP/s METRIC rows and the table5 decode-placement
# tokens/sec rows of a freshly produced BENCH_results.json against the
# committed baseline: every row must be present with a positive value, and
# rows whose key also exists in the baseline must sit within a generous
# BAND-x band of it. Kernel keys are (kernel, variant, m, k, n, threads)
# (CI hosts vary a lot; the band catches order-of-magnitude regressions —
# dropped SIMD flags, accidental naive fallbacks — not noise); decode keys
# are (dataset, model, decode_placement) and the values are deterministic
# simulator outputs, so they get their own much tighter DECODE_BAND
# (default 1.02x — any real cost-model drift fails; update the committed
# baseline when a PR intentionally changes decode costs).
# Run by CI after the bench-smoke step:
#
#   cmake -DRESULTS=<fresh.json> -DBASELINE=<committed.json> -DBAND=5.0 \
#         -P cmake/check_bench_metrics.cmake
#
# Requires CMake >= 3.19 (string(JSON)); the project's configure minimum
# stays 3.16 — this script is only run by CI and developers.

cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED RESULTS OR NOT DEFINED BASELINE)
  message(FATAL_ERROR "usage: cmake -DRESULTS=... -DBASELINE=... "
                      "[-DBAND=5.0] -P check_bench_metrics.cmake")
endif()
if(NOT DEFINED BAND)
  set(BAND 5.0)
endif()
if(NOT DEFINED DECODE_BAND)
  set(DECODE_BAND 1.02)
endif()
if(NOT DEFINED OBS_BAND)
  set(OBS_BAND 1.5)
endif()
if(NOT DEFINED PREDICT_BAND)
  set(PREDICT_BAND 0.25)
endif()

# CMake's math() is integer-only: parse a non-negative decimal into
# milli-units (x1000) so band comparisons become integer products.
function(to_milli value out_var)
  if(NOT value MATCHES "^[0-9]+(\\.[0-9]+)?$")
    message(FATAL_ERROR
      "check_bench_metrics: non-numeric metric value '${value}'")
  endif()
  if(value MATCHES "^([0-9]+)\\.([0-9]+)$")
    set(int_part "${CMAKE_MATCH_1}")
    set(frac "${CMAKE_MATCH_2}000")
    string(SUBSTRING "${frac}" 0 3 frac)
  else()
    set(int_part "${value}")
    set(frac "000")
  endif()
  math(EXPR milli "${int_part} * 1000 + ${frac}")
  set(${out_var} "${milli}" PARENT_SCOPE)
endfunction()

# Collects "key=gflops" pairs for the bench_kernels metric rows of one
# results file into `out_var`.
function(collect_kernel_metrics json_path out_var)
  file(READ ${json_path} content)
  string(JSON num_benches LENGTH ${content} "benches")
  set(pairs "")
  math(EXPR last_bench "${num_benches} - 1")
  foreach(b RANGE ${last_bench})
    string(JSON bench_name GET ${content} "benches" ${b} "name")
    if(NOT bench_name STREQUAL "bench_kernels")
      continue()
    endif()
    string(JSON num_metrics ERROR_VARIABLE err
           LENGTH ${content} "benches" ${b} "metrics")
    if(err OR num_metrics EQUAL 0)
      message(FATAL_ERROR
        "check_bench_metrics: ${json_path} has no bench_kernels metric "
        "rows — the kernel GFLOP/s METRIC output regressed")
    endif()
    math(EXPR last_metric "${num_metrics} - 1")
    foreach(i RANGE ${last_metric})
      set(prefix "benches" ${b} "metrics" ${i})
      string(JSON kernel GET ${content} ${prefix} "kernel")
      string(JSON variant GET ${content} ${prefix} "variant")
      string(JSON m GET ${content} ${prefix} "m")
      string(JSON k GET ${content} ${prefix} "k")
      string(JSON n GET ${content} ${prefix} "n")
      string(JSON threads GET ${content} ${prefix} "threads")
      string(JSON gflops GET ${content} ${prefix} "gflops")
      if(NOT gflops GREATER 0)
        message(FATAL_ERROR
          "check_bench_metrics: ${json_path}: ${kernel}/${variant} "
          "m=${m} k=${k} n=${n} t=${threads} has non-positive "
          "gflops=${gflops}")
      endif()
      list(APPEND pairs
           "${kernel}|${variant}|${m}|${k}|${n}|${threads}=${gflops}")
    endforeach()
  endforeach()
  if(pairs STREQUAL "")
    message(FATAL_ERROR
      "check_bench_metrics: ${json_path} has no bench_kernels entry")
  endif()
  set(${out_var} "${pairs}" PARENT_SCOPE)
endfunction()

# Collects "dataset|model|placement=tokens_per_sec" pairs for the
# bench_table5_e2e decode-placement rows of one results file.
function(collect_decode_metrics json_path out_var)
  file(READ ${json_path} content)
  string(JSON num_benches LENGTH ${content} "benches")
  set(pairs "")
  math(EXPR last_bench "${num_benches} - 1")
  foreach(b RANGE ${last_bench})
    string(JSON bench_name GET ${content} "benches" ${b} "name")
    if(NOT bench_name STREQUAL "bench_table5_e2e")
      continue()
    endif()
    string(JSON num_metrics ERROR_VARIABLE err
           LENGTH ${content} "benches" ${b} "metrics")
    if(err OR num_metrics EQUAL 0)
      message(FATAL_ERROR
        "check_bench_metrics: ${json_path} has no bench_table5_e2e metric "
        "rows — the decode-placement METRIC output regressed")
    endif()
    math(EXPR last_metric "${num_metrics} - 1")
    foreach(i RANGE ${last_metric})
      set(prefix "benches" ${b} "metrics" ${i})
      string(JSON dataset GET ${content} ${prefix} "dataset")
      string(JSON model GET ${content} ${prefix} "model")
      string(JSON placement GET ${content} ${prefix} "decode_placement")
      string(JSON tps GET ${content} ${prefix} "decode_tokens_per_sec")
      if(NOT tps GREATER 0)
        message(FATAL_ERROR
          "check_bench_metrics: ${json_path}: ${dataset}/${model}/"
          "${placement} has non-positive decode_tokens_per_sec=${tps}")
      endif()
      list(APPEND pairs "${dataset}|${model}|${placement}=${tps}")
    endforeach()
  endforeach()
  if(pairs STREQUAL "")
    message(FATAL_ERROR
      "check_bench_metrics: ${json_path} has no bench_table5_e2e entry")
  endif()
  set(${out_var} "${pairs}" PARENT_SCOPE)
endfunction()

# Collects "paged_kv|<pool_pages>=kv_pages_mean" pairs for the
# bench_serving paged-KV pool-sweep rows of one results file, checking the
# hard pool-budget invariant (peak occupancy never exceeds the pool) on the
# way. The sweep is deterministic simulator output, so occupancy drift is
# checked with DECODE_BAND like the decode-placement rows.
function(collect_paged_kv_metrics json_path out_var)
  file(READ ${json_path} content)
  string(JSON num_benches LENGTH ${content} "benches")
  set(pairs "")
  math(EXPR last_bench "${num_benches} - 1")
  foreach(b RANGE ${last_bench})
    string(JSON bench_name GET ${content} "benches" ${b} "name")
    if(NOT bench_name STREQUAL "bench_serving")
      continue()
    endif()
    string(JSON num_metrics ERROR_VARIABLE err
           LENGTH ${content} "benches" ${b} "metrics")
    if(err OR num_metrics EQUAL 0)
      message(FATAL_ERROR
        "check_bench_metrics: ${json_path} has no bench_serving metric "
        "rows — the serving METRIC output regressed")
    endif()
    math(EXPR last_metric "${num_metrics} - 1")
    foreach(i RANGE ${last_metric})
      set(prefix "benches" ${b} "metrics" ${i})
      string(JSON mode ERROR_VARIABLE err GET ${content} ${prefix} "mode")
      if(err OR NOT mode STREQUAL "paged_kv")
        continue()
      endif()
      string(JSON pool GET ${content} ${prefix} "kv_pool_pages")
      string(JSON peak GET ${content} ${prefix} "kv_pages_peak")
      string(JSON mean GET ${content} ${prefix} "kv_pages_mean")
      if(peak GREATER pool)
        message(FATAL_ERROR
          "check_bench_metrics: ${json_path}: paged_kv pool=${pool} has "
          "kv_pages_peak=${peak} above the pool budget — the bounded-pool "
          "invariant broke")
      endif()
      if(NOT mean GREATER 0)
        message(FATAL_ERROR
          "check_bench_metrics: ${json_path}: paged_kv pool=${pool} has "
          "non-positive kv_pages_mean=${mean}")
      endif()
      list(APPEND pairs "paged_kv|${pool}=${mean}")
    endforeach()
  endforeach()
  if(pairs STREQUAL "")
    message(FATAL_ERROR
      "check_bench_metrics: ${json_path} has no paged_kv pool-sweep rows — "
      "the bench_serving paged-KV METRIC output regressed")
  endif()
  set(${out_var} "${pairs}" PARENT_SCOPE)
endfunction()

# Collects "shared_prefix|<pool>|<fraction>=served_per_100_pages" pairs
# for the bench_serving shared-system-prompt sweep of one results file,
# checking two hard invariants on the way (no baseline needed — these hold
# for any parameters or the sharing plane is broken):
#  - pool-budget: kv_pages_peak never exceeds kv_pool_pages at any share
#    fraction — once-counted admission must not over-admit;
#  - capacity win: within each pool, served_per_100_pages is non-decreasing
#    as the share fraction rises (rows are emitted in ascending-fraction
#    order) and the max-fraction value strictly beats the fraction-0 value.
# The per-(pool, fraction) values are deterministic simulator output and
# are additionally band-checked against the committed baseline with
# DECODE_BAND.
function(collect_shared_prefix_metrics json_path out_var)
  file(READ ${json_path} content)
  string(JSON num_benches LENGTH ${content} "benches")
  set(pairs "")
  set(pools "")
  math(EXPR last_bench "${num_benches} - 1")
  foreach(b RANGE ${last_bench})
    string(JSON bench_name GET ${content} "benches" ${b} "name")
    if(NOT bench_name STREQUAL "bench_serving")
      continue()
    endif()
    string(JSON num_metrics ERROR_VARIABLE err
           LENGTH ${content} "benches" ${b} "metrics")
    if(err OR num_metrics EQUAL 0)
      continue()
    endif()
    math(EXPR last_metric "${num_metrics} - 1")
    foreach(i RANGE ${last_metric})
      set(prefix "benches" ${b} "metrics" ${i})
      string(JSON mode ERROR_VARIABLE err GET ${content} ${prefix} "mode")
      if(err OR NOT mode STREQUAL "shared_prefix")
        continue()
      endif()
      string(JSON pool GET ${content} ${prefix} "kv_pool_pages")
      string(JSON fraction GET ${content} ${prefix} "share_fraction")
      string(JSON peak GET ${content} ${prefix} "kv_pages_peak")
      string(JSON served GET ${content} ${prefix} "served_per_100_pages")
      if(peak GREATER pool)
        message(FATAL_ERROR
          "check_bench_metrics: ${json_path}: shared_prefix pool=${pool} "
          "fraction=${fraction} has kv_pages_peak=${peak} above the pool "
          "budget — once-counted admission over-admitted")
      endif()
      to_milli(${served} served_milli)
      if(NOT pool IN_LIST pools)
        list(APPEND pools "${pool}")
        set(first_${pool} "${served_milli}")
      elseif(served_milli LESS prev_${pool})
        message(FATAL_ERROR
          "check_bench_metrics: ${json_path}: shared_prefix pool=${pool} "
          "served_per_100_pages dropped to ${served} at fraction="
          "${fraction} — the capacity win must be monotone in the share "
          "fraction")
      endif()
      set(prev_${pool} "${served_milli}")
      list(APPEND pairs "shared_prefix|${pool}|${fraction}=${served}")
    endforeach()
  endforeach()
  if(pairs STREQUAL "")
    message(FATAL_ERROR
      "check_bench_metrics: ${json_path} has no shared_prefix sweep rows — "
      "the bench_serving shared-prompt METRIC output regressed")
  endif()
  foreach(pool IN LISTS pools)
    if(NOT prev_${pool} GREATER first_${pool})
      message(FATAL_ERROR
        "check_bench_metrics: ${json_path}: shared_prefix pool=${pool} "
        "served no more requests at the max share fraction than with "
        "sharing off — the once-counted prefix produced no capacity win")
    endif()
  endforeach()
  set(${out_var} "${pairs}" PARENT_SCOPE)
endfunction()

# Collects "faults|<rate>|<failover>=goodput_rps" pairs for the
# bench_serving degraded-mode sweep of one results file. Only the
# fault-rate-0 rows are collected for band checking: they are bit-identical
# to a fault-free run by the zero-rate contract, so their goodput must sit
# within DECODE_BAND of the committed baseline — the fault plane being
# merely *compiled in* must not move a single number. Faulted rows vary
# legitimately with defense tuning and are covered by the hard invariants
# in check_fault_shrink below and the faults test suite.
function(collect_fault_metrics json_path out_var)
  file(READ ${json_path} content)
  string(JSON num_benches LENGTH ${content} "benches")
  set(pairs "")
  math(EXPR last_bench "${num_benches} - 1")
  foreach(b RANGE ${last_bench})
    string(JSON bench_name GET ${content} "benches" ${b} "name")
    if(NOT bench_name STREQUAL "bench_serving")
      continue()
    endif()
    string(JSON num_metrics ERROR_VARIABLE err
           LENGTH ${content} "benches" ${b} "metrics")
    if(err OR num_metrics EQUAL 0)
      continue()
    endif()
    math(EXPR last_metric "${num_metrics} - 1")
    foreach(i RANGE ${last_metric})
      set(prefix "benches" ${b} "metrics" ${i})
      string(JSON mode ERROR_VARIABLE err GET ${content} ${prefix} "mode")
      if(err OR NOT mode STREQUAL "faults")
        continue()
      endif()
      string(JSON rate GET ${content} ${prefix} "fault_rate")
      string(JSON failover GET ${content} ${prefix} "failover")
      string(JSON goodput GET ${content} ${prefix} "goodput_rps")
      string(JSON faults GET ${content} ${prefix} "faults")
      if(NOT rate MATCHES "^0(\\.0+)?$")
        continue()
      endif()
      if(NOT faults EQUAL 0)
        message(FATAL_ERROR
          "check_bench_metrics: ${json_path}: faults row at fault_rate=0 "
          "reports faults=${faults} — zero-rate injection drew a fault")
      endif()
      if(NOT goodput GREATER 0)
        message(FATAL_ERROR
          "check_bench_metrics: ${json_path}: faults row at fault_rate=0 "
          "failover=${failover} has non-positive goodput_rps=${goodput}")
      endif()
      list(APPEND pairs "faults|0|${failover}=${goodput}")
    endforeach()
  endforeach()
  if(pairs STREQUAL "")
    message(FATAL_ERROR
      "check_bench_metrics: ${json_path} has no fault-rate-0 degraded-mode "
      "rows — the bench_serving fault-sweep METRIC output regressed")
  endif()
  set(${out_var} "${pairs}" PARENT_SCOPE)
endfunction()

# Checks the bench_serving mid-run pool-shrink row's hard invariants: the
# post-shrink peak occupancy never exceeds the live (shrunk) budget, and the
# live budget is a real shrink of the configured pool. No baseline needed —
# these hold for any parameters or the degraded-mode defense is broken.
function(check_fault_shrink json_path)
  file(READ ${json_path} content)
  string(JSON num_benches LENGTH ${content} "benches")
  set(checked 0)
  math(EXPR last_bench "${num_benches} - 1")
  foreach(b RANGE ${last_bench})
    string(JSON bench_name GET ${content} "benches" ${b} "name")
    if(NOT bench_name STREQUAL "bench_serving")
      continue()
    endif()
    string(JSON num_metrics ERROR_VARIABLE err
           LENGTH ${content} "benches" ${b} "metrics")
    if(err OR num_metrics EQUAL 0)
      continue()
    endif()
    math(EXPR last_metric "${num_metrics} - 1")
    foreach(i RANGE ${last_metric})
      set(prefix "benches" ${b} "metrics" ${i})
      string(JSON mode ERROR_VARIABLE err GET ${content} ${prefix} "mode")
      if(err OR NOT mode STREQUAL "fault_shrink")
        continue()
      endif()
      string(JSON pool GET ${content} ${prefix} "kv_pool_pages")
      string(JSON live GET ${content} ${prefix} "kv_pool_pages_live")
      string(JSON peak GET ${content} ${prefix} "kv_pages_peak")
      string(JSON post GET ${content} ${prefix} "kv_pages_peak_post_shrink")
      if(NOT live GREATER 0 OR NOT live LESS ${pool})
        message(FATAL_ERROR
          "check_bench_metrics: ${json_path}: fault_shrink live budget "
          "${live} is not a shrink of pool=${pool}")
      endif()
      if(post GREATER live)
        message(FATAL_ERROR
          "check_bench_metrics: ${json_path}: fault_shrink post-shrink "
          "peak ${post} exceeds the live budget ${live} — the shrink "
          "defense leaked pages")
      endif()
      if(peak GREATER pool)
        message(FATAL_ERROR
          "check_bench_metrics: ${json_path}: fault_shrink peak ${peak} "
          "exceeds the configured pool ${pool}")
      endif()
      math(EXPR checked "${checked} + 1")
    endforeach()
  endforeach()
  if(checked EQUAL 0)
    message(FATAL_ERROR
      "check_bench_metrics: ${json_path} has no fault_shrink row — the "
      "bench_serving pool-shrink METRIC output regressed")
  endif()
  set(shrink_checked ${checked} PARENT_SCOPE)
endfunction()

# Checks the bench_obs tracer-overhead rows of one results file against an
# *absolute* band: the `disabled` and `enabled_idle` overhead ratios must
# stay under OBS_BAND (default 1.5x — an unobserved span macro costs one
# relaxed atomic load, so a blowout here means the hot-path gate regressed).
# Unlike the kernel/decode checks this needs no committed baseline: the
# ratio is already normalized against the same run's own uninstrumented
# loop.
function(check_obs_metrics json_path band)
  file(READ ${json_path} content)
  string(JSON num_benches LENGTH ${content} "benches")
  to_milli(${band} band_milli)
  set(checked 0)
  math(EXPR last_bench "${num_benches} - 1")
  foreach(b RANGE ${last_bench})
    string(JSON bench_name GET ${content} "benches" ${b} "name")
    if(NOT bench_name STREQUAL "bench_obs")
      continue()
    endif()
    string(JSON num_metrics ERROR_VARIABLE err
           LENGTH ${content} "benches" ${b} "metrics")
    if(err OR num_metrics EQUAL 0)
      message(FATAL_ERROR
        "check_bench_metrics: ${json_path} has no bench_obs metric rows — "
        "the tracer-overhead METRIC output regressed")
    endif()
    math(EXPR last_metric "${num_metrics} - 1")
    foreach(i RANGE ${last_metric})
      set(prefix "benches" ${b} "metrics" ${i})
      string(JSON mode GET ${content} ${prefix} "mode")
      string(JSON ns GET ${content} ${prefix} "ns_per_site")
      string(JSON ratio GET ${content} ${prefix} "overhead_ratio")
      if(NOT ns GREATER 0)
        message(FATAL_ERROR
          "check_bench_metrics: ${json_path}: bench_obs mode=${mode} has "
          "non-positive ns_per_site=${ns}")
      endif()
      if(mode STREQUAL "disabled" OR mode STREQUAL "enabled_idle")
        to_milli(${ratio} ratio_milli)
        if(ratio_milli GREATER band_milli)
          message(FATAL_ERROR
            "check_bench_metrics: ${json_path}: bench_obs mode=${mode} "
            "overhead_ratio=${ratio} exceeds the ${band}x band — "
            "instrumentation that is not being observed must be free")
        endif()
        math(EXPR checked "${checked} + 1")
      endif()
    endforeach()
  endforeach()
  if(checked EQUAL 0)
    message(FATAL_ERROR
      "check_bench_metrics: ${json_path} has no bench_obs disabled/"
      "enabled_idle rows — the tracer-overhead METRIC output regressed")
  endif()
  set(obs_checked ${checked} PARENT_SCOPE)
endfunction()

# Checks the bench_serving policy_sweep rows' hard acceptance invariant:
# at every swept offered load, the dynamic predicted-placement policy's
# goodput must be at least 0.95x the best static placement's goodput.
# Only the placement-sweep rows participate (placement_flips >= 0; the
# admission-comparison rows at the end of the sweep run under a different
# SLO and report placement_flips = -1). No baseline needed: the invariant
# is the tentpole claim itself — a dynamic policy that loses to a static
# one it could have imitated is a regression at any absolute level.
function(check_policy_sweep json_path)
  file(READ ${json_path} content)
  string(JSON num_benches LENGTH ${content} "benches")
  set(ratios "")
  math(EXPR last_bench "${num_benches} - 1")
  foreach(b RANGE ${last_bench})
    string(JSON bench_name GET ${content} "benches" ${b} "name")
    if(NOT bench_name STREQUAL "bench_serving")
      continue()
    endif()
    string(JSON num_metrics ERROR_VARIABLE err
           LENGTH ${content} "benches" ${b} "metrics")
    if(err OR num_metrics EQUAL 0)
      continue()
    endif()
    math(EXPR last_metric "${num_metrics} - 1")
    foreach(i RANGE ${last_metric})
      set(prefix "benches" ${b} "metrics" ${i})
      string(JSON mode ERROR_VARIABLE err GET ${content} ${prefix} "mode")
      if(err OR NOT mode STREQUAL "policy_sweep")
        continue()
      endif()
      string(JSON flips GET ${content} ${prefix} "placement_flips")
      if(flips LESS 0)
        continue()
      endif()
      string(JSON ratio GET ${content} ${prefix} "offered_ratio")
      string(JSON policy GET ${content} ${prefix} "placement_policy")
      string(JSON goodput GET ${content} ${prefix} "goodput_rps")
      to_milli(${goodput} goodput_milli)
      if(NOT ratio IN_LIST ratios)
        list(APPEND ratios "${ratio}")
        set(best_static_${ratio} 0)
        set(dynamic_${ratio} "")
      endif()
      if(policy STREQUAL "predicted")
        set(dynamic_${ratio} "${goodput_milli}")
      elseif(goodput_milli GREATER best_static_${ratio})
        set(best_static_${ratio} "${goodput_milli}")
      endif()
    endforeach()
  endforeach()
  if(ratios STREQUAL "")
    message(FATAL_ERROR
      "check_bench_metrics: ${json_path} has no policy_sweep placement "
      "rows — the bench_serving control-plane METRIC output regressed")
  endif()
  set(checked 0)
  foreach(ratio IN LISTS ratios)
    if(dynamic_${ratio} STREQUAL "" OR best_static_${ratio} EQUAL 0)
      message(FATAL_ERROR
        "check_bench_metrics: ${json_path}: policy_sweep ratio ${ratio} "
        "is missing the predicted row or every static row")
    endif()
    math(EXPR lhs "${dynamic_${ratio}} * 100")
    math(EXPR rhs "${best_static_${ratio}} * 95")
    if(lhs LESS rhs)
      message(FATAL_ERROR
        "check_bench_metrics: ${json_path}: at offered_ratio=${ratio} the "
        "dynamic policy's goodput (${dynamic_${ratio}} milli-rps) fell "
        "below 0.95x the best static (${best_static_${ratio}} milli-rps) "
        "— dynamic placement must match or beat what it could imitate")
    endif()
    math(EXPR checked "${checked} + 1")
  endforeach()
  set(policy_checked ${checked} PARENT_SCOPE)
endfunction()

# Checks the bench_predict rows against absolute bands (no committed
# baseline: the predictor's training set IS the committed baseline, so
# its held-in error is already a self-relative quantity):
#  - every banded fit_error row's median relative error stays under
#    PREDICT_BAND (trace-sourced wall-clock classes report unbanded);
#  - the model serialization round-trips bitwise;
#  - the fitted decode-step crossover keeps the paper's shape: CPU wins
#    at batch 1, the NPU wins at batch 32.
function(check_predict_metrics json_path band)
  file(READ ${json_path} content)
  string(JSON num_benches LENGTH ${content} "benches")
  to_milli(${band} band_milli)
  set(err_checked 0)
  set(roundtrip_seen 0)
  set(winner_1 "")
  set(winner_32 "")
  math(EXPR last_bench "${num_benches} - 1")
  foreach(b RANGE ${last_bench})
    string(JSON bench_name GET ${content} "benches" ${b} "name")
    if(NOT bench_name STREQUAL "bench_predict")
      continue()
    endif()
    string(JSON num_metrics ERROR_VARIABLE err
           LENGTH ${content} "benches" ${b} "metrics")
    if(err OR num_metrics EQUAL 0)
      message(FATAL_ERROR
        "check_bench_metrics: ${json_path} has no bench_predict metric "
        "rows — the latency-predictor METRIC output regressed")
    endif()
    math(EXPR last_metric "${num_metrics} - 1")
    foreach(i RANGE ${last_metric})
      set(prefix "benches" ${b} "metrics" ${i})
      string(JSON mode GET ${content} ${prefix} "mode")
      if(mode STREQUAL "fit_error")
        string(JSON op GET ${content} ${prefix} "op")
        string(JSON banded GET ${content} ${prefix} "banded")
        string(JSON median GET ${content} ${prefix} "median_rel_err")
        if(NOT banded)
          continue()
        endif()
        to_milli(${median} median_milli)
        if(median_milli GREATER band_milli)
          message(FATAL_ERROR
            "check_bench_metrics: ${json_path}: predictor class ${op} has "
            "median_rel_err=${median} above the ${band} band — the fitted "
            "latency model stopped tracking the measurements")
        endif()
        math(EXPR err_checked "${err_checked} + 1")
      elseif(mode STREQUAL "roundtrip")
        string(JSON bitwise GET ${content} ${prefix} "bitwise")
        if(NOT bitwise)
          message(FATAL_ERROR
            "check_bench_metrics: ${json_path}: latency-model "
            "serialization is not a bitwise round-trip")
        endif()
        math(EXPR roundtrip_seen "${roundtrip_seen} + 1")
      elseif(mode STREQUAL "crossover")
        string(JSON batch GET ${content} ${prefix} "batch")
        string(JSON winner GET ${content} ${prefix} "winner")
        if(batch EQUAL 1)
          set(winner_1 "${winner}")
        elseif(batch EQUAL 32)
          set(winner_32 "${winner}")
        endif()
      endif()
    endforeach()
  endforeach()
  if(err_checked EQUAL 0)
    message(FATAL_ERROR
      "check_bench_metrics: ${json_path} has no banded bench_predict "
      "fit_error rows — the predictor-error METRIC output regressed")
  endif()
  if(roundtrip_seen EQUAL 0)
    message(FATAL_ERROR
      "check_bench_metrics: ${json_path} has no bench_predict roundtrip "
      "row")
  endif()
  if(NOT winner_1 STREQUAL "cpu" OR NOT winner_32 STREQUAL "npu")
    message(FATAL_ERROR
      "check_bench_metrics: ${json_path}: fitted crossover shape broke — "
      "batch-1 winner '${winner_1}' (want cpu), batch-32 winner "
      "'${winner_32}' (want npu)")
  endif()
  set(predict_checked ${err_checked} PARENT_SCOPE)
endfunction()

# Band-checks every fresh "key=value" pair whose key exists in the baseline
# list against `band` (e.g. 5.0 = within 5x either way); fails if none
# match or any value strays outside the band.
function(band_check_pairs fresh_list base_list unit_label band)
  to_milli(${band} band_milli)
  set(matched 0)
  foreach(pair IN LISTS fresh_list)
    string(REGEX MATCH "^([^=]+)=(.*)$" _ "${pair}")
    set(key "${CMAKE_MATCH_1}")
    set(value "${CMAKE_MATCH_2}")
    foreach(bpair IN LISTS base_list)
      string(REGEX MATCH "^([^=]+)=(.*)$" _ "${bpair}")
      if(NOT CMAKE_MATCH_1 STREQUAL key)
        continue()
      endif()
      set(base_value "${CMAKE_MATCH_2}")
      math(EXPR matched "${matched} + 1")
      to_milli(${value} fresh_milli)
      to_milli(${base_value} base_milli)
      # Band check in milli-units: fresh*BAND >= base (not BAND-x slower)
      # and fresh <= base*BAND (not BAND-x faster — a too-fast row usually
      # means the measured workload silently shrank).
      math(EXPR lhs "${fresh_milli} * ${band_milli}")
      math(EXPR rhs "${base_milli} * 1000")
      if(lhs LESS rhs)
        message(FATAL_ERROR
          "check_bench_metrics: ${key}: fresh ${value} ${unit_label} is "
          "more than ${band}x slower than baseline ${base_value}")
      endif()
      math(EXPR lhs "${fresh_milli} * 1000")
      math(EXPR rhs "${base_milli} * ${band_milli}")
      if(lhs GREATER rhs)
        message(FATAL_ERROR
          "check_bench_metrics: ${key}: fresh ${value} ${unit_label} is "
          "more than ${band}x faster than baseline ${base_value} "
          "(workload shrank?)")
      endif()
    endforeach()
  endforeach()
  if(matched EQUAL 0)
    message(FATAL_ERROR
      "check_bench_metrics: no ${unit_label} key of the fresh results "
      "matches the committed baseline — the metric key schema drifted; "
      "update the committed baseline")
  endif()
  set(band_matched ${matched} PARENT_SCOPE)
endfunction()

collect_kernel_metrics(${RESULTS} fresh)
collect_kernel_metrics(${BASELINE} base)
band_check_pairs("${fresh}" "${base}" "GFLOP/s" ${BAND})
set(kernel_matched ${band_matched})

collect_decode_metrics(${RESULTS} fresh_decode)
collect_decode_metrics(${BASELINE} base_decode)
band_check_pairs("${fresh_decode}" "${base_decode}" "decode-tokens/s"
                 ${DECODE_BAND})
set(decode_matched ${band_matched})

collect_paged_kv_metrics(${RESULTS} fresh_paged)
collect_paged_kv_metrics(${BASELINE} base_paged)
band_check_pairs("${fresh_paged}" "${base_paged}" "kv-pages-mean"
                 ${DECODE_BAND})

set(paged_matched ${band_matched})

collect_shared_prefix_metrics(${RESULTS} fresh_shared)
collect_shared_prefix_metrics(${BASELINE} base_shared)
band_check_pairs("${fresh_shared}" "${base_shared}" "served-per-100-pages"
                 ${DECODE_BAND})
set(shared_matched ${band_matched})

collect_fault_metrics(${RESULTS} fresh_faults)
collect_fault_metrics(${BASELINE} base_faults)
band_check_pairs("${fresh_faults}" "${base_faults}" "fault-free-goodput"
                 ${DECODE_BAND})

check_fault_shrink(${RESULTS})

check_obs_metrics(${RESULTS} ${OBS_BAND})

check_policy_sweep(${RESULTS})

check_predict_metrics(${RESULTS} ${PREDICT_BAND})

message(STATUS
  "check_bench_metrics: ${kernel_matched} kernel rows within ${BAND}x, "
  "${decode_matched} decode-placement rows, ${paged_matched} paged-KV "
  "occupancy rows, ${shared_matched} shared-prefix capacity rows, and "
  "${band_matched} zero-fault goodput rows within "
  "${DECODE_BAND}x of the committed baseline; ${shrink_checked} "
  "pool-shrink row(s) inside the live budget; ${obs_checked} "
  "tracer-overhead rows within the absolute ${OBS_BAND}x band; "
  "${policy_checked} policy-sweep load(s) with dynamic >= 0.95x best "
  "static; ${predict_checked} predictor classes within the absolute "
  "${PREDICT_BAND} error band")
