# CTest script behind the `bench-smoke` label: runs bench_serving at a tiny
# load through the run_all driver, then asserts the BENCH_results.json it
# wrote still carries the llmnpu-bench-v2 schema and the serving metric
# fields downstream tooling keys on. Catches schema regressions on push
# without paying for the full bench sweep.
#
# Expects: RUN_ALL (path to the driver), OUT (json path to write).

execute_process(
  COMMAND ${RUN_ALL} --quiet --filter bench_serving --out ${OUT}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench-smoke: run_all exited with ${rc}")
endif()

file(READ ${OUT} content)
foreach(needle
    "\"schema\": \"llmnpu-bench-v2\""
    "\"name\": \"bench_serving\""
    "\"metrics\""
    "\"policy\""
    "\"throughput_rps\""
    "\"goodput_rps\""
    "\"ttft_p50_ms\""
    "\"ttft_p99_ms\""
    "\"e2e_p99_ms\"")
  string(FIND "${content}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
      "bench-smoke: ${OUT} is missing '${needle}' — the "
      "BENCH_results.json schema regressed")
  endif()
endforeach()
message(STATUS "bench-smoke: schema ok (${OUT})")
