# CTest script behind the `bench-smoke` label: runs the whole bench sweep in
# --quick mode (smaller sizes / iteration caps; LLMNPU_BENCH_QUICK and
# LLMNPU_SERVING_SMOKE exported to the benches) through the run_all driver,
# then asserts the BENCH_results.json it wrote still carries the
# llmnpu-bench-v2 schema plus the serving and kernel metric fields that
# downstream tooling keys on. Catches schema regressions on push without
# paying for the full bench sweep (full runs keep the real sizes).
#
# Expects: RUN_ALL (path to the driver), OUT (json path to write).

execute_process(
  COMMAND ${RUN_ALL} --quiet --quick --out ${OUT}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench-smoke: run_all exited with ${rc}")
endif()

file(READ ${OUT} content)
foreach(needle
    "\"schema\": \"llmnpu-bench-v2\""
    "\"quick\": true"
    "\"name\": \"bench_serving\""
    "\"metrics\""
    "\"policy\""
    "\"throughput_rps\""
    "\"goodput_rps\""
    "\"ttft_p50_ms\""
    "\"ttft_p99_ms\""
    "\"e2e_p99_ms\""
    "\"mode\": \"decode_placement\""
    "\"decode_placement\": \"npu\""
    "\"decode_tokens_per_sec\""
    "\"name\": \"bench_table5_e2e\""
    "\"bench\": \"table5_e2e\""
    "\"name\": \"bench_kernels\""
    "\"bench\": \"kernels\""
    "\"kernel\": \"matmul_f32\""
    "\"variant\": \"tiled\""
    "\"gflops\""
    "\"speedup_vs_naive\"")
  string(FIND "${content}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
      "bench-smoke: ${OUT} is missing '${needle}' — the "
      "BENCH_results.json schema regressed")
  endif()
endforeach()
message(STATUS "bench-smoke: schema ok (${OUT})")
