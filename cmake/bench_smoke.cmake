# CTest script behind the `bench-smoke` label: runs the whole bench sweep in
# --quick mode (smaller sizes / iteration caps; LLMNPU_BENCH_QUICK and
# LLMNPU_SERVING_SMOKE exported to the benches) through the run_all driver,
# then asserts the BENCH_results.json it wrote still carries the
# llmnpu-bench-v2 schema plus the serving and kernel metric fields that
# downstream tooling keys on. Catches schema regressions on push without
# paying for the full bench sweep (full runs keep the real sizes).
#
# Also passes --trace so bench_serving's traced scenario writes a
# Perfetto-loadable Chrome trace next to the JSON (CI uploads it as an
# artifact), and asserts the bench_obs tracer-overhead rows are present.
#
# Expects: RUN_ALL (path to the driver), OUT (json path to write).
# Optional: TRACE (trace json path, default ${OUT}.trace.json).

if(NOT DEFINED TRACE)
  set(TRACE "${OUT}.trace.json")
endif()

execute_process(
  COMMAND ${RUN_ALL} --quiet --quick --out ${OUT} --trace ${TRACE}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench-smoke: run_all exited with ${rc}")
endif()

file(READ ${OUT} content)
foreach(needle
    "\"schema\": \"llmnpu-bench-v2\""
    "\"quick\": true"
    "\"name\": \"bench_serving\""
    "\"metrics\""
    "\"policy\""
    "\"throughput_rps\""
    "\"goodput_rps\""
    "\"ttft_p50_ms\""
    "\"ttft_p99_ms\""
    "\"e2e_p99_ms\""
    "\"mode\": \"decode_placement\""
    "\"decode_placement\": \"npu\""
    "\"decode_tokens_per_sec\""
    "\"name\": \"bench_table5_e2e\""
    "\"bench\": \"table5_e2e\""
    "\"name\": \"bench_kernels\""
    "\"bench\": \"kernels\""
    "\"kernel\": \"matmul_f32\""
    "\"variant\": \"tiled\""
    "\"gflops\""
    "\"speedup_vs_naive\""
    "\"name\": \"bench_obs\""
    "\"bench\": \"obs\""
    "\"mode\": \"disabled\""
    "\"mode\": \"enabled_hot\""
    "\"ns_per_site\""
    "\"overhead_ratio\""
    "\"mode\": \"trace\""
    "\"write_ok\": true"
    "\"mode\": \"policy_sweep\""
    "\"placement_policy\": \"predicted\""
    "\"admission_policy\": \"predicted-slo\""
    "\"placement_flips\""
    "\"name\": \"bench_predict\""
    "\"bench\": \"predict\""
    "\"mode\": \"fit_error\""
    "\"median_rel_err\""
    "\"mode\": \"roundtrip\""
    "\"bitwise\": true"
    "\"mode\": \"crossover\"")
  string(FIND "${content}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
      "bench-smoke: ${OUT} is missing '${needle}' — the "
      "BENCH_results.json schema regressed")
  endif()
endforeach()

if(NOT EXISTS ${TRACE})
  message(FATAL_ERROR
    "bench-smoke: ${TRACE} was not written — bench_serving's --trace "
    "scenario regressed")
endif()
file(READ ${TRACE} trace_content)
foreach(needle
    "\"traceEvents\""
    "numeric plane (wall clock)"
    "serving simulator (virtual time)"
    "\"ph\": \"X\"")
  string(FIND "${trace_content}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
      "bench-smoke: ${TRACE} is missing '${needle}' — the Chrome "
      "trace-event export regressed")
  endif()
endforeach()
message(STATUS "bench-smoke: schema ok (${OUT}); trace ok (${TRACE})")
