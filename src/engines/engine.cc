#include "src/engines/engine.h"

#include <algorithm>

namespace llmnpu {

ServingCostProfile
InferenceEngine::ServingCosts(const ModelConfig& config, const SocSpec& soc,
                              const InferenceRequest& request)
{
    const EngineResult result = Run(config, soc, request);
    ServingCostProfile profile;
    profile.prepare_ms = result.prepare_ms;
    profile.chunk_ms = {result.prefill_ms};
    // Single-processor engines run prefill and decode on the same unit: a
    // prefill in flight leaves nothing for concurrent decode wherever that
    // decode nominally sits, so both placement factors are fully blocked
    // and decode stays on the float processor.
    profile.float_decode_interference = 1.0;
    profile.npu_decode_interference = 1.0;
    profile.decode_placement = DecodePlacement::kCpuFloat;
    profile.decode_token_ms =
        result.decode_ms / std::max(1, request.output_len);
    profile.cpu_decode_token_ms = profile.decode_token_ms;
    profile.memory_bytes = result.memory_bytes;
    return profile;
}

double
InferenceEngine::DecodeStepMs(const ModelConfig& config, const SocSpec& soc,
                              DecodePlacement placement, int64_t kv_len,
                              int batch, double fallback_marginal)
{
    InferenceRequest request;
    request.prompt_len = static_cast<int>(std::max<int64_t>(1, kv_len));
    request.output_len = 1;
    const ServingCostProfile profile = ServingCosts(config, soc, request);
    double token_ms = profile.decode_token_ms;
    if (placement == DecodePlacement::kCpuFloat &&
        profile.decode_placement != DecodePlacement::kCpuFloat &&
        profile.cpu_decode_token_ms > 0.0) {
        token_ms = profile.cpu_decode_token_ms;
    }
    const double marginal = profile.decode_batch_marginal >= 0.0
                                ? profile.decode_batch_marginal
                                : fallback_marginal;
    return token_ms * (1.0 + (std::max(1, batch) - 1) * marginal);
}

}  // namespace llmnpu
