#include "src/engines/engine.h"

#include <algorithm>

namespace llmnpu {

ServingCostProfile
InferenceEngine::ServingCosts(const ModelConfig& config, const SocSpec& soc,
                              const InferenceRequest& request)
{
    const EngineResult result = Run(config, soc, request);
    ServingCostProfile profile;
    profile.prepare_ms = result.prepare_ms;
    profile.chunk_ms = {result.prefill_ms};
    // Single-processor engines run prefill and decode on the same unit: a
    // prefill in flight leaves nothing for concurrent decode wherever that
    // decode nominally sits, so both placement factors are fully blocked
    // and decode stays on the float processor.
    profile.float_decode_interference = 1.0;
    profile.npu_decode_interference = 1.0;
    profile.decode_placement = DecodePlacement::kCpuFloat;
    profile.decode_token_ms =
        result.decode_ms / std::max(1, request.output_len);
    profile.cpu_decode_token_ms = profile.decode_token_ms;
    profile.memory_bytes = result.memory_bytes;
    return profile;
}

}  // namespace llmnpu
