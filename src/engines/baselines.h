/**
 * @file
 * The baseline engines of §4.1: llama.cpp (CPU, per-group INT8), MNN (CPU,
 * per-tensor INT8), TFLite (GPU or CPU, INT8 weights / FP16 compute),
 * MLC-LLM (GPU compiler), PowerInfer-V2 (NPU prefill), plus the naive
 * direct-NPU-offload strawman of Figure 19.
 *
 * Each engine is characterized by where it runs matmuls, how it quantizes,
 * its kernel quality, and its graph-preparation behaviour — the axes the
 * simulator calibrates against the paper's published measurements.
 */
#ifndef LLMNPU_ENGINES_BASELINES_H
#define LLMNPU_ENGINES_BASELINES_H

#include <memory>
#include <vector>

#include "src/engines/engine.h"
#include "src/engines/op_cost.h"

namespace llmnpu {

/** llama.cpp on mobile CPU: per-group (K-Quant) INT8, whole-prompt pass. */
class LlamaCppEngine : public InferenceEngine
{
  public:
    std::string Name() const override { return "llama.cpp-CPU"; }
    EngineResult Run(const ModelConfig& config, const SocSpec& soc,
                     const InferenceRequest& request) override;
};

/** MNN on mobile CPU: per-tensor INT8 with hand-tuned kernels. */
class MnnCpuEngine : public InferenceEngine
{
  public:
    std::string Name() const override { return "MNN-CPU"; }
    bool SupportsModel(const ModelConfig& config) const override;
    EngineResult Run(const ModelConfig& config, const SocSpec& soc,
                     const InferenceRequest& request) override;
};

/** TFLite with the GPU (or CPU/XNNPack) delegate: INT8 weights dequantized
 *  to FP16 compute, static graphs padded to fixed buckets. */
class TfliteEngine : public InferenceEngine
{
  public:
    explicit TfliteEngine(Unit unit = Unit::kGpu);

    std::string Name() const override;
    bool SupportsModel(const ModelConfig& config) const override;
    EngineResult Run(const ModelConfig& config, const SocSpec& soc,
                     const InferenceRequest& request) override;

    /** Prompt padded up to the graph bucket sizes {64,128,...,2048}. */
    static int PaddedPromptLen(int prompt_len);

  private:
    Unit unit_;
};

/** MLC-LLM on mobile GPU: FP16 kernels whose throughput does not scale
 *  with batch (calibrated to Table 5: ~0.12 TFLOPS effective). */
class MlcGpuEngine : public InferenceEngine
{
  public:
    std::string Name() const override { return "MLC-GPU"; }
    EngineResult Run(const ModelConfig& config, const SocSpec& soc,
                     const InferenceRequest& request) override;
};

/** PowerInfer-V2: chunked NPU prefill with per-group quantization, flat
 *  shapes and a coarse NPU/CPU pipeline (reported-data calibration: llm.npu
 *  is 3.28-5.32x faster at 1024-token prompts). */
class PowerInferV2Engine : public InferenceEngine
{
  public:
    std::string Name() const override { return "PowerInfer-V2-NPU"; }
    bool SupportsModel(const ModelConfig& config) const override;
    EngineResult Run(const ModelConfig& config, const SocSpec& soc,
                     const InferenceRequest& request) override;
};

/** Direct NPU offload (Figure 19 second bar): whole-prompt graph rebuilt
 *  and re-optimized inside every inference, per-group INT8 linears, FP16
 *  attention on the NPU. */
class NaiveNpuEngine : public InferenceEngine
{
  public:
    std::string Name() const override { return "Naive-NPU"; }
    EngineResult Run(const ModelConfig& config, const SocSpec& soc,
                     const InferenceRequest& request) override;
};

/** All paper baselines (not including llm.npu), for the benchmark grids. */
std::vector<std::unique_ptr<InferenceEngine>> MakePaperBaselines();

}  // namespace llmnpu

#endif  // LLMNPU_ENGINES_BASELINES_H
