/**
 * @file
 * Shared operator-level cost helpers: price one transformer block's linears,
 * attention, norms and element-wise ops on a chosen processor/format, and
 * aggregate whole prefill/decode passes for single-processor engines.
 */
#ifndef LLMNPU_ENGINES_OP_COST_H
#define LLMNPU_ENGINES_OP_COST_H

#include "src/model/config.h"
#include "src/sim/processor.h"
#include "src/sim/soc.h"

namespace llmnpu {

/** How an engine executes the transformer's matmuls. */
struct ExecPolicy {
    ExecFormat linear_format = ExecFormat::kInt8PerTensor;
    int group_size = 32;
    bool square_optimized = false;
    /** Multiplier on linear throughput (engine kernel quality). */
    double linear_speed_mult = 1.0;
    /** Hard cap on effective linear throughput in TFLOPS/TOPS (0 = none);
     *  models engines whose kernels never scale with M (MLC-LLM on mobile). */
    double linear_tops_cap = 0.0;
};

/** Latency of all linear layers of ONE block over M rows. */
double BlockLinearsMs(const ModelConfig& config, const ProcessorModel& proc,
                      int64_t m, const ExecPolicy& policy);

/** Latency of one block's float side over M rows attending to kv_len:
 *  two norms, RoPE, attention, activation, residuals, quant/dequant. */
double BlockFloatOpsMs(const ModelConfig& config, const ProcessorModel& proc,
                       int64_t m, int64_t kv_len);

/**
 * Whole-model prefill on a single processor, sequential execution
 * (how llama.cpp / MNN / TFLite / MLC run): returns latency in ms.
 *
 * Attention cost uses the full running context (prompt processed in one
 * pass of M = prompt_len rows).
 */
double SequentialPrefillMs(const ModelConfig& config,
                           const ProcessorModel& proc, int64_t prompt_len,
                           const ExecPolicy& policy);

/** Per-token decode latency (matvec-dominated, bandwidth-bound). */
double DecodeTokenMs(const ModelConfig& config, const ProcessorModel& proc,
                     int64_t context_len, const ExecPolicy& policy);

/** Decode latency for `output_len` tokens starting at context prompt_len. */
double DecodeMs(const ModelConfig& config, const ProcessorModel& proc,
                int64_t prompt_len, int output_len, const ExecPolicy& policy);

/** Rough activation working-set bytes for a prefill pass (f32 interm.). */
int64_t ActivationBytes(const ModelConfig& config, int64_t m);

/** KV cache bytes for a context length (f32). */
int64_t KvCacheBytes(const ModelConfig& config, int64_t context_len);

}  // namespace llmnpu

#endif  // LLMNPU_ENGINES_OP_COST_H
