#include "src/engines/op_cost.h"

#include <algorithm>

#include "src/util/check.h"

namespace llmnpu {

namespace {

/** Applies the engine's speed multiplier / throughput cap to a latency. */
double
ApplyPolicy(double ms, double ops, const ExecPolicy& policy)
{
    double out = ms / policy.linear_speed_mult;
    if (policy.linear_tops_cap > 0.0) {
        const double cap_ms = ops / (policy.linear_tops_cap * 1e12) * 1e3;
        out = std::max(out, cap_ms);
    }
    return out;
}

}  // namespace

double
BlockLinearsMs(const ModelConfig& config, const ProcessorModel& proc,
               int64_t m, const ExecPolicy& policy)
{
    double total = 0.0;
    for (const auto& spec : config.LayerLinears()) {
        const MatMulShape shape{m, spec.k, spec.n};
        const double ms = proc.MatMulMs(shape, policy.linear_format,
                                        policy.group_size,
                                        policy.square_optimized);
        total += ApplyPolicy(ms, shape.Ops(), policy) + proc.DispatchMs();
    }
    return total;
}

double
BlockFloatOpsMs(const ModelConfig& config, const ProcessorModel& proc,
                int64_t m, int64_t kv_len)
{
    const double hidden_elems =
        static_cast<double>(m) * static_cast<double>(config.hidden_size);
    const double ffn_elems =
        static_cast<double>(m) * static_cast<double>(config.ffn_hidden);
    double ms = 0.0;
    // Two norms (~8 flops/elem), RoPE (~6), residuals (1 each), activation
    // (~4 on the FFN intermediate), quantize+dequantize (~2 each).
    ms += 2.0 * proc.VectorOpMs(hidden_elems, 8.0);
    ms += proc.VectorOpMs(hidden_elems, 6.0);
    ms += 2.0 * proc.VectorOpMs(hidden_elems, 1.0);
    ms += proc.VectorOpMs(ffn_elems, 4.0);
    ms += 2.0 * proc.VectorOpMs(hidden_elems, 2.0);
    ms += proc.AttentionMs(m, kv_len, config.num_heads, config.head_dim);
    return ms;
}

double
SequentialPrefillMs(const ModelConfig& config, const ProcessorModel& proc,
                    int64_t prompt_len, const ExecPolicy& policy)
{
    LLMNPU_CHECK_GT(prompt_len, 0);
    double ms = 0.0;
    for (int l = 0; l < config.num_layers; ++l) {
        ms += BlockLinearsMs(config, proc, prompt_len, policy);
        ms += BlockFloatOpsMs(config, proc, prompt_len, prompt_len);
    }
    // Final norm + logits for the last position only.
    ms += proc.VectorOpMs(static_cast<double>(config.hidden_size), 8.0);
    ms += proc.MatMulMs({1, config.hidden_size, config.vocab_size},
                        policy.linear_format, policy.group_size,
                        policy.square_optimized);
    return ms;
}

double
DecodeTokenMs(const ModelConfig& config, const ProcessorModel& proc,
              int64_t context_len, const ExecPolicy& policy)
{
    double ms = 0.0;
    for (int l = 0; l < config.num_layers; ++l) {
        ms += BlockLinearsMs(config, proc, 1, policy);
        ms += BlockFloatOpsMs(config, proc, 1, context_len);
    }
    ms += proc.MatMulMs({1, config.hidden_size, config.vocab_size},
                        policy.linear_format, policy.group_size,
                        policy.square_optimized);
    return ms;
}

double
DecodeMs(const ModelConfig& config, const ProcessorModel& proc,
         int64_t prompt_len, int output_len, const ExecPolicy& policy)
{
    double ms = 0.0;
    for (int t = 0; t < output_len; ++t) {
        ms += DecodeTokenMs(config, proc, prompt_len + t, policy);
    }
    return ms;
}

int64_t
ActivationBytes(const ModelConfig& config, int64_t m)
{
    // Residual stream + QKV + attention scores workspace + FFN intermediate,
    // in f32. A coarse but consistent working-set estimate.
    const int64_t hidden = config.hidden_size;
    const int64_t q_dim = static_cast<int64_t>(config.num_heads) *
                          config.head_dim;
    const int64_t kv_dim = static_cast<int64_t>(config.num_kv_heads) *
                           config.head_dim;
    return 4 * (3 * m * hidden + m * (q_dim + 2 * kv_dim) +
                2 * m * config.ffn_hidden);
}

int64_t
KvCacheBytes(const ModelConfig& config, int64_t context_len)
{
    const int64_t kv_dim = static_cast<int64_t>(config.num_kv_heads) *
                           config.head_dim;
    return 4 * 2 * context_len * kv_dim * config.num_layers;
}

}  // namespace llmnpu
