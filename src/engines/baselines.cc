#include "src/engines/baselines.h"

#include <algorithm>
#include <cmath>

#include "src/sim/calibration.h"
#include "src/sim/npu_runtime.h"
#include "src/util/check.h"

namespace llmnpu {

namespace {

/** Energy for a single-processor run of `ms` milliseconds. */
double
SingleUnitEnergyMj(const SocSpec& soc, Unit unit, double ms)
{
    std::array<double, kNumUnits> busy{};
    busy[static_cast<size_t>(unit)] = ms;
    return soc.EnergyMj(busy, ms);
}

/** Weights + embedding in INT8 plus fp16 KV cache. */
int64_t
BaseModelBytes(const ModelConfig& config, int64_t context_len)
{
    return config.MatMulParams() + config.vocab_size * config.hidden_size +
           KvCacheBytes(config, context_len) / 2;
}

/** Fills the single-unit result fields shared by all sequential engines. */
EngineResult
SequentialRun(const ModelConfig& config, const SocSpec& soc, Unit unit,
              const InferenceRequest& request, const ExecPolicy& policy,
              int64_t prefill_rows, double activation_elem_bytes)
{
    const ProcessorModel& proc = soc.Processor(unit);
    EngineResult result;
    result.prefill_ms =
        SequentialPrefillMs(config, proc, prefill_rows, policy);
    result.decode_ms =
        DecodeMs(config, proc, request.prompt_len, request.output_len,
                 policy);
    result.prefill_busy_ms[static_cast<size_t>(unit)] = result.prefill_ms;
    result.prefill_energy_mj =
        SingleUnitEnergyMj(soc, unit, result.prefill_ms);
    result.decode_energy_mj = SingleUnitEnergyMj(soc, unit, result.decode_ms);
    result.memory_bytes =
        BaseModelBytes(config, request.prompt_len + request.output_len) +
        static_cast<int64_t>(
            static_cast<double>(ActivationBytes(config, prefill_rows)) / 4.0 *
            activation_elem_bytes);
    return result;
}

}  // namespace

// --------------------------------------------------------------------------
// llama.cpp-CPU
// --------------------------------------------------------------------------

EngineResult
LlamaCppEngine::Run(const ModelConfig& config, const SocSpec& soc,
                    const InferenceRequest& request)
{
    ExecPolicy policy;
    policy.linear_format = ExecFormat::kInt8PerGroup;
    policy.group_size = cal::kPerGroupSize;
    // llama.cpp reuses a small scratch arena: ~2 f32 planes of activations.
    return SequentialRun(config, soc, Unit::kCpu, request, policy,
                         request.prompt_len, 2.0);
}

// --------------------------------------------------------------------------
// MNN-CPU
// --------------------------------------------------------------------------

bool
MnnCpuEngine::SupportsModel(const ModelConfig& config) const
{
    // §4.1: baselines support only a subset of the evaluated LLMs.
    return config.name == "Qwen1.5-1.8B" || config.name == "Phi-2-2.7B" ||
           config.name == "LlaMA-2-7B";
}

EngineResult
MnnCpuEngine::Run(const ModelConfig& config, const SocSpec& soc,
                  const InferenceRequest& request)
{
    ExecPolicy policy;
    policy.linear_format = ExecFormat::kInt8PerTensor;
    policy.linear_speed_mult = 2.4;  // hand-tuned GEMM kernels (Table 5)
    return SequentialRun(config, soc, Unit::kCpu, request, policy,
                         request.prompt_len, 2.5);
}

// --------------------------------------------------------------------------
// TFLite (GPU or CPU delegate)
// --------------------------------------------------------------------------

TfliteEngine::TfliteEngine(Unit unit) : unit_(unit)
{
    LLMNPU_CHECK(unit == Unit::kGpu || unit == Unit::kCpu);
}

std::string
TfliteEngine::Name() const
{
    return unit_ == Unit::kGpu ? "TFLite-GPU" : "TFLite-CPU";
}

bool
TfliteEngine::SupportsModel(const ModelConfig& config) const
{
    return config.name == "Gemma-2B" || config.name == "Phi-2-2.7B";
}

int
TfliteEngine::PaddedPromptLen(int prompt_len)
{
    for (int bucket : {64, 128, 256, 512, 1024, 2048}) {
        if (prompt_len <= bucket) return bucket;
    }
    return prompt_len;
}

EngineResult
TfliteEngine::Run(const ModelConfig& config, const SocSpec& soc,
                  const InferenceRequest& request)
{
    // TFLite stores INT8 weights and dequantizes to FP16 in-shader: compute
    // runs at FP16 rate (Int8Tops == FloatGflops on the GPU) while weight
    // streaming moves 1 byte/param — which is what makes its decode
    // competitive (Table 5: ~63 ms/token on Gemma-2B).
    ExecPolicy policy;
    policy.linear_format = ExecFormat::kInt8PerTensor;
    if (unit_ == Unit::kCpu) policy.linear_speed_mult = 0.45;  // XNNPack fp
    // Static graphs: the prompt is padded up to the nearest bucket,
    // wasting compute on short prompts (§3.2's padding critique).
    const int padded = PaddedPromptLen(request.prompt_len);
    EngineResult result = SequentialRun(config, soc, unit_, request, policy,
                                        padded, 2.0);
    result.prepare_ms = 2000.0;  // one-time delegate compilation
    return result;
}

// --------------------------------------------------------------------------
// MLC-GPU
// --------------------------------------------------------------------------

EngineResult
MlcGpuEngine::Run(const ModelConfig& config, const SocSpec& soc,
                  const InferenceRequest& request)
{
    const ProcessorModel& proc = soc.Processor(Unit::kGpu);
    ExecPolicy policy;
    policy.linear_format = ExecFormat::kFp16;
    // Mobile MLC kernels do not scale with batch: effective throughput is
    // capped (backed out of Table 5: ~45 s for ~1550 tokens on
    // Qwen1.5-1.8B => ~0.12 TFLOPS).
    policy.linear_tops_cap = 0.095 * proc.perf_scale();
    EngineResult result = SequentialRun(config, soc, Unit::kGpu, request,
                                        policy, request.prompt_len, 2.0);
    result.prepare_ms = 5000.0;  // AOT compilation (amortized)
    return result;
}

// --------------------------------------------------------------------------
// PowerInfer-V2-NPU
// --------------------------------------------------------------------------

namespace {

/** Models PowerInfer-V2's ReLU-sparsity predictor applies to (its
 *  original §4.1 support set). */
bool
SparsityPredictorSupported(const ModelConfig& config)
{
    return config.name == "LlaMA-2-7B" || config.name == "Mistral-7B" ||
           config.name == "Qwen1.5-1.8B";
}

}  // namespace

bool
PowerInferV2Engine::SupportsModel(const ModelConfig& config) const
{
    // Historically limited to the ReLU-family ports (LlaMA-2, Mistral,
    // Qwen) that its sparsity predictor serves; per-group INT8 NPU decode
    // graphs (the dense execution path PowerInfer-V2 also ships) cover
    // dense-activation models without the predictor, so Gemma-2B and
    // Phi-2-2.7B now run — *without* the sparsity decode speedup, which
    // does not apply to them (see Run). The paper's Table 5 still reports
    // those two cells as "-"; our numbers there are beyond-paper
    // coverage, not reproductions.
    (void)config;
    return true;
}

EngineResult
PowerInferV2Engine::Run(const ModelConfig& config, const SocSpec& soc,
                        const InferenceRequest& request)
{
    const ProcessorModel& npu = soc.Processor(Unit::kNpu);
    const ProcessorModel& cpu = soc.Processor(Unit::kCpu);
    constexpr int kChunk = 256;  // PowerInfer-V2 also pipelines in chunks
    const int chunks = (request.prompt_len + kChunk - 1) / kChunk;

    ExecPolicy npu_policy;
    npu_policy.linear_format = ExecFormat::kInt8PerGroup;
    npu_policy.group_size = 128;     // coarser neuron-cluster grouping
    npu_policy.square_optimized = false;

    EngineResult result;
    double npu_ms_total = 0.0;
    double cpu_ms_total = 0.0;
    for (int c = 0; c < chunks; ++c) {
        const int64_t kv = static_cast<int64_t>(c + 1) * kChunk;
        double npu_ms = 0.0;
        double cpu_ms = 0.0;
        for (int l = 0; l < config.num_layers; ++l) {
            npu_ms += BlockLinearsMs(config, npu, kChunk, npu_policy);
            cpu_ms += BlockFloatOpsMs(config, cpu, kChunk, kv);
        }
        // Coarse pipeline: CPU float work overlaps the NPU only partially,
        // plus a per-chunk synchronization.
        const double exposed_cpu = 0.35 * cpu_ms;
        result.prefill_ms += npu_ms + exposed_cpu + 3.0;
        npu_ms_total += npu_ms;
        cpu_ms_total += cpu_ms;
    }
    result.prefill_busy_ms[static_cast<size_t>(Unit::kNpu)] = npu_ms_total;
    result.prefill_busy_ms[static_cast<size_t>(Unit::kCpu)] = cpu_ms_total;
    result.npu_bubble_rate =
        1.0 - npu_ms_total / std::max(result.prefill_ms, 1e-9);
    result.prefill_energy_mj =
        soc.EnergyMj(result.prefill_busy_ms, result.prefill_ms);

    ExecPolicy decode_policy;
    decode_policy.linear_format = ExecFormat::kInt8PerTensor;
    // Sparsity-aware decode only where the ReLU predictor applies; the
    // dense-activation models run the plain dense decode path.
    decode_policy.linear_speed_mult =
        SparsityPredictorSupported(config) ? 1.1 : 1.0;
    result.decode_ms = DecodeMs(config, cpu, request.prompt_len,
                                request.output_len, decode_policy);
    result.decode_energy_mj =
        SingleUnitEnergyMj(soc, Unit::kCpu, result.decode_ms);
    result.memory_bytes =
        BaseModelBytes(config, request.prompt_len + request.output_len) +
        ActivationBytes(config, kChunk);
    result.prepare_ms = 3000.0;
    return result;
}

// --------------------------------------------------------------------------
// Naive NPU offload
// --------------------------------------------------------------------------

EngineResult
NaiveNpuEngine::Run(const ModelConfig& config, const SocSpec& soc,
                    const InferenceRequest& request)
{
    const ProcessorModel& npu = soc.Processor(Unit::kNpu);
    const ProcessorModel& cpu = soc.Processor(Unit::kCpu);

    // The whole-prompt graph must be built and optimized for this exact
    // prompt length before execution (§2.3 gap 1, Figure 2).
    NpuGraphDesc graph;
    graph.name = config.name + ".full";
    graph.num_ops = config.num_layers * 13;
    graph.const_bytes = config.MatMulParams() +
                        config.vocab_size * config.hidden_size;
    graph.activation_bytes = ActivationBytes(config, request.prompt_len);
    graph.input_shape = {request.prompt_len, config.hidden_size};
    const NpuGraphCosts costs = NpuRuntime::CostsFor(graph);

    ExecPolicy policy;
    policy.linear_format = ExecFormat::kInt8PerGroup;
    policy.group_size = cal::kPerGroupSize;
    policy.square_optimized = false;

    EngineResult result;
    double ms = cal::kNpuEnvSetupMs + costs.TotalPrepareMs();
    for (int l = 0; l < config.num_layers; ++l) {
        ms += BlockLinearsMs(config, npu, request.prompt_len, policy);
        // Attention + norms run on the NPU in FP16 (its weak spot).
        const double attn_flops = 4.0 *
            static_cast<double>(request.prompt_len) * request.prompt_len *
            config.num_heads * config.head_dim;
        ms += attn_flops / (npu.FloatGflops(request.prompt_len) * 1e9) * 1e3;
        ms += npu.VectorOpMs(static_cast<double>(request.prompt_len) *
                                 config.hidden_size,
                             20.0);
    }
    ms += costs.free_ms;
    result.prefill_ms = ms;
    result.prefill_busy_ms[static_cast<size_t>(Unit::kNpu)] = ms;
    result.prefill_energy_mj = SingleUnitEnergyMj(soc, Unit::kNpu, ms);

    ExecPolicy decode_policy;
    decode_policy.linear_format = ExecFormat::kInt8PerTensor;
    result.decode_ms = DecodeMs(config, cpu, request.prompt_len,
                                request.output_len, decode_policy);
    result.decode_energy_mj =
        SingleUnitEnergyMj(soc, Unit::kCpu, result.decode_ms);
    result.memory_bytes =
        BaseModelBytes(config, request.prompt_len + request.output_len) +
        graph.activation_bytes;
    return result;
}

std::vector<std::unique_ptr<InferenceEngine>>
MakePaperBaselines()
{
    std::vector<std::unique_ptr<InferenceEngine>> engines;
    engines.push_back(std::make_unique<LlamaCppEngine>());
    engines.push_back(std::make_unique<MnnCpuEngine>());
    engines.push_back(std::make_unique<TfliteEngine>(Unit::kGpu));
    engines.push_back(std::make_unique<MlcGpuEngine>());
    engines.push_back(std::make_unique<PowerInferV2Engine>());
    return engines;
}

}  // namespace llmnpu
