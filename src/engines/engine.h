/**
 * @file
 * Common interface of every simulated inference engine: the five baselines
 * of §4.1 (llama.cpp, MNN, TFLite, MLC-LLM, PowerInfer-V2) plus llm.npu
 * itself (src/core/llmnpu_engine.h).
 *
 * Engines price a (model, device, request) triple: prefill latency, decode
 * latency, energy, and memory — the four metrics of §4.1.
 */
#ifndef LLMNPU_ENGINES_ENGINE_H
#define LLMNPU_ENGINES_ENGINE_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/model/config.h"
#include "src/model/placement.h"
#include "src/sim/soc.h"

namespace llmnpu {

/** One inference: a prompt and the tokens to decode after it. */
struct InferenceRequest {
    int prompt_len = 0;
    int output_len = 1;
};

/** Simulated outcome of one inference. */
struct EngineResult {
    /** One-time preparation latency (quantization, graph build/optimize).
     *  Amortized engines (llm.npu, TFLite) pay this before serving; the
     *  naive NPU path pays it per inference (it lands in prefill_ms). */
    double prepare_ms = 0.0;
    double prefill_ms = 0.0;
    double decode_ms = 0.0;
    /** Execution energy over prefill (Figure 15's metric). */
    double prefill_energy_mj = 0.0;
    double decode_energy_mj = 0.0;
    /** Peak inference memory footprint. */
    int64_t memory_bytes = 0;
    /** Busy ms per processor during prefill (diagnostics). */
    std::array<double, kNumUnits> prefill_busy_ms{};
    /** NPU idle fraction within its active span (Figure 13). */
    double npu_bubble_rate = 0.0;

    double EndToEndMs() const { return prefill_ms + decode_ms; }

    /** Prefill throughput; 0 for degenerate (empty/instant) prefills. */
    double PrefillTokensPerSec(int prompt_len) const
    {
        return prefill_ms > 0.0 ? prompt_len / (prefill_ms / 1e3) : 0.0;
    }

    /** Decode throughput; 0 for degenerate (empty/instant) decodes. */
    double DecodeTokensPerSec(int output_len) const
    {
        return decode_ms > 0.0 ? output_len / (decode_ms / 1e3) : 0.0;
    }

    /** Latency to the first emitted token: prefill plus one decode step
     *  (the serving layer's TTFT shares this definition). */
    double TimeToFirstTokenMs(int output_len) const
    {
        return prefill_ms +
               (output_len > 0 ? decode_ms / output_len : 0.0);
    }
};

/**
 * Cost decomposition of one request into schedulable quanta, the contract
 * between engines and the serving layer (src/serving): prefill as a
 * sequence of accelerator-occupying chunks, decode as per-token steps.
 *
 * Invariant: PrefillMs() equals Run()'s prefill_ms and
 * decode_token_ms * output_len equals Run()'s decode_ms, so serving one
 * request at zero load reproduces the single-shot latency exactly.
 */
struct ServingCostProfile {
    /** One-time preparation (amortized off the serving critical path). */
    double prepare_ms = 0.0;
    /** Accelerator occupancy of each prefill chunk, in execution order.
     *  Single-processor engines expose one monolithic chunk. */
    std::vector<double> chunk_ms;

    /**
     * Prefill/decode interference contract. While a prefill chunk is in
     * flight, concurrent decode is slowed by 1 / (1 - interference), where
     * which interference factor applies depends on where decode runs:
     *
     *  - `float_decode_interference`: decode on the CPU/GPU float
     *    processor (the paper's deployment). The chunk's float stages and
     *    shadow compensation hold this busy fraction of the float
     *    processor; decode shares the remainder.
     *  - `npu_decode_interference`: decode on the NPU itself. The chunk
     *    occupies the accelerator, so an NPU-resident decode step
     *    time-slices the NPU with the chunk; the factor is the chunk's NPU
     *    busy fraction (near 1 minus scheduling bubbles).
     *
     * `decode_placement` names the placement `decode_token_ms` was priced
     * at; DecodeInterference() resolves the matching factor. The serving
     * simulator floors the residual decode rate at 5%, so 1.0 (the
     * single-processor default: prefill and decode share one unit) means
     * decode is effectively blocked — a 20x slowdown — not an exact stall.
     */
    double float_decode_interference = 1.0;
    double npu_decode_interference = 1.0;
    DecodePlacement decode_placement = DecodePlacement::kCpuFloat;

    /** Per-token decode service time at the request's context length,
     *  priced at `decode_placement`. */
    double decode_token_ms = 0.0;
    /** Per-token decode service time on the CPU/GPU float-processor
     *  fallback path (packed int8-per-tensor linears), priced even when
     *  `decode_placement` is the NPU: the fault plane's circuit breaker
     *  fails NPU-resident decode over to this path mid-stream, so the
     *  serving layer needs both prices up front. 0 means "same as
     *  decode_token_ms" (engines whose primary placement already is the
     *  float processor). */
    double cpu_decode_token_ms = 0.0;
    /** Marginal cost of each extra batched decode stream relative to the
     *  first (step time = decode_token_ms * (1 + (B-1) * marginal)).
     *  Negative means "engine has no opinion" — the serving layer falls
     *  back to its configured default. NPU-resident decode exposes a much
     *  smaller marginal than CPU decode: the weight stream per step is
     *  shared across the M=B matvec rows. */
    double decode_batch_marginal = -1.0;
    int64_t memory_bytes = 0;

    double PrefillMs() const
    {
        double total = 0.0;
        for (double ms : chunk_ms) total += ms;
        return total;
    }

    /** The interference factor matching `decode_placement`. */
    double DecodeInterference() const
    {
        return decode_placement == DecodePlacement::kNpuQuant
                   ? npu_decode_interference
                   : float_decode_interference;
    }
};

/** A simulated inference engine. */
class InferenceEngine
{
  public:
    virtual ~InferenceEngine() = default;

    /** Engine name as the paper abbreviates it ("llama.cpp-CPU", ...). */
    virtual std::string Name() const = 0;

    /** Whether the engine supports a model (§4.1: baselines often support
     *  only a subset of the five LLMs). */
    virtual bool SupportsModel(const ModelConfig& config) const
    {
        (void)config;
        return true;
    }

    /** Simulates one inference. */
    virtual EngineResult Run(const ModelConfig& config, const SocSpec& soc,
                             const InferenceRequest& request) = 0;

    /**
     * Decomposes one request into serving quanta (see ServingCostProfile).
     *
     * The default implementation derives a conservative profile from Run():
     * one monolithic prefill chunk, decode fully blocked by prefill (true
     * for the single-processor §4.1 baselines). Engines with chunked
     * pipelines override it with real per-chunk occupancy.
     */
    virtual ServingCostProfile ServingCosts(const ModelConfig& config,
                                            const SocSpec& soc,
                                            const InferenceRequest& request);

    /**
     * Prices one continuously batched decode step: `batch` streams at
     * context `kv_len`, every member placed on `placement`. This is the
     * calibrated provider behind the predict::StepCostOracle interface
     * (src/predict/step_cost.h): ServingCostModel forwards here, dynamic
     * placement policies decide against it, and the learned latency model
     * is fitted from it.
     *
     * The default derives the price from ServingCosts(): the profile's
     * per-token cost at the requested placement (cpu_decode_token_ms when
     * asked for the CPU path of an NPU-placed profile, decode_token_ms
     * otherwise), under the batched-step law
     * step = token * (1 + (B-1) * marginal), with `fallback_marginal`
     * standing in when the engine has no opinion. Engines with a real
     * per-placement decomposition (LlmNpuEngine's NpuDecodeStep) override.
     */
    virtual double DecodeStepMs(const ModelConfig& config, const SocSpec& soc,
                                DecodePlacement placement, int64_t kv_len,
                                int batch, double fallback_marginal);
};

}  // namespace llmnpu

#endif  // LLMNPU_ENGINES_ENGINE_H
