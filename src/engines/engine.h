/**
 * @file
 * Common interface of every simulated inference engine: the five baselines
 * of §4.1 (llama.cpp, MNN, TFLite, MLC-LLM, PowerInfer-V2) plus llm.npu
 * itself (src/core/llmnpu_engine.h).
 *
 * Engines price a (model, device, request) triple: prefill latency, decode
 * latency, energy, and memory — the four metrics of §4.1.
 */
#ifndef LLMNPU_ENGINES_ENGINE_H
#define LLMNPU_ENGINES_ENGINE_H

#include <array>
#include <memory>
#include <string>

#include "src/model/config.h"
#include "src/sim/soc.h"

namespace llmnpu {

/** One inference: a prompt and the tokens to decode after it. */
struct InferenceRequest {
    int prompt_len = 0;
    int output_len = 1;
};

/** Simulated outcome of one inference. */
struct EngineResult {
    /** One-time preparation latency (quantization, graph build/optimize).
     *  Amortized engines (llm.npu, TFLite) pay this before serving; the
     *  naive NPU path pays it per inference (it lands in prefill_ms). */
    double prepare_ms = 0.0;
    double prefill_ms = 0.0;
    double decode_ms = 0.0;
    /** Execution energy over prefill (Figure 15's metric). */
    double prefill_energy_mj = 0.0;
    double decode_energy_mj = 0.0;
    /** Peak inference memory footprint. */
    int64_t memory_bytes = 0;
    /** Busy ms per processor during prefill (diagnostics). */
    std::array<double, kNumUnits> prefill_busy_ms{};
    /** NPU idle fraction within its active span (Figure 13). */
    double npu_bubble_rate = 0.0;

    double EndToEndMs() const { return prefill_ms + decode_ms; }
    double PrefillTokensPerSec(int prompt_len) const
    {
        return prompt_len / (prefill_ms / 1e3);
    }
};

/** A simulated inference engine. */
class InferenceEngine
{
  public:
    virtual ~InferenceEngine() = default;

    /** Engine name as the paper abbreviates it ("llama.cpp-CPU", ...). */
    virtual std::string Name() const = 0;

    /** Whether the engine supports a model (§4.1: baselines often support
     *  only a subset of the five LLMs). */
    virtual bool SupportsModel(const ModelConfig& config) const
    {
        (void)config;
        return true;
    }

    /** Simulates one inference. */
    virtual EngineResult Run(const ModelConfig& config, const SocSpec& soc,
                             const InferenceRequest& request) = 0;
};

}  // namespace llmnpu

#endif  // LLMNPU_ENGINES_ENGINE_H
