/**
 * @file
 * Deterministic pseudo-random number generators.
 *
 * All synthetic data in llmnpu (weights, corpora, prompt lengths) is drawn
 * from these generators with explicit seeds so that every test and benchmark
 * is bit-reproducible across runs and machines.
 */
#ifndef LLMNPU_UTIL_RNG_H
#define LLMNPU_UTIL_RNG_H

#include <cmath>
#include <cstdint>

namespace llmnpu {

/** SplitMix64: tiny, high-quality seeder / standalone generator. */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    Next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    uint64_t state_;
};

/**
 * Xoshiro256** generator: the project-wide default RNG.
 *
 * Fast, passes BigCrush, and trivially seedable from a single 64-bit value
 * via SplitMix64 (the construction recommended by the xoshiro authors).
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed5eed5eedULL)
    {
        SplitMix64 sm(seed);
        for (auto& s : state_) s = sm.Next();
    }

    /** Next raw 64-bit value. */
    uint64_t
    Next()
    {
        const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = Rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    Uniform()
    {
        return static_cast<double>(Next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    Uniform(double lo, double hi)
    {
        return lo + (hi - lo) * Uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t
    UniformInt(uint64_t n)
    {
        return Next() % n;  // negligible modulo bias for our n << 2^64
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    UniformInt(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(UniformInt(
                        static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Standard normal via Box-Muller. */
    double
    Normal()
    {
        if (have_cached_) {
            have_cached_ = false;
            return cached_;
        }
        double u1 = 0.0;
        while (u1 <= 1e-12) u1 = Uniform();
        const double u2 = Uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        cached_ = r * std::sin(2.0 * M_PI * u2);
        have_cached_ = true;
        return r * std::cos(2.0 * M_PI * u2);
    }

    /** Normal with the given mean and standard deviation. */
    double
    Normal(double mean, double stddev)
    {
        return mean + stddev * Normal();
    }

    /** True with probability p. */
    bool
    Bernoulli(double p)
    {
        return Uniform() < p;
    }

    /**
     * Zipf-distributed integer in [0, n) with exponent s.
     *
     * Used by the synthetic corpus generator: natural-language token
     * frequencies are approximately Zipfian. Implemented via rejection
     * sampling (Devroye), O(1) expected time.
     */
    uint64_t
    Zipf(uint64_t n, double s)
    {
        // Rejection-inversion sampling for bounded Zipf.
        const double b = std::pow(static_cast<double>(n), 1.0 - s);
        while (true) {
            const double u = Uniform();
            const double x = std::pow(u * (b - 1.0) + 1.0, 1.0 / (1.0 - s));
            const uint64_t k = static_cast<uint64_t>(x);
            const double ratio = std::pow(x / (k + 1.0), s);
            if (Uniform() < ratio) return k < n ? k : n - 1;
        }
    }

  private:
    static uint64_t
    Rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
    bool have_cached_ = false;
    double cached_ = 0.0;
};

}  // namespace llmnpu

#endif  // LLMNPU_UTIL_RNG_H
