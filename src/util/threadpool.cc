#include "src/util/threadpool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/format.h"

namespace llmnpu {

namespace {

/** True inside a pool worker (or inside a running ParallelFor body): nested
 *  parallel regions run inline instead of deadlocking on the shared pool. */
thread_local bool tls_in_parallel = false;

/** 0 = not a pool worker; workers get 1..N at spawn, fixed for life. */
thread_local int tls_worker_id = 0;

/** Per-thread busy-time counter, resolved once per thread (the registry
 *  lookup takes a mutex; block execution must not). */
obs::Counter&
BusyCounterForThisThread()
{
    thread_local obs::Counter* counter =
        &obs::MetricsRegistry::Global().GetCounter(
            tls_worker_id == 0
                ? "threadpool.busy_ns.caller"
                : StrFormat("threadpool.busy_ns.pool-worker-%d",
                            tls_worker_id));
    return *counter;
}

/** Remaining blocks of the in-flight job (updated under the pool mutex). */
obs::Gauge&
QueueDepthGauge()
{
    static obs::Gauge* gauge =
        &obs::MetricsRegistry::Global().GetGauge("threadpool.queue_depth");
    return *gauge;
}

}  // namespace

ThreadPool&
ThreadPool::Global()
{
    static ThreadPool pool;
    return pool;
}

int
ThreadPool::RequestedThreads()
{
    if (const char* env = std::getenv("LLMNPU_NUM_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1) {
            return static_cast<int>(
                std::min<long>(v, ThreadPool::kMaxThreads));
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) return 1;
    return static_cast<int>(
        std::min<unsigned>(hw, static_cast<unsigned>(kMaxThreads)));
}

int
ThreadPool::CurrentWorkerId()
{
    return tls_worker_id;
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
}

void
ThreadPool::EnsureWorkersLocked(int count)
{
    while (static_cast<int>(workers_.size()) < count) {
        const int worker_id = static_cast<int>(workers_.size()) + 1;
        workers_.emplace_back([this, worker_id] { WorkerLoop(worker_id); });
    }
}

void
ThreadPool::WorkerLoop(int worker_id)
{
    tls_in_parallel = true;  // anything fn() spawns runs inline
    tls_worker_id = worker_id;
    obs::Tracer::SetThreadName(
        StrFormat("pool-worker-%d", worker_id));
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        wake_cv_.wait(lock, [&] { return stop_ || job_id_ != seen; });
        if (stop_) return;
        const uint64_t id = job_id_;
        seen = id;
        lock.unlock();
        RunBlocks(id);
        lock.lock();
    }
}

void
ThreadPool::RunBlocks(uint64_t id)
{
    obs::Counter& busy_ns = BusyCounterForThisThread();
    obs::Gauge& queue_depth = QueueDepthGauge();
    for (;;) {
        int block;
        int blocks;
        int64_t n;
        const std::function<void(int64_t, int64_t)>* fn;
        {
            std::lock_guard<std::mutex> lock(mu_);
            // A stale participant (woken after the job it saw completed)
            // must not touch the counters of a newer job.
            if (job_id_ != id || next_block_ >= job_blocks_) return;
            block = next_block_++;
            blocks = job_blocks_;
            n = job_n_;
            fn = job_fn_;
            queue_depth.Set(
                static_cast<double>(job_blocks_ - next_block_));
        }
        const auto t0 = std::chrono::steady_clock::now();
        (*fn)(n * block / blocks, n * (block + 1) / blocks);
        busy_ns.Add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
        {
            std::lock_guard<std::mutex> lock(mu_);
            // The job cannot have changed: the submitter is blocked until
            // every grabbed block reports back through this decrement.
            if (--blocks_left_ == 0) done_cv_.notify_all();
        }
    }
}

void
ThreadPool::ParallelFor(int64_t n, int64_t grain,
                        const std::function<void(int64_t, int64_t)>& fn)
{
    if (n <= 0) return;
    grain = std::max<int64_t>(grain, 1);
    const int64_t max_blocks = n / grain;
    const int threads = static_cast<int>(
        std::min<int64_t>(RequestedThreads(), max_blocks));
    if (threads <= 1 || tls_in_parallel) {
        fn(0, n);
        return;
    }

    // One job at a time: a second application thread submitting
    // concurrently waits here (it is never needed for the first job's
    // progress, so this cannot deadlock).
    std::lock_guard<std::mutex> submit_lock(submit_mu_);

    {
        static obs::Counter* jobs =
            &obs::MetricsRegistry::Global().GetCounter("threadpool.jobs");
        jobs->Add(1);
    }

    uint64_t id;
    {
        std::lock_guard<std::mutex> lock(mu_);
        EnsureWorkersLocked(threads - 1);
        id = ++job_id_;
        job_fn_ = &fn;
        job_n_ = n;
        job_blocks_ = threads;
        next_block_ = 0;
        blocks_left_ = threads;
    }
    wake_cv_.notify_all();

    tls_in_parallel = true;  // the caller participates; nested calls inline
    RunBlocks(id);
    tls_in_parallel = false;

    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return blocks_left_ == 0; });
    job_fn_ = nullptr;
}

}  // namespace llmnpu
