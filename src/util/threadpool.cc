#include "src/util/threadpool.h"

#include <algorithm>
#include <cstdlib>

namespace llmnpu {

namespace {

/** True inside a pool worker (or inside a running ParallelFor body): nested
 *  parallel regions run inline instead of deadlocking on the shared pool. */
thread_local bool tls_in_parallel = false;

}  // namespace

ThreadPool&
ThreadPool::Global()
{
    static ThreadPool pool;
    return pool;
}

int
ThreadPool::RequestedThreads()
{
    if (const char* env = std::getenv("LLMNPU_NUM_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1) {
            return static_cast<int>(
                std::min<long>(v, ThreadPool::kMaxThreads));
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) return 1;
    return static_cast<int>(
        std::min<unsigned>(hw, static_cast<unsigned>(kMaxThreads)));
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
}

void
ThreadPool::EnsureWorkersLocked(int count)
{
    while (static_cast<int>(workers_.size()) < count) {
        workers_.emplace_back([this] { WorkerLoop(); });
    }
}

void
ThreadPool::WorkerLoop()
{
    tls_in_parallel = true;  // anything fn() spawns runs inline
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        wake_cv_.wait(lock, [&] { return stop_ || job_id_ != seen; });
        if (stop_) return;
        const uint64_t id = job_id_;
        seen = id;
        lock.unlock();
        RunBlocks(id);
        lock.lock();
    }
}

void
ThreadPool::RunBlocks(uint64_t id)
{
    for (;;) {
        int block;
        int blocks;
        int64_t n;
        const std::function<void(int64_t, int64_t)>* fn;
        {
            std::lock_guard<std::mutex> lock(mu_);
            // A stale participant (woken after the job it saw completed)
            // must not touch the counters of a newer job.
            if (job_id_ != id || next_block_ >= job_blocks_) return;
            block = next_block_++;
            blocks = job_blocks_;
            n = job_n_;
            fn = job_fn_;
        }
        (*fn)(n * block / blocks, n * (block + 1) / blocks);
        {
            std::lock_guard<std::mutex> lock(mu_);
            // The job cannot have changed: the submitter is blocked until
            // every grabbed block reports back through this decrement.
            if (--blocks_left_ == 0) done_cv_.notify_all();
        }
    }
}

void
ThreadPool::ParallelFor(int64_t n, int64_t grain,
                        const std::function<void(int64_t, int64_t)>& fn)
{
    if (n <= 0) return;
    grain = std::max<int64_t>(grain, 1);
    const int64_t max_blocks = n / grain;
    const int threads = static_cast<int>(
        std::min<int64_t>(RequestedThreads(), max_blocks));
    if (threads <= 1 || tls_in_parallel) {
        fn(0, n);
        return;
    }

    // One job at a time: a second application thread submitting
    // concurrently waits here (it is never needed for the first job's
    // progress, so this cannot deadlock).
    std::lock_guard<std::mutex> submit_lock(submit_mu_);

    uint64_t id;
    {
        std::lock_guard<std::mutex> lock(mu_);
        EnsureWorkersLocked(threads - 1);
        id = ++job_id_;
        job_fn_ = &fn;
        job_n_ = n;
        job_blocks_ = threads;
        next_block_ = 0;
        blocks_left_ = threads;
    }
    wake_cv_.notify_all();

    tls_in_parallel = true;  // the caller participates; nested calls inline
    RunBlocks(id);
    tls_in_parallel = false;

    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return blocks_left_ == 0; });
    job_fn_ = nullptr;
}

}  // namespace llmnpu
