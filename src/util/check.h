/**
 * @file
 * Assertion and fatal-error macros used across the llmnpu code base.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad configs,
 * invalid arguments), panic()/CHECK is for internal invariant violations
 * that indicate a bug in llmnpu itself.
 */
#ifndef LLMNPU_UTIL_CHECK_H
#define LLMNPU_UTIL_CHECK_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace llmnpu {

/** Terminates the process after printing a user-error message. */
[[noreturn]] inline void
FatalError(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg.c_str());
    std::exit(1);
}

/** Terminates the process after printing an internal-bug message. */
[[noreturn]] inline void
PanicError(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

namespace detail {

/** Builds the "lhs vs rhs" payload for binary CHECK_* failures. */
template <typename A, typename B>
std::string
CheckOpMessage(const char* expr, const A& a, const B& b)
{
    std::ostringstream oss;
    oss << "CHECK failed: " << expr << " (lhs=" << a << ", rhs=" << b << ")";
    return oss.str();
}

}  // namespace detail

}  // namespace llmnpu

/** Aborts if `cond` is false; use for internal invariants. */
#define LLMNPU_CHECK(cond)                                                     \
    do {                                                                       \
        if (!(cond)) {                                                         \
            ::llmnpu::PanicError(__FILE__, __LINE__,                           \
                                 std::string("CHECK failed: ") + #cond);       \
        }                                                                      \
    } while (0)

#define LLMNPU_CHECK_OP(op, a, b)                                              \
    do {                                                                       \
        if (!((a)op(b))) {                                                     \
            ::llmnpu::PanicError(                                              \
                __FILE__, __LINE__,                                            \
                ::llmnpu::detail::CheckOpMessage(#a " " #op " " #b, (a),       \
                                                 (b)));                        \
        }                                                                      \
    } while (0)

#define LLMNPU_CHECK_EQ(a, b) LLMNPU_CHECK_OP(==, a, b)
#define LLMNPU_CHECK_NE(a, b) LLMNPU_CHECK_OP(!=, a, b)
#define LLMNPU_CHECK_LT(a, b) LLMNPU_CHECK_OP(<, a, b)
#define LLMNPU_CHECK_LE(a, b) LLMNPU_CHECK_OP(<=, a, b)
#define LLMNPU_CHECK_GT(a, b) LLMNPU_CHECK_OP(>, a, b)
#define LLMNPU_CHECK_GE(a, b) LLMNPU_CHECK_OP(>=, a, b)

/** Exits with an error message for conditions caused by bad user input. */
#define LLMNPU_FATAL_IF(cond, msg)                                             \
    do {                                                                       \
        if (cond) {                                                            \
            ::llmnpu::FatalError(__FILE__, __LINE__, (msg));                   \
        }                                                                      \
    } while (0)

#endif  // LLMNPU_UTIL_CHECK_H
