/**
 * @file
 * Small string-formatting helpers (human-readable bytes, durations,
 * printf-style std::string formatting).
 */
#ifndef LLMNPU_UTIL_FORMAT_H
#define LLMNPU_UTIL_FORMAT_H

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>

namespace llmnpu {

/** printf into a std::string. */
inline std::string
StrFormat(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[1024];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return std::string(buf);
}

/** "1.50 GB", "342.0 MB", ... */
inline std::string
HumanBytes(uint64_t bytes)
{
    const double b = static_cast<double>(bytes);
    if (b >= 1024.0 * 1024.0 * 1024.0) {
        return StrFormat("%.2f GB", b / (1024.0 * 1024.0 * 1024.0));
    }
    if (b >= 1024.0 * 1024.0) return StrFormat("%.1f MB", b / (1024.0 * 1024.0));
    if (b >= 1024.0) return StrFormat("%.1f KB", b / 1024.0);
    return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
}

/** "1.53 s", "412.0 ms", "35.1 us" from a millisecond quantity. */
inline std::string
HumanMs(double ms)
{
    if (ms >= 1000.0) return StrFormat("%.2f s", ms / 1000.0);
    if (ms >= 1.0) return StrFormat("%.1f ms", ms);
    return StrFormat("%.1f us", ms * 1000.0);
}

}  // namespace llmnpu

#endif  // LLMNPU_UTIL_FORMAT_H
