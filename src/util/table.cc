#include "src/util/table.h"

#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace llmnpu {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    LLMNPU_CHECK(!headers_.empty());
}

void
Table::AddRow(std::vector<std::string> row)
{
    LLMNPU_CHECK_EQ(row.size(), headers_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::ToString() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string>& cells) {
        oss << "|";
        for (size_t c = 0; c < cells.size(); ++c) {
            oss << " " << cells[c]
                << std::string(widths[c] - cells[c].size(), ' ') << " |";
        }
        oss << "\n";
    };

    emit_row(headers_);
    oss << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
        oss << std::string(widths[c] + 2, '-') << "|";
    }
    oss << "\n";
    for (const auto& row : rows_) emit_row(row);
    return oss.str();
}

void
Table::Print() const
{
    std::fputs(ToString().c_str(), stdout);
}

std::string
Table::Num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::WithPaper(double measured, double paper, int precision)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%.*f (paper: %.*f)", precision, measured,
                  precision, paper);
    return buf;
}

}  // namespace llmnpu
