/**
 * @file
 * Streaming statistics helpers used by the simulator and benchmarks.
 */
#ifndef LLMNPU_UTIL_STATS_H
#define LLMNPU_UTIL_STATS_H

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "src/obs/histogram.h"
#include "src/util/check.h"

namespace llmnpu {

/**
 * Accumulates count/mean/variance/min/max in one pass (Welford's method).
 */
class RunningStat
{
  public:
    /** Adds one sample. */
    void
    Add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    size_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Sample variance (n-1 denominator). */
    double
    Variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    /** Sample standard deviation. */
    double StdDev() const { return std::sqrt(Variance()); }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
};

/** Geometric mean of a sample set; all inputs must be positive. */
inline double
GeoMean(const std::vector<double>& xs)
{
    LLMNPU_CHECK(!xs.empty());
    double log_sum = 0.0;
    for (double x : xs) {
        LLMNPU_CHECK_GT(x, 0.0);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/** Linear-interpolated percentile, p in [0, 100]. Thin alias of the one
 *  quantile implementation in src/obs/histogram.h (obs::SamplePercentile),
 *  kept so existing callers and the streaming-stats grouping here stay. */
inline double
Percentile(std::vector<double> xs, double p)
{
    return obs::SamplePercentile(std::move(xs), p);
}

}  // namespace llmnpu

#endif  // LLMNPU_UTIL_STATS_H
