/**
 * @file
 * Persistent worker-thread pool shared by the numeric-plane kernels.
 *
 * The pool exists so that the tiled matmul kernels (src/tensor) can split
 * row blocks across cores without paying a thread spawn per call. Design
 * constraints, in order:
 *
 *  1. Determinism: ParallelFor partitions [0, n) into contiguous blocks, so
 *     a kernel whose per-row results are independent produces bitwise
 *     identical output at any thread count.
 *  2. TSan-cleanliness: all shared job state is guarded by one mutex; block
 *     grabbing takes the lock (blocks are big — at most one per
 *     participant — so contention is irrelevant).
 *  3. Zero cost when single-threaded: with one configured thread (the
 *     default on single-core hosts) ParallelFor degenerates to a direct
 *     call with no locking.
 *
 * Thread count is read from LLMNPU_NUM_THREADS at every ParallelFor call
 * (falling back to std::thread::hardware_concurrency), so tests and benches
 * can sweep thread counts with setenv() without rebuilding the pool.
 */
#ifndef LLMNPU_UTIL_THREADPOOL_H
#define LLMNPU_UTIL_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace llmnpu {

/**
 * Pins LLMNPU_NUM_THREADS for one scope, restoring any pre-existing value
 * on exit. Used by tests and benches to sweep thread counts; not
 * thread-safe (setenv), so only from a single-threaded context.
 */
class ScopedNumThreads
{
  public:
    explicit ScopedNumThreads(int n)
    {
        if (const char* prev = std::getenv("LLMNPU_NUM_THREADS")) {
            previous_ = prev;
        }
        setenv("LLMNPU_NUM_THREADS", std::to_string(n).c_str(), 1);
    }
    ~ScopedNumThreads()
    {
        if (previous_.empty()) {
            unsetenv("LLMNPU_NUM_THREADS");
        } else {
            setenv("LLMNPU_NUM_THREADS", previous_.c_str(), 1);
        }
    }

    ScopedNumThreads(const ScopedNumThreads&) = delete;
    ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

  private:
    std::string previous_;
};

class ThreadPool
{
  public:
    /** The process-wide pool used by all kernels. */
    static ThreadPool& Global();

    /**
     * Threads a ParallelFor call may use right now: LLMNPU_NUM_THREADS if
     * set (clamped to [1, kMaxThreads]), else hardware_concurrency.
     */
    static int RequestedThreads();

    /** Hard upper bound on pool participants (workers + caller). */
    static constexpr int kMaxThreads = 16;

    ThreadPool() = default;
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /**
     * Runs fn(begin, end) over a partition of [0, n) using up to
     * RequestedThreads() participants (the calling thread included).
     *
     * `grain` is the minimum items per block: fewer than 2*grain items run
     * inline. Nested calls (fn itself calling ParallelFor) run inline, so
     * kernels can parallelize unconditionally. Blocks are contiguous and
     * cover [0, n) exactly once. Blocks on all worker exceptions crash via
     * the caller's exception propagation — kernels do not throw.
     */
    void ParallelFor(int64_t n, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn);

    /** Workers currently spawned (grown on demand; for tests). */
    int
    NumWorkers() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return static_cast<int>(workers_.size());
    }

    /**
     * Stable id of the calling thread within the pool: 0 for any thread
     * that is not a pool worker (the ParallelFor caller included), 1..N
     * for workers, fixed for the worker's lifetime. Tile-level trace
     * spans land in the matching per-thread tracer buffer, so "which
     * thread ran this tile" is answerable from the trace (the workers
     * also register tracer thread names "pool-worker-<id>").
     */
    static int CurrentWorkerId();

  private:
    void EnsureWorkersLocked(int count);
    void WorkerLoop(int worker_id);
    /** Executes blocks of job `id` until the job is exhausted. */
    void RunBlocks(uint64_t id);

    std::mutex submit_mu_;  ///< serializes submitters: one job at a time
    mutable std::mutex mu_;
    std::condition_variable wake_cv_;  ///< signals a new job (or stop)
    std::condition_variable done_cv_;  ///< signals blocks_left_ == 0
    std::vector<std::thread> workers_;
    bool stop_ = false;

    // Current job; valid while blocks_left_ > 0. All guarded by mu_.
    uint64_t job_id_ = 0;
    const std::function<void(int64_t, int64_t)>* job_fn_ = nullptr;
    int64_t job_n_ = 0;
    int job_blocks_ = 0;
    int next_block_ = 0;
    int blocks_left_ = 0;
};

}  // namespace llmnpu

#endif  // LLMNPU_UTIL_THREADPOOL_H
