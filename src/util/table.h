/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit
 * paper-style tables ("paper reports X, we measured Y").
 */
#ifndef LLMNPU_UTIL_TABLE_H
#define LLMNPU_UTIL_TABLE_H

#include <string>
#include <vector>

namespace llmnpu {

/**
 * Accumulates rows of strings and renders an aligned ASCII table.
 *
 * Example output:
 *
 *     | Matrix A | NPU INT8 | CPU INT8 |
 *     |----------|----------|----------|
 *     | 64x2048  | 0.90     | 4.20     |
 */
class Table
{
  public:
    /** Creates a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Appends one row; must have as many cells as there are headers. */
    void AddRow(std::vector<std::string> row);

    /** Renders the table to a string. */
    std::string ToString() const;

    /** Renders the table to stdout. */
    void Print() const;

    /** Formats a double with the given precision. */
    static std::string Num(double v, int precision = 2);

    /** Formats "measured (paper: reference)". */
    static std::string WithPaper(double measured, double paper,
                                 int precision = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace llmnpu

#endif  // LLMNPU_UTIL_TABLE_H
