/**
 * @file
 * Mobile-application dataset profiles: prompt/output length distributions
 * matching the paper's published ranges (Table 5, §2.1) for the LongBench
 * retrieval sets, the DroidTask UI-automation sets, and Persona-Chat.
 */
#ifndef LLMNPU_WORKLOADS_DATASETS_H
#define LLMNPU_WORKLOADS_DATASETS_H

#include <string>
#include <vector>

#include "src/engines/engine.h"
#include "src/util/rng.h"

namespace llmnpu {

/** A dataset as its prompt/output length ranges. */
struct DatasetProfile {
    std::string name;
    std::string application;  ///< the mobile task it simulates (§2.1)
    int prompt_min = 0;
    int prompt_max = 0;
    int output_min = 0;
    int output_max = 0;

    /** Draws one request from the profile. */
    InferenceRequest Sample(Rng& rng) const;

    /** The midpoint request (deterministic benchmarking). */
    InferenceRequest Typical() const;
};

/** LongBench 2wikimqa: context-aware QA, 1451-1672 / 2-4 tokens. */
DatasetProfile Longbench2WikiProfile();

/** LongBench TriviaQA: retrieval QA, 1511-1787 / 5-11 tokens. */
DatasetProfile LongbenchTriviaQaProfile();

/** DroidTask (applications set): UI automation, 656-827 / 1-5 tokens. */
DatasetProfile DroidTaskAppsProfile();

/** DroidTask (clock set): UI automation, 505-645 / 3-5 tokens. */
DatasetProfile DroidTaskClockProfile();

/** Persona-Chat: chat summary, 488-584 / 35-57 tokens. */
DatasetProfile PersonaChatProfile();

/** The five Table 5 datasets, in the paper's order. */
std::vector<DatasetProfile> PaperDatasets();

}  // namespace llmnpu

#endif  // LLMNPU_WORKLOADS_DATASETS_H
