#include "src/workloads/accuracy.h"

#include "src/workloads/corpus.h"

namespace llmnpu {

std::vector<EvalSet>
MakeBenchmarkEvalSets(int64_t vocab_size, int contexts_per_set, uint64_t seed)
{
    struct Spec {
        const char* name;
        int min_len;
        int max_len;
    };
    // Context lengths loosely match each benchmark's typical prompt size.
    const Spec specs[] = {
        {"LAMBADA", 48, 80},     // broad-discourse word prediction
        {"HellaSwag", 56, 96},   // sentence completion
        {"WinoGrande", 24, 40},  // short schema questions
        {"OpenBookQA", 24, 48},  // short science questions
        {"MMLU", 48, 88},        // multi-task QA
    };
    std::vector<EvalSet> sets;
    uint64_t salt = 1;
    for (const auto& spec : specs) {
        CorpusOptions options;
        options.vocab_size = vocab_size;
        options.num_sequences = contexts_per_set;
        options.min_len = spec.min_len;
        options.max_len = spec.max_len;
        options.seed = seed * 0x9e3779b9ULL + salt++;
        sets.push_back({spec.name, MakeCorpus(options)});
    }
    return sets;
}

AccuracyResult
EvaluateAgreement(const Transformer& model, LinearExecutor& candidate,
                  const std::vector<std::vector<int>>& contexts)
{
    Fp32LinearExecutor reference(model.weights());
    AccuracyResult result;
    double mse_sum = 0.0;
    for (const auto& tokens : contexts) {
        KvCache ref_cache = model.MakeCache();
        Tensor ref_hidden = model.Forward(tokens, ref_cache, reference);
        Tensor ref_logits =
            model.Logits(ref_hidden.CopyRows(ref_hidden.Rows() - 1, 1));

        KvCache cand_cache = model.MakeCache();
        Tensor cand_hidden = model.Forward(tokens, cand_cache, candidate);
        Tensor cand_logits =
            model.Logits(cand_hidden.CopyRows(cand_hidden.Rows() - 1, 1));

        if (model.ArgmaxLastRow(ref_logits) ==
            model.ArgmaxLastRow(cand_logits)) {
            result.top1_agreement += 1.0;
        }
        mse_sum += MeanSquaredError(ref_logits, cand_logits);
        ++result.contexts;
    }
    if (result.contexts > 0) {
        result.top1_agreement /= result.contexts;
        result.logit_mse = mse_sum / result.contexts;
    }
    return result;
}

}  // namespace llmnpu
