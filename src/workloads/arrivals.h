/**
 * @file
 * Arrival processes over the Table 5 dataset profiles: the request streams
 * the serving layer (src/serving) schedules. Open-loop Poisson arrivals
 * model independent apps firing at an offered rate; the closed-loop sampler
 * models a fixed client population that waits for completions (think time
 * handled by the serving simulator).
 */
#ifndef LLMNPU_WORKLOADS_ARRIVALS_H
#define LLMNPU_WORKLOADS_ARRIVALS_H

#include <vector>

#include "src/util/rng.h"
#include "src/workloads/datasets.h"

namespace llmnpu {

/** One generated request: when it arrives and what it asks for. */
struct ArrivalEvent {
    double arrival_ms = 0.0;
    InferenceRequest request;
    /** Index into the generating mixture (which dataset produced it). */
    int profile_index = 0;
    /** Leading prompt tokens that are the scenario's shared system prefix
     *  (0 = independent prompt; see SharedPrefixOptions). */
    int shared_prefix_len = 0;
};

/**
 * Shared-system-prompt scenario: one fixed prefix (a system prompt every
 * app instance sends verbatim) carried by a configurable fraction of
 * arrivals. Marked requests prepend `prefix_len` tokens to their sampled
 * prompt conceptually — the sampled prompt must already be longer than the
 * prefix for the request to be marked, so prompt_len always covers it.
 *
 * The per-arrival share draw happens for *every* sample once prefix_len
 * is set (even at fraction 0), so sweeping the fraction at a fixed seed
 * yields nested sharing sets: the arrivals marked at 0.25 are a subset of
 * those marked at 0.5 — capacity sweeps compare like against like.
 * prefix_len == 0 draws nothing and is bit-identical to the legacy stream.
 */
struct SharedPrefixOptions {
    /** Shared prefix length in tokens; 0 disables the scenario. The
     *  serving simulator requires it page-aligned (kv_page_size). */
    int prefix_len = 0;
    /** Fraction of arrivals carrying the prefix, in [0, 1]. */
    double share_fraction = 0.0;

    bool Enabled() const { return prefix_len > 0; }
};

/**
 * Draws requests from a weighted mixture of dataset profiles.
 *
 * Weights need not be normalized; an empty weight vector means uniform.
 * Deterministic given the seed (all draws go through util/rng.h).
 */
class RequestSampler
{
  public:
    RequestSampler(std::vector<DatasetProfile> mix, uint64_t seed,
                   std::vector<double> weights = {});

    /** Samples one request (arrival_ms left 0; callers assign it). */
    ArrivalEvent Sample();

    /** Turns on the shared-system-prompt scenario: every subsequent
     *  Sample() draws one extra uniform and marks the request with the
     *  prefix when the draw falls under share_fraction (and the sampled
     *  prompt is longer than the prefix). Disabled options are a no-op. */
    void SetSharedPrefix(const SharedPrefixOptions& shared);

    const std::vector<DatasetProfile>& mix() const { return mix_; }

  private:
    std::vector<DatasetProfile> mix_;
    std::vector<double> cumulative_;  ///< normalized cumulative weights
    SharedPrefixOptions shared_;
    Rng rng_;
};

/**
 * Open-loop Poisson arrival stream: `num_requests` requests with
 * exponential inter-arrival times at `rate_rps` requests/second, each drawn
 * from the mixture. Sorted by arrival time by construction. `shared`
 * enables the shared-system-prompt scenario over the stream.
 */
std::vector<ArrivalEvent> GeneratePoissonArrivals(
    const std::vector<DatasetProfile>& mix, double rate_rps,
    int num_requests, uint64_t seed,
    const SharedPrefixOptions& shared = {});

}  // namespace llmnpu

#endif  // LLMNPU_WORKLOADS_ARRIVALS_H
