/**
 * @file
 * Arrival processes over the Table 5 dataset profiles: the request streams
 * the serving layer (src/serving) schedules. Open-loop Poisson arrivals
 * model independent apps firing at an offered rate; the closed-loop sampler
 * models a fixed client population that waits for completions (think time
 * handled by the serving simulator).
 */
#ifndef LLMNPU_WORKLOADS_ARRIVALS_H
#define LLMNPU_WORKLOADS_ARRIVALS_H

#include <vector>

#include "src/util/rng.h"
#include "src/workloads/datasets.h"

namespace llmnpu {

/** One generated request: when it arrives and what it asks for. */
struct ArrivalEvent {
    double arrival_ms = 0.0;
    InferenceRequest request;
    /** Index into the generating mixture (which dataset produced it). */
    int profile_index = 0;
};

/**
 * Draws requests from a weighted mixture of dataset profiles.
 *
 * Weights need not be normalized; an empty weight vector means uniform.
 * Deterministic given the seed (all draws go through util/rng.h).
 */
class RequestSampler
{
  public:
    RequestSampler(std::vector<DatasetProfile> mix, uint64_t seed,
                   std::vector<double> weights = {});

    /** Samples one request (arrival_ms left 0; callers assign it). */
    ArrivalEvent Sample();

    const std::vector<DatasetProfile>& mix() const { return mix_; }

  private:
    std::vector<DatasetProfile> mix_;
    std::vector<double> cumulative_;  ///< normalized cumulative weights
    Rng rng_;
};

/**
 * Open-loop Poisson arrival stream: `num_requests` requests with
 * exponential inter-arrival times at `rate_rps` requests/second, each drawn
 * from the mixture. Sorted by arrival time by construction.
 */
std::vector<ArrivalEvent> GeneratePoissonArrivals(
    const std::vector<DatasetProfile>& mix, double rate_rps,
    int num_requests, uint64_t seed);

}  // namespace llmnpu

#endif  // LLMNPU_WORKLOADS_ARRIVALS_H
