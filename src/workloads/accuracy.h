/**
 * @file
 * Accuracy harness: measures a quantized executor's agreement with the FP16
 * (fp32 here) reference on synthetic evaluation sets.
 *
 * Substitution note (DESIGN.md §2): the paper's LLM benchmarks (LAMBADA,
 * HellaSwag, WinoGrande, OpenBookQA, MMLU) need trained checkpoints; our
 * proxy metric is top-1 next-token agreement with the full-precision model —
 * the quantization-induced prediction flips that drive Table 6's ordering.
 */
#ifndef LLMNPU_WORKLOADS_ACCURACY_H
#define LLMNPU_WORKLOADS_ACCURACY_H

#include <string>
#include <vector>

#include "src/model/transformer.h"

namespace llmnpu {

/** Agreement between one executor and the fp32 reference. */
struct AccuracyResult {
    /** Fraction of eval contexts where argmax(logits) matches FP16. */
    double top1_agreement = 0.0;
    /** Mean squared error of final-position logits vs FP16. */
    double logit_mse = 0.0;
    int contexts = 0;
};

/** One named evaluation set (a proxy for a paper benchmark). */
struct EvalSet {
    std::string name;
    std::vector<std::vector<int>> contexts;
};

/**
 * Proxy eval sets for the five paper benchmarks; context lengths loosely
 * track each benchmark's character (LAMBADA long-ish, WinoGrande short...).
 */
std::vector<EvalSet> MakeBenchmarkEvalSets(int64_t vocab_size,
                                           int contexts_per_set = 24,
                                           uint64_t seed = 0xe5a1);

/**
 * Evaluates `candidate` against the fp32 reference on `contexts`: for each
 * context, both run a full prefill and the final-position logits are
 * compared.
 */
AccuracyResult EvaluateAgreement(const Transformer& model,
                                 LinearExecutor& candidate,
                                 const std::vector<std::vector<int>>& contexts);

}  // namespace llmnpu

#endif  // LLMNPU_WORKLOADS_ACCURACY_H
