/**
 * @file
 * Synthetic token corpora with Zipfian statistics, standing in for the
 * calibration (wikitext) and evaluation datasets the paper uses (DESIGN.md
 * §2 substitution table).
 */
#ifndef LLMNPU_WORKLOADS_CORPUS_H
#define LLMNPU_WORKLOADS_CORPUS_H

#include <cstdint>
#include <vector>

namespace llmnpu {

/** Options for synthetic corpus generation. */
struct CorpusOptions {
    int64_t vocab_size = 256;
    int num_sequences = 8;
    int min_len = 32;
    int max_len = 64;
    double zipf_exponent = 1.1;  ///< natural-language-like token frequencies
    uint64_t seed = 0xc0de;
};

/** Generates deterministic token-id sequences. */
std::vector<std::vector<int>> MakeCorpus(const CorpusOptions& options);

}  // namespace llmnpu

#endif  // LLMNPU_WORKLOADS_CORPUS_H
