#include "src/workloads/datasets.h"

namespace llmnpu {

InferenceRequest
DatasetProfile::Sample(Rng& rng) const
{
    InferenceRequest request;
    request.prompt_len =
        static_cast<int>(rng.UniformInt(prompt_min, prompt_max));
    request.output_len =
        static_cast<int>(rng.UniformInt(output_min, output_max));
    return request;
}

InferenceRequest
DatasetProfile::Typical() const
{
    return {(prompt_min + prompt_max) / 2, (output_min + output_max) / 2};
}

DatasetProfile
Longbench2WikiProfile()
{
    return {"Longbench-2wiki-Multi-doc-QA", "context-aware QA / email reply",
            1451, 1672, 2, 4};
}

DatasetProfile
LongbenchTriviaQaProfile()
{
    return {"Longbench-TriviaQA", "context-aware QA / email reply", 1511,
            1787, 5, 11};
}

DatasetProfile
DroidTaskAppsProfile()
{
    return {"DroidTask-apps", "UI automation", 656, 827, 1, 5};
}

DatasetProfile
DroidTaskClockProfile()
{
    return {"DroidTask-clock", "UI automation", 505, 645, 3, 5};
}

DatasetProfile
PersonaChatProfile()
{
    return {"Persona-Chat", "chat summary", 488, 584, 35, 57};
}

std::vector<DatasetProfile>
PaperDatasets()
{
    return {Longbench2WikiProfile(), LongbenchTriviaQaProfile(),
            DroidTaskAppsProfile(), DroidTaskClockProfile(),
            PersonaChatProfile()};
}

}  // namespace llmnpu
