#include "src/workloads/arrivals.h"

#include <cmath>

#include "src/util/check.h"

namespace llmnpu {

RequestSampler::RequestSampler(std::vector<DatasetProfile> mix, uint64_t seed,
                               std::vector<double> weights)
    : mix_(std::move(mix)), rng_(seed)
{
    LLMNPU_CHECK(!mix_.empty());
    if (weights.empty()) weights.assign(mix_.size(), 1.0);
    LLMNPU_CHECK_EQ(weights.size(), mix_.size());
    double total = 0.0;
    for (double w : weights) {
        LLMNPU_CHECK_GE(w, 0.0);
        total += w;
    }
    LLMNPU_CHECK_GT(total, 0.0);
    cumulative_.reserve(weights.size());
    double running = 0.0;
    for (double w : weights) {
        running += w / total;
        cumulative_.push_back(running);
    }
    cumulative_.back() = 1.0;  // absorb rounding
}

void
RequestSampler::SetSharedPrefix(const SharedPrefixOptions& shared)
{
    LLMNPU_CHECK_GE(shared.prefix_len, 0);
    LLMNPU_CHECK_GE(shared.share_fraction, 0.0);
    LLMNPU_CHECK_LE(shared.share_fraction, 1.0);
    shared_ = shared;
}

ArrivalEvent
RequestSampler::Sample()
{
    const double u = rng_.Uniform();
    size_t index = 0;
    while (index + 1 < cumulative_.size() && u >= cumulative_[index]) {
        ++index;
    }
    ArrivalEvent event;
    event.profile_index = static_cast<int>(index);
    event.request = mix_[index].Sample(rng_);
    if (shared_.Enabled()) {
        // One draw per sample regardless of the fraction, so fraction
        // sweeps at a fixed seed mark nested arrival sets. Requests whose
        // sampled prompt the prefix would swallow stay independent.
        const double share_u = rng_.Uniform();
        if (share_u < shared_.share_fraction &&
            event.request.prompt_len > shared_.prefix_len) {
            event.shared_prefix_len = shared_.prefix_len;
        }
    }
    return event;
}

std::vector<ArrivalEvent>
GeneratePoissonArrivals(const std::vector<DatasetProfile>& mix,
                        double rate_rps, int num_requests, uint64_t seed,
                        const SharedPrefixOptions& shared)
{
    LLMNPU_CHECK_GT(rate_rps, 0.0);
    LLMNPU_CHECK_GT(num_requests, 0);
    RequestSampler sampler(mix, seed);
    sampler.SetSharedPrefix(shared);
    Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);  // independent inter-arrival draws
    std::vector<ArrivalEvent> arrivals;
    arrivals.reserve(static_cast<size_t>(num_requests));
    double now_ms = 0.0;
    for (int i = 0; i < num_requests; ++i) {
        double u = 0.0;
        while (u <= 1e-12) u = rng.Uniform();
        now_ms += -std::log(u) / rate_rps * 1e3;  // exponential gap
        ArrivalEvent event = sampler.Sample();
        event.arrival_ms = now_ms;
        arrivals.push_back(event);
    }
    return arrivals;
}

}  // namespace llmnpu
