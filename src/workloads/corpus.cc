#include "src/workloads/corpus.h"

#include "src/util/check.h"
#include "src/util/rng.h"

namespace llmnpu {

std::vector<std::vector<int>>
MakeCorpus(const CorpusOptions& options)
{
    LLMNPU_CHECK_GT(options.vocab_size, 0);
    LLMNPU_CHECK_GE(options.max_len, options.min_len);
    Rng rng(options.seed);
    std::vector<std::vector<int>> corpus;
    corpus.reserve(static_cast<size_t>(options.num_sequences));
    for (int i = 0; i < options.num_sequences; ++i) {
        const int len = static_cast<int>(
            rng.UniformInt(options.min_len, options.max_len));
        std::vector<int> seq;
        seq.reserve(static_cast<size_t>(len));
        for (int t = 0; t < len; ++t) {
            seq.push_back(static_cast<int>(rng.Zipf(
                static_cast<uint64_t>(options.vocab_size),
                options.zipf_exponent)));
        }
        corpus.push_back(std::move(seq));
    }
    return corpus;
}

}  // namespace llmnpu
