/**
 * @file
 * Every calibrated constant of the timing/energy plane, with the published
 * measurement it targets. This is the single place to audit the simulator
 * against the paper.
 *
 * Calibration anchors:
 *  - Table 3 (Redmi K70 Pro): INT8 matmul latencies. Key derived facts:
 *      * NPU INT8 at small flat M is ~0.63-0.65 effective TOPS;
 *        shapes with >=16 MB of weights are *weight-bandwidth bound* at
 *        ~11.3 GB/s (16.8 MB/1.5 ms, 22.5/2.0, 33.6/2.9, 45/4.1).
 *      * CPU INT8 ~0.13-0.3 TOPS; GPU FP16 ~0.3-0.4 TFLOPS at M=32..64.
 *      * NPU FP16 fits 19.2 GFLOPS * M/(M+512) across all six shapes.
 *  - Figure 2: QNN graph lifecycle (build 450/360 ms, optimize 3.30/11.54 s,
 *    free 149/108 ms for Qwen1.5-1.8B / Gemma-2B).
 *  - §4 prototype notes: square-reshaped inputs (32x32x2048 vs 1024x1x2048)
 *    are 1.62x faster on the NPU; Hexagon NPUs address a ~4 GB region.
 *  - §3.4: prompt 256 on Qwen1.5-1.8B: NPU busy ~315 ms, ~2x the CPU's.
 *  - Table 5 / Figure 14 end-to-end speeds back out the large-M effective
 *    throughput per engine (llama.cpp ~0.13 TOPS, TFLite ~2.4 TFLOPS,
 *    MLC ~0.12 TFLOPS, llm.npu ~2.5-4.6 TOPS depending on layer sizes).
 */
#ifndef LLMNPU_SIM_CALIBRATION_H
#define LLMNPU_SIM_CALIBRATION_H

namespace llmnpu {
namespace cal {

// ---------------------------------------------------------------- NPU INT8
/** Effective NPU INT8 TOPS vs batch rows M (square-optimized shapes),
 *  piecewise-linear in log2(M); see SquareOptTops(). */
inline constexpr double kNpuInt8TopsTable[][2] = {
    {16, 0.45}, {32, 0.70}, {64, 1.15}, {128, 1.90},
    {256, 2.70}, {512, 2.55}, {1024, 2.30}, {2048, 2.00},
};
/** Flat (unoptimized) shapes: capped at kNpuFlatFloorTops or square/1.62. */
inline constexpr double kNpuSquareSpeedup = 1.62;  // §4 optimization (1)
inline constexpr double kNpuFlatFloorTops = 0.66;  // Table 3, M=32/64

/** Weight-streaming bandwidth seen by the NPU (Table 3 bound shapes). */
inline constexpr double kNpuWeightBwGBs = 11.3;

/** Per-subgraph-invoke dispatch overhead on the NPU (QNN execute call). */
inline constexpr double kNpuDispatchMs = 0.25;
/** Per-op dispatch when ops run individually (micro-benchmarks). */
inline constexpr double kNpuOpDispatchMs = 0.03;

/** Size bonus: larger K/N tiles utilize the 1024-bit HVX lanes better.
 *  factor = clamp((geomean(K, N) / 3000)^0.5, lo, hi). */
inline constexpr double kNpuSizeFactorRef = 3000.0;
inline constexpr double kNpuSizeFactorExp = 0.5;
inline constexpr double kNpuSizeFactorLo = 0.70;
inline constexpr double kNpuSizeFactorHi = 1.60;

// ---------------------------------------------------------------- NPU FP16
/** NPU FP16 GFLOPS = base * M/(M+half): fits all Table 3 FP16 rows. */
inline constexpr double kNpuFp16GflopsBase = 19.2;
inline constexpr double kNpuFp16MHalf = 512.0;

// --------------------------------------------------------------- per-group
/** Utilization multiplier of each group-sized sub-tensor matmul. The NPU
 *  loses half its lanes on thin-K tiles; llama.cpp's CPU kernels are native
 *  per-group and barely penalized. */
inline constexpr double kNpuPerGroupSubUtil = 0.5;
inline constexpr double kCpuPerGroupSubUtil = 0.95;
inline constexpr double kGpuPerGroupSubUtil = 0.80;
/** Default quantization group size (K-Quant/AWQ-style). */
inline constexpr int kPerGroupSize = 32;

// --------------------------------------------------------------------- CPU
/** CPU INT8 TOPS = max * M/(M+half) (llama.cpp-class kernels, Table 3;
 *  large-M effective rate backed out of Table 5: ~26 s for ~1550 tokens
 *  on Qwen1.5-1.8B). */
inline constexpr double kCpuInt8TopsMax = 0.18;
inline constexpr double kCpuInt8MHalf = 24.0;
/** Matvec (decode) kernels stream weights and never drop below the
 *  utilization of this effective batch (Table 5: ~80 ms/token decode on
 *  Qwen1.5-1.8B => bandwidth-bound, not ALU-bound). */
inline constexpr double kCpuMatvecMFloor = 48.0;
inline constexpr double kGpuMatvecMFloor = 64.0;
/** CPU float GFLOPS (norm/quant/outlier shadow kernels, fp32 NEON). */
inline constexpr double kCpuFp32Gflops = 45.0;
/** CPU attention throughput: MLLM implements the KVCache operator in INT8
 *  (§4 implementation), so QK^T/AV run as blocked SDOT/i8mm kernels rather
 *  than fp32 vector code. Anchor: §3.4 reports CPU ~ half of the NPU's
 *  315 ms at prompt 256 on Qwen1.5-1.8B, and attention dominates that CPU
 *  share even at kv 1024. */
inline constexpr double kCpuAttentionGflops = 400.0;
/** CPU DRAM streaming bandwidth (decode matvec bound; Table 5 decode). */
inline constexpr double kCpuWeightBwGBs = 22.0;
inline constexpr double kCpuDispatchMs = 0.002;

// --------------------------------------------------------------------- GPU
/** Effective GPU FP16 TFLOPS vs M (TFLite-class tiling). */
inline constexpr double kGpuFp16TflopsTable[][2] = {
    {16, 0.12}, {32, 0.22}, {64, 0.33}, {128, 0.55},
    {256, 1.00}, {512, 1.70}, {1024, 2.20}, {2048, 2.60},
};
/** Micro-benchmark (flat) GPU shapes stay near the M=64 point (Table 3). */
inline constexpr double kGpuFlatFloorTflops = 0.30;
inline constexpr double kGpuWeightBwGBs = 18.0;
/** Decode matvec streaming bandwidth of the GPU (TFLite-GPU decode on
 *  Gemma-2B: ~63 ms/token over ~1.9 GB INT8 weights => ~30 GB/s). */
inline constexpr double kGpuDecodeBwGBs = 30.0;
inline constexpr double kGpuDispatchMs = 0.05;
inline constexpr double kGpuSizeFactorRef = 3000.0;
inline constexpr double kGpuSizeFactorExp = 0.3;
inline constexpr double kGpuSizeFactorLo = 0.80;
inline constexpr double kGpuSizeFactorHi = 1.25;

// ------------------------------------------------------------ QNN lifecycle
/** One-time NPU environment setup (Figure 2). */
inline constexpr double kNpuEnvSetupMs = 500.0;
/** Graph build: base + per-op cost (Qwen 450 ms @ ~312 ops, Gemma 360 ms
 *  @ ~234 ops). */
inline constexpr double kNpuBuildBaseMs = 30.0;
inline constexpr double kNpuBuildPerOpMs = 1.35;
/** Graph optimize: coef * (const GB)^exp (Qwen 3.30 s @ 1.52 GB,
 *  Gemma 11.54 s @ 2.42 GB). */
inline constexpr double kNpuOptimizeCoefS = 1.07;
inline constexpr double kNpuOptimizeExp = 2.7;
/** Graph free: per-op (Qwen 149 ms, Gemma 108 ms). */
inline constexpr double kNpuFreePerOpMs = 0.45;
/** Hexagon NPU addressable memory region (§4 optimization (2)). */
inline constexpr double kNpuMemoryRegionBytes = 4.0 * 1024 * 1024 * 1024;

// ----------------------------------------------------------- CPU<->NPU sync
/** Shared-buffer synchronization of a shadow-outlier partial sum (§3.3:
 *  un-pruned layers cost 29.7% e2e latency on Qwen1.5-1.8B at rate 0). */
inline constexpr double kShadowSyncMs = 0.55;
/** Per-layer CPU<->NPU round trip of the prebuilt decode graph (quantized
 *  activations in, per-column-scaled accumulators out). Decode buffers are
 *  tiny (M <= 8 rows), so this is latency- not bandwidth-bound. Modeled,
 *  not paper-measured: the paper keeps decode on the float processor, so
 *  this is the boundary charge of our beyond-paper NPU-decode mode. */
inline constexpr double kNpuDecodeHandoffMs = 0.06;

// ------------------------------------------------------------------- disk
/** UFS 4.0 sequential read bandwidth (cold outlier weight fetch). */
inline constexpr double kDiskReadGBs = 1.5;
inline constexpr double kDiskLatencyMs = 0.15;

// ------------------------------------------------------------------ power
/** Busy power draws (W). Targets Figure 15's 35-59x CPU and 1.85-4.3x GPU
 *  energy ratios given the corresponding speedups. */
inline constexpr double kCpuBusyPowerW = 6.0;
inline constexpr double kGpuBusyPowerW = 4.5;
inline constexpr double kNpuBusyPowerW = 1.7;
inline constexpr double kSocBasePowerW = 0.6;
/** CPU draw when serving an NPU-driven pipeline: llm.npu's float stages
 *  run intermittently on 1-2 cores, unlike sequential CPU engines that
 *  saturate all cores (§4.2: "during the LLM prefill stage, all CPU cores
 *  are fully utilized, consuming the highest power"). */
inline constexpr double kCpuServicePowerW = 2.5;

// -------------------------------------------------------------- per-device
/** Snapdragon 8gen2 (Redmi K60 Pro) relative to 8gen3 (Redmi K70 Pro). */
inline constexpr double kGen2NpuScale = 0.78;
inline constexpr double kGen2CpuScale = 0.85;
inline constexpr double kGen2GpuScale = 0.82;

// ---------------------------------------------------------------- memory
/** MLLM/QNN per-operator activation buffers make llm.npu up to 1.32x the
 *  memory of llama.cpp (Figure 17); fraction of activation working set
 *  duplicated per framework. */
inline constexpr double kFrameworkActivationOverhead = 1.30;

}  // namespace cal
}  // namespace llmnpu

#endif  // LLMNPU_SIM_CALIBRATION_H
