/**
 * @file
 * Mobile SoC descriptions: the two evaluation devices (§4.1) and the
 * energy model (busy power per processor + SoC baseline).
 */
#ifndef LLMNPU_SIM_SOC_H
#define LLMNPU_SIM_SOC_H

#include <array>
#include <string>

#include "src/sim/processor.h"

namespace llmnpu {

/** One phone: a named SoC with three processor models. */
class SocSpec
{
  public:
    /** Redmi K70 Pro: Snapdragon 8gen3, 24 GB (primary device). */
    static SocSpec RedmiK70Pro();

    /** Redmi K60 Pro: Snapdragon 8gen2, 16 GB (energy device). */
    static SocSpec RedmiK60Pro();

    const std::string& name() const { return name_; }
    const std::string& soc_name() const { return soc_name_; }
    double memory_gb() const { return memory_gb_; }

    /** Processor model for a unit. */
    const ProcessorModel& Processor(Unit unit) const;

    /** SoC baseline power in watts (always drawn while inferring). */
    double BasePowerW() const;

    /**
     * Energy in millijoules for a run: per-unit busy time integrates that
     * unit's busy power; the baseline integrates over the makespan.
     */
    double EnergyMj(const std::array<double, kNumUnits>& busy_ms,
                    double makespan_ms) const;

    /**
     * EnergyMj() with an explicit CPU busy power: NPU-driven engines keep
     * the CPU in intermittent 1-2-core service duty (kCpuServicePowerW)
     * rather than all-core saturation.
     */
    double EnergyMj(const std::array<double, kNumUnits>& busy_ms,
                    double makespan_ms, double cpu_power_w) const;

  private:
    SocSpec(std::string name, std::string soc, double memory_gb,
            double cpu_scale, double gpu_scale, double npu_scale);

    std::string name_;
    std::string soc_name_;
    double memory_gb_;
    std::array<ProcessorModel, kNumUnits> processors_;
};

}  // namespace llmnpu

#endif  // LLMNPU_SIM_SOC_H
