#include "src/sim/npu_runtime.h"

#include <cmath>
#include <sstream>

#include "src/sim/calibration.h"
#include "src/util/check.h"
#include "src/util/format.h"

namespace llmnpu {

NpuRuntime::NpuRuntime() = default;

double
NpuRuntime::EnvSetupMs()
{
    if (env_ready_) return 0.0;
    env_ready_ = true;
    return cal::kNpuEnvSetupMs;
}

NpuGraphCosts
NpuRuntime::CostsFor(const NpuGraphDesc& desc)
{
    NpuGraphCosts costs;
    costs.build_ms =
        cal::kNpuBuildBaseMs + cal::kNpuBuildPerOpMs * desc.num_ops;
    const double gb =
        static_cast<double>(desc.const_bytes) / (1024.0 * 1024.0 * 1024.0);
    costs.optimize_ms =
        cal::kNpuOptimizeCoefS * std::pow(gb, cal::kNpuOptimizeExp) * 1e3;
    costs.free_ms = cal::kNpuFreePerOpMs * desc.num_ops;
    return costs;
}

std::string
NpuRuntime::Key(const NpuGraphDesc& desc)
{
    std::ostringstream oss;
    oss << desc.name;
    for (int64_t d : desc.input_shape) oss << ":" << d;
    return oss.str();
}

bool
NpuRuntime::IsBuilt(const NpuGraphDesc& desc) const
{
    return built_.count(Key(desc)) > 0;
}

bool
NpuRuntime::FitsMemory(int64_t extra_bytes) const
{
    return static_cast<double>(resident_bytes_ + extra_bytes) <=
           cal::kNpuMemoryRegionBytes;
}

double
NpuRuntime::EnsureBuilt(const NpuGraphDesc& desc)
{
    if (IsBuilt(desc)) return 0.0;
    const int64_t bytes = desc.const_bytes + desc.activation_bytes;
    LLMNPU_FATAL_IF(!FitsMemory(bytes),
                    "NPU memory region exhausted building graph '" +
                        desc.name + "' (" + HumanBytes(
                            static_cast<uint64_t>(bytes)) + " more, " +
                        HumanBytes(static_cast<uint64_t>(resident_bytes_)) +
                        " resident)");
    double ms = EnvSetupMs();
    const NpuGraphCosts costs = CostsFor(desc);
    ms += costs.TotalPrepareMs();
    resident_bytes_ += bytes;
    built_.emplace(Key(desc), desc);
    total_prepare_ms_ += ms;
    return ms;
}

double
NpuRuntime::Free(const NpuGraphDesc& desc)
{
    auto it = built_.find(Key(desc));
    LLMNPU_CHECK(it != built_.end());
    resident_bytes_ -= it->second.const_bytes + it->second.activation_bytes;
    const double ms = CostsFor(it->second).free_ms;
    built_.erase(it);
    return ms;
}

double
NpuRuntime::FreeAll()
{
    double ms = 0.0;
    for (const auto& [key, desc] : built_) {
        ms += CostsFor(desc).free_ms;
    }
    built_.clear();
    resident_bytes_ = 0;
    return ms;
}

}  // namespace llmnpu
