#include "src/sim/soc.h"

#include "src/sim/calibration.h"
#include "src/util/check.h"

namespace llmnpu {

SocSpec::SocSpec(std::string name, std::string soc, double memory_gb,
                 double cpu_scale, double gpu_scale, double npu_scale)
    : name_(std::move(name)),
      soc_name_(std::move(soc)),
      memory_gb_(memory_gb),
      processors_{ProcessorModel(Unit::kCpu, cpu_scale),
                  ProcessorModel(Unit::kGpu, gpu_scale),
                  ProcessorModel(Unit::kNpu, npu_scale)}
{}

SocSpec
SocSpec::RedmiK70Pro()
{
    return SocSpec("Redmi K70 Pro", "Snapdragon 8gen3", 24.0, 1.0, 1.0, 1.0);
}

SocSpec
SocSpec::RedmiK60Pro()
{
    return SocSpec("Redmi K60 Pro", "Snapdragon 8gen2", 16.0,
                   cal::kGen2CpuScale, cal::kGen2GpuScale,
                   cal::kGen2NpuScale);
}

const ProcessorModel&
SocSpec::Processor(Unit unit) const
{
    return processors_[static_cast<size_t>(unit)];
}

double
SocSpec::BasePowerW() const
{
    return cal::kSocBasePowerW;
}

double
SocSpec::EnergyMj(const std::array<double, kNumUnits>& busy_ms,
                  double makespan_ms) const
{
    return EnergyMj(busy_ms, makespan_ms,
                    processors_[static_cast<size_t>(Unit::kCpu)]
                        .BusyPowerW());
}

double
SocSpec::EnergyMj(const std::array<double, kNumUnits>& busy_ms,
                  double makespan_ms, double cpu_power_w) const
{
    LLMNPU_CHECK_GE(makespan_ms, 0.0);
    double mj = makespan_ms * BasePowerW();
    for (int u = 0; u < kNumUnits; ++u) {
        const double power =
            u == static_cast<int>(Unit::kCpu)
                ? cpu_power_w
                : processors_[static_cast<size_t>(u)].BusyPowerW();
        mj += busy_ms[static_cast<size_t>(u)] * power;
    }
    return mj;
}

}  // namespace llmnpu
