#include "src/sim/thermal.h"

#include <cmath>

#include "src/util/check.h"

namespace llmnpu {

void
ThermalOptions::Validate() const
{
    if (!enabled) return;
    LLMNPU_FATAL_IF(heat_c_per_busy_ms < 0.0,
                    "thermal heat_c_per_busy_ms must be >= 0");
    LLMNPU_FATAL_IF(cool_tau_ms <= 0.0, "thermal cool_tau_ms must be > 0");
    LLMNPU_FATAL_IF(throttle_full_c <= throttle_start_c,
                    "thermal throttle_full_c must exceed throttle_start_c");
    LLMNPU_FATAL_IF(max_slowdown < 1.0,
                    "thermal max_slowdown must be >= 1");
    LLMNPU_FATAL_IF(start_c < ambient_c,
                    "thermal start_c must be >= ambient_c");
}

ThermalModel::ThermalModel(const ThermalOptions& options)
    : options_(options), temp_c_(options.start_c)
{
    options_.Validate();
}

void
ThermalModel::Advance(double dt_ms, bool npu_busy)
{
    if (!options_.enabled || dt_ms <= 0.0) return;
    // Cooling toward ambient over the whole interval, heating added on top
    // when the accelerator was busy. Evaluated per event interval, so the
    // trajectory is deterministic for a given schedule.
    temp_c_ = options_.ambient_c +
              (temp_c_ - options_.ambient_c) *
                  std::exp(-dt_ms / options_.cool_tau_ms);
    if (npu_busy) temp_c_ += options_.heat_c_per_busy_ms * dt_ms;
}

double
ThermalModel::ServiceScale() const
{
    if (!options_.enabled || temp_c_ < options_.throttle_start_c) {
        return 1.0;
    }
    if (temp_c_ >= options_.throttle_full_c) return options_.max_slowdown;
    const double frac = (temp_c_ - options_.throttle_start_c) /
                        (options_.throttle_full_c -
                         options_.throttle_start_c);
    return 1.0 + frac * (options_.max_slowdown - 1.0);
}

bool
ThermalModel::Throttled() const
{
    return options_.enabled && temp_c_ >= options_.throttle_start_c;
}

}  // namespace llmnpu
