#include "src/sim/processor.h"

#include <algorithm>
#include <cmath>

#include "src/sim/calibration.h"
#include "src/util/check.h"

namespace llmnpu {

namespace {

/** Piecewise-linear interpolation in log2(m) over a {m, value} table. */
template <size_t N>
double
TableLookup(const double (&table)[N][2], double m)
{
    if (m <= table[0][0]) {
        // Scale down linearly below the first entry.
        return table[0][1] * m / table[0][0];
    }
    if (m >= table[N - 1][0]) return table[N - 1][1];
    for (size_t i = 0; i + 1 < N; ++i) {
        if (m <= table[i + 1][0]) {
            const double x0 = std::log2(table[i][0]);
            const double x1 = std::log2(table[i + 1][0]);
            const double t = (std::log2(m) - x0) / (x1 - x0);
            return table[i][1] * (1.0 - t) + table[i + 1][1] * t;
        }
    }
    return table[N - 1][1];
}

}  // namespace

std::string
UnitName(Unit unit)
{
    switch (unit) {
      case Unit::kCpu: return "CPU";
      case Unit::kGpu: return "GPU";
      case Unit::kNpu: return "NPU";
    }
    return "?";
}

ProcessorModel::ProcessorModel(Unit unit, double perf_scale)
    : unit_(unit), perf_scale_(perf_scale)
{
    LLMNPU_CHECK_GT(perf_scale, 0.0);
}

double
ProcessorModel::SizeFactor(const MatMulShape& shape) const
{
    const double geomean = std::sqrt(static_cast<double>(shape.k) *
                                     static_cast<double>(shape.n));
    double ref, exp, lo, hi;
    if (unit_ == Unit::kNpu) {
        ref = cal::kNpuSizeFactorRef;
        exp = cal::kNpuSizeFactorExp;
        lo = cal::kNpuSizeFactorLo;
        hi = cal::kNpuSizeFactorHi;
    } else if (unit_ == Unit::kGpu) {
        ref = cal::kGpuSizeFactorRef;
        exp = cal::kGpuSizeFactorExp;
        lo = cal::kGpuSizeFactorLo;
        hi = cal::kGpuSizeFactorHi;
    } else {
        return 1.0;
    }
    return std::clamp(std::pow(geomean / ref, exp), lo, hi);
}

double
ProcessorModel::Int8Tops(const MatMulShape& shape, bool square_optimized) const
{
    double m = static_cast<double>(shape.m);
    double tops = 0.0;
    switch (unit_) {
      case Unit::kNpu: {
        const double square = TableLookup(cal::kNpuInt8TopsTable, m);
        tops = square_optimized
                   ? square
                   : std::min(square, std::max(cal::kNpuFlatFloorTops,
                                               square / cal::kNpuSquareSpeedup));
        tops *= SizeFactor(shape);
        break;
      }
      case Unit::kCpu:
        // Matvec (decode) kernels stream weights; their ALU utilization
        // never drops below the kCpuMatvecMFloor batch equivalent.
        m = std::max(m, cal::kCpuMatvecMFloor);
        tops = cal::kCpuInt8TopsMax * m / (m + cal::kCpuInt8MHalf);
        break;
      case Unit::kGpu:
        // Mobile GPUs run int8 via fp16 ALUs; same throughput as fp16.
        tops = FloatGflops(std::max<int64_t>(
                   shape.m, static_cast<int64_t>(cal::kGpuMatvecMFloor))) /
               1000.0;
        return tops;  // FloatGflops is already perf-scaled
    }
    return tops * perf_scale_;
}

double
ProcessorModel::FloatGflops(int64_t m_i) const
{
    const double m = std::max<double>(1.0, static_cast<double>(m_i));
    double gflops;
    switch (unit_) {
      case Unit::kNpu:
        gflops = cal::kNpuFp16GflopsBase * m / (m + cal::kNpuFp16MHalf);
        break;
      case Unit::kCpu:
        gflops = cal::kCpuFp32Gflops * m / (m + 2.0);
        break;
      case Unit::kGpu:
        gflops = TableLookup(cal::kGpuFp16TflopsTable, m) * 1000.0;
        break;
      default: gflops = 1.0;
    }
    return gflops * perf_scale_;
}

double
ProcessorModel::MatMulMs(const MatMulShape& shape, ExecFormat format,
                         int group_size, bool square_optimized) const
{
    LLMNPU_CHECK_GT(shape.m, 0);
    LLMNPU_CHECK_GT(shape.k, 0);
    LLMNPU_CHECK_GT(shape.n, 0);
    const double ops = shape.Ops();

    switch (format) {
      case ExecFormat::kInt8PerTensor: {
        const double tops = Int8Tops(shape, square_optimized);
        const double compute_ms = ops / (tops * 1e12) * 1e3;
        double bw = WeightBw();
        // Decode matvec on the GPU streams at DRAM rate rather than the
        // tile-bound prefill rate.
        if (unit_ == Unit::kGpu && shape.m <= 8) bw = cal::kGpuDecodeBwGBs;
        const double mem_ms =
            shape.WeightBytes(1.0) / (bw * perf_scale_ * 1e9) * 1e3;
        return std::max(compute_ms, mem_ms);
      }
      case ExecFormat::kInt8PerGroup: {
        LLMNPU_CHECK_GT(group_size, 0);
        // Figure 3(b): K/group sub-tensor matmuls at reduced utilization,
        // plus a float reduction of (groups-1) * M * N adds, plus per-sub-
        // matmul dispatch. This is what costs 8.1-10.7x on NPUs (Figure 4).
        const int groups =
            static_cast<int>((shape.k + group_size - 1) / group_size);
        double sub_util;
        if (unit_ == Unit::kNpu) {
            sub_util = cal::kNpuPerGroupSubUtil;
        } else if (unit_ == Unit::kCpu) {
            sub_util = cal::kCpuPerGroupSubUtil;
        } else {
            sub_util = cal::kGpuPerGroupSubUtil;
        }
        const double tops = Int8Tops(shape, square_optimized) * sub_util;
        const double sub_ms = ops / (tops * 1e12) * 1e3;
        const double reduce_flops = static_cast<double>(groups - 1) *
                                    static_cast<double>(shape.m) *
                                    static_cast<double>(shape.n);
        const double reduce_ms =
            reduce_flops / (FloatGflops(shape.m) * 1e9) * 1e3;
        double per_sub_dispatch;
        if (unit_ == Unit::kNpu) {
            per_sub_dispatch = cal::kNpuOpDispatchMs;
        } else if (unit_ == Unit::kCpu) {
            per_sub_dispatch = cal::kCpuDispatchMs;
        } else {
            per_sub_dispatch = cal::kGpuDispatchMs * 0.2;
        }
        const double mem_ms = shape.WeightBytes(1.0) /
                              (WeightBw() * perf_scale_ * 1e9) * 1e3;
        return std::max(sub_ms, mem_ms) + reduce_ms +
               static_cast<double>(groups) * per_sub_dispatch;
      }
      case ExecFormat::kFp16:
      case ExecFormat::kFp32: {
        const double gflops = FloatGflops(shape.m);
        const double compute_ms = ops / (gflops * 1e9) * 1e3;
        const double elem_bytes = format == ExecFormat::kFp16 ? 2.0 : 4.0;
        const double mem_ms = shape.WeightBytes(elem_bytes) /
                              (WeightBw() * perf_scale_ * 1e9) * 1e3;
        return std::max(compute_ms, mem_ms);
      }
    }
    LLMNPU_CHECK(false);
    return 0.0;
}

double
ProcessorModel::VectorOpMs(double elems, double flops_per_elem) const
{
    // Vector ops are memory-bound as often as compute-bound; use the
    // slower of flops at float rate and 8 bytes/element of traffic.
    const double flops_ms =
        elems * flops_per_elem / (FloatGflops(256) * 1e9) * 1e3;
    const double mem_ms = elems * 8.0 / (WeightBw() * perf_scale_ * 1e9) * 1e3;
    return std::max(flops_ms, mem_ms);
}

double
ProcessorModel::AttentionMs(int64_t q_len, int64_t kv_len, int num_heads,
                            int head_dim) const
{
    // QK^T + AV: 2 * 2 * q_len * kv_len * heads * head_dim FLOPs, plus a
    // softmax pass (~6 flops/score).
    const double matmul_flops = 4.0 * static_cast<double>(q_len) *
                                static_cast<double>(kv_len) *
                                static_cast<double>(num_heads) * head_dim;
    const double softmax_flops = 6.0 * static_cast<double>(q_len) *
                                 static_cast<double>(kv_len) * num_heads;
    // CPU attention uses blocked multi-core fp16 NEON kernels, much faster
    // than general fp32 vector work (see kCpuAttentionGflops). Decode
    // attention (q_len 1) on the GPU is latency-bound, not occupancy-bound:
    // apply the matvec batch floor.
    double gflops;
    if (unit_ == Unit::kCpu) {
        gflops = cal::kCpuAttentionGflops * perf_scale_ *
                 static_cast<double>(q_len) /
                 (static_cast<double>(q_len) + 8.0);
    } else if (unit_ == Unit::kGpu) {
        gflops = FloatGflops(std::max<int64_t>(
            q_len, static_cast<int64_t>(cal::kGpuMatvecMFloor)));
    } else {
        gflops = FloatGflops(q_len);
    }
    return (matmul_flops + softmax_flops) / (gflops * 1e9) * 1e3;
}

double
ProcessorModel::WeightBw() const
{
    switch (unit_) {
      case Unit::kNpu: return cal::kNpuWeightBwGBs;
      case Unit::kCpu: return cal::kCpuWeightBwGBs;
      case Unit::kGpu: return cal::kGpuWeightBwGBs;
    }
    return 1.0;
}

double
ProcessorModel::DispatchMs() const
{
    switch (unit_) {
      case Unit::kNpu: return cal::kNpuDispatchMs;
      case Unit::kCpu: return cal::kCpuDispatchMs;
      case Unit::kGpu: return cal::kGpuDispatchMs;
    }
    return 0.0;
}

double
ProcessorModel::BusyPowerW() const
{
    switch (unit_) {
      case Unit::kNpu: return cal::kNpuBusyPowerW;
      case Unit::kCpu: return cal::kCpuBusyPowerW;
      case Unit::kGpu: return cal::kGpuBusyPowerW;
    }
    return 0.0;
}

}  // namespace llmnpu
