/**
 * @file
 * Analytical latency models for the three mobile processors (CPU, GPU, NPU).
 *
 * The model prices one operator at a time:
 *   latency = max(compute_time, weight_streaming_time) + dispatch_overhead
 * with effective throughput curves calibrated to Table 3 / Table 5 / §4
 * (see src/sim/calibration.h for every constant's provenance).
 */
#ifndef LLMNPU_SIM_PROCESSOR_H
#define LLMNPU_SIM_PROCESSOR_H

#include <cstdint>
#include <string>

namespace llmnpu {

/** Which processor executes an operator. */
enum class Unit : uint8_t { kCpu = 0, kGpu = 1, kNpu = 2 };

/** Number of Unit values. */
inline constexpr int kNumUnits = 3;

/** Short name ("CPU"/"GPU"/"NPU"). */
std::string UnitName(Unit unit);

/** Numeric format an operator executes in. */
enum class ExecFormat : uint8_t {
    kInt8PerTensor,  ///< W8A8, one activation scale (+ per-column weight)
    kInt8PerGroup,   ///< W8A8, group-wise sub-matmuls + float reduce
    kFp16,           ///< half-precision float
    kFp32,           ///< full float (CPU only)
};

/** Shape of a matmul: [M x K] @ [K x N]. */
struct MatMulShape {
    int64_t m = 0;
    int64_t k = 0;
    int64_t n = 0;

    double Ops() const { return 2.0 * static_cast<double>(m) * k * n; }
    /** Weight bytes for the given element size. */
    double WeightBytes(double elem_bytes) const
    {
        return static_cast<double>(k) * n * elem_bytes;
    }
};

/**
 * Latency/energy model of one processor.
 *
 * `perf_scale` scales all throughputs (used for the Snapdragon 8gen2
 * device); `square_optimized` selects llm.npu's preparation-stage shape
 * profiling (§4, optimization (1)) vs the flat layouts other engines use.
 */
class ProcessorModel
{
  public:
    ProcessorModel(Unit unit, double perf_scale);

    Unit unit() const { return unit_; }
    double perf_scale() const { return perf_scale_; }

    /**
     * Latency (ms) of one matmul in the given format.
     *
     * @param group_size group width for kInt8PerGroup (ignored otherwise).
     * @param square_optimized whether the engine profiled equivalent 2-D
     *        input shapes at preparation time (llm.npu only).
     */
    double MatMulMs(const MatMulShape& shape, ExecFormat format,
                    int group_size, bool square_optimized) const;

    /**
     * Latency (ms) of a float vector operator (norm/softmax/activation/
     * rope/elementwise) touching `elems` elements with `flops_per_elem`
     * float operations each.
     */
    double VectorOpMs(double elems, double flops_per_elem) const;

    /** Latency (ms) of float attention over one chunk (scores + weighted
     *  sum): q_len x kv_len positions, `heads` x `head_dim` wide. */
    double AttentionMs(int64_t q_len, int64_t kv_len, int num_heads,
                       int head_dim) const;

    /** Per-task dispatch overhead (ms). */
    double DispatchMs() const;

    /** Busy power draw in watts. */
    double BusyPowerW() const;

    /** Effective INT8 TOPS for a shape (exposed for tests/benches). */
    double Int8Tops(const MatMulShape& shape, bool square_optimized) const;

    /** Effective float GFLOPS at batch M (fp16 on GPU/NPU, fp32 on CPU). */
    double FloatGflops(int64_t m) const;

    /** Weight-streaming bandwidth in GB/s (before perf scaling). */
    double WeightBw() const;

  private:
    double SizeFactor(const MatMulShape& shape) const;

    Unit unit_;
    double perf_scale_;
};

}  // namespace llmnpu

#endif  // LLMNPU_SIM_PROCESSOR_H
