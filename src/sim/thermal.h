/**
 * @file
 * Lumped-capacitance NPU thermal model: the hardware-side hook of the
 * fault plane (src/serving/faults.h).
 *
 * Mobile SoCs throttle the NPU long before a sustained serving workload
 * drains the battery: the die heats roughly in proportion to accelerator
 * busy time and cools exponentially toward ambient through the chassis.
 * This model reproduces that first-order behavior deterministically so the
 * serving simulator can price thermal throttling into chunk service times
 * and trigger brownout-mode load shedding.
 *
 * The model is exact virtual-time arithmetic (no RNG): temperature decays
 * toward ambient with time constant `cool_tau_ms` and rises by
 * `heat_c_per_busy_ms` per millisecond of NPU busy time. The throttle
 * curve is a linear ramp: service times scale by 1.0 below
 * `throttle_start_c`, rising linearly to `max_slowdown` at
 * `throttle_full_c` and clamping there.
 */
#ifndef LLMNPU_SIM_THERMAL_H
#define LLMNPU_SIM_THERMAL_H

namespace llmnpu {

/** Thermal-model parameters. Disabled (the default) means ServiceScale()
 *  is the constant 1.0 and no state is ever advanced, so simulations with
 *  thermal modeling off are bit-identical to pre-thermal builds. */
struct ThermalOptions {
    bool enabled = false;
    /** Chassis/ambient temperature the die cools toward. */
    double ambient_c = 25.0;
    /** Die temperature at simulation start. */
    double start_c = 25.0;
    /** Heating per millisecond of NPU busy time. */
    double heat_c_per_busy_ms = 0.02;
    /** Exponential cooling time constant toward ambient. */
    double cool_tau_ms = 2000.0;
    /** Temperature where throttling (and brownout mode) begins. */
    double throttle_start_c = 70.0;
    /** Temperature where the slowdown ramp saturates. */
    double throttle_full_c = 90.0;
    /** Service-time multiplier at/above throttle_full_c (>= 1). */
    double max_slowdown = 3.0;

    /** Exits with a fatal user error on nonsensical parameters. */
    void Validate() const;
};

/** Deterministic die-temperature state machine. */
class ThermalModel
{
  public:
    explicit ThermalModel(const ThermalOptions& options);

    /**
     * Advances the model over `dt_ms` of virtual time with the NPU busy
     * (`npu_busy` = heating) or idle (cooling only). No-op when disabled.
     */
    void Advance(double dt_ms, bool npu_busy);

    /** Service-time multiplier at the current temperature: exactly 1.0
     *  when disabled or below the throttle threshold. */
    double ServiceScale() const;

    /** Whether the die is at/above the throttle threshold (brownout). */
    bool Throttled() const;

    double temperature_c() const { return temp_c_; }
    const ThermalOptions& options() const { return options_; }

  private:
    ThermalOptions options_;
    double temp_c_ = 25.0;
};

}  // namespace llmnpu

#endif  // LLMNPU_SIM_THERMAL_H
