/**
 * @file
 * Discrete-event timeline: executes a DAG of tasks on the three processors,
 * honoring dependencies and Equation 4 (a processor runs exactly one
 * subgraph at a time), with a pluggable per-processor task picker.
 *
 * The FIFO picker models the paper's "naive overlapping" (Figure 13(a));
 * llm.npu's out-of-order scheduler (src/core/scheduler) plugs in the
 * C-value heuristic of Equation 5.
 */
#ifndef LLMNPU_SIM_TIMELINE_H
#define LLMNPU_SIM_TIMELINE_H

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/processor.h"

namespace llmnpu {

/** One schedulable task (subgraph execution, sync, weight fetch, ...). */
struct SimTask {
    std::string label;
    Unit unit = Unit::kCpu;
    double duration_ms = 0.0;
    std::vector<int> deps;  ///< task ids that must complete first

    // Scheduler metadata (used by the OoO heuristic and reports).
    int chunk = -1;  ///< prompt chunk index, -1 when not chunked
    int stage = -1;  ///< subgraph position within the chunk
};

/** Start/end times assigned to one task. */
struct TaskRecord {
    double start_ms = 0.0;
    double end_ms = 0.0;
};

/** Read-only view of scheduling state exposed to pickers. */
class SchedContext
{
  public:
    virtual ~SchedContext() = default;

    virtual const std::vector<SimTask>& tasks() const = 0;
    /** Unsatisfied dependency count of a task. */
    virtual int RemainingDeps(int task_id) const = 0;
    /** Tasks that list `task_id` as a dependency. */
    virtual const std::vector<int>& Consumers(int task_id) const = 0;
    virtual bool Completed(int task_id) const = 0;
    virtual double NowMs() const = 0;
};

/**
 * Picks which ready task a free processor runs next.
 * @return a task id from `ready` (checked).
 */
using TaskPicker = std::function<int(Unit unit, const std::vector<int>& ready,
                                     const SchedContext& ctx)>;

/** In-order picker: the naive overlap baseline. */
TaskPicker FifoPicker();

/** Result of executing a task DAG. */
struct TimelineResult {
    double makespan_ms = 0.0;
    std::array<double, kNumUnits> busy_ms{};
    std::array<double, kNumUnits> span_start_ms{};
    std::array<double, kNumUnits> span_end_ms{};
    std::vector<TaskRecord> records;

    /** Idle fraction of a unit within its own active span (Figure 13). */
    double BubbleRate(Unit unit) const;
};

/**
 * Executes `tasks` and returns the timeline.
 *
 * Fatal on dependency cycles. Deterministic given a deterministic picker.
 */
TimelineResult RunTimeline(const std::vector<SimTask>& tasks,
                           const TaskPicker& picker);

/** Convenience: FIFO order. */
TimelineResult RunTimeline(const std::vector<SimTask>& tasks);

}  // namespace llmnpu

#endif  // LLMNPU_SIM_TIMELINE_H
