/**
 * @file
 * Memory-footprint accounting for simulated inference sessions (Figure 17,
 * and the chunk-graph / shadow-weight memory analyses of §3.2-3.3).
 */
#ifndef LLMNPU_SIM_MEMORY_H
#define LLMNPU_SIM_MEMORY_H

#include <cstdint>
#include <map>
#include <string>

#include "src/util/check.h"

namespace llmnpu {

/** Named byte categories summing to a session's memory footprint. */
class MemoryTracker
{
  public:
    /** Adds `bytes` to a category (creates it when absent). */
    void
    Add(const std::string& category, int64_t bytes)
    {
        LLMNPU_CHECK_GE(bytes, 0);
        categories_[category] += bytes;
    }

    /** Bytes in one category (0 when absent). */
    int64_t
    Get(const std::string& category) const
    {
        auto it = categories_.find(category);
        return it == categories_.end() ? 0 : it->second;
    }

    /** Total across all categories. */
    int64_t
    TotalBytes() const
    {
        int64_t total = 0;
        for (const auto& [name, bytes] : categories_) total += bytes;
        return total;
    }

    const std::map<std::string, int64_t>& categories() const
    {
        return categories_;
    }

  private:
    std::map<std::string, int64_t> categories_;
};

}  // namespace llmnpu

#endif  // LLMNPU_SIM_MEMORY_H
