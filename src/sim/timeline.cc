#include "src/sim/timeline.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"

namespace llmnpu {

TaskPicker
FifoPicker()
{
    return [](Unit, const std::vector<int>& ready, const SchedContext&) {
        return ready.front();
    };
}

double
TimelineResult::BubbleRate(Unit unit) const
{
    const auto u = static_cast<size_t>(unit);
    const double span = span_end_ms[u] - span_start_ms[u];
    if (span <= 0.0) return 0.0;
    return 1.0 - busy_ms[u] / span;
}

namespace {

/** Mutable scheduling state implementing the picker-visible view. */
class TimelineState final : public SchedContext
{
  public:
    explicit TimelineState(const std::vector<SimTask>& tasks) : tasks_(tasks)
    {
        const size_t n = tasks.size();
        remaining_.resize(n);
        consumers_.resize(n);
        completed_.assign(n, false);
        for (size_t i = 0; i < n; ++i) {
            remaining_[i] = static_cast<int>(tasks[i].deps.size());
            for (int dep : tasks[i].deps) {
                LLMNPU_CHECK_GE(dep, 0);
                LLMNPU_CHECK_LT(dep, static_cast<int>(n));
                LLMNPU_CHECK_NE(dep, static_cast<int>(i));
                consumers_[static_cast<size_t>(dep)].push_back(
                    static_cast<int>(i));
            }
        }
    }

    const std::vector<SimTask>& tasks() const override { return tasks_; }

    int
    RemainingDeps(int task_id) const override
    {
        return remaining_[static_cast<size_t>(task_id)];
    }

    const std::vector<int>&
    Consumers(int task_id) const override
    {
        return consumers_[static_cast<size_t>(task_id)];
    }

    bool
    Completed(int task_id) const override
    {
        return completed_[static_cast<size_t>(task_id)];
    }

    double NowMs() const override { return now_ms_; }

    void SetNow(double t) { now_ms_ = t; }

    /** Marks `task_id` complete; appends newly-ready consumers to `out`. */
    void
    Complete(int task_id, std::vector<int>& out)
    {
        completed_[static_cast<size_t>(task_id)] = true;
        for (int consumer : consumers_[static_cast<size_t>(task_id)]) {
            if (--remaining_[static_cast<size_t>(consumer)] == 0) {
                out.push_back(consumer);
            }
        }
    }

  private:
    const std::vector<SimTask>& tasks_;
    std::vector<int> remaining_;
    std::vector<std::vector<int>> consumers_;
    std::vector<bool> completed_;
    double now_ms_ = 0.0;
};

}  // namespace

TimelineResult
RunTimeline(const std::vector<SimTask>& tasks, const TaskPicker& picker)
{
    TimelineResult result;
    result.records.resize(tasks.size());
    for (int u = 0; u < kNumUnits; ++u) {
        result.span_start_ms[static_cast<size_t>(u)] =
            std::numeric_limits<double>::max();
    }
    if (tasks.empty()) {
        result.span_start_ms.fill(0.0);
        return result;
    }

    TimelineState state(tasks);

    std::array<std::vector<int>, kNumUnits> ready;
    for (size_t i = 0; i < tasks.size(); ++i) {
        if (state.RemainingDeps(static_cast<int>(i)) == 0) {
            ready[static_cast<size_t>(tasks[i].unit)].push_back(
                static_cast<int>(i));
        }
    }

    struct Running {
        int task_id = -1;
        double end_ms = 0.0;
    };
    std::array<Running, kNumUnits> running;
    double now = 0.0;
    size_t completed_count = 0;

    auto try_start = [&](int u) {
        auto& queue = ready[static_cast<size_t>(u)];
        if (running[static_cast<size_t>(u)].task_id >= 0 || queue.empty()) {
            return;
        }
        state.SetNow(now);
        const int chosen = picker(static_cast<Unit>(u), queue, state);
        auto it = std::find(queue.begin(), queue.end(), chosen);
        LLMNPU_CHECK(it != queue.end());
        queue.erase(it);
        const SimTask& task = tasks[static_cast<size_t>(chosen)];
        running[static_cast<size_t>(u)] = {chosen, now + task.duration_ms};
        result.records[static_cast<size_t>(chosen)] = {now,
                                                       now + task.duration_ms};
        auto& busy = result.busy_ms[static_cast<size_t>(u)];
        busy += task.duration_ms;
        auto& s0 = result.span_start_ms[static_cast<size_t>(u)];
        s0 = std::min(s0, now);
        auto& s1 = result.span_end_ms[static_cast<size_t>(u)];
        s1 = std::max(s1, now + task.duration_ms);
    };

    while (completed_count < tasks.size()) {
        for (int u = 0; u < kNumUnits; ++u) try_start(u);

        // Find the earliest completion among running tasks.
        double next = std::numeric_limits<double>::max();
        for (const auto& r : running) {
            if (r.task_id >= 0) next = std::min(next, r.end_ms);
        }
        LLMNPU_FATAL_IF(next == std::numeric_limits<double>::max(),
                        "timeline deadlock: dependency cycle in task DAG");
        now = next;

        std::vector<int> newly_ready;
        for (auto& r : running) {
            if (r.task_id >= 0 && r.end_ms <= now + 1e-12) {
                state.Complete(r.task_id, newly_ready);
                ++completed_count;
                r.task_id = -1;
            }
        }
        for (int id : newly_ready) {
            ready[static_cast<size_t>(tasks[static_cast<size_t>(id)].unit)]
                .push_back(id);
        }
    }

    result.makespan_ms = now;
    for (int u = 0; u < kNumUnits; ++u) {
        auto& s0 = result.span_start_ms[static_cast<size_t>(u)];
        if (s0 == std::numeric_limits<double>::max()) s0 = 0.0;
    }
    return result;
}

TimelineResult
RunTimeline(const std::vector<SimTask>& tasks)
{
    return RunTimeline(tasks, FifoPicker());
}

}  // namespace llmnpu
