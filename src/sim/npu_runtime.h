/**
 * @file
 * QNN-like NPU graph runtime model (Figure 2): static-shape compute graphs
 * with build / optimize / execute / free lifecycle costs, a graph cache, and
 * the ~4 GB NPU-addressable memory region.
 *
 * The static-shape constraint is the first gap of §2.3: a graph is keyed by
 * its exact input shape; executing an unseen shape requires building and
 * optimizing a new graph, which llm.npu's chunk-sharing graphs amortize to
 * the preparation stage.
 */
#ifndef LLMNPU_SIM_NPU_RUNTIME_H
#define LLMNPU_SIM_NPU_RUNTIME_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace llmnpu {

/** Static description of one NPU compute graph. */
struct NpuGraphDesc {
    std::string name;      ///< e.g. "qwen.block3.ffn"
    int num_ops = 0;       ///< operator count (drives build/free cost)
    int64_t const_bytes = 0;  ///< weight/constant tensor bytes
    int64_t activation_bytes = 0;  ///< I/O + intermediate buffer bytes
    std::vector<int64_t> input_shape;  ///< static shape this graph accepts
};

/** Lifecycle costs of preparing one graph. */
struct NpuGraphCosts {
    double build_ms = 0.0;
    double optimize_ms = 0.0;
    double free_ms = 0.0;

    double TotalPrepareMs() const { return build_ms + optimize_ms; }
};

/**
 * Tracks built graphs, their memory, and lifecycle costs.
 *
 * Not thread-safe; one runtime per simulated inference session.
 */
class NpuRuntime
{
  public:
    NpuRuntime();

    /** One-time environment setup cost (ms); charged on first use. */
    double EnvSetupMs();

    /** Computes lifecycle costs for a graph description. */
    static NpuGraphCosts CostsFor(const NpuGraphDesc& desc);

    /**
     * Builds + optimizes a graph if its (name, shape) is not cached.
     *
     * @return preparation latency in ms (0 when cached).
     * Fatal when the new graph would exceed the NPU memory region — callers
     * must plan placement with FitsMemory() first.
     */
    double EnsureBuilt(const NpuGraphDesc& desc);

    /** True when a graph with this name+shape is already built. */
    bool IsBuilt(const NpuGraphDesc& desc) const;

    /** True when `extra_bytes` more graph memory still fits the region. */
    bool FitsMemory(int64_t extra_bytes) const;

    /** Frees one graph; @return free latency (ms). */
    double Free(const NpuGraphDesc& desc);

    /** Frees everything; @return total free latency (ms). */
    double FreeAll();

    /** Bytes of graph memory currently resident on the NPU region. */
    int64_t ResidentBytes() const { return resident_bytes_; }

    /** Number of distinct graphs currently built. */
    int NumBuilt() const { return static_cast<int>(built_.size()); }

    /** Cumulative prepare time spent so far (ms). */
    double TotalPrepareMs() const { return total_prepare_ms_; }

  private:
    static std::string Key(const NpuGraphDesc& desc);

    bool env_ready_ = false;
    int64_t resident_bytes_ = 0;
    double total_prepare_ms_ = 0.0;
    std::map<std::string, NpuGraphDesc> built_;
};

}  // namespace llmnpu

#endif  // LLMNPU_SIM_NPU_RUNTIME_H
