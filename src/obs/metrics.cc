#include "src/obs/metrics.h"

#include "src/util/check.h"
#include "src/util/format.h"

namespace llmnpu {
namespace obs {

MetricsRegistry&
MetricsRegistry::Global()
{
    static MetricsRegistry* registry = new MetricsRegistry();
    return *registry;
}

Counter&
MetricsRegistry::GetCounter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    LLMNPU_CHECK(gauges_.find(name) == gauges_.end());
    LLMNPU_CHECK(histograms_.find(name) == histograms_.end());
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
MetricsRegistry::GetGauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    LLMNPU_CHECK(counters_.find(name) == counters_.end());
    LLMNPU_CHECK(histograms_.find(name) == histograms_.end());
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram&
MetricsRegistry::GetHistogram(const std::string& name,
                              std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    LLMNPU_CHECK(counters_.find(name) == counters_.end());
    LLMNPU_CHECK(gauges_.find(name) == gauges_.end());
    auto& slot = histograms_[name];
    if (!slot) {
        slot = bounds.empty()
                   ? std::make_unique<Histogram>()
                   : std::make_unique<Histogram>(std::move(bounds));
    }
    return *slot;
}

void
MetricsRegistry::ResetAll()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, counter] : counters_) counter->Reset();
    for (auto& [name, gauge] : gauges_) gauge->Reset();
    for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::vector<std::string>
MetricsRegistry::CounterNames() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    for (const auto& [name, counter] : counters_) names.push_back(name);
    return names;
}

std::vector<std::string>
MetricsRegistry::GaugeNames() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    for (const auto& [name, gauge] : gauges_) names.push_back(name);
    return names;
}

std::vector<std::string>
MetricsRegistry::HistogramNames() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    for (const auto& [name, histogram] : histograms_) {
        names.push_back(name);
    }
    return names;
}

std::string
MetricsRegistry::DumpText() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const auto& [name, counter] : counters_) {
        out += StrFormat("%s %lld\n", name.c_str(),
                         static_cast<long long>(counter->value()));
    }
    for (const auto& [name, gauge] : gauges_) {
        out += StrFormat("%s %.3f (peak %.3f)\n", name.c_str(),
                         gauge->value(), gauge->peak());
    }
    for (const auto& [name, histogram] : histograms_) {
        out += StrFormat(
            "%s count=%lld mean=%.3f p50=%.3f p99=%.3f max=%.3f\n",
            name.c_str(), static_cast<long long>(histogram->count()),
            histogram->mean(), histogram->Percentile(50.0),
            histogram->Percentile(99.0), histogram->max());
    }
    return out;
}

std::string
MetricsRegistry::DumpJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\"counters\": {";
    bool first = true;
    for (const auto& [name, counter] : counters_) {
        if (!first) out += ", ";
        first = false;
        out += StrFormat("\"%s\": %lld", name.c_str(),
                         static_cast<long long>(counter->value()));
    }
    out += "}, \"gauges\": {";
    first = true;
    for (const auto& [name, gauge] : gauges_) {
        if (!first) out += ", ";
        first = false;
        out += StrFormat("\"%s\": {\"value\": %.3f, \"peak\": %.3f}",
                         name.c_str(), gauge->value(), gauge->peak());
    }
    out += "}, \"histograms\": {";
    first = true;
    for (const auto& [name, histogram] : histograms_) {
        if (!first) out += ", ";
        first = false;
        out += StrFormat(
            "\"%s\": {\"count\": %lld, \"mean\": %.3f, \"p50\": %.3f, "
            "\"p95\": %.3f, \"p99\": %.3f, \"max\": %.3f}",
            name.c_str(), static_cast<long long>(histogram->count()),
            histogram->mean(), histogram->Percentile(50.0),
            histogram->Percentile(95.0), histogram->Percentile(99.0),
            histogram->max());
    }
    out += "}}";
    return out;
}

}  // namespace obs
}  // namespace llmnpu
