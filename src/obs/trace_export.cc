/**
 * @file
 * Chrome trace-event JSON exporter (Perfetto / chrome://tracing loadable).
 *
 * Layout of the exported document:
 *
 *  - pid 1 "numeric plane (wall clock)": one tid per registered thread
 *    buffer, `ts`/`dur` in microseconds of wall time since tracer
 *    construction.
 *  - pid 2 "serving simulator (virtual time)": one tid per SimLane,
 *    virtual milliseconds mapped 1 ms -> 1000 ts units, so both planes
 *    read naturally in the same viewer without pretending to share a
 *    clock.
 *  - "otherData" carries drop accounting and a metrics-registry snapshot
 *    (ignored by the viewers, consumed by examples/trace_dump).
 *
 * One event per line inside "traceEvents" — deliberate, so the in-repo
 * reader and ad-hoc grep both stay trivial.
 */
#include <algorithm>
#include <cstdio>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/format.h"

namespace llmnpu {
namespace obs {

namespace {

constexpr int kWallPid = 1;
constexpr int kSimPid = 2;

std::string
EscapeJson(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += StrFormat("\\u%04x", c);
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
MetadataEvent(int pid, int tid, const char* what, const std::string& name)
{
    return StrFormat("{\"ph\": \"M\", \"pid\": %d, \"tid\": %d, "
                     "\"name\": \"%s\", \"args\": {\"name\": \"%s\"}}",
                     pid, tid, what, EscapeJson(name).c_str());
}

/** Common args of a wall-lane event as `"k": v` pairs (may be empty). */
std::string
WallArgs(const TraceEvent& event)
{
    std::string args;
    auto add = [&](const char* key, int32_t value) {
        if (value < 0) return;
        if (!args.empty()) args += ", ";
        args += StrFormat("\"%s\": %d", key, value);
    };
    add("req", event.req);
    add("seq", event.seq);
    add("layer", event.layer);
    if (event.extra_name != nullptr) {
        add(EscapeJson(event.extra_name).c_str(), event.extra);
    }
    return args;
}

void
AppendWallEvent(std::string& out, const TraceEvent& event, int tid)
{
    const double ts = static_cast<double>(event.t0_ns) / 1e3;
    switch (event.phase) {
    case TracePhase::kSpan: {
        const double dur =
            static_cast<double>(event.t1_ns - event.t0_ns) / 1e3;
        out += StrFormat("{\"ph\": \"X\", \"pid\": %d, \"tid\": %d, "
                         "\"ts\": %.3f, \"dur\": %.3f, \"name\": \"%s\", "
                         "\"cat\": \"%s\", \"args\": {%s}}",
                         kWallPid, tid, ts, dur,
                         EscapeJson(event.name).c_str(),
                         EscapeJson(event.cat).c_str(),
                         WallArgs(event).c_str());
        break;
    }
    case TracePhase::kInstant:
        out += StrFormat("{\"ph\": \"i\", \"pid\": %d, \"tid\": %d, "
                         "\"ts\": %.3f, \"s\": \"t\", \"name\": \"%s\", "
                         "\"cat\": \"%s\", \"args\": {%s}}",
                         kWallPid, tid, ts,
                         EscapeJson(event.name).c_str(),
                         EscapeJson(event.cat).c_str(),
                         WallArgs(event).c_str());
        break;
    case TracePhase::kCounter:
        out += StrFormat("{\"ph\": \"C\", \"pid\": %d, \"tid\": %d, "
                         "\"ts\": %.3f, \"name\": \"%s\", "
                         "\"args\": {\"value\": %.3f}}",
                         kWallPid, tid, ts,
                         EscapeJson(event.name).c_str(), event.value);
        break;
    }
}

void
AppendSimEvent(std::string& out, const SimEvent& event)
{
    const int tid = static_cast<int>(event.lane);
    const double ts = event.t0_ms * 1e3;  // virtual ms -> ts units
    std::string args;
    if (event.req >= 0) args += StrFormat("\"req\": %d", event.req);
    if (!event.args_json.empty()) {
        if (!args.empty()) args += ", ";
        args += event.args_json;
    }
    switch (event.phase) {
    case TracePhase::kSpan:
        out += StrFormat("{\"ph\": \"X\", \"pid\": %d, \"tid\": %d, "
                         "\"ts\": %.3f, \"dur\": %.3f, \"name\": \"%s\", "
                         "\"cat\": \"%s\", \"args\": {%s}}",
                         kSimPid, tid, ts,
                         (event.t1_ms - event.t0_ms) * 1e3,
                         EscapeJson(event.name).c_str(), event.cat,
                         args.c_str());
        break;
    case TracePhase::kInstant:
        out += StrFormat("{\"ph\": \"i\", \"pid\": %d, \"tid\": %d, "
                         "\"ts\": %.3f, \"s\": \"t\", \"name\": \"%s\", "
                         "\"cat\": \"%s\", \"args\": {%s}}",
                         kSimPid, tid, ts,
                         EscapeJson(event.name).c_str(), event.cat,
                         args.c_str());
        break;
    case TracePhase::kCounter:
        out += StrFormat("{\"ph\": \"C\", \"pid\": %d, \"tid\": %d, "
                         "\"ts\": %.3f, \"name\": \"%s\", "
                         "\"args\": {\"value\": %.3f}}",
                         kSimPid, tid, ts,
                         EscapeJson(event.name).c_str(), event.value);
        break;
    }
}

const char*
SimLaneName(SimLane lane)
{
    switch (lane) {
    case SimLane::kNpu: return "npu (prefill chunks)";
    case SimLane::kDecode: return "decode steps";
    case SimLane::kEvents: return "serving events";
    case SimLane::kFaults: return "faults / degradation";
    }
    return "?";
}

}  // namespace

std::string
Tracer::ChromeTraceJson() const
{
    std::vector<std::string> lines;

    {
        std::lock_guard<std::mutex> lock(mu_);
        lines.push_back(MetadataEvent(kWallPid, 0, "process_name",
                                      "numeric plane (wall clock)"));
        lines.push_back(MetadataEvent(kSimPid, 0, "process_name",
                                      "serving simulator (virtual time)"));
        for (const auto& buffer : buffers_) {
            lines.push_back(MetadataEvent(kWallPid, buffer->tid,
                                          "thread_name", buffer->name));
        }
        for (SimLane lane : {SimLane::kNpu, SimLane::kDecode,
                             SimLane::kEvents, SimLane::kFaults}) {
            lines.push_back(MetadataEvent(kSimPid,
                                          static_cast<int>(lane),
                                          "thread_name",
                                          SimLaneName(lane)));
        }
        for (const auto& buffer : buffers_) {
            const uint64_t head =
                buffer->head.load(std::memory_order_acquire);
            const uint64_t cap = buffer->ring.size();
            const uint64_t stored = std::min<uint64_t>(head, cap);
            for (uint64_t e = head - stored; e < head; ++e) {
                std::string line;
                AppendWallEvent(
                    line, buffer->ring[static_cast<size_t>(e % cap)],
                    buffer->tid);
                lines.push_back(std::move(line));
            }
        }
        for (const SimEvent& event : sim_events_) {
            std::string line;
            AppendSimEvent(line, event);
            lines.push_back(std::move(line));
        }
    }

    std::string out = "{\n\"displayTimeUnit\": \"ms\",\n";
    out += StrFormat("\"otherData\": {\"tracer\": \"llmnpu\", "
                     "\"recorded\": %llu, \"dropped\": %llu, "
                     "\"metrics\": %s},\n",
                     static_cast<unsigned long long>(TotalRecorded()),
                     static_cast<unsigned long long>(TotalDropped()),
                     MetricsRegistry::Global().DumpJson().c_str());
    out += "\"traceEvents\": [\n";
    for (size_t i = 0; i < lines.size(); ++i) {
        out += lines[i];
        if (i + 1 < lines.size()) out += ',';
        out += '\n';
    }
    out += "]\n}\n";
    return out;
}

bool
Tracer::WriteChromeTrace(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string json = ChromeTraceJson();
    const size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = written == json.size() && std::fclose(f) == 0;
    if (!ok && written != json.size()) std::fclose(f);
    return ok;
}

}  // namespace obs
}  // namespace llmnpu
