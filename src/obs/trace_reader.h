/**
 * @file
 * Reader for the tracer's Chrome trace-event JSON: a small recursive-
 * descent JSON parser (strict enough to validate the exporter in tests)
 * plus a typed view of the trace events for examples/trace_dump.
 */
#ifndef LLMNPU_OBS_TRACE_READER_H
#define LLMNPU_OBS_TRACE_READER_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace llmnpu {
namespace obs {

/** One parsed JSON value. Numbers are doubles (trace values all fit). */
struct JsonValue {
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    /** Insertion order is not preserved; trace tooling keys by name. */
    std::map<std::string, JsonValue> object;

    bool Has(const std::string& key) const;
    /** The member, which must exist (checked). */
    const JsonValue& At(const std::string& key) const;
};

/**
 * Parses a complete JSON document. @return true and fills `out` on
 * success; false with a position/diagnostic in `error` on malformed input
 * (including trailing garbage).
 */
bool ParseJson(const std::string& text, JsonValue* out,
               std::string* error);

/** One trace event in reader form. */
struct ReadEvent {
    std::string ph;    ///< "X", "i", "C", "M"
    std::string name;
    std::string cat;
    int pid = 0;
    int tid = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;
    std::map<std::string, JsonValue> args;
};

/** The decoded trace document. */
struct ReadTrace {
    std::vector<ReadEvent> events;
    std::map<int, std::string> process_names;           ///< pid -> name
    std::map<std::pair<int, int>, std::string> thread_names;
    JsonValue other_data;  ///< the exporter's "otherData" object
};

/**
 * Parses an exported trace file's contents. @return true on success;
 * false with `error` set when the JSON is malformed or the document lacks
 * the trace-event structure.
 */
bool ReadChromeTrace(const std::string& text, ReadTrace* out,
                     std::string* error);

}  // namespace obs
}  // namespace llmnpu

#endif  // LLMNPU_OBS_TRACE_READER_H
