/**
 * @file
 * Fixed-bucket histogram + the single exact-quantile implementation.
 *
 * Every percentile in the codebase routes through SamplePercentile: the
 * serving report quantiles (src/serving/metrics.cc), the generic
 * util/stats.h Percentile helper, and Histogram::Percentile all share this
 * one definition, so a quantile printed by a bench and a quantile asserted
 * by a test can never drift apart. Header-only so util/stats.h can include
 * it without a library cycle (obs sits below util in the link graph).
 *
 * The histogram keeps two views of its samples: fixed bucket counts (cheap
 * to export, stable memory) and the exact sample list (exact percentiles —
 * the sample volumes here are per-request latencies, thousands per run,
 * not per-event rates). Add() is mutex-guarded: histograms record cold
 * per-request aggregates, never per-tile hot-path events (those go through
 * the tracer's lock-free ring buffers instead).
 */
#ifndef LLMNPU_OBS_HISTOGRAM_H
#define LLMNPU_OBS_HISTOGRAM_H

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/util/check.h"

namespace llmnpu {
namespace obs {

/** Linear-interpolated percentile, p in [0, 100]. Sorts a copy. An empty
 *  sample is a legitimate aggregate (e.g. an all-rejected serving trace)
 *  and yields a well-defined 0.0, never NaN or a panic. */
inline double
SamplePercentile(std::vector<double> xs, double p)
{
    if (xs.empty()) return 0.0;
    LLMNPU_CHECK_GE(p, 0.0);
    LLMNPU_CHECK_LE(p, 100.0);
    std::sort(xs.begin(), xs.end());
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

/** Bucket upper bounds for millisecond latencies: a 1-2-5 series from
 *  0.1 ms to 100 s (values above the last bound land in the overflow
 *  bucket). */
inline std::vector<double>
DefaultLatencyBucketsMs()
{
    std::vector<double> bounds;
    for (double decade = 0.1; decade < 2e5; decade *= 10.0) {
        bounds.push_back(decade);
        bounds.push_back(decade * 2.0);
        bounds.push_back(decade * 5.0);
    }
    return bounds;
}

/**
 * Thread-safe fixed-bucket histogram with exact retained samples.
 *
 * `bounds` are ascending bucket upper bounds; bucket i counts samples
 * x <= bounds[i] (first match), with one extra overflow bucket past the
 * last bound.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds = DefaultLatencyBucketsMs())
        : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0)
    {
        for (size_t i = 1; i < bounds_.size(); ++i) {
            LLMNPU_CHECK_GT(bounds_[i], bounds_[i - 1]);
        }
    }

    void
    Add(double x)
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it =
            std::lower_bound(bounds_.begin(), bounds_.end(), x);
        ++buckets_[static_cast<size_t>(it - bounds_.begin())];
        samples_.push_back(x);
        sum_ += x;
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    int64_t
    count() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return static_cast<int64_t>(samples_.size());
    }

    double
    sum() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return sum_;
    }

    double
    mean() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return samples_.empty()
                   ? 0.0
                   : sum_ / static_cast<double>(samples_.size());
    }

    double
    min() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return samples_.empty() ? 0.0 : min_;
    }

    double
    max() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return samples_.empty() ? 0.0 : max_;
    }

    /** Exact percentile over every sample added since the last Reset. */
    double
    Percentile(double p) const
    {
        std::vector<double> copy;
        {
            std::lock_guard<std::mutex> lock(mu_);
            copy = samples_;
        }
        return SamplePercentile(std::move(copy), p);
    }

    const std::vector<double>& bounds() const { return bounds_; }

    std::vector<int64_t>
    BucketCounts() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return buckets_;
    }

    void
    Reset()
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::fill(buckets_.begin(), buckets_.end(), 0);
        samples_.clear();
        sum_ = 0.0;
        min_ = 1e300;
        max_ = -1e300;
    }

  private:
    mutable std::mutex mu_;
    std::vector<double> bounds_;
    std::vector<int64_t> buckets_;
    std::vector<double> samples_;
    double sum_ = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
};

}  // namespace obs
}  // namespace llmnpu

#endif  // LLMNPU_OBS_HISTOGRAM_H
