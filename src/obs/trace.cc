#include "src/obs/trace.h"

#include <algorithm>
#include <cstdlib>

namespace llmnpu {
namespace obs {

std::atomic<bool> g_trace_runtime_enabled{false};

thread_local ThreadBuffer* Tracer::tls_buffer_ = nullptr;
thread_local std::string Tracer::tls_thread_name_;

Tracer&
Tracer::Global()
{
    // Leaked on purpose: ThreadPool workers hold raw buffer pointers and
    // may record during static destruction of unrelated objects.
    static Tracer* tracer = new Tracer();
    return *tracer;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now())
{
    if (const char* env = std::getenv("LLMNPU_TRACE_CAPACITY")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0) capacity_ = static_cast<size_t>(v);
    }
}

uint64_t
Tracer::NowNs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
Tracer::Enable(size_t capacity_per_thread)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (capacity_per_thread > 0 &&
            capacity_per_thread != capacity_) {
            capacity_ = capacity_per_thread;
            for (auto& buffer : buffers_) {
                buffer->ring.assign(capacity_, TraceEvent{});
                buffer->head.store(0, std::memory_order_relaxed);
            }
        }
    }
    g_trace_runtime_enabled.store(true, std::memory_order_relaxed);
}

void
Tracer::Disable()
{
    g_trace_runtime_enabled.store(false, std::memory_order_relaxed);
}

void
Tracer::Reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& buffer : buffers_) {
        buffer->head.store(0, std::memory_order_relaxed);
    }
    sim_events_.clear();
}

ThreadBuffer*
Tracer::RegisterThisThread()
{
    std::lock_guard<std::mutex> lock(mu_);
    auto buffer = std::make_unique<ThreadBuffer>(capacity_);
    buffer->tid = static_cast<int>(buffers_.size());
    buffer->name = tls_thread_name_.empty()
                       ? (buffer->tid == 0 ? "main" : "thread")
                       : tls_thread_name_;
    tls_buffer_ = buffer.get();
    buffers_.push_back(std::move(buffer));
    return tls_buffer_;
}

void
Tracer::SetThreadName(std::string name)
{
    tls_thread_name_ = std::move(name);
    if (tls_buffer_ != nullptr) {
        std::lock_guard<std::mutex> lock(Global().mu_);
        tls_buffer_->name = tls_thread_name_;
    }
}

void
Tracer::RecordSim(SimEvent event)
{
    std::lock_guard<std::mutex> lock(mu_);
    sim_events_.push_back(std::move(event));
}

uint64_t
Tracer::TotalRecorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto& buffer : buffers_) {
        total += buffer->head.load(std::memory_order_acquire);
    }
    return total;
}

uint64_t
Tracer::TotalDropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t dropped = 0;
    for (const auto& buffer : buffers_) {
        const uint64_t head =
            buffer->head.load(std::memory_order_acquire);
        const uint64_t cap = buffer->ring.size();
        if (head > cap) dropped += head - cap;
    }
    return dropped;
}

uint64_t
Tracer::TotalStored() const
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t stored = 0;
    for (const auto& buffer : buffers_) {
        const uint64_t head =
            buffer->head.load(std::memory_order_acquire);
        stored += std::min<uint64_t>(head, buffer->ring.size());
    }
    return stored;
}

size_t
Tracer::NumThreadBuffers() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return buffers_.size();
}

size_t
Tracer::NumSimEvents() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sim_events_.size();
}

std::vector<TraceEvent>
Tracer::StoredEvents() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TraceEvent> events;
    for (const auto& buffer : buffers_) {
        const uint64_t head =
            buffer->head.load(std::memory_order_acquire);
        const uint64_t cap = buffer->ring.size();
        const uint64_t stored = std::min<uint64_t>(head, cap);
        for (uint64_t e = head - stored; e < head; ++e) {
            events.push_back(
                buffer->ring[static_cast<size_t>(e % cap)]);
        }
    }
    return events;
}

}  // namespace obs
}  // namespace llmnpu
