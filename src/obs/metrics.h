/**
 * @file
 * Process-wide metrics registry: counters, gauges, fixed-bucket
 * histograms, looked up by stable dotted names.
 *
 * This is the single source of truth the scattered ad-hoc stats migrated
 * onto: DecodeBackend's HandoffStats, the serving simulator's KV-pool
 * peak/eviction bookkeeping, KvPagePool occupancy, ThreadPool queue depth
 * and per-thread busy time, and the per-request TTFT/TPOT histograms
 * behind ServingReport. Old accessors remain as thin reads (usually
 * "global counter minus a snapshot taken at construction/reset"), so
 * callers and tests are unchanged while every number flows through one
 * place.
 *
 * Concurrency: GetCounter/GetGauge/GetHistogram take a mutex (cache the
 * returned reference on hot paths); the returned objects have stable
 * addresses for the registry's lifetime. Counter/Gauge updates are
 * lock-free atomics; Histogram::Add is mutex-guarded (cold, per-request
 * granularity).
 */
#ifndef LLMNPU_OBS_METRICS_H
#define LLMNPU_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/histogram.h"

namespace llmnpu {
namespace obs {

/** Monotonic (between resets) lock-free counter. */
class Counter
{
  public:
    void
    Add(int64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void Reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/** Last-writer-wins gauge with a peak-since-reset watermark. */
class Gauge
{
  public:
    void
    Set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
        UpdatePeak(v);
    }

    void
    Add(double delta)
    {
        double prev = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(prev, prev + delta,
                                             std::memory_order_relaxed)) {
        }
        UpdatePeak(prev + delta);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Highest value seen since construction or the last ResetPeak. */
    double
    peak() const
    {
        return peak_.load(std::memory_order_relaxed);
    }

    /** Restarts the watermark from the current value. */
    void ResetPeak() { peak_.store(value(), std::memory_order_relaxed); }

    void
    Reset()
    {
        value_.store(0.0, std::memory_order_relaxed);
        peak_.store(0.0, std::memory_order_relaxed);
    }

  private:
    void
    UpdatePeak(double v)
    {
        double prev = peak_.load(std::memory_order_relaxed);
        while (v > prev &&
               !peak_.compare_exchange_weak(prev, v,
                                            std::memory_order_relaxed)) {
        }
    }

    std::atomic<double> value_{0.0};
    std::atomic<double> peak_{0.0};
};

class MetricsRegistry
{
  public:
    /** Process-wide registry; leaked like the tracer (workers may update
     *  cached counters during static destruction). */
    static MetricsRegistry& Global();

    /** Looks up (creating on first use) the named metric. The reference
     *  stays valid for the registry's lifetime; crashes if the name is
     *  already registered as a different metric type. */
    Counter& GetCounter(const std::string& name);
    Gauge& GetGauge(const std::string& name);
    /** `bounds` applies only on first creation (empty = default
     *  millisecond-latency buckets). */
    Histogram& GetHistogram(const std::string& name,
                            std::vector<double> bounds = {});

    /** Zeroes every registered metric (names stay registered). */
    void ResetAll();

    /** Registered metric names by kind, sorted (for tests/tools). */
    std::vector<std::string> CounterNames() const;
    std::vector<std::string> GaugeNames() const;
    std::vector<std::string> HistogramNames() const;

    /** "name value" lines, sorted by name — the human dump. */
    std::string DumpText() const;

    /** One JSON object {"counters": {...}, "gauges": {...},
     *  "histograms": {...}} — embedded in the trace export. */
    std::string DumpJson() const;

  private:
    MetricsRegistry() = default;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace llmnpu

#endif  // LLMNPU_OBS_METRICS_H
