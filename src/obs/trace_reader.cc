#include "src/obs/trace_reader.h"

#include <cctype>
#include <cstdlib>

#include "src/util/check.h"
#include "src/util/format.h"

namespace llmnpu {
namespace obs {

bool
JsonValue::Has(const std::string& key) const
{
    return type == Type::kObject && object.find(key) != object.end();
}

const JsonValue&
JsonValue::At(const std::string& key) const
{
    LLMNPU_CHECK(type == Type::kObject);
    const auto it = object.find(key);
    LLMNPU_CHECK(it != object.end());
    return it->second;
}

namespace {

/** Recursive-descent parser over the whole document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    bool
    Parse(JsonValue* out, std::string* error)
    {
        SkipWs();
        if (!ParseValue(out)) {
            *error = error_;
            return false;
        }
        SkipWs();
        if (pos_ != text_.size()) {
            *error = StrFormat("trailing garbage at offset %zu", pos_);
            return false;
        }
        return true;
    }

  private:
    bool
    Fail(const std::string& what)
    {
        if (error_.empty()) {
            error_ = StrFormat("%s at offset %zu", what.c_str(), pos_);
        }
        return false;
    }

    void
    SkipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    Consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    ParseValue(JsonValue* out)
    {
        if (pos_ >= text_.size()) return Fail("unexpected end");
        const char c = text_[pos_];
        if (c == '{') return ParseObject(out);
        if (c == '[') return ParseArray(out);
        if (c == '"') {
            out->type = JsonValue::Type::kString;
            return ParseString(&out->str);
        }
        if (c == 't' || c == 'f') return ParseLiteral(out);
        if (c == 'n') return ParseLiteral(out);
        return ParseNumber(out);
    }

    bool
    ParseLiteral(JsonValue* out)
    {
        auto match = [&](const char* word) {
            const size_t len = std::string(word).size();
            if (text_.compare(pos_, len, word) == 0) {
                pos_ += len;
                return true;
            }
            return false;
        };
        if (match("true")) {
            out->type = JsonValue::Type::kBool;
            out->boolean = true;
            return true;
        }
        if (match("false")) {
            out->type = JsonValue::Type::kBool;
            out->boolean = false;
            return true;
        }
        if (match("null")) {
            out->type = JsonValue::Type::kNull;
            return true;
        }
        return Fail("bad literal");
    }

    bool
    ParseNumber(JsonValue* out)
    {
        const size_t start = pos_;
        if (Consume('-')) {
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) return Fail("bad number");
        const std::string token = text_.substr(start, pos_ - start);
        // JSON forbids leading zeros ("01") and a bare minus.
        const size_t d = token[0] == '-' ? 1 : 0;
        if (token.size() == d) return Fail("bad number");
        if (token[d] == '0' && token.size() > d + 1 &&
            std::isdigit(static_cast<unsigned char>(token[d + 1]))) {
            return Fail("bad number");
        }
        char* end = nullptr;
        out->type = JsonValue::Type::kNumber;
        out->number = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') return Fail("bad number");
        return true;
    }

    bool
    ParseString(std::string* out)
    {
        if (!Consume('"')) return Fail("expected '\"'");
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return true;
            if (static_cast<unsigned char>(c) < 0x20) {
                return Fail("raw control char in string");
            }
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (pos_ >= text_.size()) return Fail("bad escape");
            const char e = text_[pos_++];
            switch (e) {
            case '"': *out += '"'; break;
            case '\\': *out += '\\'; break;
            case '/': *out += '/'; break;
            case 'n': *out += '\n'; break;
            case 't': *out += '\t'; break;
            case 'r': *out += '\r'; break;
            case 'b': *out += '\b'; break;
            case 'f': *out += '\f'; break;
            case 'u': {
                if (pos_ + 4 > text_.size()) return Fail("bad \\u");
                for (int i = 0; i < 4; ++i) {
                    if (!std::isxdigit(static_cast<unsigned char>(
                            text_[pos_ + static_cast<size_t>(i)]))) {
                        return Fail("bad \\u");
                    }
                }
                const long code = std::strtol(
                    text_.substr(pos_, 4).c_str(), nullptr, 16);
                pos_ += 4;
                // The exporter only emits \u00xx; decode the Latin-1
                // range, pass anything else through replaced.
                *out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
            }
            default: return Fail("bad escape");
            }
        }
        return Fail("unterminated string");
    }

    bool
    ParseArray(JsonValue* out)
    {
        if (!Consume('[')) return Fail("expected '['");
        out->type = JsonValue::Type::kArray;
        SkipWs();
        if (Consume(']')) return true;
        for (;;) {
            JsonValue element;
            SkipWs();
            if (!ParseValue(&element)) return false;
            out->array.push_back(std::move(element));
            SkipWs();
            if (Consume(']')) return true;
            if (!Consume(',')) return Fail("expected ',' or ']'");
        }
    }

    bool
    ParseObject(JsonValue* out)
    {
        if (!Consume('{')) return Fail("expected '{'");
        out->type = JsonValue::Type::kObject;
        SkipWs();
        if (Consume('}')) return true;
        for (;;) {
            SkipWs();
            std::string key;
            if (!ParseString(&key)) return false;
            SkipWs();
            if (!Consume(':')) return Fail("expected ':'");
            SkipWs();
            JsonValue value;
            if (!ParseValue(&value)) return false;
            out->object[key] = std::move(value);
            SkipWs();
            if (Consume('}')) return true;
            if (!Consume(',')) return Fail("expected ',' or '}'");
        }
    }

    const std::string& text_;
    size_t pos_ = 0;
    std::string error_;
};

}  // namespace

bool
ParseJson(const std::string& text, JsonValue* out, std::string* error)
{
    return JsonParser(text).Parse(out, error);
}

bool
ReadChromeTrace(const std::string& text, ReadTrace* out,
                std::string* error)
{
    JsonValue doc;
    if (!ParseJson(text, &doc, error)) return false;
    if (doc.type != JsonValue::Type::kObject || !doc.Has("traceEvents")) {
        *error = "document is not a trace (no traceEvents)";
        return false;
    }
    const JsonValue& events = doc.At("traceEvents");
    if (events.type != JsonValue::Type::kArray) {
        *error = "traceEvents is not an array";
        return false;
    }
    if (doc.Has("otherData")) out->other_data = doc.At("otherData");

    for (const JsonValue& raw : events.array) {
        if (raw.type != JsonValue::Type::kObject || !raw.Has("ph") ||
            !raw.Has("name")) {
            *error = "event without ph/name";
            return false;
        }
        ReadEvent event;
        event.ph = raw.At("ph").str;
        event.name = raw.At("name").str;
        if (raw.Has("cat")) event.cat = raw.At("cat").str;
        if (raw.Has("pid")) {
            event.pid = static_cast<int>(raw.At("pid").number);
        }
        if (raw.Has("tid")) {
            event.tid = static_cast<int>(raw.At("tid").number);
        }
        if (raw.Has("ts")) event.ts_us = raw.At("ts").number;
        if (raw.Has("dur")) event.dur_us = raw.At("dur").number;
        if (raw.Has("args")) event.args = raw.At("args").object;

        if (event.ph == "M") {
            const std::string track_name =
                event.args.count("name") ? event.args.at("name").str : "";
            if (event.name == "process_name") {
                out->process_names[event.pid] = track_name;
            } else if (event.name == "thread_name") {
                out->thread_names[{event.pid, event.tid}] = track_name;
            }
        }
        out->events.push_back(std::move(event));
    }
    return true;
}

}  // namespace obs
}  // namespace llmnpu
