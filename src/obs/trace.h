/**
 * @file
 * Low-overhead span/event tracer with Chrome trace-event export.
 *
 * Two lanes, one merged trace:
 *
 *  - The **wall-clock lane** (numeric plane): per-thread fixed-capacity
 *    ring buffers of plain-old-data events. The hot path takes no locks —
 *    one relaxed atomic load to test the enable flag, then a slot write
 *    and a release store of the per-thread head counter. Timestamps are
 *    monotonic (steady_clock) nanoseconds since tracer construction. A
 *    full ring wraps (flight-recorder semantics): the newest events win,
 *    overwritten ones are counted as dropped, and wrapping is never UB.
 *    Event names are `const char*` and must be string literals (or
 *    otherwise outlive the tracer) — the hot path never allocates.
 *
 *  - The **simulator lane** (serving plane): the discrete-event simulator
 *    runs in virtual milliseconds on one thread, so its events carry
 *    explicit virtual timestamps, may own heap strings, and go through a
 *    mutex — it is cold by construction. Exported as a separate Perfetto
 *    process so virtual time never mixes with wall time on one track;
 *    request ids in span args connect the two planes.
 *
 * Gating: `LLMNPU_TRACE_*` macros compile to no-ops when
 * LLMNPU_TRACE_DISABLED is defined (CMake -DLLMNPU_TRACE=OFF), and branch
 * on one relaxed atomic when compiled in (the default). Tracing is off at
 * process start; benches/tests call Tracer::Global().Enable().
 *
 * Concurrency contract: Record() is safe from any thread at any time.
 * Enable/Disable/Reset/export/introspection require wall-lane quiescence —
 * no concurrent Record() calls. Every producer in this codebase runs under
 * ThreadPool::ParallelFor, which is synchronous (workers idle between
 * jobs), so "after the kernels returned" is quiescent; the release store
 * on head + acquire load at export makes the handoff TSan-clean.
 */
#ifndef LLMNPU_OBS_TRACE_H
#define LLMNPU_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace llmnpu {
namespace obs {

#if defined(LLMNPU_TRACE_DISABLED)
#define LLMNPU_TRACE_ENABLED 0
#else
#define LLMNPU_TRACE_ENABLED 1
#endif

/** Runtime enable flag; the one branch every compiled-in site pays. */
extern std::atomic<bool> g_trace_runtime_enabled;

inline bool
TraceEnabled()
{
    return g_trace_runtime_enabled.load(std::memory_order_relaxed);
}

enum class TracePhase : uint8_t {
    kSpan,     ///< complete duration event ("X"): [t0_ns, t1_ns]
    kInstant,  ///< point event ("i") at t0_ns
    kCounter,  ///< counter sample ("C"): value at t0_ns
};

/** One wall-lane event. POD; names/categories must be static strings.
 *  Negative int args mean "absent" and are omitted from the export. */
struct TraceEvent {
    const char* name = nullptr;
    const char* cat = nullptr;
    uint64_t t0_ns = 0;
    uint64_t t1_ns = 0;
    double value = 0.0;  ///< kCounter only
    int32_t req = -1;    ///< serving request id
    int32_t seq = -1;    ///< BatchedKvCache slot
    int32_t layer = -1;
    int32_t extra = -1;               ///< value of the ad-hoc arg
    const char* extra_name = nullptr; ///< name of the ad-hoc arg
    TracePhase phase = TracePhase::kInstant;
};

/** Perfetto track a simulator-lane event renders on. */
enum class SimLane : int {
    kNpu = 0,     ///< prefill chunks (exclusive NPU intervals)
    kDecode = 1,  ///< continuously batched decode steps
    kEvents = 2,  ///< arrivals, rejections, evictions, counters
    kFaults = 3,  ///< injected faults, retries, failovers, brownout sheds
};

/** One simulator-lane event, in virtual milliseconds. Cold path: may own
 *  strings; `args_json` is extra preformatted `"key": value` pairs (no
 *  surrounding braces) appended to the exported args object. */
struct SimEvent {
    std::string name;
    std::string args_json;
    const char* cat = "serving";
    double t0_ms = 0.0;
    double t1_ms = 0.0;
    double value = 0.0;
    int req = -1;
    TracePhase phase = TracePhase::kInstant;
    SimLane lane = SimLane::kEvents;
};

/** Per-thread ring buffer; owned by the tracer, never deallocated (worker
 *  threads cache a raw pointer for the process lifetime). */
struct ThreadBuffer {
    explicit ThreadBuffer(size_t capacity) : ring(capacity) {}

    std::vector<TraceEvent> ring;
    /** Events ever recorded; slot for event e is ring[e % capacity]. The
     *  release store here pairs with the acquire load at export. */
    std::atomic<uint64_t> head{0};
    std::string name;
    int tid = 0;
};

class Tracer
{
  public:
    /** Process-wide tracer. Intentionally leaked: pool workers may touch
     *  their buffers during static destruction. */
    static Tracer& Global();

    /** Default ring capacity per thread (events), overridable per Enable
     *  call or via LLMNPU_TRACE_CAPACITY. */
    static constexpr size_t kDefaultCapacity = 1 << 15;

    /** Turns recording on. `capacity_per_thread` = 0 keeps the current
     *  capacity (env LLMNPU_TRACE_CAPACITY or the default); a nonzero
     *  value resizes existing (quiescent) rings. */
    void Enable(size_t capacity_per_thread = 0);

    void Disable();

    /** Drops all recorded events (both lanes); keeps the enabled state and
     *  registered thread buffers. Requires quiescence. */
    void Reset();

    /** Monotonic nanoseconds since tracer construction. */
    uint64_t NowNs() const;

    /** Records one wall-lane event into this thread's ring. Lock-free
     *  after the thread's first event (which registers the buffer). */
    void
    Record(const TraceEvent& event)
    {
        ThreadBuffer* buffer = tls_buffer_;
        if (buffer == nullptr) buffer = RegisterThisThread();
        const uint64_t slot =
            buffer->head.load(std::memory_order_relaxed);
        buffer->ring[static_cast<size_t>(slot % buffer->ring.size())] =
            event;
        buffer->head.store(slot + 1, std::memory_order_release);
    }

    /** Records one simulator-lane event (mutex-guarded; cold path). */
    void RecordSim(SimEvent event);

    /** Names the calling thread's track in the export ("pool-worker-3").
     *  Safe whether or not tracing is enabled. */
    static void SetThreadName(std::string name);

    // ---- Introspection + export; all require wall-lane quiescence.

    /** Wall-lane events ever recorded (stored + dropped). */
    uint64_t TotalRecorded() const;
    /** Wall-lane events overwritten by ring wrap-around. */
    uint64_t TotalDropped() const;
    /** Wall-lane events currently held in the rings. */
    uint64_t TotalStored() const;
    size_t NumThreadBuffers() const;
    size_t NumSimEvents() const;

    /** Every stored wall-lane event, grouped by thread, oldest first
     *  within each thread. */
    std::vector<TraceEvent> StoredEvents() const;

    /** The full Chrome trace-event JSON document (both lanes, thread and
     *  process metadata, a metrics-registry snapshot under "otherData"). */
    std::string ChromeTraceJson() const;

    /** Writes ChromeTraceJson() to `path`; false on I/O failure. */
    bool WriteChromeTrace(const std::string& path) const;

  private:
    Tracer();

    ThreadBuffer* RegisterThisThread();

    static thread_local ThreadBuffer* tls_buffer_;
    static thread_local std::string tls_thread_name_;

    mutable std::mutex mu_;  ///< guards buffers_/sim_events_/capacity_
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    std::vector<SimEvent> sim_events_;
    size_t capacity_ = kDefaultCapacity;
    std::chrono::steady_clock::time_point epoch_;
};

/**
 * RAII span: arms on construction when tracing is enabled, records one
 * complete event on destruction. The disabled cost is the TraceEnabled()
 * branch; use the LLMNPU_TRACE_SPAN macros so even that compiles out under
 * LLMNPU_TRACE_DISABLED.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char* name, const char* cat)
    {
        if (TraceEnabled()) Arm(name, cat, -1, -1, -1, nullptr, -1);
    }

    ScopedSpan(const char* name, const char* cat, int req, int seq,
               int layer)
    {
        if (TraceEnabled()) Arm(name, cat, req, seq, layer, nullptr, -1);
    }

    ScopedSpan(const char* name, const char* cat, int req, int seq,
               int layer, const char* extra_name, int extra)
    {
        if (TraceEnabled()) Arm(name, cat, req, seq, layer, extra_name,
                                extra);
    }

    ~ScopedSpan()
    {
        if (event_.name == nullptr) return;
        event_.t1_ns = Tracer::Global().NowNs();
        Tracer::Global().Record(event_);
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

  private:
    void
    Arm(const char* name, const char* cat, int req, int seq, int layer,
        const char* extra_name, int extra)
    {
        event_.name = name;
        event_.cat = cat;
        event_.req = req;
        event_.seq = seq;
        event_.layer = layer;
        event_.extra_name = extra_name;
        event_.extra = extra;
        event_.phase = TracePhase::kSpan;
        event_.t0_ns = Tracer::Global().NowNs();
    }

    TraceEvent event_{};  ///< name == nullptr means disarmed
};

inline void
EmitInstant(const char* name, const char* cat, int req = -1, int seq = -1,
            int layer = -1, const char* extra_name = nullptr,
            int extra = -1)
{
    if (!TraceEnabled()) return;
    TraceEvent event;
    event.name = name;
    event.cat = cat;
    event.req = req;
    event.seq = seq;
    event.layer = layer;
    event.extra_name = extra_name;
    event.extra = extra;
    event.phase = TracePhase::kInstant;
    event.t0_ns = event.t1_ns = Tracer::Global().NowNs();
    Tracer::Global().Record(event);
}

inline void
EmitCounter(const char* name, double value)
{
    if (!TraceEnabled()) return;
    TraceEvent event;
    event.name = name;
    event.cat = "counter";
    event.value = value;
    event.phase = TracePhase::kCounter;
    event.t0_ns = event.t1_ns = Tracer::Global().NowNs();
    Tracer::Global().Record(event);
}

}  // namespace obs
}  // namespace llmnpu

#define LLMNPU_OBS_CONCAT_(a, b) a##b
#define LLMNPU_OBS_CONCAT(a, b) LLMNPU_OBS_CONCAT_(a, b)

#if LLMNPU_TRACE_ENABLED

/** Span over the enclosing scope. */
#define LLMNPU_TRACE_SPAN(name, cat)                                      \
    ::llmnpu::obs::ScopedSpan LLMNPU_OBS_CONCAT(llmnpu_span_, __LINE__)   \
    {                                                                     \
        (name), (cat)                                                     \
    }

/** Span carrying request/sequence/layer identity. */
#define LLMNPU_TRACE_SPAN_ID(name, cat, req, seq, layer)                  \
    ::llmnpu::obs::ScopedSpan LLMNPU_OBS_CONCAT(llmnpu_span_, __LINE__)   \
    {                                                                     \
        (name), (cat), (req), (seq), (layer)                              \
    }

/** Span with one extra named integer arg (e.g. "head", "rows"). */
#define LLMNPU_TRACE_SPAN_TILE(name, cat, req, seq, layer, extra_name,    \
                               extra)                                     \
    ::llmnpu::obs::ScopedSpan LLMNPU_OBS_CONCAT(llmnpu_span_, __LINE__)   \
    {                                                                     \
        (name), (cat), (req), (seq), (layer), (extra_name), (extra)       \
    }

#define LLMNPU_TRACE_INSTANT(name, cat) ::llmnpu::obs::EmitInstant((name), (cat))

#define LLMNPU_TRACE_INSTANT_ID(name, cat, req, seq, layer)               \
    ::llmnpu::obs::EmitInstant((name), (cat), (req), (seq), (layer))

#define LLMNPU_TRACE_COUNTER(name, value)                                 \
    ::llmnpu::obs::EmitCounter((name), (value))

#else  // !LLMNPU_TRACE_ENABLED: no-ops; sizeof keeps args "used" without
       // evaluating them, so disabled builds stay warning-clean.

#define LLMNPU_TRACE_SPAN(name, cat)                                      \
    do {                                                                  \
        (void)sizeof(name);                                               \
        (void)sizeof(cat);                                                \
    } while (0)
#define LLMNPU_TRACE_SPAN_ID(name, cat, req, seq, layer)                  \
    do {                                                                  \
        (void)sizeof(name);                                               \
        (void)sizeof(cat);                                                \
        (void)sizeof(req);                                                \
        (void)sizeof(seq);                                                \
        (void)sizeof(layer);                                              \
    } while (0)
#define LLMNPU_TRACE_SPAN_TILE(name, cat, req, seq, layer, extra_name,    \
                               extra)                                     \
    do {                                                                  \
        (void)sizeof(name);                                               \
        (void)sizeof(cat);                                                \
        (void)sizeof(req);                                                \
        (void)sizeof(seq);                                                \
        (void)sizeof(layer);                                              \
        (void)sizeof(extra_name);                                         \
        (void)sizeof(extra);                                              \
    } while (0)
#define LLMNPU_TRACE_INSTANT(name, cat)                                   \
    do {                                                                  \
        (void)sizeof(name);                                               \
        (void)sizeof(cat);                                                \
    } while (0)
#define LLMNPU_TRACE_INSTANT_ID(name, cat, req, seq, layer)               \
    do {                                                                  \
        (void)sizeof(name);                                               \
        (void)sizeof(cat);                                                \
        (void)sizeof(req);                                                \
        (void)sizeof(seq);                                                \
        (void)sizeof(layer);                                              \
    } while (0)
#define LLMNPU_TRACE_COUNTER(name, value)                                 \
    do {                                                                  \
        (void)sizeof(name);                                               \
        (void)sizeof(value);                                              \
    } while (0)

#endif  // LLMNPU_TRACE_ENABLED

#endif  // LLMNPU_OBS_TRACE_H
