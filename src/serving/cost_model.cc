#include "src/serving/cost_model.h"

#include <algorithm>

namespace llmnpu {

const ServingCostProfile&
ServingCostModel::Costs(const InferenceRequest& request)
{
    const std::pair<int, int> key{request.prompt_len, request.output_len};
    auto it = cache_.find(key);
    if (it == cache_.end()) {
        it = cache_.emplace(key, engine_.ServingCosts(config_, soc_, request))
                 .first;
    }
    return it->second;
}

double
ServingCostModel::IsolatedE2eMs(const InferenceRequest& request)
{
    const ServingCostProfile& profile = Costs(request);
    return profile.PrefillMs() +
           profile.decode_token_ms * request.output_len;
}

double
ServingCostModel::StepMs(DecodePlacement placement, int64_t ctx,
                         int batch) const
{
    const int64_t bucket = ((std::max<int64_t>(1, ctx) + 63) / 64) * 64;
    const std::tuple<int, int64_t, int> key{static_cast<int>(placement),
                                            bucket, batch};
    auto it = step_cache_.find(key);
    if (it == step_cache_.end()) {
        it = step_cache_
                 .emplace(key, engine_.DecodeStepMs(
                                   config_, soc_, placement, bucket, batch,
                                   default_batch_marginal_))
                 .first;
    }
    return it->second;
}

}  // namespace llmnpu
