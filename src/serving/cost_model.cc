#include "src/serving/cost_model.h"

namespace llmnpu {

const ServingCostProfile&
ServingCostModel::Costs(const InferenceRequest& request)
{
    const std::pair<int, int> key{request.prompt_len, request.output_len};
    auto it = cache_.find(key);
    if (it == cache_.end()) {
        it = cache_.emplace(key, engine_.ServingCosts(config_, soc_, request))
                 .first;
    }
    return it->second;
}

double
ServingCostModel::IsolatedE2eMs(const InferenceRequest& request)
{
    const ServingCostProfile& profile = Costs(request);
    return profile.PrefillMs() +
           profile.decode_token_ms * request.output_len;
}

}  // namespace llmnpu
