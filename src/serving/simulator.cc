#include "src/serving/simulator.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/format.h"

namespace llmnpu {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** A request between admission and prefill completion. */
struct PendingPrefill {
    int id = 0;
    int next_chunk = 0;
    const ServingCostProfile* profile = nullptr;

    double RemainingMs() const
    {
        double total = 0.0;
        for (size_t c = static_cast<size_t>(next_chunk);
             c < profile->chunk_ms.size(); ++c) {
            total += profile->chunk_ms[c];
        }
        return total;
    }
};

}  // namespace

ServingReport
ServingResult::Report() const
{
    ServingReport report = BuildReport(records, makespan_ms, npu_busy_ms,
                                       decode_busy_ms, preemptions);
    report.kv_pool_pages = kv_pool_pages;
    report.kv_pages_peak = kv_pages_peak;
    report.kv_pages_mean = kv_pages_mean;
    return report;
}

ServingSimulator::ServingSimulator(ServingCostModel& costs,
                                   std::vector<DatasetProfile> mix,
                                   ServingOptions options)
    : costs_(costs), mix_(std::move(mix)), options_(options)
{
    LLMNPU_CHECK(!mix_.empty());
    LLMNPU_CHECK_GT(options_.num_requests, 0);
    LLMNPU_CHECK_GT(options_.max_decode_batch, 0);
    LLMNPU_CHECK_GE(options_.decode_batch_marginal, 0.0);
    LLMNPU_CHECK_GE(options_.kv_pool_pages, 0);
    LLMNPU_CHECK_GT(options_.kv_page_size, 0);
    if (!options_.closed_loop) LLMNPU_CHECK_GT(options_.rate_rps, 0.0);
    if (options_.closed_loop) LLMNPU_CHECK_GT(options_.num_clients, 0);
}

ServingResult
ServingSimulator::Run()
{
    ServingResult result;
    result.records.reserve(static_cast<size_t>(options_.num_requests));

    // ---- Registry bookkeeping. The KV-occupancy peak and the eviction
    // count live in the process-wide registry; the ServingResult fields
    // are read back from it at the end of the run (thin reads), so the
    // registry is the single source of truth. Sim-lane trace events carry
    // virtual timestamps and are recorded only while tracing is on.
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    obs::Gauge& kv_gauge = reg.GetGauge("sim.kv_used_pages");
    obs::Counter& evict_counter = reg.GetCounter("sim.evictions");
    obs::Counter& preempt_counter = reg.GetCounter("sim.preemptions");
    obs::Counter& reject_counter = reg.GetCounter("sim.rejections");
    const int64_t evict_base = evict_counter.value();
    kv_gauge.Set(0.0);
    kv_gauge.ResetPeak();
    auto sim_emit = [&](obs::SimEvent event) {
        if (obs::TraceEnabled()) {
            obs::Tracer::Global().RecordSim(std::move(event));
        }
    };

    // ---- Arrival stream. Open loop: the whole Poisson trace up front.
    // Closed loop: a sampler plus a list of scheduled client wake-ups.
    RequestSampler sampler(mix_, options_.seed);
    std::vector<ArrivalEvent> open_arrivals;
    size_t next_open = 0;
    std::vector<double> client_wakeups;  // closed loop, unsorted
    int issued = 0;
    if (options_.closed_loop) {
        const int first_wave =
            std::min(options_.num_clients, options_.num_requests);
        for (int i = 0; i < first_wave; ++i) client_wakeups.push_back(0.0);
        issued = first_wave;
    } else {
        open_arrivals =
            GeneratePoissonArrivals(mix_, options_.rate_rps,
                                    options_.num_requests, options_.seed);
        issued = options_.num_requests;
    }

    // ---- Machine state.
    double now = 0.0;
    std::vector<PendingPrefill> prefill_queue;
    bool npu_busy = false;
    double npu_end = 0.0;
    double npu_interference = 0.0;  // of the in-flight chunk's profile
    PendingPrefill npu_job;
    double npu_start = 0.0;

    std::vector<int> decode_pool;  // prefilled requests, admission order
    std::vector<int> step_members;
    bool step_active = false;
    double step_remaining_work = 0.0;  // unscaled service ms still owed
    double step_last_update = 0.0;
    double step_start = 0.0;
    int step_counter = 0;

    auto decode_rate = [&]() {
        return npu_busy ? std::max(0.05, 1.0 - npu_interference) : 1.0;
    };

    // ---- KV page accounting. Usage (held pages per request, peak, time
    // integral) is tracked for every run; the budget gates admission,
    // dispatch and decode growth only when bounded (kv_pool_pages > 0).
    const bool kv_bounded = options_.kv_pool_pages > 0;
    const int64_t kv_page = options_.kv_page_size;
    auto pages_for = [&](int64_t positions) {
        return (positions + kv_page - 1) / kv_page;
    };
    std::vector<int64_t> kv_held;  // pages reserved, indexed by request id
    int64_t kv_free = options_.kv_pool_pages;
    int64_t kv_used = 0;
    double kv_integral = 0.0;  // pages x ms, for the time-mean occupancy
    result.kv_pool_pages = options_.kv_pool_pages;

    auto kv_note_usage = [&]() {
        kv_gauge.Set(static_cast<double>(kv_used));
        obs::SimEvent event;
        event.name = "sim.kv_used_pages";
        event.phase = obs::TracePhase::kCounter;
        event.t0_ms = now;
        event.value = static_cast<double>(kv_used);
        sim_emit(std::move(event));
    };
    auto kv_take = [&](int id, int64_t pages) {
        kv_free -= pages;
        kv_used += pages;
        kv_held[static_cast<size_t>(id)] += pages;
        kv_note_usage();
    };
    auto kv_drop_all = [&](int id) {
        int64_t& held = kv_held[static_cast<size_t>(id)];
        kv_free += held;
        kv_used -= held;
        held = 0;
        kv_note_usage();
    };

    auto admit = [&](const ArrivalEvent& event) {
        RequestRecord record;
        record.request.id = static_cast<int>(result.records.size());
        record.request.arrival_ms = event.arrival_ms;
        record.request.prompt_len = event.request.prompt_len;
        record.request.output_len = event.request.output_len;
        record.request.profile_index = event.profile_index;
        if (options_.slo_factor > 0.0) {
            record.request.deadline_ms =
                event.arrival_ms +
                options_.slo_factor * costs_.IsolatedE2eMs(event.request);
        }
        // Admission control: a request whose *whole* KV demand (prompt
        // plus every output token) exceeds the pool budget can never run
        // to completion — reject it at the door rather than let it starve
        // or thrash the pool. Requests that merely don't fit right now are
        // not rejected; they queue and wait for pages.
        const int64_t demand =
            pages_for(static_cast<int64_t>(record.request.prompt_len) +
                      record.request.output_len);
        if (kv_bounded && demand > options_.kv_pool_pages) {
            record.rejected = true;
            result.records.push_back(record);
            kv_held.push_back(0);
            ++result.rejected;
            reject_counter.Add(1);
            obs::SimEvent ev;
            ev.name = "sim.reject";
            ev.t0_ms = event.arrival_ms;
            ev.req = record.request.id;
            sim_emit(std::move(ev));
            // A closed-loop client whose request was refused comes back
            // after its think time, same as after a completion.
            if (options_.closed_loop && issued < options_.num_requests) {
                client_wakeups.push_back(event.arrival_ms +
                                         options_.think_time_ms);
                ++issued;
            }
            return;
        }
        result.records.push_back(record);
        kv_held.push_back(0);
        PendingPrefill pending;
        pending.id = record.request.id;
        pending.profile = &costs_.Costs(event.request);
        prefill_queue.push_back(pending);
        obs::SimEvent ev;
        ev.name = "sim.arrive";
        ev.t0_ms = event.arrival_ms;
        ev.req = record.request.id;
        sim_emit(std::move(ev));
    };

    auto start_chunk_if_idle = [&]() {
        if (npu_busy || prefill_queue.empty()) return;
        std::vector<QueueEntry> entries;
        std::vector<size_t> eligible;  // entries[i] <- prefill_queue index
        entries.reserve(prefill_queue.size());
        for (size_t qi = 0; qi < prefill_queue.size(); ++qi) {
            const PendingPrefill& pending = prefill_queue[qi];
            const RequestRecord& record =
                result.records[static_cast<size_t>(pending.id)];
            // A first chunk reserves the whole prompt's pages up front;
            // skip candidates the pool cannot hold right now (they stay
            // queued until retirements or evictions free pages). Requests
            // already mid-prefill hold their reservation and stay eligible.
            if (kv_bounded && pending.next_chunk == 0 &&
                pages_for(record.request.prompt_len) > kv_free) {
                continue;
            }
            QueueEntry entry;
            entry.request_id = pending.id;
            entry.arrival_ms = record.request.arrival_ms;
            entry.deadline_ms = record.request.deadline_ms;
            entry.remaining_prefill_ms = pending.RemainingMs();
            entry.remaining_total_ms =
                entry.remaining_prefill_ms +
                pending.profile->decode_token_ms *
                    record.request.output_len;
            entries.push_back(entry);
            eligible.push_back(qi);
        }
        if (entries.empty()) return;  // backpressured: NPU idles for pages
        const size_t pick =
            eligible[PickNext(options_.policy, entries, now)];
        npu_job = prefill_queue[pick];
        prefill_queue.erase(prefill_queue.begin() +
                            static_cast<long>(pick));
        RequestRecord& record =
            result.records[static_cast<size_t>(npu_job.id)];
        if (npu_job.next_chunk == 0) {
            // Queueing delay is measured to the *first ever* dispatch; an
            // eviction's re-prefill must not reset it.
            if (record.first_dispatch_ms < 0.0) {
                record.first_dispatch_ms = now;
            }
            kv_take(npu_job.id, pages_for(record.request.prompt_len));
        }
        const double duration =
            npu_job.profile->chunk_ms[static_cast<size_t>(
                npu_job.next_chunk)];
        npu_busy = true;
        npu_start = now;
        npu_end = now + duration;
        // The factor matching where this run's decode lives: the float
        // processor the chunk's float stages hold, or the NPU itself.
        npu_interference = npu_job.profile->DecodeInterference();
        result.npu_busy_ms += duration;
        if (step_active) {
            // The chunk's float stages steal decode bandwidth from the
            // step already in flight: that's a preemption.
            ++result.preemptions;
            preempt_counter.Add(1);
            for (int id : step_members) {
                ++result.records[static_cast<size_t>(id)].preemptions;
            }
            obs::SimEvent ev;
            ev.name = "sim.preempt";
            ev.t0_ms = now;
            ev.req = npu_job.id;
            sim_emit(std::move(ev));
        }
    };

    auto start_step_if_idle = [&]() {
        if (step_active || decode_pool.empty()) return;
        const size_t batch =
            std::min(decode_pool.size(),
                     static_cast<size_t>(options_.max_decode_batch));
        step_members.assign(decode_pool.begin(),
                            decode_pool.begin() + static_cast<long>(batch));
        double token_ms = 0.0;
        double engine_marginal = -1.0;
        for (int id : step_members) {
            const RequestRecord& record =
                result.records[static_cast<size_t>(id)];
            const ServingCostProfile& profile =
                costs_.Costs(record.request.AsInference());
            token_ms = std::max(token_ms, profile.decode_token_ms);
            // Engines that know their own batching marginal (NPU-resident
            // decode shares one weight stream per step) override the
            // configured default; the max across members keeps the step
            // cost conservative and independent of pool order, matching
            // token_ms.
            engine_marginal =
                std::max(engine_marginal, profile.decode_batch_marginal);
        }
        const double marginal = engine_marginal >= 0.0
                                    ? engine_marginal
                                    : options_.decode_batch_marginal;
        step_active = true;
        step_remaining_work =
            token_ms *
            (1.0 + (static_cast<double>(batch) - 1.0) * marginal);
        step_last_update = now;
        step_start = now;
    };

    auto next_arrival_time = [&]() {
        if (options_.closed_loop) {
            double best = kInf;
            for (double t : client_wakeups) best = std::min(best, t);
            return best;
        }
        return next_open < open_arrivals.size()
                   ? open_arrivals[next_open].arrival_ms
                   : kInf;
    };

    // ---- Event loop: next event is the earliest of {arrival, chunk
    // completion, decode-step completion at the current rate}. Decode work
    // drains continuously at a rate that drops while a chunk is in flight,
    // so its completion time is re-derived whenever the NPU state changes.
    while (true) {
        const double t_arrival = next_arrival_time();
        const double t_npu = npu_busy ? npu_end : kInf;
        const double t_step =
            step_active
                ? step_last_update + step_remaining_work / decode_rate()
                : kInf;
        const double t_next = std::min({t_arrival, t_npu, t_step});
        if (t_next == kInf) break;  // all quiet: run complete

        if (step_active) {
            step_remaining_work -= (t_next - step_last_update) *
                                   decode_rate();
            step_last_update = t_next;
        }
        kv_integral += static_cast<double>(kv_used) * (t_next - now);
        now = t_next;
        result.makespan_ms = std::max(result.makespan_ms, now);

        if (t_next == t_arrival) {
            if (options_.closed_loop) {
                auto it = std::min_element(client_wakeups.begin(),
                                           client_wakeups.end());
                client_wakeups.erase(it);
                ArrivalEvent event = sampler.Sample();
                event.arrival_ms = now;
                admit(event);
            } else {
                admit(open_arrivals[next_open++]);
            }
        } else if (t_next == t_npu) {
            result.trace_tasks.push_back(
                {StrFormat("req%d.chunk%d", npu_job.id, npu_job.next_chunk),
                 Unit::kNpu, npu_end - npu_start, {}, npu_job.next_chunk,
                 -1});
            result.trace.records.push_back({npu_start, npu_end});
            {
                obs::SimEvent ev;
                ev.name = StrFormat("req%d.chunk%d", npu_job.id,
                                    npu_job.next_chunk);
                ev.phase = obs::TracePhase::kSpan;
                ev.lane = obs::SimLane::kNpu;
                ev.t0_ms = npu_start;
                ev.t1_ms = npu_end;
                ev.req = npu_job.id;
                ev.args_json = StrFormat("\"chunk\": %d", npu_job.next_chunk);
                sim_emit(std::move(ev));
            }
            result.replay_steps.push_back(
                {/*is_prefill=*/true,
                 {npu_job.id},
                 npu_job.next_chunk,
                 static_cast<int>(npu_job.profile->chunk_ms.size())});
            npu_busy = false;
            ++npu_job.next_chunk;
            if (static_cast<size_t>(npu_job.next_chunk) <
                npu_job.profile->chunk_ms.size()) {
                prefill_queue.push_back(npu_job);
            } else {
                RequestRecord& record =
                    result.records[static_cast<size_t>(npu_job.id)];
                record.prefill_done_ms = now;
                decode_pool.push_back(npu_job.id);
            }
        } else {  // decode step completes
            const double elapsed = now - step_start;
            // Decode steps are always traced on the CPU lane, even when
            // their placement is the NPU: an NPU-resident decode step
            // time-slices the accelerator with in-flight prefill chunks
            // (that contention is priced by npu_decode_interference), so
            // its NPU occupancy is not an exclusive interval and cannot
            // join the chunk rows on the kNpu lane without violating the
            // trace's one-task-per-unit invariant. The CPU lane records
            // the step's wall-clock residency; npu_busy_ms stays
            // chunks-only either way.
            result.trace_tasks.push_back(
                {StrFormat("decode.step%d(B=%zu)", step_counter,
                           step_members.size()),
                 Unit::kCpu, elapsed, {}, -1, -1});
            result.trace.records.push_back({step_start, now});
            {
                obs::SimEvent ev;
                ev.name = StrFormat("decode.step%d", step_counter);
                ev.phase = obs::TracePhase::kSpan;
                ev.lane = obs::SimLane::kDecode;
                ev.t0_ms = step_start;
                ev.t1_ms = now;
                ev.args_json = StrFormat(
                    "\"batch\": %d",
                    static_cast<int>(step_members.size()));
                sim_emit(std::move(ev));
            }
            result.replay_steps.push_back(
                {/*is_prefill=*/false, step_members, -1, 0});
            ++step_counter;
            result.decode_busy_ms += elapsed;
            step_active = false;
            for (int id : step_members) {
                RequestRecord& record =
                    result.records[static_cast<size_t>(id)];
                ++record.tokens_out;
                // TTFT is to the first token *ever* emitted; an evicted
                // request's re-decode must not reset it.
                if (record.tokens_out == 1 && record.first_token_ms < 0.0) {
                    record.first_token_ms = now;
                    obs::SimEvent ev;
                    ev.name = "sim.first_token";
                    ev.t0_ms = now;
                    ev.req = id;
                    sim_emit(std::move(ev));
                }
                if (record.tokens_out >= record.request.output_len) {
                    record.finish_ms = now;
                    obs::SimEvent ev;
                    ev.name = "sim.complete";
                    ev.t0_ms = now;
                    ev.req = id;
                    sim_emit(std::move(ev));
                    decode_pool.erase(std::find(decode_pool.begin(),
                                                decode_pool.end(), id));
                    kv_drop_all(id);
                    if (options_.closed_loop &&
                        issued < options_.num_requests) {
                        client_wakeups.push_back(now +
                                                 options_.think_time_ms);
                        ++issued;
                    }
                }
            }
            // KV growth for the members that stay in the pool: each just
            // appended one position. Under a bounded pool, growth past
            // the free pages preempts other page holders — preemption by
            // recompute (pages released, prefill restarted from chunk 0).
            //
            // Victim order is what makes this terminate: (1) decode-pool
            // members strictly *younger* than the grower, youngest first;
            // (2) queued mid-prefill reservations; (3) the in-flight
            // chunk; (4) the grower itself, only when members older than
            // it hold the pages. The oldest decode member is thus never
            // evicted — victims are always younger than whoever demands
            // the pages — so it always reaches completion and frees its
            // pages, and by induction every request eventually does.
            // (Evicting victims *older* than the grower would livelock:
            // two requests whose reservations overlap can ping-pong
            // evictions forever, neither ever finishing.)
            auto evict_one_for = [&](int grower) {
                auto requeue = [&](int victim) {
                    kv_drop_all(victim);
                    RequestRecord& vrec =
                        result.records[static_cast<size_t>(victim)];
                    vrec.tokens_out = 0;
                    vrec.prefill_done_ms = -1.0;
                    ++vrec.evictions;
                    evict_counter.Add(1);
                    obs::SimEvent ev;
                    ev.name = "sim.evict";
                    ev.t0_ms = now;
                    ev.req = victim;
                    sim_emit(std::move(ev));
                };
                const auto grower_at = std::find(decode_pool.begin(),
                                                 decode_pool.end(), grower);
                for (size_t j = decode_pool.size();
                     j-- > 0 &&
                     static_cast<long>(j) > grower_at - decode_pool.begin();) {
                    const int victim = decode_pool[j];
                    decode_pool.erase(decode_pool.begin() +
                                      static_cast<long>(j));
                    requeue(victim);
                    PendingPrefill again;
                    again.id = victim;
                    again.profile =
                        &costs_.Costs(result.records[static_cast<size_t>(
                            victim)].request.AsInference());
                    prefill_queue.push_back(again);
                    return true;
                }
                for (size_t j = prefill_queue.size(); j-- > 0;) {
                    PendingPrefill& pending = prefill_queue[j];
                    if (pending.next_chunk == 0) continue;  // holds no pages
                    requeue(pending.id);
                    pending.next_chunk = 0;  // recompute from chunk 0
                    return true;
                }
                if (npu_busy && npu_job.id != grower) {
                    // Cancel the in-flight chunk. Its partial execution is
                    // discarded untimed (no trace task, full duration
                    // backed out of npu_busy_ms) so trace busy-time
                    // conservation and the trace↔replay parallelism hold.
                    result.npu_busy_ms -= npu_end - npu_start;
                    npu_busy = false;
                    requeue(npu_job.id);
                    npu_job.next_chunk = 0;
                    prefill_queue.push_back(npu_job);
                    return true;
                }
                return false;
            };
            for (int id : step_members) {
                if (std::find(decode_pool.begin(), decode_pool.end(), id) ==
                    decode_pool.end()) {
                    continue;  // finished, or evicted by an earlier member
                }
                const RequestRecord& record =
                    result.records[static_cast<size_t>(id)];
                const int64_t needed = pages_for(
                    static_cast<int64_t>(record.request.prompt_len) +
                    record.tokens_out);
                int64_t delta = needed - kv_held[static_cast<size_t>(id)];
                if (delta <= 0) continue;
                while (kv_bounded && delta > kv_free) {
                    if (evict_one_for(id)) continue;
                    // Only holders older than the grower remain: the
                    // grower itself is preempted and recomputes later.
                    decode_pool.erase(std::find(decode_pool.begin(),
                                                decode_pool.end(), id));
                    kv_drop_all(id);
                    RequestRecord& vrec =
                        result.records[static_cast<size_t>(id)];
                    vrec.tokens_out = 0;
                    vrec.prefill_done_ms = -1.0;
                    ++vrec.evictions;
                    evict_counter.Add(1);
                    {
                        obs::SimEvent ev;
                        ev.name = "sim.evict";
                        ev.t0_ms = now;
                        ev.req = id;
                        sim_emit(std::move(ev));
                    }
                    PendingPrefill again;
                    again.id = id;
                    again.profile = &costs_.Costs(vrec.request.AsInference());
                    prefill_queue.push_back(again);
                    delta = 0;
                    break;
                }
                if (delta > 0) kv_take(id, delta);
            }
            step_members.clear();
        }

        start_chunk_if_idle();
        start_step_if_idle();
    }

    if (result.makespan_ms > 0.0) {
        result.kv_pages_mean = kv_integral / result.makespan_ms;
    }

    // Thin reads back from the registry: peak occupancy came from the
    // gauge watermark, evictions from the counter delta over this run.
    result.kv_pages_peak = static_cast<int64_t>(kv_gauge.peak());
    result.evictions =
        static_cast<int>(evict_counter.value() - evict_base);

    // ---- Finalize the execution trace as a TimelineResult so the shared
    // schedule-validity helpers apply (per-unit busy, spans, makespan).
    result.trace.makespan_ms = result.makespan_ms;
    for (size_t i = 0; i < result.trace_tasks.size(); ++i) {
        const size_t unit =
            static_cast<size_t>(result.trace_tasks[i].unit);
        const TaskRecord& record = result.trace.records[i];
        result.trace.busy_ms[unit] += record.end_ms - record.start_ms;
        if (result.trace.span_end_ms[unit] == 0.0) {
            result.trace.span_start_ms[unit] = record.start_ms;
        }
        result.trace.span_start_ms[unit] =
            std::min(result.trace.span_start_ms[unit], record.start_ms);
        result.trace.span_end_ms[unit] =
            std::max(result.trace.span_end_ms[unit], record.end_ms);
    }
    return result;
}

}  // namespace llmnpu
