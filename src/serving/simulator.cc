#include "src/serving/simulator.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/thermal.h"
#include "src/util/check.h"
#include "src/util/format.h"

namespace llmnpu {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** A request between admission and prefill completion. */
struct PendingPrefill {
    int id = 0;
    int next_chunk = 0;
    const ServingCostProfile* profile = nullptr;
    /** Fault-plane retry attempt of the *next* chunk (0 = first try). */
    int attempt = 0;
    /** Backoff gate: the chunk may not dispatch before this time. */
    double ready_ms = 0.0;

    double RemainingMs() const
    {
        double total = 0.0;
        for (size_t c = static_cast<size_t>(next_chunk);
             c < profile->chunk_ms.size(); ++c) {
            total += profile->chunk_ms[c];
        }
        return total;
    }
};

}  // namespace

void
ServingOptions::Validate() const
{
    LLMNPU_FATAL_IF(num_requests <= 0, "serving num_requests must be > 0");
    LLMNPU_FATAL_IF(max_decode_batch <= 0,
                    "serving max_decode_batch must be > 0");
    LLMNPU_FATAL_IF(decode_batch_marginal < 0.0,
                    "serving decode_batch_marginal must be >= 0");
    LLMNPU_FATAL_IF(kv_pool_pages < 0,
                    "serving kv_pool_pages must be >= 0 (0 = unbounded)");
    LLMNPU_FATAL_IF(kv_page_size <= 0, "serving kv_page_size must be > 0");
    LLMNPU_FATAL_IF(!closed_loop && rate_rps <= 0.0,
                    "serving rate_rps must be > 0 in open-loop mode");
    LLMNPU_FATAL_IF(closed_loop && num_clients <= 0,
                    "serving num_clients must be > 0 in closed-loop mode");
    LLMNPU_FATAL_IF(closed_loop && think_time_ms < 0.0,
                    "serving think_time_ms must be >= 0");
    LLMNPU_FATAL_IF(shed_expired_queued && slo_factor <= 0.0,
                    "serving shed_expired_queued needs slo_factor > 0 "
                    "(no deadlines to expire otherwise)");
    LLMNPU_FATAL_IF(shared_prefix.prefix_len < 0,
                    "serving shared_prefix.prefix_len must be >= 0");
    LLMNPU_FATAL_IF(shared_prefix.prefix_len % kv_page_size != 0,
                    "serving shared_prefix.prefix_len must be page-aligned "
                    "(whole shared pages are what admission counts once)");
    LLMNPU_FATAL_IF(shared_prefix.share_fraction < 0.0 ||
                        shared_prefix.share_fraction > 1.0,
                    "serving shared_prefix.share_fraction must be in [0, 1]");
    faults.Validate();
}

ServingReport
ServingResult::Report() const
{
    ServingReport report = BuildReport(records, makespan_ms, npu_busy_ms,
                                       decode_busy_ms, preemptions);
    report.kv_pool_pages = kv_pool_pages;
    report.kv_pages_peak = kv_pages_peak;
    report.kv_pages_mean = kv_pages_mean;
    report.npu_throttled_frac = npu_throttled_frac;
    report.kv_pool_pages_live = kv_pool_pages_live;
    report.kv_pages_peak_post_shrink = kv_pages_peak_post_shrink;
    return report;
}

ServingSimulator::ServingSimulator(ServingCostModel& costs,
                                   std::vector<DatasetProfile> mix,
                                   ServingOptions options)
    : costs_(costs), mix_(std::move(mix)), options_(options)
{
    LLMNPU_CHECK(!mix_.empty());
    options_.Validate();
}

ServingResult
ServingSimulator::Run()
{
    ServingResult result;
    result.records.reserve(static_cast<size_t>(options_.num_requests));

    // ---- Control plane. Null policy fields resolve to the legacy
    // defaults here; a run with the defaults — explicit or null — is
    // bit-identical to the pre-policy-object simulator. The cost model's
    // default batch marginal is synced so off-profile pricing through the
    // calibrated oracle uses the serving layer's configuration.
    const std::shared_ptr<QueuePolicy> queue_policy =
        options_.queue_policy ? options_.queue_policy
                              : MakeQueuePolicy(options_.policy);
    const std::shared_ptr<PlacementPolicy> placement_policy =
        options_.placement_policy ? options_.placement_policy
                                  : std::make_shared<StaticPlacement>();
    const std::shared_ptr<AdmissionPolicy> admission_policy =
        options_.admission_policy ? options_.admission_policy
                                  : std::make_shared<ThresholdAdmission>();
    const bool dynamic_placement = placement_policy->IsDynamic();
    costs_.set_default_batch_marginal(options_.decode_batch_marginal);

    // ---- Fault plane. All injection is counter-based (a pure function of
    // the fault seed and the draw coordinates), so a rate-zero plane draws
    // nothing and every code path below degenerates bitwise to the
    // fault-free simulator.
    const FaultOptions& fopts = options_.faults;
    const FaultPlane fault_plane(fopts);
    const bool inject_on = fopts.Enabled();
    ThermalModel thermal(fopts.thermal);
    double throttled_ms = 0.0;
    double peak_temp_c = thermal.temperature_c();

    // ---- Registry bookkeeping. The KV-occupancy peak and the eviction
    // count live in the process-wide registry; the ServingResult fields
    // are read back from it at the end of the run (thin reads), so the
    // registry is the single source of truth. Sim-lane trace events carry
    // virtual timestamps and are recorded only while tracing is on.
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    obs::Gauge& kv_gauge = reg.GetGauge("sim.kv_used_pages");
    obs::Counter& evict_counter = reg.GetCounter("sim.evictions");
    obs::Counter& preempt_counter = reg.GetCounter("sim.preemptions");
    obs::Counter& reject_counter = reg.GetCounter("sim.rejections");
    obs::Counter& fault_counter = reg.GetCounter("sim.faults");
    obs::Counter& retry_counter = reg.GetCounter("sim.retries");
    obs::Counter& shed_counter = reg.GetCounter("sim.shed");
    obs::Counter& failover_counter = reg.GetCounter("sim.failovers");
    const int64_t evict_base = evict_counter.value();
    kv_gauge.Set(0.0);
    kv_gauge.ResetPeak();
    auto sim_emit = [&](obs::SimEvent event) {
        if (obs::TraceEnabled()) {
            obs::Tracer::Global().RecordSim(std::move(event));
        }
    };
    // Fault-plane events render on their own Perfetto lane so degraded-mode
    // runs read as "what went wrong / what the defense did" at a glance.
    auto fault_event = [&](const char* name, int req, double t0, double t1,
                           std::string args) {
        obs::SimEvent event;
        event.name = name;
        event.lane = obs::SimLane::kFaults;
        event.phase = t1 > t0 ? obs::TracePhase::kSpan
                              : obs::TracePhase::kInstant;
        event.t0_ms = t0;
        event.t1_ms = t1;
        event.req = req;
        event.args_json = std::move(args);
        sim_emit(std::move(event));
    };

    // ---- Arrival stream. Open loop: the whole Poisson trace up front.
    // Closed loop: a sampler plus a list of scheduled client wake-ups.
    RequestSampler sampler(mix_, options_.seed);
    sampler.SetSharedPrefix(options_.shared_prefix);
    std::vector<ArrivalEvent> open_arrivals;
    size_t next_open = 0;
    std::vector<double> client_wakeups;  // closed loop, unsorted
    int issued = 0;
    if (options_.closed_loop) {
        const int first_wave =
            std::min(options_.num_clients, options_.num_requests);
        for (int i = 0; i < first_wave; ++i) client_wakeups.push_back(0.0);
        issued = first_wave;
    } else {
        open_arrivals = GeneratePoissonArrivals(
            mix_, options_.rate_rps, options_.num_requests, options_.seed,
            options_.shared_prefix);
        issued = options_.num_requests;
    }

    // ---- Machine state.
    double now = 0.0;
    std::vector<PendingPrefill> prefill_queue;
    bool npu_busy = false;
    double npu_end = 0.0;
    double npu_interference = 0.0;  // of the in-flight chunk's profile
    PendingPrefill npu_job;
    double npu_start = 0.0;
    // Fate of the in-flight chunk attempt, drawn at dispatch. A faulted
    // attempt's occupancy is discarded work: it goes to npu_faulted_ms,
    // never npu_busy_ms, and emits neither a trace task nor a replay step.
    FaultPlane::ChunkFate npu_fate = FaultPlane::ChunkFate::kOk;

    std::vector<int> decode_pool;  // prefilled requests, admission order
    std::vector<int> step_members;
    std::vector<DecodePlacement> step_placements;  // parallel, fault runs
    bool step_active = false;
    double step_remaining_work = 0.0;  // unscaled service ms still owed
    double step_last_update = 0.0;
    double step_start = 0.0;
    int step_counter = 0;
    // NPU dispatch attempts so far (chunk dispatches + NPU-placed decode
    // dispatches), denominator of the live fault-rate policy signal.
    int64_t npu_attempts = 0;
    // The in-flight chunk profile's two interference factors, kept
    // separately for dynamic placement: the policy can put the active step
    // on either side regardless of where the profile placed decode, and
    // the chunk steals bandwidth from whichever side is actually decoding.
    double chunk_float_interference = 0.0;
    double chunk_npu_interference = 0.0;
    bool step_on_npu = false;  // any member of the active step NPU-placed

    // Per-request fault-defense state, indexed by request id.
    std::vector<int> decode_attempt;  // retries of the *current* token
    std::vector<int> consec_faults;   // consecutive NPU faults (breaker)
    std::vector<double> decode_ready;  // decode backoff gate

    auto decode_rate = [&]() {
        double interference = npu_interference;
        if (dynamic_placement && step_active) {
            interference = step_on_npu ? chunk_npu_interference
                                       : chunk_float_interference;
        }
        return npu_busy ? std::max(0.05, 1.0 - interference) : 1.0;
    };

    // ---- KV page accounting. Usage (held pages per request, peak, time
    // integral) is tracked for every run; the budget gates admission,
    // dispatch and decode growth only when bounded (kv_pool_pages > 0).
    // `live_budget` is the budget currently in force: it starts at the
    // configured pool and drops when the fault plane's mid-run shrink
    // fires (memory pressure from the rest of the device).
    const bool kv_bounded = options_.kv_pool_pages > 0;
    const int64_t kv_page = options_.kv_page_size;
    int64_t live_budget = options_.kv_pool_pages;
    bool shrink_pending = kv_bounded && fopts.pool_shrink_at_ms >= 0.0;
    bool shrink_fired = false;
    int64_t post_shrink_peak = 0;
    auto pages_for = [&](int64_t positions) {
        return (positions + kv_page - 1) / kv_page;
    };
    std::vector<int64_t> kv_held;  // pages reserved, indexed by request id
    int64_t kv_free = options_.kv_pool_pages;
    int64_t kv_used = 0;
    double kv_integral = 0.0;  // pages x ms, for the time-mean occupancy
    result.kv_pool_pages = options_.kv_pool_pages;
    result.kv_pool_pages_live = live_budget;

    // ---- Shared system prefix (SharedPrefixOptions). The prefix's pages
    // are a refcounted shared asset, never in any kv_held entry: they are
    // charged to the pool once when the first referencing request takes
    // its reservation and freed when the last referencer's pages drop —
    // the serving mirror of KvPagePool refcounts. `kv_held` stays private
    // suffix pages only, so nothing below double-counts a shared page.
    const bool sharing_on = options_.shared_prefix.Enabled();
    const int64_t prefix_pages =
        sharing_on ? pages_for(options_.shared_prefix.prefix_len) : 0;
    int prefix_holders = 0;  // requests whose reservation references it
    std::vector<char> holds_prefix;  // indexed by request id
    result.shared_prefix_pages = prefix_pages;
    auto is_sharer = [&](int id) {
        return result.records[static_cast<size_t>(id)]
                   .request.shared_prefix_len > 0;
    };
    // Once-counted whole demand: private suffix + output growth, plus the
    // prefix exactly once. Equals the legacy prompt+output arithmetic for
    // independent requests (and for sharers too, since the prefix is
    // page-aligned) — what it prevents is charging the prefix per sharer.
    auto whole_demand_of = [&](const ServingRequest& request) {
        return (request.shared_prefix_len > 0 ? prefix_pages : 0) +
               pages_for(
                   static_cast<int64_t>(request.PrivatePromptLen()) +
                   request.output_len);
    };

    auto kv_note_usage = [&]() {
        kv_gauge.Set(static_cast<double>(kv_used));
        if (shrink_fired) {
            post_shrink_peak = std::max(post_shrink_peak, kv_used);
        }
        obs::SimEvent event;
        event.name = "sim.kv_used_pages";
        event.phase = obs::TracePhase::kCounter;
        event.t0_ms = now;
        event.value = static_cast<double>(kv_used);
        sim_emit(std::move(event));
    };
    auto kv_take = [&](int id, int64_t pages) {
        kv_free -= pages;
        kv_used += pages;
        kv_held[static_cast<size_t>(id)] += pages;
        kv_note_usage();
    };
    // Takes one reference on the shared prefix for `id` (no-op for
    // non-sharers); the first referencer materializes the prefix pages.
    auto kv_acquire_prefix = [&](int id) {
        if (!sharing_on || !is_sharer(id)) return;
        char& holds = holds_prefix[static_cast<size_t>(id)];
        if (holds) return;
        holds = 1;
        if (prefix_holders++ == 0) {
            kv_free -= prefix_pages;
            kv_used += prefix_pages;
            ++result.shared_prefix_materializations;
        }
        result.shared_prefix_refs_peak =
            std::max(result.shared_prefix_refs_peak, prefix_holders);
        kv_note_usage();
    };
    auto kv_drop_all = [&](int id) {
        int64_t& held = kv_held[static_cast<size_t>(id)];
        kv_free += held;
        kv_used -= held;
        held = 0;
        // Release this request's prefix reference with its pages; the
        // prefix itself is freed only when the last referencer goes — a
        // victim's eviction never strands a sibling's shared pages.
        if (sharing_on && holds_prefix[static_cast<size_t>(id)]) {
            holds_prefix[static_cast<size_t>(id)] = 0;
            if (--prefix_holders == 0) {
                kv_free += prefix_pages;
                kv_used -= prefix_pages;
                ++result.shared_prefix_drops;
            }
        }
        kv_note_usage();
    };

    // Terminal degraded-mode outcome for an admitted request: its pages go
    // back to the pool, it counts as an SLO miss (never goodput), and a
    // closed-loop client behind it comes back after think time. The caller
    // removes the request from whatever container held it.
    auto shed_request = [&](int id, const char* reason) {
        kv_drop_all(id);
        RequestRecord& record = result.records[static_cast<size_t>(id)];
        record.shed = true;
        record.shed_ms = now;
        ++result.shed;
        shed_counter.Add(1);
        fault_event("fault.shed", id, now, now,
                    StrFormat("\"reason\": \"%s\"", reason));
        if (options_.closed_loop && issued < options_.num_requests) {
            client_wakeups.push_back(now + options_.think_time_ms);
            ++issued;
        }
    };

    // Live degradation + load signals for policy decisions. This is the
    // PR-8 fault plane feeding the control plane: thermal state, the
    // observed fault rate and lost NPU time, plus current load.
    auto make_signals = [&]() {
        PolicySignals signals;
        signals.now_ms = now;
        signals.npu_service_scale =
            fopts.thermal.enabled ? thermal.ServiceScale() : 1.0;
        signals.npu_throttled =
            fopts.thermal.enabled && thermal.Throttled();
        signals.npu_temp_c = thermal.temperature_c();
        signals.npu_fault_rate =
            npu_attempts > 0 ? static_cast<double>(result.faults) /
                                   static_cast<double>(npu_attempts)
                             : 0.0;
        signals.npu_faulted_ms = result.npu_faulted_ms;
        signals.decode_pool_depth = static_cast<int>(decode_pool.size());
        signals.kv_free_pages = kv_bounded ? kv_free : 0;
        return signals;
    };

    auto admit = [&](const ArrivalEvent& event) {
        RequestRecord record;
        record.request.id = static_cast<int>(result.records.size());
        record.request.arrival_ms = event.arrival_ms;
        record.request.prompt_len = event.request.prompt_len;
        record.request.output_len = event.request.output_len;
        record.request.profile_index = event.profile_index;
        record.request.shared_prefix_len = event.shared_prefix_len;
        // Sharers are costed on what they actually compute: the private
        // suffix (the shared prefix's KV is served from the cache, not
        // re-prefilled). Their SLO baseline tightens accordingly.
        const double isolated_e2e =
            costs_.IsolatedE2eMs(record.request.ServedInference());
        if (options_.slo_factor > 0.0) {
            record.request.deadline_ms =
                event.arrival_ms + options_.slo_factor * isolated_e2e;
        }
        // Admission control. Every conforming policy refuses a request
        // whose *whole* KV demand exceeds the pool budget — it could never
        // run to completion, only starve or thrash the pool. Shared prefix
        // pages count once across referencing sequences: a sharer's demand
        // is its private suffix, plus the prefix only when no live
        // referencer already holds it (the old per-request prompt+output
        // arithmetic re-charged the prefix for every concurrent sharer).
        // Predictive policies additionally turn away arrivals whose
        // predicted finish already misses their deadline. Requests that
        // merely don't fit right now are not rejected; they queue and wait
        // for pages.
        int64_t demand = whole_demand_of(record.request);
        if (record.request.shared_prefix_len > 0 && prefix_holders > 0) {
            demand -= prefix_pages;
        }
        AdmissionQuery admission;
        admission.request = &record.request;
        admission.isolated_e2e_ms = isolated_e2e;
        admission.queued_prefill_ms = npu_busy ? npu_end - now : 0.0;
        for (const PendingPrefill& pending : prefill_queue) {
            admission.queued_prefill_ms += pending.RemainingMs();
        }
        admission.queue_depth = static_cast<int>(prefill_queue.size());
        admission.kv_demand_pages = demand;
        admission.kv_live_budget = kv_bounded ? live_budget : 0;
        admission.decode_batch_marginal = options_.decode_batch_marginal;
        admission.signals = make_signals();
        if (!admission_policy->Admit(admission)) {
            record.rejected = true;
            result.records.push_back(record);
            kv_held.push_back(0);
            holds_prefix.push_back(0);
            decode_attempt.push_back(0);
            consec_faults.push_back(0);
            decode_ready.push_back(0.0);
            ++result.rejected;
            reject_counter.Add(1);
            obs::SimEvent ev;
            ev.name = "sim.reject";
            ev.t0_ms = event.arrival_ms;
            ev.req = record.request.id;
            sim_emit(std::move(ev));
            // A closed-loop client whose request was refused comes back
            // after its think time, same as after a completion.
            if (options_.closed_loop && issued < options_.num_requests) {
                client_wakeups.push_back(event.arrival_ms +
                                         options_.think_time_ms);
                ++issued;
            }
            return;
        }
        result.records.push_back(record);
        kv_held.push_back(0);
        holds_prefix.push_back(0);
        decode_attempt.push_back(0);
        consec_faults.push_back(0);
        decode_ready.push_back(0.0);
        if (record.request.shared_prefix_len > 0) ++result.shared_requests;
        PendingPrefill pending;
        pending.id = record.request.id;
        pending.profile = &costs_.Costs(record.request.ServedInference());
        prefill_queue.push_back(pending);
        obs::SimEvent ev;
        ev.name = "sim.arrive";
        ev.t0_ms = event.arrival_ms;
        ev.req = record.request.id;
        sim_emit(std::move(ev));
    };

    // Circuit breaker: after K consecutive NPU faults on one request
    // (chunk faults during its prefill, decode-dispatch faults during its
    // stream), its decode placement fails over to the packed-fp32 CPU
    // fallback — permanently, mid-stream, at the next step boundary.
    auto maybe_failover = [&](int id) {
        if (fopts.circuit_breaker_k <= 0) return;
        if (consec_faults[static_cast<size_t>(id)] <
            fopts.circuit_breaker_k) {
            return;
        }
        RequestRecord& record = result.records[static_cast<size_t>(id)];
        if (record.failed_over) return;
        record.failed_over = true;
        record.failover_ms = now;
        ++result.failovers;
        failover_counter.Add(1);
        fault_event("fault.failover", id, now, now,
                    "\"to\": \"cpu_float\"");
    };

    auto start_chunk_if_idle = [&]() {
        if (npu_busy || prefill_queue.empty()) return;
        std::vector<QueueEntry> entries;
        std::vector<size_t> eligible;  // entries[i] <- prefill_queue index
        entries.reserve(prefill_queue.size());
        for (size_t qi = 0; qi < prefill_queue.size(); ++qi) {
            const PendingPrefill& pending = prefill_queue[qi];
            const RequestRecord& record =
                result.records[static_cast<size_t>(pending.id)];
            // Backoff gate: a chunk that faulted waits out its capped
            // exponential delay before redispatching.
            if (pending.ready_ms > now) continue;
            // A first chunk reserves its prompt's pages up front: the
            // private suffix, plus the shared prefix only when no live
            // referencer holds it yet (counted once — the dispatch-side
            // half of the shared-page accounting). Skip candidates the
            // pool cannot hold right now (they stay queued until
            // retirements or evictions free pages). Requests already
            // holding their reservation — mid-prefill, or a faulted
            // chunk 0 awaiting retry — stay eligible.
            if (kv_bounded && pending.next_chunk == 0 &&
                kv_held[static_cast<size_t>(pending.id)] == 0) {
                int64_t need =
                    pages_for(record.request.PrivatePromptLen());
                if (record.request.shared_prefix_len > 0 &&
                    prefix_holders == 0) {
                    need += prefix_pages;
                }
                if (need > kv_free) continue;
            }
            QueueEntry entry;
            entry.request_id = pending.id;
            entry.arrival_ms = record.request.arrival_ms;
            entry.deadline_ms = record.request.deadline_ms;
            entry.remaining_prefill_ms = pending.RemainingMs();
            entry.remaining_total_ms =
                entry.remaining_prefill_ms +
                pending.profile->decode_token_ms *
                    record.request.output_len;
            entries.push_back(entry);
            eligible.push_back(qi);
        }
        if (entries.empty()) return;  // backpressured: NPU idles for pages
        const size_t pick = eligible[queue_policy->Pick(entries, now)];
        npu_job = prefill_queue[pick];
        prefill_queue.erase(prefill_queue.begin() +
                            static_cast<long>(pick));
        RequestRecord& record =
            result.records[static_cast<size_t>(npu_job.id)];
        if (npu_job.next_chunk == 0) {
            // Queueing delay is measured to the *first ever* dispatch; an
            // eviction's re-prefill must not reset it.
            if (record.first_dispatch_ms < 0.0) {
                record.first_dispatch_ms = now;
            }
            if (kv_held[static_cast<size_t>(npu_job.id)] == 0) {
                kv_acquire_prefix(npu_job.id);
                kv_take(npu_job.id,
                        pages_for(record.request.PrivatePromptLen()));
            }
        }
        double duration =
            npu_job.profile->chunk_ms[static_cast<size_t>(
                npu_job.next_chunk)];
        // Thermal throttling inflates the whole chunk by the service scale
        // at dispatch (gated so thermal-off runs never touch the value).
        if (fopts.thermal.enabled) duration *= thermal.ServiceScale();
        // Fate of this attempt. A kFail attempt dies partway through; a
        // kStall attempt hangs until the watchdog declares it dead at
        // timeout_factor x the nominal service time.
        npu_fate = fault_plane.Chunk(npu_job.id, npu_job.next_chunk,
                                     npu_job.attempt);
        if (npu_fate == FaultPlane::ChunkFate::kFail) {
            duration *= fault_plane.ChunkFailFraction(
                npu_job.id, npu_job.next_chunk, npu_job.attempt);
        } else if (npu_fate == FaultPlane::ChunkFate::kStall) {
            duration *= fopts.timeout_factor;
        }
        npu_busy = true;
        ++npu_attempts;
        npu_start = now;
        npu_end = now + duration;
        // The factor matching where this run's decode lives: the float
        // processor the chunk's float stages hold, or the NPU itself.
        // Dynamic placement keeps both factors at hand — the active step
        // may sit on either side of the profile's own placement.
        npu_interference = npu_job.profile->DecodeInterference();
        chunk_float_interference =
            npu_job.profile->float_decode_interference;
        chunk_npu_interference = npu_job.profile->npu_decode_interference;
        if (npu_fate == FaultPlane::ChunkFate::kOk) {
            result.npu_busy_ms += duration;
        } else {
            result.npu_faulted_ms += duration;
        }
        if (step_active) {
            // The chunk's float stages steal decode bandwidth from the
            // step already in flight: that's a preemption.
            ++result.preemptions;
            preempt_counter.Add(1);
            for (int id : step_members) {
                ++result.records[static_cast<size_t>(id)].preemptions;
            }
            obs::SimEvent ev;
            ev.name = "sim.preempt";
            ev.t0_ms = now;
            ev.req = npu_job.id;
            sim_emit(std::move(ev));
        }
    };

    auto start_step_if_idle = [&]() {
        if (step_active || decode_pool.empty()) return;
        step_members.clear();
        step_placements.clear();
        std::vector<int> to_shed;
        double token_ms = 0.0;
        double engine_marginal = -1.0;
        // Placement decisions see the depth this step would run at and one
        // signal snapshot per step boundary (not per member), so every
        // decision is a pure function of the boundary's state and the
        // recorded placements replay bitwise.
        const int step_depth = std::min(
            options_.max_decode_batch, static_cast<int>(decode_pool.size()));
        const PolicySignals step_signals = make_signals();
        for (size_t pi = 0;
             pi < decode_pool.size() &&
             static_cast<int>(step_members.size()) <
                 options_.max_decode_batch;
             ++pi) {
            const int id = decode_pool[pi];
            RequestRecord& record =
                result.records[static_cast<size_t>(id)];
            const ServingCostProfile& profile =
                costs_.Costs(record.request.ServedInference());
            PlacementQuery query;
            query.record = &record;
            query.profile = &profile;
            query.context_len =
                static_cast<int64_t>(record.request.prompt_len) +
                record.tokens_out;
            query.batch_depth = step_depth;
            query.default_batch_marginal = options_.decode_batch_marginal;
            query.signals = step_signals;
            DecodePlacement place = placement_policy->Place(query);
            if (inject_on) {
                // Backoff gate after a faulted dispatch.
                if (decode_ready[static_cast<size_t>(id)] > now) continue;
                if (place == DecodePlacement::kNpuQuant &&
                    fault_plane.DecodeFaults(
                        id, record.tokens_out,
                        decode_attempt[static_cast<size_t>(id)])) {
                    // The NPU dispatch for this member faults: it sits the
                    // step out (replay membership stays exactly what was
                    // executed) and either fails over, retries after
                    // backoff, or — retry budget gone — is shed.
                    ++npu_attempts;  // tried and lost
                    ++record.faults;
                    ++result.faults;
                    fault_counter.Add(1);
                    ++consec_faults[static_cast<size_t>(id)];
                    fault_event(
                        "fault.decode", id, now, now,
                        StrFormat("\"token\": %d, \"attempt\": %d",
                                  record.tokens_out,
                                  decode_attempt[static_cast<size_t>(id)]));
                    ++decode_attempt[static_cast<size_t>(id)];
                    maybe_failover(id);
                    if (record.failed_over) {
                        // Breaker fired: this very step runs on the CPU
                        // fallback — the mid-stream switch happens at a
                        // step boundary, never inside one.
                        place = DecodePlacement::kCpuFloat;
                    } else if (decode_attempt[static_cast<size_t>(id)] >=
                               fopts.max_attempts) {
                        to_shed.push_back(id);
                        continue;
                    } else {
                        ++record.retries;
                        ++result.retries;
                        retry_counter.Add(1);
                        decode_ready[static_cast<size_t>(id)] =
                            now + fault_plane.BackoffMs(
                                      decode_attempt[static_cast<size_t>(
                                          id)]);
                        continue;
                    }
                }
                // Successful NPU dispatch heals the breaker window; the
                // token's retry counter starts fresh for the next token.
                if (place == DecodePlacement::kNpuQuant) {
                    consec_faults[static_cast<size_t>(id)] = 0;
                }
                decode_attempt[static_cast<size_t>(id)] = 0;
            }
            double price = profile.decode_token_ms;
            double member_marginal = profile.decode_batch_marginal;
            if (record.failed_over) {
                // Post-failover pricing: the engine's CPU fallback path,
                // batched at the serving layer's CPU marginal.
                price = profile.cpu_decode_token_ms > 0.0
                            ? profile.cpu_decode_token_ms
                            : profile.decode_token_ms;
                member_marginal = options_.decode_batch_marginal;
            } else if (place != profile.decode_placement) {
                // Off-profile member: a dynamic policy disagreed with the
                // engine profile. Policies *decide* with whatever oracle
                // they hold, but the simulator *prices* executed work
                // through the calibrated one, so virtual time stays in the
                // calibrated plane regardless of what the policy believes.
                if (place == DecodePlacement::kCpuFloat) {
                    price = profile.cpu_decode_token_ms > 0.0
                                ? profile.cpu_decode_token_ms
                                : profile.decode_token_ms;
                    member_marginal = options_.decode_batch_marginal;
                } else {
                    const double one = costs_.StepMs(
                        DecodePlacement::kNpuQuant, query.context_len, 1);
                    const double two = costs_.StepMs(
                        DecodePlacement::kNpuQuant, query.context_len, 2);
                    price = one;
                    member_marginal =
                        one > 0.0 ? std::max(0.0, two / one - 1.0)
                                  : options_.decode_batch_marginal;
                }
            }
            if (fopts.thermal.enabled &&
                place == DecodePlacement::kNpuQuant) {
                price *= thermal.ServiceScale();
            }
            token_ms = std::max(token_ms, price);
            // Engines that know their own batching marginal (NPU-resident
            // decode shares one weight stream per step) override the
            // configured default; the max across members keeps the step
            // cost conservative and independent of pool order, matching
            // token_ms.
            engine_marginal = std::max(engine_marginal, member_marginal);
            step_members.push_back(id);
            step_placements.push_back(place);
        }
        for (int id : to_shed) {
            decode_pool.erase(std::find(decode_pool.begin(),
                                        decode_pool.end(), id));
            shed_request(id, "decode_retry_budget");
        }
        if (step_members.empty()) return;  // everyone backing off or shed
        step_on_npu = false;
        for (DecodePlacement member_place : step_placements) {
            if (member_place == DecodePlacement::kNpuQuant) {
                step_on_npu = true;
                ++npu_attempts;
            }
        }
        const double marginal = engine_marginal >= 0.0
                                    ? engine_marginal
                                    : options_.decode_batch_marginal;
        step_active = true;
        step_remaining_work =
            token_ms *
            (1.0 +
             (static_cast<double>(step_members.size()) - 1.0) * marginal);
        step_last_update = now;
        step_start = now;
    };

    // KV growth past the free pages preempts other page holders —
    // preemption by recompute (pages released, prefill restarted from
    // chunk 0). Also the back-pressure valve of the fault plane's pool
    // shrink, with grower = -1 ("the pool itself shrank; any holder is
    // fair game, youngest first").
    //
    // Victim order is what makes this terminate: (1) decode-pool members
    // strictly *younger* than the grower, youngest first; (2) queued
    // mid-prefill reservations; (3) the in-flight chunk; (4) the grower
    // itself, only when members older than it hold the pages. The oldest
    // decode member is thus never evicted — victims are always younger
    // than whoever demands the pages — so it always reaches completion and
    // frees its pages, and by induction every request eventually does.
    // (Evicting victims *older* than the grower would livelock: two
    // requests whose reservations overlap can ping-pong evictions forever,
    // neither ever finishing.)
    auto evict_one_for = [&](int grower) {
        auto requeue = [&](int victim) {
            kv_drop_all(victim);
            RequestRecord& vrec =
                result.records[static_cast<size_t>(victim)];
            vrec.tokens_out = 0;
            vrec.prefill_done_ms = -1.0;
            ++vrec.evictions;
            evict_counter.Add(1);
            decode_attempt[static_cast<size_t>(victim)] = 0;
            decode_ready[static_cast<size_t>(victim)] = 0.0;
            obs::SimEvent ev;
            ev.name = "sim.evict";
            ev.t0_ms = now;
            ev.req = victim;
            sim_emit(std::move(ev));
        };
        long grower_pos = -1;  // -1: no grower, every member evictable
        if (grower >= 0) {
            grower_pos = std::find(decode_pool.begin(), decode_pool.end(),
                                   grower) -
                         decode_pool.begin();
        }
        // Prefer dropping private suffix pages: within each tier, a victim
        // whose eviction would take the shared prefix down with it (the
        // last referencer) is passed over on the first sweep and picked
        // only when that tier has nobody else — the prefix drops only when
        // its last referencing sequence is the eviction choice. The tier
        // *order* (younger-than-grower decode members, then queued
        // reservations, then the in-flight chunk) is untouched; that order
        // is what makes eviction terminate.
        auto drops_prefix = [&](int id) {
            return sharing_on && holds_prefix[static_cast<size_t>(id)] &&
                   prefix_holders == 1;
        };
        for (int pass = 0; pass < (sharing_on ? 2 : 1); ++pass) {
            for (size_t j = decode_pool.size();
                 j-- > 0 && static_cast<long>(j) > grower_pos;) {
                const int victim = decode_pool[j];
                if (pass == 0 && drops_prefix(victim)) continue;
                decode_pool.erase(decode_pool.begin() +
                                  static_cast<long>(j));
                requeue(victim);
                PendingPrefill again;
                again.id = victim;
                again.profile =
                    &costs_.Costs(result.records[static_cast<size_t>(
                        victim)].request.ServedInference());
                prefill_queue.push_back(again);
                return true;
            }
        }
        for (int pass = 0; pass < (sharing_on ? 2 : 1); ++pass) {
            for (size_t j = prefill_queue.size(); j-- > 0;) {
                PendingPrefill& pending = prefill_queue[j];
                // Queued entries holding a reservation (mid-prefill, or a
                // faulted chunk 0 awaiting retry) are evictable; entries
                // that never dispatched hold nothing.
                if (kv_held[static_cast<size_t>(pending.id)] == 0) continue;
                if (pass == 0 && drops_prefix(pending.id)) continue;
                requeue(pending.id);
                pending.next_chunk = 0;  // recompute from chunk 0
                pending.attempt = 0;
                pending.ready_ms = 0.0;
                return true;
            }
        }
        if (npu_busy && npu_job.id != grower) {
            // Cancel the in-flight chunk. Its partial execution is
            // discarded untimed (no trace task, full duration backed out
            // of the matching busy accumulator) so trace busy-time
            // conservation and the trace↔replay parallelism hold.
            if (npu_fate == FaultPlane::ChunkFate::kOk) {
                result.npu_busy_ms -= npu_end - npu_start;
            } else {
                result.npu_faulted_ms -= npu_end - npu_start;
            }
            npu_busy = false;
            requeue(npu_job.id);
            npu_job.next_chunk = 0;
            npu_job.attempt = 0;
            npu_job.ready_ms = 0.0;
            prefill_queue.push_back(npu_job);
            return true;
        }
        return false;
    };

    // Memory pressure: the rest of the device claims pages back and the
    // live budget drops mid-run. Defense, in order: shed every admitted
    // request whose *whole* demand no longer fits (it could never complete
    // and would thrash the smaller pool forever), then evict youngest-
    // first through the termination-safe order until usage fits.
    auto do_shrink = [&]() {
        shrink_pending = false;
        const int64_t new_budget = std::max<int64_t>(
            1, static_cast<int64_t>(
                   static_cast<double>(options_.kv_pool_pages) *
                   fopts.pool_shrink_to));
        live_budget = std::min(live_budget, new_budget);
        result.kv_pool_pages_live = live_budget;
        fault_event("fault.pool_shrink", -1, now, now,
                    StrFormat("\"live_pages\": %lld",
                              static_cast<long long>(live_budget)));
        auto demand_of = [&](int id) {
            return whole_demand_of(
                result.records[static_cast<size_t>(id)].request);
        };
        for (size_t j = prefill_queue.size(); j-- > 0;) {
            const int id = prefill_queue[j].id;
            if (demand_of(id) > live_budget) {
                prefill_queue.erase(prefill_queue.begin() +
                                    static_cast<long>(j));
                shed_request(id, "pool_shrink");
            }
        }
        if (npu_busy && demand_of(npu_job.id) > live_budget) {
            // Cancel the in-flight chunk untimed, same discipline as an
            // eviction's category (3).
            if (npu_fate == FaultPlane::ChunkFate::kOk) {
                result.npu_busy_ms -= npu_end - npu_start;
            } else {
                result.npu_faulted_ms -= npu_end - npu_start;
            }
            npu_busy = false;
            shed_request(npu_job.id, "pool_shrink");
        }
        for (size_t j = decode_pool.size(); j-- > 0;) {
            const int id = decode_pool[j];
            if (demand_of(id) > live_budget) {
                decode_pool.erase(decode_pool.begin() +
                                  static_cast<long>(j));
                shed_request(id, "pool_shrink");
            }
        }
        kv_free = live_budget - kv_used;
        while (kv_used > live_budget) {
            LLMNPU_CHECK(evict_one_for(-1));
        }
        // The degraded-mode invariant starts *after* the defense settles:
        // from here on, usage never exceeds the live budget.
        shrink_fired = true;
        post_shrink_peak = kv_used;
    };

    // Deadline expiry while queued: a request whose SLO deadline passed
    // before it ever dispatched is a lost cause — shed it at the deadline
    // (an accounted SLO miss) and release any reserved pages instead of
    // burning prefill on it.
    auto expire_sweep = [&]() {
        for (size_t j = prefill_queue.size(); j-- > 0;) {
            const int id = prefill_queue[j].id;
            const RequestRecord& record =
                result.records[static_cast<size_t>(id)];
            if (record.request.deadline_ms <= now) {
                prefill_queue.erase(prefill_queue.begin() +
                                    static_cast<long>(j));
                shed_request(id, "deadline_expired");
            }
        }
    };

    // Brownout mode: while the die is throttled, queued requests whose
    // deadline is infeasible even optimistically (remaining prefill at the
    // current slowdown plus their decode stream) are shed rather than
    // heating the NPU further for work that can only miss.
    auto brownout_sweep = [&]() {
        const double scale = thermal.ServiceScale();
        for (size_t j = prefill_queue.size(); j-- > 0;) {
            const PendingPrefill& pending = prefill_queue[j];
            const RequestRecord& record =
                result.records[static_cast<size_t>(pending.id)];
            if (record.request.deadline_ms >= 1e300) continue;  // no SLO
            const double finish_estimate =
                now + pending.RemainingMs() * scale +
                pending.profile->decode_token_ms *
                    record.request.output_len;
            if (finish_estimate > record.request.deadline_ms) {
                const int id = pending.id;
                prefill_queue.erase(prefill_queue.begin() +
                                    static_cast<long>(j));
                shed_request(id, "brownout");
            }
        }
    };

    // A sharer admitted while the prefix was resident was charged only its
    // private suffix. If the prefix has since been dropped (last
    // referencer left) and the whole once-counted demand no longer fits
    // the live budget, the request can never dispatch — shed it rather
    // than starving the queue (same discipline as do_shrink's misfits).
    auto prefix_feasibility_sweep = [&]() {
        if (prefix_holders > 0) return;  // resident: everyone feasible
        for (size_t j = prefill_queue.size(); j-- > 0;) {
            const int id = prefill_queue[j].id;
            if (kv_held[static_cast<size_t>(id)] != 0) continue;
            if (!is_sharer(id)) continue;
            if (whole_demand_of(
                    result.records[static_cast<size_t>(id)].request) <=
                live_budget) {
                continue;
            }
            prefill_queue.erase(prefill_queue.begin() +
                                static_cast<long>(j));
            shed_request(id, "prefix_dropped");
        }
    };

    auto next_arrival_time = [&]() {
        if (options_.closed_loop) {
            double best = kInf;
            for (double t : client_wakeups) best = std::min(best, t);
            return best;
        }
        return next_open < open_arrivals.size()
                   ? open_arrivals[next_open].arrival_ms
                   : kInf;
    };

    // ---- Event loop: next event is the earliest of {arrival, chunk
    // completion, decode-step completion at the current rate, fault-plane
    // wake-ups (retry backoffs expiring, queued deadlines expiring, the
    // pool shrink)}. Decode work drains continuously at a rate that drops
    // while a chunk is in flight, so its completion time is re-derived
    // whenever the NPU state changes.
    while (true) {
        const double t_arrival = next_arrival_time();
        const double t_npu = npu_busy ? npu_end : kInf;
        const double t_step =
            step_active
                ? step_last_update + step_remaining_work / decode_rate()
                : kInf;
        double t_aux = kInf;
        if (inject_on || options_.shed_expired_queued) {
            for (const PendingPrefill& pending : prefill_queue) {
                if (pending.ready_ms > now) {
                    t_aux = std::min(t_aux, pending.ready_ms);
                }
                if (options_.shed_expired_queued) {
                    const double deadline =
                        result.records[static_cast<size_t>(pending.id)]
                            .request.deadline_ms;
                    if (deadline > now) t_aux = std::min(t_aux, deadline);
                }
            }
            for (int id : decode_pool) {
                if (decode_ready[static_cast<size_t>(id)] > now) {
                    t_aux = std::min(
                        t_aux, decode_ready[static_cast<size_t>(id)]);
                }
            }
            if (shrink_pending && fopts.pool_shrink_at_ms > now) {
                t_aux = std::min(t_aux, fopts.pool_shrink_at_ms);
            }
        }
        const double t_next = std::min({t_arrival, t_npu, t_step, t_aux});
        if (t_next == kInf) break;  // all quiet: run complete

        if (step_active) {
            step_remaining_work -= (t_next - step_last_update) *
                                   decode_rate();
            step_last_update = t_next;
        }
        kv_integral += static_cast<double>(kv_used) * (t_next - now);
        if (fopts.thermal.enabled) {
            thermal.Advance(t_next - now, npu_busy);
            if (thermal.Throttled()) throttled_ms += t_next - now;
            peak_temp_c = std::max(peak_temp_c, thermal.temperature_c());
            reg.GetGauge("sim.npu_temp_c").Set(thermal.temperature_c());
            obs::SimEvent ev;
            ev.name = "sim.npu_temp_c";
            ev.phase = obs::TracePhase::kCounter;
            ev.lane = obs::SimLane::kFaults;
            ev.t0_ms = t_next;
            ev.value = thermal.temperature_c();
            sim_emit(std::move(ev));
        }
        now = t_next;
        result.makespan_ms = std::max(result.makespan_ms, now);

        if (t_next == t_arrival) {
            if (options_.closed_loop) {
                auto it = std::min_element(client_wakeups.begin(),
                                           client_wakeups.end());
                client_wakeups.erase(it);
                ArrivalEvent event = sampler.Sample();
                event.arrival_ms = now;
                admit(event);
            } else {
                admit(open_arrivals[next_open++]);
            }
        } else if (npu_busy && t_next == t_npu) {
            if (npu_fate != FaultPlane::ChunkFate::kOk) {
                // Faulted attempt: discarded work. No trace task, no
                // replay step (precedent: an eviction's cancelled
                // in-flight chunk) — the occupancy lives on the faults
                // lane instead, so the trace still shows where the NPU's
                // time actually went.
                RequestRecord& record =
                    result.records[static_cast<size_t>(npu_job.id)];
                ++record.faults;
                ++result.faults;
                fault_counter.Add(1);
                ++consec_faults[static_cast<size_t>(npu_job.id)];
                fault_event(
                    npu_fate == FaultPlane::ChunkFate::kFail
                        ? "fault.chunk_fail"
                        : "fault.chunk_stall",
                    npu_job.id, npu_start, npu_end,
                    StrFormat("\"chunk\": %d, \"attempt\": %d",
                              npu_job.next_chunk, npu_job.attempt));
                npu_busy = false;
                npu_fate = FaultPlane::ChunkFate::kOk;
                maybe_failover(npu_job.id);
                ++npu_job.attempt;
                if (npu_job.attempt >= fopts.max_attempts) {
                    // Retry budget exhausted: the request terminates as
                    // shed — accounted, pages released, never goodput.
                    shed_request(npu_job.id, "chunk_retry_budget");
                } else {
                    ++record.retries;
                    ++result.retries;
                    retry_counter.Add(1);
                    npu_job.ready_ms =
                        now + fault_plane.BackoffMs(npu_job.attempt);
                    fault_event(
                        "fault.retry", npu_job.id, now, now,
                        StrFormat("\"attempt\": %d, \"not_before\": %.3f",
                                  npu_job.attempt, npu_job.ready_ms));
                    prefill_queue.push_back(npu_job);
                }
            } else {
                result.trace_tasks.push_back(
                    {StrFormat("req%d.chunk%d", npu_job.id,
                               npu_job.next_chunk),
                     Unit::kNpu, npu_end - npu_start, {},
                     npu_job.next_chunk, -1});
                result.trace.records.push_back({npu_start, npu_end});
                {
                    obs::SimEvent ev;
                    ev.name = StrFormat("req%d.chunk%d", npu_job.id,
                                        npu_job.next_chunk);
                    ev.phase = obs::TracePhase::kSpan;
                    ev.lane = obs::SimLane::kNpu;
                    ev.t0_ms = npu_start;
                    ev.t1_ms = npu_end;
                    ev.req = npu_job.id;
                    ev.args_json =
                        StrFormat("\"chunk\": %d", npu_job.next_chunk);
                    sim_emit(std::move(ev));
                }
                result.replay_steps.push_back(
                    {/*is_prefill=*/true,
                     {npu_job.id},
                     npu_job.next_chunk,
                     static_cast<int>(npu_job.profile->chunk_ms.size()),
                     {}});
                npu_busy = false;
                consec_faults[static_cast<size_t>(npu_job.id)] = 0;
                ++npu_job.next_chunk;
                npu_job.attempt = 0;
                npu_job.ready_ms = 0.0;
                if (static_cast<size_t>(npu_job.next_chunk) <
                    npu_job.profile->chunk_ms.size()) {
                    prefill_queue.push_back(npu_job);
                } else {
                    RequestRecord& record =
                        result.records[static_cast<size_t>(npu_job.id)];
                    record.prefill_done_ms = now;
                    decode_pool.push_back(npu_job.id);
                }
            }
        } else if (step_active && t_next == t_step) {  // step completes
            const double elapsed = now - step_start;
            // Decode steps are always traced on the CPU lane, even when
            // their placement is the NPU: an NPU-resident decode step
            // time-slices the accelerator with in-flight prefill chunks
            // (that contention is priced by npu_decode_interference), so
            // its NPU occupancy is not an exclusive interval and cannot
            // join the chunk rows on the kNpu lane without violating the
            // trace's one-task-per-unit invariant. The CPU lane records
            // the step's wall-clock residency; npu_busy_ms stays
            // chunks-only either way.
            result.trace_tasks.push_back(
                {StrFormat("decode.step%d(B=%zu)", step_counter,
                           step_members.size()),
                 Unit::kCpu, elapsed, {}, -1, -1});
            result.trace.records.push_back({step_start, now});
            {
                obs::SimEvent ev;
                ev.name = StrFormat("decode.step%d", step_counter);
                ev.phase = obs::TracePhase::kSpan;
                ev.lane = obs::SimLane::kDecode;
                ev.t0_ms = step_start;
                ev.t1_ms = now;
                ev.args_json = StrFormat(
                    "\"batch\": %d",
                    static_cast<int>(step_members.size()));
                sim_emit(std::move(ev));
            }
            {
                ReplayStep rstep;
                rstep.is_prefill = false;
                rstep.request_ids = step_members;
                if (inject_on || dynamic_placement) {
                    rstep.placements = step_placements;
                }
                result.replay_steps.push_back(std::move(rstep));
            }
            ++step_counter;
            result.decode_busy_ms += elapsed;
            step_active = false;
            for (int id : step_members) {
                RequestRecord& record =
                    result.records[static_cast<size_t>(id)];
                // A mid-step pool shrink can shed or evict a member while
                // its step is still draining; the discarded computation
                // emits nothing.
                if (record.shed) continue;
                if (std::find(decode_pool.begin(), decode_pool.end(),
                              id) == decode_pool.end()) {
                    continue;  // evicted mid-step
                }
                ++record.tokens_out;
                // TTFT is to the first token *ever* emitted; an evicted
                // request's re-decode must not reset it.
                if (record.tokens_out == 1 && record.first_token_ms < 0.0) {
                    record.first_token_ms = now;
                    obs::SimEvent ev;
                    ev.name = "sim.first_token";
                    ev.t0_ms = now;
                    ev.req = id;
                    sim_emit(std::move(ev));
                }
                if (record.tokens_out >= record.request.output_len) {
                    record.finish_ms = now;
                    obs::SimEvent ev;
                    ev.name = "sim.complete";
                    ev.t0_ms = now;
                    ev.req = id;
                    sim_emit(std::move(ev));
                    decode_pool.erase(std::find(decode_pool.begin(),
                                                decode_pool.end(), id));
                    kv_drop_all(id);
                    if (options_.closed_loop &&
                        issued < options_.num_requests) {
                        client_wakeups.push_back(now +
                                                 options_.think_time_ms);
                        ++issued;
                    }
                }
            }
            // KV growth for the members that stay in the pool: each just
            // appended one position; growth past the free pages runs the
            // eviction order above.
            for (int id : step_members) {
                if (std::find(decode_pool.begin(), decode_pool.end(), id) ==
                    decode_pool.end()) {
                    continue;  // finished, shed, or evicted earlier
                }
                const RequestRecord& record =
                    result.records[static_cast<size_t>(id)];
                // Growth is charged against the private pages: generated
                // tokens extend the suffix, never the page-aligned shared
                // prefix, so the prefix stays counted once.
                const int64_t needed = pages_for(
                    static_cast<int64_t>(record.request.PrivatePromptLen()) +
                    record.tokens_out);
                int64_t delta = needed - kv_held[static_cast<size_t>(id)];
                if (delta <= 0) continue;
                while (kv_bounded && delta > kv_free) {
                    if (evict_one_for(id)) continue;
                    // Only holders older than the grower remain: the
                    // grower itself is preempted and recomputes later.
                    decode_pool.erase(std::find(decode_pool.begin(),
                                                decode_pool.end(), id));
                    kv_drop_all(id);
                    RequestRecord& vrec =
                        result.records[static_cast<size_t>(id)];
                    vrec.tokens_out = 0;
                    vrec.prefill_done_ms = -1.0;
                    ++vrec.evictions;
                    evict_counter.Add(1);
                    {
                        obs::SimEvent ev;
                        ev.name = "sim.evict";
                        ev.t0_ms = now;
                        ev.req = id;
                        sim_emit(std::move(ev));
                    }
                    PendingPrefill again;
                    again.id = id;
                    again.profile =
                        &costs_.Costs(vrec.request.ServedInference());
                    prefill_queue.push_back(again);
                    delta = 0;
                    break;
                }
                if (delta > 0) kv_take(id, delta);
            }
            step_members.clear();
            step_placements.clear();
        }
        // (Otherwise: a fault-plane wake-up — a retry backoff or queued
        // deadline expiring, or the pool shrink. The sweeps and dispatch
        // attempts below do the actual work.)

        if (shrink_pending && now >= fopts.pool_shrink_at_ms) do_shrink();
        if (options_.shed_expired_queued) expire_sweep();
        if (sharing_on && kv_bounded) prefix_feasibility_sweep();
        if (inject_on && fopts.brownout_shedding && thermal.Throttled()) {
            brownout_sweep();
        }
        start_chunk_if_idle();
        start_step_if_idle();
    }

    if (result.makespan_ms > 0.0) {
        result.kv_pages_mean = kv_integral / result.makespan_ms;
        result.npu_throttled_frac = throttled_ms / result.makespan_ms;
    }
    result.peak_temp_c = peak_temp_c;
    result.kv_pages_peak_post_shrink = post_shrink_peak;

    // Thin reads back from the registry: peak occupancy came from the
    // gauge watermark, evictions from the counter delta over this run.
    result.kv_pages_peak = static_cast<int64_t>(kv_gauge.peak());
    result.evictions =
        static_cast<int>(evict_counter.value() - evict_base);

    // ---- Finalize the execution trace as a TimelineResult so the shared
    // schedule-validity helpers apply (per-unit busy, spans, makespan).
    result.trace.makespan_ms = result.makespan_ms;
    for (size_t i = 0; i < result.trace_tasks.size(); ++i) {
        const size_t unit =
            static_cast<size_t>(result.trace_tasks[i].unit);
        const TaskRecord& record = result.trace.records[i];
        result.trace.busy_ms[unit] += record.end_ms - record.start_ms;
        if (result.trace.span_end_ms[unit] == 0.0) {
            result.trace.span_start_ms[unit] = record.start_ms;
        }
        result.trace.span_start_ms[unit] =
            std::min(result.trace.span_start_ms[unit], record.start_ms);
        result.trace.span_end_ms[unit] =
            std::max(result.trace.span_end_ms[unit], record.end_ms);
    }
    return result;
}

}  // namespace llmnpu
