/**
 * @file
 * Aggregate serving metrics: the throughput / tail-latency / goodput view
 * of a simulated run, built on util/stats.h. Per-request raw numbers live
 * in RequestRecord (src/serving/request.h).
 */
#ifndef LLMNPU_SERVING_METRICS_H
#define LLMNPU_SERVING_METRICS_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/serving/request.h"

namespace llmnpu {

/** One run's aggregate metrics. All latencies in ms, rates in req/s.
 *  Every field is well-defined (0, never NaN) for degenerate runs — an
 *  all-rejected trace or an empty record set yields an all-zero report. */
struct ServingReport {
    int admitted = 0;
    /** Refused at arrival by KV admission control. */
    int rejected = 0;
    int completed = 0;
    double makespan_ms = 0.0;

    /** Completed requests per second of makespan. */
    double throughput_rps = 0.0;
    /** Completed-within-SLO requests per second of makespan. */
    double goodput_rps = 0.0;
    /** Fraction of completed requests that met their deadline. */
    double slo_attainment = 0.0;

    double ttft_p50_ms = 0.0;
    double ttft_p95_ms = 0.0;
    double ttft_p99_ms = 0.0;
    double e2e_p50_ms = 0.0;
    double e2e_p95_ms = 0.0;
    double e2e_p99_ms = 0.0;
    double tpot_mean_ms = 0.0;
    double queueing_mean_ms = 0.0;

    /** Decode throughput: tokens emitted per second of makespan (the
     *  decode-placement comparison metric of bench_serving). */
    double decode_tokens_per_sec = 0.0;

    /** Accelerator (prefill) busy fraction of the makespan. */
    double npu_utilization = 0.0;
    /** Decode-processor busy fraction of the makespan. */
    double decode_utilization = 0.0;
    /** Decode steps slowed by an incoming prefill chunk. */
    int preemptions = 0;
    /** KV-page eviction preemptions (requests bounced back to prefill). */
    int evictions = 0;

    /** Requests shed by the fault plane after admission (retry budget
     *  exhausted, brownout, post-shrink infeasibility, queue expiry).
     *  Shed requests count as SLO misses, never toward goodput. */
    int shed = 0;
    /** Injected faults across the run (every faulted attempt). */
    int faults = 0;
    /** Retry dispatches after faults. */
    int retries = 0;
    /** Requests whose decode failed over NPU->CPU (circuit breaker). */
    int failovers = 0;
    /** Fraction of the makespan the NPU spent thermally throttled. */
    double npu_throttled_frac = 0.0;
    /** Live pool budget at the end of the run (== kv_pool_pages unless a
     *  mid-run shrink fired). */
    int64_t kv_pool_pages_live = 0;
    /** Peak pages in use after the pool shrink fired (0 when no shrink);
     *  the degraded-mode invariant is peak_post <= live budget. */
    int64_t kv_pages_peak_post_shrink = 0;

    /** KV page pool budget in pages; 0 = unbounded. */
    int64_t kv_pool_pages = 0;
    /** Peak pages in use over the run. */
    int64_t kv_pages_peak = 0;
    /** Time-mean pages in use over the makespan. */
    double kv_pages_mean = 0.0;

    /** One-line human-readable summary. */
    std::string Summary() const;
};

/** Aggregates completed-request records into a report. Busy times and the
 *  makespan come from the simulator's execution trace. */
ServingReport BuildReport(const std::vector<RequestRecord>& records,
                          double makespan_ms, double npu_busy_ms,
                          double decode_busy_ms, int preemptions);

}  // namespace llmnpu

#endif  // LLMNPU_SERVING_METRICS_H
