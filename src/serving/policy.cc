#include "src/serving/policy.h"

#include "src/util/check.h"

namespace llmnpu {

std::string
PolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::kFcfs: return "fcfs";
      case SchedPolicy::kShortestPromptFirst: return "spf";
      case SchedPolicy::kSloEdf: return "slo-edf";
    }
    return "?";
}

namespace {

/** Strict-weak-order comparison of two entries under a policy. */
bool
Before(SchedPolicy policy, const QueueEntry& a, const QueueEntry& b,
       double now_ms)
{
    switch (policy) {
      case SchedPolicy::kFcfs:
        if (a.arrival_ms != b.arrival_ms) return a.arrival_ms < b.arrival_ms;
        break;
      case SchedPolicy::kShortestPromptFirst:
        if (a.remaining_prefill_ms != b.remaining_prefill_ms) {
            return a.remaining_prefill_ms < b.remaining_prefill_ms;
        }
        break;
      case SchedPolicy::kSloEdf: {
        // A request whose end-to-end deadline cannot be met even with the
        // machine to itself (remaining prefill plus its whole decode) is a
        // lost cause; spending NPU time on it only drags feasible requests
        // past their own deadlines. Serve feasible ones (earliest deadline
        // first), then the lost causes, FCFS among those.
        const bool a_feasible =
            now_ms + a.remaining_total_ms <= a.deadline_ms;
        const bool b_feasible =
            now_ms + b.remaining_total_ms <= b.deadline_ms;
        if (a_feasible != b_feasible) return a_feasible;
        if (a_feasible) {
            if (a.deadline_ms != b.deadline_ms) {
                return a.deadline_ms < b.deadline_ms;
            }
        } else if (a.arrival_ms != b.arrival_ms) {
            return a.arrival_ms < b.arrival_ms;
        }
        break;
      }
    }
    return a.request_id < b.request_id;
}

}  // namespace

size_t
PickNext(SchedPolicy policy, const std::vector<QueueEntry>& queue,
         double now_ms)
{
    LLMNPU_CHECK(!queue.empty());
    size_t best = 0;
    for (size_t i = 1; i < queue.size(); ++i) {
        if (Before(policy, queue[i], queue[best], now_ms)) best = i;
    }
    return best;
}

}  // namespace llmnpu
