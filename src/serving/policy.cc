#include "src/serving/policy.h"

#include <algorithm>

#include "src/util/check.h"

namespace llmnpu {

std::string
PolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::kFcfs: return "fcfs";
      case SchedPolicy::kShortestPromptFirst: return "spf";
      case SchedPolicy::kSloEdf: return "slo-edf";
    }
    return "?";
}

namespace {

/** Strict-weak-order comparison of two entries under a policy. */
bool
Before(SchedPolicy policy, const QueueEntry& a, const QueueEntry& b,
       double now_ms)
{
    switch (policy) {
      case SchedPolicy::kFcfs:
        if (a.arrival_ms != b.arrival_ms) return a.arrival_ms < b.arrival_ms;
        break;
      case SchedPolicy::kShortestPromptFirst:
        if (a.remaining_prefill_ms != b.remaining_prefill_ms) {
            return a.remaining_prefill_ms < b.remaining_prefill_ms;
        }
        break;
      case SchedPolicy::kSloEdf: {
        // A request whose end-to-end deadline cannot be met even with the
        // machine to itself (remaining prefill plus its whole decode) is a
        // lost cause; spending NPU time on it only drags feasible requests
        // past their own deadlines. Serve feasible ones (earliest deadline
        // first), then the lost causes, FCFS among those.
        const bool a_feasible =
            now_ms + a.remaining_total_ms <= a.deadline_ms;
        const bool b_feasible =
            now_ms + b.remaining_total_ms <= b.deadline_ms;
        if (a_feasible != b_feasible) return a_feasible;
        if (a_feasible) {
            if (a.deadline_ms != b.deadline_ms) {
                return a.deadline_ms < b.deadline_ms;
            }
        } else if (a.arrival_ms != b.arrival_ms) {
            return a.arrival_ms < b.arrival_ms;
        }
        break;
      }
    }
    return a.request_id < b.request_id;
}

}  // namespace

size_t
PickNext(SchedPolicy policy, const std::vector<QueueEntry>& queue,
         double now_ms)
{
    LLMNPU_CHECK(!queue.empty());
    size_t best = 0;
    for (size_t i = 1; i < queue.size(); ++i) {
        if (Before(policy, queue[i], queue[best], now_ms)) best = i;
    }
    return best;
}

// ------------------------------------------------------- placement policy

DecodePlacement
StaticPlacement::Place(const PlacementQuery& query) const
{
    if (query.record != nullptr && query.record->failed_over) {
        return DecodePlacement::kCpuFloat;
    }
    return query.profile != nullptr ? query.profile->decode_placement
                                    : DecodePlacement::kCpuFloat;
}

DecodePlacement
PredictedPlacement::Place(const PlacementQuery& query) const
{
    if (query.record != nullptr && query.record->failed_over) {
        return DecodePlacement::kCpuFloat;  // breaker is permanent (PR 8)
    }
    const int batch = std::max(1, query.batch_depth);
    const int64_t ctx = std::max<int64_t>(1, query.context_len);
    const double cpu_ms =
        oracle_->StepMs(DecodePlacement::kCpuFloat, ctx, batch);
    double npu_ms = oracle_->StepMs(DecodePlacement::kNpuQuant, ctx, batch);
    // Degradation-aware: a throttled NPU serves slower by the thermal
    // scale and a flaky one burns retry attempts — inflate the predicted
    // NPU price by both before comparing. Ties go to the CPU (the cheap,
    // fault-free side).
    npu_ms *= std::max(1.0, query.signals.npu_service_scale);
    npu_ms *= 1.0 + query.signals.npu_fault_rate;
    return npu_ms < cpu_ms ? DecodePlacement::kNpuQuant
                           : DecodePlacement::kCpuFloat;
}

// ------------------------------------------------------- admission policy

bool
ThresholdAdmission::Admit(const AdmissionQuery& query) const
{
    return query.kv_live_budget <= 0 ||
           query.kv_demand_pages <= query.kv_live_budget;
}

bool
PredictedSloAdmission::Admit(const AdmissionQuery& query) const
{
    if (!ThresholdAdmission().Admit(query)) return false;
    if (query.request == nullptr || query.request->deadline_ms >= 1e300) {
        return true;  // no SLO: nothing to be infeasible against
    }
    // Inflate the predicted service by the live degradation signals (a
    // throttled NPU stretches every chunk by the thermal scale, a flaky
    // one re-runs a fault_rate fraction of dispatches) and by decode
    // congestion: the isolated figure prices decode solo, but this
    // arrival would join a continuous batch where every resident stream
    // adds one batch-marginal share to its steps.
    double service_ms = query.isolated_e2e_ms *
                        std::max(1.0, query.signals.npu_service_scale) *
                        (1.0 + query.signals.npu_fault_rate) *
                        (1.0 + std::max(0.0, query.decode_batch_marginal) *
                                   query.signals.decode_pool_depth);
    const double predicted_finish =
        query.signals.now_ms + query.queued_prefill_ms +
        service_ms * headroom_;
    return predicted_finish <= query.request->deadline_ms;
}

// --------------------------------------------------------------- registry

const std::vector<PlacementPolicySpec>&
PlacementPolicyRegistry()
{
    static const std::vector<PlacementPolicySpec>* const kRegistry =
        new std::vector<PlacementPolicySpec>{
            {"static-cpu", DecodePlacement::kCpuFloat, false},
            {"static-npu", DecodePlacement::kNpuQuant, false},
            {"predicted", DecodePlacement::kCpuFloat, true},
        };
    return *kRegistry;
}

std::shared_ptr<PlacementPolicy>
MakePlacementPolicy(const std::string& name,
                    const predict::StepCostOracle* oracle)
{
    for (const PlacementPolicySpec& spec : PlacementPolicyRegistry()) {
        if (spec.name != name) continue;
        if (!spec.dynamic) {
            return std::make_shared<StaticPlacement>(spec.name);
        }
        LLMNPU_CHECK(oracle != nullptr);
        return std::make_shared<PredictedPlacement>(*oracle, spec.name);
    }
    LLMNPU_FATAL_IF(true, "unknown placement policy '" + name + "'");
    return nullptr;
}

const std::vector<std::string>&
AdmissionPolicyRegistry()
{
    static const std::vector<std::string>* const kRegistry =
        new std::vector<std::string>{"threshold", "predicted-slo"};
    return *kRegistry;
}

std::shared_ptr<AdmissionPolicy>
MakeAdmissionPolicy(const std::string& name)
{
    if (name == "threshold") return std::make_shared<ThresholdAdmission>();
    if (name == "predicted-slo") {
        return std::make_shared<PredictedSloAdmission>();
    }
    LLMNPU_FATAL_IF(true, "unknown admission policy '" + name + "'");
    return nullptr;
}

std::shared_ptr<QueuePolicy>
MakeQueuePolicy(SchedPolicy policy)
{
    return std::make_shared<SchedQueuePolicy>(policy);
}

}  // namespace llmnpu
