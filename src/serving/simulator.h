/**
 * @file
 * Discrete-event multi-request serving simulator over the engines.
 *
 * The machine being modeled is the paper's deployment: one shared NPU runs
 * prefill chunk-by-chunk while the CPU (or GPU) decodes already-prefilled
 * requests as a continuously batched stream. A scheduling policy
 * (src/serving/policy.h) picks which request's next chunk the NPU runs;
 * decode proceeds concurrently but is slowed by the float-stage share the
 * in-flight chunk holds (an incoming chunk preempting decode bandwidth).
 *
 * Two load modes: open-loop Poisson arrivals at an offered rate, and a
 * closed loop of `num_clients` clients with think time. Arrivals draw from
 * a Table 5 dataset mixture (src/workloads/arrivals.h).
 *
 * Every executed quantum (prefill chunk, decode step) is exported as a
 * SimTask + TaskRecord trace so the sim layer's schedule-validity checks
 * (tests/support/timeline_asserts.h) apply to serving schedules too.
 */
#ifndef LLMNPU_SERVING_SIMULATOR_H
#define LLMNPU_SERVING_SIMULATOR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "src/model/placement.h"
#include "src/serving/cost_model.h"
#include "src/serving/faults.h"
#include "src/serving/metrics.h"
#include "src/serving/policy.h"
#include "src/serving/request.h"
#include "src/sim/timeline.h"
#include "src/workloads/arrivals.h"

namespace llmnpu {

/** Serving simulation parameters. */
struct ServingOptions {
    /** Deprecated spelling: prefer `queue_policy`. Kept source-compatible;
     *  when queue_policy is null the simulator constructs the matching
     *  SchedQueuePolicy from this enum at Run() start. */
    SchedPolicy policy = SchedPolicy::kFcfs;

    /**
     * The pluggable control plane (src/serving/policy.h). Null fields
     * fall back to the legacy defaults above/below at Run() start:
     * SchedQueuePolicy(policy), StaticPlacement (follow the engine
     * profile), ThresholdAdmission (whole-demand KV check). A run with
     * the defaults — explicit or null — is bit-identical to the
     * pre-policy-object simulator.
     *
     * A dynamic placement policy (PlacementPolicy::IsDynamic()) is
     * consulted per decode-pool member at every step boundary with the
     * live degradation signals; off-profile members are priced through
     * the calibrated StepCostOracle and the executed placements are
     * recorded on ReplayStep::placements for bitwise replay.
     */
    std::shared_ptr<QueuePolicy> queue_policy;
    std::shared_ptr<PlacementPolicy> placement_policy;
    std::shared_ptr<AdmissionPolicy> admission_policy;

    /** false: open-loop Poisson at rate_rps; true: closed loop of
     *  num_clients clients with think_time_ms between requests. */
    bool closed_loop = false;
    double rate_rps = 1.0;
    int num_clients = 4;
    double think_time_ms = 0.0;

    /** Total requests admitted over the run. */
    int num_requests = 100;
    uint64_t seed = 42;

    /** Deadline = arrival + slo_factor * isolated single-request latency
     *  (per request shape, so short UI-automation requests carry tight
     *  absolute deadlines). <= 0 disables SLOs (deadline = +inf). */
    double slo_factor = 3.0;

    /** Continuous-batching decode: max requests per decode step. */
    int max_decode_batch = 8;
    /** Marginal cost of each extra batched stream relative to the first
     *  (weights are streamed once per step; extra activations are cheap).
     *  Step time = token_ms * (1 + (B-1) * this). */
    double decode_batch_marginal = 0.15;

    /**
     * KV page pool budget in pages (the serving-side mirror of
     * KvPagePool's max_pages); 0 = unbounded, the legacy behavior. A
     * bounded pool turns KV memory into a scheduled resource:
     *  - arrival: a request whose whole demand (prompt + output pages)
     *    exceeds the budget is rejected outright — it could never run;
     *  - first chunk dispatch: the prompt's pages are reserved, and a
     *    request that does not fit right now stays queued (backpressure,
     *    not rejection);
     *  - decode: page growth past the reservation evicts the youngest
     *    decode-pool member (pages released, prefill restarted), the
     *    paper's preemption-by-recompute under memory pressure.
     */
    int64_t kv_pool_pages = 0;
    /** Positions per KV page for the admission/eviction arithmetic; must
     *  match the numeric plane's PagedKvOptions::page_size for honest
     *  accounting. */
    int64_t kv_page_size = 16;

    /**
     * Shared-system-prompt scenario (src/workloads/arrivals.h): one
     * page-aligned prefix carried by `share_fraction` of arrivals. The
     * prefix's KV is a shared-cache asset:
     *  - its pages are charged *once* across all referencing requests —
     *    materialized at the first referencer's reservation, dropped when
     *    the last referencer's pages are released;
     *  - admission counts a sharer's demand as its private suffix plus the
     *    prefix only when no referencer currently holds it;
     *  - sharers prefill (and are cost-priced on) the private suffix only;
     *  - eviction prefers victims whose pages are all private: within each
     *    tier of the termination-safe victim order, a victim whose removal
     *    would drop the shared prefix is picked only when no other victim
     *    in that tier exists.
     * Disabled (prefix_len == 0) is bit-identical to the legacy simulator.
     */
    SharedPrefixOptions shared_prefix;

    /** Fault-injection scenario and its defenses (src/serving/faults.h).
     *  Default-constructed = fully disabled: the simulator is bit-identical
     *  to a build without the fault plane. */
    FaultOptions faults;
    /** Shed queued requests whose SLO deadline passed before they ever
     *  dispatched: they count as shed (an SLO miss, never goodput) and
     *  their reserved KV pages are released at the deadline. Off by
     *  default so legacy runs are unchanged. */
    bool shed_expired_queued = false;

    /** Exits with a fatal user error on invalid parameters (bad pool
     *  sizes, non-positive rates, out-of-range fault probabilities, ...).
     *  Called at simulator construction so a bad sweep fails loudly at the
     *  first run, not with a corrupted report. */
    void Validate() const;
};

/**
 * One executed quantum of a run as the numeric plane sees it: which
 * requests ran together and, for prefill, which chunk of how many. The
 * sequence of ReplaySteps is the serving→numeric bridge — replaying it
 * through Transformer::ForwardBatch (src/serving/replay.h) executes the
 * exact batch composition the scheduler produced on real tensors.
 */
struct ReplayStep {
    /** true: one request's prefill chunk on the NPU; false: a continuously
     *  batched decode step (every member emits one token). */
    bool is_prefill = false;
    /** Batch members in decode-pool order (exactly one id for prefill). */
    std::vector<int> request_ids;
    /** Prefill only: chunk index within the request's chunk sequence. */
    int chunk_index = -1;
    /** Prefill only: total chunks of the request. */
    int num_chunks = 0;
    /** Decode only: executed placement per member, parallel to
     *  request_ids. Filled by fault-plane runs (the circuit breaker can
     *  fail a request's decode NPU->CPU mid-stream) and by dynamic
     *  placement policies (mid-run CPU/NPU flips at step boundaries); the
     *  replay bridge prefers these over its static per-request placement
     *  so both kinds of schedule replay bitwise. Empty = caller decides
     *  (legacy). */
    std::vector<DecodePlacement> placements;
};

/** Raw outcome of a serving run. */
struct ServingResult {
    /** One record per admitted request, indexed by request id. */
    std::vector<RequestRecord> records;
    double makespan_ms = 0.0;
    double npu_busy_ms = 0.0;
    double decode_busy_ms = 0.0;
    /** Decode steps slowed by an incoming prefill chunk. */
    int preemptions = 0;
    /** Requests refused at arrival by KV admission control. */
    int rejected = 0;
    /** KV-page eviction preemptions across the run. */
    int evictions = 0;
    /** Pool budget the run was configured with (0 = unbounded). */
    int64_t kv_pool_pages = 0;
    /** Peak pages in use over the run. */
    int64_t kv_pages_peak = 0;
    /** Time-mean pages in use over the makespan. */
    double kv_pages_mean = 0.0;

    /** Requests shed by the fault plane after admission (retry budget
     *  exhausted, brownout, post-shrink infeasibility, queue expiry). */
    int shed = 0;
    /** Injected faults across the run (every faulted attempt counted). */
    int faults = 0;
    /** Retry dispatches after faults. */
    int retries = 0;
    /** Requests whose decode failed over NPU->CPU (circuit breaker). */
    int failovers = 0;
    /** NPU occupancy of faulted and cancelled attempts; discarded work,
     *  kept out of npu_busy_ms so utilization stays honest. */
    double npu_faulted_ms = 0.0;
    /** Fraction of the makespan the NPU spent thermally throttled. */
    double npu_throttled_frac = 0.0;
    /** Peak die temperature over the run (start temperature when the
     *  thermal model is disabled). */
    double peak_temp_c = 0.0;
    /** Live pool budget at the end of the run (== kv_pool_pages unless a
     *  mid-run shrink fired). */
    int64_t kv_pool_pages_live = 0;
    /** Peak pages in use after a mid-run pool shrink completed (0 when no
     *  shrink fired). Invariant: never exceeds kv_pool_pages_live. */
    int64_t kv_pages_peak_post_shrink = 0;

    /** Pages of the shared system prefix (0 = scenario disabled). */
    int64_t shared_prefix_pages = 0;
    /** Admitted requests carrying the shared prefix. */
    int shared_requests = 0;
    /** Times the prefix went from unreferenced to resident (pages charged
     *  to the pool). > 1 means the prefix was dropped and rebuilt. */
    int shared_prefix_materializations = 0;
    /** Times the last referencer released the prefix (pages freed). */
    int shared_prefix_drops = 0;
    /** Peak simultaneous referencers of the shared prefix. */
    int shared_prefix_refs_peak = 0;

    /** Executed quanta (chunks on the NPU, decode steps on the CPU) with
     *  their realized start/end times, for schedule-validity checks.
     *  Prefill tasks carry the chunk index in SimTask::chunk; which
     *  request (or decode step) a task belongs to is in its label. */
    std::vector<SimTask> trace_tasks;
    TimelineResult trace;

    /** Per-step batch composition in execution order (parallel to
     *  trace_tasks), for numeric-plane replay. */
    std::vector<ReplayStep> replay_steps;

    ServingReport Report() const;
};

/** The serving simulator. Reusable across Run() calls; share one
 *  ServingCostModel across policy/load sweeps to amortize decomposition. */
class ServingSimulator
{
  public:
    ServingSimulator(ServingCostModel& costs,
                     std::vector<DatasetProfile> mix,
                     ServingOptions options);

    /** Runs the full simulation until every admitted request completes. */
    ServingResult Run();

    const ServingOptions& options() const { return options_; }

  private:
    ServingCostModel& costs_;
    std::vector<DatasetProfile> mix_;
    ServingOptions options_;
};

}  // namespace llmnpu

#endif  // LLMNPU_SERVING_SIMULATOR_H
