#include "src/serving/metrics.h"

#include "src/obs/histogram.h"
#include "src/obs/metrics.h"
#include "src/util/format.h"

namespace llmnpu {

ServingReport
BuildReport(const std::vector<RequestRecord>& records, double makespan_ms,
            double npu_busy_ms, double decode_busy_ms, int preemptions)
{
    ServingReport report;
    report.makespan_ms = makespan_ms;
    report.preemptions = preemptions;

    // Per-request latency samples live in the process-wide registry
    // ("serving.*" histograms); the report quantiles below are thin reads
    // of them, so a trace export carries the same numbers. Each report
    // rebuilds the histograms from its record set (last-writer wins).
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    obs::Histogram& ttft = reg.GetHistogram("serving.ttft_ms",
                                            obs::DefaultLatencyBucketsMs());
    obs::Histogram& e2e = reg.GetHistogram("serving.e2e_ms",
                                           obs::DefaultLatencyBucketsMs());
    obs::Histogram& tpot = reg.GetHistogram("serving.tpot_ms",
                                            obs::DefaultLatencyBucketsMs());
    obs::Histogram& queueing = reg.GetHistogram(
        "serving.queueing_ms", obs::DefaultLatencyBucketsMs());
    ttft.Reset();
    e2e.Reset();
    tpot.Reset();
    queueing.Reset();

    int met_slo = 0;
    int64_t tokens_out = 0;
    for (const RequestRecord& record : records) {
        if (record.rejected) {
            ++report.rejected;
            continue;
        }
        ++report.admitted;
        report.evictions += record.evictions;
        report.faults += record.faults;
        report.retries += record.retries;
        if (record.shed) ++report.shed;
        if (record.failed_over) ++report.failovers;
        tokens_out += record.tokens_out;
        if (!record.Completed()) continue;
        ++report.completed;
        ttft.Add(record.TtftMs());
        e2e.Add(record.E2eMs());
        tpot.Add(record.TpotMs());
        queueing.Add(record.QueueingMs());
        met_slo += record.MetSlo() ? 1 : 0;
    }
    // Each block below is guarded only by its own denominator, so a
    // degenerate run (all rejected, nothing completed, zero makespan)
    // still yields an all-defined report: Histogram percentiles and means
    // both return 0.0 on empty samples, never NaN.
    report.ttft_p50_ms = ttft.Percentile(50.0);
    report.ttft_p95_ms = ttft.Percentile(95.0);
    report.ttft_p99_ms = ttft.Percentile(99.0);
    report.e2e_p50_ms = e2e.Percentile(50.0);
    report.e2e_p95_ms = e2e.Percentile(95.0);
    report.e2e_p99_ms = e2e.Percentile(99.0);
    report.tpot_mean_ms = tpot.mean();
    report.queueing_mean_ms = queueing.mean();
    if (makespan_ms > 0.0) {
        report.throughput_rps = report.completed / (makespan_ms / 1e3);
        report.goodput_rps = met_slo / (makespan_ms / 1e3);
        report.npu_utilization = npu_busy_ms / makespan_ms;
        report.decode_utilization = decode_busy_ms / makespan_ms;
        report.decode_tokens_per_sec =
            static_cast<double>(tokens_out) / (makespan_ms / 1e3);
    }
    if (report.completed > 0) {
        report.slo_attainment =
            static_cast<double>(met_slo) / report.completed;
    }
    return report;
}

std::string
ServingReport::Summary() const
{
    std::string line = StrFormat(
        "%d/%d done  %.2f req/s (goodput %.2f, SLO %.0f%%)  ttft p50/p99 "
        "%s/%s  e2e p99 %s  npu %.0f%%",
        completed, admitted, throughput_rps, goodput_rps,
        slo_attainment * 100.0, HumanMs(ttft_p50_ms).c_str(),
        HumanMs(ttft_p99_ms).c_str(), HumanMs(e2e_p99_ms).c_str(),
        npu_utilization * 100.0);
    if (kv_pool_pages > 0) {
        line += StrFormat("  kv %lld/%lld pages (rej %d, evict %d)",
                          static_cast<long long>(kv_pages_peak),
                          static_cast<long long>(kv_pool_pages), rejected,
                          evictions);
    }
    if (faults > 0 || shed > 0 || failovers > 0) {
        line += StrFormat("  faults %d (retries %d, shed %d, failover %d)",
                          faults, retries, shed, failovers);
    }
    return line;
}

}  // namespace llmnpu
