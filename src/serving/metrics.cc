#include "src/serving/metrics.h"

#include "src/util/format.h"
#include "src/util/stats.h"

namespace llmnpu {

ServingReport
BuildReport(const std::vector<RequestRecord>& records, double makespan_ms,
            double npu_busy_ms, double decode_busy_ms, int preemptions)
{
    ServingReport report;
    report.makespan_ms = makespan_ms;
    report.preemptions = preemptions;

    std::vector<double> ttft, e2e;
    RunningStat tpot, queueing;
    int met_slo = 0;
    int64_t tokens_out = 0;
    for (const RequestRecord& record : records) {
        if (record.rejected) {
            ++report.rejected;
            continue;
        }
        ++report.admitted;
        report.evictions += record.evictions;
        tokens_out += record.tokens_out;
        if (!record.Completed()) continue;
        ++report.completed;
        ttft.push_back(record.TtftMs());
        e2e.push_back(record.E2eMs());
        tpot.Add(record.TpotMs());
        queueing.Add(record.QueueingMs());
        met_slo += record.MetSlo() ? 1 : 0;
    }
    // Each block below is guarded only by its own denominator, so a
    // degenerate run (all rejected, nothing completed, zero makespan)
    // still yields an all-defined report: Percentile and RunningStat both
    // return 0.0 on empty samples, never NaN.
    report.ttft_p50_ms = Percentile(ttft, 50.0);
    report.ttft_p95_ms = Percentile(ttft, 95.0);
    report.ttft_p99_ms = Percentile(ttft, 99.0);
    report.e2e_p50_ms = Percentile(e2e, 50.0);
    report.e2e_p95_ms = Percentile(e2e, 95.0);
    report.e2e_p99_ms = Percentile(e2e, 99.0);
    report.tpot_mean_ms = tpot.mean();
    report.queueing_mean_ms = queueing.mean();
    if (makespan_ms > 0.0) {
        report.throughput_rps = report.completed / (makespan_ms / 1e3);
        report.goodput_rps = met_slo / (makespan_ms / 1e3);
        report.npu_utilization = npu_busy_ms / makespan_ms;
        report.decode_utilization = decode_busy_ms / makespan_ms;
        report.decode_tokens_per_sec =
            static_cast<double>(tokens_out) / (makespan_ms / 1e3);
    }
    if (report.completed > 0) {
        report.slo_attainment =
            static_cast<double>(met_slo) / report.completed;
    }
    return report;
}

std::string
ServingReport::Summary() const
{
    std::string line = StrFormat(
        "%d/%d done  %.2f req/s (goodput %.2f, SLO %.0f%%)  ttft p50/p99 "
        "%s/%s  e2e p99 %s  npu %.0f%%",
        completed, admitted, throughput_rps, goodput_rps,
        slo_attainment * 100.0, HumanMs(ttft_p50_ms).c_str(),
        HumanMs(ttft_p99_ms).c_str(), HumanMs(e2e_p99_ms).c_str(),
        npu_utilization * 100.0);
    if (kv_pool_pages > 0) {
        line += StrFormat("  kv %lld/%lld pages (rej %d, evict %d)",
                          static_cast<long long>(kv_pages_peak),
                          static_cast<long long>(kv_pool_pages), rejected,
                          evictions);
    }
    return line;
}

}  // namespace llmnpu
