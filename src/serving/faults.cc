#include "src/serving/faults.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace llmnpu {
namespace {

// Draw-domain tags keep the per-coordinate hash streams independent: the
// same (request, chunk, attempt) triple must not correlate a failure draw
// with a stall draw.
constexpr uint64_t kDomainChunkFail = 1;
constexpr uint64_t kDomainChunkStall = 2;
constexpr uint64_t kDomainChunkFraction = 3;
constexpr uint64_t kDomainDecodeFail = 4;

// SplitMix64 output finalizer (same constants as src/util/rng.h). Used as
// a stateless avalanche hash: injection draws are a pure function of their
// coordinates, never of how many draws ran before them.
uint64_t
Mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

void
ValidateProb(double p, const char* name)
{
    LLMNPU_FATAL_IF(!(p >= 0.0 && p < 1.0),
                    std::string("fault ") + name + " must be in [0, 1)");
}

}  // namespace

bool
FaultOptions::Enabled() const
{
    return chunk_failure_prob > 0.0 || chunk_stall_prob > 0.0 ||
           decode_failure_prob > 0.0 || thermal.enabled ||
           brownout_shedding || pool_shrink_at_ms >= 0.0;
}

void
FaultOptions::Validate() const
{
    ValidateProb(chunk_failure_prob, "chunk_failure_prob");
    ValidateProb(chunk_stall_prob, "chunk_stall_prob");
    ValidateProb(decode_failure_prob, "decode_failure_prob");
    LLMNPU_FATAL_IF(chunk_failure_prob + chunk_stall_prob >= 1.0,
                    "fault chunk_failure_prob + chunk_stall_prob must be < 1");
    LLMNPU_FATAL_IF(timeout_factor <= 1.0,
                    "fault timeout_factor must be > 1");
    LLMNPU_FATAL_IF(retry_backoff_ms < 0.0,
                    "fault retry_backoff_ms must be >= 0");
    LLMNPU_FATAL_IF(retry_backoff_cap_ms < retry_backoff_ms,
                    "fault retry_backoff_cap_ms must be >= retry_backoff_ms");
    LLMNPU_FATAL_IF(max_attempts < 1, "fault max_attempts must be >= 1");
    LLMNPU_FATAL_IF(pool_shrink_at_ms >= 0.0 &&
                        !(pool_shrink_to > 0.0 && pool_shrink_to <= 1.0),
                    "fault pool_shrink_to must be in (0, 1]");
    thermal.Validate();
}

FaultPlane::FaultPlane(const FaultOptions& options) : options_(options)
{
    options_.Validate();
}

double
FaultPlane::Draw(uint64_t domain, uint64_t a, uint64_t b, uint64_t c) const
{
    // Fold the coordinates through successive finalizer rounds; each round
    // fully avalanches, so adjacent coordinates share no draw structure.
    uint64_t h = Mix64(options_.seed ^ Mix64(domain));
    h = Mix64(h ^ Mix64(a));
    h = Mix64(h ^ Mix64(b));
    h = Mix64(h ^ Mix64(c));
    // Top 53 bits -> uniform double in [0, 1).
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultPlane::ChunkFate
FaultPlane::Chunk(int request, int chunk, int attempt) const
{
    if (options_.chunk_failure_prob <= 0.0 &&
        options_.chunk_stall_prob <= 0.0) {
        return ChunkFate::kOk;
    }
    const double u =
        Draw(kDomainChunkFail, static_cast<uint64_t>(request),
             static_cast<uint64_t>(chunk), static_cast<uint64_t>(attempt));
    if (u < options_.chunk_failure_prob) return ChunkFate::kFail;
    if (options_.chunk_stall_prob <= 0.0) return ChunkFate::kOk;
    const double v =
        Draw(kDomainChunkStall, static_cast<uint64_t>(request),
             static_cast<uint64_t>(chunk), static_cast<uint64_t>(attempt));
    if (v < options_.chunk_stall_prob) return ChunkFate::kStall;
    return ChunkFate::kOk;
}

double
FaultPlane::ChunkFailFraction(int request, int chunk, int attempt) const
{
    const double u =
        Draw(kDomainChunkFraction, static_cast<uint64_t>(request),
             static_cast<uint64_t>(chunk), static_cast<uint64_t>(attempt));
    return 0.05 + 0.90 * u;
}

bool
FaultPlane::DecodeFaults(int request, int token_index, int attempt) const
{
    if (options_.decode_failure_prob <= 0.0) return false;
    const double u = Draw(kDomainDecodeFail, static_cast<uint64_t>(request),
                          static_cast<uint64_t>(token_index),
                          static_cast<uint64_t>(attempt));
    return u < options_.decode_failure_prob;
}

double
FaultPlane::BackoffMs(int attempt) const
{
    LLMNPU_CHECK(attempt >= 1);
    const double delay =
        options_.retry_backoff_ms *
        std::pow(2.0, static_cast<double>(std::min(attempt, 60) - 1));
    return std::min(delay, options_.retry_backoff_cap_ms);
}

}  // namespace llmnpu
