/**
 * @file
 * The pluggable serving control plane: queue ordering, per-step decode
 * placement, and admission control as three policy interfaces the
 * simulator consults at its decision points.
 *
 *  - QueuePolicy: which queued request's next prefill chunk runs (the
 *    simulator re-picks at chunk granularity, so every policy preempts
 *    long prefills between chunks — never mid-chunk: NPU graph
 *    executions are uninterruptible).
 *  - PlacementPolicy: where each decode-pool member's next step runs.
 *    Dynamic policies (PredictedPlacement) price both sides through a
 *    predict::StepCostOracle and flip requests between CPU and NPU at
 *    step boundaries; the simulator records the outcome on
 *    ReplayStep::placements so dynamic schedules still replay bitwise.
 *  - AdmissionPolicy: whether an arrival is accepted at all. The legacy
 *    whole-demand KV check is ThresholdAdmission; PredictedSloAdmission
 *    additionally rejects arrivals whose predicted finish (queue backlog
 *    + isolated service, inflated by live degradation signals) already
 *    misses their deadline.
 *
 * Every policy decision must be a pure function of its query — the
 * simulator replays decisions from recorded schedules, and the predict
 * test suite's conformance cases pin determinism per policy.
 */
#ifndef LLMNPU_SERVING_POLICY_H
#define LLMNPU_SERVING_POLICY_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/engines/engine.h"
#include "src/predict/step_cost.h"
#include "src/serving/request.h"

namespace llmnpu {

/** How the scheduler orders the prefill queue.
 *
 *  Deprecated spelling: this enum predates the QueuePolicy interface
 *  below and is kept source-compatible — ServingOptions::policy still
 *  takes it and constructs the matching SchedQueuePolicy when no
 *  queue_policy object is set. New call sites should set
 *  ServingOptions::queue_policy directly. */
enum class SchedPolicy {
    /** First-come-first-served by arrival time. */
    kFcfs,
    /** Shortest remaining prefill work first (SJF at chunk granularity). */
    kShortestPromptFirst,
    /** SLO-aware earliest-deadline-first: feasible requests by deadline;
     *  requests past their deadline yield to ones that can still meet it. */
    kSloEdf,
};

/** "fcfs" / "spf" / "slo-edf" (bench rows and test diagnostics). */
std::string PolicyName(SchedPolicy policy);

/** What a policy sees about one queued request. */
struct QueueEntry {
    int request_id = 0;
    double arrival_ms = 0.0;
    double deadline_ms = 1e300;
    /** Prefill service time still owed (sum of remaining chunk quanta). */
    double remaining_prefill_ms = 0.0;
    /** Total service still owed: remaining prefill plus the full decode
     *  (deadlines are end-to-end, so feasibility must price decode too). */
    double remaining_total_ms = 0.0;
};

/**
 * Picks the queue index to run next. `now_ms` lets deadline policies tell
 * feasible requests from already-expired ones. Requires non-empty queue;
 * deterministic (ties break toward the lowest request id).
 *
 * Deprecated spelling of SchedQueuePolicy::Pick; kept for existing call
 * sites.
 */
size_t PickNext(SchedPolicy policy, const std::vector<QueueEntry>& queue,
                double now_ms);

// ---------------------------------------------------------------- signals

/** Live degradation + load signals sampled by the simulator at decision
 *  time. This is how the PR-8 fault plane feeds the control plane: a
 *  throttled or flaky NPU sheds load through placement/admission before
 *  requests burn retries. All zeros/defaults when injection is off. */
struct PolicySignals {
    double now_ms = 0.0;
    /** Thermal service-time multiplier for NPU-placed work (1.0 = cool,
     *  ramping to ThermalOptions::max_slowdown when throttled). */
    double npu_service_scale = 1.0;
    /** Die at/above the throttle threshold (brownout regime). */
    bool npu_throttled = false;
    double npu_temp_c = 0.0;
    /** Injected faults per NPU dispatch attempt so far. */
    double npu_fault_rate = 0.0;
    /** Cumulative virtual time lost to NPU faults + retry backoff. */
    double npu_faulted_ms = 0.0;
    /** Decode streams resident in the continuous batch. */
    int decode_pool_depth = 0;
    /** Free pages in the KV pool (0 when the pool is unbounded). */
    int64_t kv_free_pages = 0;
};

// ----------------------------------------------------------- queue policy

/** Orders the prefill queue (interface form of SchedPolicy). */
class QueuePolicy
{
  public:
    virtual ~QueuePolicy() = default;
    virtual std::string Name() const = 0;
    /** Same contract as PickNext(): index of the entry to run next;
     *  non-empty queue; deterministic. */
    virtual size_t Pick(const std::vector<QueueEntry>& queue,
                        double now_ms) const = 0;
};

/** The legacy enum behaviors as one named implementation. */
class SchedQueuePolicy : public QueuePolicy
{
  public:
    explicit SchedQueuePolicy(SchedPolicy policy) : policy_(policy) {}
    std::string Name() const override { return PolicyName(policy_); }
    size_t Pick(const std::vector<QueueEntry>& queue,
                double now_ms) const override
    {
        return PickNext(policy_, queue, now_ms);
    }
    SchedPolicy policy() const { return policy_; }

  private:
    SchedPolicy policy_;
};

// ------------------------------------------------------- placement policy

/** Everything a placement policy sees about one decode-pool member. */
struct PlacementQuery {
    /** The deciding member's request + failover/retry state. */
    const RequestRecord* record = nullptr;
    /** The engine's cost decomposition of that request. */
    const ServingCostProfile* profile = nullptr;
    /** Current context length (prompt + tokens already emitted). */
    int64_t context_len = 0;
    /** Decode-batch depth the next step would run at. */
    int batch_depth = 1;
    /** Serving-layer default batch marginal for engines with no opinion
     *  (ServingOptions::decode_batch_marginal). */
    double default_batch_marginal = 0.15;
    PolicySignals signals;
};

/** Decides where a member's next decode step runs. */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;
    virtual std::string Name() const = 0;
    /** Must be a pure function of `query`: the simulator records the
     *  outcome per member on ReplayStep::placements, and bitwise replay
     *  depends on the decision being reproducible. */
    virtual DecodePlacement Place(const PlacementQuery& query) const = 0;
    /** Dynamic policies may disagree with the engine profile mid-run; the
     *  simulator then prices off-profile steps through the calibrated
     *  StepCostOracle and always records per-member placements. Static
     *  policies keep the legacy pricing path bit-identical. */
    virtual bool IsDynamic() const { return false; }
};

/** The legacy behavior as a named implementation: follow the engine
 *  profile's decode_placement, dropping to the CPU fallback path after a
 *  circuit-breaker failover (failover is permanent, PR 8). */
class StaticPlacement : public PlacementPolicy
{
  public:
    explicit StaticPlacement(std::string name = "static")
        : name_(std::move(name))
    {}
    std::string Name() const override { return name_; }
    DecodePlacement Place(const PlacementQuery& query) const override;

  private:
    std::string name_;
};

/** Predicted-cost dynamic placement: compares the oracle's per-token step
 *  price of both placements at the current batch depth and context,
 *  inflating the NPU side by the thermal service scale and live fault
 *  rate, and runs the step where it is predicted cheaper. Reproduces the
 *  CPU-wins-to-B~8 / NPU-from-B~16 crossover from data, and backs off a
 *  degraded NPU before requests burn retries. */
class PredictedPlacement : public PlacementPolicy
{
  public:
    /** `oracle` must outlive the policy (calibrated ServingCostModel or a
     *  fitted predict::PredictedStepCosts). */
    explicit PredictedPlacement(const predict::StepCostOracle& oracle,
                                std::string name = "predicted")
        : oracle_(&oracle), name_(std::move(name))
    {}
    std::string Name() const override { return name_; }
    DecodePlacement Place(const PlacementQuery& query) const override;
    bool IsDynamic() const override { return true; }

  private:
    const predict::StepCostOracle* oracle_;
    std::string name_;
};

// ------------------------------------------------------- admission policy

/** Everything an admission policy sees about one arrival. */
struct AdmissionQuery {
    const ServingRequest* request = nullptr;
    /** Single-request end-to-end service time under the cost profile. */
    double isolated_e2e_ms = 0.0;
    /** Prefill service queued ahead of this arrival (remaining quanta of
     *  every queued request plus the chunk in flight). */
    double queued_prefill_ms = 0.0;
    int queue_depth = 0;
    /** Whole-demand KV footprint of the request, in pages. */
    int64_t kv_demand_pages = 0;
    /** Live KV pool budget in pages; 0 = unbounded. */
    int64_t kv_live_budget = 0;
    /** Serving-layer marginal cost per extra batched decode stream
     *  (ServingOptions::decode_batch_marginal) — how predictive policies
     *  price decode congestion from signals.decode_pool_depth. */
    double decode_batch_marginal = 0.15;
    PolicySignals signals;
};

/** Accepts or rejects an arrival. A rejected request is never dispatched
 *  and counts as rejected in the serving report. */
class AdmissionPolicy
{
  public:
    virtual ~AdmissionPolicy() = default;
    virtual std::string Name() const = 0;
    /** Pure function of `query`. No conforming policy may admit a
     *  whole-demand misfit (kv_demand_pages > kv_live_budget > 0): such a
     *  request can never hold its pages simultaneously and would deadlock
     *  or thrash eviction. */
    virtual bool Admit(const AdmissionQuery& query) const = 0;
};

/** The legacy behavior as a named implementation: reject only
 *  whole-demand KV misfits. */
class ThresholdAdmission : public AdmissionPolicy
{
  public:
    std::string Name() const override { return "threshold"; }
    bool Admit(const AdmissionQuery& query) const override;
};

/** SLO-feasibility admission: the threshold check plus a predicted-finish
 *  gate — now + queued prefill backlog + isolated service, inflated by
 *  the live degradation signals (thermal scale, fault rate) and by decode
 *  congestion (each resident stream adds one batch-marginal share to the
 *  step the arrival would join), must make the deadline, or the request
 *  is turned away at the door instead of shedding after it burned
 *  accelerator time. */
class PredictedSloAdmission : public AdmissionPolicy
{
  public:
    /** `headroom` scales the predicted service before the comparison
     *  (>1 = more conservative admission). */
    explicit PredictedSloAdmission(double headroom = 1.0)
        : headroom_(headroom)
    {}
    std::string Name() const override { return "predicted-slo"; }
    bool Admit(const AdmissionQuery& query) const override;

  private:
    double headroom_;
};

// --------------------------------------------------------------- registry

/** One registered placement policy: how sweeps should instantiate it.
 *  bench_serving derives its placement sweep from this list, so a new
 *  policy appears in the sweep by registering here. */
struct PlacementPolicySpec {
    std::string name;
    /** Engine decode placement to profile the run at. Dynamic policies
     *  start from a CPU-placed profile and flip members online. */
    DecodePlacement profile_placement = DecodePlacement::kCpuFloat;
    /** Whether MakePlacementPolicy requires a StepCostOracle. */
    bool dynamic = false;
};

/** All registered placement policies, stable order. */
const std::vector<PlacementPolicySpec>& PlacementPolicyRegistry();

/** Instantiates a registered placement policy by name; dynamic policies
 *  require `oracle` (fatal when missing, as is an unknown name). */
std::shared_ptr<PlacementPolicy> MakePlacementPolicy(
    const std::string& name,
    const predict::StepCostOracle* oracle = nullptr);

/** All registered admission policies, stable order. */
const std::vector<std::string>& AdmissionPolicyRegistry();

/** Instantiates a registered admission policy by name (fatal when
 *  unknown). */
std::shared_ptr<AdmissionPolicy> MakeAdmissionPolicy(
    const std::string& name);

/** The QueuePolicy form of a legacy SchedPolicy value. */
std::shared_ptr<QueuePolicy> MakeQueuePolicy(SchedPolicy policy);

}  // namespace llmnpu

#endif  // LLMNPU_SERVING_POLICY_H
