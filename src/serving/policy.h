/**
 * @file
 * Pluggable prefill-queue scheduling policies. The simulator re-picks at
 * chunk granularity, so every policy preempts long prefills between chunks
 * (never mid-chunk: NPU graph executions are uninterruptible).
 */
#ifndef LLMNPU_SERVING_POLICY_H
#define LLMNPU_SERVING_POLICY_H

#include <string>
#include <vector>

namespace llmnpu {

/** How the scheduler orders the prefill queue. */
enum class SchedPolicy {
    /** First-come-first-served by arrival time. */
    kFcfs,
    /** Shortest remaining prefill work first (SJF at chunk granularity). */
    kShortestPromptFirst,
    /** SLO-aware earliest-deadline-first: feasible requests by deadline;
     *  requests past their deadline yield to ones that can still meet it. */
    kSloEdf,
};

/** "fcfs" / "spf" / "slo-edf" (bench rows and test diagnostics). */
std::string PolicyName(SchedPolicy policy);

/** What a policy sees about one queued request. */
struct QueueEntry {
    int request_id = 0;
    double arrival_ms = 0.0;
    double deadline_ms = 1e300;
    /** Prefill service time still owed (sum of remaining chunk quanta). */
    double remaining_prefill_ms = 0.0;
    /** Total service still owed: remaining prefill plus the full decode
     *  (deadlines are end-to-end, so feasibility must price decode too). */
    double remaining_total_ms = 0.0;
};

/**
 * Picks the queue index to run next. `now_ms` lets deadline policies tell
 * feasible requests from already-expired ones. Requires non-empty queue;
 * deterministic (ties break toward the lowest request id).
 */
size_t PickNext(SchedPolicy policy, const std::vector<QueueEntry>& queue,
                double now_ms);

}  // namespace llmnpu

#endif  // LLMNPU_SERVING_POLICY_H
