/**
 * @file
 * Memoized view of an engine's ServingCosts() decomposition. Arrival
 * streams repeat (prompt_len, output_len) pairs across policies and load
 * levels, and a full llm.npu decomposition replays the prefill timeline,
 * so the serving layer caches profiles per request shape.
 */
#ifndef LLMNPU_SERVING_COST_MODEL_H
#define LLMNPU_SERVING_COST_MODEL_H

#include <cstdint>
#include <map>
#include <utility>

#include "src/engines/engine.h"

namespace llmnpu {

/** Caches ServingCostProfile per (prompt_len, output_len) for one
 *  (engine, model, device) triple. Share one instance across simulator
 *  runs that sweep policies/loads over the same triple. */
class ServingCostModel
{
  public:
    ServingCostModel(InferenceEngine& engine, const ModelConfig& config,
                     const SocSpec& soc)
        : engine_(engine), config_(config), soc_(soc)
    {}

    /** The engine's decomposition of `request` (cached). */
    const ServingCostProfile& Costs(const InferenceRequest& request);

    /** Isolated single-request latency under this decomposition: what the
     *  request would take with the device to itself (SLO baseline). */
    double IsolatedE2eMs(const InferenceRequest& request);

    const ModelConfig& config() const { return config_; }
    const SocSpec& soc() const { return soc_; }

  private:
    InferenceEngine& engine_;
    ModelConfig config_;
    SocSpec soc_;
    std::map<std::pair<int, int>, ServingCostProfile> cache_;
};

}  // namespace llmnpu

#endif  // LLMNPU_SERVING_COST_MODEL_H
