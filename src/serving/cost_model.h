/**
 * @file
 * Memoized view of an engine's ServingCosts() decomposition. Arrival
 * streams repeat (prompt_len, output_len) pairs across policies and load
 * levels, and a full llm.npu decomposition replays the prefill timeline,
 * so the serving layer caches profiles per request shape.
 *
 * ServingCostModel is also the *calibrated* provider of the
 * predict::StepCostOracle interface: StepMs() forwards to the engine's
 * DecodeStepMs decomposition (memoized, context bucketed). The learned
 * LatencyModel (src/predict) is the other provider; dynamic placement
 * policies take either, while the simulator always prices executed steps
 * through this one.
 */
#ifndef LLMNPU_SERVING_COST_MODEL_H
#define LLMNPU_SERVING_COST_MODEL_H

#include <cstdint>
#include <map>
#include <tuple>
#include <utility>

#include "src/engines/engine.h"
#include "src/predict/step_cost.h"

namespace llmnpu {

/** Caches ServingCostProfile per (prompt_len, output_len) for one
 *  (engine, model, device) triple. Share one instance across simulator
 *  runs that sweep policies/loads over the same triple. */
class ServingCostModel : public predict::StepCostOracle
{
  public:
    ServingCostModel(InferenceEngine& engine, const ModelConfig& config,
                     const SocSpec& soc)
        : engine_(engine), config_(config), soc_(soc)
    {}

    /** The engine's decomposition of `request` (cached). */
    const ServingCostProfile& Costs(const InferenceRequest& request);

    /** Isolated single-request latency under this decomposition: what the
     *  request would take with the device to itself (SLO baseline). */
    double IsolatedE2eMs(const InferenceRequest& request);

    /** Calibrated step price: the engine's DecodeStepMs at (placement,
     *  ctx, batch), with ctx rounded up to a 64-token bucket so sweeps
     *  over growing contexts hit the memo instead of re-decomposing. */
    double StepMs(DecodePlacement placement, int64_t ctx,
                  int batch) const override;

    /** Serving-layer default batch marginal handed to engines with no
     *  opinion (mirrors ServingOptions::decode_batch_marginal; the
     *  simulator syncs it at Run() start). */
    void set_default_batch_marginal(double marginal)
    {
        default_batch_marginal_ = marginal;
    }
    double default_batch_marginal() const { return default_batch_marginal_; }

    const ModelConfig& config() const { return config_; }
    const SocSpec& soc() const { return soc_; }

  private:
    InferenceEngine& engine_;
    ModelConfig config_;
    SocSpec soc_;
    double default_batch_marginal_ = 0.15;
    std::map<std::pair<int, int>, ServingCostProfile> cache_;
    mutable std::map<std::tuple<int, int64_t, int>, double> step_cache_;
};

}  // namespace llmnpu

#endif  // LLMNPU_SERVING_COST_MODEL_H
