#include "src/serving/replay.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/format.h"
#include "src/util/rng.h"

namespace llmnpu {

namespace {

/** Per-request replay state: synthetic streams and collected outputs. */
struct SeqState {
    int slot = -1;  ///< BatchedKvCache slot, -1 until first prefill chunk
    /** Replayed shared-prefix length: > 0 means this sequence forks off
     *  the prefix template instead of starting empty, and `prompt` holds
     *  only the private suffix tokens (the serving plane prefills sharers
     *  on the suffix alone). */
    int prefix_len = 0;
    /** Serving-trace prefix length — the template-group key. */
    int prefix_key = 0;
    std::vector<int> prompt;
    std::vector<int> outputs;
    int chunks_done = 0;
    int tokens_decoded = 0;
    /** Placement each decoded token actually executed at (placement-aware
     *  replays only), parallel to the decoded stream. Recorded from the
     *  batched pass so the solo reference re-runs a mid-stream failover
     *  with the exact same per-token placements. */
    std::vector<DecodePlacement> decode_placements;
    /** Hidden/logit rows in execution order, for the bitwise check. */
    std::vector<float> hidden_rows;
    std::vector<float> logit_rows;
};

/** The tokens of prompt chunk `c` of `C` under the near-even partition. */
std::vector<int>
ChunkTokens(const std::vector<int>& prompt, int c, int num_chunks)
{
    const int p = static_cast<int>(prompt.size());
    const int base = p / num_chunks;
    const int rem = p % num_chunks;
    int start = 0;
    for (int i = 0; i < c; ++i) start += base + (i < rem ? 1 : 0);
    const int len = base + (c < rem ? 1 : 0);
    LLMNPU_CHECK_GT(len, 0);
    return std::vector<int>(prompt.begin() + start,
                            prompt.begin() + start + len);
}

/** Appends every row of `t` to `dst`. */
void
AppendRows(std::vector<float>& dst, const Tensor& t)
{
    const float* p = t.Data<float>();
    dst.insert(dst.end(), p, p + t.NumElements());
}

/**
 * Shared replay core. When `placement` is non-null, `linears` is the
 * DecodeBackend `backend` and every step (batched and solo reference) sets
 * per-member placements on it before forwarding.
 */
ReplayOutcome
ReplayTraceImpl(const std::vector<ReplayStep>& steps,
                const std::vector<RequestRecord>& records,
                const Transformer& model, LinearExecutor& linears,
                const ReplayPlacement* placement, DecodeBackend* backend,
                const ReplayOptions& options)
{
    LLMNPU_CHECK_GT(options.max_prompt_tokens, 0);
    LLMNPU_CHECK_GT(options.max_output_tokens, 0);
    const int vocab = model.config().vocab_size;

    ReplayOutcome outcome;
    std::map<int, SeqState> seqs;

    // ---- Synthetic teacher-forced token streams, derived from the trace.
    // Prompt length is the serving-trace length clamped to a tractable
    // range; chunk boundaries are the near-even partition into the number
    // of chunks the scheduler actually dispatched.
    std::map<int, int> num_chunks;  // request id -> chunk count
    for (const ReplayStep& step : steps) {
        if (!step.is_prefill) continue;
        LLMNPU_CHECK_EQ(step.request_ids.size(), 1u);
        num_chunks[step.request_ids.front()] = step.num_chunks;
    }
    // Shared-prefix token streams are per *group*, not per request: every
    // sharer of the same serving prefix length replays the same prefix
    // tokens, computed once into a template sequence and forked from there.
    std::map<int, std::vector<int>> prefix_tokens;  // serving len -> tokens
    for (const auto& [id, chunks] : num_chunks) {
        LLMNPU_CHECK_GE(id, 0);
        LLMNPU_CHECK_LT(static_cast<size_t>(id), records.size());
        const ServingRequest& request =
            records[static_cast<size_t>(id)].request;
        SeqState state;
        // Sharers replay the private suffix as their prompt; the replayed
        // prefix is the serving prefix clamped like any prompt would be.
        const int served_prompt = request.shared_prefix_len > 0
                                      ? request.PrivatePromptLen()
                                      : request.prompt_len;
        const int prompt_len = std::max(
            chunks, std::min(options.max_prompt_tokens, served_prompt));
        const int output_len =
            std::min(options.max_output_tokens, request.output_len);
        if (request.shared_prefix_len > 0) {
            state.prefix_key = request.shared_prefix_len;
            state.prefix_len = std::min(request.shared_prefix_len,
                                        options.max_prompt_tokens);
            auto [it, fresh] =
                prefix_tokens.try_emplace(state.prefix_key);
            if (fresh) {
                Rng group_rng(options.seed ^
                              (0xda3e39cb94b95bdbULL *
                               static_cast<uint64_t>(state.prefix_key)));
                for (int i = 0; i < state.prefix_len; ++i) {
                    it->second.push_back(static_cast<int>(
                        group_rng.Next() % static_cast<uint64_t>(vocab)));
                }
            }
        }
        Rng rng(options.seed ^ (0x9e3779b97f4a7c15ULL *
                                static_cast<uint64_t>(id + 1)));
        for (int i = 0; i < prompt_len; ++i) {
            state.prompt.push_back(
                static_cast<int>(rng.Next() % static_cast<uint64_t>(vocab)));
        }
        for (int i = 0; i < output_len; ++i) {
            state.outputs.push_back(
                static_cast<int>(rng.Next() % static_cast<uint64_t>(vocab)));
        }
        seqs.emplace(id, std::move(state));
    }
    outcome.sequences = static_cast<int>(seqs.size());

    // ---- Batched replay: execute each step through ForwardBatch.
    BatchedKvCache cache = model.MakeBatchedCache();
    // Prefix templates, materialized lazily at the first fork: the group's
    // prefix tokens run once through ForwardBatch (rows discarded — the
    // prefix KV is the asset, matching the serving plane's shared-cache
    // pricing), then every sharer forks the template's pages. The template
    // is never retired, so eviction re-forks land on the same pages.
    std::map<int, int> template_slots;  // serving prefix len -> slot
    auto ensure_template = [&](int prefix_key) -> int {
        auto it = template_slots.find(prefix_key);
        if (it != template_slots.end()) return it->second;
        const int slot = cache.AddSequence();
        if (placement != nullptr) {
            backend->SetStepPlacements({placement->prefill});
        }
        (void)model.ForwardBatch({{slot, prefix_tokens.at(prefix_key)}},
                                 cache, linears);
        template_slots.emplace(prefix_key, slot);
        return slot;
    };
    for (const ReplayStep& step : steps) {
        std::vector<BatchSeq> batch;
        std::vector<int> member_ids;
        std::vector<DecodePlacement> step_placements;
        if (step.is_prefill) {
            const int id = step.request_ids.front();
            SeqState& state = seqs.at(id);
            if (step.chunk_index == 0 && state.chunks_done > 0) {
                // Eviction restart: the simulator released this request's
                // KV pages mid-decode and re-ran its prefill from chunk 0.
                // Mirror it — retire the slot (pages back to the pool) and
                // recompute from scratch. Collected rows reset too: the
                // bitwise reference is the *uninterrupted* solo run of the
                // final pass, so eviction-then-readmit must reproduce it
                // exactly.
                cache.RetireSequence(state.slot);
                state.slot = -1;
                state.chunks_done = 0;
                state.tokens_decoded = 0;
                state.decode_placements.clear();
                state.hidden_rows.clear();
                state.logit_rows.clear();
            }
            if (state.slot < 0) {
                if (state.prefix_len > 0) {
                    const int tmpl = ensure_template(state.prefix_key);
                    state.slot = cache.AddSequenceSharingPrefix(
                        tmpl, state.prefix_len);
                    ++outcome.shared_prefix_forks;
                } else {
                    state.slot = cache.AddSequence();
                }
                // The join key between the serving plane (request ids) and
                // the numeric plane (cache slots): args carry both.
                LLMNPU_TRACE_INSTANT_ID("replay.seq_map", "replay", id,
                                        state.slot, -1);
            }
            LLMNPU_CHECK_EQ(state.chunks_done, step.chunk_index);
            batch.push_back({state.slot,
                             ChunkTokens(state.prompt, step.chunk_index,
                                         step.num_chunks)});
            member_ids.push_back(id);
            if (placement != nullptr) {
                step_placements.push_back(placement->prefill);
            }
            ++state.chunks_done;
        } else {
            for (size_t mi = 0; mi < step.request_ids.size(); ++mi) {
                const int id = step.request_ids[mi];
                SeqState& state = seqs.at(id);
                LLMNPU_CHECK_EQ(state.chunks_done,
                                num_chunks.at(id));  // prefilled
                if (state.tokens_decoded >=
                    static_cast<int>(state.outputs.size())) {
                    ++outcome.truncated_memberships;
                    continue;
                }
                batch.push_back(
                    {state.slot,
                     {state.outputs[static_cast<size_t>(
                         state.tokens_decoded)]}});
                member_ids.push_back(id);
                if (placement != nullptr) {
                    // Trace-recorded placements win over the static
                    // per-request placement: a fault-plane run's circuit
                    // breaker can switch a request NPU->CPU mid-stream,
                    // and the executed schedule is what must replay.
                    const DecodePlacement member_placement =
                        mi < step.placements.size()
                            ? step.placements[mi]
                            : placement->DecodeFor(id);
                    step_placements.push_back(member_placement);
                    state.decode_placements.push_back(member_placement);
                }
                ++state.tokens_decoded;
            }
            if (batch.empty()) continue;  // all members past the cap
            outcome.max_decode_batch =
                std::max(outcome.max_decode_batch,
                         static_cast<int>(batch.size()));
        }

        if (placement != nullptr) {
            backend->SetStepPlacements(std::move(step_placements));
        }
        Tensor hidden, logits;
        {
            // Prefill spans carry the chunk's token-row count — the
            // predictor's chunk-dispatch training feature; decode spans
            // keep the batch size.
            int step_rows = 0;
            for (const BatchSeq& seq : batch) {
                step_rows += static_cast<int>(seq.tokens.size());
            }
            LLMNPU_TRACE_SPAN_TILE(
                step.is_prefill ? "replay.prefill" : "replay.decode",
                "replay", member_ids.front(), batch.front().seq, -1,
                step.is_prefill ? "rows" : "batch",
                step.is_prefill ? step_rows
                                : static_cast<int>(batch.size()));
            hidden = model.ForwardBatch(batch, cache, linears);
            logits = model.Logits(hidden);
        }
        ++outcome.steps_executed;
        outcome.stacked_rows += hidden.Rows();
        if (step.is_prefill) {
            ++outcome.prefill_steps;
        } else {
            ++outcome.decode_steps;
        }

        int64_t row = 0;
        for (size_t i = 0; i < batch.size(); ++i) {
            const int64_t rows =
                static_cast<int64_t>(batch[i].tokens.size());
            SeqState& state = seqs.at(member_ids[i]);
            AppendRows(state.hidden_rows, hidden.CopyRows(row, rows));
            AppendRows(state.logit_rows, logits.CopyRows(row, rows));
            row += rows;
        }
    }

    outcome.cow_page_clones = cache.pool().cow_clones();

    if (!options.check_bitwise) return outcome;

    // ---- Reference: every sequence alone, same per-step token groups, the
    // single-sequence Forward path. Bitwise comparison against the batched
    // rows catches any batch-size dependence anywhere in the stack.
    for (auto& [id, state] : seqs) {
        if (state.slot < 0) continue;  // never dispatched in the trace
        KvCache solo = model.MakeCache();
        std::vector<float> hidden_rows, logit_rows;
        if (state.prefix_len > 0) {
            // The sharer's solo reference owns no template: it prefills
            // the group's prefix tokens itself (rows discarded, like the
            // template materialization) and then runs the suffix chunks
            // over that KV — bitwise-identical state to attending over
            // the shared pages.
            if (placement != nullptr) {
                backend->SetUniformPlacement(placement->prefill);
            }
            (void)model.Forward(prefix_tokens.at(state.prefix_key), solo,
                                linears);
        }
        for (int c = 0; c < state.chunks_done; ++c) {
            if (placement != nullptr) {
                backend->SetUniformPlacement(placement->prefill);
            }
            Tensor h = model.Forward(
                ChunkTokens(state.prompt, c, num_chunks.at(id)), solo,
                linears);
            AppendRows(hidden_rows, h);
            AppendRows(logit_rows, model.Logits(h));
        }
        for (int t = 0; t < state.tokens_decoded; ++t) {
            if (placement != nullptr) {
                backend->SetUniformPlacement(
                    state.decode_placements[static_cast<size_t>(t)]);
            }
            Tensor h = model.Forward(
                {state.outputs[static_cast<size_t>(t)]}, solo, linears);
            AppendRows(hidden_rows, h);
            AppendRows(logit_rows, model.Logits(h));
        }
        const bool hidden_ok =
            hidden_rows.size() == state.hidden_rows.size() &&
            std::memcmp(hidden_rows.data(), state.hidden_rows.data(),
                        hidden_rows.size() * sizeof(float)) == 0;
        const bool logits_ok =
            logit_rows.size() == state.logit_rows.size() &&
            std::memcmp(logit_rows.data(), state.logit_rows.data(),
                        logit_rows.size() * sizeof(float)) == 0;
        if (!hidden_ok || !logits_ok) {
            outcome.bitwise_match = false;
            if (outcome.first_mismatch.empty()) {
                outcome.first_mismatch = StrFormat(
                    "request %d: batched %s differ from sequential", id,
                    hidden_ok ? "logits" : "hidden states");
            }
        }
    }
    return outcome;
}

}  // namespace

ReplayOutcome
ReplayServingTrace(const std::vector<ReplayStep>& steps,
                   const std::vector<RequestRecord>& records,
                   const Transformer& model, LinearExecutor& linears,
                   const ReplayOptions& options)
{
    DecodeBackend* backend = nullptr;
    const ReplayPlacement* placement = nullptr;
    if (options.placement.has_value()) {
        backend = dynamic_cast<DecodeBackend*>(&linears);
        LLMNPU_FATAL_IF(backend == nullptr,
                        "ReplayOptions::placement requires `linears` to be "
                        "a DecodeBackend (per-member placement routing)");
        placement = &*options.placement;
    }
    // Trace capture: a replay with a sink runs with the host-plane tracer
    // on, so the handoff and chunk-dispatch spans land somewhere the
    // predictor's training extractor can read them back.
    const bool want_trace = !options.trace_sink.empty();
    const bool was_enabled = obs::TraceEnabled();
    if (want_trace && !was_enabled) {
        obs::Tracer::Global().Enable();
        obs::Tracer::Global().Reset();
    }
    ReplayOutcome outcome = ReplayTraceImpl(steps, records, model, linears,
                                            placement, backend, options);
    if (want_trace) {
        obs::Tracer::Global().WriteChromeTrace(options.trace_sink);
        if (!was_enabled) obs::Tracer::Global().Disable();
    }
    return outcome;
}

ReplayOutcome
ReplayServingTrace(const std::vector<ReplayStep>& steps,
                   const std::vector<RequestRecord>& records,
                   const Transformer& model, DecodeBackend& backend,
                   const ReplayPlacement& placement,
                   const ReplayOptions& options)
{
    ReplayOptions unified = options;
    unified.placement = placement;
    return ReplayServingTrace(steps, records, model,
                              static_cast<LinearExecutor&>(backend),
                              unified);
}

}  // namespace llmnpu
