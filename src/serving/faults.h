/**
 * @file
 * Deterministic fault plane for the serving simulator.
 *
 * The paper's llm.npu design assumes the NPU always answers; real
 * deployments see transient driver faults, stalls, thermal throttling, and
 * memory pressure. This module is the single source of injected failures
 * for src/serving/simulator.cc, covering three scenario families:
 *
 *  (a) transient NPU faults: a prefill chunk (or an NPU-resident decode
 *      dispatch) fails partway through, or stalls until the watchdog
 *      timeout kills it;
 *  (b) thermal throttling: src/sim/thermal.h scales NPU service times as
 *      accumulated busy time heats the die (brownout mode sheds
 *      SLO-infeasible queued work while throttled);
 *  (c) memory pressure: the live KV page budget shrinks mid-run, routed
 *      through the simulator's termination-safe eviction order.
 *
 * Injection is *counter-based*, not stream-based: every draw hashes
 * (seed, domain, request, index, attempt) through the SplitMix64
 * finalizer, so whether request 7's chunk 3 faults on attempt 2 is a pure
 * function of the seed — independent of schedule order, of how many other
 * draws happened first, and of whether unrelated scenarios run in the same
 * process. With every probability at zero the plane draws nothing and the
 * simulator is bit-identical to a run without it.
 *
 * The matching defenses (timeout watchdog, capped-exponential retry, the
 * per-request NPU->CPU circuit breaker, brownout shedding) are configured
 * here too so one options struct describes a whole degraded-mode scenario.
 */
#ifndef LLMNPU_SERVING_FAULTS_H
#define LLMNPU_SERVING_FAULTS_H

#include <cstdint>

#include "src/sim/thermal.h"

namespace llmnpu {

/** Fault-injection scenario plus the defense parameters. */
struct FaultOptions {
    /** Seed of the injection hash; sweeps derive it from the CLI seed so
     *  every degraded-mode run is reproducible from the command line. */
    uint64_t seed = 0xfa017u;

    // ---- (a) transient NPU faults.
    /** Per-attempt probability that a prefill chunk fails partway. */
    double chunk_failure_prob = 0.0;
    /** Per-attempt probability that a prefill chunk stalls until the
     *  watchdog timeout. */
    double chunk_stall_prob = 0.0;
    /** Per-attempt probability that an NPU-resident decode dispatch for
     *  one request faults (the request sits the step out and retries). */
    double decode_failure_prob = 0.0;

    // ---- defenses: watchdog + retry/backoff + circuit breaker.
    /** Watchdog: a chunk is declared dead after timeout_factor x its
     *  nominal (thermally scaled) service time. Must be > 1. */
    double timeout_factor = 4.0;
    /** Base of the capped exponential retry backoff (virtual ms). */
    double retry_backoff_ms = 2.0;
    /** Backoff cap: delay = min(base * 2^(attempt-1), cap). */
    double retry_backoff_cap_ms = 64.0;
    /** Attempts per chunk / per decode token before the request is shed
     *  (accounted, pages released) rather than retried forever. */
    int max_attempts = 8;
    /** Circuit breaker: after this many *consecutive* faults on one
     *  request, its decode placement fails over from the NPU to the
     *  packed-fp32 CPU path (mid-stream, at a step boundary). <= 0
     *  disables failover. */
    int circuit_breaker_k = 3;

    // ---- (b) thermal throttling + brownout.
    ThermalOptions thermal;
    /** Brownout mode: while the die is throttled, shed queued requests
     *  whose SLO deadline is no longer feasible instead of burning hot
     *  cycles on lost causes. */
    bool brownout_shedding = false;

    // ---- (c) memory pressure.
    /** Virtual time at which the live KV page budget shrinks; < 0 means
     *  never. Only meaningful with a bounded ServingOptions pool. */
    double pool_shrink_at_ms = -1.0;
    /** Fraction of the configured budget that survives the shrink. */
    double pool_shrink_to = 1.0;

    /** True when any injection mechanism is active. Rate-zero options with
     *  thermal and shrink off leave the simulator bit-identical to a run
     *  without the fault plane. */
    bool Enabled() const;

    /** Exits with a fatal user error on out-of-range parameters (probs
     *  outside [0,1), non-positive timeouts, empty shrink budgets, ...). */
    void Validate() const;
};

/** Stateless, seeded fault oracle (const draws; safe to share). */
class FaultPlane
{
  public:
    explicit FaultPlane(const FaultOptions& options);

    enum class ChunkFate {
        kOk,     ///< chunk completes normally
        kFail,   ///< transient failure partway through the chunk
        kStall,  ///< hangs; the watchdog kills it at the timeout
    };

    /** Fate of prefill chunk `chunk` of request `request`, attempt
     *  `attempt` (0 = first try). */
    ChunkFate Chunk(int request, int chunk, int attempt) const;

    /** Fraction of the chunk's service time consumed before a kFail fault
     *  is detected, in [0.05, 0.95]. */
    double ChunkFailFraction(int request, int chunk, int attempt) const;

    /** Whether the NPU decode dispatch for `request`'s token
     *  `token_index` faults on `attempt`. */
    bool DecodeFaults(int request, int token_index, int attempt) const;

    /** Capped exponential backoff after `attempt` failures (>= 1). */
    double BackoffMs(int attempt) const;

    const FaultOptions& options() const { return options_; }

  private:
    /** Uniform [0,1) from the hashed draw coordinates. */
    double Draw(uint64_t domain, uint64_t a, uint64_t b, uint64_t c) const;

    FaultOptions options_;
};

}  // namespace llmnpu

#endif  // LLMNPU_SERVING_FAULTS_H
