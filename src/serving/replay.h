/**
 * @file
 * Serving→numeric bridge: replays a simulated serving schedule on real
 * tensors.
 *
 * The simulator batches at the cost-model level; this module takes the
 * per-step batch composition it exports (ServingResult::replay_steps) and
 * executes it through Transformer::ForwardBatch — every prefill chunk and
 * every continuously batched decode step runs as one stacked matmul over
 * the member sequences, each sequence keeping its own KV slot. Token
 * streams are synthetic and teacher-forced (deterministic per request id),
 * so the same schedule can also be re-run sequence-by-sequence with plain
 * Forward() and compared bitwise — the §3.2 chunk-exactness argument
 * extended to multi-request batches.
 */
#ifndef LLMNPU_SERVING_REPLAY_H
#define LLMNPU_SERVING_REPLAY_H

#include <optional>
#include <string>
#include <vector>

#include "src/model/decode_backend.h"
#include "src/model/transformer.h"
#include "src/serving/simulator.h"

namespace llmnpu {

/**
 * Decode placement of a placement-aware replay: where each request's
 * decode steps execute, and where prefill chunks execute. The bitwise
 * reference of a placed replay is the solo run with the *same* placement —
 * prefill chunks on `prefill`, decode steps on the request's placement.
 */
struct ReplayPlacement {
    /** Placement of every prefill chunk (the paper's deployment prefills
     *  on the NPU, so the quantized path is the default). */
    DecodePlacement prefill = DecodePlacement::kNpuQuant;
    /** Decode placement by request id; ids beyond the vector (or an empty
     *  vector) fall back to `default_decode`. */
    std::vector<DecodePlacement> decode;
    DecodePlacement default_decode = DecodePlacement::kCpuFloat;

    DecodePlacement DecodeFor(int request_id) const
    {
        return static_cast<size_t>(request_id) < decode.size()
                   ? decode[static_cast<size_t>(request_id)]
                   : default_decode;
    }
};

/** Options scaling a served trace down to a tractable numeric replay. */
struct ReplayOptions {
    /** Replayed prompt length: the serving-trace prompt length clamped to
     *  [num_chunks, max_prompt_tokens] (each chunk needs >= 1 token). */
    int max_prompt_tokens = 24;
    /** Decode tokens replayed per request; members past the cap drop out of
     *  later decode steps (their truncated memberships are counted). */
    int max_output_tokens = 4;
    /** Seed for the per-request synthetic token streams. */
    uint64_t seed = 0xb47c;
    /** Re-run every sequence alone and compare hidden states and logits
     *  bitwise against the batched replay. */
    bool check_bitwise = true;
    /** Placement-aware replay: set to route every step through a
     *  DecodeBackend with per-member placements — prefill chunks on
     *  placement->prefill, each decode member on the trace-recorded
     *  placement when present (fault failovers, dynamic policies), else
     *  its request's static placement. Requires `linears` to actually be
     *  a DecodeBackend (fatal otherwise). */
    std::optional<ReplayPlacement> placement;
    /** Non-empty: the replay runs with host-plane tracing on and writes a
     *  Chrome/Perfetto trace of its spans to this path (the predictor's
     *  handoff / chunk-dispatch training source). A tracer that was
     *  already enabled keeps its buffer and stays enabled; otherwise the
     *  tracer is enabled for the replay and restored after. */
    std::string trace_sink;
};

/** What the replay executed and whether it matched sequential execution. */
struct ReplayOutcome {
    int sequences = 0;
    int steps_executed = 0;
    int prefill_steps = 0;
    int decode_steps = 0;
    /** Largest decode batch actually stacked (the m of the m=B matmul). */
    int max_decode_batch = 0;
    /** Total activation rows pushed through ForwardBatch. */
    int64_t stacked_rows = 0;
    /** Decode-step memberships dropped by max_output_tokens. */
    int64_t truncated_memberships = 0;
    /** Sequences forked off a shared-prefix template
     *  (AddSequenceSharingPrefix), eviction re-forks included. */
    int shared_prefix_forks = 0;
    /** Copy-on-write page clones the replay cache performed — a fork whose
     *  replayed prefix is not page-aligned clones its frontier page on the
     *  first divergent write. */
    int64_t cow_page_clones = 0;
    /** true when every sequence's hidden states and logits were bitwise
     *  identical to running it alone (always true when check_bitwise was
     *  off and no comparison ran). */
    bool bitwise_match = true;
    /** First mismatch description, empty when bitwise_match. */
    std::string first_mismatch;
};

/**
 * Replays `steps` (from a ServingResult) through `model` with `linears`.
 * The single entry point: placement-aware routing and trace capture are
 * both ReplayOptions fields (`placement`, `trace_sink`). With
 * options.placement set, `linears` must be a DecodeBackend; one batched
 * decode step may then mix NPU-quantized and CPU-float sequences, and the
 * bitwise check re-runs every sequence alone with the same per-step
 * placements.
 *
 * @param steps   per-step batch composition, execution order.
 * @param records per-request records of the same run (prompt/output
 *                lengths), indexed by request id.
 */
ReplayOutcome ReplayServingTrace(const std::vector<ReplayStep>& steps,
                                 const std::vector<RequestRecord>& records,
                                 const Transformer& model,
                                 LinearExecutor& linears,
                                 const ReplayOptions& options = {});

/**
 * Deprecated spelling of the placement-aware replay; thin wrapper that
 * copies `placement` into ReplayOptions::placement. Prefer the single
 * entry point above.
 */
ReplayOutcome ReplayServingTrace(const std::vector<ReplayStep>& steps,
                                 const std::vector<RequestRecord>& records,
                                 const Transformer& model,
                                 DecodeBackend& backend,
                                 const ReplayPlacement& placement,
                                 const ReplayOptions& options = {});

}  // namespace llmnpu

#endif  // LLMNPU_SERVING_REPLAY_H
