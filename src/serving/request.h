/**
 * @file
 * Request lifecycle types of the serving layer: what a queued inference
 * looks like to the scheduler and what the simulator records about it.
 */
#ifndef LLMNPU_SERVING_REQUEST_H
#define LLMNPU_SERVING_REQUEST_H

#include <algorithm>

#include "src/engines/engine.h"

namespace llmnpu {

/** One admitted request with its SLO deadline. */
struct ServingRequest {
    int id = 0;
    double arrival_ms = 0.0;
    int prompt_len = 0;
    int output_len = 1;
    /** Which dataset of the generating mixture produced it. */
    int profile_index = 0;
    /** End-to-end SLO deadline (absolute ms); +inf when no SLO applies. */
    double deadline_ms = 1e300;
    /** Leading prompt tokens that are the scenario's shared system prefix
     *  (page-aligned; 0 = independent prompt). The prefix's KV is served
     *  from the shared cache: its pages are charged once across all
     *  referencing requests and only the private suffix is prefilled. */
    int shared_prefix_len = 0;

    /** Prompt tokens past the shared prefix — what this request actually
     *  prefills and what its private KV pages must hold. */
    int PrivatePromptLen() const { return prompt_len - shared_prefix_len; }

    InferenceRequest AsInference() const { return {prompt_len, output_len}; }

    /** The computation the engine runs for this request: the private
     *  suffix only (shared-prefix KV comes from the cache). Identical to
     *  AsInference() for independent prompts. */
    InferenceRequest ServedInference() const
    {
        return {PrivatePromptLen(), output_len};
    }
};

/** Everything the simulator measured about one request. */
struct RequestRecord {
    ServingRequest request;
    /** Start of the first prefill chunk (-1 until dispatched). */
    double first_dispatch_ms = -1.0;
    /** End of the last prefill chunk. */
    double prefill_done_ms = -1.0;
    /** End of the decode step that emitted token 1. */
    double first_token_ms = -1.0;
    /** End of the decode step that emitted the last token. */
    double finish_ms = -1.0;
    int tokens_out = 0;
    /** Decode steps of this request slowed by an incoming prefill chunk. */
    int preemptions = 0;
    /** Refused at arrival by KV admission control (never dispatched). */
    bool rejected = false;
    /** Times this request was preempted by KV-page eviction mid-decode
     *  (its pages released, its prefill restarted from chunk 0). */
    int evictions = 0;

    /** Shed by the fault plane after admission (retry budget exhausted,
     *  brownout, infeasible post-shrink demand, expired in queue). A shed
     *  request never completes and never counts toward goodput; its KV
     *  pages were released when it was shed. */
    bool shed = false;
    /** Virtual time the request was shed (-1 when not shed). */
    double shed_ms = -1.0;
    /** Injected faults that hit this request (chunk fail/stall + decode
     *  dispatch faults, every attempt counted). */
    int faults = 0;
    /** Retry dispatches after faults (attempts beyond the first). */
    int retries = 0;
    /** Circuit breaker fired: decode placement failed over NPU->CPU. */
    bool failed_over = false;
    /** Virtual time of the failover (-1 when it never fired). */
    double failover_ms = -1.0;

    bool Completed() const { return finish_ms >= 0.0; }
    double QueueingMs() const { return first_dispatch_ms - request.arrival_ms; }
    double TtftMs() const { return first_token_ms - request.arrival_ms; }
    double E2eMs() const { return finish_ms - request.arrival_ms; }
    /** Mean time per output token after the first. */
    double TpotMs() const
    {
        return (finish_ms - first_token_ms) /
               std::max(1, request.output_len - 1);
    }
    bool MetSlo() const
    {
        return Completed() && finish_ms <= request.deadline_ms;
    }
};

}  // namespace llmnpu

#endif  // LLMNPU_SERVING_REQUEST_H
