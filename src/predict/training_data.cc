#include "src/predict/training_data.h"

#include <cstdint>

#include "src/obs/trace_reader.h"

namespace llmnpu {
namespace predict {

namespace {

/** Numeric member or `fallback` when absent/non-numeric. */
double
NumberOr(const obs::JsonValue& row, const std::string& key, double fallback)
{
    if (!row.Has(key)) return fallback;
    const obs::JsonValue& v = row.At(key);
    if (v.type != obs::JsonValue::Type::kNumber) return fallback;
    return v.number;
}

std::string
StringOr(const obs::JsonValue& row, const std::string& key)
{
    if (!row.Has(key)) return "";
    const obs::JsonValue& v = row.At(key);
    if (v.type != obs::JsonValue::Type::kString) return "";
    return v.str;
}

void
MineKernelRow(const obs::JsonValue& row, std::vector<OpSample>* out,
              ExtractionStats* stats)
{
    const std::string kernel = StringOr(row, "kernel");
    const std::string variant = StringOr(row, "variant");
    const int64_t m = static_cast<int64_t>(NumberOr(row, "m", 0));
    const int64_t k = static_cast<int64_t>(NumberOr(row, "k", 0));
    const int64_t n = static_cast<int64_t>(NumberOr(row, "n", 0));
    const int threads = static_cast<int>(NumberOr(row, "threads", 1));
    const double gflops = NumberOr(row, "gflops", 0.0);
    // Features carry no thread-count dimension: fit the single-threaded
    // kernel surface only (multi-threaded rows would alias it).
    if (threads != 1 || gflops <= 0.0 || m <= 0 || k <= 0 || n <= 0) {
        ++stats->skipped;
        return;
    }
    OpSample sample;
    const double mkn = static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n);
    if (kernel == "matmul_f32" && variant == "tiled_packed") {
        sample.op = OpClass::kMatMulCpu;
        sample.features = MatMulFeatures(m, k, n);
        sample.measured_ms = 2.0 * mkn / (gflops * 1e6);
    } else if (kernel == "matmul_w8a8_per_tensor" &&
               variant == "tiled_packed") {
        sample.op = OpClass::kMatMulNpu;
        sample.features = MatMulFeatures(m, k, n);
        sample.measured_ms = 2.0 * mkn / (gflops * 1e6);
    } else if (kernel == "paged_attention" && variant == "fused") {
        // bench_kernels prices 4*kv*head_dim flops per (seq, head) row;
        // in row coordinates (m=batch, k=context, n=model width) that is
        // 4*m*k*n total.
        sample.op = OpClass::kAttention;
        sample.features = AttentionFeatures(k, m * n);
        sample.measured_ms = 4.0 * mkn / (gflops * 1e6);
    } else {
        ++stats->skipped;
        return;
    }
    out->push_back(sample);
    ++stats->samples;
}

void
MineDecodeStepRow(const obs::JsonValue& row, std::vector<OpSample>* out,
                  ExtractionStats* stats)
{
    const int batch = static_cast<int>(NumberOr(row, "batch", 0));
    const int64_t ctx = static_cast<int64_t>(NumberOr(row, "ctx", 512));
    const double cpu_tpot = NumberOr(row, "cpu_tpot_ms", 0.0);
    const double npu_tpot = NumberOr(row, "npu_tpot_ms", 0.0);
    if (batch <= 0 || (cpu_tpot <= 0.0 && npu_tpot <= 0.0)) {
        ++stats->skipped;
        return;
    }
    if (cpu_tpot > 0.0) {
        OpSample s;
        s.op = OpClass::kDecodeStepCpu;
        s.features = StepFeatures(batch, ctx);
        s.measured_ms = cpu_tpot * batch;
        out->push_back(s);
        ++stats->samples;
    }
    if (npu_tpot > 0.0) {
        OpSample s;
        s.op = OpClass::kDecodeStepNpu;
        s.features = StepFeatures(batch, ctx);
        s.measured_ms = npu_tpot * batch;
        out->push_back(s);
        ++stats->samples;
    }
}

}  // namespace

bool
SamplesFromBenchResults(const std::string& json_text,
                        std::vector<OpSample>* out, std::string* error,
                        ExtractionStats* stats)
{
    ExtractionStats local;
    if (stats == nullptr) stats = &local;
    obs::JsonValue doc;
    if (!obs::ParseJson(json_text, &doc, error)) return false;
    if (doc.type != obs::JsonValue::Type::kObject || !doc.Has("benches") ||
        doc.At("benches").type != obs::JsonValue::Type::kArray) {
        if (error != nullptr) *error = "no benches array";
        return false;
    }
    for (const obs::JsonValue& bench : doc.At("benches").array) {
        if (bench.type != obs::JsonValue::Type::kObject ||
            !bench.Has("metrics") ||
            bench.At("metrics").type != obs::JsonValue::Type::kArray) {
            continue;
        }
        const std::string name = StringOr(bench, "name");
        for (const obs::JsonValue& row : bench.At("metrics").array) {
            if (row.type != obs::JsonValue::Type::kObject) continue;
            if (name == "bench_kernels") {
                MineKernelRow(row, out, stats);
            } else if (name == "bench_serving" &&
                       StringOr(row, "mode") == "decode_step") {
                MineDecodeStepRow(row, out, stats);
            }
        }
    }
    return true;
}

bool
SamplesFromTrace(const std::string& trace_text, std::vector<OpSample>* out,
                 std::string* error, ExtractionStats* stats)
{
    ExtractionStats local;
    if (stats == nullptr) stats = &local;
    obs::ReadTrace trace;
    if (!obs::ReadChromeTrace(trace_text, &trace, error)) return false;
    for (const obs::ReadEvent& ev : trace.events) {
        if (ev.ph != "X" || ev.dur_us <= 0.0) continue;
        const bool handoff = ev.name == "handoff.npu_linear" ||
                             ev.name == "handoff.npu_batch" ||
                             ev.name == "handoff.npu_run";
        const bool chunk = ev.name == "replay.prefill";
        if (!handoff && !chunk) continue;
        const auto it = ev.args.find("rows");
        if (it == ev.args.end() ||
            it->second.type != obs::JsonValue::Type::kNumber ||
            it->second.number <= 0.0) {
            ++stats->skipped;  // older trace without the size arg
            continue;
        }
        const int64_t rows = static_cast<int64_t>(it->second.number);
        OpSample s;
        s.op = handoff ? OpClass::kHandoff : OpClass::kChunkDispatch;
        s.features = handoff ? HandoffFeatures(rows)
                             : ChunkDispatchFeatures(rows);
        s.measured_ms = ev.dur_us * 1e-3;
        out->push_back(s);
        ++stats->samples;
    }
    return true;
}

}  // namespace predict
}  // namespace llmnpu
