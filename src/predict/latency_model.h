/**
 * @file
 * Learned per-op latency model: the offline half of the serving control
 * plane ("Latency Prediction for LLM Inference on NPU Systems" direction,
 * PAPERS.md).
 *
 * Each op class gets an independent linear-in-features model fitted by
 * non-negative ridge least squares from the repo's own measurements —
 * BENCH_results.json kernel GFLOP/s rows and the obs tracer's per-span
 * durations from replayed schedules (src/predict/training_data.h extracts
 * both). Non-negative slopes over features that are themselves
 * nondecreasing in every size dimension make every prediction monotone
 * (predicted matmul cost never drops when m, k or n grows), which the
 * predict test suite pins.
 *
 * Two planes share the class space on purpose. The host-plane classes
 * (matmul, attention, handoff, chunk dispatch) price real kernel
 * invocations in wall-clock ms; the sim-plane decode-step classes price
 * the serving simulator's calibrated virtual-time step law. The dynamic
 * placement policy (src/serving/policy.h) decides with the step classes,
 * so the CPU-wins-to-B~8 / NPU-from-B~16 crossover is reproduced from
 * fitted data instead of the hand-calibrated constants directly.
 */
#ifndef LLMNPU_PREDICT_LATENCY_MODEL_H
#define LLMNPU_PREDICT_LATENCY_MODEL_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace llmnpu {
namespace predict {

/** Op classes with independently fitted latency models. */
enum class OpClass {
    /** Packed f32 matmul on the CPU (tiled_packed kernel rows). */
    kMatMulCpu = 0,
    /** W8A8 per-tensor matmul on the shadow NPU executor. */
    kMatMulNpu,
    /** Fused paged causal attention over the ragged batch. */
    kAttention,
    /** CPU<->NPU handoff (quantize, dispatch, dequantize) per boundary. */
    kHandoff,
    /** Per-chunk prefill dispatch: one chunked forward pass. */
    kChunkDispatch,
    /** Sim-plane batched decode step, all members on the CPU path. */
    kDecodeStepCpu,
    /** Sim-plane batched decode step, all members on the NPU path. */
    kDecodeStepNpu,
};

inline constexpr int kNumOpClasses = 7;

/** Fixed feature width; unused trailing features are zero. */
inline constexpr int kNumFeatures = 4;

using Features = std::array<double, kNumFeatures>;

/** "matmul_cpu", "decode_step_npu", ... (METRIC rows, serialization). */
const char* OpClassName(OpClass op);

/** Inverse of OpClassName; false on an unknown name. */
bool ParseOpClass(const std::string& name, OpClass* out);

/**
 * Feature builders. Every feature is nondecreasing in every size argument
 * so non-negative coefficients imply monotone predictions. Work terms are
 * scaled (MFLOP-ish units) to keep the normal equations well-conditioned.
 */
Features MatMulFeatures(int64_t m, int64_t k, int64_t n);
/** `head_rows` = total query rows x model width (batch * hidden): the
 *  4*ctx*head_rows flop term of fused paged attention. */
Features AttentionFeatures(int64_t ctx, int64_t head_rows);
/** One CPU<->NPU boundary moving `rows` activation rows. */
Features HandoffFeatures(int64_t rows);
/** One prefill chunk dispatch of `tokens` tokens. */
Features ChunkDispatchFeatures(int64_t tokens);
/** One batched decode step: `batch` members at context `ctx`. */
Features StepFeatures(int batch, int64_t ctx);

/** One training/evaluation observation. */
struct OpSample {
    OpClass op = OpClass::kMatMulCpu;
    Features features{};
    double measured_ms = 0.0;
};

/** Prediction-error summary of one op class (the tracked METRIC). */
struct OpErrorStats {
    int samples = 0;
    double median_rel_err = 0.0;
    double mean_rel_err = 0.0;
    double max_rel_err = 0.0;
};

/** The fitted model: per-class non-negative linear coefficients. */
class LatencyModel
{
  public:
    /** Fits every op class that has at least one sample; classes absent
     *  from `samples` keep their previous state. Deterministic. */
    void Fit(const std::vector<OpSample>& samples);

    bool Fitted(OpClass op) const;

    /** Number of samples the class was fitted from (0 if unfitted). */
    int SampleCount(OpClass op) const;

    /** Predicted latency in ms; fatal if the class is unfitted. Always
     *  >= 0 (coefficients are constrained non-negative). */
    double PredictMs(OpClass op, const Features& features) const;

    /** Fitted coefficients of one class (fatal if unfitted). */
    const Features& Coefficients(OpClass op) const;

    /** Relative-error stats of the fitted class over `samples` (rows of
     *  other classes are ignored). */
    OpErrorStats Evaluate(OpClass op,
                          const std::vector<OpSample>& samples) const;

    /** Text serialization (llmnpu-latency-model-v1). Coefficients print
     *  with %.17g so Parse() round-trips bitwise. */
    std::string Serialize() const;

    /** Inverse of Serialize(); false + `error` on malformed input. */
    static bool Parse(const std::string& text, LatencyModel* out,
                      std::string* error);

  private:
    struct OpFit {
        bool fitted = false;
        int samples = 0;
        Features coef{};
    };
    std::array<OpFit, kNumOpClasses> fits_{};
};

}  // namespace predict
}  // namespace llmnpu

#endif  // LLMNPU_PREDICT_LATENCY_MODEL_H
