#include "src/predict/step_cost.h"

namespace llmnpu {
namespace predict {

double
PredictedStepCosts::StepMs(DecodePlacement placement, int64_t ctx,
                           int batch) const
{
    const OpClass op = placement == DecodePlacement::kNpuQuant
                           ? OpClass::kDecodeStepNpu
                           : OpClass::kDecodeStepCpu;
    return model_->PredictMs(op, StepFeatures(batch, ctx));
}

}  // namespace predict
}  // namespace llmnpu
