#include "src/predict/latency_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace llmnpu {
namespace predict {

const char*
OpClassName(OpClass op)
{
    switch (op) {
      case OpClass::kMatMulCpu: return "matmul_cpu";
      case OpClass::kMatMulNpu: return "matmul_npu";
      case OpClass::kAttention: return "attention";
      case OpClass::kHandoff: return "handoff";
      case OpClass::kChunkDispatch: return "chunk_dispatch";
      case OpClass::kDecodeStepCpu: return "decode_step_cpu";
      case OpClass::kDecodeStepNpu: return "decode_step_npu";
    }
    return "?";
}

bool
ParseOpClass(const std::string& name, OpClass* out)
{
    for (int i = 0; i < kNumOpClasses; ++i) {
        const OpClass op = static_cast<OpClass>(i);
        if (name == OpClassName(op)) {
            *out = op;
            return true;
        }
    }
    return false;
}

Features
MatMulFeatures(int64_t m, int64_t k, int64_t n)
{
    const double md = static_cast<double>(m);
    const double kd = static_cast<double>(k);
    const double nd = static_cast<double>(n);
    return {1.0, md * kd * nd * 1e-6, kd * nd * 1e-6, md * 1e-3};
}

Features
AttentionFeatures(int64_t ctx, int64_t head_rows)
{
    const double c = static_cast<double>(ctx);
    const double h = static_cast<double>(head_rows);
    return {1.0, c * h * 1e-6, c * 1e-3, 0.0};
}

Features
HandoffFeatures(int64_t rows)
{
    return {1.0, static_cast<double>(rows) * 1e-3, 0.0, 0.0};
}

Features
ChunkDispatchFeatures(int64_t tokens)
{
    return {1.0, static_cast<double>(tokens) * 1e-3, 0.0, 0.0};
}

Features
StepFeatures(int batch, int64_t ctx)
{
    const double b = static_cast<double>(batch);
    const double c = static_cast<double>(ctx);
    return {1.0, b, c * 1e-3, b * c * 1e-3};
}

namespace {

/**
 * Non-negative ridge least squares on the normal equations via projected
 * coordinate descent. With A = X'X + lambda*I positive semi-definite and
 * every coordinate update the exact constrained minimizer along its axis,
 * the sweep objective is non-increasing and the iterate converges to the
 * (unique for lambda > 0) non-negative minimizer. Deterministic: fixed
 * sweep order, fixed iteration cap.
 */
Features
SolveNonNegative(const std::array<std::array<double, kNumFeatures>,
                                  kNumFeatures>& a,
                 const Features& b)
{
    Features w{};
    for (int sweep = 0; sweep < 400; ++sweep) {
        double max_delta = 0.0;
        for (int j = 0; j < kNumFeatures; ++j) {
            if (a[j][j] <= 0.0) continue;  // feature identically zero
            double r = b[j];
            for (int l = 0; l < kNumFeatures; ++l) {
                if (l != j) r -= a[j][l] * w[l];
            }
            const double next = std::max(0.0, r / a[j][j]);
            max_delta = std::max(max_delta, std::fabs(next - w[j]));
            w[j] = next;
        }
        if (max_delta < 1e-14) break;
    }
    return w;
}

}  // namespace

void
LatencyModel::Fit(const std::vector<OpSample>& samples)
{
    for (int c = 0; c < kNumOpClasses; ++c) {
        const OpClass op = static_cast<OpClass>(c);
        std::vector<const OpSample*> rows;
        for (const OpSample& s : samples) {
            if (s.op == op) rows.push_back(&s);
        }
        if (rows.empty()) continue;

        // Column scaling: solve in max-normalized feature space so the
        // work terms (1e0..1e3 after the builders' pre-scaling) and the
        // intercept condition comparably, then unscale the coefficients.
        Features scale{};
        for (const OpSample* s : rows) {
            for (int j = 0; j < kNumFeatures; ++j) {
                scale[j] = std::max(scale[j], std::fabs(s->features[j]));
            }
        }

        std::array<std::array<double, kNumFeatures>, kNumFeatures> a{};
        Features b{};
        for (const OpSample* s : rows) {
            Features x{};
            for (int j = 0; j < kNumFeatures; ++j) {
                x[j] = scale[j] > 0.0 ? s->features[j] / scale[j] : 0.0;
            }
            for (int j = 0; j < kNumFeatures; ++j) {
                for (int l = 0; l < kNumFeatures; ++l) {
                    a[j][l] += x[j] * x[l];
                }
                b[j] += x[j] * s->measured_ms;
            }
        }
        // Tiny ridge: keeps collinear feature sets (e.g. every sample at
        // the same context) solvable without visibly biasing the fit.
        const double lambda = 1e-8 * static_cast<double>(rows.size());
        for (int j = 0; j < kNumFeatures; ++j) a[j][j] += lambda;

        const Features w = SolveNonNegative(a, b);
        OpFit& fit = fits_[c];
        fit.fitted = true;
        fit.samples = static_cast<int>(rows.size());
        for (int j = 0; j < kNumFeatures; ++j) {
            fit.coef[j] = scale[j] > 0.0 ? w[j] / scale[j] : 0.0;
        }
    }
}

bool
LatencyModel::Fitted(OpClass op) const
{
    return fits_[static_cast<int>(op)].fitted;
}

int
LatencyModel::SampleCount(OpClass op) const
{
    return fits_[static_cast<int>(op)].samples;
}

double
LatencyModel::PredictMs(OpClass op, const Features& features) const
{
    const OpFit& fit = fits_[static_cast<int>(op)];
    LLMNPU_CHECK(fit.fitted);
    double ms = 0.0;
    for (int j = 0; j < kNumFeatures; ++j) {
        ms += fit.coef[j] * features[j];
    }
    return ms;
}

const Features&
LatencyModel::Coefficients(OpClass op) const
{
    const OpFit& fit = fits_[static_cast<int>(op)];
    LLMNPU_CHECK(fit.fitted);
    return fit.coef;
}

OpErrorStats
LatencyModel::Evaluate(OpClass op,
                       const std::vector<OpSample>& samples) const
{
    OpErrorStats stats;
    std::vector<double> errs;
    for (const OpSample& s : samples) {
        if (s.op != op) continue;
        const double denom = std::max(s.measured_ms, 1e-9);
        errs.push_back(std::fabs(PredictMs(op, s.features) - s.measured_ms) /
                       denom);
    }
    if (errs.empty()) return stats;
    stats.samples = static_cast<int>(errs.size());
    double sum = 0.0;
    for (double e : errs) {
        sum += e;
        stats.max_rel_err = std::max(stats.max_rel_err, e);
    }
    stats.mean_rel_err = sum / static_cast<double>(errs.size());
    std::sort(errs.begin(), errs.end());
    const size_t mid = errs.size() / 2;
    stats.median_rel_err = errs.size() % 2 == 1
                               ? errs[mid]
                               : 0.5 * (errs[mid - 1] + errs[mid]);
    return stats;
}

std::string
LatencyModel::Serialize() const
{
    std::string out = "llmnpu-latency-model-v1\n";
    char buf[512];
    for (int c = 0; c < kNumOpClasses; ++c) {
        const OpFit& fit = fits_[c];
        if (!fit.fitted) continue;
        std::snprintf(buf, sizeof(buf),
                      "%s %d %.17g %.17g %.17g %.17g\n",
                      OpClassName(static_cast<OpClass>(c)), fit.samples,
                      fit.coef[0], fit.coef[1], fit.coef[2], fit.coef[3]);
        out += buf;
    }
    out += "end\n";
    return out;
}

bool
LatencyModel::Parse(const std::string& text, LatencyModel* out,
                    std::string* error)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != "llmnpu-latency-model-v1") {
        if (error != nullptr) *error = "bad header";
        return false;
    }
    LatencyModel model;
    bool saw_end = false;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (line == "end") {
            saw_end = true;
            break;
        }
        std::istringstream row(line);
        std::string name;
        OpClass op;
        OpFit fit;
        if (!(row >> name) || !ParseOpClass(name, &op) ||
            !(row >> fit.samples >> fit.coef[0] >> fit.coef[1] >>
              fit.coef[2] >> fit.coef[3])) {
            if (error != nullptr) *error = "bad row: " + line;
            return false;
        }
        fit.fitted = true;
        model.fits_[static_cast<int>(op)] = fit;
    }
    if (!saw_end) {
        if (error != nullptr) *error = "missing end marker";
        return false;
    }
    *out = model;
    return true;
}

}  // namespace predict
}  // namespace llmnpu
