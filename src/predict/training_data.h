/**
 * @file
 * Training-set extraction for the latency model: BENCH_results.json is an
 * *input* here, not a report. Two sources feed LatencyModel::Fit —
 *
 *  - kernel GFLOP/s METRIC rows (bench_kernels) and decode-step TPOT rows
 *    (bench_serving), inverted back to milliseconds, and
 *  - per-span durations from an obs-tracer Chrome trace of a replayed
 *    serving schedule (src/obs/trace_reader.h parses them back).
 *
 * Both extractors are tolerant: unknown benches, kernels and span names
 * are skipped (counted, not fatal), so the predictor keeps fitting as the
 * bench schema grows.
 */
#ifndef LLMNPU_PREDICT_TRAINING_DATA_H
#define LLMNPU_PREDICT_TRAINING_DATA_H

#include <string>
#include <vector>

#include "src/predict/latency_model.h"

namespace llmnpu {
namespace predict {

/** Extraction outcome: the samples plus how many candidate rows/spans
 *  were recognized but unusable (missing fields, zero durations). */
struct ExtractionStats {
    int samples = 0;
    int skipped = 0;
};

/**
 * Extracts op samples from a BENCH_results.json document (llmnpu-bench-v2
 * schema). Mined rows:
 *
 *  - bench_kernels matmul_f32/tiled_packed and
 *    matmul_w8a8_per_tensor/tiled_packed at threads=1 (ms recovered from
 *    GFLOP/s as 2*m*k*n / (gflops * 1e6)) -> kMatMulCpu / kMatMulNpu;
 *  - bench_kernels paged_attention/fused at threads=1 (4*m*k*n flops:
 *    m=batch, k=context, n=model width) -> kAttention;
 *  - bench_serving decode_step rows (step_ms = tpot_ms * batch at the
 *    row's context, default 512) -> kDecodeStepCpu / kDecodeStepNpu.
 *
 * @return false with `error` only on malformed JSON; an input with no
 * usable rows succeeds with zero samples appended.
 */
bool SamplesFromBenchResults(const std::string& json_text,
                             std::vector<OpSample>* out, std::string* error,
                             ExtractionStats* stats = nullptr);

/**
 * Extracts op samples from an obs-tracer Chrome trace document. Mined
 * complete ("X") spans:
 *
 *  - handoff.npu_linear / handoff.npu_batch / handoff.npu_run with a
 *    "rows" arg -> kHandoff;
 *  - replay.prefill with a "rows" arg (chunk token count) ->
 *    kChunkDispatch.
 *
 * Spans without the size arg (older traces) are skipped.
 */
bool SamplesFromTrace(const std::string& trace_text,
                      std::vector<OpSample>* out, std::string* error,
                      ExtractionStats* stats = nullptr);

}  // namespace predict
}  // namespace llmnpu

#endif  // LLMNPU_PREDICT_TRAINING_DATA_H
