/**
 * @file
 * The predictor interface the serving control plane consumes: a
 * StepCostOracle prices one batched decode step at a (placement, context,
 * depth) point. Two providers exist —
 *
 *  - the calibrated cost plane (ServingCostModel, src/serving/cost_model.h)
 *    forwarding to the engine's DecodeStepMs decomposition, and
 *  - PredictedStepCosts here, backed by a fitted LatencyModel's sim-plane
 *    decode-step classes.
 *
 * The dynamic placement policy holds whichever oracle it was built with;
 * the serving simulator always *prices* executed steps through the
 * calibrated provider, so a mispredicting model can only misplace work,
 * never rewrite virtual time.
 */
#ifndef LLMNPU_PREDICT_STEP_COST_H
#define LLMNPU_PREDICT_STEP_COST_H

#include <cstdint>

#include "src/model/placement.h"
#include "src/predict/latency_model.h"

namespace llmnpu {
namespace predict {

/** Prices one continuously batched decode step. */
class StepCostOracle
{
  public:
    virtual ~StepCostOracle() = default;

    /** Service time (ms) of one decode step with `batch` members at
     *  context length `ctx`, every member placed on `placement`. */
    virtual double StepMs(DecodePlacement placement, int64_t ctx,
                          int batch) const = 0;

    /** Per-token price at depth `batch` — the currency the placement
     *  crossover is decided in. */
    double StepTokenMs(DecodePlacement placement, int64_t ctx,
                       int batch) const
    {
        return StepMs(placement, ctx, batch) /
               static_cast<double>(batch > 0 ? batch : 1);
    }
};

/** StepCostOracle over a fitted LatencyModel (kDecodeStepCpu/Npu classes
 *  must be fitted). The model must outlive the oracle. */
class PredictedStepCosts : public StepCostOracle
{
  public:
    explicit PredictedStepCosts(const LatencyModel& model) : model_(&model)
    {}

    double StepMs(DecodePlacement placement, int64_t ctx,
                  int batch) const override;

  private:
    const LatencyModel* model_;
};

}  // namespace predict
}  // namespace llmnpu

#endif  // LLMNPU_PREDICT_STEP_COST_H
