#include "src/core/chunk_graph.h"

#include <string>

#include "src/util/check.h"
#include "src/util/format.h"

namespace llmnpu {

const char*
StageName(StageKind stage)
{
    switch (stage) {
      case StageKind::kAttnNorm: return "attn_norm";
      case StageKind::kQkvLinear: return "qkv";
      case StageKind::kAttention: return "attention";
      case StageKind::kOProj: return "o_proj";
      case StageKind::kFfnNorm: return "ffn_norm";
      case StageKind::kFfn: return "ffn";
    }
    return "?";
}

bool
StageOnNpu(StageKind stage)
{
    return stage == StageKind::kQkvLinear || stage == StageKind::kOProj ||
           stage == StageKind::kFfn;
}

bool
StageIsDynamic(StageKind stage)
{
    return stage == StageKind::kAttention;
}

ChunkGraphPlan::ChunkGraphPlan(const ModelConfig& config, int chunk_len,
                               bool share_static)
    : config_(config), chunk_len_(chunk_len), share_static_(share_static)
{
    LLMNPU_CHECK_GT(chunk_len, 0);
}

int
ChunkGraphPlan::NumChunks(int64_t prompt_len) const
{
    LLMNPU_CHECK_GT(prompt_len, 0);
    return static_cast<int>((prompt_len + chunk_len_ - 1) / chunk_len_);
}

int
ChunkGraphPlan::NumSubgraphs() const
{
    return config_.num_layers * kStagesPerLayer;
}

int
ChunkGraphPlan::NumSharedSubgraphs() const
{
    if (!share_static_) return 0;
    return config_.num_layers * (kStagesPerLayer - 1);
}

int64_t
ChunkGraphPlan::StageWeightBytes(StageKind stage) const
{
    const int64_t q_dim = static_cast<int64_t>(config_.num_heads) *
                          config_.head_dim;
    const int64_t kv_dim = static_cast<int64_t>(config_.num_kv_heads) *
                           config_.head_dim;
    switch (stage) {
      case StageKind::kQkvLinear:
        return config_.hidden_size * (q_dim + 2 * kv_dim);
      case StageKind::kOProj:
        return q_dim * config_.hidden_size;
      case StageKind::kFfn: {
        const int64_t gates = config_.gated_ffn ? 2 : 1;
        return (gates * config_.hidden_size + config_.hidden_size) *
               config_.ffn_hidden;
      }
      default: return 0;  // float stages carry norm gains only (negligible)
    }
}

int64_t
ChunkGraphPlan::StageActivationBytes(StageKind stage, int64_t kv_len) const
{
    const int64_t m = chunk_len_;
    const int64_t hidden = config_.hidden_size;
    const int64_t q_dim = static_cast<int64_t>(config_.num_heads) *
                          config_.head_dim;
    const int64_t kv_dim = static_cast<int64_t>(config_.num_kv_heads) *
                           config_.head_dim;
    // NPU buffers are int8 in / int8 out plus fp16 staging: ~3 B per elem.
    switch (stage) {
      case StageKind::kAttnNorm:
      case StageKind::kFfnNorm:
        return 3 * m * hidden;
      case StageKind::kQkvLinear:
        return 3 * (m * hidden + m * (q_dim + 2 * kv_dim));
      case StageKind::kAttention:
        // Q + cached K/V (fp16) + score workspace for one head batch.
        return 2 * (m * q_dim + 2 * kv_len * kv_dim +
                    m * kv_len * config_.num_heads / 4);
      case StageKind::kOProj:
        return 3 * (m * q_dim + m * hidden);
      case StageKind::kFfn: {
        const int64_t gates = config_.gated_ffn ? 2 : 1;
        return 3 * (m * hidden + (gates + 1) * m * config_.ffn_hidden);
      }
    }
    return 0;
}

NpuGraphDesc
ChunkGraphPlan::NpuGraphFor(int layer, StageKind stage, int chunk_copy) const
{
    LLMNPU_CHECK(StageOnNpu(stage));
    NpuGraphDesc desc;
    desc.name = StrFormat("%s.layer%d.%s%s", config_.name.c_str(), layer,
                          StageName(stage),
                          chunk_copy >= 0
                              ? StrFormat(".chunk%d", chunk_copy).c_str()
                              : "");
    switch (stage) {
      case StageKind::kQkvLinear: desc.num_ops = 4; break;  // q,k,v + quant
      case StageKind::kOProj: desc.num_ops = 3; break;      // mm + (de)quant
      case StageKind::kFfn:
        desc.num_ops = config_.gated_ffn ? 6 : 5;  // mms + act + mul + quant
        break;
      default: break;
    }
    desc.const_bytes = StageWeightBytes(stage);
    desc.activation_bytes = StageActivationBytes(stage, chunk_len_);
    desc.input_shape = {chunk_len_, config_.hidden_size};
    return desc;
}

std::vector<NpuGraphDesc>
ChunkGraphPlan::PreparationGraphs(int max_chunks) const
{
    std::vector<NpuGraphDesc> graphs;
    const int copies = share_static_ ? 1 : max_chunks;
    for (int copy = 0; copy < copies; ++copy) {
        const int chunk_copy = share_static_ ? -1 : copy;
        for (int l = 0; l < config_.num_layers; ++l) {
            for (StageKind stage : {StageKind::kQkvLinear, StageKind::kOProj,
                                    StageKind::kFfn}) {
                graphs.push_back(NpuGraphFor(l, stage, chunk_copy));
            }
        }
    }
    return graphs;
}

int64_t
ChunkGraphPlan::GraphMemoryBytes(int num_chunks) const
{
    LLMNPU_CHECK_GT(num_chunks, 0);
    int64_t static_bytes = 0;
    for (int l = 0; l < config_.num_layers; ++l) {
        for (int s = 0; s < kStagesPerLayer; ++s) {
            const auto stage = static_cast<StageKind>(s);
            if (StageIsDynamic(stage)) continue;
            static_bytes += StageWeightBytes(stage) +
                            StageActivationBytes(stage, chunk_len_);
        }
    }
    int64_t dynamic_bytes = 0;
    for (int c = 0; c < num_chunks; ++c) {
        const int64_t kv_len = static_cast<int64_t>(c + 1) * chunk_len_;
        dynamic_bytes += static_cast<int64_t>(config_.num_layers) *
                         StageActivationBytes(StageKind::kAttention, kv_len);
    }
    const int64_t copies = share_static_ ? 1 : num_chunks;
    return copies * static_bytes + dynamic_bytes;
}

}  // namespace llmnpu
