/**
 * @file
 * llm.npu's quantized linear executor: NPU-friendly per-tensor W8A8 with
 * shadow outlier execution (§3.3, Equation 1).
 *
 * Numerically this computes
 *
 *   y = [ clamp(round(x/s), -127, 127) (i) W_q ] * s            on the NPU
 *     + [ extract(x - s * clamp(round(x/s))) (f) W_deq ]        on the CPU
 *
 * where (i) is the INT8 per-tensor matmul and (f) a compact float matmul
 * over only the channels whose activations exceeded the clip. With the
 * shadow term enabled the outlier channels are computed at float precision;
 * pruned layers simply clip them (the accuracy-speed dial of Figure 16).
 */
#ifndef LLMNPU_CORE_SHADOW_EXECUTOR_H
#define LLMNPU_CORE_SHADOW_EXECUTOR_H

#include <vector>

#include "src/core/outlier_profile.h"
#include "src/tensor/matmul.h"
#include "src/tensor/quantize.h"

namespace llmnpu {

/** Runtime counters of shadow extraction (drives the timing plane and the
 *  Figure 10 reproduction). */
struct ShadowRuntimeStats {
    int64_t linear_calls = 0;
    int64_t shadow_calls = 0;       ///< calls where the shadow path ran
    int64_t extracted_channels = 0; ///< compact-tensor channels, total
    int64_t hot_hits = 0;           ///< extracted channels in the hot set
    int64_t cold_misses = 0;        ///< extracted channels fetched from disk

    double MeanExtractedPerShadowCall() const
    {
        return shadow_calls ? static_cast<double>(extracted_channels) /
                                  static_cast<double>(shadow_calls)
                            : 0.0;
    }
};

/** The llm.npu linear executor (preparation output of Figure 6). */
class NpuShadowExecutor : public LinearExecutor
{
  public:
    /**
     * @param weights fp32 master weights (quantized per-column at prepare).
     * @param profile offline outlier profile (clip scales, hot channels,
     *        importance ranks).
     * @param pruning_rate fraction of least-important linears whose shadow
     *        path is disabled (paper default 0.85).
     */
    NpuShadowExecutor(const ModelWeights& weights,
                      const OutlierProfile& profile, double pruning_rate);

    Tensor Forward(int layer, LinearKind kind, const Tensor& x) override;

    /**
     * Batched entry: the NPU term (static clip scale, per-tensor INT8) is
     * row-independent, so the whole stack runs as one packed W8A8 matmul;
     * outlier extraction and the compact shadow matmul stay per sequence,
     * since the extracted channel set is a property of one sequence's
     * activations. Stats advance exactly as B sequential Forward calls
     * would. Bitwise identical to per-segment Forward.
     */
    Tensor ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                        const BatchSegments& segments) override;

    std::string Name() const override { return "llm.npu"; }

    const ShadowRuntimeStats& stats() const { return stats_; }
    void ResetStats() { stats_ = ShadowRuntimeStats{}; }

    double pruning_rate() const { return pruning_rate_; }

    /** Resident shadow weight bytes: f32 rows for hot channels of unpruned
     *  linears (the Figure 17 "Ours-Outliers" black segment). */
    int64_t ResidentShadowWeightBytes() const;

  private:
    struct PreparedLinear;

    /** Extracts outlier channels over rows [r0, r1) of `x` and adds their
     *  compact float residual matmul into the same rows of `y`. */
    void AddShadowTerm(const PreparedLinear& pl,
                       const LinearOutlierProfile& op, const Tensor& x,
                       const Tensor& x_q, int64_t r0, int64_t r1, Tensor& y);

    struct PreparedLinear {
        PackedWeightsI8 npu_packed;  ///< int8 panels + per-column scales
        Tensor w_deq;                ///< dequantized copy for the shadow term
        bool shadow_enabled = false;
        std::vector<bool> is_hot;      ///< per input channel
        int64_t hot_rows = 0;
    };

    const ModelWeights& weights_;
    const OutlierProfile& profile_;
    double pruning_rate_;
    std::vector<std::vector<PreparedLinear>> prepared_;  // [layer][kind]
    ShadowRuntimeStats stats_;
};

}  // namespace llmnpu

#endif  // LLMNPU_CORE_SHADOW_EXECUTOR_H
