/**
 * @file
 * The llm.npu inference engine (timing plane): chunk-sharing graphs (§3.2) +
 * shadow outlier execution (§3.3) + out-of-order subgraph scheduling (§3.4)
 * on the simulated mobile SoC.
 *
 * Feature flags expose the Figure 19 ablation ladder:
 *   CPU -> naive NPU -> +chunk -> +outlier(shadow) -> +OoO (= full llm.npu)
 * and the Figure 18 GPU-NPU coordination variant.
 */
#ifndef LLMNPU_CORE_LLMNPU_ENGINE_H
#define LLMNPU_CORE_LLMNPU_ENGINE_H

#include <string>
#include <vector>

#include "src/core/chunk_graph.h"
#include "src/core/scheduler.h"
#include "src/engines/engine.h"
#include "src/sim/npu_runtime.h"

namespace llmnpu {

/** Configuration of the llm.npu engine. */
struct LlmNpuOptions {
    /** Fixed chunk length (Figure 8: 256 is the paper's choice). */
    int chunk_len = 256;
    /** §3.2 chunked prefill + prebuilt graphs. When false the whole-prompt
     *  graph is built and optimized inside every inference (naive NPU). */
    bool enable_chunking = true;
    /** §3.2 chunk-sharing (share static subgraphs across chunks). */
    bool enable_sharing = true;
    /** §3.3 per-tensor W8A8 + shadow outliers. When false the engine falls
     *  back to per-group INT8 on the NPU to preserve accuracy. */
    bool enable_shadow = true;
    /** §3.4 out-of-order scheduling (else naive in-order overlap). */
    bool enable_ooo = true;
    /** Fraction of least-important linears with the shadow path pruned. */
    double pruning_rate = 0.85;
    /** Run float subgraphs + decode on the GPU instead of the CPU (§4.6). */
    bool use_gpu_float = false;
    /** Where decode-step linears run: the CPU/GPU float processor (paper
     *  deployment, default) or the NPU via prebuilt M=B W8A8 decode graphs
     *  with shadow compensation and an explicit handoff boundary (the
     *  beyond-paper mode this reproduction adds; see NpuDecodeStep). */
    DecodePlacement decode_placement = DecodePlacement::kCpuFloat;
    /** §4 optimization (1): profile equivalent square input shapes. */
    bool square_optimized = true;
    /** Mean fraction of input channels shadow-extracted per linear call
     *  (Figure 10: 0.1-0.3%). */
    double runtime_outlier_frac = 0.002;
    /** Fraction of channels whose shadow weights stay resident (Fig 11). */
    double hot_channel_frac = 0.03;
    /** Extracted channels missing the resident set (disk fetch, §3.3). */
    double cold_miss_rate = 0.05;
    /** Display label. */
    std::string label = "llm.npu (Ours)";
};

/** llm.npu on the simulated SoC. */
class LlmNpuEngine : public InferenceEngine
{
  public:
    explicit LlmNpuEngine(LlmNpuOptions options = LlmNpuOptions());

    std::string Name() const override { return options_.label; }
    EngineResult Run(const ModelConfig& config, const SocSpec& soc,
                     const InferenceRequest& request) override;

    /** Real per-chunk decomposition for the serving layer: NPU occupancy
     *  per prefill chunk (kv-growth aware) plus the float-processor share
     *  a concurrent decode contends with. */
    ServingCostProfile ServingCosts(const ModelConfig& config,
                                    const SocSpec& soc,
                                    const InferenceRequest& request) override;

    /** Calibrated step prices per placement: the NPU side runs through
     *  NpuDecodeStep's full decomposition regardless of where this
     *  engine's own profile places decode, so a dynamic placement policy
     *  can price the road not taken. */
    double DecodeStepMs(const ModelConfig& config, const SocSpec& soc,
                        DecodePlacement placement, int64_t kv_len, int batch,
                        double fallback_marginal) override;

    const LlmNpuOptions& options() const { return options_; }

    /** Full prefill simulation detail (timeline + tasks) for analyses. */
    struct PrefillDetail {
        std::vector<SimTask> tasks;
        TimelineResult timeline;
        double prepare_ms = 0.0;   ///< one-time graph prebuild (+ env setup)
        double prefill_ms = 0.0;   ///< execution (includes prep when naive)
        int num_chunks = 0;
        int64_t memory_bytes = 0;
    };
    PrefillDetail SimulatePrefill(const ModelConfig& config,
                                  const SocSpec& soc, int prompt_len) const;

    /** Per-stage execution timings for one chunk (used by SimulatePrefill
     *  and the chunk-length study of Figure 8). */
    std::vector<StageTiming> ChunkStageTimings(const ModelConfig& config,
                                               const SocSpec& soc,
                                               int chunk_len, int64_t kv_len,
                                               double swap_ms_per_chunk) const;

    /**
     * Cost decomposition of one NPU-resident decode step: B sequences'
     * decode matvecs run as one M=B W8A8 matmul per linear through the
     * prebuilt decode graph, while norms/RoPE/attention stay on the float
     * processor and quantize/dequantize cross the handoff boundary once
     * per layer. The graph is prebuilt per batch bucket (like the prefill
     * chunk graphs), so dispatch is one graph invoke per step plus per-op
     * overhead — not a per-linear QNN execute call.
     */
    struct NpuDecodeStepCosts {
        double npu_matvec_ms = 0.0;   ///< W8A8 matvecs on the NPU
        double npu_dispatch_ms = 0.0; ///< graph invoke + per-op dispatch
        double float_ms = 0.0;        ///< norms/RoPE/attention/lm-head
        double handoff_ms = 0.0;      ///< boundary quant/dequant + sync
        double shadow_ms = 0.0;       ///< outlier compensation (float proc)

        double TotalMs() const
        {
            return npu_matvec_ms + npu_dispatch_ms + float_ms + handoff_ms +
                   shadow_ms;
        }
    };

    /** Prices one NPU decode step at context `kv_len` for `batch` rows.
     *  Per-token TPOT is TotalMs() / batch: the weight stream per step is
     *  shared across rows, so TPOT is non-increasing in the batch size
     *  (asserted by tests/property_test.cc). */
    NpuDecodeStepCosts NpuDecodeStep(const ModelConfig& config,
                                     const SocSpec& soc, int64_t kv_len,
                                     int batch) const;

  private:
    /** Shadow compensation cost of one NPU linear over M rows (§3.3):
     *  activation scan, compact float matmul over the extracted channels,
     *  miss-rate-weighted cold fetch, partial-sum sync. Shared by the
     *  prefill chunk path and the NPU decode path so the two planes can
     *  never drift apart. */
    double ShadowCompensationMs(const ProcessorModel& fproc, int64_t m,
                                int64_t k, int64_t n) const;

    /** Shadow-enabled linear count given the pruning rate. */
    int KeptShadowLinears(const ModelConfig& config) const;

    /** Whether layer `layer`'s linears rank among the kept (important)
     *  set; mirrors Figure 12's "ends of the network matter most". */
    bool LayerShadowEnabled(const ModelConfig& config, int layer) const;

    LlmNpuOptions options_;
};

}  // namespace llmnpu

#endif  // LLMNPU_CORE_LLMNPU_ENGINE_H
