#include "src/core/llmnpu_engine.h"

#include <algorithm>
#include <cmath>

#include "src/engines/op_cost.h"
#include "src/sim/calibration.h"
#include "src/util/check.h"

namespace llmnpu {

namespace {

/** INT8 activation-function throughput on the NPU (LUT-based), elems/s. */
constexpr double kNpuActLutElemsPerSec = 50e9;

}  // namespace

LlmNpuEngine::LlmNpuEngine(LlmNpuOptions options) : options_(options)
{
    LLMNPU_CHECK_GT(options_.chunk_len, 0);
    LLMNPU_CHECK_GE(options_.pruning_rate, 0.0);
    LLMNPU_CHECK_LE(options_.pruning_rate, 1.0);
}

double
LlmNpuEngine::ShadowCompensationMs(const ProcessorModel& fproc, int64_t m,
                                   int64_t k, int64_t n) const
{
    // Scan the activations, run the compact float matmul, synchronize the
    // partial sum back (§3.3). Cold channels fetched from disk overlap the
    // NPU matmul; charge only the miss-rate-weighted latency.
    const int64_t k_out = std::max<int64_t>(
        1, static_cast<int64_t>(std::lround(options_.runtime_outlier_frac *
                                            static_cast<double>(k))));
    double ms = fproc.VectorOpMs(static_cast<double>(m * k), 1.0);
    ms += fproc.MatMulMs({m, k_out, n}, ExecFormat::kFp32, 0, false);
    ms += options_.cold_miss_rate *
          (cal::kDiskLatencyMs +
           static_cast<double>(k_out * n) / (cal::kDiskReadGBs * 1e9) * 1e3);
    ms += cal::kShadowSyncMs;
    return ms;
}

int
LlmNpuEngine::KeptShadowLinears(const ModelConfig& config) const
{
    const int total = static_cast<int>(config.LayerLinears().size()) *
                      config.num_layers;
    return static_cast<int>(std::ceil((1.0 - options_.pruning_rate) *
                                      static_cast<double>(total)));
}

bool
LlmNpuEngine::LayerShadowEnabled(const ModelConfig& config, int layer) const
{
    // Offline profiling keeps the most important linears; importance is
    // highest near the network's inputs and outputs (Figure 12), so layers
    // are ranked by distance to the nearer end.
    const int linears_per_layer =
        static_cast<int>(config.LayerLinears().size());
    const int kept_layers =
        (KeptShadowLinears(config) + linears_per_layer - 1) /
        linears_per_layer;
    const int from_end = std::min(layer, config.num_layers - 1 - layer);
    // Layers sorted by from_end ascending: ends first. Layer qualifies when
    // its rank among that ordering is < kept_layers.
    int rank = 0;
    for (int l = 0; l < config.num_layers; ++l) {
        const int other = std::min(l, config.num_layers - 1 - l);
        if (other < from_end || (other == from_end && l < layer)) ++rank;
    }
    return rank < kept_layers;
}

std::vector<StageTiming>
LlmNpuEngine::ChunkStageTimings(const ModelConfig& config, const SocSpec& soc,
                                int chunk_len, int64_t kv_len,
                                double swap_ms_per_chunk) const
{
    const Unit float_unit =
        options_.use_gpu_float ? Unit::kGpu : Unit::kCpu;
    const ProcessorModel& fproc = soc.Processor(float_unit);
    const ProcessorModel& npu = soc.Processor(Unit::kNpu);

    const int64_t m = chunk_len;
    const int64_t hidden = config.hidden_size;
    const int64_t q_dim = static_cast<int64_t>(config.num_heads) *
                          config.head_dim;
    const int64_t kv_dim = static_cast<int64_t>(config.num_kv_heads) *
                           config.head_dim;
    const ExecFormat npu_fmt = options_.enable_shadow
                                   ? ExecFormat::kInt8PerTensor
                                   : ExecFormat::kInt8PerGroup;

    // Shadow compensation task pieces (per NPU linear stage).
    auto shadow_ms = [&](int64_t k, int64_t n) {
        return ShadowCompensationMs(fproc, m, k, n);
    };

    std::vector<StageTiming> timings(
        static_cast<size_t>(config.num_layers) * kStagesPerLayer);
    for (int l = 0; l < config.num_layers; ++l) {
        const bool shadow_on = options_.enable_shadow &&
                               options_.pruning_rate < 1.0 &&
                               LayerShadowEnabled(config, l);
        for (int s = 0; s < kStagesPerLayer; ++s) {
            const auto stage = static_cast<StageKind>(s);
            StageTiming t;
            t.unit = StageOnNpu(stage) ? Unit::kNpu : float_unit;
            t.shadow_unit = float_unit;
            switch (stage) {
              case StageKind::kAttnNorm:
              case StageKind::kFfnNorm:
                t.duration_ms =
                    fproc.VectorOpMs(static_cast<double>(m * hidden), 10.0) +
                    fproc.VectorOpMs(static_cast<double>(m * hidden), 2.0) +
                    fproc.DispatchMs();
                break;
              case StageKind::kQkvLinear:
                t.duration_ms =
                    npu.MatMulMs({m, hidden, q_dim + 2 * kv_dim}, npu_fmt,
                                 cal::kPerGroupSize,
                                 options_.square_optimized) +
                    npu.DispatchMs();
                if (shadow_on) {
                    t.shadow_ms = shadow_ms(hidden, q_dim + 2 * kv_dim);
                }
                break;
              case StageKind::kAttention: {
                double ms = fproc.VectorOpMs(
                    static_cast<double>(m * (q_dim + kv_dim)), 6.0);
                ms += fproc.AttentionMs(m, kv_len, config.num_heads,
                                        config.head_dim);
                ms += 2.0 * fproc.VectorOpMs(static_cast<double>(m * q_dim),
                                             2.0);
                t.duration_ms = ms + fproc.DispatchMs();
                break;
              }
              case StageKind::kOProj:
                t.duration_ms =
                    npu.MatMulMs({m, q_dim, hidden}, npu_fmt,
                                 cal::kPerGroupSize,
                                 options_.square_optimized) +
                    npu.DispatchMs();
                if (shadow_on) t.shadow_ms = shadow_ms(q_dim, hidden);
                break;
              case StageKind::kFfn: {
                const int64_t up_n = (config.gated_ffn ? 2 : 1) *
                                     config.ffn_hidden;
                double ms = npu.MatMulMs({m, hidden, up_n}, npu_fmt,
                                         cal::kPerGroupSize,
                                         options_.square_optimized);
                ms += npu.MatMulMs({m, config.ffn_hidden, hidden}, npu_fmt,
                                   cal::kPerGroupSize,
                                   options_.square_optimized);
                ms += static_cast<double>(m * config.ffn_hidden) /
                      kNpuActLutElemsPerSec * 1e3;
                // Swapped-out graphs (NPU region overflow on 7B models)
                // remap on first touch each chunk; spread over FFN stages.
                ms += swap_ms_per_chunk / config.num_layers;
                t.duration_ms = ms + npu.DispatchMs();
                if (shadow_on) {
                    t.shadow_ms = shadow_ms(hidden, up_n) +
                                  shadow_ms(config.ffn_hidden, hidden) -
                                  cal::kShadowSyncMs;  // one merge per stage
                }
                break;
              }
            }
            timings[static_cast<size_t>(l * kStagesPerLayer + s)] = t;
        }
    }
    return timings;
}

LlmNpuEngine::NpuDecodeStepCosts
LlmNpuEngine::NpuDecodeStep(const ModelConfig& config, const SocSpec& soc,
                            int64_t kv_len, int batch) const
{
    LLMNPU_CHECK_GT(batch, 0);
    const Unit float_unit =
        options_.use_gpu_float ? Unit::kGpu : Unit::kCpu;
    const ProcessorModel& fproc = soc.Processor(float_unit);
    const ProcessorModel& npu = soc.Processor(Unit::kNpu);
    const ExecFormat npu_fmt = options_.enable_shadow
                                   ? ExecFormat::kInt8PerTensor
                                   : ExecFormat::kInt8PerGroup;
    const int64_t m = batch;

    NpuDecodeStepCosts costs;
    for (int l = 0; l < config.num_layers; ++l) {
        const bool shadow_on = options_.enable_shadow &&
                               options_.pruning_rate < 1.0 &&
                               LayerShadowEnabled(config, l);
        for (const auto& spec : config.LayerLinears()) {
            costs.npu_matvec_ms +=
                npu.MatMulMs({m, spec.k, spec.n}, npu_fmt,
                             cal::kPerGroupSize, options_.square_optimized);
            // Ops run inside the prebuilt decode graph: per-op overhead,
            // not a per-linear QNN execute call.
            costs.npu_dispatch_ms += cal::kNpuOpDispatchMs;
            if (shadow_on) {
                costs.shadow_ms +=
                    ShadowCompensationMs(fproc, m, spec.k, spec.n);
            }
        }
        // Norms/RoPE/attention/residuals + boundary quantize/dequantize on
        // the float processor; one shared-buffer round trip per layer.
        costs.float_ms += BlockFloatOpsMs(config, fproc, m, kv_len);
        costs.handoff_ms += cal::kNpuDecodeHandoffMs;
    }
    // One prebuilt decode-graph invoke per step (graphs are built per
    // batch bucket at preparation time, like the prefill chunk graphs).
    costs.npu_dispatch_ms += npu.DispatchMs();
    // Final norm + lm-head stay on the float side of the boundary (the
    // numeric plane's Logits runs there too), priced at the decode format.
    costs.float_ms +=
        fproc.VectorOpMs(static_cast<double>(m * config.hidden_size), 8.0) +
        fproc.MatMulMs({m, config.hidden_size, config.vocab_size},
                       ExecFormat::kInt8PerTensor, 0, false);
    return costs;
}

LlmNpuEngine::PrefillDetail
LlmNpuEngine::SimulatePrefill(const ModelConfig& config, const SocSpec& soc,
                              int prompt_len) const
{
    LLMNPU_CHECK_GT(prompt_len, 0);
    PrefillDetail detail;

    const int chunk_len =
        options_.enable_chunking ? options_.chunk_len : prompt_len;
    const bool sharing = options_.enable_chunking && options_.enable_sharing;
    ChunkGraphPlan plan(config, chunk_len, sharing);
    const int num_chunks =
        options_.enable_chunking ? plan.NumChunks(prompt_len) : 1;
    detail.num_chunks = num_chunks;

    // ---- Preparation: build + optimize the NPU graphs. Resident graphs
    // are placed FFN-first (§4 optimization (2)); overflow graphs remap
    // per chunk.
    NpuRuntime runtime;
    double prep_ms = runtime.EnvSetupMs();
    int64_t swapped_bytes = 0;
    auto graphs = plan.PreparationGraphs(num_chunks);
    // FFN graphs first: order by descending compute intensity.
    std::stable_sort(graphs.begin(), graphs.end(),
                     [](const NpuGraphDesc& a, const NpuGraphDesc& b) {
                         return a.const_bytes > b.const_bytes;
                     });
    for (const auto& desc : graphs) {
        if (runtime.FitsMemory(desc.const_bytes + desc.activation_bytes)) {
            prep_ms += runtime.EnsureBuilt(desc);
        } else {
            prep_ms += NpuRuntime::CostsFor(desc).TotalPrepareMs();
            swapped_bytes += desc.const_bytes;
        }
    }
    const double swap_ms_per_chunk =
        swapped_bytes > 0
            ? static_cast<double>(swapped_bytes) / (50e9) * 1e3 + 0.3
            : 0.0;

    // ---- Execution DAG.
    std::vector<std::vector<StageTiming>> chunk_timings;
    chunk_timings.reserve(static_cast<size_t>(num_chunks));
    for (int c = 0; c < num_chunks; ++c) {
        const int64_t kv_len = static_cast<int64_t>(c + 1) * chunk_len;
        chunk_timings.push_back(
            ChunkStageTimings(config, soc, chunk_len, kv_len,
                              swap_ms_per_chunk));
    }
    detail.tasks = BuildPrefillDag(chunk_timings, config.num_layers,
                                   /*strict_chunk_order=*/!options_.enable_ooo);
    detail.timeline = RunTimeline(detail.tasks, options_.enable_ooo
                                                    ? OooPicker()
                                                    : FifoPicker());

    detail.prepare_ms = prep_ms;
    detail.prefill_ms = detail.timeline.makespan_ms;
    if (!options_.enable_chunking) {
        // Variable-length prompts force a rebuild inside every inference
        // (§2.3 gap 1): preparation lands on the critical path.
        detail.prefill_ms += prep_ms;
    }

    // ---- Memory.
    const double kept_frac =
        options_.enable_shadow ? 1.0 - options_.pruning_rate : 0.0;
    const int64_t shadow_bytes = static_cast<int64_t>(
        kept_frac * options_.hot_channel_frac *
        static_cast<double>(config.MatMulParams()) * 4.0);
    detail.memory_bytes =
        plan.GraphMemoryBytes(num_chunks) +         // weights + graph buffers
        config.vocab_size * config.hidden_size +    // int8 embedding
        KvCacheBytes(config, num_chunks * static_cast<int64_t>(chunk_len)) /
            2 +                                     // fp16 KV
        shadow_bytes;
    return detail;
}

ServingCostProfile
LlmNpuEngine::ServingCosts(const ModelConfig& config, const SocSpec& soc,
                           const InferenceRequest& request)
{
    const PrefillDetail detail =
        SimulatePrefill(config, soc, request.prompt_len);
    ServingCostProfile profile;
    profile.prepare_ms = detail.prepare_ms;
    profile.memory_bytes = detail.memory_bytes;

    // Split the prefill makespan into per-chunk quanta proportional to each
    // chunk's stage work (later chunks attend to longer kv and cost more),
    // so the quanta sum to exactly the single-shot prefill latency.
    const int chunk_len = options_.enable_chunking ? options_.chunk_len
                                                   : request.prompt_len;
    std::vector<double> work(static_cast<size_t>(detail.num_chunks), 0.0);
    double total_work = 0.0;
    for (int c = 0; c < detail.num_chunks; ++c) {
        const int64_t kv_len = static_cast<int64_t>(c + 1) * chunk_len;
        for (const StageTiming& t :
             ChunkStageTimings(config, soc, chunk_len, kv_len, 0.0)) {
            work[static_cast<size_t>(c)] += t.duration_ms + t.shadow_ms;
        }
        total_work += work[static_cast<size_t>(c)];
    }
    profile.chunk_ms.resize(static_cast<size_t>(detail.num_chunks));
    for (int c = 0; c < detail.num_chunks; ++c) {
        profile.chunk_ms[static_cast<size_t>(c)] =
            detail.prefill_ms * work[static_cast<size_t>(c)] / total_work;
    }

    // Per-placement interference factors (see the engine.h contract).
    // While a chunk is in flight, its float stages and shadow kernels hold
    // the float-processor fraction a CPU/GPU-resident decode shares, and
    // its NPU subgraphs hold the accelerator fraction an NPU-resident
    // decode would time-slice.
    const Unit float_unit = options_.use_gpu_float ? Unit::kGpu : Unit::kCpu;
    const double makespan = detail.timeline.makespan_ms;
    auto busy_fraction = [&](Unit unit) {
        return makespan > 0.0
                   ? std::min(0.95,
                              detail.timeline.busy_ms[static_cast<size_t>(
                                  unit)] /
                                  makespan)
                   : 0.0;
    };
    profile.float_decode_interference = busy_fraction(float_unit);
    profile.npu_decode_interference = busy_fraction(Unit::kNpu);
    profile.decode_placement = options_.decode_placement;

    // The float-processor fallback price is computed for every placement:
    // when decode nominally runs on the NPU, the serving layer's circuit
    // breaker can fail a request over to this packed-fp32 CPU path
    // mid-stream, and it needs the fallback price without re-decomposing.
    const ProcessorModel& dproc = soc.Processor(float_unit);
    ExecPolicy decode_policy;
    decode_policy.linear_format = ExecFormat::kInt8PerTensor;
    profile.cpu_decode_token_ms =
        DecodeMs(config, dproc, request.prompt_len, request.output_len,
                 decode_policy) /
        std::max(1, request.output_len);

    if (options_.decode_placement == DecodePlacement::kNpuQuant) {
        double decode_ms = 0.0;
        for (int t = 0; t < request.output_len; ++t) {
            decode_ms +=
                NpuDecodeStep(config, soc, request.prompt_len + t, 1)
                    .TotalMs();
        }
        profile.decode_token_ms =
            decode_ms / std::max(1, request.output_len);
        // The M=B decode matmul shares one weight stream across rows, so
        // the engine knows its own (small) batching marginal.
        const double b1 =
            NpuDecodeStep(config, soc, request.prompt_len, 1).TotalMs();
        const double b2 =
            NpuDecodeStep(config, soc, request.prompt_len, 2).TotalMs();
        profile.decode_batch_marginal = std::max(0.0, b2 / b1 - 1.0);
    } else {
        profile.decode_token_ms = profile.cpu_decode_token_ms;
    }
    return profile;
}

double
LlmNpuEngine::DecodeStepMs(const ModelConfig& config, const SocSpec& soc,
                           DecodePlacement placement, int64_t kv_len,
                           int batch, double fallback_marginal)
{
    if (placement == DecodePlacement::kNpuQuant) {
        return NpuDecodeStep(config, soc, kv_len, std::max(1, batch))
            .TotalMs();
    }
    return InferenceEngine::DecodeStepMs(config, soc, placement, kv_len,
                                         batch, fallback_marginal);
}

EngineResult
LlmNpuEngine::Run(const ModelConfig& config, const SocSpec& soc,
                  const InferenceRequest& request)
{
    PrefillDetail detail = SimulatePrefill(config, soc, request.prompt_len);

    EngineResult result;
    result.prepare_ms = detail.prepare_ms;
    result.prefill_ms = detail.prefill_ms;
    result.prefill_busy_ms = detail.timeline.busy_ms;
    result.npu_bubble_rate = detail.timeline.BubbleRate(Unit::kNpu);
    result.memory_bytes = detail.memory_bytes;
    result.prefill_energy_mj =
        soc.EnergyMj(detail.timeline.busy_ms, detail.timeline.makespan_ms,
                     cal::kCpuServicePowerW);

    // Decode on the MLLM CPU backend (or GPU under §4.6 coordination), or
    // the NPU decode graphs when the placement asks for them.
    const Unit decode_unit =
        options_.use_gpu_float ? Unit::kGpu : Unit::kCpu;
    std::array<double, kNumUnits> decode_busy{};
    if (options_.decode_placement == DecodePlacement::kNpuQuant) {
        for (int t = 0; t < request.output_len; ++t) {
            const NpuDecodeStepCosts step =
                NpuDecodeStep(config, soc, request.prompt_len + t, 1);
            result.decode_ms += step.TotalMs();
            decode_busy[static_cast<size_t>(Unit::kNpu)] +=
                step.npu_matvec_ms + step.npu_dispatch_ms;
            decode_busy[static_cast<size_t>(decode_unit)] +=
                step.float_ms + step.handoff_ms + step.shadow_ms;
        }
    } else {
        const ProcessorModel& dproc = soc.Processor(decode_unit);
        ExecPolicy decode_policy;
        decode_policy.linear_format = ExecFormat::kInt8PerTensor;
        result.decode_ms = DecodeMs(config, dproc, request.prompt_len,
                                    request.output_len, decode_policy);
        decode_busy[static_cast<size_t>(decode_unit)] = result.decode_ms;
    }
    result.decode_energy_mj = soc.EnergyMj(decode_busy, result.decode_ms);
    return result;
}

}  // namespace llmnpu
