#include "src/core/scheduler.h"

#include <limits>

#include "src/util/check.h"
#include "src/util/format.h"

namespace llmnpu {

std::vector<SimTask>
BuildPrefillDag(const std::vector<std::vector<StageTiming>>& timings,
                int num_layers, bool strict_chunk_order)
{
    const int num_chunks = static_cast<int>(timings.size());
    LLMNPU_CHECK_GT(num_chunks, 0);
    const int stages_per_chunk = num_layers * kStagesPerLayer;

    std::vector<SimTask> tasks;
    // producers[c][s]: every task that must finish before stage s of chunk
    // c is consumable (the stage itself plus its shadow task, §3.3).
    std::vector<std::vector<std::vector<int>>> producers(
        static_cast<size_t>(num_chunks),
        std::vector<std::vector<int>>(static_cast<size_t>(stages_per_chunk)));

    auto append_deps = [&](SimTask& task, int c, int s) {
        for (int id : producers[static_cast<size_t>(c)]
                                [static_cast<size_t>(s)]) {
            task.deps.push_back(id);
        }
    };

    for (int c = 0; c < num_chunks; ++c) {
        LLMNPU_CHECK_EQ(static_cast<int>(timings[static_cast<size_t>(c)]
                                             .size()),
                        stages_per_chunk);
        for (int s = 0; s < stages_per_chunk; ++s) {
            const StageTiming& timing =
                timings[static_cast<size_t>(c)][static_cast<size_t>(s)];
            const int layer = s / kStagesPerLayer;
            const auto stage = static_cast<StageKind>(s % kStagesPerLayer);

            SimTask task;
            task.label = StrFormat("c%d.l%d.%s", c, layer, StageName(stage));
            task.unit = timing.unit;
            task.duration_ms = timing.duration_ms;
            task.chunk = c;
            task.stage = s;

            // Intra-chunk dependency (Equation 3).
            if (s > 0) append_deps(task, c, s - 1);
            // Cross-chunk dependency (Equation 2): attention of chunk c
            // additionally needs the previous stage (QKV, the K/V producer
            // of the same layer) of every earlier chunk.
            if (StageIsDynamic(stage) && s > 0) {
                for (int prev = 0; prev < c; ++prev) {
                    append_deps(task, prev, s - 1);
                }
            }
            // Naive overlap (Figure 13(a)): chunks strictly follow the
            // prompt sequence — chunk c starts only after chunk c-1 fully
            // completes, leaving the NPU idle during each chunk's float
            // stages. Out-of-order execution drops this constraint.
            if (strict_chunk_order && c > 0 && s == 0) {
                append_deps(task, c - 1, stages_per_chunk - 1);
            }

            const int stage_id = static_cast<int>(tasks.size());
            tasks.push_back(std::move(task));
            auto& stage_producers =
                producers[static_cast<size_t>(c)][static_cast<size_t>(s)];
            stage_producers.push_back(stage_id);

            // Shadow outlier task: runs on the float unit in parallel with
            // the NPU stage with the same dependencies; consumers of this
            // stage wait for both halves (the reduced-sum merge, §3.3).
            if (timing.shadow_ms > 0.0) {
                SimTask shadow;
                shadow.label = StrFormat("c%d.l%d.%s.shadow", c, layer,
                                         StageName(stage));
                shadow.unit = timing.shadow_unit;
                shadow.duration_ms = timing.shadow_ms;
                shadow.chunk = c;
                shadow.stage = s;
                shadow.deps = tasks[static_cast<size_t>(stage_id)].deps;
                const int shadow_id = static_cast<int>(tasks.size());
                tasks.push_back(std::move(shadow));
                stage_producers.push_back(shadow_id);
            }
        }
    }
    return tasks;
}

namespace {

/** Total duration of consumers of `id` that become ready when it finishes
 *  and that run on `unit` (the set S of Equation 5, filtered by unit). */
double
UnlockedMs(int id, Unit unit, const SchedContext& ctx)
{
    const auto& tasks = ctx.tasks();
    double unlocked_ms = 0.0;
    for (int consumer : ctx.Consumers(id)) {
        if (ctx.RemainingDeps(consumer) == 1 &&
            tasks[static_cast<size_t>(consumer)].unit == unit) {
            unlocked_ms += tasks[static_cast<size_t>(consumer)].duration_ms;
        }
    }
    return unlocked_ms;
}

/** Earliest-stage-first (dataflow order), ties by chunk. */
int
EarliestStage(const std::vector<int>& ready, const SchedContext& ctx)
{
    const auto& tasks = ctx.tasks();
    int best_id = ready.front();
    for (int id : ready) {
        const auto& task = tasks[static_cast<size_t>(id)];
        const auto& best = tasks[static_cast<size_t>(best_id)];
        if (task.stage < best.stage ||
            (task.stage == best.stage && task.chunk < best.chunk)) {
            best_id = id;
        }
    }
    return best_id;
}

}  // namespace

TaskPicker
OooPicker()
{
    return [](Unit unit, const std::vector<int>& ready,
              const SchedContext& ctx) {
        if (unit == Unit::kNpu) return EarliestStage(ready, ctx);
        // Equation 5, CPU/GPU side: run the subgraph whose completion
        // unlocks the most NPU work — feed the critical path.
        double best_c = -std::numeric_limits<double>::max();
        int best_id = ready.front();
        for (int id : ready) {
            const double c_value = UnlockedMs(id, Unit::kNpu, ctx);
            if (c_value > best_c) {
                best_c = c_value;
                best_id = id;
            }
        }
        return best_id;
    };
}

TaskPicker
PaperEq5Picker()
{
    return [](Unit unit, const std::vector<int>& ready,
              const SchedContext& ctx) {
        double best_c = -std::numeric_limits<double>::max();
        int best_id = ready.front();
        for (int id : ready) {
            // C = +sum(T_i in S) for CPU/GPU subgraphs, -sum for NPU ones
            // (Equation 5); S taken over the opposite processor class.
            const double c_value =
                unit == Unit::kNpu
                    ? -(UnlockedMs(id, Unit::kCpu, ctx) +
                        UnlockedMs(id, Unit::kGpu, ctx))
                    : UnlockedMs(id, Unit::kNpu, ctx);
            if (c_value > best_c) {
                best_c = c_value;
                best_id = id;
            }
        }
        return best_id;
    };
}

}  // namespace llmnpu
