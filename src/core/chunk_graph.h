/**
 * @file
 * Chunk-sharing graph construction (§3.2, Figure 7).
 *
 * A transformer block is decomposed into six subgraphs; per the paper's
 * Qwen1.5-1.8B example this yields 24 x 6 = 144 subgraphs of which the
 * 24 x 5 = 120 non-attention ones are *static* (depend only on chunk length)
 * and shared across chunks, while the 24 attention subgraphs are *dynamic*
 * (depend on the chunk's position, since K/V grow) and exist per chunk.
 */
#ifndef LLMNPU_CORE_CHUNK_GRAPH_H
#define LLMNPU_CORE_CHUNK_GRAPH_H

#include <cstdint>
#include <vector>

#include "src/model/config.h"
#include "src/sim/npu_runtime.h"

namespace llmnpu {

/** The six subgraphs of one transformer block, in dataflow order. */
enum class StageKind : int {
    kAttnNorm = 0,   ///< float: pre-attention norm + quantize       (CPU/GPU)
    kQkvLinear = 1,  ///< int8: fused Q/K/V projections              (NPU)
    kAttention = 2,  ///< float: RoPE + causal attention + dequant   (CPU/GPU)
    kOProj = 3,      ///< int8: output projection                    (NPU)
    kFfnNorm = 4,    ///< float: pre-FFN norm + quantize             (CPU/GPU)
    kFfn = 5,        ///< int8: gate/up/down projections + act       (NPU)
};

/** Subgraphs per transformer block. */
inline constexpr int kStagesPerLayer = 6;

/** Short stage name for labels. */
const char* StageName(StageKind stage);

/** True for the integer subgraphs that execute on the NPU. */
bool StageOnNpu(StageKind stage);

/**
 * True for subgraphs whose compute depends on the chunk's *sequence
 * position* (attention: K/V length grows per chunk) — these cannot be
 * shared across chunks (Figure 7(c), red ops).
 */
bool StageIsDynamic(StageKind stage);

/** Structural plan of the chunked execution of one model. */
class ChunkGraphPlan
{
  public:
    /**
     * @param config model architecture.
     * @param chunk_len fixed chunk length (the paper picks 256, Figure 8).
     * @param share_static share static subgraphs across chunks (§3.2).
     */
    ChunkGraphPlan(const ModelConfig& config, int chunk_len,
                   bool share_static);

    const ModelConfig& config() const { return config_; }
    int chunk_len() const { return chunk_len_; }
    bool share_static() const { return share_static_; }

    /** Number of chunks a prompt splits into (last chunk padded). */
    int NumChunks(int64_t prompt_len) const;

    /** Total subgraphs per chunk pass (layers x 6; 144 for Qwen1.5-1.8B). */
    int NumSubgraphs() const;

    /** Shareable subgraphs (layers x 5; 120 for Qwen1.5-1.8B). */
    int NumSharedSubgraphs() const;

    /** NPU graph description for one block's NPU stage at this chunk size.
     *  `chunk_copy` >= 0 names a per-chunk replica (no-sharing mode). */
    NpuGraphDesc NpuGraphFor(int layer, StageKind stage,
                             int chunk_copy = -1) const;

    /**
     * All NPU graphs to pre-build at the preparation stage for prompts of
     * up to `max_chunks` chunks: one set when sharing, `max_chunks` replicas
     * otherwise.
     */
    std::vector<NpuGraphDesc> PreparationGraphs(int max_chunks) const;

    /** INT8 weight bytes of one layer's NPU stage. */
    int64_t StageWeightBytes(StageKind stage) const;

    /** Activation buffer bytes of one layer's stage at this chunk length
     *  (kv_len matters only for the attention stage). */
    int64_t StageActivationBytes(StageKind stage, int64_t kv_len) const;

    /**
     * Resident graph memory for a prompt of `num_chunks` chunks: weights +
     * static activation buffers (x num_chunks when not shared) + dynamic
     * attention buffers (always per chunk). This is the quantity §3.2
     * reports as "up to 75% (7.2 GB)" saved by sharing.
     */
    int64_t GraphMemoryBytes(int num_chunks) const;

  private:
    ModelConfig config_;
    int chunk_len_;
    bool share_static_;
};

}  // namespace llmnpu

#endif  // LLMNPU_CORE_CHUNK_GRAPH_H
