#include "src/core/outlier_profile.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/tensor/matmul.h"

namespace llmnpu {

namespace {

/** fp32 executor that counts per-channel clip exceedances. */
class CountingExecutor : public LinearExecutor
{
  public:
    CountingExecutor(const ModelWeights& weights,
                     std::vector<std::vector<LinearOutlierProfile>>& profiles)
        : weights_(weights), profiles_(profiles)
    {}

    Tensor
    Forward(int layer, LinearKind kind, const Tensor& x) override
    {
        auto& profile = profiles_[static_cast<size_t>(layer)]
                                 [static_cast<size_t>(
                                     LinearKindIndex(kind))];
        const int64_t rows = x.Rows(), cols = x.Cols();
        if (profile.exceed_count.empty()) {
            profile.exceed_count.assign(static_cast<size_t>(cols), 0);
        }
        const float clip = profile.ClipValue();
        const float* p = x.Data<float>();
        for (int64_t r = 0; r < rows; ++r) {
            int64_t outliers_this_token = 0;
            for (int64_t c = 0; c < cols; ++c) {
                const float a = std::abs(p[r * cols + c]);
                if (a > clip) {
                    ++profile.exceed_count[static_cast<size_t>(c)];
                    ++outliers_this_token;
                }
                profile.importance = std::max(
                    profile.importance, static_cast<double>(a) / clip);
            }
            profile.mean_outliers_per_token +=
                static_cast<double>(outliers_this_token);
            profile.mean_outlier_fraction +=
                static_cast<double>(outliers_this_token) /
                static_cast<double>(cols);
        }
        profile.tokens_seen += rows;
        return MatMulF32Packed(x, weights_.PackedLinear(layer, kind));
    }

    std::string Name() const override { return "outlier-profiler"; }

  private:
    const ModelWeights& weights_;
    std::vector<std::vector<LinearOutlierProfile>>& profiles_;
};

}  // namespace

OutlierProfile
OutlierProfile::Collect(const Transformer& model, const CalibrationData& calib,
                        const std::vector<std::vector<int>>& corpus,
                        const Options& options)
{
    const ModelConfig& config = model.config();
    OutlierProfile out;
    out.per_layer_.assign(static_cast<size_t>(config.num_layers),
                          std::vector<LinearOutlierProfile>(7));
    out.rank_.assign(static_cast<size_t>(config.num_layers),
                     std::vector<int>(7, -1));

    // Derive the clip scale s per linear from the calibration pass: the
    // clip_quantile of the per-channel absmax distribution is the largest
    // "normal" magnitude; s maps it to 127 (Equation 1).
    for (int l = 0; l < config.num_layers; ++l) {
        for (const auto& spec : config.LayerLinears()) {
            const auto& stats = calib.Stats(l, spec.kind);
            auto& profile =
                out.per_layer_[static_cast<size_t>(l)]
                              [static_cast<size_t>(
                                  LinearKindIndex(spec.kind))];
            const float normal_max = std::max(
                1e-6f, stats.ChannelAbsmaxQuantile(options.clip_quantile));
            profile.clip_scale = normal_max / 127.0f;
        }
    }

    // Counting pass over the corpus.
    CountingExecutor counter(model.weights(), out.per_layer_);
    for (const auto& tokens : corpus) {
        KvCache cache = model.MakeCache();
        model.Forward(tokens, cache, counter);
    }

    // Finalize per-linear statistics and hot channel sets.
    struct Ranked {
        int layer;
        LinearKind kind;
        double importance;
    };
    std::vector<Ranked> ranked;
    for (int l = 0; l < config.num_layers; ++l) {
        for (const auto& spec : config.LayerLinears()) {
            auto& profile =
                out.per_layer_[static_cast<size_t>(l)]
                              [static_cast<size_t>(
                                  LinearKindIndex(spec.kind))];
            if (profile.tokens_seen > 0) {
                profile.mean_outliers_per_token /=
                    static_cast<double>(profile.tokens_seen);
                profile.mean_outlier_fraction /=
                    static_cast<double>(profile.tokens_seen);
            }
            // Hot channels: smallest prefix (by descending count) covering
            // hot_coverage of all exceedances.
            const int64_t total = std::accumulate(
                profile.exceed_count.begin(), profile.exceed_count.end(),
                static_cast<int64_t>(0));
            if (total > 0) {
                std::vector<int> order(profile.exceed_count.size());
                std::iota(order.begin(), order.end(), 0);
                std::sort(order.begin(), order.end(), [&](int a, int b) {
                    return profile.exceed_count[static_cast<size_t>(a)] >
                           profile.exceed_count[static_cast<size_t>(b)];
                });
                int64_t covered = 0;
                for (int c : order) {
                    if (profile.exceed_count[static_cast<size_t>(c)] == 0) {
                        break;
                    }
                    profile.hot_channels.push_back(c);
                    covered += profile.exceed_count[static_cast<size_t>(c)];
                    if (static_cast<double>(covered) >=
                        options.hot_coverage * static_cast<double>(total)) {
                        break;
                    }
                }
                profile.hot_coverage_achieved =
                    static_cast<double>(covered) / static_cast<double>(total);
            }
            ranked.push_back({l, spec.kind, profile.importance});
            ++out.num_linears_;
        }
    }

    // Importance ranking (0 = most important).
    std::sort(ranked.begin(), ranked.end(), [](const Ranked& a,
                                               const Ranked& b) {
        return a.importance > b.importance;
    });
    for (size_t i = 0; i < ranked.size(); ++i) {
        out.rank_[static_cast<size_t>(ranked[i].layer)]
                 [static_cast<size_t>(LinearKindIndex(ranked[i].kind))] =
            static_cast<int>(i);
    }
    return out;
}

const LinearOutlierProfile&
OutlierProfile::Stats(int layer, LinearKind kind) const
{
    return per_layer_[static_cast<size_t>(layer)]
                     [static_cast<size_t>(LinearKindIndex(kind))];
}

int
OutlierProfile::ImportanceRank(int layer, LinearKind kind) const
{
    const int rank = rank_[static_cast<size_t>(layer)]
                          [static_cast<size_t>(LinearKindIndex(kind))];
    LLMNPU_CHECK_GE(rank, 0);
    return rank;
}

bool
OutlierProfile::ShadowEnabled(int layer, LinearKind kind,
                              double pruning_rate) const
{
    LLMNPU_CHECK_GE(pruning_rate, 0.0);
    LLMNPU_CHECK_LE(pruning_rate, 1.0);
    const int kept = static_cast<int>(std::ceil(
        (1.0 - pruning_rate) * static_cast<double>(num_linears_)));
    return ImportanceRank(layer, kind) < kept;
}

double
OutlierProfile::MeanHotChannelFraction() const
{
    double sum = 0.0;
    int count = 0;
    for (const auto& layer : per_layer_) {
        for (const auto& profile : layer) {
            if (profile.exceed_count.empty()) continue;
            sum += static_cast<double>(profile.hot_channels.size()) /
                   static_cast<double>(profile.exceed_count.size());
            ++count;
        }
    }
    return count > 0 ? sum / count : 0.0;
}

}  // namespace llmnpu
