#include "src/core/shadow_executor.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/matmul.h"
#include "src/tensor/ops.h"

namespace llmnpu {

NpuShadowExecutor::NpuShadowExecutor(const ModelWeights& weights,
                                     const OutlierProfile& profile,
                                     double pruning_rate)
    : weights_(weights), profile_(profile), pruning_rate_(pruning_rate)
{
    const auto& config = weights.config;
    prepared_.resize(static_cast<size_t>(config.num_layers));
    for (int l = 0; l < config.num_layers; ++l) {
        prepared_[static_cast<size_t>(l)].resize(kNumLinearKinds);
        for (const auto& spec : config.LayerLinears()) {
            PreparedLinear pl;
            const Tensor& w = weights.Linear(l, spec.kind);
            // The row-major quantized copy is construction-only scratch:
            // Forward reads the packed panels and the dequantized floats.
            const PerColumnWeights npu_weights = QuantizePerColumn(w);
            pl.npu_packed =
                PackWeightsI8(npu_weights.q, npu_weights.scales);
            pl.w_deq = DequantizePerColumn(npu_weights);
            pl.shadow_enabled =
                profile.ShadowEnabled(l, spec.kind, pruning_rate);
            pl.is_hot.assign(static_cast<size_t>(spec.k), false);
            for (int hot : profile.Stats(l, spec.kind).hot_channels) {
                pl.is_hot[static_cast<size_t>(hot)] = true;
                ++pl.hot_rows;
            }
            prepared_[static_cast<size_t>(l)]
                     [static_cast<size_t>(LinearKindIndex(spec.kind))] =
                std::move(pl);
        }
    }
}

void
NpuShadowExecutor::AddShadowTerm(const PreparedLinear& pl,
                                 const LinearOutlierProfile& op, const Tensor& x,
                                 const Tensor& x_q, int64_t r0, int64_t r1,
                                 Tensor& y)
{
    // Extract the channels where any row of [r0, r1) exceeded the clip and
    // compute the residual x - s*q at float precision on the CPU.
    const float s = op.clip_scale;
    const float clip = op.ClipValue();
    const int64_t k = x.Cols();
    const float* px = x.Data<float>();
    std::vector<int> extracted;
    for (int64_t c = 0; c < k; ++c) {
        for (int64_t r = r0; r < r1; ++r) {
            if (std::abs(px[r * k + c]) > clip) {
                extracted.push_back(static_cast<int>(c));
                break;
            }
        }
    }
    if (extracted.empty()) return;

    ++stats_.shadow_calls;
    stats_.extracted_channels += static_cast<int64_t>(extracted.size());
    for (int c : extracted) {
        if (pl.is_hot[static_cast<size_t>(c)]) {
            ++stats_.hot_hits;
        } else {
            ++stats_.cold_misses;
        }
    }

    // Compact residual tensor over the extracted channels.
    const int64_t m = r1 - r0;
    const int64_t num_extracted = static_cast<int64_t>(extracted.size());
    Tensor residual({m, num_extracted}, DType::kF32);
    {
        const int8_t* pq = x_q.Data<int8_t>();
        float* pr = residual.Data<float>();
        for (int64_t r = 0; r < m; ++r) {
            for (int64_t i = 0; i < num_extracted; ++i) {
                const int64_t c = extracted[static_cast<size_t>(i)];
                pr[r * num_extracted + i] =
                    px[(r0 + r) * k + c] -
                    s * static_cast<float>(pq[(r0 + r) * k + c]);
            }
        }
    }
    Tensor y_shadow = MatMulRowSubset(residual, pl.w_deq, extracted);
    // Add into the segment's rows of the stacked output.
    const int64_t n = y.Cols();
    float* py = y.Data<float>() + r0 * n;
    const float* ps = y_shadow.Data<float>();
    for (int64_t i = 0; i < m * n; ++i) py[i] += ps[i];
}

Tensor
NpuShadowExecutor::Forward(int layer, LinearKind kind, const Tensor& x)
{
    return ForwardBatch(layer, kind, x, {0, x.Rows()});
}

Tensor
NpuShadowExecutor::ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                                const BatchSegments& segments)
{
    CheckBatchSegments(x, segments);
    auto& pl = prepared_[static_cast<size_t>(layer)]
                        [static_cast<size_t>(LinearKindIndex(kind))];
    const auto& op = profile_.Stats(layer, kind);
    stats_.linear_calls += static_cast<int64_t>(segments.size()) - 1;

    const float s = op.clip_scale;
    const float inv_s = 1.0f / s;

    // NPU part: per-tensor quantize with the offline clip scale, one packed
    // W8A8 matmul over the whole stack (element-wise quantization and
    // row-independent accumulation make this exact for every segment).
    Tensor x_q(x.shape(), DType::kI8);
    {
        const float* px = x.Data<float>();
        int8_t* pq = x_q.Data<int8_t>();
        for (int64_t i = 0; i < x.NumElements(); ++i) {
            pq[i] = static_cast<int8_t>(std::clamp(
                std::nearbyint(px[i] * inv_s), -127.0f, 127.0f));
        }
    }
    Tensor y = MatMulW8A8PerTensorPacked(x_q, s, pl.npu_packed);

    if (!pl.shadow_enabled) return y;

    // Shadow part, per sequence: the extracted channel set is a property of
    // one sequence's activations, so batching must not union it across
    // sequences (the residual of a non-outlier channel is its rounding
    // error, not zero — unioning would perturb other sequences).
    for (size_t i = 0; i + 1 < segments.size(); ++i) {
        AddShadowTerm(pl, op, x, x_q, segments[i], segments[i + 1], y);
    }
    return y;
}

int64_t
NpuShadowExecutor::ResidentShadowWeightBytes() const
{
    int64_t bytes = 0;
    const auto& config = weights_.config;
    for (int l = 0; l < config.num_layers; ++l) {
        for (const auto& spec : config.LayerLinears()) {
            const auto& pl = prepared_[static_cast<size_t>(l)]
                                      [static_cast<size_t>(
                                          LinearKindIndex(spec.kind))];
            if (!pl.shadow_enabled) continue;
            bytes += pl.hot_rows * spec.n * 4;  // f32 rows for hot channels
        }
    }
    return bytes;
}

}  // namespace llmnpu
