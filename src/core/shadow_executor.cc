#include "src/core/shadow_executor.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/matmul.h"
#include "src/tensor/ops.h"

namespace llmnpu {

NpuShadowExecutor::NpuShadowExecutor(const ModelWeights& weights,
                                     const OutlierProfile& profile,
                                     double pruning_rate)
    : weights_(weights), profile_(profile), pruning_rate_(pruning_rate)
{
    const auto& config = weights.config;
    prepared_.resize(static_cast<size_t>(config.num_layers));
    for (int l = 0; l < config.num_layers; ++l) {
        prepared_[static_cast<size_t>(l)].resize(kNumLinearKinds);
        for (const auto& spec : config.LayerLinears()) {
            PreparedLinear pl;
            const Tensor& w = weights.Linear(l, spec.kind);
            // The row-major quantized copy is construction-only scratch:
            // Forward reads the packed panels and the dequantized floats.
            const PerColumnWeights npu_weights = QuantizePerColumn(w);
            pl.npu_packed =
                PackWeightsI8(npu_weights.q, npu_weights.scales);
            pl.w_deq = DequantizePerColumn(npu_weights);
            pl.shadow_enabled =
                profile.ShadowEnabled(l, spec.kind, pruning_rate);
            pl.is_hot.assign(static_cast<size_t>(spec.k), false);
            for (int hot : profile.Stats(l, spec.kind).hot_channels) {
                pl.is_hot[static_cast<size_t>(hot)] = true;
                ++pl.hot_rows;
            }
            prepared_[static_cast<size_t>(l)]
                     [static_cast<size_t>(LinearKindIndex(spec.kind))] =
                std::move(pl);
        }
    }
}

Tensor
NpuShadowExecutor::Forward(int layer, LinearKind kind, const Tensor& x)
{
    auto& pl = prepared_[static_cast<size_t>(layer)]
                        [static_cast<size_t>(LinearKindIndex(kind))];
    const auto& op = profile_.Stats(layer, kind);
    ++stats_.linear_calls;

    const float s = op.clip_scale;
    const float inv_s = 1.0f / s;
    const int64_t m = x.Rows(), k = x.Cols();

    // NPU part: per-tensor quantize with the offline clip scale.
    Tensor x_q(x.shape(), DType::kI8);
    {
        const float* px = x.Data<float>();
        int8_t* pq = x_q.Data<int8_t>();
        for (int64_t i = 0; i < x.NumElements(); ++i) {
            pq[i] = static_cast<int8_t>(std::clamp(
                std::nearbyint(px[i] * inv_s), -127.0f, 127.0f));
        }
    }
    Tensor y = MatMulW8A8PerTensorPacked(x_q, s, pl.npu_packed);

    if (!pl.shadow_enabled) return y;

    // Shadow part: extract the channels whose values exceeded the clip and
    // compute the residual x - s*q at float precision on the CPU.
    const float clip = op.ClipValue();
    std::vector<int> extracted;
    {
        const float* px = x.Data<float>();
        for (int64_t c = 0; c < k; ++c) {
            for (int64_t r = 0; r < m; ++r) {
                if (std::abs(px[r * k + c]) > clip) {
                    extracted.push_back(static_cast<int>(c));
                    break;
                }
            }
        }
    }
    if (extracted.empty()) return y;

    ++stats_.shadow_calls;
    stats_.extracted_channels += static_cast<int64_t>(extracted.size());
    for (int c : extracted) {
        if (pl.is_hot[static_cast<size_t>(c)]) {
            ++stats_.hot_hits;
        } else {
            ++stats_.cold_misses;
        }
    }

    // Compact residual tensor over the extracted channels.
    Tensor residual({m, static_cast<int64_t>(extracted.size())}, DType::kF32);
    {
        const float* px = x.Data<float>();
        const int8_t* pq = x_q.Data<int8_t>();
        float* pr = residual.Data<float>();
        for (int64_t r = 0; r < m; ++r) {
            for (size_t i = 0; i < extracted.size(); ++i) {
                const int64_t c = extracted[i];
                pr[r * static_cast<int64_t>(extracted.size()) +
                   static_cast<int64_t>(i)] =
                    px[r * k + c] - s * static_cast<float>(pq[r * k + c]);
            }
        }
    }
    Tensor y_shadow = MatMulRowSubset(residual, pl.w_deq, extracted);
    AddInPlace(y, y_shadow);
    return y;
}

int64_t
NpuShadowExecutor::ResidentShadowWeightBytes() const
{
    int64_t bytes = 0;
    const auto& config = weights_.config;
    for (int l = 0; l < config.num_layers; ++l) {
        for (const auto& spec : config.LayerLinears()) {
            const auto& pl = prepared_[static_cast<size_t>(l)]
                                      [static_cast<size_t>(
                                          LinearKindIndex(spec.kind))];
            if (!pl.shadow_enabled) continue;
            bytes += pl.hot_rows * spec.n * 4;  // f32 rows for hot channels
        }
    }
    return bytes;
}

}  // namespace llmnpu
