/**
 * @file
 * Offline outlier profiling (§3.3): per-linear clip thresholds (the `s` of
 * Equation 1), per-channel outlier frequencies (Figures 10-11), hot-channel
 * sets for the shadow-weight memory optimization, and per-linear outlier
 * importance for pruning (Figure 12).
 */
#ifndef LLMNPU_CORE_OUTLIER_PROFILE_H
#define LLMNPU_CORE_OUTLIER_PROFILE_H

#include <cstdint>
#include <utility>
#include <vector>

#include "src/model/transformer.h"
#include "src/quant/calibration.h"

namespace llmnpu {

/** Profiled outlier behaviour of one linear operator. */
struct LinearOutlierProfile {
    /** Quantization scale s (Equation 1): values within [-127s, 127s] run
     *  on the NPU; the excess is shadow-executed. */
    float clip_scale = 1.0f;
    /** Clip threshold T = 127 * clip_scale. */
    float ClipValue() const { return 127.0f * clip_scale; }

    /** Times each input channel exceeded the clip (Figure 11). */
    std::vector<int64_t> exceed_count;
    /** Tokens observed during profiling. */
    int64_t tokens_seen = 0;
    /** Mean number of outlier channels per token (Figure 10 left). */
    double mean_outliers_per_token = 0.0;
    /** Mean fraction of channels that are outliers per token (Fig 10 right). */
    double mean_outlier_fraction = 0.0;
    /** Importance: largest observed |x| over the clip value (Figure 12:
     *  ratio between the largest outlier and the quantization scale). */
    double importance = 0.0;
    /** Channels covering >= hot_coverage of exceedances, hottest first. */
    std::vector<int> hot_channels;

    /** Fraction of all exceedances covered by the hot channel set. */
    double hot_coverage_achieved = 0.0;
};

/** Whole-model outlier profile with pruning decisions. */
class OutlierProfile
{
  public:
    struct Options {
        /** Channel-absmax quantile defining "normal" values; everything
         *  above is an outlier handled by the shadow path. Must sit below
         *  the hot-channel fraction so the scale covers normal channels
         *  at full resolution and outliers exceed the clip. */
        double clip_quantile = 0.96;
        /** Target coverage of the resident hot-channel weight set. */
        double hot_coverage = 0.85;
    };

    /**
     * Profiles the model over `corpus`: derives clip scales from `calib`,
     * then runs a counting pass over the corpus.
     */
    static OutlierProfile Collect(const Transformer& model,
                                  const CalibrationData& calib,
                                  const std::vector<std::vector<int>>& corpus,
                                  const Options& options);

    /** Collect() with default options. */
    static OutlierProfile
    Collect(const Transformer& model, const CalibrationData& calib,
            const std::vector<std::vector<int>>& corpus)
    {
        return Collect(model, calib, corpus, Options());
    }

    const LinearOutlierProfile& Stats(int layer, LinearKind kind) const;

    /**
     * Importance rank of a linear: 0 = most important. Pruning at rate p
     * disables the shadow path for the floor(p * total) least important
     * linears (§3.3: default p = 0.85).
     */
    int ImportanceRank(int layer, LinearKind kind) const;

    /** Whether the shadow path stays enabled at a pruning rate. */
    bool ShadowEnabled(int layer, LinearKind kind, double pruning_rate) const;

    /** Linears profiled (layers x kinds present in the model). */
    int NumLinears() const { return num_linears_; }

    int num_layers() const { return static_cast<int>(per_layer_.size()); }

    /** Mean over NPU-relevant linears of hot-channel fraction (memory). */
    double MeanHotChannelFraction() const;

  private:
    std::vector<std::vector<LinearOutlierProfile>> per_layer_;  // [layer][kind]
    std::vector<std::vector<int>> rank_;                        // [layer][kind]
    int num_linears_ = 0;
};

}  // namespace llmnpu

#endif  // LLMNPU_CORE_OUTLIER_PROFILE_H
