/**
 * @file
 * Out-of-order subgraph scheduling (§3.4).
 *
 * Chunked prefill yields a DAG of subgraph tasks with
 *  - cross-chunk dependencies (Equation 2): G(i,j) needs G(0..i, j-1) when
 *    subgraph j is an attention stage (it reads previous chunks' K/V), and
 *  - intra-chunk dependencies (Equation 3): G(i,j) needs G(i, j-1).
 *
 * Finding the makespan-optimal order is NP-hard (reducible to TSP), so
 * llm.npu uses an online heuristic: pick the ready subgraph g with maximal
 * C(g) (Equation 5) — the total NPU time unlocked by completing g when g is
 * on the CPU/GPU, or its negative when g is on the NPU — because the NPU is
 * the critical path and stalls there dominate latency.
 */
#ifndef LLMNPU_CORE_SCHEDULER_H
#define LLMNPU_CORE_SCHEDULER_H

#include <vector>

#include "src/core/chunk_graph.h"
#include "src/sim/timeline.h"

namespace llmnpu {

/** Duration and placement of one (chunk, layer, stage) subgraph. */
struct StageTiming {
    double duration_ms = 0.0;
    Unit unit = Unit::kCpu;
    /** Shadow outlier task overlapped with this (NPU) stage; <= 0 = none. */
    double shadow_ms = 0.0;
    /** Unit the shadow task runs on (the float processor). */
    Unit shadow_unit = Unit::kCpu;
};

/**
 * Builds the prefill task DAG for `num_chunks` chunks.
 *
 * @param timings indexed [chunk][layer * kStagesPerLayer + stage].
 * @param strict_chunk_order when true, every stage additionally depends on
 *        the same stage of the previous chunk — the paper's "naive
 *        overlapping" that strictly follows the prompt's chunk sequence
 *        (Figure 13(a)). Out-of-order execution drops this constraint.
 * @return tasks ready for RunTimeline; shadow tasks are interleaved after
 *         their NPU stage and gate the next stage (the reduced-sum merge).
 */
std::vector<SimTask> BuildPrefillDag(
    const std::vector<std::vector<StageTiming>>& timings, int num_layers,
    bool strict_chunk_order = false);

/**
 * The out-of-order picker used by llm.npu. On the CPU/GPU it applies
 * Equation 5 exactly: run the ready subgraph unlocking the most NPU work.
 * On the NPU it advances the earliest pending stage (dataflow order),
 * which keeps leading chunks ahead so trailing chunks' float stages stay
 * hidden. Microsecond-scale per decision (bench_scheduler_overhead).
 *
 * Reproduction note: the paper's literal NPU-side rule (pick the subgraph
 * whose unlocked set S has the *shortest* execution time, the negative
 * branch of Equation 5) schedules measurably worse in our simulator —
 * PaperEq5Picker() keeps it for comparison (bench_fig13_bubble_rate).
 */
TaskPicker OooPicker();

/** Equation 5 applied literally on both processor classes. */
TaskPicker PaperEq5Picker();

}  // namespace llmnpu

#endif  // LLMNPU_CORE_SCHEDULER_H
