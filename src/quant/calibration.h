/**
 * @file
 * Offline activation calibration (the paper's "profiling a large corpora at
 * offline" step, §3.3).
 *
 * Runs the fp32 reference model over a calibration corpus and records, for
 * every linear operator, per-channel activation statistics. SmoothQuant-like
 * smoothing, LLM.Int8()-like outlier column detection, AWQ-like weight
 * scaling, and llm.npu's outlier threshold/importance/hot-channel profiling
 * are all derived from this one data structure.
 */
#ifndef LLMNPU_QUANT_CALIBRATION_H
#define LLMNPU_QUANT_CALIBRATION_H

#include <vector>

#include "src/model/transformer.h"

namespace llmnpu {

/** Per-linear activation statistics gathered during calibration. */
struct LinearStats {
    /** Max |x| seen per input channel. */
    std::vector<float> channel_absmax;
    /** Mean |x| per input channel (AWQ-style importance). */
    std::vector<float> channel_mean_abs;
    /** Max |x| over the whole tensor. */
    float tensor_absmax = 0.0f;
    /** Number of activation rows (tokens) observed. */
    int64_t rows_seen = 0;

    /**
     * The q-quantile of the per-channel absmax distribution; used as the
     * "normal value" clip when deriving llm.npu's outlier threshold.
     */
    float ChannelAbsmaxQuantile(double q) const;
};

/** Calibration results for every (layer, linear kind). */
class CalibrationData
{
  public:
    /** Runs `corpus` (token-id sequences) through the fp32 model. */
    static CalibrationData Collect(const Transformer& model,
                                   const std::vector<std::vector<int>>& corpus);

    /** Stats of one linear operator. */
    const LinearStats& Stats(int layer, LinearKind kind) const;
    LinearStats& MutableStats(int layer, LinearKind kind);

    int num_layers() const { return static_cast<int>(per_layer_.size()); }

  private:
    static constexpr int kNumKinds = 7;
    std::vector<std::vector<LinearStats>> per_layer_;  // [layer][kind]
};

/** Dense index of a LinearKind in 0..6. */
int LinearKindIndex(LinearKind kind);

}  // namespace llmnpu

#endif  // LLMNPU_QUANT_CALIBRATION_H
